file(REMOVE_RECURSE
  "CMakeFiles/bench_e02_convergence.dir/bench/bench_e02_convergence.cpp.o"
  "CMakeFiles/bench_e02_convergence.dir/bench/bench_e02_convergence.cpp.o.d"
  "bench_e02_convergence"
  "bench_e02_convergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e02_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
