# Empty dependencies file for bench_e02_convergence.
# This may be replaced when dependencies are built.
