file(REMOVE_RECURSE
  "CMakeFiles/example_san_failover.dir/examples/san_failover.cpp.o"
  "CMakeFiles/example_san_failover.dir/examples/san_failover.cpp.o.d"
  "example_san_failover"
  "example_san_failover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_san_failover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
