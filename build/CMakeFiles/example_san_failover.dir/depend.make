# Empty dependencies file for example_san_failover.
# This may be replaced when dependencies are built.
