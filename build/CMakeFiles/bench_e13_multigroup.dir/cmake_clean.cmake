file(REMOVE_RECURSE
  "CMakeFiles/bench_e13_multigroup.dir/bench/bench_e13_multigroup.cpp.o"
  "CMakeFiles/bench_e13_multigroup.dir/bench/bench_e13_multigroup.cpp.o.d"
  "bench_e13_multigroup"
  "bench_e13_multigroup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e13_multigroup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
