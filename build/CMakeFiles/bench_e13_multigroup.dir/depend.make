# Empty dependencies file for bench_e13_multigroup.
# This may be replaced when dependencies are built.
