# Empty dependencies file for bench_e07_writer_census.
# This may be replaced when dependencies are built.
