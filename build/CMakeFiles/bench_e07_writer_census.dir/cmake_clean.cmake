file(REMOVE_RECURSE
  "CMakeFiles/bench_e07_writer_census.dir/bench/bench_e07_writer_census.cpp.o"
  "CMakeFiles/bench_e07_writer_census.dir/bench/bench_e07_writer_census.cpp.o.d"
  "bench_e07_writer_census"
  "bench_e07_writer_census.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e07_writer_census.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
