# Empty dependencies file for tests_system.
# This may be replaced when dependencies are built.
