file(REMOVE_RECURSE
  "CMakeFiles/tests_system.dir/tests/system/consensus_test.cpp.o"
  "CMakeFiles/tests_system.dir/tests/system/consensus_test.cpp.o.d"
  "CMakeFiles/tests_system.dir/tests/system/leader_service_test.cpp.o"
  "CMakeFiles/tests_system.dir/tests/system/leader_service_test.cpp.o.d"
  "CMakeFiles/tests_system.dir/tests/system/multigroup_service_test.cpp.o"
  "CMakeFiles/tests_system.dir/tests/system/multigroup_service_test.cpp.o.d"
  "CMakeFiles/tests_system.dir/tests/system/replicated_log_test.cpp.o"
  "CMakeFiles/tests_system.dir/tests/system/replicated_log_test.cpp.o.d"
  "CMakeFiles/tests_system.dir/tests/system/replicated_san_test.cpp.o"
  "CMakeFiles/tests_system.dir/tests/system/replicated_san_test.cpp.o.d"
  "CMakeFiles/tests_system.dir/tests/system/rt_test.cpp.o"
  "CMakeFiles/tests_system.dir/tests/system/rt_test.cpp.o.d"
  "CMakeFiles/tests_system.dir/tests/system/san_test.cpp.o"
  "CMakeFiles/tests_system.dir/tests/system/san_test.cpp.o.d"
  "tests_system"
  "tests_system.pdb"
  "tests_system[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
