
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/system/consensus_test.cpp" "CMakeFiles/tests_system.dir/tests/system/consensus_test.cpp.o" "gcc" "CMakeFiles/tests_system.dir/tests/system/consensus_test.cpp.o.d"
  "/root/repo/tests/system/leader_service_test.cpp" "CMakeFiles/tests_system.dir/tests/system/leader_service_test.cpp.o" "gcc" "CMakeFiles/tests_system.dir/tests/system/leader_service_test.cpp.o.d"
  "/root/repo/tests/system/multigroup_service_test.cpp" "CMakeFiles/tests_system.dir/tests/system/multigroup_service_test.cpp.o" "gcc" "CMakeFiles/tests_system.dir/tests/system/multigroup_service_test.cpp.o.d"
  "/root/repo/tests/system/replicated_log_test.cpp" "CMakeFiles/tests_system.dir/tests/system/replicated_log_test.cpp.o" "gcc" "CMakeFiles/tests_system.dir/tests/system/replicated_log_test.cpp.o.d"
  "/root/repo/tests/system/replicated_san_test.cpp" "CMakeFiles/tests_system.dir/tests/system/replicated_san_test.cpp.o" "gcc" "CMakeFiles/tests_system.dir/tests/system/replicated_san_test.cpp.o.d"
  "/root/repo/tests/system/rt_test.cpp" "CMakeFiles/tests_system.dir/tests/system/rt_test.cpp.o" "gcc" "CMakeFiles/tests_system.dir/tests/system/rt_test.cpp.o.d"
  "/root/repo/tests/system/san_test.cpp" "CMakeFiles/tests_system.dir/tests/system/san_test.cpp.o" "gcc" "CMakeFiles/tests_system.dir/tests/system/san_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/CMakeFiles/omega.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
