file(REMOVE_RECURSE
  "CMakeFiles/bench_e12_disk_faults.dir/bench/bench_e12_disk_faults.cpp.o"
  "CMakeFiles/bench_e12_disk_faults.dir/bench/bench_e12_disk_faults.cpp.o.d"
  "bench_e12_disk_faults"
  "bench_e12_disk_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e12_disk_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
