# Empty dependencies file for bench_e12_disk_faults.
# This may be replaced when dependencies are built.
