
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/rng.cpp" "CMakeFiles/omega.dir/src/common/rng.cpp.o" "gcc" "CMakeFiles/omega.dir/src/common/rng.cpp.o.d"
  "/root/repo/src/common/stats.cpp" "CMakeFiles/omega.dir/src/common/stats.cpp.o" "gcc" "CMakeFiles/omega.dir/src/common/stats.cpp.o.d"
  "/root/repo/src/common/table.cpp" "CMakeFiles/omega.dir/src/common/table.cpp.o" "gcc" "CMakeFiles/omega.dir/src/common/table.cpp.o.d"
  "/root/repo/src/consensus/consensus.cpp" "CMakeFiles/omega.dir/src/consensus/consensus.cpp.o" "gcc" "CMakeFiles/omega.dir/src/consensus/consensus.cpp.o.d"
  "/root/repo/src/consensus/replicated_log.cpp" "CMakeFiles/omega.dir/src/consensus/replicated_log.cpp.o" "gcc" "CMakeFiles/omega.dir/src/consensus/replicated_log.cpp.o.d"
  "/root/repo/src/core/factory.cpp" "CMakeFiles/omega.dir/src/core/factory.cpp.o" "gcc" "CMakeFiles/omega.dir/src/core/factory.cpp.o.d"
  "/root/repo/src/core/omega_bounded.cpp" "CMakeFiles/omega.dir/src/core/omega_bounded.cpp.o" "gcc" "CMakeFiles/omega.dir/src/core/omega_bounded.cpp.o.d"
  "/root/repo/src/core/omega_evsync.cpp" "CMakeFiles/omega.dir/src/core/omega_evsync.cpp.o" "gcc" "CMakeFiles/omega.dir/src/core/omega_evsync.cpp.o.d"
  "/root/repo/src/core/omega_nwnr.cpp" "CMakeFiles/omega.dir/src/core/omega_nwnr.cpp.o" "gcc" "CMakeFiles/omega.dir/src/core/omega_nwnr.cpp.o.d"
  "/root/repo/src/core/omega_stepclock.cpp" "CMakeFiles/omega.dir/src/core/omega_stepclock.cpp.o" "gcc" "CMakeFiles/omega.dir/src/core/omega_stepclock.cpp.o.d"
  "/root/repo/src/core/omega_write_efficient.cpp" "CMakeFiles/omega.dir/src/core/omega_write_efficient.cpp.o" "gcc" "CMakeFiles/omega.dir/src/core/omega_write_efficient.cpp.o.d"
  "/root/repo/src/registers/instrumentation.cpp" "CMakeFiles/omega.dir/src/registers/instrumentation.cpp.o" "gcc" "CMakeFiles/omega.dir/src/registers/instrumentation.cpp.o.d"
  "/root/repo/src/registers/layout.cpp" "CMakeFiles/omega.dir/src/registers/layout.cpp.o" "gcc" "CMakeFiles/omega.dir/src/registers/layout.cpp.o.d"
  "/root/repo/src/registers/memory.cpp" "CMakeFiles/omega.dir/src/registers/memory.cpp.o" "gcc" "CMakeFiles/omega.dir/src/registers/memory.cpp.o.d"
  "/root/repo/src/rt/atomic_memory.cpp" "CMakeFiles/omega.dir/src/rt/atomic_memory.cpp.o" "gcc" "CMakeFiles/omega.dir/src/rt/atomic_memory.cpp.o.d"
  "/root/repo/src/rt/leader_service.cpp" "CMakeFiles/omega.dir/src/rt/leader_service.cpp.o" "gcc" "CMakeFiles/omega.dir/src/rt/leader_service.cpp.o.d"
  "/root/repo/src/rt/proc_executor.cpp" "CMakeFiles/omega.dir/src/rt/proc_executor.cpp.o" "gcc" "CMakeFiles/omega.dir/src/rt/proc_executor.cpp.o.d"
  "/root/repo/src/rt/rt_driver.cpp" "CMakeFiles/omega.dir/src/rt/rt_driver.cpp.o" "gcc" "CMakeFiles/omega.dir/src/rt/rt_driver.cpp.o.d"
  "/root/repo/src/san/disk.cpp" "CMakeFiles/omega.dir/src/san/disk.cpp.o" "gcc" "CMakeFiles/omega.dir/src/san/disk.cpp.o.d"
  "/root/repo/src/san/replicated_san.cpp" "CMakeFiles/omega.dir/src/san/replicated_san.cpp.o" "gcc" "CMakeFiles/omega.dir/src/san/replicated_san.cpp.o.d"
  "/root/repo/src/san/san_memory.cpp" "CMakeFiles/omega.dir/src/san/san_memory.cpp.o" "gcc" "CMakeFiles/omega.dir/src/san/san_memory.cpp.o.d"
  "/root/repo/src/sim/crash_plan.cpp" "CMakeFiles/omega.dir/src/sim/crash_plan.cpp.o" "gcc" "CMakeFiles/omega.dir/src/sim/crash_plan.cpp.o.d"
  "/root/repo/src/sim/driver.cpp" "CMakeFiles/omega.dir/src/sim/driver.cpp.o" "gcc" "CMakeFiles/omega.dir/src/sim/driver.cpp.o.d"
  "/root/repo/src/sim/metrics.cpp" "CMakeFiles/omega.dir/src/sim/metrics.cpp.o" "gcc" "CMakeFiles/omega.dir/src/sim/metrics.cpp.o.d"
  "/root/repo/src/sim/scenario.cpp" "CMakeFiles/omega.dir/src/sim/scenario.cpp.o" "gcc" "CMakeFiles/omega.dir/src/sim/scenario.cpp.o.d"
  "/root/repo/src/sim/schedule.cpp" "CMakeFiles/omega.dir/src/sim/schedule.cpp.o" "gcc" "CMakeFiles/omega.dir/src/sim/schedule.cpp.o.d"
  "/root/repo/src/sim/timer_model.cpp" "CMakeFiles/omega.dir/src/sim/timer_model.cpp.o" "gcc" "CMakeFiles/omega.dir/src/sim/timer_model.cpp.o.d"
  "/root/repo/src/sim/trace.cpp" "CMakeFiles/omega.dir/src/sim/trace.cpp.o" "gcc" "CMakeFiles/omega.dir/src/sim/trace.cpp.o.d"
  "/root/repo/src/svc/group_registry.cpp" "CMakeFiles/omega.dir/src/svc/group_registry.cpp.o" "gcc" "CMakeFiles/omega.dir/src/svc/group_registry.cpp.o.d"
  "/root/repo/src/svc/multigroup_service.cpp" "CMakeFiles/omega.dir/src/svc/multigroup_service.cpp.o" "gcc" "CMakeFiles/omega.dir/src/svc/multigroup_service.cpp.o.d"
  "/root/repo/src/svc/timer_wheel.cpp" "CMakeFiles/omega.dir/src/svc/timer_wheel.cpp.o" "gcc" "CMakeFiles/omega.dir/src/svc/timer_wheel.cpp.o.d"
  "/root/repo/src/svc/worker_pool.cpp" "CMakeFiles/omega.dir/src/svc/worker_pool.cpp.o" "gcc" "CMakeFiles/omega.dir/src/svc/worker_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
