file(REMOVE_RECURSE
  "libomega.a"
)
