# Empty dependencies file for omega.
# This may be replaced when dependencies are built.
