file(REMOVE_RECURSE
  "CMakeFiles/bench_e06_lower_bounds.dir/bench/bench_e06_lower_bounds.cpp.o"
  "CMakeFiles/bench_e06_lower_bounds.dir/bench/bench_e06_lower_bounds.cpp.o.d"
  "bench_e06_lower_bounds"
  "bench_e06_lower_bounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e06_lower_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
