file(REMOVE_RECURSE
  "CMakeFiles/bench_e05_bounded_algo.dir/bench/bench_e05_bounded_algo.cpp.o"
  "CMakeFiles/bench_e05_bounded_algo.dir/bench/bench_e05_bounded_algo.cpp.o.d"
  "bench_e05_bounded_algo"
  "bench_e05_bounded_algo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e05_bounded_algo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
