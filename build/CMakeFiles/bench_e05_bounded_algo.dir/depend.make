# Empty dependencies file for bench_e05_bounded_algo.
# This may be replaced when dependencies are built.
