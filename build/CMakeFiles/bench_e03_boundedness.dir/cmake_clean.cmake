file(REMOVE_RECURSE
  "CMakeFiles/bench_e03_boundedness.dir/bench/bench_e03_boundedness.cpp.o"
  "CMakeFiles/bench_e03_boundedness.dir/bench/bench_e03_boundedness.cpp.o.d"
  "bench_e03_boundedness"
  "bench_e03_boundedness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e03_boundedness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
