# Empty dependencies file for bench_e03_boundedness.
# This may be replaced when dependencies are built.
