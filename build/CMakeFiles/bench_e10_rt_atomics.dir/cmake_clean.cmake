file(REMOVE_RECURSE
  "CMakeFiles/bench_e10_rt_atomics.dir/bench/bench_e10_rt_atomics.cpp.o"
  "CMakeFiles/bench_e10_rt_atomics.dir/bench/bench_e10_rt_atomics.cpp.o.d"
  "bench_e10_rt_atomics"
  "bench_e10_rt_atomics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e10_rt_atomics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
