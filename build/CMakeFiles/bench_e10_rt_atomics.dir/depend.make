# Empty dependencies file for bench_e10_rt_atomics.
# This may be replaced when dependencies are built.
