file(REMOVE_RECURSE
  "CMakeFiles/bench_e08_vs_evsync.dir/bench/bench_e08_vs_evsync.cpp.o"
  "CMakeFiles/bench_e08_vs_evsync.dir/bench/bench_e08_vs_evsync.cpp.o.d"
  "bench_e08_vs_evsync"
  "bench_e08_vs_evsync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e08_vs_evsync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
