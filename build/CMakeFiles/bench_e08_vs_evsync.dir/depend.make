# Empty dependencies file for bench_e08_vs_evsync.
# This may be replaced when dependencies are built.
