file(REMOVE_RECURSE
  "CMakeFiles/bench_e01_timers.dir/bench/bench_e01_timers.cpp.o"
  "CMakeFiles/bench_e01_timers.dir/bench/bench_e01_timers.cpp.o.d"
  "bench_e01_timers"
  "bench_e01_timers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e01_timers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
