# Empty dependencies file for bench_e01_timers.
# This may be replaced when dependencies are built.
