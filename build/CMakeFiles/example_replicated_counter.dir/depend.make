# Empty dependencies file for example_replicated_counter.
# This may be replaced when dependencies are built.
