file(REMOVE_RECURSE
  "CMakeFiles/example_replicated_counter.dir/examples/replicated_counter.cpp.o"
  "CMakeFiles/example_replicated_counter.dir/examples/replicated_counter.cpp.o.d"
  "example_replicated_counter"
  "example_replicated_counter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_replicated_counter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
