file(REMOVE_RECURSE
  "CMakeFiles/bench_e11_ablations.dir/bench/bench_e11_ablations.cpp.o"
  "CMakeFiles/bench_e11_ablations.dir/bench/bench_e11_ablations.cpp.o.d"
  "bench_e11_ablations"
  "bench_e11_ablations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e11_ablations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
