# Empty dependencies file for bench_e11_ablations.
# This may be replaced when dependencies are built.
