# Empty dependencies file for tests_omega.
# This may be replaced when dependencies are built.
