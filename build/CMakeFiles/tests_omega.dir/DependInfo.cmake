
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/omega/algorithm_unit_test.cpp" "CMakeFiles/tests_omega.dir/tests/omega/algorithm_unit_test.cpp.o" "gcc" "CMakeFiles/tests_omega.dir/tests/omega/algorithm_unit_test.cpp.o.d"
  "/root/repo/tests/omega/convergence_test.cpp" "CMakeFiles/tests_omega.dir/tests/omega/convergence_test.cpp.o" "gcc" "CMakeFiles/tests_omega.dir/tests/omega/convergence_test.cpp.o.d"
  "/root/repo/tests/omega/driver_test.cpp" "CMakeFiles/tests_omega.dir/tests/omega/driver_test.cpp.o" "gcc" "CMakeFiles/tests_omega.dir/tests/omega/driver_test.cpp.o.d"
  "/root/repo/tests/omega/lower_bounds_test.cpp" "CMakeFiles/tests_omega.dir/tests/omega/lower_bounds_test.cpp.o" "gcc" "CMakeFiles/tests_omega.dir/tests/omega/lower_bounds_test.cpp.o.d"
  "/root/repo/tests/omega/properties_test.cpp" "CMakeFiles/tests_omega.dir/tests/omega/properties_test.cpp.o" "gcc" "CMakeFiles/tests_omega.dir/tests/omega/properties_test.cpp.o.d"
  "/root/repo/tests/omega/self_stabilization_test.cpp" "CMakeFiles/tests_omega.dir/tests/omega/self_stabilization_test.cpp.o" "gcc" "CMakeFiles/tests_omega.dir/tests/omega/self_stabilization_test.cpp.o.d"
  "/root/repo/tests/omega/timeout_policy_test.cpp" "CMakeFiles/tests_omega.dir/tests/omega/timeout_policy_test.cpp.o" "gcc" "CMakeFiles/tests_omega.dir/tests/omega/timeout_policy_test.cpp.o.d"
  "/root/repo/tests/omega/trace_integration_test.cpp" "CMakeFiles/tests_omega.dir/tests/omega/trace_integration_test.cpp.o" "gcc" "CMakeFiles/tests_omega.dir/tests/omega/trace_integration_test.cpp.o.d"
  "/root/repo/tests/omega/write_efficiency_test.cpp" "CMakeFiles/tests_omega.dir/tests/omega/write_efficiency_test.cpp.o" "gcc" "CMakeFiles/tests_omega.dir/tests/omega/write_efficiency_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/CMakeFiles/omega.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
