file(REMOVE_RECURSE
  "CMakeFiles/tests_omega.dir/tests/omega/algorithm_unit_test.cpp.o"
  "CMakeFiles/tests_omega.dir/tests/omega/algorithm_unit_test.cpp.o.d"
  "CMakeFiles/tests_omega.dir/tests/omega/convergence_test.cpp.o"
  "CMakeFiles/tests_omega.dir/tests/omega/convergence_test.cpp.o.d"
  "CMakeFiles/tests_omega.dir/tests/omega/driver_test.cpp.o"
  "CMakeFiles/tests_omega.dir/tests/omega/driver_test.cpp.o.d"
  "CMakeFiles/tests_omega.dir/tests/omega/lower_bounds_test.cpp.o"
  "CMakeFiles/tests_omega.dir/tests/omega/lower_bounds_test.cpp.o.d"
  "CMakeFiles/tests_omega.dir/tests/omega/properties_test.cpp.o"
  "CMakeFiles/tests_omega.dir/tests/omega/properties_test.cpp.o.d"
  "CMakeFiles/tests_omega.dir/tests/omega/self_stabilization_test.cpp.o"
  "CMakeFiles/tests_omega.dir/tests/omega/self_stabilization_test.cpp.o.d"
  "CMakeFiles/tests_omega.dir/tests/omega/timeout_policy_test.cpp.o"
  "CMakeFiles/tests_omega.dir/tests/omega/timeout_policy_test.cpp.o.d"
  "CMakeFiles/tests_omega.dir/tests/omega/trace_integration_test.cpp.o"
  "CMakeFiles/tests_omega.dir/tests/omega/trace_integration_test.cpp.o.d"
  "CMakeFiles/tests_omega.dir/tests/omega/write_efficiency_test.cpp.o"
  "CMakeFiles/tests_omega.dir/tests/omega/write_efficiency_test.cpp.o.d"
  "tests_omega"
  "tests_omega.pdb"
  "tests_omega[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_omega.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
