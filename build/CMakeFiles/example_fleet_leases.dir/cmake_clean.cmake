file(REMOVE_RECURSE
  "CMakeFiles/example_fleet_leases.dir/examples/fleet_leases.cpp.o"
  "CMakeFiles/example_fleet_leases.dir/examples/fleet_leases.cpp.o.d"
  "example_fleet_leases"
  "example_fleet_leases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_fleet_leases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
