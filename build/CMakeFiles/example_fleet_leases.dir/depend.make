# Empty dependencies file for example_fleet_leases.
# This may be replaced when dependencies are built.
