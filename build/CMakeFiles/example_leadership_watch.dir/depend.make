# Empty dependencies file for example_leadership_watch.
# This may be replaced when dependencies are built.
