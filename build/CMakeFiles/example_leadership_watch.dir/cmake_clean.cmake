file(REMOVE_RECURSE
  "CMakeFiles/example_leadership_watch.dir/examples/leadership_watch.cpp.o"
  "CMakeFiles/example_leadership_watch.dir/examples/leadership_watch.cpp.o.d"
  "example_leadership_watch"
  "example_leadership_watch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_leadership_watch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
