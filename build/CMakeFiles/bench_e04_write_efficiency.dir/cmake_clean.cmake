file(REMOVE_RECURSE
  "CMakeFiles/bench_e04_write_efficiency.dir/bench/bench_e04_write_efficiency.cpp.o"
  "CMakeFiles/bench_e04_write_efficiency.dir/bench/bench_e04_write_efficiency.cpp.o.d"
  "bench_e04_write_efficiency"
  "bench_e04_write_efficiency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e04_write_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
