# Empty dependencies file for bench_e04_write_efficiency.
# This may be replaced when dependencies are built.
