
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/unit/candidate_set_test.cpp" "CMakeFiles/tests_unit.dir/tests/unit/candidate_set_test.cpp.o" "gcc" "CMakeFiles/tests_unit.dir/tests/unit/candidate_set_test.cpp.o.d"
  "/root/repo/tests/unit/crash_plan_test.cpp" "CMakeFiles/tests_unit.dir/tests/unit/crash_plan_test.cpp.o" "gcc" "CMakeFiles/tests_unit.dir/tests/unit/crash_plan_test.cpp.o.d"
  "/root/repo/tests/unit/factory_test.cpp" "CMakeFiles/tests_unit.dir/tests/unit/factory_test.cpp.o" "gcc" "CMakeFiles/tests_unit.dir/tests/unit/factory_test.cpp.o.d"
  "/root/repo/tests/unit/group_registry_test.cpp" "CMakeFiles/tests_unit.dir/tests/unit/group_registry_test.cpp.o" "gcc" "CMakeFiles/tests_unit.dir/tests/unit/group_registry_test.cpp.o.d"
  "/root/repo/tests/unit/instrumentation_test.cpp" "CMakeFiles/tests_unit.dir/tests/unit/instrumentation_test.cpp.o" "gcc" "CMakeFiles/tests_unit.dir/tests/unit/instrumentation_test.cpp.o.d"
  "/root/repo/tests/unit/layout_test.cpp" "CMakeFiles/tests_unit.dir/tests/unit/layout_test.cpp.o" "gcc" "CMakeFiles/tests_unit.dir/tests/unit/layout_test.cpp.o.d"
  "/root/repo/tests/unit/memory_test.cpp" "CMakeFiles/tests_unit.dir/tests/unit/memory_test.cpp.o" "gcc" "CMakeFiles/tests_unit.dir/tests/unit/memory_test.cpp.o.d"
  "/root/repo/tests/unit/metrics_test.cpp" "CMakeFiles/tests_unit.dir/tests/unit/metrics_test.cpp.o" "gcc" "CMakeFiles/tests_unit.dir/tests/unit/metrics_test.cpp.o.d"
  "/root/repo/tests/unit/proc_task_test.cpp" "CMakeFiles/tests_unit.dir/tests/unit/proc_task_test.cpp.o" "gcc" "CMakeFiles/tests_unit.dir/tests/unit/proc_task_test.cpp.o.d"
  "/root/repo/tests/unit/rng_test.cpp" "CMakeFiles/tests_unit.dir/tests/unit/rng_test.cpp.o" "gcc" "CMakeFiles/tests_unit.dir/tests/unit/rng_test.cpp.o.d"
  "/root/repo/tests/unit/scenario_test.cpp" "CMakeFiles/tests_unit.dir/tests/unit/scenario_test.cpp.o" "gcc" "CMakeFiles/tests_unit.dir/tests/unit/scenario_test.cpp.o.d"
  "/root/repo/tests/unit/schedule_test.cpp" "CMakeFiles/tests_unit.dir/tests/unit/schedule_test.cpp.o" "gcc" "CMakeFiles/tests_unit.dir/tests/unit/schedule_test.cpp.o.d"
  "/root/repo/tests/unit/stats_test.cpp" "CMakeFiles/tests_unit.dir/tests/unit/stats_test.cpp.o" "gcc" "CMakeFiles/tests_unit.dir/tests/unit/stats_test.cpp.o.d"
  "/root/repo/tests/unit/table_test.cpp" "CMakeFiles/tests_unit.dir/tests/unit/table_test.cpp.o" "gcc" "CMakeFiles/tests_unit.dir/tests/unit/table_test.cpp.o.d"
  "/root/repo/tests/unit/timer_model_test.cpp" "CMakeFiles/tests_unit.dir/tests/unit/timer_model_test.cpp.o" "gcc" "CMakeFiles/tests_unit.dir/tests/unit/timer_model_test.cpp.o.d"
  "/root/repo/tests/unit/timer_wheel_test.cpp" "CMakeFiles/tests_unit.dir/tests/unit/timer_wheel_test.cpp.o" "gcc" "CMakeFiles/tests_unit.dir/tests/unit/timer_wheel_test.cpp.o.d"
  "/root/repo/tests/unit/trace_test.cpp" "CMakeFiles/tests_unit.dir/tests/unit/trace_test.cpp.o" "gcc" "CMakeFiles/tests_unit.dir/tests/unit/trace_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/CMakeFiles/omega.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
