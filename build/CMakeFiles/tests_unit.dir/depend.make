# Empty dependencies file for tests_unit.
# This may be replaced when dependencies are built.
