file(REMOVE_RECURSE
  "CMakeFiles/example_adversary_explorer.dir/examples/adversary_explorer.cpp.o"
  "CMakeFiles/example_adversary_explorer.dir/examples/adversary_explorer.cpp.o.d"
  "example_adversary_explorer"
  "example_adversary_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_adversary_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
