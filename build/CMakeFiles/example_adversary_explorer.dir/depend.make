# Empty dependencies file for example_adversary_explorer.
# This may be replaced when dependencies are built.
