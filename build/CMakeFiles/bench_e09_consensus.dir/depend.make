# Empty dependencies file for bench_e09_consensus.
# This may be replaced when dependencies are built.
