file(REMOVE_RECURSE
  "CMakeFiles/bench_e09_consensus.dir/bench/bench_e09_consensus.cpp.o"
  "CMakeFiles/bench_e09_consensus.dir/bench/bench_e09_consensus.cpp.o.d"
  "bench_e09_consensus"
  "bench_e09_consensus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e09_consensus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
