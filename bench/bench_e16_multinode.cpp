// E16 — the replicated log as a real distributed system: three OS
// processes on localhost, one replica each, shared state carried by the
// v1.2 register-push mirror (registers/mirror.h + net/register_peer.h).
//
// E15 measured the SMR write path with all three replicas in one address
// space (the paper's shared-memory model taken literally). This
// experiment runs the SAME algorithms — Ω election, alpha consensus,
// batched slots — across process boundaries: every locally-owned
// register write streams to the peers FIFO, each node reads remote state
// from its mirror (regular registers: per-cell monotone, bounded
// staleness), and only the node hosting the elected leader seals batches.
//
// Measured:
//   1. appends/s through the leader node's TCP front-end (pipelined
//      loadgen, B=64 group commit) — the cross-process mirror tax over
//      E15's single-process rate;
//   2. push-lag — commit visibility at a FOLLOWER: per committed index,
//      the delta between the leader's commit acknowledgement and the
//      follower's COMMIT_EVENT push (covers mirror push + apply +
//      follower harvest + watch fan-out), p50/p99;
//   3. crash-failover across processes — SIGKILL the leader's OS
//      process, measure until a surviving node commits an append
//      (target < 1 s);
//   4. convergence — the survivors' logs agree entry for entry, with the
//      pre-crash prefix intact.
//
// The parent process is a pure wire-protocol client; fork() happens
// before any thread exists, so the children can build the full threaded
// runtime (worker pool, epoll loops, mirror streams).
#include <arpa/inet.h>
#include <dirent.h>
#include <netinet/in.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "harness.h"
#include "net/client.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "obs/trace_stitch.h"
#include "smr/node.h"
#include "wal/wal.h"

namespace {

using namespace omega;
using namespace omega::bench;

std::int64_t wall_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

constexpr svc::GroupId kGid = 16;
constexpr std::uint32_t kNodes = 3;
constexpr std::uint64_t kTarget = 24000;
constexpr std::uint32_t kConnections = 16;
constexpr std::uint32_t kDepth = 16;

std::uint16_t pick_free_port() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  OMEGA_CHECK(fd >= 0, "socket: errno " << errno);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  OMEGA_CHECK(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) ==
                  0,
              "bind: errno " << errno);
  socklen_t len = sizeof addr;
  OMEGA_CHECK(getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0,
              "getsockname");
  const std::uint16_t port = ntohs(addr.sin_port);
  ::close(fd);
  return port;
}

smr::SmrSpec bench_spec() {
  smr::SmrSpec spec;
  spec.n = 3;
  spec.capacity = 49152;
  spec.window = 4;
  spec.max_batch = 64;
  spec.max_pending = 8192;
  // Every measured number below is priced with full durability on: an
  // acked append is fsync'd into a QUORUM of per-node WALs before the
  // client hears kOk (PR 9), and the crash-restart phase restarts the
  // killed node from its journal.
  spec.quorum_ack = true;
  return spec;
}

[[noreturn]] void run_node(const smr::NodeTopology& base, std::uint32_t self,
                           const std::string& wal_dir) {
  try {
    smr::NodeTopology topo = base;
    topo.self = self;
    svc::SvcConfig scfg;
    scfg.workers = 1;
    // 50ms failure-detection ticks: heartbeats ride sub-ms TCP pushes,
    // so a live leader is never suspected, while a SIGKILLed one is
    // replaced in a few ticks — the <1s failover budget. The adaptive
    // pace keeps three colocated nodes from spinning one core when only
    // one of them is sealing.
    scfg.tick_us = 50000;
    scfg.wheel_slot_us = 4096;
    scfg.ops_per_sweep = 64;
    scfg.pace_us = 50;
    scfg.max_pace_us = 2000;
    scfg.worker_nice = 10;
    wal::WalOptions wopts;
    wopts.dir = wal_dir;
    smr::SmrNode node(topo, scfg, {}, wopts);
    node.add_log(kGid, bench_spec());
    node.start();
    for (;;) ::pause();
  } catch (...) {
    _exit(1);
  }
  _exit(0);
}

struct Cluster {
  smr::NodeTopology topo;
  std::vector<pid_t> pids;
  std::vector<std::string> wal_dirs;

  bool alive(std::uint32_t node) const { return pids[node] > 0; }

  pid_t spawn(std::uint32_t node) {
    const pid_t pid = fork();
    if (pid == 0) run_node(topo, node, wal_dirs[node]);
    return pid;
  }

  void kill_node(std::uint32_t node) {
    ::kill(pids[node], SIGKILL);
    ::waitpid(pids[node], nullptr, 0);
    pids[node] = -1;
  }

  /// The restart under test: SAME identity, SAME ports, SAME WAL dir.
  void restart_node(std::uint32_t node) { pids[node] = spawn(node); }

  ~Cluster() {
    for (const pid_t pid : pids) {
      if (pid > 0) ::kill(pid, SIGKILL);
    }
    for (const pid_t pid : pids) {
      if (pid > 0) ::waitpid(pid, nullptr, 0);
    }
  }
};

void connect_retry(Cluster& cluster, net::Client& c, std::uint32_t node,
                   int deadline_s) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(deadline_s);
  for (;;) {
    try {
      c.connect("127.0.0.1", cluster.topo.nodes[node].serve_port, 2000);
      return;
    } catch (const net::NetError&) {
      OMEGA_CHECK(std::chrono::steady_clock::now() < deadline,
                  "node " << node << " unreachable");
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
  }
}

ProcessId await_cluster_leader(Cluster& cluster, int deadline_s) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(deadline_s);
  while (std::chrono::steady_clock::now() < deadline) {
    for (std::uint32_t node = 0; node < kNodes; ++node) {
      if (!cluster.alive(node)) continue;
      try {
        net::Client c;
        connect_retry(cluster, c, node, 5);
        const auto r = c.leader(kGid);
        if (r.ok() && r.view.leader != kNoProcess &&
            cluster.alive(cluster.topo.node_of(r.view.leader))) {
          return r.view.leader;
        }
      } catch (const net::NetError&) {
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  return kNoProcess;
}

struct LoadResult {
  double qps = 0;
  std::int64_t ack_p50_ns = 0;
  std::int64_t ack_p99_ns = 0;
  std::uint64_t committed = 0;
  std::uint64_t not_leader = 0;
  std::uint64_t bad = 0;
};

/// Pipelined appenders against one node; stamps t_ack[index] (ns) for the
/// follower-lag join.
LoadResult run_appenders(std::uint16_t port, std::uint64_t target,
                         int deadline_ms,
                         std::vector<std::int64_t>& t_ack) {
  struct Conn {
    struct Out {
      std::uint64_t req_id = 0;
      std::int64_t sent_ns = 0;
    };
    net::Client client;
    std::uint64_t id = 0;
    std::uint64_t next_seq = 1;
    std::vector<Out> outstanding;
  };
  std::vector<Conn> conns(kConnections);
  std::vector<pollfd> pfds(kConnections);
  for (std::uint32_t i = 0; i < kConnections; ++i) {
    conns[i].client.connect("127.0.0.1", port);
    conns[i].id = 1000 + i;
    pfds[i] = pollfd{conns[i].client.native_handle(), POLLIN, 0};
  }
  std::vector<std::int64_t> lat;
  lat.reserve(target);
  LoadResult result;
  const std::int64_t t0 = wall_ns();
  const std::int64_t deadline = t0 + std::int64_t{deadline_ms} * 1000000;

  auto top_up = [&](Conn& c) {
    while (c.outstanding.size() < kDepth) {
      const std::uint64_t seq = c.next_seq++;
      const std::uint64_t cmd = 1 + ((c.id * 131 + seq) % 65533);
      const std::int64_t now = wall_ns();
      c.outstanding.push_back(
          Conn::Out{c.client.append_async(kGid, c.id, seq, cmd), now});
    }
  };
  for (auto& c : conns) top_up(c);

  while (result.committed < target && wall_ns() < deadline) {
    if (::poll(pfds.data(), pfds.size(), 50) <= 0) continue;
    const std::int64_t now = wall_ns();
    for (std::uint32_t i = 0; i < kConnections; ++i) {
      if (!(pfds[i].revents & POLLIN)) continue;
      Conn& c = conns[i];
      for (;;) {
        const auto a = c.client.next_append_result(0);
        if (!a.has_value()) break;
        std::int64_t sent = 0;
        for (auto it = c.outstanding.begin(); it != c.outstanding.end();
             ++it) {
          if (it->req_id == a->req_id) {
            sent = it->sent_ns;
            *it = c.outstanding.back();
            c.outstanding.pop_back();
            break;
          }
        }
        if (a->result.status == net::Status::kOk) {
          lat.push_back(now - sent);
          ++result.committed;
          if (a->result.index < t_ack.size()) {
            t_ack[a->result.index] = now;
          }
        } else if (a->result.status == net::Status::kNotLeader) {
          ++result.not_leader;
        } else {
          ++result.bad;
        }
      }
      top_up(c);
    }
  }
  const std::int64_t t1 = wall_ns();
  result.qps = static_cast<double>(result.committed) /
               (static_cast<double>(t1 - t0) / 1e9);
  result.ack_p50_ns = percentile_ns(lat, 0.50);
  result.ack_p99_ns = percentile_ns(lat, 0.99);
  return result;
}

/// True when some `omega_trace_*.txt` in `dir` contains `needle` — the
/// flight-recorder dump a surviving node writes when it takes over.
bool trace_dump_contains(const std::string& dir, const std::string& needle) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return false;
  bool found = false;
  while (const dirent* e = ::readdir(d)) {
    const std::string name = e->d_name;
    if (name.rfind("omega_trace_", 0) != 0) continue;
    std::ifstream in(dir + "/" + name);
    std::stringstream body;
    body << in.rdbuf();
    if (body.str().find(needle) != std::string::npos) {
      found = true;
      break;
    }
  }
  ::closedir(d);
  return found;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = json_path_from_args(argc, argv);
  const bool perf_advisory =
      std::getenv("OMEGA_E16_PERF_ADVISORY") != nullptr;

  std::cout << banner(
      "E16: multi-node SMR over pushed register mirrors",
      {"topology: 3 OS processes x 1 replica, localhost TCP,",
       "          v1.2 REG_PUSH mirror streams + v1 client protocol",
       "measure : appends/sec through the leader node (B=64),",
       "          push-lag ack->follower COMMIT_EVENT p50/p99,",
       "          SIGKILL leader -> first commit on a survivor"});

  Verdict verdict;
  JsonReport json;

  // Children inherit the flight-recorder dump directory: next to the
  // --json artifact so CI archives traces with the numbers. An external
  // OMEGA_TRACE_DIR wins (overwrite=0).
  {
    std::string trace_dir = ".";
    const auto slash = json_path.rfind('/');
    if (slash != std::string::npos) trace_dir = json_path.substr(0, slash);
    ::setenv("OMEGA_TRACE_DIR", trace_dir.c_str(), /*overwrite=*/0);
  }
  const std::string trace_dir = std::getenv("OMEGA_TRACE_DIR");

  Cluster cluster;
  for (std::uint32_t i = 0; i < kNodes; ++i) {
    cluster.topo.nodes.push_back(smr::NodeEndpoint{
        i, "127.0.0.1", pick_free_port(), pick_free_port()});
    // WAL segments live next to the trace/json artifacts, so CI archives
    // the actual journals alongside the numbers they produced.
    cluster.wal_dirs.push_back(trace_dir + "/WAL_e16_node" +
                               std::to_string(i));
  }
  // A stale journal from a previous run would be replayed as this run's
  // history — wipe the dirs so every node starts life fresh.
  {
    wal::PosixWalIo io;
    for (const std::string& dir : cluster.wal_dirs) {
      for (const std::string& name : io.list(dir)) {
        std::remove((dir + "/" + name).c_str());
      }
    }
  }
  for (std::uint32_t i = 0; i < kNodes; ++i) {
    cluster.pids.push_back(cluster.spawn(i));
  }

  // --- phase A: election across processes. ---------------------------------
  const std::int64_t elect_t0 = wall_ns();
  const ProcessId leader = await_cluster_leader(cluster, 120);
  verdict.expect(leader != kNoProcess,
                 "three processes must elect a leader over the mirror");
  const double elect_ms =
      static_cast<double>(wall_ns() - elect_t0) / 1e6;
  const std::uint32_t leader_node = cluster.topo.node_of(leader);
  std::cout << "  leader: replica " << leader << " on node " << leader_node
            << " after " << fmt_double(elect_ms, 1) << " ms\n\n";
  json.set("election_ms", elect_ms);

  // --- phase B: throughput + follower push lag. ----------------------------
  // A watcher drains COMMIT_EVENT pushes from a follower while the
  // loadgen drives the leader; the per-index join gives the mirror's
  // end-to-end propagation lag.
  std::uint32_t follower_node = (leader_node + 1) % kNodes;
  std::vector<std::int64_t> t_ack(bench_spec().capacity * 64, 0);
  std::vector<std::int64_t> t_event(t_ack.size(), 0);
  std::atomic<bool> watcher_stop{false};
  std::thread watcher([&] {
    try {
      net::Client w;
      connect_retry(cluster, w, follower_node, 60);
      const auto snap = w.commit_watch(kGid);
      (void)snap;
      while (!watcher_stop.load(std::memory_order_relaxed)) {
        const auto ev = w.next_event(100);
        if (!ev.has_value()) continue;
        if (ev->kind == net::Client::Event::Kind::kCommit &&
            ev->index < t_event.size()) {
          t_event[ev->index] = wall_ns();
        }
      }
    } catch (const net::NetError&) {
      // A dead watcher only costs the lag metric, never the bench.
    }
  });

  LoadResult load =
      run_appenders(cluster.topo.nodes[leader_node].serve_port, kTarget,
                    /*deadline_ms=*/60000, t_ack);
  // Let the tail of the events drain, then stop the watcher.
  std::this_thread::sleep_for(std::chrono::seconds(2));
  watcher_stop.store(true, std::memory_order_relaxed);
  watcher.join();

  std::vector<std::int64_t> lag;
  lag.reserve(load.committed);
  for (std::size_t i = 0; i < t_ack.size(); ++i) {
    if (t_ack[i] > 0 && t_event[i] > 0) {
      lag.push_back(std::max<std::int64_t>(0, t_event[i] - t_ack[i]));
    }
  }
  const std::int64_t lag_p50 = percentile_ns(lag, 0.50);
  const std::int64_t lag_p99 = percentile_ns(lag, 0.99);

  AsciiTable table({"metric", "value"});
  table.add_row({"appends/sec (leader node)",
                 fmt_count(static_cast<std::uint64_t>(load.qps))});
  table.add_row({"committed", fmt_count(load.committed)});
  table.add_row({"ack p50 / p99 (ms)",
                 fmt_double(static_cast<double>(load.ack_p50_ns) / 1e6, 2) +
                     " / " +
                     fmt_double(static_cast<double>(load.ack_p99_ns) / 1e6,
                                2)});
  table.add_row({"push-lag samples", fmt_count(lag.size())});
  table.add_row({"push-lag p50 / p99 (ms)",
                 fmt_double(static_cast<double>(lag_p50) / 1e6, 2) + " / " +
                     fmt_double(static_cast<double>(lag_p99) / 1e6, 2)});
  std::cout << table.render() << '\n';

  verdict.expect(load.bad == 0, "every append answered ok or not-leader");
  verdict.expect(load.committed > 0, "appends must commit cross-process");
  const std::string target_msg =
      "the full target must commit inside the deadline (got " +
      fmt_count(load.committed) + "/" + fmt_count(kTarget) + ")";
  if (perf_advisory) {
    if (load.committed < kTarget) {
      std::cout << "  [ADVISORY] " << target_msg << '\n';
    }
  } else {
    verdict.expect(load.committed >= kTarget, target_msg);
  }
  verdict.expect(!lag.empty(),
                 "the follower must push COMMIT_EVENTs for leader commits");

  json.set("appends_per_sec", load.qps);
  json.set("committed", load.committed);
  json.set("ack_p50_ms", static_cast<double>(load.ack_p50_ns) / 1e6);
  json.set("ack_p99_ms", static_cast<double>(load.ack_p99_ns) / 1e6);
  json.set("push_lag_p50_ms", static_cast<double>(lag_p50) / 1e6);
  json.set("push_lag_p99_ms", static_cast<double>(lag_p99) / 1e6);
  json.set("push_lag_samples", static_cast<std::uint64_t>(lag.size()));

  // --- phase B2: cross-process causal trace stitch. ------------------------
  // Scrape every node's flight recorder over the v1.4 TRACE_DUMP frame
  // while all three processes are still alive, and stitch the records by
  // trace id: at least one append's full causal chain — client enqueue,
  // leader seal/decide/apply, mirror push, follower apply, commit-event
  // fan-out — must land on one wall-clock timeline spanning the process
  // boundary. Batch events tag only the first and last id of each B=64
  // batch, so only a fraction of appends stitch end to end; the chain
  // count below is that fraction, not the commit count.
  {
    using obs::TraceEvent;
    std::vector<obs::NodeTrace> nodes;
    for (std::uint32_t node = 0; node < kNodes; ++node) {
      if (!cluster.alive(node)) continue;
      try {
        net::Client c;
        connect_retry(cluster, c, node, 30);
        net::Client::TraceDumpResult d = c.trace_dump();
        if (d.status == net::Status::kOk) {
          nodes.push_back(obs::NodeTrace{node, d.realtime_offset_ns,
                                         std::move(d.records)});
        }
      } catch (const net::NetError&) {
      }
    }
    verdict.expect(nodes.size() == kNodes,
                   "every node must answer the v1.4 TRACE_DUMP scrape");
    const std::vector<obs::StitchedTrace> traces = obs::stitch(nodes);
    verdict.expect(!traces.empty(),
                   "the scraped rings must stitch into traced appends");

    struct HopStat {
      const char* label;
      const char* key;
      std::vector<std::int64_t> ns;
    };
    HopStat hops[] = {{"enqueue->seal", "hop_enqueue_seal", {}},
                      {"seal->decide", "hop_seal_decide", {}},
                      {"decide->apply", "hop_decide_apply", {}},
                      {"seal->mirror-push", "hop_seal_push", {}},
                      {"enqueue->follower-apply", "hop_follower_apply", {}},
                      {"enqueue->commit-fanout", "hop_commit_fanout", {}}};
    std::uint64_t full_chains = 0;
    std::vector<const obs::StitchedTrace*> chain_samples;
    for (const auto& t : traces) {
      const obs::TraceHop* enq = obs::find_hop(t, TraceEvent::kAppendEnqueue);
      if (enq == nullptr) continue;
      const std::int64_t ln = enq->node;  // the node that took the append
      const std::int64_t d_seal =
          obs::hop_ns(t, TraceEvent::kAppendEnqueue, TraceEvent::kBatchSeal,
                      ln, ln);
      const std::int64_t d_decide =
          obs::hop_ns(t, TraceEvent::kBatchSeal, TraceEvent::kSlotDecide, ln,
                      ln);
      const std::int64_t d_apply =
          obs::hop_ns(t, TraceEvent::kSlotDecide, TraceEvent::kBatchApply,
                      ln, ln);
      const std::int64_t d_push =
          obs::hop_ns(t, TraceEvent::kBatchSeal, TraceEvent::kBatchPush, ln,
                      ln);
      if (d_seal >= 0) hops[0].ns.push_back(d_seal);
      if (d_decide >= 0) hops[1].ns.push_back(d_decide);
      if (d_apply >= 0) hops[2].ns.push_back(d_apply);
      if (d_push >= 0) hops[3].ns.push_back(d_push);
      std::int64_t d_follower = -1;
      std::int64_t d_fanout = -1;
      for (const auto& h : t.hops) {
        if (h.wall_ns < enq->wall_ns) continue;
        if (h.ev == TraceEvent::kBatchApply &&
            static_cast<std::int64_t>(h.node) != ln) {
          d_follower = std::max(d_follower, h.wall_ns - enq->wall_ns);
        }
        if (h.ev == TraceEvent::kCommitFanout) {
          d_fanout = std::max(d_fanout, h.wall_ns - enq->wall_ns);
        }
      }
      if (d_follower >= 0) hops[4].ns.push_back(d_follower);
      if (d_fanout >= 0) hops[5].ns.push_back(d_fanout);
      if (d_seal >= 0 && d_decide >= 0 && d_apply >= 0 && d_push >= 0 &&
          d_follower >= 0 && d_fanout >= 0) {
        ++full_chains;
        if (chain_samples.size() < 16) chain_samples.push_back(&t);
      }
    }
    verdict.expect(full_chains >= 1,
                   "at least one append must stitch end to end: enqueue -> "
                   "seal -> decide -> apply -> mirror push -> follower "
                   "apply -> commit fan-out, across 3 OS processes");
    std::cout << "\ncausal trace stitch (v1.4 TRACE_DUMP, all nodes):\n"
              << "  stitched appends: " << fmt_count(traces.size())
              << ", full cross-process chains: " << fmt_count(full_chains)
              << '\n';
    AsciiTable hop_table({"hop", "count", "p50 us", "p99 us"});
    for (auto& h : hops) {
      const std::int64_t p50 = percentile_ns(h.ns, 0.50);
      const std::int64_t p99 = percentile_ns(h.ns, 0.99);
      hop_table.add_row(
          {h.label, fmt_count(h.ns.size()),
           fmt_double(static_cast<double>(p50) / 1e3, 1),
           fmt_double(static_cast<double>(p99) / 1e3, 1)});
      json.set(std::string(h.key) + "_p50_us",
               static_cast<double>(p50) / 1e3);
      json.set(std::string(h.key) + "_p99_us",
               static_cast<double>(p99) / 1e3);
      json.set(std::string(h.key) + "_samples",
               static_cast<std::uint64_t>(h.ns.size()));
    }
    std::cout << hop_table.render();
    json.set("stitched_traces", static_cast<std::uint64_t>(traces.size()));
    json.set("full_chains", full_chains);

    // Archive a handful of full chains next to the --json artifact: the
    // human-readable twin of the numbers above.
    if (!chain_samples.empty()) {
      std::vector<obs::StitchedTrace> sample;
      for (const auto* t : chain_samples) sample.push_back(*t);
      const std::string stitch_path = trace_dir + "/TRACE_e16_stitched.txt";
      std::ofstream out(stitch_path);
      if (out) {
        out << obs::render_stitched(sample);
        std::cout << "  stitched timeline: " << stitch_path << '\n';
      }
    }
  }

  // --- phase C0: v1.5 HEALTH poller on a survivor. -------------------------
  // A thread polls HEALTH on a node that outlives the SIGKILL at ~100ms.
  // The acceptance gate is the verdict arc kOk -> kDegraded -> kOk: the
  // survivor's leader-churn rule fires when the election replaces the
  // killed leader, and the hysteresis clears it once the new epoch holds.
  const std::uint32_t health_node = (leader_node + 1) % kNodes;
  struct HealthObs {
    std::int64_t ns = 0;
    std::uint8_t overall = 0;
    std::string firing;
  };
  std::vector<HealthObs> health_log;
  std::mutex health_mu;
  std::atomic<bool> health_stop{false};
  {
    // The load phase just ended: wait for the baseline kOk before the
    // kill, so the degraded window below is attributable to the failover.
    bool baseline_ok = false;
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    net::Client hc;
    connect_retry(cluster, hc, health_node, 30);
    while (!baseline_ok && std::chrono::steady_clock::now() < deadline) {
      try {
        const auto h = hc.health();
        if (h.ok() && h.overall == 0) {
          baseline_ok = true;
          break;
        }
      } catch (const net::NetError&) {
        hc.close();
        connect_retry(cluster, hc, health_node, 10);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
    }
    verdict.expect(baseline_ok,
                   "the survivor must report HEALTH ok before the kill");
  }
  std::thread health_poller([&] {
    net::Client hc;
    bool connected = false;
    while (!health_stop.load(std::memory_order_relaxed)) {
      try {
        if (!connected) {
          connect_retry(cluster, hc, health_node, 10);
          connected = true;
        }
        const auto h = hc.health();
        if (h.ok()) {
          HealthObs obs;
          obs.ns = wall_ns();
          obs.overall = h.overall;
          for (const net::HealthRuleWire& r : h.firing) {
            if (!obs.firing.empty()) obs.firing += "; ";
            obs.firing += r.name + ": " + r.reason;
          }
          std::lock_guard<std::mutex> lk(health_mu);
          health_log.push_back(std::move(obs));
        }
      } catch (const net::NetError&) {
        hc.close();
        connected = false;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
  });

  // --- phase C: SIGKILL the leader process. --------------------------------
  std::cout << "\n  SIGKILL node " << leader_node << " (replica " << leader
            << ") ...\n";
  cluster.kill_node(leader_node);
  const std::int64_t crash_t0 = wall_ns();
  bool post_crash_committed = false;
  std::uint64_t post_crash_index = 0;
  const auto failover_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(120);
  while (!post_crash_committed &&
         std::chrono::steady_clock::now() < failover_deadline) {
    const ProcessId nl = await_cluster_leader(cluster, 60);
    if (nl == kNoProcess) break;
    try {
      net::Client c;
      connect_retry(cluster, c, cluster.topo.node_of(nl), 10);
      const auto r = c.append_retry(kGid, /*client=*/9001, /*seq=*/1,
                                    /*command=*/777, 15000);
      if (r.ok()) {
        post_crash_committed = true;
        post_crash_index = r.index;
      }
    } catch (const net::NetError&) {
    }
  }
  const double failover_ms =
      static_cast<double>(wall_ns() - crash_t0) / 1e6;
  verdict.expect(post_crash_committed,
                 "a surviving node must take over and commit");
  std::cout << "  failover -> first commit on a survivor: "
            << fmt_double(failover_ms, 1) << " ms (index "
            << post_crash_index << ")\n";
  const std::string failover_msg =
      "failover must land under 1s (got " + fmt_double(failover_ms, 1) +
      " ms)";
  if (perf_advisory) {
    if (failover_ms >= 1000) {
      std::cout << "  [ADVISORY] " << failover_msg << '\n';
    }
  } else {
    verdict.expect(failover_ms < 1000, failover_msg);
  }
  json.set("failover_ms", failover_ms);

  // The surviving new leader dumped its flight recorder at takeover —
  // a merged trace whose failover_ticket events are the forensic record
  // of the displaced batches. Poll briefly: the dump is written on the
  // survivor's sweep thread, not our clock.
  {
    bool dumped = false;
    const auto dump_deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(15);
    while (!dumped && std::chrono::steady_clock::now() < dump_deadline) {
      dumped = trace_dump_contains(trace_dir, "failover_ticket");
      if (!dumped) {
        std::this_thread::sleep_for(std::chrono::milliseconds(200));
      }
    }
    verdict.expect(dumped,
                   "a flight-recorder dump with failover_ticket events "
                   "must appear in " + trace_dir);
    std::cout << "  flight-recorder dump with failover_ticket events: "
              << (dumped ? "present" : "MISSING") << " (" << trace_dir
              << ")\n";
  }

  // --- phase D: survivor convergence. --------------------------------------
  std::vector<std::vector<std::uint64_t>> logs(kNodes);
  for (std::uint32_t node = 0; node < kNodes; ++node) {
    if (!cluster.alive(node)) continue;
    net::Client c;
    connect_retry(cluster, c, node, 60);
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(120);
    std::uint64_t from = 0;
    for (;;) {
      const auto page = c.read_log(kGid, from, 256);
      OMEGA_CHECK(page.status == net::Status::kOk, "read_log failed");
      for (const std::uint64_t v : page.entries) logs[node].push_back(v);
      from += page.entries.size();
      if (from >= page.commit_index && page.commit_index > post_crash_index) {
        break;
      }
      if (page.entries.empty()) {
        OMEGA_CHECK(std::chrono::steady_clock::now() < deadline,
                    "survivor " << node << " never converged");
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
      }
    }
  }
  std::vector<const std::vector<std::uint64_t>*> survivors;
  for (std::uint32_t node = 0; node < kNodes; ++node) {
    if (cluster.alive(node)) survivors.push_back(&logs[node]);
  }
  const std::size_t common =
      std::min(survivors[0]->size(), survivors[1]->size());
  bool agree = true;
  for (std::size_t i = 0; i < common; ++i) {
    agree = agree && (*survivors[0])[i] == (*survivors[1])[i];
  }
  verdict.expect(agree, "the survivors' logs must agree entry for entry");
  verdict.expect(common > load.committed,
                 "the shared log must cover the pre-crash commits");
  json.set("survivor_log_len", static_cast<std::uint64_t>(common));

  // --- phase D1: crash-restart rejoin (PR 9). ------------------------------
  // The SIGKILL'd node restarts IN PLACE: same identity, same ports, same
  // WAL directory. Before respawning, replay the journal in the parent —
  // the count below is exactly what the restarting node recovers (a
  // SIGKILL left no chance for a parting flush, so a non-trivial count
  // proves the journal was written on the hot path). Then measure fork ->
  // "serves the full log", the operator-facing rejoin time.
  {
    std::uint64_t wal_replay_records = 0;
    {
      wal::WalOptions wopts;
      wopts.dir = cluster.wal_dirs[leader_node];
      wal::Wal probe(wopts);
      const wal::ReplayResult r = probe.replay();
      verdict.expect(!r.corrupt,
                     "the killed node's WAL must replay clean (torn tail "
                     "at most)");
      wal_replay_records = r.records;
    }
    verdict.expect(wal_replay_records > 0,
                   "the killed leader's WAL must hold journaled records");

    const std::int64_t restart_t0 = wall_ns();
    cluster.restart_node(leader_node);
    std::vector<std::uint64_t> rejoined;
    const auto rejoin_deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(120);
    bool caught_up = false;
    while (std::chrono::steady_clock::now() < rejoin_deadline) {
      try {
        net::Client c;
        connect_retry(cluster, c, leader_node, 10);
        rejoined.clear();
        std::uint64_t from = 0;
        for (;;) {
          const auto page = c.read_log(kGid, from, 256);
          if (page.status != net::Status::kOk) break;
          for (const std::uint64_t v : page.entries) {
            rejoined.push_back(v);
          }
          from += page.entries.size();
          if (page.entries.empty()) break;
        }
        if (rejoined.size() >= common &&
            rejoined.size() >= post_crash_index) {
          caught_up = true;
          break;
        }
      } catch (const net::NetError&) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    const double restart_rejoin_ms =
        static_cast<double>(wall_ns() - restart_t0) / 1e6;
    verdict.expect(caught_up,
                   "the restarted node must serve the full log (replayed "
                   "prefix + resynced crash-window entries)");
    // Identical across the restart: the rejoined node's log must equal
    // the survivors' shared prefix entry for entry — nothing rewritten,
    // nothing fabricated by replay.
    bool restart_agrees = caught_up;
    for (std::size_t i = 0; restart_agrees && i < common; ++i) {
      restart_agrees = rejoined[i] == (*survivors[0])[i];
    }
    verdict.expect(restart_agrees,
                   "the restarted node's log must match the survivors' "
                   "entry for entry");
    std::cout << "\n  crash-restart rejoin: node " << leader_node
              << " replayed " << fmt_count(wal_replay_records)
              << " WAL records, served the full log "
              << fmt_double(restart_rejoin_ms, 1) << " ms after respawn\n";
    json.set("restart_rejoin_ms", restart_rejoin_ms);
    json.set("wal_replay_records", wal_replay_records);
  }

  // --- phase D2: the HEALTH verdict arc across the failover. ---------------
  // Keep polling until the survivor publishes ok again (the leader-churn
  // window is 5s plus recover_after ticks), then gate on the full
  // kOk -> kDegraded -> kOk arc and archive the timeline for CI.
  {
    bool saw_degraded = false;
    bool saw_recovered = false;
    const auto scan = [&] {
      saw_degraded = false;
      saw_recovered = false;
      std::lock_guard<std::mutex> lk(health_mu);
      for (const HealthObs& o : health_log) {
        if (o.ns < crash_t0) continue;
        if (o.overall >= 1) saw_degraded = true;
        if (saw_degraded && o.overall == 0) saw_recovered = true;
      }
    };
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    for (;;) {
      scan();
      if (saw_recovered || std::chrono::steady_clock::now() >= deadline) {
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
    }
    health_stop.store(true, std::memory_order_relaxed);
    health_poller.join();
    scan();
    verdict.expect(saw_degraded,
                   "the failover must surface as a degraded HEALTH verdict "
                   "on the surviving node");
    verdict.expect(saw_recovered,
                   "the HEALTH verdict must recover to ok once the new "
                   "epoch holds");
    std::int64_t degraded_ms = -1;
    std::int64_t recovered_ms = -1;
    {
      std::lock_guard<std::mutex> lk(health_mu);
      bool past_degraded = false;
      for (const HealthObs& o : health_log) {
        if (o.ns < crash_t0) continue;
        if (o.overall >= 1) {
          if (degraded_ms < 0) degraded_ms = (o.ns - crash_t0) / 1000000;
          past_degraded = true;
        } else if (past_degraded && recovered_ms < 0) {
          recovered_ms = (o.ns - crash_t0) / 1000000;
        }
      }
      const std::string health_path = trace_dir + "/HEALTH_e16.txt";
      std::ofstream out(health_path);
      if (out) {
        out << "# v1.5 HEALTH timeline, node " << health_node
            << ", t=0 at SIGKILL of node " << leader_node << "\n"
            << "# ms_since_kill verdict firing\n";
        for (const HealthObs& o : health_log) {
          out << (o.ns - crash_t0) / 1000000 << ' '
              << obs::health_name(static_cast<obs::Health>(
                     std::min<std::uint8_t>(o.overall, 2)))
              << ' ' << (o.firing.empty() ? "-" : o.firing) << '\n';
        }
        std::cout << "  health timeline: " << health_path << '\n';
      }
      std::cout << "  health arc: ok -> degraded after " << degraded_ms
                << " ms -> ok after " << recovered_ms << " ms ("
                << health_log.size() << " polls)\n";
    }
    json.set("health_degraded_ms", degraded_ms);
    json.set("health_recovered_ms", recovered_ms);
  }

  // --- phase E: scrape v1.3 METRICS off a survivor. ------------------------
  // The stage histograms cross the wire here (paged METRICS frames), not
  // an in-process scrape: the numbers below prove the live cluster's
  // instrumentation end to end, post-failover.
  {
    std::uint32_t survivor_node = kNodes;
    for (std::uint32_t node = 0; node < kNodes; ++node) {
      if (cluster.alive(node)) {
        survivor_node = node;
        break;
      }
    }
    net::Client c;
    connect_retry(cluster, c, survivor_node, 30);
    const auto m = c.metrics();
    verdict.expect(m.ok() && !m.metrics.empty(),
                   "a survivor must answer the v1.3 METRICS scrape");
    AsciiTable stage_table({"stage (survivor)", "samples", "p50 us",
                            "p99 us"});
    const auto report_stage = [&](const char* metric, const char* key,
                                  const char* label) {
      const obs::MetricSample* s = m.find(metric);
      if (s == nullptr) return;
      stage_table.add_row(
          {label, fmt_count(static_cast<std::uint64_t>(s->value)),
           fmt_double(static_cast<double>(s->quantile(0.5)) / 1e3, 1),
           fmt_double(static_cast<double>(s->quantile(0.99)) / 1e3, 1)});
      json.set(std::string(key) + "_p50_us",
               static_cast<double>(s->quantile(0.5)) / 1e3);
      json.set(std::string(key) + "_p99_us",
               static_cast<double>(s->quantile(0.99)) / 1e3);
      json.set(std::string(key) + "_samples",
               static_cast<std::uint64_t>(s->value));
    };
    report_stage("smr.seal_to_decide_ns", "seal_to_decide", "seal->decide");
    report_stage("smr.decide_to_apply_ns", "decide_to_apply",
                 "decide->apply");
    report_stage("net.ack_flush_ns", "ack_flush", "ack flush");
    report_stage("mirror.push_lag_ns", "mirror_push_lag", "mirror push lag");
    std::cout << "\npipeline stage latencies (METRICS scrape, survivor node "
              << survivor_node << "):\n"
              << stage_table.render();
    const obs::MetricSample* applies = m.find("smr.decide_to_apply_ns");
    verdict.expect(applies != nullptr && applies->value > 0,
                   "the survivor's apply histogram must have samples");
    if (!json_path.empty()) {
      const auto slash = json_path.rfind('/');
      const std::string prom_path =
          (slash == std::string::npos ? std::string()
                                      : json_path.substr(0, slash + 1)) +
          "METRICS_e16.prom";
      std::ofstream prom(prom_path);
      if (prom) {
        prom << obs::render_prometheus(m.metrics);
        std::cout << "metrics snapshot: " << prom_path << '\n';
      }
    }
  }

  json.set_str("bench", "e16_multinode");
  json.write(json_path);

  std::cout << '\n';
  return verdict.finish(
      "the replicated log runs as three OS processes over pushed register "
      "mirrors: appends commit on every node in FIFO order, follower "
      "commit visibility trails the leader ack by milliseconds, and "
      "SIGKILL of the leader process fails over to a survivor in < 1s");
}
