// E14 — beyond the paper: the TCP front-end (src/net) under load.
//
// E13 showed the multi-group service answers in-process leader() queries in
// ~100ns; a production lease manager is consumed over the network. This
// experiment drives the epoll LeaderServer over loopback with a closed-loop
// multiplexed load generator (one outstanding LEADER query per connection,
// all connections on one poll() — thread-per-connection would measure the
// scheduler, not the server, on small CI boxes) and sweeps
// connections × groups. It then verifies the push path: watch subscribers
// must observe an induced leader change without sending a single byte of
// poll traffic, and we report the fan-out lag.
//
// Claims checked:
//   1. throughput — ≥ 100k queries/s at 64 connections × 1000 groups with
//      p99 < 1 ms, while the election pool keeps every group elected;
//   2. push, not poll — an induced fail-over reaches every watcher as an
//      EVENT frame with a strictly larger fencing epoch.
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <arpa/inet.h>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "common/rng.h"
#include "harness.h"
#include "net/client.h"
#include "net/leader_server.h"

namespace {

using namespace omega;
using namespace omega::bench;

std::int64_t wall_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// One load-generator connection: blocking socket, one outstanding request.
struct LoadConn {
  int fd = -1;
  net::FrameDecoder in;
  std::int64_t sent_ns = 0;
  svc::GroupId gid = 0;
};

int connect_loopback(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  OMEGA_CHECK(fd >= 0, "socket: errno " << errno);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  OMEGA_CHECK(::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                        sizeof addr) == 0,
              "connect: errno " << errno);
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return fd;
}

void send_query(LoadConn& c, svc::GroupId gid, std::vector<std::uint8_t>& buf) {
  buf.clear();
  net::encode_request(buf, net::MsgType::kLeader, /*req_id=*/1, gid);
  c.gid = gid;
  c.sent_ns = wall_ns();
  const ssize_t n = ::send(c.fd, buf.data(), buf.size(), MSG_NOSIGNAL);
  OMEGA_CHECK(n == static_cast<ssize_t>(buf.size()),
              "short send: " << n << " errno " << errno);
}

struct LoadResult {
  double qps = 0;
  std::int64_t p50_ns = 0;
  std::int64_t p99_ns = 0;
  std::uint64_t completed = 0;
  std::uint64_t bad_answers = 0;
};

/// Closed loop: every connection keeps exactly one LEADER query in flight
/// for `duration_ms`; answers are latency-stamped as they complete.
LoadResult run_load(std::uint16_t port, std::uint32_t connections,
                    std::uint32_t groups, int duration_ms) {
  std::vector<LoadConn> conns(connections);
  std::vector<pollfd> pfds(connections);
  std::vector<std::uint8_t> buf;
  Rng rng(1234);
  for (std::uint32_t i = 0; i < connections; ++i) {
    conns[i].fd = connect_loopback(port);
    pfds[i] = pollfd{conns[i].fd, POLLIN, 0};
  }

  std::vector<std::int64_t> lat_ns;
  lat_ns.reserve(200000);
  LoadResult result;
  const auto pick = [&] {
    return static_cast<svc::GroupId>(
        rng.uniform(0, static_cast<std::int64_t>(groups) - 1));
  };

  const std::int64_t t0 = wall_ns();
  const std::int64_t deadline = t0 + std::int64_t{duration_ms} * 1000000;
  for (auto& c : conns) send_query(c, pick(), buf);

  std::uint8_t rbuf[4096];
  while (wall_ns() < deadline) {
    const int n = ::poll(pfds.data(), pfds.size(), 100);
    if (n <= 0) continue;
    const std::int64_t now = wall_ns();
    for (std::uint32_t i = 0; i < connections; ++i) {
      if (!(pfds[i].revents & POLLIN)) continue;
      LoadConn& c = conns[i];
      const ssize_t r = ::recv(c.fd, rbuf, sizeof rbuf, 0);
      OMEGA_CHECK(r > 0, "load connection died: ret " << r << " errno "
                                                      << errno);
      c.in.feed(rbuf, static_cast<std::size_t>(r));
      const std::uint8_t* payload = nullptr;
      std::size_t len = 0;
      while (c.in.next(payload, len)) {
        net::Frame f;
        OMEGA_CHECK(net::decode_payload(payload, len, f) ==
                        net::DecodeResult::kOk,
                    "malformed response");
        lat_ns.push_back(now - c.sent_ns);
        ++result.completed;
        if (f.header.status != net::Status::kOk ||
            f.view.leader == kNoProcess || f.view.leader >= 3 ||
            f.view.gid != c.gid) {
          ++result.bad_answers;
        }
        send_query(c, pick(), buf);
      }
    }
  }
  const std::int64_t t1 = wall_ns();
  for (auto& c : conns) ::close(c.fd);

  result.qps = static_cast<double>(result.completed) /
               (static_cast<double>(t1 - t0) / 1e9);
  if (!lat_ns.empty()) {
    std::sort(lat_ns.begin(), lat_ns.end());
    result.p50_ns = lat_ns[lat_ns.size() / 2];
    result.p99_ns = lat_ns[lat_ns.size() * 99 / 100];
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace omega::svc;
  JsonReport json;
  json.set_str("bench", "e14_netserve");

  std::cout << banner(
      "E14: epoll RPC front-end (src/net) — leader queries + watches",
      {"workload: closed-loop LEADER queries over loopback TCP,",
       "          C connections x G fig2 groups (n=3), 1 epoll IO thread",
       "measure : sustained queries/sec, per-query RTT p50/p99, watch",
       "          push delivery (no polling) + fan-out lag"});

  Verdict verdict;
  AsciiTable table({"conns", "groups", "queries/sec", "rtt p50 us",
                    "rtt p99 us", "bad", "svc steps/sec"});

  struct Row {
    std::uint32_t conns;
    std::uint32_t groups;
    bool acceptance;  ///< row the throughput/latency claims bind to
  };
  const Row rows[] = {{8, 64, false}, {32, 256, false}, {64, 1000, true}};

  for (const Row& row : rows) {
    SvcConfig cfg;
    // The elections only need to stay converged while we measure the
    // frontend, and on a small CI box the pool shares cores with the IO
    // thread, so this is the co-location configuration: nice-19 workers
    // (a sweep burst never sits in front of a query — the scheduler
    // preempts the worker as soon as the IO thread wakes), a minimal
    // per-sweep budget, a pace between sweeps, and second-scale timeouts
    // with an order of magnitude of margin over the deprioritized
    // heartbeat stepping interval so no monitor suspects a live peer.
    cfg.workers = 2;
    cfg.tick_us = 1000000;
    cfg.wheel_slot_us = 4096;
    cfg.wheel_slots = 512;
    cfg.ops_per_sweep = 2;
    cfg.pace_us = 20000;
    cfg.worker_nice = 19;

    MultiGroupLeaderService service(cfg);
    for (svc::GroupId gid = 0; gid < row.groups; ++gid) service.add_group(gid);

    net::NetConfig net_cfg;
    net_cfg.io_threads = 1;
    net::LeaderServer server(service, net_cfg);
    server.start();
    service.start();

    std::uint32_t converged = 0;
    for (svc::GroupId gid = 0; gid < row.groups; ++gid) {
      if (service.await_leader(gid, /*timeout_us=*/120000000) != kNoProcess) {
        ++converged;
      }
    }
    const std::string label = std::to_string(row.conns) + "c/" +
                              std::to_string(row.groups) + "g";
    verdict.expect(converged == row.groups,
                   label + ": every group must converge before the load");

    const SvcStats s0 = service.stats();
    const std::int64_t m0 = wall_ns();
    const LoadResult load =
        run_load(server.port(), row.conns, row.groups, /*duration_ms=*/3000);
    const SvcStats s1 = service.stats();
    const double svc_steps_per_sec =
        static_cast<double>(s1.steps - s0.steps) /
        (static_cast<double>(wall_ns() - m0) / 1e9);

    table.add_row({std::to_string(row.conns), fmt_count(row.groups),
                   fmt_count(static_cast<std::uint64_t>(load.qps)),
                   fmt_double(static_cast<double>(load.p50_ns) / 1e3, 1),
                   fmt_double(static_cast<double>(load.p99_ns) / 1e3, 1),
                   fmt_count(load.bad_answers),
                   fmt_count(static_cast<std::uint64_t>(svc_steps_per_sec))});

    verdict.expect(load.bad_answers == 0,
                   label + ": every answer must name a live leader");
    verdict.expect(!service.failed(),
                   label + ": no task may throw — " +
                       service.failure_message());
    if (row.acceptance) {
      json.set("conns", std::uint64_t{row.conns});
      json.set("groups", std::uint64_t{row.groups});
      json.set("queries_per_sec", load.qps);
      json.set("rtt_p50_us", static_cast<double>(load.p50_ns) / 1e3);
      json.set("rtt_p99_us", static_cast<double>(load.p99_ns) / 1e3);
      // Shared CI runners can't promise loopback throughput; with
      // OMEGA_E14_PERF_ADVISORY set, the perf targets are reported but
      // only the correctness checks above gate the verdict.
      const bool perf_advisory =
          std::getenv("OMEGA_E14_PERF_ADVISORY") != nullptr;
      const std::string qps_msg =
          label + ": >= 100k queries/s over loopback (got " +
          fmt_count(static_cast<std::uint64_t>(load.qps)) + ")";
      const std::string p99_msg =
          label + ": query p99 < 1ms (got " +
          fmt_double(static_cast<double>(load.p99_ns) / 1e6, 3) + "ms)";
      if (perf_advisory) {
        if (load.qps < 100000.0) {
          std::cout << "  [ADVISORY] " << qps_msg << '\n';
        }
        if (load.p99_ns >= 1000000) {
          std::cout << "  [ADVISORY] " << p99_msg << '\n';
        }
      } else {
        verdict.expect(load.qps >= 100000.0, qps_msg);
        verdict.expect(load.p99_ns < 1000000, p99_msg);
      }
    }

    server.stop();
    service.stop();
  }

  // --- watch fan-out: push, not poll. -----------------------------------
  {
    SvcConfig cfg;
    cfg.workers = 2;
    cfg.tick_us = 500;  // fast detection: this phase measures fail-over push
    cfg.wheel_slot_us = 256;
    cfg.wheel_slots = 256;
    cfg.ops_per_sweep = 8;
    cfg.pace_us = 100;

    MultiGroupLeaderService service(cfg);
    constexpr svc::GroupId kWatched = 3;
    for (svc::GroupId gid = 0; gid < 8; ++gid) service.add_group(gid);
    net::LeaderServer server(service, net::NetConfig{});
    server.start();
    service.start();
    for (svc::GroupId gid = 0; gid < 8; ++gid) {
      verdict.expect(
          service.await_leader(gid, 120000000) != kNoProcess,
          "watch phase: group " + std::to_string(gid) + " must converge");
    }

    constexpr int kWatchers = 8;
    std::vector<std::unique_ptr<net::Client>> watchers;
    ProcessId old_leader = kNoProcess;
    std::uint64_t snap_epoch = 0;
    for (int i = 0; i < kWatchers; ++i) {
      watchers.push_back(std::make_unique<net::Client>());
      watchers.back()->connect("127.0.0.1", server.port());
      const net::Client::Result r = watchers.back()->watch(kWatched);
      verdict.expect(r.ok() && r.view.leader != kNoProcess,
                     "watch snapshot must carry the current leader");
      old_leader = r.view.leader;
      snap_epoch = r.view.epoch;
    }

    // From here on the watchers send nothing: anything they observe was
    // pushed through svc's epoch listener → WatchHub → EVENT frames.
    std::vector<std::int64_t> observe_ns(kWatchers, -1);
    std::vector<std::thread> threads;
    threads.reserve(kWatchers);
    const std::int64_t crash_ns = wall_ns();
    service.crash(kWatched, old_leader);
    for (int i = 0; i < kWatchers; ++i) {
      threads.emplace_back([&, i] {
        for (;;) {
          const auto ev = watchers[i]->next_event(/*timeout_ms=*/60000);
          if (!ev.has_value()) return;  // timeout → observe_ns stays -1
          if (ev->gid == kWatched && ev->view.leader != kNoProcess &&
              ev->view.leader != old_leader &&
              ev->view.epoch > snap_epoch) {
            observe_ns[i] = wall_ns();
            return;
          }
        }
      });
    }
    for (auto& t : threads) t.join();

    std::int64_t first = -1, last = -1;
    bool all_observed = true;
    for (const std::int64_t t : observe_ns) {
      if (t < 0) {
        all_observed = false;
        continue;
      }
      first = first < 0 ? t : std::min(first, t);
      last = std::max(last, t);
    }
    verdict.expect(all_observed,
                   "every watcher must observe the fail-over via push");
    AsciiTable watch_table({"watchers", "crash->first ms", "crash->last ms",
                            "fan-out spread ms"});
    watch_table.add_row(
        {std::to_string(kWatchers),
         fmt_double(static_cast<double>(first - crash_ns) / 1e6, 2),
         fmt_double(static_cast<double>(last - crash_ns) / 1e6, 2),
         fmt_double(static_cast<double>(last - first) / 1e6, 2)});
    std::cout << "\nwatch fan-out (leader crash pushed to subscribers):\n"
              << watch_table.render();
    if (first >= 0) {
      json.set("watch_crash_to_first_ms",
               static_cast<double>(first - crash_ns) / 1e6);
      json.set("watch_fanout_spread_ms",
               static_cast<double>(last - first) / 1e6);
    }

    for (auto& w : watchers) w->close();
    server.stop();
    service.stop();
  }

  std::cout << table.render() << '\n';
  json.write(json_path_from_args(argc, argv));
  return verdict.finish(
      "the epoll front-end serves >= 100k leader queries/s over loopback "
      "with p99 < 1ms at 64 conns x 1000 groups, and watchers observe "
      "induced fail-overs purely via push");
}
