// Shared helpers for the experiment binaries (bench_e01..e15). Every
// experiment prints: the paper artifact it reproduces, the workload, a
// results table, and a PASS/FAIL verdict comparing the measured shape with
// the paper's claim. Binaries run with no arguments and bounded runtime;
// passing `--json <path>` additionally writes the headline numbers as a
// flat JSON object so CI can archive a perf trajectory across commits.
#pragma once

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/table.h"
#include "sim/metrics.h"
#include "sim/scenario.h"

namespace omega::bench {

struct RunResult {
  ConvergenceReport report;
  InstrumentationSnapshot window_before;  ///< at horizon - window
  InstrumentationSnapshot window_after;   ///< at horizon
  std::vector<std::uint64_t> cells_before;
  std::vector<std::uint64_t> cells_after;
  std::uint64_t max_timeout = 0;  ///< largest timeout parameter ever armed
  std::unique_ptr<SimDriver> driver;
};

/// Runs `cfg` to `horizon`, snapshotting a trailing `window`.
inline RunResult run_with_window(const ScenarioConfig& cfg, SimTime horizon,
                                 SimDuration window,
                                 const MemoryFactory& mf = {}) {
  RunResult r;
  r.driver = make_scenario(cfg, mf);
  auto& d = *r.driver;
  d.run_until(horizon - window);
  r.window_before = d.memory().instr().snapshot();
  for (std::uint32_t i = 0; i < d.memory().layout().size(); ++i) {
    r.cells_before.push_back(d.memory().peek(Cell{i}));
  }
  d.run_until(horizon);
  r.window_after = d.memory().instr().snapshot();
  for (std::uint32_t i = 0; i < d.memory().layout().size(); ++i) {
    r.cells_after.push_back(d.memory().peek(Cell{i}));
  }
  r.report = d.metrics().convergence(d.plan());
  for (ProcessId i = 0; i < d.n(); ++i) {
    r.max_timeout = std::max(r.max_timeout, d.metrics().max_timeout_param(i));
  }
  return r;
}

/// Sum of a register group's current contents (e.g. total suspicions).
inline std::uint64_t group_sum(SimDriver& d, const std::string& name) {
  GroupId g = 0;
  if (!d.memory().layout().find_group(name, g)) return 0;
  const auto& grp = d.memory().layout().group(g);
  std::uint64_t sum = 0;
  for (std::uint32_t r = 0; r < grp.rows; ++r) {
    for (std::uint32_t c = 0; c < grp.cols; ++c) {
      const Cell cell = grp.cols == 1 ? d.memory().layout().cell(g, r)
                                      : d.memory().layout().cell(g, r, c);
      sum += d.memory().peek(cell);
    }
  }
  return sum;
}

/// Tracks the experiment's overall verdict and prints the final line.
class Verdict {
 public:
  void expect(bool ok, const std::string& what) {
    if (!ok) {
      pass_ = false;
      std::cout << "  [CHECK FAILED] " << what << '\n';
    }
  }
  /// Prints "VERDICT: PASS|FAIL ..." and returns the process exit code.
  int finish(const std::string& claim) const {
    std::cout << "\nVERDICT: " << (pass_ ? "PASS" : "FAIL") << " — " << claim
              << '\n';
    return pass_ ? 0 : 1;
  }

 private:
  bool pass_ = true;
};

inline std::string yes_no(bool b) { return b ? "yes" : "no"; }

/// Percentile of a latency sample (p in [0, 1], e.g. 0.999 for p99.9 —
/// the tail that batching-induced stalls show up in first). Sorts in
/// place; returns 0 for an empty sample.
inline std::int64_t percentile_ns(std::vector<std::int64_t>& sample,
                                  double p) {
  if (sample.empty()) return 0;
  std::sort(sample.begin(), sample.end());
  std::size_t idx = static_cast<std::size_t>(
      p * static_cast<double>(sample.size()));
  if (idx >= sample.size()) idx = sample.size() - 1;
  return sample[idx];
}

/// Machine-readable results sink: a flat {key: number|string} object,
/// written where `--json <path>` pointed. Keys are emitted in insertion
/// order so diffs between runs stay line-stable.
class JsonReport {
 public:
  void set(const std::string& key, double value) {
    std::ostringstream os;
    os << value;
    upsert(key, os.str());
  }
  void set(const std::string& key, std::uint64_t value) {
    upsert(key, std::to_string(value));
  }
  void set(const std::string& key, std::int64_t value) {
    upsert(key, std::to_string(value));
  }
  void set(const std::string& key, bool value) {
    upsert(key, value ? "true" : "false");
  }
  void set_str(const std::string& key, const std::string& value) {
    std::string escaped = "\"";
    for (const char c : value) {
      if (c == '"' || c == '\\') escaped += '\\';
      escaped += c;
    }
    escaped += '"';
    upsert(key, escaped);
  }

  /// Writes the object to `path` ("" = disabled); false on IO failure.
  bool write(const std::string& path) const {
    if (path.empty()) return true;
    std::ofstream out(path);
    if (!out) {
      std::cerr << "cannot write json report to " << path << '\n';
      return false;
    }
    out << "{\n";
    for (std::size_t i = 0; i < items_.size(); ++i) {
      out << "  \"" << items_[i].first << "\": " << items_[i].second;
      if (i + 1 < items_.size()) out << ',';
      out << '\n';
    }
    out << "}\n";
    return out.good();
  }

 private:
  /// Repeated set() of a key overwrites in place (benches sweep several
  /// configurations and archive the last/acceptance one).
  void upsert(const std::string& key, std::string value) {
    for (auto& [k, v] : items_) {
      if (k == key) {
        v = std::move(value);
        return;
      }
    }
    items_.emplace_back(key, std::move(value));
  }

  std::vector<std::pair<std::string, std::string>> items_;
};

/// Extracts the `--json <path>` flag; "" when absent. Unknown flags are
/// left for the bench to reject (today none take other arguments).
inline std::string json_path_from_args(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--json") return argv[i + 1];
  }
  return "";
}

}  // namespace omega::bench
