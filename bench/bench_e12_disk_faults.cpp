// E12 — extension experiment (beyond the paper): Ω over *fault-prone*
// storage. The paper's SAN motivation ([1,4,9,18]) assumes the disk array
// implements reliable registers; this experiment builds them from
// crash-prone, omission-prone disks (single-writer replication with
// versions) and measures what the algorithms actually tolerate:
//
//   (a) disk crashes — any single surviving replica keeps the registers
//       alive, so Ω survives d-1 of d disks failing mid-run;
//   (b) persistent per-access omissions — replicas diverge and reads can
//       return stale values (the register degrades from atomic to regular).
//       Algorithm 1 shrugs: its PROGRESS counter moves every couple of
//       steps, so a damaging stale read must miss dozens of consecutive
//       writes (probability p^k). Algorithm 2's boolean handshake toggles
//       once per heartbeat round, so moderate omission rates inject spurious
//       suspicions at a constant rate — measurable as suspicion-counter
//       creep. An unbounded counter is natural staleness armor; a bounded
//       handshake is not.
#include "harness.h"
#include "san/replicated_san.h"

int main() {
  using namespace omega;
  using namespace omega::bench;

  std::cout << banner(
      "E12 (extension): Omega over crash- and omission-prone disks",
      {"substrate: every register replicated on 3 disks (version+value),",
       "           write->all reachable, read->max version",
       "workload : fig2/fig5, n=5, AWB world, 600k ticks"});

  Verdict verdict;

  // --- (a) disk crashes mid-run.
  {
    AsciiTable table({"event", "time", "leader stable after?"});
    ScenarioConfig cfg;
    cfg.algo = AlgoKind::kWriteEfficient;
    cfg.n = 5;
    cfg.world = World::kAwb;
    cfg.seed = 14;
    ReplicatedSanConfig san;
    san.num_disks = 3;
    auto d = make_scenario(cfg, replicated_san_factory(san));
    auto& mem = dynamic_cast<ReplicatedSanMemory&>(d->memory());
    d->run_until(150000);
    const auto rep0 = d->metrics().convergence(d->plan());
    table.add_row({"initial election", "t=" + std::to_string(rep0.time),
                   yes_no(rep0.converged)});
    mem.crash_disk(0);
    d->run_until(300000);
    const auto rep1 = d->metrics().convergence(d->plan());
    table.add_row({"disk0 crashes", "t=150000", yes_no(rep1.converged)});
    mem.crash_disk(2);
    d->run_until(600000);
    const auto rep2 = d->metrics().convergence(d->plan());
    table.add_row({"disk2 crashes (1 of 3 left)", "t=300000",
                   yes_no(rep2.converged)});
    std::cout << table.render() << '\n';
    verdict.expect(rep0.converged && rep1.converged && rep2.converged,
                   "leadership must survive d-1 disk crashes");
  }

  // --- (b) persistent omissions: staleness tolerance per algorithm.
  AsciiTable table({"algorithm", "omission p", "repair?", "converged",
                    "stable at", "stale reads", "susp @300k", "susp @600k",
                    "susp creep?"});
  struct OmissionCase {
    double p;
    bool repair;
  };
  const std::vector<OmissionCase> omission_cases = {
      {0.0, false}, {0.05, false}, {0.2, false}, {0.2, true}};
  for (AlgoKind algo : {AlgoKind::kWriteEfficient, AlgoKind::kBounded}) {
    for (const auto& oc : omission_cases) {
      const double p = oc.p;
      ScenarioConfig cfg;
      cfg.algo = algo;
      cfg.n = 5;
      cfg.world = World::kAwb;
      cfg.seed = 15;
      ReplicatedSanConfig san;
      san.num_disks = 3;
      san.omission_prob = p;
      san.read_repair = oc.repair;
      auto d = make_scenario(cfg, replicated_san_factory(san));
      d->run_until(300000);
      const auto susp_mid = group_sum(*d, "SUSPICIONS");
      d->run_until(600000);
      const auto susp_end = group_sum(*d, "SUSPICIONS");
      const auto rep = d->metrics().convergence(d->plan());
      auto& mem = dynamic_cast<ReplicatedSanMemory&>(d->memory());
      const bool creep = susp_end > susp_mid;
      table.add_row({std::string(algo_name(algo)), fmt_double(p, 2),
                     yes_no(oc.repair), yes_no(rep.converged),
                     rep.converged ? "t=" + std::to_string(rep.time) : "-",
                     fmt_count(mem.stale_reads()), fmt_count(susp_mid),
                     fmt_count(susp_end), yes_no(creep)});
      if (algo == AlgoKind::kWriteEfficient) {
        verdict.expect(rep.converged,
                       "fig2 must converge at omission p=" + fmt_double(p, 2));
        if (p <= 0.05 || oc.repair) {
          verdict.expect(!creep, "fig2 suspicions must freeze (p=" +
                                     fmt_double(p, 2) + ", repair=" +
                                     yes_no(oc.repair) + ")");
        }
      } else if (p == 0.0) {
        verdict.expect(rep.converged && !creep,
                       "fig5 must be clean without omissions");
      } else if (oc.repair) {
        verdict.expect(rep.converged,
                       "read-repair must restore fig5 convergence at p=0.2");
      }
      // fig5 under p>0 without repair: reported, not asserted — the boolean
      // handshake has no staleness armor (that is the finding).
    }
  }
  std::cout << table.render()
            << "\nWhy creep happens at all: once a register freezes (e.g. "
               "STOP[k] after p_k\nstops competing), a replica that missed "
               "its LAST write stays divergent\nforever and feeds stale "
               "reads at a constant rate. fig2's moving PROGRESS\ncounter "
               "self-heals; frozen booleans need anti-entropy (read-repair "
               "row).\n";
  return verdict.finish(
      "replicated registers keep Omega alive through d-1 disk crashes; "
      "Algorithm 1 tolerates staleness at moderate rates, and read-repair "
      "restores both algorithms at high rates");
}
