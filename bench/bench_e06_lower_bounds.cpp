// E6 — paper Lemmas 5 and 6 (the optimality lower bounds of §3.4).
//
// The proofs are indistinguishability arguments; this experiment stages the
// distinguished runs:
//   Lemma 5 — a leader that stops writing is indistinguishable from a
//             crashed one ⇒ it gets deposed (so leaders MUST write forever).
//   Lemma 6 — a process that stops reading cannot learn the leader died ⇒
//             it keeps a stale leader forever (so everyone MUST read
//             forever).
#include "harness.h"

int main() {
  using namespace omega;
  using namespace omega::bench;

  std::cout << banner(
      "E6: why the access pattern is necessary (Lemmas 5 & 6)",
      {"workload: fig2, n=6, AWB world; staged silences/blindings"});

  Verdict verdict;
  AsciiTable table({"scenario", "event at", "outcome", "matches lemma?"});

  // --- Lemma 5: silence the leader.
  {
    ScenarioConfig cfg;
    cfg.algo = AlgoKind::kWriteEfficient;
    cfg.n = 6;
    cfg.world = World::kAwb;
    cfg.seed = 31;
    auto d = make_scenario(cfg);
    d->run_until(200000);
    const auto rep1 = d->metrics().convergence(d->plan());
    verdict.expect(rep1.converged, "lemma-5 run must converge first");
    const ProcessId old_leader = rep1.leader;
    const SimTime silence_at = d->now();
    d->plan().pause_forever(old_leader, silence_at);
    d->run_until(silence_at + 500000);
    const auto rep2 = d->metrics().convergence(d->plan());
    const bool deposed = rep2.converged && rep2.leader != old_leader;
    table.add_row({"leader p" + std::to_string(old_leader) + " goes silent",
                   "t=" + std::to_string(silence_at),
                   deposed ? "deposed; p" + std::to_string(rep2.leader) +
                                 " elected at t=" + std::to_string(rep2.time)
                           : "NOT deposed",
                   yes_no(deposed)});
    verdict.expect(deposed, "silent leader must be deposed (Lemma 5)");
  }

  // --- Lemma 6: blind one observer, then kill the leader.
  {
    ScenarioConfig cfg;
    cfg.algo = AlgoKind::kWriteEfficient;
    cfg.n = 6;
    cfg.world = World::kAwb;
    cfg.timely = 1;
    cfg.seed = 31;
    auto d = make_scenario(cfg);
    d->run_until(200000);
    const auto rep1 = d->metrics().convergence(d->plan());
    verdict.expect(rep1.converged, "lemma-6 run must converge first");
    const ProcessId old_leader = rep1.leader;
    ProcessId blinded = kNoProcess;
    for (ProcessId i = 0; i < d->n(); ++i) {
      if (i != old_leader && i != cfg.timely) {
        blinded = i;
        break;
      }
    }
    const SimTime blind_at = d->now();
    d->plan().pause_forever(blinded, blind_at);          // stops reading
    d->plan().pause_forever(old_leader, blind_at + 1000);  // leader "dies"
    d->run_until(blind_at + 500000);
    const auto rep2 = d->metrics().convergence(d->plan());
    const ProcessId stale = d->metrics().last_output(blinded);
    const bool lemma_holds = rep2.converged && rep2.leader != old_leader &&
                             stale == old_leader;
    table.add_row(
        {"p" + std::to_string(blinded) + " stops reading; leader p" +
             std::to_string(old_leader) + " dies",
         "t=" + std::to_string(blind_at),
         "survivors elect p" +
             (rep2.converged ? std::to_string(rep2.leader) : std::string("?")) +
             "; blinded still believes p" + std::to_string(stale),
         yes_no(lemma_holds)});
    verdict.expect(lemma_holds,
                   "blinded process must keep the stale leader (Lemma 6)");
  }

  std::cout << table.render();
  return verdict.finish(
      "the eventual leader must write forever and every other correct "
      "process must read forever — Algorithm 1 is write-optimal (Thm. 4)");
}
