// E4 — paper Theorem 3 (+ Figure 3's sequence S).
//
// Claims reproduced: (1) eventually a single process — the leader — writes
// the shared memory, and it writes a single variable; (2) after GST the gaps
// between the leader's consecutive critical-register writes are bounded
// (AWB1's δ at access level, stretched by task interleaving), while before
// GST they are heavy-tailed. The gap histogram is the executable Figure 3.
#include "harness.h"

int main() {
  using namespace omega;
  using namespace omega::bench;

  std::cout << banner(
      "E4: write-efficiency and the leader's write cadence (Thm. 3, Fig. 3)",
      {"workload: fig2, n=8, AWB world, 600k ticks",
       "measure : per-window writer census + inter-write gap histogram of",
       "          the eventual leader's critical registers"});

  ScenarioConfig cfg;
  cfg.algo = AlgoKind::kWriteEfficient;
  cfg.n = 8;
  cfg.world = World::kAwb;
  cfg.seed = 12;
  auto d = make_scenario(cfg);

  // First find the leader, then observe its gaps over a long stable phase.
  d->run_until(150000);
  const auto rep0 = d->metrics().convergence(d->plan());
  Verdict verdict;
  verdict.expect(rep0.converged, "run must converge before gap observation");
  const ProcessId leader = rep0.leader;
  WriteGapObserver gaps(d->memory().layout(), leader, /*marker=*/150000);
  d->memory().instr().set_observer(&gaps);

  AsciiTable census({"window (ticks)", "writers", "leader writes",
                     "others' writes", "leader reads"});
  bool always_single = true;
  bool leader_reads_forever = true;
  for (int w = 0; w < 4; ++w) {
    const auto before = d->memory().instr().snapshot();
    d->run_for(100000);
    const auto after = d->memory().instr().snapshot();
    const auto c = diff_writers(before, after);
    std::uint64_t others = 0;
    for (ProcessId i = 0; i < d->n(); ++i) {
      if (i != leader) others += c.writes_by[i];
    }
    const std::uint64_t leader_reads =
        after.reads_by[leader] - before.reads_by[leader];
    census.add_row({std::to_string(d->now() - 100000) + ".." +
                        std::to_string(d->now()),
                    std::to_string(c.distinct_writers),
                    fmt_count(c.writes_by[leader]), fmt_count(others),
                    fmt_count(leader_reads)});
    always_single = always_single && c.distinct_writers == 1;
    leader_reads_forever = leader_reads_forever && leader_reads > 0;
  }
  std::cout << census.render()
            << "\nNote the last column: even the leader keeps reading "
               "(its own leader() test\nscans SUSPICIONS) — the "
               "quasi-optimality caveat of Thm. 4, and the paper's\nopen "
               "question (\u00a75) of whether a leader could eventually "
               "stop reading.\n";
  verdict.expect(always_single,
                 "every stable window must have exactly one writer");
  verdict.expect(leader_reads_forever,
                 "the leader reads in every window (Thm. 4 discussion)");

  std::cout << "\nleader p" << leader
            << " inter-write gaps AFTER stabilization (ticks):\n"
            << gaps.gaps_after().render()
            << "max gap: " << gaps.max_gap_after()
            << " ticks (finite => AWB1 cadence holds; the paper's delta is "
               "the per-access bound, stretched by T2/T3 interleaving)\n";

  const auto final_rep = d->metrics().convergence(d->plan());
  verdict.expect(final_rep.converged && final_rep.leader == leader,
                 "leader must not change during the census");
  verdict.expect(gaps.max_gap_after() > 0 && gaps.max_gap_after() < 2000,
                 "stable-phase write gaps must be bounded (saw max " +
                     std::to_string(gaps.max_gap_after()) + ")");
  return verdict.finish(
      "after stabilization exactly one process writes, one variable, at a "
      "bounded cadence (Thm. 3; gap histogram = executable Fig. 3)");
}
