// E10 — the hardware path: the paper's 1WnR atomic registers are
// std::atomic<uint64_t>. Google-benchmark microbenches for the oracle's
// query/step costs on real atomics, plus a wall-clock stabilization
// measurement on live threads.
#include <benchmark/benchmark.h>

#include "core/omega_write_efficient.h"
#include "rt/atomic_memory.h"
#include "rt/rt_driver.h"

namespace {

using namespace omega;

/// leader() = task T1: n reads per candidate. The core read-path cost.
void BM_LeaderQuery(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  auto shared = OmegaWriteEfficient::Shared::make(n);
  AtomicMemory mem(shared.layout, n);
  OmegaWriteEfficient proc(mem, shared, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(proc.leader());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n *
                          n);
  state.SetLabel("reads/query=" + std::to_string(n * n));
}
BENCHMARK(BM_LeaderQuery)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

/// One heartbeat iteration of the leader: LeaderQuery + one atomic store.
void BM_HeartbeatStep(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  auto shared = OmegaWriteEfficient::Shared::make(n);
  AtomicMemory mem(shared.layout, n);
  OmegaWriteEfficient proc(mem, shared, 0);
  ProcTask hb = proc.task_heartbeat();
  hb.start();
  for (auto _ : state) {
    switch (hb.pending()) {
      case OpKind::kRead:
        hb.resume(mem.read(0, hb.pending_cell()));
        break;
      case OpKind::kWrite:
        mem.write(0, hb.pending_cell(), hb.pending_value());
        hb.resume(0);
        break;
      case OpKind::kLeaderQuery:
        hb.resume(proc.leader());
        break;
      default:
        hb.resume(0);
        break;
    }
  }
}
BENCHMARK(BM_HeartbeatStep)->Arg(4)->Arg(8)->Arg(16);

/// Monitor scan (task T3) driven end-to-end over atomics.
void BM_MonitorScan(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  auto shared = OmegaWriteEfficient::Shared::make(n);
  AtomicMemory mem(shared.layout, n);
  OmegaWriteEfficient proc(mem, shared, 0);
  ProcTask mon = proc.task_monitor();
  mon.start();
  for (auto _ : state) {
    // Deliver one timer expiry and drive the scan back to WaitTimer.
    mon.resume(0);
    while (mon.pending() != OpKind::kWaitTimer) {
      switch (mon.pending()) {
        case OpKind::kRead:
          mon.resume(mem.read(0, mon.pending_cell()));
          break;
        case OpKind::kWrite:
          mem.write(0, mon.pending_cell(), mon.pending_value());
          mon.resume(0);
          break;
        default:
          mon.resume(0);
          break;
      }
    }
  }
  state.SetLabel("accesses/scan~" + std::to_string(2 * (n - 1)));
}
BENCHMARK(BM_MonitorScan)->Arg(4)->Arg(8)->Arg(16);

/// Wall-clock leader stabilization on real threads (reported in ms). Kept
/// to a handful of iterations — each one launches n threads.
void BM_ThreadStabilization(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    RtConfig cfg;
    cfg.algo = AlgoKind::kWriteEfficient;
    cfg.n = n;
    cfg.tick_us = 1000;
    cfg.pace_us = 50;
    RtDriver d(cfg);
    d.start();
    const ProcessId leader =
        d.await_stable_leader(/*hold_us=*/100000, /*timeout_us=*/20000000);
    d.stop();
    if (leader == kNoProcess) {
      state.SkipWithError("no stable leader within 20s");
      break;
    }
  }
}
BENCHMARK(BM_ThreadStabilization)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
