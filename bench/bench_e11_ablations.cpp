// E11 — ablations over the paper's §3.5 design variants and the one free
// deployment knob:
//   (a) nWnR SUSPICIONS vector vs the 1WnR matrix — T1 reads one register
//       per candidate instead of a column (n× fewer reads), at the price of
//       racy (lost-update) increments;
//   (b) the clock-free step-counter timer vs hardware timers;
//   (c) timeout-unit sensitivity: units below the leader's signal re-arm
//       period cause a long marginal suspicion warm-up (documented in
//       sim/scenario.h).
#include "core/omega_bounded.h"
#include "harness.h"

int main() {
  using namespace omega;
  using namespace omega::bench;

  std::cout << banner(
      "E11: ablations (paper §3.5 variants + timeout-unit sensitivity)",
      {"workload: n=8, AWB world, 3 seeds; 600k-tick horizon"});

  Verdict verdict;

  // --- (a)+(b): variants vs Algorithm 1.
  AsciiTable variants({"variant", "converged (3 seeds)", "stab. time (med)",
                       "T1 reads/query", "suspicions total (med)"});
  for (AlgoKind algo :
       {AlgoKind::kWriteEfficient, AlgoKind::kNwnr, AlgoKind::kStepClock}) {
    int converged = 0;
    std::vector<double> stab, susp;
    std::uint64_t reads_per_query = 0;
    for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
      ScenarioConfig cfg;
      cfg.algo = algo;
      cfg.n = 8;
      cfg.world = World::kAwb;
      cfg.seed = seed;
      auto d = make_scenario(cfg);
      d->run_until(600000);
      const auto rep = d->metrics().convergence(d->plan());
      if (rep.converged) {
        ++converged;
        stab.push_back(static_cast<double>(rep.time));
      }
      susp.push_back(static_cast<double>(
          group_sum(*d, algo == AlgoKind::kNwnr ? "SUSPICIONS_V"
                                                : "SUSPICIONS")));
      // T1 cost: count the reads of one external query.
      const auto before = d->memory().instr().reads_by(0);
      (void)d->query_leader(0);
      reads_per_query = d->memory().instr().reads_by(0) - before;
    }
    variants.add_row({std::string(algo_name(algo)),
                      std::to_string(converged) + "/3",
                      stab.empty() ? "-"
                                   : "t=" + fmt_double(percentile(stab, 0.5), 0),
                      std::to_string(reads_per_query),
                      fmt_double(percentile(susp, 0.5), 0)});
    verdict.expect(converged == 3, std::string(algo_name(algo)) +
                                       " must converge on all seeds");
  }
  std::cout << variants.render()
            << "\n(a) the nWnR vector cuts T1's read complexity from "
               "n*|candidates| to |candidates|;\n(b) the step-clock variant "
               "trades the hardware timer for counted yields.\n\n";

  // --- (c): timeout-unit sensitivity, fig5 (slow handshake re-arm).
  AsciiTable units({"timer unit (ticks)", "converged", "stab. time",
                    "suspicions total"});
  for (SimDuration unit : {8, 16, 32, 64, 128}) {
    ScenarioConfig cfg;
    cfg.algo = AlgoKind::kBounded;
    cfg.n = 8;
    cfg.world = World::kAwb;
    cfg.timer_unit = unit;
    cfg.seed = 2;
    auto d = make_scenario(cfg);
    d->run_until(600000);
    const auto rep = d->metrics().convergence(d->plan());
    units.add_row({std::to_string(unit), yes_no(rep.converged),
                   rep.converged ? "t=" + std::to_string(rep.time) : "-",
                   fmt_count(group_sum(*d, "SUSPICIONS"))});
  }
  std::cout << units.render()
            << "\n(c) small units still satisfy AWB2 (they converge "
               "eventually) but sit below the\nleader's handshake re-arm "
               "period, so the suspicion warm-up is far longer —\nthe "
               "measured totals fall sharply once the unit clears the re-arm "
               "time.\n\n";

  // --- (d): timeout policy — the paper's max+1 vs exponential growth, in
  // the warm-up-heavy regime (fig5, unit=8, below the re-arm period).
  AsciiTable policies({"timeout policy", "converged", "stab. time",
                       "suspicions total", "max timeout param"});
  std::uint64_t susp_linear = 0, susp_doubling = 0;
  for (TimeoutPolicy policy :
       {TimeoutPolicy::kMaxPlusOne, TimeoutPolicy::kDoubling}) {
    ScenarioConfig cfg;
    cfg.algo = AlgoKind::kBounded;
    cfg.n = 8;
    cfg.world = World::kAwb;
    cfg.timer_unit = 8;
    cfg.seed = 2;
    auto d = make_scenario(cfg);
    for (ProcessId i = 0; i < cfg.n; ++i) {
      dynamic_cast<OmegaBounded&>(d->process(i)).set_timeout_policy(policy);
    }
    d->run_until(600000);
    const auto rep = d->metrics().convergence(d->plan());
    std::uint64_t max_to = 0;
    for (ProcessId i = 0; i < cfg.n; ++i) {
      max_to = std::max(max_to, d->metrics().max_timeout_param(i));
    }
    const auto susp = group_sum(*d, "SUSPICIONS");
    if (policy == TimeoutPolicy::kMaxPlusOne) {
      susp_linear = susp;
    } else {
      susp_doubling = susp;
    }
    policies.add_row({policy == TimeoutPolicy::kMaxPlusOne
                          ? "max+1 (paper line 27)"
                          : "2^max (exponential)",
                      yes_no(rep.converged),
                      rep.converged ? "t=" + std::to_string(rep.time) : "-",
                      fmt_count(susp), std::to_string(max_to)});
  }
  std::cout << policies.render()
            << "\n(d) exponential growth reaches a sufficient timeout in "
               "O(log) suspicions, so the\nwarm-up shrinks substantially "
               "(~3x fewer suspicions here) — at the price of\novershooting "
               "the timeout (slower crash detection after stabilization). "
               "The\npaper's max+1 keeps timeouts tight.\n";
  verdict.expect(susp_doubling * 2 < susp_linear,
                 "doubling policy must substantially cut the warm-up");
  return verdict.finish(
      "all §3.5 variants converge; the read-cost / race and timer / "
      "warm-up trade-offs match the paper's discussion");
}
