// E7 — paper Figure 4 / Theorem 5 / Corollary 1: the inherent trade-off.
//
// Claim reproduced: with unbounded registers (Algorithm 1) exactly one
// process eventually writes; with bounded registers (Algorithm 2) every
// correct process must write forever — and this is not an artifact of the
// implementations but the lower-bound boundary (Thm. 5). The baseline
// eventually-synchronous algorithm also keeps everyone writing AND uses
// unbounded registers: it pays both costs.
#include "harness.h"

int main() {
  using namespace omega;
  using namespace omega::bench;

  std::cout << banner(
      "E7: eventual-writer census (Fig. 4 / Thm. 5 / Cor. 1)",
      {"workload: per algorithm x n, AWB (ES for baseline), stable window",
       "measure : distinct writers in a long post-stabilization window"});

  Verdict verdict;
  AsciiTable table({"algorithm", "n", "bounded memory?", "eventual writers",
                    "paper prediction", "match?"});

  struct Row {
    AlgoKind algo;
    bool bounded_memory;
    const char* prediction;  // as function of n
  };
  const std::vector<Row> rows = {
      {AlgoKind::kWriteEfficient, false, "1"},
      {AlgoKind::kBounded, true, "n (all correct)"},
      {AlgoKind::kEvSync, false, "n (all correct)"},
  };

  for (const Row& row : rows) {
    for (std::uint32_t n : {2u, 4u, 8u}) {
      ScenarioConfig cfg;
      cfg.algo = row.algo;
      cfg.n = n;
      cfg.world = row.algo == AlgoKind::kEvSync ? World::kEs : World::kAwb;
      cfg.seed = 13;
      const SimTime settle = 400000;
      const SimDuration window = 200000;
      auto result = run_with_window(cfg, settle + window, window);
      const auto census =
          diff_writers(result.window_before, result.window_after);
      const std::uint32_t expected =
          row.algo == AlgoKind::kWriteEfficient ? 1u : n;
      const bool match = result.report.converged &&
                         census.distinct_writers == expected;
      table.add_row({std::string(algo_name(row.algo)), std::to_string(n),
                     yes_no(row.bounded_memory),
                     std::to_string(census.distinct_writers), row.prediction,
                     yes_no(match)});
      verdict.expect(match, std::string(algo_name(row.algo)) + " at n=" +
                                std::to_string(n) + ": expected " +
                                std::to_string(expected) + " writers, saw " +
                                std::to_string(census.distinct_writers));
    }
  }
  std::cout << table.render()
            << "\nThe trade-off is inherent (Thm. 5): bounded memory forces "
               "everyone to write;\nunbounded PROGRESS lets all but the "
               "leader fall silent.\n";
  return verdict.finish(
      "1 eventual writer with unbounded registers vs n with bounded "
      "registers — the paper's inherent trade-off, measured");
}
