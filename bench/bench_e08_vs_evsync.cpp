// E8 — the assumption gap: AWB (this paper) vs eventual synchrony ([13],
// the only prior shared-memory Ω, which the paper explicitly claims to
// weaken: "it is easy to see that this is a stronger assumption").
//
// Claim reproduced: under a world where only AWB holds — one timely process,
// everyone else running ever-faster zero-delay bursts (unbounded relative
// speeds forever) — Algorithm 1 still converges, while the
// eventually-synchronous baseline's step-counted timeouts misfire forever
// and leadership keeps flapping. Under a genuinely eventually-synchronous
// world both converge.
#include "harness.h"

int main() {
  using namespace omega;
  using namespace omega::bench;

  std::cout << banner(
      "E8: AWB is strictly weaker than eventual synchrony (vs [13])",
      {"worlds  : ES (everyone bounded after GST) vs adversarial-AWB",
       "          (timely p0 + escalating zero-delay bursts forever)",
       "measure : leader changes after GST at two horizons — a flapping",
       "          algorithm's count keeps growing with the horizon"});

  Verdict verdict;
  AsciiTable table({"algorithm", "world", "converged", "flaps@400k",
                    "flaps@800k", "still flapping?"});

  struct Cfg {
    AlgoKind algo;
    World world;
    bool expect_converge;
  };
  const std::vector<Cfg> cases = {
      {AlgoKind::kWriteEfficient, World::kEs, true},
      {AlgoKind::kEvSync, World::kEs, true},
      {AlgoKind::kWriteEfficient, World::kAdversarialAwb, true},
      {AlgoKind::kEvSync, World::kAdversarialAwb, false},
  };

  for (const Cfg& c : cases) {
    ScenarioConfig cfg;
    cfg.algo = c.algo;
    cfg.n = 4;
    cfg.world = c.world;
    cfg.seed = 3;
    auto d = make_scenario(cfg);
    d->run_until(400000);
    const auto rep_mid = d->metrics().convergence(d->plan());
    const auto flaps_mid = rep_mid.changes_after_marker;
    d->run_until(800000);
    const auto rep_end = d->metrics().convergence(d->plan());
    const auto flaps_end = rep_end.changes_after_marker;
    const bool still_flapping = flaps_end > flaps_mid + 5;

    table.add_row({std::string(algo_name(c.algo)), world_name(c.world),
                   yes_no(rep_end.converged), fmt_count(flaps_mid),
                   fmt_count(flaps_end), yes_no(still_flapping)});

    if (c.expect_converge) {
      verdict.expect(rep_end.converged,
                     std::string(algo_name(c.algo)) + " must converge in " +
                         world_name(c.world));
      verdict.expect(!still_flapping,
                     std::string(algo_name(c.algo)) +
                         " must stop flapping in " + world_name(c.world));
    } else {
      verdict.expect(still_flapping,
                     "the ES baseline must keep flapping under the "
                     "adversarial-AWB world");
    }
  }
  std::cout << table.render()
            << "\nThe baseline counts timeouts in its own steps — sound only "
               "when relative\nspeeds are eventually bounded. AWB's real-time "
               "timers don't care how fast\nthe other processes spin.\n";
  return verdict.finish(
      "Algorithm 1 converges wherever the baseline does AND under "
      "unbounded-relative-speed runs where the baseline flaps forever");
}
