// E3 — paper Theorem 2.
//
// Claim reproduced: in Algorithm 1, every shared variable except PROGRESS[ℓ]
// has a bounded domain — their contents freeze while PROGRESS[ℓ] grows
// linearly forever; even the timeout values stop increasing.
#include "harness.h"

int main() {
  using namespace omega;
  using namespace omega::bench;

  std::cout << banner(
      "E3: boundedness of all-but-one registers (Thm. 2)",
      {"workload: fig2, n=8, AWB world; checkpoints at 200k/400k/600k ticks",
       "measure : per-family high-water marks + cells still changing"});

  ScenarioConfig cfg;
  cfg.algo = AlgoKind::kWriteEfficient;
  cfg.n = 8;
  cfg.world = World::kAwb;
  cfg.seed = 4;
  auto d = make_scenario(cfg);

  Verdict verdict;
  AsciiTable table({"checkpoint", "SUSPICIONS total", "max timeout param",
                    "PROGRESS[leader]", "cells changed since prev"});

  std::vector<std::uint64_t> prev_cells;
  ProcessId leader = kNoProcess;
  GroupId prog_group = 0;
  (void)d->memory().layout().find_group("PROGRESS", prog_group);
  std::uint64_t changed_last = 0;
  std::uint64_t leader_prog_first = 0, leader_prog_last = 0;

  for (SimTime checkpoint : {200000, 400000, 600000}) {
    d->run_until(checkpoint);
    const auto rep = d->metrics().convergence(d->plan());
    leader = rep.leader;
    std::uint64_t max_to = 0;
    for (ProcessId i = 0; i < d->n(); ++i) {
      max_to = std::max(max_to, d->metrics().max_timeout_param(i));
    }
    std::vector<std::uint64_t> cells;
    for (std::uint32_t i = 0; i < d->memory().layout().size(); ++i) {
      cells.push_back(d->memory().peek(Cell{i}));
    }
    std::uint64_t changed = 0;
    const Cell leader_prog = d->memory().layout().cell(prog_group, leader);
    for (std::uint32_t i = 0; i < cells.size(); ++i) {
      if (!prev_cells.empty() && cells[i] != prev_cells[i]) ++changed;
    }
    if (checkpoint == 200000) leader_prog_first = cells[leader_prog.index];
    leader_prog_last = cells[leader_prog.index];
    table.add_row({"t=" + std::to_string(checkpoint),
                   fmt_count(group_sum(*d, "SUSPICIONS")),
                   std::to_string(max_to),
                   fmt_count(cells[leader_prog.index]),
                   prev_cells.empty() ? "-" : fmt_count(changed)});
    changed_last = changed;
    prev_cells = std::move(cells);
  }

  std::cout << table.render();
  // After stabilization only PROGRESS[leader] may differ between
  // checkpoints.
  verdict.expect(changed_last == 1,
                 "exactly one cell (PROGRESS[leader]) may keep changing, saw " +
                     std::to_string(changed_last));
  verdict.expect(leader_prog_last > leader_prog_first + 1000,
                 "PROGRESS[leader] must grow without bound");
  return verdict.finish(
      "all shared variables except PROGRESS[leader] are bounded; timeouts "
      "stop increasing (Thm. 2)");
}
