// E2 — paper Figure 2 + Theorem 1.
//
// Claim reproduced: Algorithm 1 elects a unique correct eventual leader
// under AWB, for any number of crashes (the algorithm does not know t), and
// convergence time grows moderately with n (suspicion warm-up).
#include "harness.h"

int main() {
  using namespace omega;
  using namespace omega::bench;

  std::cout << banner(
      "E2: eventual leadership & convergence time (paper Fig. 2, Thm. 1)",
      {"workload: fig2, AWB world (GST=2000), perfect timers, COLD start",
       "          (candidates_i = {i}: every process self-elects at first,",
       "          so the run has genuine competition to resolve)",
       "sweep   : n x crash plan, 3 seeds each; convergence time = last",
       "          leader-output change among live processes"});

  Verdict verdict;
  AsciiTable table({"n", "crashes", "converged (3 seeds)", "stab. time (med)",
                    "leader correct?", "queries/proc (avg)"});

  for (std::uint32_t n : {2u, 4u, 8u, 16u}) {
    for (std::uint32_t crashes : {0u, n / 2, n - 1}) {
      std::vector<double> stab_times;
      int converged = 0;
      bool leaders_correct = true;
      double queries = 0;
      const SimTime horizon = 200000 + static_cast<SimTime>(n) * 20000;
      for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
        ScenarioConfig cfg;
        cfg.algo = AlgoKind::kWriteEfficient;
        cfg.n = n;
        cfg.world = World::kAwb;
        cfg.crashes = crashes;
        cfg.seed = seed;
        cfg.cold_start = true;
        auto d = make_scenario(cfg);
        d->run_until(horizon);
        const auto rep = d->metrics().convergence(d->plan());
        if (rep.converged) {
          ++converged;
          stab_times.push_back(static_cast<double>(rep.time));
          leaders_correct =
              leaders_correct && d->plan().is_correct(rep.leader);
        }
        for (ProcessId i = 0; i < n; ++i) {
          queries += static_cast<double>(d->metrics().queries(i));
        }
      }
      queries /= 3.0 * n;
      table.add_row({std::to_string(n), std::to_string(crashes),
                     std::to_string(converged) + "/3",
                     stab_times.empty()
                         ? "-"
                         : "t=" + fmt_double(percentile(stab_times, 0.5), 0),
                     yes_no(leaders_correct), fmt_double(queries, 0)});
      verdict.expect(converged == 3,
                     "all seeds must converge at n=" + std::to_string(n) +
                         " crashes=" + std::to_string(crashes));
      verdict.expect(leaders_correct, "elected leader must be correct");
    }
  }
  std::cout << table.render();
  return verdict.finish(
      "a unique correct leader emerges for every n and every crash count up "
      "to n-1 (t-independence), within the horizon");
}
