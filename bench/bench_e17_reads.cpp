// E17 — linearizable reads at memory speed: epoch-fenced leader leases
// plus follower read-index, measured on the same 3-OS-process topology as
// E16. E15/E16 priced the WRITE path; this experiment prices the READ
// path the lease machinery unlocks: point reads answered on the server's
// IO thread from the apply-time hash index — no consensus, no owner-thread
// hop — under a quorum-confirmed, epoch-fenced lease (leader) or behind a
// mirror-published commit fence (followers), so all three processes are
// read capacity.
//
// Measured:
//   1. the B=64 write sweep still holds E15's >= 80k appends/s gate on
//      the cross-process cluster (the read path must not tax writes);
//   2. point-read storm — raw v1.6 READ frames batched ~1k per syscall
//      against all three nodes while a background appender keeps the log
//      moving: >= 1M answered reads/s aggregate, split into lease reads
//      (leader) vs read-index reads (followers);
//   3. fence-wait — append on the leader, immediately read the same key
//      on a follower with min_index = the fresh index: the follower
//      parks the read until its applied state passes the fence
//      (smr.fence_wait_ns p99 scraped over v1.3 METRICS);
//   4. SIGKILL the leader mid-traffic — survivors keep answering, and NO
//      stale read is ever served: every answered index respects the
//      per-key maximum observed before the kill, cross-checked against
//      the survivors' full logs after failover.
//
// The parent is a pure wire-protocol client; fork() happens before any
// thread exists, so the children can build the full threaded runtime.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "harness.h"
#include "net/client.h"
#include "net/frame.h"
#include "obs/metrics.h"
#include "smr/node.h"

namespace {

using namespace omega;
using namespace omega::bench;

std::int64_t wall_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

constexpr svc::GroupId kGid = 17;
constexpr std::uint32_t kNodes = 3;

// Write sweep: E15's B=64 acceptance row, run cross-process.
constexpr std::uint64_t kWriteTarget = 48000;
constexpr std::uint32_t kWriteConns = 64;
constexpr std::uint32_t kWriteDepth = 8;

// Read storm: raw-frame readers, one per node, kBatch requests per
// write() syscall over a key pool drawn from the applied log.
constexpr std::size_t kBatch = 1024;
constexpr std::size_t kPool = 1024;
constexpr std::int64_t kStormNs = 4'000'000'000;

// v1.6 wire geometry the raw readers rely on (asserted at startup
// against the real encoder): a canonical READ request is 40 bytes on the
// wire, every READ response is exactly 60.
constexpr std::size_t kReqBytes = 4 + net::kHeaderBytes + 24;
constexpr std::size_t kRespBytes = 4 + net::kHeaderBytes + 44;

std::vector<std::uint16_t> pick_free_ports(std::size_t n) {
  // All probe sockets stay open until every port is picked: closing one
  // early lets the kernel hand the same port to the next probe, and two
  // nodes then race to bind it (a real flake this harness had).
  std::vector<int> fds;
  std::vector<std::uint16_t> ports;
  for (std::size_t i = 0; i < n; ++i) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    OMEGA_CHECK(fd >= 0, "socket: errno " << errno);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    OMEGA_CHECK(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) ==
                    0,
                "bind: errno " << errno);
    socklen_t len = sizeof addr;
    OMEGA_CHECK(getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) ==
                    0,
                "getsockname");
    fds.push_back(fd);
    ports.push_back(ntohs(addr.sin_port));
  }
  for (const int fd : fds) ::close(fd);
  return ports;
}

smr::SmrSpec bench_spec() {
  smr::SmrSpec spec;
  spec.n = 3;
  spec.capacity = 65536;
  spec.window = 16;
  spec.max_batch = 64;
  spec.max_pending = 8192;
  // E17 prices the READ path; its write gate is E15's original B=64
  // TCP-path gate, so the sweep runs without the WAL/quorum-ack tax —
  // E16 owns cross-process durability pricing. (No node restarts here:
  // the SIGKILL phase only needs the survivors' in-memory state.)
  spec.quorum_ack = false;
  // The lease under test: 400ms ttl, 20ms assumed clock skew. Heartbeats
  // ride the 50ms mirror ticks, so a healthy leader renews ~8x per ttl;
  // an epoch change or stale quorum acks drop it immediately.
  spec.lease_ttl_us = 400000;
  spec.lease_skew_us = 20000;
  return spec;
}

[[noreturn]] void run_node(const smr::NodeTopology& base,
                           std::uint32_t self) {
  try {
    smr::NodeTopology topo = base;
    topo.self = self;
    svc::SvcConfig scfg;
    scfg.workers = 1;
    scfg.tick_us = 100000;
    scfg.wheel_slot_us = 4096;
    scfg.ops_per_sweep = 128;
    scfg.pace_us = 50;
    scfg.max_pace_us = 2000;
    scfg.worker_nice = 10;
    smr::SmrNode node(topo, scfg, {});
    node.add_log(kGid, bench_spec());
    node.start();
    for (;;) ::pause();
  } catch (const std::exception& e) {
    fprintf(stderr, "node %u died at startup: %s\n", self, e.what());
    _exit(1);
  } catch (...) {
    _exit(1);
  }
  _exit(0);
}

struct Cluster {
  smr::NodeTopology topo;
  std::vector<pid_t> pids;

  bool alive(std::uint32_t node) const { return pids[node] > 0; }

  pid_t spawn(std::uint32_t node) {
    const pid_t pid = fork();
    if (pid == 0) run_node(topo, node);
    return pid;
  }

  void kill_node(std::uint32_t node) {
    ::kill(pids[node], SIGKILL);
    ::waitpid(pids[node], nullptr, 0);
    pids[node] = -1;
  }

  ~Cluster() {
    for (const pid_t pid : pids) {
      if (pid > 0) ::kill(pid, SIGKILL);
    }
    for (const pid_t pid : pids) {
      if (pid > 0) ::waitpid(pid, nullptr, 0);
    }
  }
};

void connect_retry(Cluster& cluster, net::Client& c, std::uint32_t node,
                   int deadline_s) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(deadline_s);
  for (;;) {
    try {
      c.connect("127.0.0.1", cluster.topo.nodes[node].serve_port, 2000);
      return;
    } catch (const net::NetError&) {
      OMEGA_CHECK(std::chrono::steady_clock::now() < deadline,
                  "node " << node << " unreachable");
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
  }
}

ProcessId await_cluster_leader(Cluster& cluster, int deadline_s) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(deadline_s);
  while (std::chrono::steady_clock::now() < deadline) {
    for (std::uint32_t node = 0; node < kNodes; ++node) {
      if (!cluster.alive(node)) continue;
      try {
        net::Client c;
        connect_retry(cluster, c, node, 5);
        const auto r = c.leader(kGid);
        if (r.ok() && r.view.leader != kNoProcess &&
            cluster.alive(cluster.topo.node_of(r.view.leader))) {
          return r.view.leader;
        }
      } catch (const net::NetError&) {
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  return kNoProcess;
}

struct LoadResult {
  double qps = 0;
  std::int64_t ack_p50_ns = 0;
  std::int64_t ack_p99_ns = 0;
  std::uint64_t committed = 0;
  std::uint64_t not_leader = 0;
  std::uint64_t bad = 0;
};

/// E15's pipelined closed loop, pointed at the leader node's TCP port.
LoadResult run_appenders(std::uint16_t port, std::uint64_t target,
                         int deadline_ms) {
  struct Conn {
    struct Out {
      std::uint64_t req_id = 0;
      std::int64_t sent_ns = 0;
    };
    net::Client client;
    std::uint64_t id = 0;
    std::uint64_t next_seq = 1;
    std::vector<Out> outstanding;
  };
  std::vector<Conn> conns(kWriteConns);
  std::vector<pollfd> pfds(kWriteConns);
  for (std::uint32_t i = 0; i < kWriteConns; ++i) {
    conns[i].client.connect("127.0.0.1", port);
    conns[i].id = 1000 + i;
    pfds[i] = pollfd{conns[i].client.native_handle(), POLLIN, 0};
  }
  std::vector<std::int64_t> lat;
  lat.reserve(target);
  LoadResult result;
  const std::int64_t t0 = wall_ns();
  const std::int64_t deadline = t0 + std::int64_t{deadline_ms} * 1000000;

  auto top_up = [&](Conn& c) {
    while (c.outstanding.size() < kWriteDepth) {
      const std::uint64_t seq = c.next_seq++;
      const std::uint64_t cmd = 1 + ((c.id * 131 + seq) % 65533);
      const std::int64_t now = wall_ns();
      c.outstanding.push_back(
          Conn::Out{c.client.append_async(kGid, c.id, seq, cmd), now});
    }
  };
  for (auto& c : conns) top_up(c);

  while (result.committed < target && wall_ns() < deadline) {
    if (::poll(pfds.data(), pfds.size(), 50) <= 0) continue;
    const std::int64_t now = wall_ns();
    for (std::uint32_t i = 0; i < kWriteConns; ++i) {
      if (!(pfds[i].revents & POLLIN)) continue;
      Conn& c = conns[i];
      for (;;) {
        const auto a = c.client.next_append_result(0);
        if (!a.has_value()) break;
        std::int64_t sent = 0;
        for (auto it = c.outstanding.begin(); it != c.outstanding.end();
             ++it) {
          if (it->req_id == a->req_id) {
            sent = it->sent_ns;
            *it = c.outstanding.back();
            c.outstanding.pop_back();
            break;
          }
        }
        if (a->result.status == net::Status::kOk) {
          lat.push_back(now - sent);
          ++result.committed;
        } else if (a->result.status == net::Status::kNotLeader) {
          ++result.not_leader;
        } else {
          ++result.bad;
        }
      }
      top_up(c);
    }
  }
  const std::int64_t t1 = wall_ns();
  result.qps = static_cast<double>(result.committed) /
               (static_cast<double>(t1 - t0) / 1e9);
  result.ack_p50_ns = percentile_ns(lat, 0.50);
  result.ack_p99_ns = percentile_ns(lat, 0.99);
  return result;
}

// ------------------------------------------------------------ raw reads ---

bool send_all(int fd, const std::uint8_t* buf, std::size_t len) {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::send(fd, buf + off, len - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

bool recv_all(int fd, std::uint8_t* buf, std::size_t len) {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::recv(fd, buf + off, len - off, 0);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

int dial_raw(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  OMEGA_CHECK(fd >= 0, "socket: errno " << errno);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  OMEGA_CHECK(
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) == 0,
      "connect: errno " << errno);
  const int one = 1;
  (void)setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return fd;
}

/// One reader's tally. Readers parse responses at fixed 60-byte stride —
/// a READ-only connection carries nothing else — and check per-key index
/// monotonicity within their own session as they go.
struct ReaderStats {
  std::uint64_t lease = 0;     ///< kLeaseRead (leader, lease valid)
  std::uint64_t index = 0;     ///< kIndexRead (follower past the fence)
  std::uint64_t fallback = 0;  ///< kOk (committed-read slow path)
  std::uint64_t refused = 0;   ///< kNotLeader
  std::uint64_t other = 0;
  std::uint64_t mono_violations = 0;
  bool io_error = false;
  std::vector<std::uint64_t> last;  ///< per pool slot: highest index seen
};

/// Batched storm against one node: kBatch pre-encoded READ requests per
/// send(), then exactly kBatch 60-byte responses back. Request j of every
/// batch reads pool[j] and carries req_id=j; responses are matched by the
/// echoed req_id because the server does NOT preserve order — a follower
/// defers reads that sit behind the fence and answers later ones first.
void read_storm(int fd, const std::vector<std::uint64_t>& pool,
                std::int64_t until_ns, ReaderStats& out) {
  std::vector<std::uint8_t> req;
  req.reserve(kBatch * kReqBytes);
  for (std::size_t j = 0; j < kBatch; ++j) {
    net::ReadReqBody body;
    body.gid = kGid;
    body.key = pool[j % pool.size()];
    body.min_index = 0;
    net::encode_read_request(req, /*req_id=*/j, body);
  }
  OMEGA_CHECK(req.size() == kBatch * kReqBytes,
              "canonical READ request is not " << kReqBytes << "B on the wire");
  std::vector<std::uint8_t> resp(kBatch * kRespBytes);
  out.last.assign(pool.size(), 0);
  while (wall_ns() < until_ns) {
    if (!send_all(fd, req.data(), req.size()) ||
        !recv_all(fd, resp.data(), resp.size())) {
      out.io_error = true;
      return;
    }
    for (std::size_t j = 0; j < kBatch; ++j) {
      const std::uint8_t* f = resp.data() + j * kRespBytes;
      // len(4) | magic ver type status req_id(8) | body. Length and type
      // are asserted (cheaply) so a framing slip fails loudly instead of
      // feeding garbage indices into the monotonicity check.
      std::uint32_t len;
      std::memcpy(&len, f, 4);
      if (len != kRespBytes - 4 ||
          f[6] != static_cast<std::uint8_t>(net::MsgType::kRead)) {
        out.io_error = true;
        return;
      }
      const auto status = static_cast<net::Status>(f[7]);
      std::uint64_t req_id;
      std::memcpy(&req_id, f + 8, 8);
      if (req_id >= kBatch) {
        out.io_error = true;
        return;
      }
      std::uint64_t idx;
      std::memcpy(&idx, f + 4 + net::kHeaderBytes + 16, 8);
      bool answered = true;
      switch (status) {
        case net::Status::kLeaseRead:
          ++out.lease;
          break;
        case net::Status::kIndexRead:
          ++out.index;
          break;
        case net::Status::kOk:
          ++out.fallback;
          break;
        case net::Status::kNotLeader:
          ++out.refused;
          answered = false;
          break;
        default:
          ++out.other;
          answered = false;
          break;
      }
      if (answered) {
        const std::size_t slot = static_cast<std::size_t>(req_id) % pool.size();
        if (idx < out.last[slot]) ++out.mono_violations;
        if (idx > out.last[slot]) out.last[slot] = idx;
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = json_path_from_args(argc, argv);
  const bool perf_advisory =
      std::getenv("OMEGA_E17_PERF_ADVISORY") != nullptr;

  std::cout << banner(
      "E17: linearizable reads — leases + follower read-index",
      {"topology: 3 OS processes x 1 replica, localhost TCP, v1.6 READ",
       "measure : B=64 write sweep (E15 gate), point-read storm on all",
       "          nodes (lease vs read-index), fence-wait p99, SIGKILL",
       "          with zero stale reads across failover"});

  Verdict verdict;
  JsonReport json;

  std::string artifact_dir = ".";
  {
    const auto slash = json_path.rfind('/');
    if (slash != std::string::npos) artifact_dir = json_path.substr(0, slash);
    ::setenv("OMEGA_TRACE_DIR", artifact_dir.c_str(), /*overwrite=*/0);
  }

  Cluster cluster;
  const std::vector<std::uint16_t> ports = pick_free_ports(2 * kNodes);
  for (std::uint32_t i = 0; i < kNodes; ++i) {
    cluster.topo.nodes.push_back(
        smr::NodeEndpoint{i, "127.0.0.1", ports[2 * i], ports[2 * i + 1]});
  }
  for (std::uint32_t i = 0; i < kNodes; ++i) {
    cluster.pids.push_back(cluster.spawn(i));
  }

  // --- phase A: election across processes. ---------------------------------
  const std::int64_t elect_t0 = wall_ns();
  const ProcessId leader = await_cluster_leader(cluster, 120);
  verdict.expect(leader != kNoProcess,
                 "three processes must elect a leader over the mirror");
  const double elect_ms = static_cast<double>(wall_ns() - elect_t0) / 1e6;
  const std::uint32_t leader_node = cluster.topo.node_of(leader);
  std::cout << "  leader: replica " << leader << " on node " << leader_node
            << " after " << fmt_double(elect_ms, 1) << " ms\n\n";
  json.set("election_ms", elect_ms);

  // --- phase B: the E15 write gate, cross-process. -------------------------
  const LoadResult load =
      run_appenders(cluster.topo.nodes[leader_node].serve_port, kWriteTarget,
                    /*deadline_ms=*/90000);
  AsciiTable wtable({"write sweep (B=64)", "value"});
  wtable.add_row({"appends/sec",
                  fmt_count(static_cast<std::uint64_t>(load.qps))});
  wtable.add_row({"committed", fmt_count(load.committed)});
  wtable.add_row({"ack p50 / p99 (ms)",
                  fmt_double(static_cast<double>(load.ack_p50_ns) / 1e6, 2) +
                      " / " +
                      fmt_double(static_cast<double>(load.ack_p99_ns) / 1e6,
                                 2)});
  std::cout << wtable.render() << '\n';
  verdict.expect(load.bad == 0, "every append answered ok or not-leader");
  const std::string wgate =
      ">= 80k appends/s at B=64 with the read path built in (got " +
      fmt_count(static_cast<std::uint64_t>(load.qps)) + "/s, " +
      fmt_count(load.committed) + "/" + fmt_count(kWriteTarget) + ")";
  if (perf_advisory) {
    if (load.qps < 80000.0 || load.committed < kWriteTarget) {
      std::cout << "  [ADVISORY] " << wgate << '\n';
    }
  } else {
    verdict.expect(load.qps >= 80000.0 && load.committed >= kWriteTarget,
                   wgate);
  }
  json.set("appends_per_sec", load.qps);
  json.set("committed", load.committed);
  json.set("ack_p50_ms", static_cast<double>(load.ack_p50_ns) / 1e6);
  json.set("ack_p99_ms", static_cast<double>(load.ack_p99_ns) / 1e6);

  if (std::getenv("OMEGA_E17_WRITE_ONLY") != nullptr) {
    json.set_str("bench", "e17_reads");
    json.write(json_path);
    return verdict.finish("write sweep only (OMEGA_E17_WRITE_ONLY)");
  }

  // --- phase C: point-read storm on every node. ----------------------------
  // The key pool is drawn from the log actually applied in phase B, via
  // the v1.1 pagination helper — reads hit live apply-time index state,
  // not hand-picked keys.
  std::vector<std::uint64_t> pool;
  {
    net::Client c;
    connect_retry(cluster, c, leader_node, 30);
    const auto log = c.read_log_all(kGid);
    verdict.expect(log.status == net::Status::kOk && !log.entries.empty(),
                   "the applied log must page back through read_log_all");
    std::unordered_map<std::uint64_t, bool> seen;
    for (const std::uint64_t v : log.entries) {
      if (pool.size() >= kPool) break;
      if (!seen.emplace(v, true).second) continue;
      pool.push_back(v);
    }
  }
  OMEGA_CHECK(!pool.empty(), "no applied keys to read");

  // Background writer: the storm is a MIXED workload — appends keep
  // committing under the readers. Commands live in the 16-bit consensus
  // value range, so collisions with pool keys are possible — harmless:
  // a re-appended key's index only moves FORWARD, which is exactly what
  // the monotonicity check allows.
  std::atomic<bool> bg_stop{false};
  std::atomic<std::uint64_t> bg_committed{0};
  std::thread bg_writer([&] {
    net::Client c;
    bool connected = false;
    std::uint64_t seq = 1;
    while (!bg_stop.load(std::memory_order_relaxed)) {
      try {
        if (!connected) {
          connect_retry(cluster, c, leader_node, 10);
          connected = true;
        }
        const auto r =
            c.append_retry(kGid, /*client=*/2000, seq, 1 + (seq % 65533), 2000);
        if (r.ok()) {
          bg_committed.fetch_add(1, std::memory_order_relaxed);
          ++seq;
        } else {
          fprintf(stderr, "  [bg] append status %u\n",
                  static_cast<unsigned>(r.status));
          ++seq;
        }
      } catch (const net::NetError&) {
        // Starved under the storm — redial and keep pressing.
        c.close();
        connected = false;
      }
    }
  });

  std::vector<int> fds;
  for (std::uint32_t node = 0; node < kNodes; ++node) {
    fds.push_back(dial_raw(cluster.topo.nodes[node].serve_port));
  }
  std::vector<ReaderStats> stats(kNodes);
  const std::int64_t storm_t0 = wall_ns();
  {
    std::vector<std::thread> readers;
    for (std::uint32_t node = 0; node < kNodes; ++node) {
      readers.emplace_back([&, node] {
        read_storm(fds[node], pool, storm_t0 + kStormNs, stats[node]);
      });
    }
    for (auto& t : readers) t.join();
  }
  const double storm_s =
      static_cast<double>(wall_ns() - storm_t0) / 1e9;
  bg_stop.store(true, std::memory_order_relaxed);
  bg_writer.join();
  for (const int fd : fds) ::close(fd);

  std::uint64_t lease_reads = 0, index_reads = 0, fallback_reads = 0;
  std::uint64_t refused_reads = 0, other_reads = 0, mono_violations = 0;
  bool reader_io_error = false;
  for (const ReaderStats& s : stats) {
    lease_reads += s.lease;
    index_reads += s.index;
    fallback_reads += s.fallback;
    refused_reads += s.refused;
    other_reads += s.other;
    mono_violations += s.mono_violations;
    reader_io_error = reader_io_error || s.io_error;
  }
  const std::uint64_t answered = lease_reads + index_reads + fallback_reads;
  const double reads_per_s = static_cast<double>(answered) / storm_s;
  const double bg_per_s =
      static_cast<double>(bg_committed.load()) / storm_s;

  AsciiTable rtable({"read storm (all 3 nodes)", "value"});
  rtable.add_row({"answered reads/sec",
                  fmt_count(static_cast<std::uint64_t>(reads_per_s))});
  rtable.add_row({"lease reads (leader)", fmt_count(lease_reads)});
  rtable.add_row({"read-index reads (followers)", fmt_count(index_reads)});
  rtable.add_row({"fallback committed reads", fmt_count(fallback_reads)});
  rtable.add_row({"refused (NotLeader)", fmt_count(refused_reads)});
  rtable.add_row({"background appends/sec",
                  fmt_count(static_cast<std::uint64_t>(bg_per_s))});
  std::cout << rtable.render() << '\n';

  verdict.expect(!reader_io_error,
                 "raw readers must survive the storm (no framing slip, no "
                 "server-side close)");
  verdict.expect(other_reads == 0, "no unexpected READ status in the storm");
  verdict.expect(lease_reads > 0,
                 "the leader must answer lease reads under load");
  verdict.expect(index_reads > 0,
                 "the followers must answer read-index reads — all three "
                 "processes are read capacity");
  verdict.expect(mono_violations == 0,
                 "per-key indices must be monotone within every session");
  verdict.expect(bg_committed.load() > 0,
                 "appends must keep committing under the read storm");
  const std::string rgate = ">= 1M answered point reads/s aggregate (got " +
                            fmt_count(static_cast<std::uint64_t>(
                                reads_per_s)) +
                            "/s)";
  if (perf_advisory) {
    if (reads_per_s < 1e6) std::cout << "  [ADVISORY] " << rgate << '\n';
  } else {
    verdict.expect(reads_per_s >= 1e6, rgate);
  }
  json.set("reads_per_s", reads_per_s);
  json.set("lease_reads", lease_reads);
  json.set("index_reads", index_reads);
  json.set("fallback_reads", fallback_reads);
  json.set("read_not_leader", refused_reads);
  json.set("mono_violations", mono_violations);
  json.set("bg_appends_per_s", bg_per_s);

  // --- phase D: fence-wait — read-your-writes on a follower. ---------------
  // Append on the leader, then read the fresh key on a follower with
  // min_index = the acked index: the follower may not answer until its
  // applied state passes that fence, so each round trips the park/wake
  // path the fence_wait histogram times.
  // The storm may have starved ticks enough to move leadership — route
  // the fence appends at whoever leads NOW.
  const ProcessId post_storm_leader = await_cluster_leader(cluster, 120);
  verdict.expect(post_storm_leader != kNoProcess,
                 "a leader must hold (or re-emerge) after the storm");
  const std::uint32_t write_node =
      post_storm_leader != kNoProcess ? cluster.topo.node_of(post_storm_leader)
                                      : leader_node;
  const std::uint32_t follower_node = (write_node + 1) % kNodes;
  double fence_wait_p99_us = 0;
  {
    net::Client w;
    net::Client r;
    connect_retry(cluster, w, write_node, 30);
    connect_retry(cluster, r, follower_node, 30);
    std::uint64_t fence_reads = 0;
    for (std::uint64_t i = 0; i < 200; ++i) {
      net::Client::AppendResult a;
      try {
        a = w.append_retry(kGid, /*client=*/3000, i + 1, 60000 + i, 10000);
      } catch (const net::NetError& e) {
        fprintf(stderr, "  [fence] append %llu: %s\n",
                static_cast<unsigned long long>(i), e.what());
        w.close();
        connect_retry(cluster, w, write_node, 30);
        continue;
      }
      if (!a.ok()) {
        if (i < 5) {
          fprintf(stderr, "  [fence] append %llu status %u\n",
                  static_cast<unsigned long long>(i),
                  static_cast<unsigned>(a.status));
        }
        continue;
      }
      for (int attempt = 0; attempt < 50; ++attempt) {
        // Append acks carry the 0-based applied position; the read
        // index (and the follower fence) are position + 1.
        const auto rr =
            r.read(kGid, 60000 + i, /*min_index=*/a.index + 1, 5000);
        if (rr.ok()) {
          verdict.expect(rr.index == a.index + 1,
                         "a fenced follower read must return the acked "
                         "position");
          ++fence_reads;
          break;
        }
      }
    }
    verdict.expect(fence_reads > 0,
                   "fenced follower reads must eventually be answered");
    json.set("fence_reads", fence_reads);

    const auto m = r.metrics();
    verdict.expect(m.ok(), "the follower must answer the METRICS scrape");
    if (const obs::MetricSample* s = m.find("smr.fence_wait_ns")) {
      fence_wait_p99_us = static_cast<double>(s->quantile(0.99)) / 1e3;
    }
    std::cout << "  fence-wait p99 (follower " << follower_node
              << "): " << fmt_double(fence_wait_p99_us, 1) << " us over "
              << fmt_count(fence_reads) << " fenced reads\n";
  }
  json.set("fence_wait_p99_us", fence_wait_p99_us);

  // --- phase E: SIGKILL the leader; zero stale reads across failover. ------
  // Freeze the storm's per-key maxima (the threads joined above — a real
  // happens-before barrier), then kill the leader and keep reading from
  // the survivors throughout the election. Every ANSWERED read must
  // respect those maxima: the lease died with the process, the new
  // leader's epoch fences the old one, and follower fences only move
  // forward — an index below the snapshot is a stale read, and the gate
  // is zero.
  std::vector<std::uint64_t> snapshot(pool.size(), 0);
  for (const ReaderStats& s : stats) {
    for (std::size_t i = 0; i < pool.size(); ++i) {
      snapshot[i] = std::max(snapshot[i], s.last[i]);
    }
  }

  std::cout << "\n  SIGKILL node " << write_node << " (the current leader's "
            << "node) ...\n";
  cluster.kill_node(write_node);
  const std::int64_t crash_t0 = wall_ns();

  std::atomic<bool> probe_stop{false};
  std::atomic<std::uint64_t> probe_answered{0};
  std::atomic<std::uint64_t> probe_stale{0};
  std::thread prober([&] {
    std::size_t slot = 0;
    std::uint32_t target = (write_node + 1) % kNodes;
    net::Client c;
    bool connected = false;
    while (!probe_stop.load(std::memory_order_relaxed)) {
      try {
        if (!connected) {
          connect_retry(cluster, c, target, 10);
          connected = true;
        }
        const auto rr = c.read(kGid, pool[slot], /*min_index=*/0, 2000);
        if (rr.ok()) {
          probe_answered.fetch_add(1, std::memory_order_relaxed);
          if (rr.index < snapshot[slot]) {
            probe_stale.fetch_add(1, std::memory_order_relaxed);
          }
        }
      } catch (const net::NetError&) {
        c.close();
        connected = false;
        target = (target == (write_node + 1) % kNodes)
                     ? (write_node + 2) % kNodes
                     : (write_node + 1) % kNodes;
      }
      slot = (slot + 1) % pool.size();
    }
  });

  bool post_crash_committed = false;
  std::uint64_t marker_index = 0;
  const auto failover_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(120);
  while (!post_crash_committed &&
         std::chrono::steady_clock::now() < failover_deadline) {
    const ProcessId nl = await_cluster_leader(cluster, 60);
    if (nl == kNoProcess) break;
    try {
      net::Client c;
      connect_retry(cluster, c, cluster.topo.node_of(nl), 10);
      const auto r = c.append_retry(kGid, /*client=*/4000, /*seq=*/1,
                                    /*command=*/65000, 15000);
      if (r.ok()) {
        post_crash_committed = true;
        marker_index = r.index;
      }
    } catch (const net::NetError&) {
    }
  }
  const double failover_ms = static_cast<double>(wall_ns() - crash_t0) / 1e6;
  verdict.expect(post_crash_committed,
                 "a surviving node must take over and commit");
  std::cout << "  failover -> first commit on a survivor: "
            << fmt_double(failover_ms, 1) << " ms (index " << marker_index
            << ")\n";
  json.set("failover_ms", failover_ms);

  // Read-your-writes across the failover: every survivor must serve the
  // marker at its acked position once fenced by min_index.
  for (std::uint32_t node = 0; node < kNodes; ++node) {
    if (!cluster.alive(node)) continue;
    net::Client c;
    connect_retry(cluster, c, node, 30);
    bool served = false;
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(60);
    while (!served && std::chrono::steady_clock::now() < deadline) {
      try {
        const auto rr =
            c.read(kGid, 65000, /*min_index=*/marker_index + 1, 5000);
        if (rr.ok() && rr.index == marker_index + 1) served = true;
      } catch (const net::NetError&) {
        c.close();
        connect_retry(cluster, c, node, 10);
      }
    }
    verdict.expect(served, "survivor must serve the post-failover marker "
                           "at its acked position");
  }

  probe_stop.store(true, std::memory_order_relaxed);
  prober.join();
  std::cout << "  reads across the failover window: "
            << fmt_count(probe_answered.load()) << " answered, "
            << fmt_count(probe_stale.load()) << " stale\n";
  verdict.expect(probe_answered.load() > 0,
                 "survivors must answer reads across the failover window");
  verdict.expect(probe_stale.load() == 0,
                 "ZERO stale reads across failover: every answered index "
                 "must respect the pre-kill per-key maxima");
  json.set("post_kill_reads", probe_answered.load());
  json.set("stale_reads", probe_stale.load());

  // --- phase F: cross-check against the survivors' logs. -------------------
  // The storm's observed maxima and the survivors' actual logs must tell
  // one story: for every pool key, the highest index any reader ever saw
  // is exactly a position of that key in the converged log, never past
  // the end, never contradicting the survivors' agreement.
  {
    std::vector<net::Client::LogView> logs;
    for (std::uint32_t node = 0; node < kNodes; ++node) {
      if (!cluster.alive(node)) continue;
      net::Client c;
      connect_retry(cluster, c, node, 30);
      const auto deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(120);
      for (;;) {
        auto v = c.read_log_all(kGid);
        OMEGA_CHECK(v.status == net::Status::kOk, "read_log_all failed");
        if (v.entries.size() >= marker_index ||
            std::chrono::steady_clock::now() >= deadline) {
          logs.push_back(std::move(v));
          break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
      }
    }
    OMEGA_CHECK(logs.size() == 2, "two survivors expected");
    const std::size_t common =
        std::min(logs[0].entries.size(), logs[1].entries.size());
    bool agree = true;
    for (std::size_t i = 0; i < common; ++i) {
      agree = agree && logs[0].entries[i] == logs[1].entries[i];
    }
    verdict.expect(agree, "the survivors' logs must agree entry for entry");
    verdict.expect(common >= marker_index + 1,
                   "the shared log must cover the failover marker");
    std::unordered_map<std::uint64_t, std::uint64_t> final_pos;
    for (std::size_t i = 0; i < common; ++i) {
      final_pos[logs[0].entries[i]] = i + 1;  // wire index = position + 1
    }
    bool consistent = true;
    for (std::size_t slot = 0; slot < pool.size(); ++slot) {
      const auto it = final_pos.find(pool[slot]);
      consistent = consistent && it != final_pos.end() &&
                   snapshot[slot] <= it->second;
    }
    verdict.expect(consistent,
                   "every observed read index must be covered by the "
                   "survivors' converged log");
    json.set("survivor_log_len", static_cast<std::uint64_t>(common));
  }

  json.set_str("bench", "e17_reads");
  json.write(json_path);

  std::cout << '\n';
  return verdict.finish(
      "the lease + read-index path turns all three processes into read "
      "capacity: point reads are answered at memory speed on the IO "
      "thread, the B=64 write gate still holds, follower reads wait out "
      "their fence instead of answering stale, and SIGKILLing the leader "
      "never lets a stale read escape");
}
