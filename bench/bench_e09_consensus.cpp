// E9 — the application claim: Ω is what makes shared-memory consensus live
// ([19], §1), and the construction runs unchanged over SAN-backed registers
// (the paper's "why shared-memory Ω matters" section).
//
// Measures consensus decision latency (sim ticks from proposal to last
// live decision) driven by each Ω implementation, over plain memory and
// over the simulated disk array.
#include "consensus/consensus.h"
#include "harness.h"
#include "san/san_memory.h"

namespace {

using namespace omega;

struct Outcome {
  bool decided_all = false;
  bool agreement = false;
  SimTime latency = 0;
};

Outcome run_consensus(AlgoKind algo, std::uint32_t n, std::uint64_t seed,
                      const MemoryFactory& mf) {
  ScenarioConfig cfg;
  cfg.algo = algo;
  cfg.n = n;
  cfg.world = World::kAwb;
  cfg.seed = seed;
  ConsensusInstance inst(n);
  cfg.extra_registers = [&inst](LayoutBuilder& b) { inst.declare(b); };
  auto d = make_scenario(cfg, mf);
  inst.bind(d->memory().layout());
  std::vector<std::uint64_t> decided(n, 0);
  for (ProcessId i = 0; i < n; ++i) {
    auto* slot = &decided[i];
    d->add_app_task(i, inst.proposer(i, 100 + i, [slot](std::uint64_t v) {
      *slot = v;
    }));
  }
  const SimTime start = d->now();
  Outcome out;
  while (d->now() < 3000000) {
    if (d->all_apps_done()) break;
    d->run_for(200);
  }
  out.decided_all = d->all_apps_done();
  out.latency = d->now() - start;
  out.agreement = true;
  for (ProcessId i = 1; i < n; ++i) {
    out.agreement = out.agreement && decided[i] == decided[0];
  }
  return out;
}

}  // namespace

int main() {
  using namespace omega;
  using namespace omega::bench;

  std::cout << banner(
      "E9: consensus on top of Omega, plain memory vs SAN (uses [19], [9])",
      {"workload: n proposers with distinct values, AWB world, 3 seeds",
       "measure : decision latency (ticks until all live processes decide)"});

  Verdict verdict;
  AsciiTable table({"omega", "memory", "n", "decided", "agreement",
                    "latency med (ticks)"});

  for (AlgoKind algo : {AlgoKind::kWriteEfficient, AlgoKind::kBounded}) {
    for (bool san : {false, true}) {
      for (std::uint32_t n : {4u, 8u}) {
        std::vector<double> latencies;
        bool all_ok = true, agree = true;
        for (std::uint64_t seed : {5ull, 6ull, 7ull}) {
          const MemoryFactory mf =
              san ? san_memory_factory(SanConfig{}) : MemoryFactory{};
          const Outcome o = run_consensus(algo, n, seed, mf);
          all_ok = all_ok && o.decided_all;
          agree = agree && o.agreement;
          latencies.push_back(static_cast<double>(o.latency));
        }
        table.add_row({std::string(algo_name(algo)),
                       san ? "SAN (4 disks)" : "plain", std::to_string(n),
                       yes_no(all_ok), yes_no(agree),
                       fmt_double(percentile(latencies, 0.5), 0)});
        verdict.expect(all_ok, "consensus must terminate");
        verdict.expect(agree, "agreement must hold");
      }
    }
  }
  std::cout << table.render()
            << "\nDisk latency stretches decision time but touches neither "
               "agreement nor\ntermination — the register abstraction is "
               "doing its job.\n";
  return verdict.finish(
      "every Omega implementation drives consensus to a single valid "
      "decision, on plain and on SAN-backed registers");
}
