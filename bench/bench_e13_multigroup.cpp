// E13 — beyond the paper: the multi-group leader service (src/svc).
//
// The paper builds one Ω instance; a production leader service (a lease
// table à la Chubby/etcd) runs thousands of independent instances and
// answers "who leads group G?" from a cache. This experiment sweeps
// groups × workers over the sharded worker-pool runtime and checks the two
// claims that make the subsystem useful:
//
//   1. scale-out — ≥ 1000 concurrent election groups (n=3 each) on a pool
//      of ≤ 8 workers all elect a correct leader after their GST (here:
//      after start, since no process crashes);
//   2. cheap reads — cached leader() queries are answered off the election
//      hot path; we report steps/sec of the pool and query p50/p99.
//
// Since the epoch-listener seam landed (src/net PR), the bench also
// measures push notification latency: crash a leader and time how long
// until the epoch-change callback reports a new live leader — the same
// path the network watch hub rides. The original columns are untouched
// and remain the baseline.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>

#include "common/rng.h"
#include "harness.h"
#include "svc/multigroup_service.h"

namespace {

std::int64_t wall_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace omega;
  using namespace omega::bench;
  using namespace omega::svc;

  std::cout << banner(
      "E13: multi-group leader service (sharded worker pool, svc/)",
      {"workload: G independent fig2 groups (n=3) on a W-worker pool",
       "measure : convergence of every group, pool steps/sec, cached",
       "          leader() query latency p50/p99"});

  Verdict verdict;
  JsonReport json;
  json.set_str("bench", "e13_multigroup");
  AsciiTable table({"groups", "workers", "converged", "conv wall ms",
                    "steps/sec", "queries/sec", "q p50 ns", "q p99 ns"});
  AsciiTable notif_table({"groups", "workers", "fail-overs", "notif p50 ms",
                          "notif p99 ms"});

  /// Last view pushed through the epoch listener for one group, with its
  /// arrival timestamp (written by the shard worker, polled by main).
  struct NotifSlot {
    std::atomic<std::uint64_t> epoch{0};
    std::atomic<ProcessId> leader{kNoProcess};
    std::atomic<std::int64_t> t_ns{0};
  };

  struct Row {
    std::uint32_t groups;
    std::uint32_t workers;
  };
  // The acceptance row is last: 1000 groups (3000 processes, 9000+
  // registers each in their own cache-padded arrays) on an 8-worker pool.
  const Row rows[] = {{64, 1}, {256, 2}, {1000, 4}, {1000, 8}};

  for (const Row& row : rows) {
    SvcConfig cfg;
    cfg.workers = row.workers;
    cfg.tick_us = 500;
    cfg.wheel_slot_us = 256;
    cfg.wheel_slots = 256;
    cfg.ops_per_sweep = 8;
    cfg.pace_us = 0;  // free-running: this is the throughput measurement

    MultiGroupLeaderService service(cfg);
    for (svc::GroupId gid = 0; gid < row.groups; ++gid) service.add_group(gid);

    // Epoch-change push seam: every published transition lands here, off
    // the polling path — the same feed the network watch hub subscribes to.
    auto slots = std::make_unique<NotifSlot[]>(row.groups);
    service.set_epoch_listener(
        [&slots, groups = row.groups](svc::GroupId gid,
                                      const LeaderView& view) {
          if (gid >= groups) return;
          NotifSlot& slot = slots[gid];
          slot.epoch.store(view.epoch, std::memory_order_relaxed);
          slot.leader.store(view.leader, std::memory_order_relaxed);
          slot.t_ns.store(wall_ns(), std::memory_order_release);
        });
    service.start();

    // --- convergence: every group must reach an agreed live leader. -----
    const std::int64_t t0_ns = wall_ns();
    std::uint32_t converged = 0;
    for (svc::GroupId gid = 0; gid < row.groups; ++gid) {
      if (service.await_leader(gid, /*timeout_us=*/120000000) != kNoProcess) {
        ++converged;
      }
    }
    const double conv_ms =
        static_cast<double>(wall_ns() - t0_ns) / 1e6;

    // "Correct" with no crashes: a live leader that every process of the
    // group names unanimously, served consistently by the cache.
    std::uint32_t correct = 0;
    for (svc::GroupId gid = 0; gid < row.groups; ++gid) {
      const GroupStatus st = service.status(gid);
      bool ok = st.view.leader != kNoProcess && st.view.leader < 3 &&
                !st.failed && st.view.epoch >= 1;
      for (std::size_t p = 0; ok && p < st.local_views.size(); ++p) {
        ok = st.local_views[p] == st.view.leader && !st.crashed[p];
      }
      if (ok) ++correct;
    }

    // --- steps/sec of the pool while it keeps the fleet elected. --------
    const SvcStats s0 = service.stats();
    const std::int64_t m0_ns = wall_ns();
    std::this_thread::sleep_for(std::chrono::milliseconds(400));
    const SvcStats s1 = service.stats();
    const double steps_per_sec =
        static_cast<double>(s1.steps - s0.steps) /
        (static_cast<double>(wall_ns() - m0_ns) / 1e9);

    // --- cached query latency under live election traffic. --------------
    constexpr std::uint32_t kQueries = 50000;
    std::vector<std::int64_t> lat_ns;
    lat_ns.reserve(kQueries);
    Rng rng(2024);
    std::uint64_t bad_answers = 0;
    const std::int64_t q0_ns = wall_ns();
    for (std::uint32_t q = 0; q < kQueries; ++q) {
      const svc::GroupId gid = static_cast<svc::GroupId>(
          rng.uniform(0, static_cast<std::int64_t>(row.groups) - 1));
      const std::int64_t a = wall_ns();
      const LeaderView v = service.leader(gid);
      const std::int64_t b = wall_ns();
      lat_ns.push_back(b - a);
      if (v.leader == kNoProcess || v.leader >= 3) ++bad_answers;
    }
    const double queries_per_sec =
        static_cast<double>(kQueries) /
        (static_cast<double>(wall_ns() - q0_ns) / 1e9);
    std::sort(lat_ns.begin(), lat_ns.end());
    const std::int64_t p50 = lat_ns[lat_ns.size() / 2];
    const std::int64_t p99 = lat_ns[lat_ns.size() * 99 / 100];

    // --- push notification latency: crash K leaders, time the listener.
    // The fail-overs run concurrently; each group's latency is its own
    // crash → callback-with-new-live-leader interval.
    constexpr std::uint32_t kFailovers = 16;
    std::vector<ProcessId> old_leader(kFailovers, kNoProcess);
    std::vector<std::int64_t> crash_ns(kFailovers, 0);
    for (std::uint32_t k = 0; k < kFailovers; ++k) {
      const svc::GroupId gid = k;  // distinct groups, spread over shards
      LeaderView v = service.leader(gid);
      while (v.leader == kNoProcess) {  // transient disagreement: re-read
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        v = service.leader(gid);
      }
      old_leader[k] = v.leader;
      crash_ns[k] = wall_ns();
      service.crash(gid, v.leader);
    }
    std::vector<std::int64_t> notif_ns;
    std::uint32_t notified = 0;
    const std::int64_t notif_deadline = wall_ns() + 120000000000LL;
    for (std::uint32_t k = 0; k < kFailovers; ++k) {
      const NotifSlot& slot = slots[k];
      for (;;) {
        const std::int64_t t = slot.t_ns.load(std::memory_order_acquire);
        const ProcessId leader = slot.leader.load(std::memory_order_relaxed);
        if (t > crash_ns[k] && leader != kNoProcess &&
            leader != old_leader[k]) {
          notif_ns.push_back(t - crash_ns[k]);
          ++notified;
          break;
        }
        if (wall_ns() > notif_deadline) break;
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    }
    std::sort(notif_ns.begin(), notif_ns.end());
    notif_table.add_row(
        {fmt_count(row.groups), std::to_string(row.workers),
         fmt_count(notified) + "/" + fmt_count(kFailovers),
         notif_ns.empty()
             ? "-"
             : fmt_double(
                   static_cast<double>(notif_ns[notif_ns.size() / 2]) / 1e6,
                   2),
         notif_ns.empty()
             ? "-"
             : fmt_double(static_cast<double>(
                              notif_ns[notif_ns.size() * 99 / 100]) /
                              1e6,
                          2)});
    verdict.expect(notified == kFailovers,
                   std::to_string(row.groups) + "g/" +
                       std::to_string(row.workers) +
                       "w: every fail-over must be pushed to the listener");
    if (!notif_ns.empty()) {
      json.set("notif_p50_ms",
               static_cast<double>(notif_ns[notif_ns.size() / 2]) / 1e6);
      json.set("notif_p99_ms",
               static_cast<double>(notif_ns[notif_ns.size() * 99 / 100]) /
                   1e6);
    }

    service.stop();

    table.add_row({fmt_count(row.groups), std::to_string(row.workers),
                   fmt_count(converged) + "/" + fmt_count(row.groups),
                   fmt_double(conv_ms, 1), fmt_count(static_cast<std::uint64_t>(
                                               steps_per_sec)),
                   fmt_count(static_cast<std::uint64_t>(queries_per_sec)),
                   fmt_count(static_cast<std::uint64_t>(p50)),
                   fmt_count(static_cast<std::uint64_t>(p99))});

    const std::string label = std::to_string(row.groups) + "g/" +
                              std::to_string(row.workers) + "w";
    // The last (largest) sweep provides the archived perf numbers.
    json.set("groups", std::uint64_t{row.groups});
    json.set("workers", std::uint64_t{row.workers});
    json.set("conv_wall_ms", conv_ms);
    json.set("steps_per_sec", steps_per_sec);
    json.set("queries_per_sec", queries_per_sec);
    json.set("query_p50_ns", p50);
    json.set("query_p99_ns", p99);
    verdict.expect(converged == row.groups,
                   label + ": every group must converge");
    verdict.expect(correct == row.groups,
                   label + ": every group must agree on a correct live leader");
    verdict.expect(bad_answers == 0,
                   label + ": cached queries must serve a live leader");
    verdict.expect(!service.failed(), label + ": no task may throw — " +
                                      service.failure_message());
  }

  std::cout << table.render() << '\n';
  std::cout << "epoch-change push notification (crash -> listener callback "
               "naming a new live leader):\n"
            << notif_table.render() << '\n';
  json.write(json_path_from_args(argc, argv));
  return verdict.finish(
      "1000+ election groups share a <=8-worker pool, every group elects a "
      "correct leader, and cached leader() queries stay off the hot path");
}
