// E13 — beyond the paper: the multi-group leader service (src/svc).
//
// The paper builds one Ω instance; a production leader service (a lease
// table à la Chubby/etcd) runs thousands of independent instances and
// answers "who leads group G?" from a cache. This experiment sweeps
// groups × workers over the sharded worker-pool runtime and checks the two
// claims that make the subsystem useful:
//
//   1. scale-out — ≥ 1000 concurrent election groups (n=3 each) on a pool
//      of ≤ 8 workers all elect a correct leader after their GST (here:
//      after start, since no process crashes);
//   2. cheap reads — cached leader() queries are answered off the election
//      hot path; we report steps/sec of the pool and query p50/p99.
#include <algorithm>
#include <chrono>

#include "common/rng.h"
#include "harness.h"
#include "svc/multigroup_service.h"

namespace {

std::int64_t wall_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

int main() {
  using namespace omega;
  using namespace omega::bench;
  using namespace omega::svc;

  std::cout << banner(
      "E13: multi-group leader service (sharded worker pool, svc/)",
      {"workload: G independent fig2 groups (n=3) on a W-worker pool",
       "measure : convergence of every group, pool steps/sec, cached",
       "          leader() query latency p50/p99"});

  Verdict verdict;
  AsciiTable table({"groups", "workers", "converged", "conv wall ms",
                    "steps/sec", "queries/sec", "q p50 ns", "q p99 ns"});

  struct Row {
    std::uint32_t groups;
    std::uint32_t workers;
  };
  // The acceptance row is last: 1000 groups (3000 processes, 9000+
  // registers each in their own cache-padded arrays) on an 8-worker pool.
  const Row rows[] = {{64, 1}, {256, 2}, {1000, 4}, {1000, 8}};

  for (const Row& row : rows) {
    SvcConfig cfg;
    cfg.workers = row.workers;
    cfg.tick_us = 500;
    cfg.wheel_slot_us = 256;
    cfg.wheel_slots = 256;
    cfg.ops_per_sweep = 8;
    cfg.pace_us = 0;  // free-running: this is the throughput measurement

    MultiGroupLeaderService service(cfg);
    for (svc::GroupId gid = 0; gid < row.groups; ++gid) service.add_group(gid);
    service.start();

    // --- convergence: every group must reach an agreed live leader. -----
    const std::int64_t t0_ns = wall_ns();
    std::uint32_t converged = 0;
    for (svc::GroupId gid = 0; gid < row.groups; ++gid) {
      if (service.await_leader(gid, /*timeout_us=*/120000000) != kNoProcess) {
        ++converged;
      }
    }
    const double conv_ms =
        static_cast<double>(wall_ns() - t0_ns) / 1e6;

    // "Correct" with no crashes: a live leader that every process of the
    // group names unanimously, served consistently by the cache.
    std::uint32_t correct = 0;
    for (svc::GroupId gid = 0; gid < row.groups; ++gid) {
      const GroupStatus st = service.status(gid);
      bool ok = st.view.leader != kNoProcess && st.view.leader < 3 &&
                !st.failed && st.view.epoch >= 1;
      for (std::size_t p = 0; ok && p < st.local_views.size(); ++p) {
        ok = st.local_views[p] == st.view.leader && !st.crashed[p];
      }
      if (ok) ++correct;
    }

    // --- steps/sec of the pool while it keeps the fleet elected. --------
    const SvcStats s0 = service.stats();
    const std::int64_t m0_ns = wall_ns();
    std::this_thread::sleep_for(std::chrono::milliseconds(400));
    const SvcStats s1 = service.stats();
    const double steps_per_sec =
        static_cast<double>(s1.steps - s0.steps) /
        (static_cast<double>(wall_ns() - m0_ns) / 1e9);

    // --- cached query latency under live election traffic. --------------
    constexpr std::uint32_t kQueries = 50000;
    std::vector<std::int64_t> lat_ns;
    lat_ns.reserve(kQueries);
    Rng rng(2024);
    std::uint64_t bad_answers = 0;
    const std::int64_t q0_ns = wall_ns();
    for (std::uint32_t q = 0; q < kQueries; ++q) {
      const svc::GroupId gid = static_cast<svc::GroupId>(
          rng.uniform(0, static_cast<std::int64_t>(row.groups) - 1));
      const std::int64_t a = wall_ns();
      const LeaderView v = service.leader(gid);
      const std::int64_t b = wall_ns();
      lat_ns.push_back(b - a);
      if (v.leader == kNoProcess || v.leader >= 3) ++bad_answers;
    }
    const double queries_per_sec =
        static_cast<double>(kQueries) /
        (static_cast<double>(wall_ns() - q0_ns) / 1e9);
    std::sort(lat_ns.begin(), lat_ns.end());
    const std::int64_t p50 = lat_ns[lat_ns.size() / 2];
    const std::int64_t p99 = lat_ns[lat_ns.size() * 99 / 100];

    service.stop();

    table.add_row({fmt_count(row.groups), std::to_string(row.workers),
                   fmt_count(converged) + "/" + fmt_count(row.groups),
                   fmt_double(conv_ms, 1), fmt_count(static_cast<std::uint64_t>(
                                               steps_per_sec)),
                   fmt_count(static_cast<std::uint64_t>(queries_per_sec)),
                   fmt_count(static_cast<std::uint64_t>(p50)),
                   fmt_count(static_cast<std::uint64_t>(p99))});

    const std::string label = std::to_string(row.groups) + "g/" +
                              std::to_string(row.workers) + "w";
    verdict.expect(converged == row.groups,
                   label + ": every group must converge");
    verdict.expect(correct == row.groups,
                   label + ": every group must agree on a correct live leader");
    verdict.expect(bad_answers == 0,
                   label + ": cached queries must serve a live leader");
    verdict.expect(!service.failed(), label + ": no task may throw — " +
                                      service.failure_message());
  }

  std::cout << table.render() << '\n';
  return verdict.finish(
      "1000+ election groups share a <=8-worker pool, every group elects a "
      "correct leader, and cached leader() queries stay off the hot path");
}
