// E15 — beyond the paper: the live replicated state machine (src/smr)
// served over the TCP front-end.
//
// E14 measured the *read* path (leader queries); this experiment measures
// the *write* path the paper's introduction motivates: clients append
// commands over TCP, the Ω-elected leader drives consensus slots to
// decision on the svc worker pool, commits are acknowledged to the
// submitting client and pushed to COMMIT_WATCH subscribers. Then we kill
// the leader mid-stream and measure how long the log stays unavailable.
//
// Claims checked:
//   1. throughput — ≥ 10k appends/s sustained through the TCP path at
//      3 replicas × 64 closed-loop client connections, every append
//      acknowledged with its unique commit index;
//   2. failover  — after a forced leader crash, the first post-crash
//      commit lands in < 1 s (clients only retry on kNotLeader; the
//      dedup keys keep the retries idempotent);
//   3. the log read back over READ_LOG equals the acknowledged commits.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <thread>
#include <vector>

#include "harness.h"
#include "net/client.h"
#include "net/leader_server.h"
#include "smr/smr_service.h"

namespace {

using namespace omega;
using namespace omega::bench;

std::int64_t wall_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

constexpr svc::GroupId kGid = 7;

/// One closed-loop appender connection (raw socket, one outstanding
/// APPEND). Commands cycle through [1, 65534]; seq advances only on kOk.
struct AppendConn {
  int fd = -1;
  net::FrameDecoder in;
  std::uint64_t client_id = 0;
  std::uint64_t seq = 0;
  std::int64_t sent_ns = 0;
};

int connect_loopback(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  OMEGA_CHECK(fd >= 0, "socket: errno " << errno);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  OMEGA_CHECK(
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) == 0,
      "connect: errno " << errno);
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return fd;
}

std::uint64_t command_of(const AppendConn& c) {
  // Unique-ish 16-bit payload; uniqueness across the log is not required
  // (dedup is by (client, seq)), only the [1, 65534] range is.
  return 1 + ((c.client_id * 131 + c.seq) % 65533);
}

void send_append(AppendConn& c, std::vector<std::uint8_t>& buf) {
  buf.clear();
  net::AppendReqBody req;
  req.gid = kGid;
  req.client = c.client_id;
  req.seq = c.seq;
  req.command = command_of(c);
  net::encode_append_request(buf, /*req_id=*/1, req);
  c.sent_ns = wall_ns();
  const ssize_t n = ::send(c.fd, buf.data(), buf.size(), MSG_NOSIGNAL);
  OMEGA_CHECK(n == static_cast<ssize_t>(buf.size()),
              "short send: " << n << " errno " << errno);
}

struct LoadResult {
  double qps = 0;
  std::int64_t p50_ns = 0;
  std::int64_t p99_ns = 0;
  std::uint64_t committed = 0;
  std::uint64_t not_leader = 0;
  std::uint64_t bad_answers = 0;
};

/// Runs the closed loop until `target` appends committed or `deadline_ms`
/// elapsed. `stop` (optional) aborts early. kNotLeader answers re-send the
/// same (client, seq) — the dedup key makes that idempotent.
LoadResult run_appenders(std::uint16_t port, std::uint32_t connections,
                         std::uint64_t target, int deadline_ms,
                         std::uint64_t first_client_id,
                         const std::atomic<bool>* stop = nullptr) {
  std::vector<AppendConn> conns(connections);
  std::vector<pollfd> pfds(connections);
  std::vector<std::uint8_t> buf;
  for (std::uint32_t i = 0; i < connections; ++i) {
    conns[i].fd = connect_loopback(port);
    conns[i].client_id = first_client_id + i;
    pfds[i] = pollfd{conns[i].fd, POLLIN, 0};
  }

  std::vector<std::int64_t> lat_ns;
  lat_ns.reserve(std::min<std::uint64_t>(target, 1u << 20));
  LoadResult result;
  const std::int64_t t0 = wall_ns();
  const std::int64_t deadline = t0 + std::int64_t{deadline_ms} * 1000000;
  for (auto& c : conns) send_append(c, buf);

  std::uint8_t rbuf[8192];
  while (result.committed < target && wall_ns() < deadline &&
         (stop == nullptr || !stop->load(std::memory_order_relaxed))) {
    const int n = ::poll(pfds.data(), pfds.size(), 50);
    if (n <= 0) continue;
    const std::int64_t now = wall_ns();
    for (std::uint32_t i = 0; i < connections; ++i) {
      if (!(pfds[i].revents & POLLIN)) continue;
      AppendConn& c = conns[i];
      const ssize_t r = ::recv(c.fd, rbuf, sizeof rbuf, 0);
      OMEGA_CHECK(r > 0,
                  "append connection died: ret " << r << " errno " << errno);
      c.in.feed(rbuf, static_cast<std::size_t>(r));
      const std::uint8_t* payload = nullptr;
      std::size_t len = 0;
      while (c.in.next(payload, len)) {
        net::Frame f;
        OMEGA_CHECK(net::decode_payload(payload, len, f) ==
                        net::DecodeResult::kOk,
                    "malformed response");
        if (f.header.type != net::MsgType::kAppend) continue;  // push frame
        if (f.header.status == net::Status::kOk) {
          lat_ns.push_back(now - c.sent_ns);
          ++result.committed;
          ++c.seq;
        } else if (f.header.status == net::Status::kNotLeader) {
          ++result.not_leader;  // same seq: retry is deduplicated
        } else {
          ++result.bad_answers;
        }
        send_append(c, buf);
      }
    }
  }
  const std::int64_t t1 = wall_ns();
  for (auto& c : conns) ::close(c.fd);

  result.qps = static_cast<double>(result.committed) /
               (static_cast<double>(t1 - t0) / 1e9);
  if (!lat_ns.empty()) {
    std::sort(lat_ns.begin(), lat_ns.end());
    result.p50_ns = lat_ns[lat_ns.size() / 2];
    result.p99_ns = lat_ns[lat_ns.size() * 99 / 100];
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace omega::svc;
  const std::string json_path = json_path_from_args(argc, argv);

  std::cout << banner(
      "E15: live replicated state machine (src/smr) over TCP",
      {"workload: closed-loop APPEND commands over loopback TCP,",
       "          64 connections x 1 log group (n=3 replicas, fig2 algo)",
       "measure : sustained appends/sec, commit-ack RTT p50/p99,",
       "          leader-crash -> first post-failover commit"});

  Verdict verdict;
  JsonReport json;
  const bool perf_advisory =
      std::getenv("OMEGA_E15_PERF_ADVISORY") != nullptr;

  SvcConfig cfg;
  // One free-running worker drives the single log group as fast as the
  // consensus rounds allow; a mild niceness keeps the IO thread and the
  // load generator responsive on small boxes. The tick gives failure
  // detection ~0.1s granularity — heartbeats land every few sweeps, so a
  // live leader is never suspected, and a dead one is replaced fast
  // enough to meet the <1s failover claim with margin.
  cfg.workers = 1;
  cfg.tick_us = 100000;
  cfg.wheel_slot_us = 4096;
  cfg.wheel_slots = 256;
  cfg.ops_per_sweep = 64;
  cfg.pace_us = 0;
  cfg.worker_nice = 10;

  MultiGroupLeaderService service(cfg);
  smr::SmrService smr(service);
  smr::SmrSpec spec;
  spec.n = 3;
  spec.capacity = 49152;
  spec.window = 64;
  spec.max_pending = 8192;
  smr.add_log(kGid, spec);

  net::NetConfig net_cfg;
  net_cfg.io_threads = 1;
  net::LeaderServer server(service, net_cfg);
  server.serve_log(smr);
  server.start();
  service.start();

  const ProcessId first_leader =
      service.await_leader(kGid, /*timeout_us=*/120000000);
  verdict.expect(first_leader != kNoProcess,
                 "the log group must elect before the load starts");

  // --- phase A: sustained append throughput. ------------------------------
  constexpr std::uint64_t kTarget = 24000;
  const LoadResult load = run_appenders(server.port(), /*connections=*/64,
                                        kTarget, /*deadline_ms=*/20000,
                                        /*first_client_id=*/1);
  AsciiTable table({"conns", "committed", "appends/sec", "ack p50 us",
                    "ack p99 us", "not-leader", "bad"});
  table.add_row({"64", fmt_count(load.committed),
                 fmt_count(static_cast<std::uint64_t>(load.qps)),
                 fmt_double(static_cast<double>(load.p50_ns) / 1e3, 1),
                 fmt_double(static_cast<double>(load.p99_ns) / 1e3, 1),
                 fmt_count(load.not_leader), fmt_count(load.bad_answers)});
  std::cout << table.render();

  verdict.expect(load.bad_answers == 0,
                 "every append must be acknowledged (ok or not-leader)");
  verdict.expect(load.committed > 0, "appends must commit");
  verdict.expect(!service.failed(),
                 "no task may throw — " + service.failure_message());
  const std::string target_msg =
      "the full target must commit inside the deadline (got " +
      fmt_count(load.committed) + "/" + fmt_count(kTarget) + ")";
  const std::string qps_msg =
      ">= 10k appends/s through the TCP path (got " +
      fmt_count(static_cast<std::uint64_t>(load.qps)) + ")";
  if (perf_advisory) {  // shared runners: correctness gates, speed reports
    if (load.committed < kTarget) {
      std::cout << "  [ADVISORY] " << target_msg << '\n';
    }
    if (load.qps < 10000.0) std::cout << "  [ADVISORY] " << qps_msg << '\n';
  } else {
    verdict.expect(load.committed == kTarget, target_msg);
    verdict.expect(load.qps >= 10000.0, qps_msg);
  }

  // --- phase B: leader crash -> first post-failover commit. ----------------
  // A commit watcher observes the log purely via push; appenders keep
  // hammering (retrying on kNotLeader) in a background thread while the
  // main thread kills the leader and waits for the first commit whose
  // index is beyond the pre-crash commit index.
  net::Client watcher;
  watcher.connect("127.0.0.1", server.port());
  const net::Client::AppendResult snap = watcher.commit_watch(kGid);
  verdict.expect(snap.ok(), "commit watch subscription must succeed");

  std::atomic<bool> stop_load{false};
  LoadResult failover_load;
  std::thread appenders([&] {
    // The commit target bounds phase B's slot consumption: 24000 (phase
    // A) + 12000 + the marker fit the 49152-slot capacity with margin
    // even on hardware fast enough to outrun the failover windows.
    failover_load = run_appenders(server.port(), /*connections=*/16,
                                  /*target=*/12000,
                                  /*deadline_ms=*/30000,
                                  /*first_client_id=*/1001, &stop_load);
  });

  // Let the post-subscription load commit something, then pull the rug.
  bool saw_commit_flow = false;
  const std::int64_t settle_deadline = wall_ns() + 5000000000;  // 5s
  while (wall_ns() < settle_deadline) {
    const auto ev = watcher.next_event(/*timeout_ms=*/1000);
    if (ev.has_value() && ev->kind == net::Client::Event::Kind::kCommit) {
      saw_commit_flow = true;
      break;
    }
  }
  verdict.expect(saw_commit_flow,
                 "commits must flow before the crash is induced");
  // Drain the buffered commit-event backlog so the post-crash wait is not
  // satisfied by a stale push, then note the *server-side* applied count
  // at the crash instant: any event with index >= that count was applied
  // after the crash.
  while (watcher.next_event(/*timeout_ms=*/0).has_value()) {
  }
  const ProcessId doomed = service.leader(kGid).leader;
  verdict.expect(doomed != kNoProcess, "a leader must exist to crash");
  const std::uint64_t pre_crash_index = smr.commit_index(kGid);
  const std::int64_t crash_ns = wall_ns();
  service.crash(kGid, doomed);

  // The honest availability metric: a command submitted *after* the crash,
  // driven through kNotLeader retries (idempotent by its dedup key) until
  // the new leader commits it. append_retry is exactly that client loop.
  std::int64_t first_commit_ns = -1;
  net::Client marker;
  marker.connect("127.0.0.1", server.port());
  marker.enable_auto_reconnect();
  std::uint64_t marker_index = 0;
  try {
    const net::Client::AppendResult mr = marker.append_retry(
        kGid, /*client=*/424242, /*seq=*/1, /*command=*/777,
        /*timeout_ms=*/25000);
    if (mr.ok()) {
      first_commit_ns = wall_ns();
      marker_index = mr.index;
    }
  } catch (const net::NetError&) {
    // first_commit_ns stays -1 and fails the verdict below.
  }
  verdict.expect(marker_index >= pre_crash_index,
                 "the marker must commit after the pre-crash prefix");

  // The push path must observe the recovery too: some post-crash commit
  // arrives as a COMMIT_EVENT (the backlog was drained above).
  bool push_saw_recovery = false;
  const std::int64_t push_deadline = wall_ns() + 10000000000;  // 10s
  while (wall_ns() < push_deadline) {
    const auto ev = watcher.next_event(/*timeout_ms=*/1000);
    if (!ev.has_value()) continue;
    if (ev->kind == net::Client::Event::Kind::kCommit &&
        ev->index >= pre_crash_index) {
      push_saw_recovery = true;
      break;
    }
  }
  verdict.expect(push_saw_recovery,
                 "a post-failover commit must be observed via push");
  // Give in-flight acknowledgements a moment to drain before stopping the
  // load, so the table's commit count reflects the failover run.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  stop_load.store(true, std::memory_order_relaxed);
  appenders.join();

  const double failover_ms =
      first_commit_ns < 0 ? -1.0
                          : static_cast<double>(first_commit_ns - crash_ns) /
                                1e6;
  AsciiTable ftable({"crashed leader", "new leader", "failover ms",
                     "commits during failover run"});
  ftable.add_row({std::to_string(doomed),
                  std::to_string(service.leader(kGid).leader),
                  fmt_double(failover_ms, 1),
                  fmt_count(failover_load.committed)});
  std::cout << "\nfailover (leader crash under append load):\n"
            << ftable.render();

  verdict.expect(first_commit_ns > 0,
                 "the post-crash marker append must commit");
  const std::string failover_msg =
      "first post-failover commit in < 1s (got " +
      fmt_double(failover_ms, 1) + "ms)";
  if (perf_advisory) {
    if (failover_ms < 0 || failover_ms >= 1000.0) {
      std::cout << "  [ADVISORY] " << failover_msg << '\n';
    }
  } else {
    verdict.expect(failover_ms >= 0 && failover_ms < 1000.0, failover_msg);
  }

  // --- phase C: read the log back and reconcile. ---------------------------
  const std::uint64_t total_committed =
      load.committed + failover_load.committed;
  std::uint64_t read_back = 0;
  std::uint64_t commit_index = 0;
  {
    net::Client reader;
    reader.connect("127.0.0.1", server.port());
    std::uint64_t from = 0;
    for (;;) {
      const net::Client::LogView page = reader.read_log(kGid, from, 256);
      verdict.expect(page.status == net::Status::kOk,
                     "read_log must succeed");
      commit_index = page.commit_index;
      read_back += page.entries.size();
      from += page.entries.size();
      if (page.entries.empty()) break;
    }
  }
  verdict.expect(commit_index >= total_committed,
                 "commit index (" + fmt_count(commit_index) +
                     ") must cover every acknowledged append (" +
                     fmt_count(total_committed) + ")");
  verdict.expect(read_back == commit_index,
                 "read_log must page out exactly commit_index entries");

  watcher.close();
  server.stop();
  service.stop();

  json.set_str("bench", "e15_smr");
  json.set("appends_per_sec", load.qps);
  json.set("ack_p50_us", static_cast<double>(load.p50_ns) / 1e3);
  json.set("ack_p99_us", static_cast<double>(load.p99_ns) / 1e3);
  json.set("committed", load.committed);
  json.set("failover_ms", failover_ms);
  json.set("commit_index", commit_index);
  json.write(json_path);

  std::cout << '\n';
  return verdict.finish(
      "the live SMR subsystem sustains >= 10k TCP appends/s at 3 replicas "
      "x 64 connections, and after a forced leader crash the first commit "
      "lands in < 1s");
}
