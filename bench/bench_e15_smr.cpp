// E15 — beyond the paper: the live replicated state machine (src/smr)
// served over the TCP front-end, with per-slot batching (group commit).
//
// E14 measured the *read* path (leader queries); this experiment measures
// the *write* path the paper's introduction motivates: clients append
// commands over TCP, the Ω-elected leader drives consensus slots to
// decision on the svc worker pool, commits are acknowledged to the
// submitting client and pushed to COMMIT_WATCH subscribers. PR 3 capped at
// the slot rate (one command per consensus slot); this revision sweeps the
// batch knob B ∈ {1, 16, 64} — each slot decides a batch descriptor and
// the loadgen pipelines appends so the batched server can be saturated —
// then kills the leader mid-stream and measures how long the log stays
// unavailable.
//
// Claims checked:
//   1. batching — ≥ 80k appends/s sustained through the TCP path at B=64,
//      3 replicas × 64 pipelined connections (≥ 4× the unbatched PR 3
//      rate), every append acknowledged with its unique commit index;
//   2. latency  — batching is latency-neutral at low load: the B=1
//      closed-loop p50 stays within PR 3's 3.3 ms;
//   3. failover — after a forced leader crash, the first post-crash
//      commit lands in < 1 s (clients only retry on kNotLeader; the
//      dedup keys keep the retries idempotent);
//   4. the log read back over READ_LOG equals the acknowledged commits.
#include <poll.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "harness.h"
#include "net/client.h"
#include "net/leader_server.h"
#include "obs/metrics.h"
#include "smr/smr_service.h"
#include "wal/wal.h"

namespace {

using namespace omega;
using namespace omega::bench;

std::int64_t wall_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// One log group per swept batch size (fresh slot space per run).
constexpr svc::GroupId gid_of(std::uint32_t max_batch) {
  return 100 + max_batch;
}

std::uint64_t command_of(std::uint64_t client, std::uint64_t seq) {
  // Unique-ish 16-bit payload; uniqueness across the log is not required
  // (dedup is by (client, seq)), only the [1, 65534] range is.
  return 1 + ((client * 131 + seq) % 65533);
}

struct LoadResult {
  double qps = 0;
  std::int64_t p50_ns = 0;
  std::int64_t p99_ns = 0;
  std::int64_t p999_ns = 0;
  std::uint64_t committed = 0;
  std::uint64_t not_leader = 0;
  std::uint64_t bad_answers = 0;
};

/// One pipelined appender connection: up to `depth` outstanding appends,
/// submitted with net::Client::append_async and harvested with
/// next_append_result. Outstanding requests are tracked in a tiny linear
/// table (depth is single digits; hashing would cost more than the scan).
struct AppendConn {
  struct Outstanding {
    std::uint64_t req_id = 0;
    std::uint64_t seq = 0;
    std::int64_t sent_ns = 0;
  };
  net::Client client;
  std::uint64_t client_id = 0;
  std::uint64_t next_seq = 0;
  std::vector<Outstanding> outstanding;

  Outstanding take(std::uint64_t req_id) {
    for (auto it = outstanding.begin(); it != outstanding.end(); ++it) {
      if (it->req_id == req_id) {
        const Outstanding o = *it;
        *it = outstanding.back();
        outstanding.pop_back();
        return o;
      }
    }
    OMEGA_CHECK(false, "unknown req id " << req_id);
    return {};
  }
};

/// Runs the pipelined closed loop against `gid` until `target` appends
/// committed or `deadline_ms` elapsed. `stop` (optional) aborts early.
/// kNotLeader answers re-submit: with depth == 1 the *same* (client, seq)
/// — the idempotent failover retry — and with deeper pipelines a fresh
/// seq (pipelined seqs must stay monotone; under a stable leader
/// kNotLeader does not occur anyway).
LoadResult run_appenders(std::uint16_t port, svc::GroupId gid,
                         std::uint32_t connections, std::uint32_t depth,
                         std::uint64_t target, int deadline_ms,
                         std::uint64_t first_client_id,
                         const std::atomic<bool>* stop = nullptr) {
  std::vector<AppendConn> conns(connections);
  std::vector<pollfd> pfds(connections);
  for (std::uint32_t i = 0; i < connections; ++i) {
    conns[i].client.connect("127.0.0.1", port);
    conns[i].client_id = first_client_id + i;
    pfds[i] = pollfd{conns[i].client.native_handle(), POLLIN, 0};
  }

  std::vector<std::int64_t> lat_ns;
  lat_ns.reserve(std::min<std::uint64_t>(target, 1u << 20));
  LoadResult result;
  const std::int64_t t0 = wall_ns();
  const std::int64_t deadline = t0 + std::int64_t{deadline_ms} * 1000000;

  auto top_up = [&](AppendConn& c) {
    while (c.outstanding.size() < depth) {
      const std::uint64_t seq = c.next_seq++;
      const std::int64_t now = wall_ns();
      const std::uint64_t req = c.client.append_async(
          gid, c.client_id, seq, command_of(c.client_id, seq));
      c.outstanding.push_back(AppendConn::Outstanding{req, seq, now});
    }
  };
  for (auto& c : conns) top_up(c);

  while (result.committed < target && wall_ns() < deadline &&
         (stop == nullptr || !stop->load(std::memory_order_relaxed))) {
    const int n = ::poll(pfds.data(), pfds.size(), 50);
    if (n <= 0) continue;
    const std::int64_t now = wall_ns();
    for (std::uint32_t i = 0; i < connections; ++i) {
      if (!(pfds[i].revents & POLLIN)) continue;
      AppendConn& c = conns[i];
      for (;;) {
        const auto a = c.client.next_append_result(/*timeout_ms=*/0);
        if (!a.has_value()) break;
        const AppendConn::Outstanding o = c.take(a->req_id);
        if (a->result.status == net::Status::kOk) {
          lat_ns.push_back(now - o.sent_ns);
          ++result.committed;
        } else if (a->result.status == net::Status::kNotLeader) {
          ++result.not_leader;
          if (depth == 1) {
            // Re-issue the same (client, seq): idempotent by the dedup
            // key even if the original actually committed.
            c.next_seq = o.seq;
          }
        } else {
          ++result.bad_answers;
        }
      }
      top_up(c);
    }
  }
  const std::int64_t t1 = wall_ns();

  result.qps = static_cast<double>(result.committed) /
               (static_cast<double>(t1 - t0) / 1e9);
  result.p50_ns = percentile_ns(lat_ns, 0.50);
  result.p99_ns = percentile_ns(lat_ns, 0.99);
  result.p999_ns = percentile_ns(lat_ns, 0.999);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace omega::svc;
  const std::string json_path = json_path_from_args(argc, argv);

  std::cout << banner(
      "E15: live replicated state machine (src/smr) over TCP",
      {"workload: pipelined APPEND commands over loopback TCP,",
       "          64 connections x 1 log group (n=3 replicas, fig2 algo),",
       "          batch sweep B in {1, 16, 64} commands per consensus slot",
       "measure : sustained appends/sec, commit-ack RTT p50/p99/p99.9,",
       "          leader-crash -> first post-failover commit"});

  Verdict verdict;
  JsonReport json;
  const bool perf_advisory =
      std::getenv("OMEGA_E15_PERF_ADVISORY") != nullptr;

  SvcConfig cfg;
  // One worker drives the log groups; a mild niceness keeps the IO
  // thread and the load generator responsive on small boxes, and a short
  // sweep pace stops the idle half of each sweep (heartbeat stepping)
  // from spinning a core the batched ack path needs — free-running
  // sweeps cost ~35% of the B=64 rate on a single-core box, while 50µs
  // adds well under a millisecond to the B=1 commit path. The tick gives
  // failure detection ~0.1s granularity — heartbeats land every few
  // sweeps, so a live leader is never suspected, and a dead one is
  // replaced fast enough to meet the <1s failover claim with margin.
  cfg.workers = 1;
  cfg.tick_us = 100000;
  cfg.wheel_slot_us = 4096;
  cfg.wheel_slots = 256;
  cfg.ops_per_sweep = 64;
  cfg.pace_us = 50;
  cfg.worker_nice = 10;

  MultiGroupLeaderService service(cfg);
  smr::SmrService smr(service);

  net::NetConfig net_cfg;
  net_cfg.io_threads = 1;
  net::LeaderServer server(service, net_cfg);
  server.serve_log(smr);
  server.start();
  service.start();

  // A live v1.5 METRICS_WATCH subscriber runs for the WHOLE measured
  // span: the >= 80k/s gate below is priced with the sampler ticking and
  // the streamed scrape on the wire, not against a quiet server. The
  // sampler's own cost lands in obs.sample_ns, reported with the stage
  // histograms at the end.
  std::atomic<bool> stream_stop{false};
  std::atomic<std::uint64_t> stream_ticks{0};
  std::thread streamer([&] {
    try {
      net::Client sc;
      sc.connect("127.0.0.1", server.port());
      if (!sc.metrics_watch().ok()) return;
      while (!stream_stop.load(std::memory_order_relaxed)) {
        const auto ev = sc.next_event(/*timeout_ms=*/200);
        if (ev.has_value() &&
            ev->kind == net::Client::Event::Kind::kMetricsTick) {
          stream_ticks.fetch_add(1, std::memory_order_relaxed);
        }
      }
    } catch (const net::NetError&) {
      // A dead streamer fails the tick gate below, not the bench here.
    }
  });

  // --- phase A: append throughput across the batch sweep. ------------------
  // One group per configuration, created at its phase and retired right
  // after its read-back (below): on small boxes an *idle* group still
  // costs election stepping every sweep, which would bleed CPU into the
  // other rows' measurements. B=1 runs the PR 3 configuration (depth 1:
  // one outstanding append per connection) so its p50 is comparable
  // across PRs; the batched runs pipeline 8 per connection to keep the
  // batch pipeline fed.
  struct SweepRow {
    std::uint32_t b = 0;
    std::uint64_t target = 0;
    std::uint32_t depth = 0;
    std::uint32_t window = 0;
    LoadResult load;
  };
  // Window scales *down* as the batch scales up: group commit only pays
  // off when freed slots find a backlog, and a wide-open window seals
  // batches of one command (the adaptive flush never waits). B=1 keeps
  // PR 3's window-64 pipeline; the batched rows run a few slots deep and
  // let the batch, not the window, carry the parallelism.
  std::vector<SweepRow> rows{{1, 24000, 1, 64, {}},
                             {16, 48000, 8, 8, {}},
                             {64, 96000, 16, 4, {}}};

  /// Pages the whole applied log of `gid` back over READ_LOG and checks
  /// it covers every acknowledged append.
  const auto reconcile = [&](svc::GroupId gid, std::uint64_t acked,
                             const std::string& label) -> std::uint64_t {
    std::uint64_t read_back = 0;
    std::uint64_t commit_index = 0;
    net::Client reader;
    reader.connect("127.0.0.1", server.port());
    std::uint64_t from = 0;
    for (;;) {
      const net::Client::LogView page = reader.read_log(gid, from, 256);
      verdict.expect(page.status == net::Status::kOk,
                     label + ": read_log must succeed");
      commit_index = page.commit_index;
      read_back += page.entries.size();
      from += page.entries.size();
      if (page.entries.empty()) break;
    }
    verdict.expect(commit_index >= acked,
                   label + ": commit index (" + fmt_count(commit_index) +
                       ") must cover every acknowledged append (" +
                       fmt_count(acked) + ")");
    verdict.expect(read_back == commit_index,
                   label + ": read_log must page out exactly commit_index "
                           "entries");
    return commit_index;
  };

  AsciiTable table({"B", "depth", "committed", "appends/sec", "ack p50 us",
                    "ack p99 us", "ack p99.9 us", "not-leader", "bad"});
  for (auto& row : rows) {
    smr::SmrSpec spec;
    spec.n = 3;
    spec.capacity = 49152;
    spec.window = row.window;
    spec.max_pending = 8192;
    spec.max_batch = row.b;
    spec.session_ttl_us = 60000000;  // 60s: idle loadgen sessions expire
    smr.add_log(gid_of(row.b), spec);
    const ProcessId leader =
        service.await_leader(gid_of(row.b), /*timeout_us=*/120000000);
    verdict.expect(leader != kNoProcess,
                   "the log group must elect before the load starts");

    row.load = run_appenders(server.port(), gid_of(row.b),
                             /*connections=*/64, row.depth, row.target,
                             /*deadline_ms=*/30000,
                             /*first_client_id=*/1 + 1000 * row.b);
    table.add_row({std::to_string(row.b), std::to_string(row.depth),
                   fmt_count(row.load.committed),
                   fmt_count(static_cast<std::uint64_t>(row.load.qps)),
                   fmt_double(static_cast<double>(row.load.p50_ns) / 1e3, 1),
                   fmt_double(static_cast<double>(row.load.p99_ns) / 1e3, 1),
                   fmt_double(static_cast<double>(row.load.p999_ns) / 1e3, 1),
                   fmt_count(row.load.not_leader),
                   fmt_count(row.load.bad_answers)});
    verdict.expect(row.load.bad_answers == 0,
                   "every append must be acknowledged (ok or not-leader)");
    verdict.expect(row.load.committed > 0, "appends must commit");
    const std::string target_msg =
        "B=" + std::to_string(row.b) +
        ": the full target must commit inside the deadline (got " +
        fmt_count(row.load.committed) + "/" + fmt_count(row.target) + ")";
    // >=: the pipelined harvest can overshoot by a few in-flight acks.
    if (perf_advisory) {  // shared runners: correctness gates, speed reports
      if (row.load.committed < row.target) {
        std::cout << "  [ADVISORY] " << target_msg << '\n';
      }
    } else {
      verdict.expect(row.load.committed >= row.target, target_msg);
    }
    const std::string prefix = "b" + std::to_string(row.b) + "_";
    json.set(prefix + "appends_per_sec", row.load.qps);
    json.set(prefix + "ack_p50_us",
             static_cast<double>(row.load.p50_ns) / 1e3);
    json.set(prefix + "ack_p99_us",
             static_cast<double>(row.load.p99_ns) / 1e3);
    json.set(prefix + "ack_p999_us",
             static_cast<double>(row.load.p999_ns) / 1e3);
    json.set(prefix + "committed", row.load.committed);
    // Reconcile now, then retire the group — except B=64, which phase B
    // (failover) and the final reconcile still need.
    if (row.b != 64) {
      reconcile(gid_of(row.b), row.load.committed,
                "B=" + std::to_string(row.b));
      smr.remove_log(gid_of(row.b));
    }
  }
  std::cout << table.render();
  verdict.expect(!service.failed(),
                 "no task may throw — " + service.failure_message());

  const LoadResult& base = rows[0].load;   // B=1
  const LoadResult& best = rows[2].load;   // B=64
  const std::string qps_msg =
      ">= 80k appends/s through the TCP path at B=64 (got " +
      fmt_count(static_cast<std::uint64_t>(best.qps)) + ")";
  const std::string p50_msg =
      "B=1 ack p50 within PR 3's 3.3ms (got " +
      fmt_double(static_cast<double>(base.p50_ns) / 1e6, 2) + "ms)";
  if (perf_advisory) {
    if (best.qps < 80000.0) std::cout << "  [ADVISORY] " << qps_msg << '\n';
    if (base.p50_ns > 3300000) {
      std::cout << "  [ADVISORY] " << p50_msg << '\n';
    }
  } else {
    verdict.expect(best.qps >= 80000.0, qps_msg);
    verdict.expect(base.p50_ns <= 3300000, p50_msg);
  }

  // --- phase A2: the durable A/B — the SAME B=64 workload, once more with
  // a WAL under the log and fsync-gated acks (quorum_ack in a single
  // process degenerates to "acked means fsync'd"). The delta against the
  // memory row above IS the durability tax, and the >= 80k/s gate must
  // hold on THIS row too: group-commit fsync batching is the whole design
  // bet. wal.fsync_ns lands in the stage table at the end.
  {
    char wal_tmpl[] = "/tmp/omega_e15_wal_XXXXXX";
    OMEGA_CHECK(::mkdtemp(wal_tmpl) != nullptr, "mkdtemp failed");
    wal::WalOptions wopts;
    wopts.dir = wal_tmpl;
    wal::Wal wal(wopts);
    wal.start();

    constexpr svc::GroupId kDurableGid = 200;
    smr::SmrSpec dspec;
    dspec.n = 3;
    dspec.capacity = 49152;
    dspec.window = 4;
    dspec.max_pending = 8192;
    dspec.max_batch = 64;
    dspec.session_ttl_us = 60000000;
    dspec.wal = &wal;
    dspec.quorum_ack = true;
    smr.add_log(kDurableGid, dspec);
    verdict.expect(
        service.await_leader(kDurableGid, 120000000) != kNoProcess,
        "the durable log group must elect");

    const LoadResult durable =
        run_appenders(server.port(), kDurableGid, /*connections=*/64,
                      /*depth=*/16, /*target=*/96000,
                      /*deadline_ms=*/30000, /*first_client_id=*/70001);
    const wal::WalStats wstats = wal.stats();

    AsciiTable wtable({"B=64 variant", "appends/sec", "ack p50 us",
                       "ack p99 us", "wal records", "fsync barriers"});
    wtable.add_row(
        {"memory", fmt_count(static_cast<std::uint64_t>(best.qps)),
         fmt_double(static_cast<double>(best.p50_ns) / 1e3, 1),
         fmt_double(static_cast<double>(best.p99_ns) / 1e3, 1), "-", "-"});
    wtable.add_row(
        {"durable (WAL)", fmt_count(static_cast<std::uint64_t>(durable.qps)),
         fmt_double(static_cast<double>(durable.p50_ns) / 1e3, 1),
         fmt_double(static_cast<double>(durable.p99_ns) / 1e3, 1),
         fmt_count(wstats.appended_records), fmt_count(wstats.flushes)});
    std::cout << "\ndurable vs memory (B=64, acks gated on fdatasync):\n"
              << wtable.render();

    verdict.expect(durable.bad_answers == 0,
                   "durable: every append must be acknowledged");
    verdict.expect(wstats.io_errors == 0, "the WAL must not degrade");
    verdict.expect(wstats.appended_records > 0,
                   "commits must journal WAL records");
    verdict.expect(wstats.flushes > 0 &&
                       wstats.flushes < wstats.appended_records,
                   "fsync batching must amortize barriers across records "
                   "(got " + fmt_count(wstats.flushes) + " barriers for " +
                       fmt_count(wstats.appended_records) + " records)");
    const std::string wal_qps_msg =
        ">= 80k appends/s at B=64 WITH the WAL enabled (got " +
        fmt_count(static_cast<std::uint64_t>(durable.qps)) + ")";
    if (perf_advisory) {
      if (durable.qps < 80000.0) {
        std::cout << "  [ADVISORY] " << wal_qps_msg << '\n';
      }
    } else {
      verdict.expect(durable.qps >= 80000.0, wal_qps_msg);
    }

    reconcile(kDurableGid, durable.committed, "B=64 durable");
    smr.remove_log(kDurableGid);
    wal.stop();
    json.set("wal_appends_per_sec", durable.qps);
    json.set("wal_ack_p50_us", static_cast<double>(durable.p50_ns) / 1e3);
    json.set("wal_ack_p99_us", static_cast<double>(durable.p99_ns) / 1e3);
    json.set("wal_records", wstats.appended_records);
    json.set("wal_fsync_barriers", wstats.flushes);
    json.set("wal_segments", wstats.segments);
    if (best.qps > 0) {
      json.set("wal_overhead_pct",
               100.0 * (1.0 - durable.qps / best.qps));
    }
  }

  // --- phase B: leader crash -> first post-failover commit. ----------------
  // Run on the B=64 group. A commit watcher observes the log purely via
  // push; appenders keep hammering (retrying on kNotLeader) in a
  // background thread while the main thread kills the leader and waits
  // for the first commit whose index is beyond the pre-crash commit index.
  const svc::GroupId kFailGid = gid_of(64);
  net::Client watcher;
  watcher.connect("127.0.0.1", server.port());
  const net::Client::AppendResult snap = watcher.commit_watch(kFailGid);
  verdict.expect(snap.ok(), "commit watch subscription must succeed");

  std::atomic<bool> stop_load{false};
  LoadResult failover_load;
  std::thread appenders([&] {
    // Depth 1: the failover loop re-submits the same (client, seq) on
    // kNotLeader, which is only idempotent with one outstanding append.
    failover_load = run_appenders(server.port(), kFailGid,
                                  /*connections=*/16, /*depth=*/1,
                                  /*target=*/12000,
                                  /*deadline_ms=*/30000,
                                  /*first_client_id=*/90001, &stop_load);
  });

  // Let the post-subscription load commit something, then pull the rug.
  bool saw_commit_flow = false;
  const std::int64_t settle_deadline = wall_ns() + 5000000000;  // 5s
  while (wall_ns() < settle_deadline) {
    const auto ev = watcher.next_event(/*timeout_ms=*/1000);
    if (ev.has_value() && ev->kind == net::Client::Event::Kind::kCommit) {
      saw_commit_flow = true;
      break;
    }
  }
  verdict.expect(saw_commit_flow,
                 "commits must flow before the crash is induced");
  // Drain the buffered commit-event backlog so the post-crash wait is not
  // satisfied by a stale push, then note the *server-side* applied count
  // at the crash instant: any event with index >= that count was applied
  // after the crash.
  while (watcher.next_event(/*timeout_ms=*/0).has_value()) {
  }
  const ProcessId doomed = service.leader(kFailGid).leader;
  verdict.expect(doomed != kNoProcess, "a leader must exist to crash");
  const std::uint64_t pre_crash_index = smr.commit_index(kFailGid);
  const std::int64_t crash_ns = wall_ns();
  service.crash(kFailGid, doomed);

  // The honest availability metric: a command submitted *after* the crash,
  // driven through kNotLeader retries (idempotent by its dedup key) until
  // the new leader commits it. append_retry is exactly that client loop.
  std::int64_t first_commit_ns = -1;
  net::Client marker;
  marker.connect("127.0.0.1", server.port());
  marker.enable_auto_reconnect();
  std::uint64_t marker_index = 0;
  try {
    const net::Client::AppendResult mr = marker.append_retry(
        kFailGid, /*client=*/424242, /*seq=*/1, /*command=*/777,
        /*timeout_ms=*/25000);
    if (mr.ok()) {
      first_commit_ns = wall_ns();
      marker_index = mr.index;
    }
  } catch (const net::NetError&) {
    // first_commit_ns stays -1 and fails the verdict below.
  }
  verdict.expect(marker_index >= pre_crash_index,
                 "the marker must commit after the pre-crash prefix");

  // The push path must observe the recovery too: some post-crash commit
  // arrives as a COMMIT_EVENT (the backlog was drained above).
  bool push_saw_recovery = false;
  const std::int64_t push_deadline = wall_ns() + 10000000000;  // 10s
  while (wall_ns() < push_deadline) {
    const auto ev = watcher.next_event(/*timeout_ms=*/1000);
    if (!ev.has_value()) continue;
    if (ev->kind == net::Client::Event::Kind::kCommit &&
        ev->index >= pre_crash_index) {
      push_saw_recovery = true;
      break;
    }
  }
  verdict.expect(push_saw_recovery,
                 "a post-failover commit must be observed via push");
  // Give in-flight acknowledgements a moment to drain before stopping the
  // load, so the table's commit count reflects the failover run.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  stop_load.store(true, std::memory_order_relaxed);
  appenders.join();

  const double failover_ms =
      first_commit_ns < 0 ? -1.0
                          : static_cast<double>(first_commit_ns - crash_ns) /
                                1e6;
  AsciiTable ftable({"crashed leader", "new leader", "failover ms",
                     "commits during failover run"});
  ftable.add_row({std::to_string(doomed),
                  std::to_string(service.leader(kFailGid).leader),
                  fmt_double(failover_ms, 1),
                  fmt_count(failover_load.committed)});
  std::cout << "\nfailover (leader crash under append load):\n"
            << ftable.render();

  verdict.expect(first_commit_ns > 0,
                 "the post-crash marker append must commit");
  const std::string failover_msg =
      "first post-failover commit in < 1s (got " +
      fmt_double(failover_ms, 1) + "ms)";
  if (perf_advisory) {
    if (failover_ms < 0 || failover_ms >= 1000.0) {
      std::cout << "  [ADVISORY] " << failover_msg << '\n';
    }
  } else {
    verdict.expect(failover_ms >= 0 && failover_ms < 1000.0, failover_msg);
  }

  // --- phase C: read the failover log back and reconcile (the other two
  // swept groups were reconciled and retired inside the sweep).
  const std::uint64_t commit_index =
      reconcile(kFailGid,
                rows[2].load.committed + failover_load.committed + 1,
                "B=64+failover");  // + 1: the marker append
  json.set("commit_index", commit_index);

  stream_stop.store(true, std::memory_order_relaxed);
  streamer.join();
  verdict.expect(stream_ticks.load(std::memory_order_relaxed) > 0,
                 "the METRICS_WATCH stream must deliver sampler ticks "
                 "throughout the run");
  std::cout << "\nstreamed sampler ticks (v1.5 METRICS_WATCH, whole run): "
            << fmt_count(stream_ticks.load(std::memory_order_relaxed))
            << '\n';
  json.set("stream_ticks", stream_ticks.load(std::memory_order_relaxed));

  watcher.close();
  server.stop();
  service.stop();

  // --- phase D: adaptive sweep pacing (SvcConfig::max_pace_us). ------------
  // The sweep spin is the known single-core tax: idle neighbours of a
  // loaded group burn the core on heartbeat stepping the load needs.
  // Before/after: the SAME B=64 workload next to two idle election
  // groups, once with the fixed 50µs pace and once with the adaptive
  // back-off (quiet sweeps double 50µs → 4ms, any harvest snaps back).
  {
    AsciiTable ptable({"pacing", "appends/sec", "idle pace (us)"});
    double rates[2] = {0, 0};
    for (int adaptive = 0; adaptive < 2; ++adaptive) {
      SvcConfig pcfg = cfg;
      pcfg.max_pace_us = adaptive ? 4000 : 0;
      MultiGroupLeaderService psvc(pcfg);
      smr::SmrService psmr(psvc);
      net::LeaderServer pserver(psvc, net_cfg);
      pserver.serve_log(psmr);
      pserver.start();
      psvc.start();
      // Two idle election-only neighbours + the loaded log group.
      psvc.add_group(7001, {});
      psvc.add_group(7002, {});
      smr::SmrSpec pspec;
      pspec.n = 3;
      pspec.capacity = 49152;
      pspec.window = 4;
      pspec.max_pending = 8192;
      pspec.max_batch = 64;
      psmr.add_log(7000, pspec);
      verdict.expect(
          psvc.await_leader(7000, 120000000) != kNoProcess,
          "the pacing phase's log group must elect");
      const LoadResult pload = run_appenders(
          pserver.port(), 7000, /*connections=*/64, /*depth=*/16,
          /*target=*/48000, /*deadline_ms=*/20000,
          /*first_client_id=*/1 + 5000 * (adaptive + 1));
      rates[adaptive] = pload.qps;
      // Let the pool go quiet, then sample how deep the back-off went.
      std::this_thread::sleep_for(std::chrono::milliseconds(300));
      const std::int64_t idle_pace = psvc.stats().max_pace_us;
      ptable.add_row({adaptive ? "adaptive 50..4000us" : "fixed 50us",
                      fmt_count(static_cast<std::uint64_t>(pload.qps)),
                      std::to_string(idle_pace)});
      if (adaptive == 1) {
        verdict.expect(idle_pace > pcfg.pace_us,
                       "quiet sweeps must back off past the base pace");
      }
      pserver.stop();
      psvc.stop();
    }
    std::cout << "\nadaptive sweep pacing (B=64 next to two idle groups):\n"
              << ptable.render();
    json.set("fixed_pace_appends_per_sec", rates[0]);
    json.set("adaptive_pace_appends_per_sec", rates[1]);
    // Advisory by nature: the win depends on how oversubscribed the box
    // is; the hard claim is only "adaptive must not lose".
    if (rates[1] < rates[0] * 0.9) {
      std::cout << "  [ADVISORY] adaptive pacing lost >10% versus the "
                   "fixed pace on this box\n";
    }
  }

  // --- per-stage latency breakdown off the obs histograms. -----------------
  // The same registry the v1.3 METRICS frame serves, scraped in-process:
  // where inside the pipeline the ack RTT above was spent. The whole run
  // (sweep + failover + pacing) contributes; the instrumentation itself
  // is part of the >= 80k/s gate — these histograms were live throughout.
  {
    const auto obs_samples = obs::scrape();
    AsciiTable stage_table({"stage", "samples", "p50 us", "p99 us"});
    const auto report_stage = [&](const char* metric, const char* key,
                                  const char* label) {
      for (const auto& s : obs_samples) {
        if (s.name != metric) continue;
        stage_table.add_row(
            {label, fmt_count(static_cast<std::uint64_t>(s.value)),
             fmt_double(static_cast<double>(s.quantile(0.5)) / 1e3, 1),
             fmt_double(static_cast<double>(s.quantile(0.99)) / 1e3, 1)});
        json.set(std::string(key) + "_p50_us",
                 static_cast<double>(s.quantile(0.5)) / 1e3);
        json.set(std::string(key) + "_p99_us",
                 static_cast<double>(s.quantile(0.99)) / 1e3);
        json.set(std::string(key) + "_samples",
                 static_cast<std::uint64_t>(s.value));
        return;
      }
    };
    report_stage("smr.seal_to_decide_ns", "seal_to_decide", "seal->decide");
    report_stage("smr.decide_to_apply_ns", "decide_to_apply",
                 "decide->apply");
    report_stage("net.ack_flush_ns", "ack_flush", "ack flush");
    report_stage("wal.fsync_ns", "wal_fsync", "wal fsync");
    report_stage("svc.sweep_ns", "sweep", "worker sweep");
    report_stage("obs.sample_ns", "sampler_tick", "sampler tick");
    std::cout << "\npipeline stage latencies (obs histograms, full run):\n"
              << stage_table.render();
    if (!json_path.empty()) {
      const auto slash = json_path.rfind('/');
      const std::string prom_path =
          (slash == std::string::npos ? std::string()
                                      : json_path.substr(0, slash + 1)) +
          "METRICS_e15.prom";
      std::ofstream prom(prom_path);
      if (prom) {
        prom << obs::render_prometheus(obs_samples);
        std::cout << "metrics snapshot: " << prom_path << '\n';
      }
    }
  }

  json.set_str("bench", "e15_smr");
  // Headline keys keep their PR 3 names so the perf trajectory stays
  // diffable: appends_per_sec is the best swept configuration (B=64),
  // ack percentiles are the closed-loop B=1 run.
  json.set("appends_per_sec", best.qps);
  json.set("ack_p50_us", static_cast<double>(base.p50_ns) / 1e3);
  json.set("ack_p99_us", static_cast<double>(base.p99_ns) / 1e3);
  json.set("committed", base.committed + rows[1].load.committed +
                            rows[2].load.committed);
  json.set("failover_ms", failover_ms);
  json.write(json_path);

  std::cout << '\n';
  return verdict.finish(
      "slot batching multiplies the live SMR write path: >= 80k TCP "
      "appends/s at B=64 (3 replicas x 64 pipelined connections), B=1 p50 "
      "within PR 3's 3.3ms, and after a forced leader crash the first "
      "commit lands in < 1s");
}
