// E1 — paper Figure 1 + assumption AWB2 (§2.3).
//
// Claim reproduced: convergence requires only *asymptotically* well-behaved
// timers. Timers that lie arbitrarily during a finite prefix, or whose
// durations are non-monotone (as long as they dominate a diverging f_R),
// still yield a unique eventual leader. A timer whose durations are capped
// (violating condition f2) breaks the boundedness guarantee: suspicions keep
// growing forever.
#include "harness.h"

int main() {
  using namespace omega;
  using namespace omega::bench;

  std::cout << banner(
      "E1: asymptotically well-behaved timers (paper Fig. 1, AWB2)",
      {"workload: fig2 algorithm, n=8, AWB world, 3 seeds per timer model",
       "measure : convergence + suspicion-freeze in the 2nd half of the run"});

  const SimTime horizon = 400000;
  Verdict verdict;
  AsciiTable table({"timer model", "AWB2?", "seed", "converged", "stable at",
                    "susp @1/2", "susp @end", "frozen 2nd half?"});

  for (TimerKind timer :
       {TimerKind::kPerfect, TimerKind::kChaoticPrefix,
        TimerKind::kNonMonotone, TimerKind::kSubDominating}) {
    const bool awb2 = timer != TimerKind::kSubDominating;
    for (std::uint64_t seed : {1ull, 11ull, 42ull}) {
      ScenarioConfig cfg;
      cfg.algo = AlgoKind::kWriteEfficient;
      cfg.n = 8;
      cfg.world = World::kAwb;
      cfg.timer = timer;
      cfg.seed = seed;
      // The capped timer bites hardest against the slow-handshake variant;
      // for fig2 its effect shows in the suspicion totals (see E1 notes in
      // EXPERIMENTS.md) — we run the bounded algorithm for the negative
      // control so the violation is visible.
      if (!awb2) cfg.algo = AlgoKind::kBounded;

      auto d = make_scenario(cfg);
      d->run_until(horizon / 2);
      const std::uint64_t susp_mid = group_sum(*d, "SUSPICIONS");
      d->run_until(horizon);
      const std::uint64_t susp_end = group_sum(*d, "SUSPICIONS");
      const auto rep = d->metrics().convergence(d->plan());
      const bool frozen = susp_end == susp_mid;

      table.add_row({timer_name(timer), yes_no(awb2), std::to_string(seed),
                     yes_no(rep.converged),
                     rep.converged ? "t=" + std::to_string(rep.time) : "-",
                     fmt_count(susp_mid), fmt_count(susp_end),
                     yes_no(frozen)});

      if (awb2) {
        verdict.expect(rep.converged,
                       "AWB2 timer must converge: " + cfg.label());
        verdict.expect(frozen,
                       "AWB2 timer must freeze suspicions: " + cfg.label());
      } else {
        verdict.expect(susp_end > susp_mid,
                       "capped timer must keep leaking suspicions: " +
                           cfg.label());
      }
    }
  }
  std::cout << table.render();
  return verdict.finish(
      "arbitrary finite misbehavior and non-monotonicity are tolerated "
      "(AWB2 suffices); a capped timer (f2 violated) never freezes");
}
