// E5 — paper Figure 5 + Theorems 6 and 7.
//
// Claims reproduced for Algorithm 2: ALL shared variables are bounded
// (PROGRESS/LAST/STOP are booleans, SUSPICIONS freezes), yet the memory
// stays permanently active: eventually the writes are exactly the
// PROGRESS[ℓ][·] flags (by the leader) and the LAST[ℓ][·] acknowledgments
// (one per other process) — so every correct process writes forever, the
// price Corollary 1 proves unavoidable with bounded memory.
#include "harness.h"

int main() {
  using namespace omega;
  using namespace omega::bench;

  std::cout << banner(
      "E5: the bounded algorithm (paper Fig. 5, Thm. 6 & 7)",
      {"workload: fig5, n=8, AWB world, 800k ticks",
       "measure : register domains, who writes what after stabilization"});

  ScenarioConfig cfg;
  cfg.algo = AlgoKind::kBounded;
  cfg.n = 8;
  cfg.world = World::kAwb;
  cfg.seed = 4;
  // Algorithm 2 re-arms its alive signal once per heartbeat round (~2n
  // steps); the timeout unit must clear that for a crisp post-warm-up
  // freeze (sim/scenario.h discusses the marginal regime; E11(c) sweeps it).
  cfg.timer_unit = 64;
  const SimTime settle = 500000;
  const SimDuration window = 300000;
  auto result = run_with_window(cfg, settle + window, window);
  auto& d = *result.driver;
  Verdict verdict;
  verdict.expect(result.report.converged, "run must converge");
  verdict.expect(result.report.time <= settle,
                 "leader must be settled before the census window");
  const ProcessId leader = result.report.leader;
  const Layout& layout = d.memory().layout();

  // (a) Domains: every register's high-water mark.
  AsciiTable domains({"family", "cells", "max value ever", "bounded?"});
  GroupId gid = 0;
  bool all_bounded = true;
  for (const char* fam : {"PROGRESS", "LAST", "STOP", "SUSPICIONS"}) {
    (void)layout.find_group(fam, gid);
    const auto& grp = layout.group(gid);
    std::uint64_t hw = 0;
    for (std::uint32_t i = 0; i < grp.rows * grp.cols; ++i) {
      hw = std::max(hw, result.window_after.high_water[grp.first + i]);
    }
    const bool boolean_family = std::string(fam) != "SUSPICIONS";
    const bool ok = boolean_family ? hw <= 1 : true;
    all_bounded = all_bounded && ok;
    domains.add_row({fam, std::to_string(grp.rows * grp.cols),
                     std::to_string(hw),
                     boolean_family ? yes_no(ok) : "frozen (see below)"});
  }
  std::cout << domains.render();
  verdict.expect(all_bounded, "boolean families must stay in {0,1}");

  // (b) SUSPICIONS frozen: contents identical across the census window.
  GroupId susp = 0;
  (void)layout.find_group("SUSPICIONS", susp);
  const auto& sgrp = layout.group(susp);
  bool susp_frozen = true;
  for (std::uint32_t i = 0; i < sgrp.rows * sgrp.cols; ++i) {
    susp_frozen = susp_frozen && result.cells_before[sgrp.first + i] ==
                                     result.cells_after[sgrp.first + i];
  }
  verdict.expect(susp_frozen, "SUSPICIONS must freeze (bounded, Thm. 6)");

  // (c) Who writes what in the stable window (Thm. 7).
  const auto census = diff_writers(result.window_before, result.window_after);
  AsciiTable writers({"process", "writes in window", "expected role"});
  std::uint32_t writers_count = 0;
  for (ProcessId i = 0; i < d.n(); ++i) {
    if (census.writes_by[i] > 0) ++writers_count;
    writers.add_row({"p" + std::to_string(i), fmt_count(census.writes_by[i]),
                     i == leader ? "leader: PROGRESS[l][.]"
                                 : "acknowledger: LAST[l][i]"});
  }
  std::cout << writers.render();
  verdict.expect(writers_count == d.n(),
                 "ALL processes must write forever (Cor. 1), saw " +
                     std::to_string(writers_count));

  // (d) Written cells are exactly the leader's handshake rows.
  GroupId prog = 0, last = 0;
  (void)layout.find_group("PROGRESS", prog);
  (void)layout.find_group("LAST", last);
  bool only_handshake = true;
  for (std::uint32_t i = 0; i < layout.size(); ++i) {
    const auto delta =
        result.window_after.writes_to[i] - result.window_before.writes_to[i];
    if (delta == 0) continue;
    const GroupId g = layout.group_of(Cell{i});
    const auto& grp = layout.group(g);
    const bool handshake = (g == prog || g == last) &&
                           (Cell{i}.index - grp.first) / grp.cols == leader;
    only_handshake = only_handshake && handshake;
  }
  verdict.expect(only_handshake,
                 "only PROGRESS[l][.] and LAST[l][.] may be written (Thm. 7)");
  std::cout << "\nwritten cells in the stable window are exactly the "
            << "leader-row handshake: " << yes_no(only_handshake) << '\n';
  return verdict.finish(
      "bounded domains + perpetual all-process writing: the inherent price "
      "of bounded memory (Fig. 5, Thm. 6/7, Cor. 1)");
}
