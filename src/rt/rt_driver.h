// Real-thread runtime: one std::thread per process, std::atomic registers,
// steady-clock timers. The same coroutine task bodies that run under the
// discrete-event simulator run here against real hardware — the drivers are
// interchangeable because algorithms only ever touch memory through their
// suspended operations.
//
// The per-process stepping mechanics live in ProcExecutor (proc_executor.h,
// the Executor seam); this driver is the thread-per-process implementation
// of that seam — it gives each executor a dedicated thread. The pooled
// implementation, which multiplexes thousands of groups onto a fixed worker
// pool, is svc::WorkerPool.
//
// AWB in this runtime: the OS scheduler provides no hard bounds, but on a
// live machine every thread keeps getting scheduled and the leader's
// inter-write gaps are in practice bounded — AWB1 holds statistically, and
// steady-clock timers are monotone (stronger than AWB2 requires). The
// adaptive timeouts (max-suspicions + 1) absorb scheduling jitter exactly as
// they absorb asynchrony in the simulator.
#pragma once

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/factory.h"
#include "core/proc_task.h"
#include "rt/proc_executor.h"

namespace omega {

struct RtConfig {
  AlgoKind algo = AlgoKind::kWriteEfficient;
  std::uint32_t n = 4;
  /// Microseconds per timeout unit (the timer's T(x) = x * tick_us).
  std::int64_t tick_us = 500;
  /// Optional pacing between operations (microseconds); 0 = free-running.
  /// On machines with fewer cores than processes a small pace keeps every
  /// thread scheduled regularly.
  std::int64_t pace_us = 50;
};

class RtDriver {
 public:
  explicit RtDriver(RtConfig config);
  ~RtDriver();

  RtDriver(const RtDriver&) = delete;
  RtDriver& operator=(const RtDriver&) = delete;

  /// Registers an application coroutine (e.g. a consensus proposer) to run
  /// on `pid`'s thread, interleaved with the Ω tasks. Must be called before
  /// start(); the task's LeaderQuery ops are answered by that process's
  /// leader().
  void add_app_task(ProcessId pid, ProcTask task);
  /// True iff every registered application task has completed.
  bool apps_done() const;

  /// Launches all process threads. May be called once.
  void start();
  /// Stops every thread and joins. Idempotent.
  void stop();

  /// Simulated crash: the thread stops executing steps (registers keep their
  /// last values), exactly like a crash in the model.
  void crash(ProcessId pid);

  /// Latest leader() output published by `pid`'s own thread (Ω's interface
  /// as an application on that process would see it).
  ProcessId leader(ProcessId pid) const;

  RtProcessStatus status(ProcessId pid) const;
  std::uint32_t n() const noexcept { return config_.n; }
  MemoryBackend& memory() noexcept { return *inst_.memory; }

  /// True iff any process thread died on an exception (model violation);
  /// the first message is kept for diagnosis.
  bool failed() const noexcept {
    return failed_.load(std::memory_order_acquire);
  }
  std::string failure_message() const;

  /// Microseconds since start().
  std::int64_t now_us() const;

  /// Blocks until every live process has reported the same correct leader
  /// continuously for `hold_us`, or until `timeout_us` elapses. Returns the
  /// agreed leader, or kNoProcess on timeout.
  ProcessId await_stable_leader(std::int64_t hold_us, std::int64_t timeout_us);

 private:
  void run_process(ProcessId pid);

  RtConfig config_;
  OmegaInstance inst_;
  std::vector<std::unique_ptr<ProcExecutor>> execs_;
  std::vector<std::thread> threads_;
  std::atomic<bool> stop_flag_{false};
  std::atomic<bool> failed_{false};
  mutable std::mutex failure_mutex_;
  std::string failure_message_;
  bool started_ = false;
  std::chrono::steady_clock::time_point start_time_{};
};

}  // namespace omega
