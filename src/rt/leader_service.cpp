#include "rt/leader_service.h"

#include "svc/multigroup_service.h"

namespace omega {

std::unique_ptr<svc::MultiGroupLeaderService> LeaderService::make_fleet(
    const svc::SvcConfig& config) {
  return std::make_unique<svc::MultiGroupLeaderService>(config);
}

std::unique_ptr<svc::MultiGroupLeaderService> LeaderService::make_fleet() {
  return make_fleet(svc::SvcConfig{});
}

LeaderService::LeaderService(RtConfig config, std::int64_t poll_us)
    : driver_(config), poll_us_(poll_us) {
  OMEGA_CHECK(poll_us >= 1, "bad poll period");
}

LeaderService::~LeaderService() { stop(); }

void LeaderService::start() {
  OMEGA_CHECK(!started_, "start() called twice");
  started_ = true;
  driver_.start();
  watcher_ = std::thread([this] { watch(); });
}

void LeaderService::stop() {
  if (!started_) return;
  stop_flag_.store(true, std::memory_order_release);
  if (watcher_.joinable()) watcher_.join();
  driver_.stop();
}

bool LeaderService::is_leader(ProcessId pid) const {
  return driver_.leader(pid) == pid;
}

std::uint64_t LeaderService::subscribe(LeadershipCallback cb) {
  OMEGA_CHECK(cb != nullptr, "null callback");
  std::lock_guard<std::mutex> lock(subs_mutex_);
  const std::uint64_t token = next_token_++;
  subs_.emplace_back(token, std::move(cb));
  return token;
}

void LeaderService::unsubscribe(std::uint64_t token) {
  std::lock_guard<std::mutex> lock(subs_mutex_);
  for (auto it = subs_.begin(); it != subs_.end(); ++it) {
    if (it->first == token) {
      subs_.erase(it);
      return;
    }
  }
}

ProcessId LeaderService::compute_agreed() const {
  ProcessId common = kNoProcess;
  for (std::uint32_t i = 0; i < driver_.n(); ++i) {
    const auto s = driver_.status(i);
    if (s.crashed) continue;
    if (s.last_leader == kNoProcess) return kNoProcess;  // not sampled yet
    if (common == kNoProcess) {
      common = s.last_leader;
    } else if (common != s.last_leader) {
      return kNoProcess;  // disagreement
    }
  }
  if (common == kNoProcess) return kNoProcess;
  if (driver_.status(common).crashed) return kNoProcess;  // stale view
  return common;
}

void LeaderService::watch() {
  while (!stop_flag_.load(std::memory_order_acquire)) {
    const ProcessId now_agreed = compute_agreed();
    const ProcessId prev = agreed_.load(std::memory_order_relaxed);
    if (now_agreed != prev) {
      agreed_.store(now_agreed, std::memory_order_release);
      transitions_.fetch_add(1, std::memory_order_relaxed);
      const std::int64_t at = driver_.now_us();
      std::vector<LeadershipCallback> to_call;
      {
        std::lock_guard<std::mutex> lock(subs_mutex_);
        to_call.reserve(subs_.size());
        for (const auto& [token, cb] : subs_) to_call.push_back(cb);
      }
      for (const auto& cb : to_call) cb(prev, now_agreed, at);
    }
    std::this_thread::sleep_for(std::chrono::microseconds(poll_us_));
  }
}

}  // namespace omega
