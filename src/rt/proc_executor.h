// The Executor seam: one process's execution engine, decoupled from the
// thread that supplies its CPU.
//
// A ProcExecutor owns the suspended Ω coroutines of a single OmegaProcess
// (heartbeat, monitor, optional application tasks) together with that
// process's timer state, and knows how to execute exactly one pending
// operation at a time against the memory backend. Two drivers sit on top:
//
//   * RtDriver (rt_driver.h) — thread-per-process: each executor gets a
//     dedicated std::thread that calls step() in a loop;
//   * svc::WorkerPool (svc/worker_pool.h) — pooled stepper: a fixed set of
//     workers cooperatively steps thousands of executors, with timer waits
//     batched through a timer wheel (poll_timer/fire hooks).
//
// Threading contract: the stepping functions (step, step_runnable,
// poll_timer, fire_timer_if_due, drain_monitor) must only ever be called by
// one thread at a time — the executor's current owner. Observation
// (status, last_leader, ...) and crash() are safe from any thread.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <vector>

#include "core/omega_iface.h"
#include "core/proc_task.h"

namespace omega {

/// Per-process externally visible state (all atomics: safe to poll from a
/// control thread while the owning driver thread runs).
struct RtProcessStatus {
  ProcessId last_leader = kNoProcess;
  std::uint64_t leader_queries = 0;
  std::uint64_t leader_changes = 0;
  std::int64_t last_change_us = -1;
  bool crashed = false;
};

/// Sentinel deadline: "no timer armed".
inline constexpr std::int64_t kNoDeadline =
    std::numeric_limits<std::int64_t>::max();

class ProcExecutor {
 public:
  /// `tick_us` — microseconds per timeout unit (the timer's T(x) = x *
  /// tick_us). The Ω tasks are created and advanced to their first
  /// suspension point here; any thread may step them afterwards.
  ProcExecutor(OmegaProcess& proc, MemoryBackend& mem, std::int64_t tick_us);

  ProcExecutor(const ProcExecutor&) = delete;
  ProcExecutor& operator=(const ProcExecutor&) = delete;

  /// Registers an application coroutine to run interleaved with the Ω
  /// tasks; its LeaderQuery ops are answered by this process's leader().
  /// Owner thread only — either before the executor is handed to a driver,
  /// or from code already running on the owning thread (e.g. a GroupPump
  /// spawning proposers during its sweep hook).
  void add_app_task(ProcTask task);
  std::uint32_t apps_left() const {
    return apps_left_.load(std::memory_order_acquire);
  }

  /// Releases completed application tasks (owner thread only) and returns
  /// how many were dropped. Long-lived executors that keep receiving tasks
  /// (the SMR pump spawns one proposer per slot) must reap, or the
  /// round-robin scan pays for every finished frame forever.
  std::size_t reap_apps();

  // --- stepping (owner thread only) -------------------------------------

  /// Executes one pending operation of one runnable task, round-robin over
  /// [monitor, heartbeat, apps...]. A task is runnable if it is suspended
  /// on a read, write, leader query or yield; timer waits are not runnable
  /// (they go through the timer API below). `now_us` timestamps leader-view
  /// changes. Returns false if the executor is crashed or nothing is
  /// runnable.
  bool step_runnable(std::int64_t now_us);

  /// If the monitor is suspended on WaitTimer and no timer is armed, arms
  /// one at `now_us + next_timeout() * tick_us` (paper line 27) and returns
  /// the deadline so pooled drivers can file it in a timer wheel. Returns
  /// kNoDeadline if nothing was armed.
  std::int64_t poll_timer(std::int64_t now_us);

  /// Fires the armed timer if `now_us` has reached its deadline: resumes
  /// the monitor (which becomes runnable at the head of its scan). Returns
  /// true iff it fired.
  bool fire_timer_if_due(std::int64_t now_us);

  /// Batched wakeup for wheel-driven drivers: fires the timer if due, then
  /// runs the monitor's whole scan to its next suspension (bounded by
  /// `max_ops`), so one wheel pop performs one complete paper-line-14..26
  /// pass. Returns the number of operations executed.
  std::uint32_t drain_monitor(std::int64_t now_us, std::uint32_t max_ops);

  /// One scheduling decision for dedicated-thread drivers: arm the timer if
  /// needed, fire it if due, otherwise execute one runnable operation.
  /// Returns false if the executor is crashed or had nothing to do.
  bool step(std::int64_t now_us);

  /// Currently armed deadline (kNoDeadline if none).
  std::int64_t timer_deadline() const noexcept { return deadline_us_; }

  // --- control / observation (any thread) -------------------------------

  /// Simulated crash: the executor stops executing steps (registers keep
  /// their last values), exactly like a crash in the model.
  void crash() { crash_flag_.store(true, std::memory_order_release); }
  bool crashed() const {
    return crash_flag_.load(std::memory_order_acquire);
  }

  /// Latest leader() output published by this process's own task stream.
  ProcessId last_leader() const {
    return last_leader_.load(std::memory_order_acquire);
  }

  RtProcessStatus status() const;

  OmegaProcess& process() noexcept { return proc_; }

 private:
  void exec(ProcTask& task);
  bool runnable(const ProcTask& task) const;

  OmegaProcess& proc_;
  MemoryBackend& mem_;
  const std::int64_t tick_us_;

  ProcTask heartbeat_;
  ProcTask monitor_;
  std::vector<ProcTask> apps_;
  std::size_t rr_ = 0;  ///< round-robin cursor over [monitor, heartbeat, apps]

  std::int64_t deadline_us_ = kNoDeadline;
  std::int64_t last_now_us_ = 0;  ///< timestamp for leader-change events

  std::atomic<std::uint32_t> apps_left_{0};
  std::atomic<bool> crash_flag_{false};
  std::atomic<std::uint32_t> last_leader_{kNoProcess};
  std::atomic<std::uint64_t> queries_{0};
  std::atomic<std::uint64_t> changes_{0};
  std::atomic<std::int64_t> last_change_us_{-1};
};

}  // namespace omega
