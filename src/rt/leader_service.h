// LeaderService: the downstream-facing facade over the real-thread runtime.
// Applications built on Ω (lock services, primary-backup replication, SMR)
// want three things the raw RtDriver does not package:
//
//   * a *system-wide* leader view — "the id every live process currently
//     agrees on", rather than one process's local estimate;
//   * change notifications — callbacks when that agreed view changes
//     (leadership acquired / lost / vacated), so fail-over logic is
//     event-driven instead of polled;
//   * a simple "am I the leader right now?" test for fencing decisions
//     (with the usual Ω caveat: during anarchy the answer may be wrong —
//     Ω only promises eventual accuracy, which is why applications pair it
//     with a safety layer like the consensus module).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "rt/rt_driver.h"

namespace omega::svc {
// Forward declarations: the fleet entry point hands off to src/svc without
// making every single-group user compile the pooled runtime's headers.
struct SvcConfig;
class MultiGroupLeaderService;
}  // namespace omega::svc

namespace omega {

/// Invoked on agreed-view changes. `previous`/`current` may be kNoProcess
/// ("no agreement"). Runs on the service's watcher thread: keep it short,
/// do not call back into the service from inside it.
using LeadershipCallback = std::function<void(
    ProcessId previous, ProcessId current, std::int64_t at_us)>;

class LeaderService {
 public:
  /// Multi-group entry point: when an application needs leaders for many
  /// independent election groups (a lease table, per-partition locks, ...),
  /// thread-per-process does not scale — delegate to the pooled runtime
  /// (src/svc), which multiplexes every group onto a fixed worker pool and
  /// serves leader() from an epoch-validated cache. Callers include
  /// svc/multigroup_service.h to use the returned service.
  static std::unique_ptr<svc::MultiGroupLeaderService> make_fleet(
      const svc::SvcConfig& config);
  /// Fleet with default configuration (see svc::SvcConfig).
  static std::unique_ptr<svc::MultiGroupLeaderService> make_fleet();

  /// `poll_us` — watcher polling period for the agreed view.
  explicit LeaderService(RtConfig config, std::int64_t poll_us = 1000);
  ~LeaderService();

  LeaderService(const LeaderService&) = delete;
  LeaderService& operator=(const LeaderService&) = delete;

  void start();
  void stop();

  /// The current agreed leader: the id that every live process's last
  /// leader() output names, provided that id is itself live; kNoProcess
  /// while the system disagrees (anarchy or mid-fail-over).
  ProcessId current() const noexcept {
    return agreed_.load(std::memory_order_acquire);
  }

  /// Fencing-style test for one process's local view.
  bool is_leader(ProcessId pid) const;

  /// Registers a callback; returns a token for unsubscribe(). Callbacks
  /// fire in subscription order.
  std::uint64_t subscribe(LeadershipCallback cb);
  void unsubscribe(std::uint64_t token);

  /// Number of agreed-view changes observed since start().
  std::uint64_t transitions() const noexcept {
    return transitions_.load(std::memory_order_relaxed);
  }

  RtDriver& driver() noexcept { return driver_; }

 private:
  void watch();
  ProcessId compute_agreed() const;

  RtDriver driver_;
  std::int64_t poll_us_;
  std::thread watcher_;
  std::atomic<bool> stop_flag_{false};
  std::atomic<ProcessId> agreed_{kNoProcess};
  std::atomic<std::uint64_t> transitions_{0};
  bool started_ = false;

  mutable std::mutex subs_mutex_;
  std::vector<std::pair<std::uint64_t, LeadershipCallback>> subs_;
  std::uint64_t next_token_ = 1;
};

}  // namespace omega
