#include "rt/proc_executor.h"

namespace omega {

ProcExecutor::ProcExecutor(OmegaProcess& proc, MemoryBackend& mem,
                           std::int64_t tick_us)
    : proc_(proc), mem_(mem), tick_us_(tick_us) {
  OMEGA_CHECK(tick_us_ >= 1, "tick must be >= 1us");
  heartbeat_ = proc_.task_heartbeat();
  monitor_ = proc_.task_monitor();
  heartbeat_.start();
  monitor_.start();
}

void ProcExecutor::add_app_task(ProcTask task) {
  OMEGA_CHECK(task.valid(), "invalid app task");
  task.start();
  apps_.push_back(std::move(task));
  apps_left_.fetch_add(1, std::memory_order_acq_rel);
}

std::size_t ProcExecutor::reap_apps() {
  const std::size_t before = apps_.size();
  std::erase_if(apps_, [](const ProcTask& t) { return t.done(); });
  if (apps_.size() != before) rr_ = 0;  // cursor may point past the end
  return before - apps_.size();
}

RtProcessStatus ProcExecutor::status() const {
  RtProcessStatus s;
  s.last_leader = last_leader_.load(std::memory_order_acquire);
  s.leader_queries = queries_.load(std::memory_order_relaxed);
  s.leader_changes = changes_.load(std::memory_order_relaxed);
  s.last_change_us = last_change_us_.load(std::memory_order_relaxed);
  s.crashed = crash_flag_.load(std::memory_order_acquire);
  return s;
}

bool ProcExecutor::runnable(const ProcTask& task) const {
  switch (task.pending()) {
    case OpKind::kRead:
    case OpKind::kWrite:
    case OpKind::kLeaderQuery:
    case OpKind::kYield:
      return true;
    case OpKind::kWaitTimer:
    case OpKind::kNone:
    case OpKind::kDone:
      return false;
  }
  return false;
}

void ProcExecutor::exec(ProcTask& task) {
  const ProcessId pid = proc_.self();
  switch (task.pending()) {
    case OpKind::kRead:
      task.resume(mem_.read(pid, task.pending_cell()));
      return;
    case OpKind::kWrite:
      mem_.write(pid, task.pending_cell(), task.pending_value());
      task.resume(0);
      return;
    case OpKind::kLeaderQuery: {
      const ProcessId out = proc_.leader();
      queries_.fetch_add(1, std::memory_order_relaxed);
      if (out != last_leader_.load(std::memory_order_relaxed)) {
        last_leader_.store(out, std::memory_order_release);
        changes_.fetch_add(1, std::memory_order_relaxed);
        last_change_us_.store(last_now_us_, std::memory_order_relaxed);
      }
      task.resume(out);
      return;
    }
    case OpKind::kYield:
      task.resume(0);
      return;
    case OpKind::kWaitTimer:
    case OpKind::kNone:
    case OpKind::kDone:
      break;
  }
  OMEGA_CHECK(false, "task of p" << pid << " has no executable op");
}

bool ProcExecutor::step_runnable(std::int64_t now_us) {
  if (crashed()) return false;
  last_now_us_ = now_us;
  // Round-robin over [monitor, heartbeat, app tasks...], mirroring the
  // simulator's per-process task rotation.
  const std::size_t slots = 2 + apps_.size();
  for (std::size_t probe = 0; probe < slots; ++probe) {
    const std::size_t slot = (rr_ + probe) % slots;
    ProcTask& task = slot == 0   ? monitor_
                     : slot == 1 ? heartbeat_
                                 : apps_[slot - 2];
    // Only the monitor (slot 0) may block on the timer; a heartbeat or app
    // task doing so would be skipped forever, so fail loudly instead of
    // silently never resuming it.
    OMEGA_CHECK(slot == 0 || task.pending() != OpKind::kWaitTimer,
                (slot == 1 ? "heartbeat" : "app task")
                    << " of p" << proc_.self()
                    << " suspended on WaitTimer (unsupported)");
    if (!runnable(task)) continue;
    exec(task);
    if (slot >= 2 && task.pending() == OpKind::kDone) {
      apps_left_.fetch_sub(1, std::memory_order_acq_rel);
    }
    rr_ = slot + 1;
    return true;
  }
  return false;
}

std::int64_t ProcExecutor::poll_timer(std::int64_t now_us) {
  if (crashed()) return kNoDeadline;
  if (monitor_.pending() != OpKind::kWaitTimer || deadline_us_ != kNoDeadline) {
    return kNoDeadline;
  }
  const std::uint64_t x = proc_.next_timeout();
  deadline_us_ = now_us + static_cast<std::int64_t>(x) * tick_us_;
  return deadline_us_;
}

bool ProcExecutor::fire_timer_if_due(std::int64_t now_us) {
  if (crashed()) return false;
  if (deadline_us_ == kNoDeadline || now_us < deadline_us_) return false;
  OMEGA_CHECK(monitor_.pending() == OpKind::kWaitTimer,
              "timer armed but monitor of p" << proc_.self()
                                             << " is not waiting");
  deadline_us_ = kNoDeadline;
  last_now_us_ = now_us;
  monitor_.resume(0);
  return true;
}

std::uint32_t ProcExecutor::drain_monitor(std::int64_t now_us,
                                          std::uint32_t max_ops) {
  if (!fire_timer_if_due(now_us)) return 0;
  std::uint32_t ops = 0;
  while (ops < max_ops && runnable(monitor_)) {
    exec(monitor_);
    ++ops;
  }
  return ops;
}

bool ProcExecutor::step(std::int64_t now_us) {
  if (crashed()) return false;
  poll_timer(now_us);
  if (fire_timer_if_due(now_us)) {
    poll_timer(now_us);
    return true;
  }
  return step_runnable(now_us);
}

}  // namespace omega
