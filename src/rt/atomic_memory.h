// Real-hardware register backend: each 1WnR atomic register is a
// std::atomic<uint64_t> with sequentially consistent loads/stores.
// Linearizability of the paper's register model maps directly onto the C++
// memory model: seq_cst atomics give a single total order of all accesses
// consistent with program order — exactly the atomic-register semantics of
// §2.1 (this is the "std::atomic registers map directly" reproduction path).
//
// Cells are padded to cache lines so that one process's heartbeat writes do
// not false-share with its neighbours' registers.
//
// The storage itself (AtomicCellArray) is factored out of the backend so
// the multi-process mirror (registers/mirror.h) can reuse it: a mirror's
// local cells need the same cross-thread atomicity — the IO thread applying
// pushed updates races the shard worker reading — and the same padding.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "registers/memory.h"

namespace omega {

/// Flat array of cache-line-padded seq_cst atomic cells. Safe for any mix
/// of concurrent readers and writers per cell (the register model's own
/// single-writer discipline is enforced a layer up, in MemoryBackend).
class AtomicCellArray {
 public:
  explicit AtomicCellArray(std::uint32_t size) : cells_(size) {}

  std::uint64_t load(std::uint32_t i) const {
    return cells_[i].value.load(std::memory_order_seq_cst);
  }
  void store(std::uint32_t i, std::uint64_t v) {
    cells_[i].value.store(v, std::memory_order_seq_cst);
  }
  std::uint32_t size() const noexcept {
    return static_cast<std::uint32_t>(cells_.size());
  }

 private:
  struct alignas(64) PaddedCell {
    std::atomic<std::uint64_t> value{0};
  };
  std::vector<PaddedCell> cells_;
};

class AtomicMemory final : public MemoryBackend {
 public:
  AtomicMemory(Layout layout, std::uint32_t num_processes);

 protected:
  std::uint64_t load(Cell c) const override;
  void store(Cell c, std::uint64_t v) override;

 private:
  AtomicCellArray cells_;
};

}  // namespace omega
