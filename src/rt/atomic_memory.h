// Real-hardware register backend: each 1WnR atomic register is a
// std::atomic<uint64_t> with sequentially consistent loads/stores.
// Linearizability of the paper's register model maps directly onto the C++
// memory model: seq_cst atomics give a single total order of all accesses
// consistent with program order — exactly the atomic-register semantics of
// §2.1 (this is the "std::atomic registers map directly" reproduction path).
//
// Cells are padded to cache lines so that one process's heartbeat writes do
// not false-share with its neighbours' registers.
#pragma once

#include <atomic>
#include <vector>

#include "registers/memory.h"

namespace omega {

class AtomicMemory final : public MemoryBackend {
 public:
  AtomicMemory(Layout layout, std::uint32_t num_processes);

 protected:
  std::uint64_t load(Cell c) const override;
  void store(Cell c, std::uint64_t v) override;

 private:
  struct alignas(64) PaddedCell {
    std::atomic<std::uint64_t> value{0};
  };
  std::vector<PaddedCell> cells_;
};

}  // namespace omega
