#include "rt/rt_driver.h"

#include "rt/atomic_memory.h"

namespace omega {

RtDriver::RtDriver(RtConfig config) : config_(config) {
  OMEGA_CHECK(config_.n >= 1 && config_.n <= 64,
              "rt runtime supports 1..64 processes");
  OMEGA_CHECK(config_.tick_us >= 1, "tick must be >= 1us");
  inst_ = make_omega(config_.algo, config_.n,
                     [](Layout layout, std::uint32_t n) {
                       return std::unique_ptr<MemoryBackend>(
                           std::make_unique<AtomicMemory>(std::move(layout), n));
                     });
  threads_.reserve(config_.n);
  for (std::uint32_t i = 0; i < config_.n; ++i) {
    threads_.push_back(std::make_unique<ProcThread>());
  }
}

RtDriver::~RtDriver() { stop(); }

std::int64_t RtDriver::now_us() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - start_time_)
      .count();
}

void RtDriver::add_app_task(ProcessId pid, ProcTask task) {
  OMEGA_CHECK(pid < threads_.size(), "bad pid " << pid);
  OMEGA_CHECK(!started_, "add_app_task after start()");
  OMEGA_CHECK(task.valid(), "invalid app task");
  task.start();
  auto& t = *threads_[pid];
  t.apps.push_back(std::move(task));
  t.apps_left.fetch_add(1, std::memory_order_relaxed);
}

bool RtDriver::apps_done() const {
  for (const auto& t : threads_) {
    if (t->apps_left.load(std::memory_order_acquire) > 0) return false;
  }
  return true;
}

void RtDriver::start() {
  OMEGA_CHECK(!started_, "start() called twice");
  started_ = true;
  start_time_ = std::chrono::steady_clock::now();
  // Timestamp instrumentation in microseconds since start.
  inst_.memory->set_clock([this] { return now_us(); });
  for (std::uint32_t i = 0; i < config_.n; ++i) {
    threads_[i]->thread = std::thread([this, i] { run_process(i); });
  }
}

void RtDriver::stop() {
  if (!started_) return;
  stop_flag_.store(true, std::memory_order_release);
  for (auto& t : threads_) {
    if (t->thread.joinable()) t->thread.join();
  }
}

void RtDriver::crash(ProcessId pid) {
  OMEGA_CHECK(pid < threads_.size(), "bad pid " << pid);
  threads_[pid]->crash_flag.store(true, std::memory_order_release);
}

ProcessId RtDriver::leader(ProcessId pid) const {
  OMEGA_CHECK(pid < threads_.size(), "bad pid " << pid);
  return threads_[pid]->last_leader.load(std::memory_order_acquire);
}

RtProcessStatus RtDriver::status(ProcessId pid) const {
  OMEGA_CHECK(pid < threads_.size(), "bad pid " << pid);
  const auto& t = *threads_[pid];
  RtProcessStatus s;
  s.last_leader = t.last_leader.load(std::memory_order_acquire);
  s.leader_queries = t.queries.load(std::memory_order_relaxed);
  s.leader_changes = t.changes.load(std::memory_order_relaxed);
  s.last_change_us = t.last_change_us.load(std::memory_order_relaxed);
  s.crashed = t.crash_flag.load(std::memory_order_acquire);
  return s;
}

std::string RtDriver::failure_message() const {
  std::lock_guard<std::mutex> lock(failure_mutex_);
  return failure_message_;
}

void RtDriver::run_process(ProcessId pid) try {
  OmegaProcess& proc = *inst_.processes[pid];
  MemoryBackend& mem = *inst_.memory;
  ProcThread& me = *threads_[pid];

  ProcTask heartbeat = proc.task_heartbeat();
  ProcTask monitor = proc.task_monitor();
  heartbeat.start();
  monitor.start();

  auto deadline = std::chrono::steady_clock::time_point::min();
  bool timer_armed = false;
  auto arm_if_waiting = [&] {
    if (monitor.pending() == OpKind::kWaitTimer && !timer_armed) {
      const std::uint64_t x = proc.next_timeout();
      deadline = std::chrono::steady_clock::now() +
                 std::chrono::microseconds(
                     static_cast<std::int64_t>(x) * config_.tick_us);
      timer_armed = true;
    }
  };
  arm_if_waiting();

  // Executes the pending op of `task` directly against the atomic memory.
  auto exec = [&](ProcTask& task) {
    switch (task.pending()) {
      case OpKind::kRead:
        task.resume(mem.read(pid, task.pending_cell()));
        return;
      case OpKind::kWrite:
        mem.write(pid, task.pending_cell(), task.pending_value());
        task.resume(0);
        return;
      case OpKind::kLeaderQuery: {
        const ProcessId out = proc.leader();
        me.queries.fetch_add(1, std::memory_order_relaxed);
        if (out != me.last_leader.load(std::memory_order_relaxed)) {
          me.last_leader.store(out, std::memory_order_release);
          me.changes.fetch_add(1, std::memory_order_relaxed);
          me.last_change_us.store(now_us(), std::memory_order_relaxed);
        }
        task.resume(out);
        return;
      }
      case OpKind::kYield:
        task.resume(0);
        return;
      case OpKind::kWaitTimer:
      case OpKind::kNone:
      case OpKind::kDone:
        break;
    }
    OMEGA_CHECK(false, "rt task of p" << pid << " has no executable op");
  };

  // Round-robin over [monitor, heartbeat, app tasks...], mirroring the
  // simulator's per-process task rotation.
  const std::size_t slots = 2 + me.apps.size();
  std::size_t rr = 0;
  while (!stop_flag_.load(std::memory_order_acquire) &&
         !me.crash_flag.load(std::memory_order_acquire)) {
    if (monitor.pending() == OpKind::kWaitTimer && timer_armed &&
        std::chrono::steady_clock::now() >= deadline) {
      timer_armed = false;
      monitor.resume(0);
      arm_if_waiting();
    } else {
      for (std::size_t probe = 0; probe < slots; ++probe) {
        const std::size_t slot = (rr + probe) % slots;
        if (slot == 0) {
          const OpKind mk = monitor.pending();
          const bool runnable = mk == OpKind::kRead || mk == OpKind::kWrite ||
                                mk == OpKind::kYield;
          if (!runnable) continue;
          exec(monitor);
          arm_if_waiting();
        } else if (slot == 1) {
          exec(heartbeat);
        } else {
          ProcTask& app = me.apps[slot - 2];
          if (app.pending() == OpKind::kDone) continue;
          exec(app);
          if (app.pending() == OpKind::kDone) {
            me.apps_left.fetch_sub(1, std::memory_order_acq_rel);
          }
        }
        rr = slot + 1;
        break;
      }
    }
    if (config_.pace_us > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(config_.pace_us));
    }
  }
} catch (const std::exception& e) {
  std::lock_guard<std::mutex> lock(failure_mutex_);
  if (!failed_.exchange(true, std::memory_order_acq_rel)) {
    failure_message_ = e.what();
  }
}

ProcessId RtDriver::await_stable_leader(std::int64_t hold_us,
                                        std::int64_t timeout_us) {
  const std::int64_t deadline = now_us() + timeout_us;
  std::int64_t agreed_since = -1;
  ProcessId agreed = kNoProcess;
  while (now_us() < deadline) {
    ProcessId common = kNoProcess;
    bool all_agree = true;
    for (std::uint32_t i = 0; i < config_.n && all_agree; ++i) {
      const auto s = status(i);
      if (s.crashed) continue;
      if (s.last_leader == kNoProcess) {
        all_agree = false;
      } else if (common == kNoProcess) {
        common = s.last_leader;
      } else if (common != s.last_leader) {
        all_agree = false;
      }
    }
    const bool leader_alive =
        all_agree && common != kNoProcess && !status(common).crashed;
    if (leader_alive) {
      if (agreed != common) {
        agreed = common;
        agreed_since = now_us();
      } else if (now_us() - agreed_since >= hold_us) {
        return agreed;
      }
    } else {
      agreed = kNoProcess;
      agreed_since = -1;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return kNoProcess;
}

}  // namespace omega
