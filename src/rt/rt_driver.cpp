#include "rt/rt_driver.h"

#include "rt/atomic_memory.h"

namespace omega {

RtDriver::RtDriver(RtConfig config) : config_(config) {
  OMEGA_CHECK(config_.n >= 1 && config_.n <= 64,
              "rt runtime supports 1..64 processes");
  OMEGA_CHECK(config_.tick_us >= 1, "tick must be >= 1us");
  inst_ = make_omega(config_.algo, config_.n,
                     [](Layout layout, std::uint32_t n) {
                       return std::unique_ptr<MemoryBackend>(
                           std::make_unique<AtomicMemory>(std::move(layout), n));
                     });
  execs_.reserve(config_.n);
  for (std::uint32_t i = 0; i < config_.n; ++i) {
    execs_.push_back(std::make_unique<ProcExecutor>(
        *inst_.processes[i], *inst_.memory, config_.tick_us));
  }
  threads_.resize(config_.n);
}

RtDriver::~RtDriver() { stop(); }

std::int64_t RtDriver::now_us() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - start_time_)
      .count();
}

void RtDriver::add_app_task(ProcessId pid, ProcTask task) {
  OMEGA_CHECK(pid < execs_.size(), "bad pid " << pid);
  OMEGA_CHECK(!started_, "add_app_task after start()");
  execs_[pid]->add_app_task(std::move(task));
}

bool RtDriver::apps_done() const {
  for (const auto& ex : execs_) {
    if (ex->apps_left() > 0) return false;
  }
  return true;
}

void RtDriver::start() {
  OMEGA_CHECK(!started_, "start() called twice");
  started_ = true;
  start_time_ = std::chrono::steady_clock::now();
  // Timestamp instrumentation in microseconds since start.
  inst_.memory->set_clock([this] { return now_us(); });
  for (std::uint32_t i = 0; i < config_.n; ++i) {
    threads_[i] = std::thread([this, i] { run_process(i); });
  }
}

void RtDriver::stop() {
  if (!started_) return;
  stop_flag_.store(true, std::memory_order_release);
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
}

void RtDriver::crash(ProcessId pid) {
  OMEGA_CHECK(pid < execs_.size(), "bad pid " << pid);
  execs_[pid]->crash();
}

ProcessId RtDriver::leader(ProcessId pid) const {
  OMEGA_CHECK(pid < execs_.size(), "bad pid " << pid);
  return execs_[pid]->last_leader();
}

RtProcessStatus RtDriver::status(ProcessId pid) const {
  OMEGA_CHECK(pid < execs_.size(), "bad pid " << pid);
  return execs_[pid]->status();
}

std::string RtDriver::failure_message() const {
  std::lock_guard<std::mutex> lock(failure_mutex_);
  return failure_message_;
}

void RtDriver::run_process(ProcessId pid) try {
  ProcExecutor& ex = *execs_[pid];
  while (!stop_flag_.load(std::memory_order_acquire) && !ex.crashed()) {
    ex.step(now_us());
    if (config_.pace_us > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(config_.pace_us));
    }
  }
} catch (const std::exception& e) {
  std::lock_guard<std::mutex> lock(failure_mutex_);
  if (!failed_.exchange(true, std::memory_order_acq_rel)) {
    failure_message_ = e.what();
  }
}

ProcessId RtDriver::await_stable_leader(std::int64_t hold_us,
                                        std::int64_t timeout_us) {
  const std::int64_t deadline = now_us() + timeout_us;
  std::int64_t agreed_since = -1;
  ProcessId agreed = kNoProcess;
  while (now_us() < deadline) {
    ProcessId common = kNoProcess;
    bool all_agree = true;
    for (std::uint32_t i = 0; i < config_.n && all_agree; ++i) {
      const auto s = status(i);
      if (s.crashed) continue;
      if (s.last_leader == kNoProcess) {
        all_agree = false;
      } else if (common == kNoProcess) {
        common = s.last_leader;
      } else if (common != s.last_leader) {
        all_agree = false;
      }
    }
    const bool leader_alive =
        all_agree && common != kNoProcess && !status(common).crashed;
    if (leader_alive) {
      if (agreed != common) {
        agreed = common;
        agreed_since = now_us();
      } else if (now_us() - agreed_since >= hold_us) {
        return agreed;
      }
    } else {
      agreed = kNoProcess;
      agreed_since = -1;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return kNoProcess;
}

}  // namespace omega
