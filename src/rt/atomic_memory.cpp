#include "rt/atomic_memory.h"

namespace omega {

AtomicMemory::AtomicMemory(Layout layout, std::uint32_t num_processes)
    : MemoryBackend(std::move(layout), num_processes),
      cells_(this->layout().size()) {}

std::uint64_t AtomicMemory::load(Cell c) const { return cells_.load(c.index); }

void AtomicMemory::store(Cell c, std::uint64_t v) { cells_.store(c.index, v); }

}  // namespace omega
