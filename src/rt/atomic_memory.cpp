#include "rt/atomic_memory.h"

namespace omega {

AtomicMemory::AtomicMemory(Layout layout, std::uint32_t num_processes)
    : MemoryBackend(std::move(layout), num_processes),
      cells_(this->layout().size()) {}

std::uint64_t AtomicMemory::load(Cell c) const {
  return cells_[c.index].value.load(std::memory_order_seq_cst);
}

void AtomicMemory::store(Cell c, std::uint64_t v) {
  cells_[c.index].value.store(v, std::memory_order_seq_cst);
}

}  // namespace omega
