#include "san/san_memory.h"

namespace omega {

SanMemory::SanMemory(Layout layout, std::uint32_t num_processes,
                     SanConfig config)
    : MemoryBackend(std::move(layout), num_processes),
      cells_(this->layout().size(), 0) {
  OMEGA_CHECK(config.num_disks >= 1, "need at least one disk");
  Rng seeder(config.seed);
  disks_.reserve(config.num_disks);
  for (std::uint32_t d = 0; d < config.num_disks; ++d) {
    disks_.emplace_back(config.network_latency, config.service_time,
                        config.jitter_max, seeder.next_u64());
  }
}

SimDuration SanMemory::access_cost(Cell c, bool is_write) {
  // Striping: consecutive cells land on different disks, so one process's
  // register family spreads its load.
  SimDisk& disk = disks_[c.index % disks_.size()];
  return disk.serve(now(), is_write);
}

const DiskStats& SanMemory::disk_stats(std::uint32_t d) const {
  OMEGA_CHECK(d < disks_.size(), "bad disk " << d);
  return disks_[d].stats();
}

std::uint64_t SanMemory::load(Cell c) const { return cells_[c.index]; }

void SanMemory::store(Cell c, std::uint64_t v) { cells_[c.index] = v; }

MemoryFactory san_memory_factory(SanConfig config) {
  return [config](Layout layout, std::uint32_t n) {
    return std::unique_ptr<MemoryBackend>(
        std::make_unique<SanMemory>(std::move(layout), n, config));
  };
}

}  // namespace omega
