// Register backend over a simulated disk array: cells are striped across
// `num_disks` disks; every read/write is charged that disk's latency
// (network + queue + service) through MemoryBackend::access_cost, which the
// discrete-event driver adds to the accessing process's next step time.
//
// This reproduces the paper's deployment claim: the Ω algorithms run
// unmodified over SAN-backed registers — latency stretches time (convergence
// takes longer in wall-clock terms) but changes none of the properties.
#pragma once

#include <memory>
#include <vector>

#include "core/factory.h"
#include "registers/memory.h"
#include "san/disk.h"

namespace omega {

struct SanConfig {
  std::uint32_t num_disks = 4;
  SimDuration network_latency = 2;
  SimDuration service_time = 3;
  SimDuration jitter_max = 2;
  std::uint64_t seed = 0xD15C;
};

class SanMemory final : public MemoryBackend {
 public:
  SanMemory(Layout layout, std::uint32_t num_processes, SanConfig config);

  /// Latency of the access as computed by the owning disk's queue model.
  SimDuration access_cost(Cell c, bool is_write) override;

  std::uint32_t num_disks() const noexcept {
    return static_cast<std::uint32_t>(disks_.size());
  }
  const DiskStats& disk_stats(std::uint32_t d) const;

 protected:
  std::uint64_t load(Cell c) const override;
  void store(Cell c, std::uint64_t v) override;

 private:
  std::vector<std::uint64_t> cells_;
  std::vector<SimDisk> disks_;
};

/// MemoryFactory adapter for make_omega / make_scenario.
MemoryFactory san_memory_factory(SanConfig config);

}  // namespace omega
