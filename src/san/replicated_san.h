// Fault-tolerant registers over a crash-prone disk array.
//
// The plain SanMemory stripes each register on one disk — a disk crash
// would lose registers, which the paper's model does not allow. Real SAN
// deployments ([1] Byzantine Disk Paxos, [9] Disk Paxos, [18] Petal)
// replicate every block. This backend implements the classic
// single-writer replication scheme:
//
//   * every logical register is replicated on ALL disks as (version, value);
//   * a write stamps a fresh version and lands on every *reachable* disk
//     (the owner is the only writer, so versions are totally ordered);
//   * a read consults every reachable disk and returns the value with the
//     highest version.
//
// Fault model (configurable):
//   * disk crashes — a crashed disk never responds again. Any single
//     surviving disk suffices for safety in this crash-only model: every
//     completed write reached all then-reachable disks, so the freshest
//     version is on every survivor that was reachable at write time.
//   * per-access omissions — transient unreachability (network blips) with
//     probability `omission_prob`. Omissions make replicas diverge, and a
//     read may then return a *stale but previously written* value: the
//     register degrades from atomic to regular. The paper's proofs assume
//     atomicity; experiment E12 measures how the algorithms actually behave
//     as staleness grows — the suspicion mechanism only ever *delays*
//     detection, so convergence survives moderate omission rates.
//
// A write is guaranteed to reach at least one live disk (the SAN controller
// retries the anchor replica synchronously), so writes are never lost
// outright; reads always reach at least one live disk.
#pragma once

#include <vector>

#include "core/factory.h"
#include "registers/memory.h"
#include "san/disk.h"

namespace omega {

struct ReplicatedSanConfig {
  std::uint32_t num_disks = 3;
  SimDuration network_latency = 2;
  SimDuration service_time = 3;
  SimDuration jitter_max = 2;
  /// Probability that a given replica misses a given access (divergence).
  double omission_prob = 0.0;
  /// Controller-side anti-entropy: a read propagates the freshest
  /// (version, value) it saw to the live replicas that answered. Without it,
  /// a replica that missed the *last* write of a now-frozen register (e.g.
  /// STOP[k] after p_k stops competing) stays divergent forever and keeps
  /// injecting stale reads at a constant rate (see experiment E12).
  bool read_repair = false;
  std::uint64_t seed = 0xD15C2;
};

class ReplicatedSanMemory final : public MemoryBackend {
 public:
  ReplicatedSanMemory(Layout layout, std::uint32_t num_processes,
                      ReplicatedSanConfig config);

  /// Crashes disk `d`: it stops serving and its replicas become unreadable.
  /// At least one disk must remain alive.
  void crash_disk(std::uint32_t d);

  std::uint32_t num_disks() const noexcept {
    return static_cast<std::uint32_t>(disks_.size());
  }
  std::uint32_t disks_alive() const;
  const DiskStats& disk_stats(std::uint32_t d) const;

  /// Total accesses that returned a stale (lower-than-freshest) value.
  std::uint64_t stale_reads() const noexcept { return stale_reads_; }
  /// Writes that failed to reach every live replica (some omission).
  std::uint64_t divergent_writes() const noexcept { return divergent_writes_; }

  /// Cost: the slowest reachable replica (accesses fan out in parallel).
  SimDuration access_cost(Cell c, bool is_write) override;

 protected:
  std::uint64_t load(Cell c) const override;
  void store(Cell c, std::uint64_t v) override;

 private:
  struct Replica {
    std::uint64_t version = 0;
    std::uint64_t value = 0;
  };

  int pick_live_anchor() const;

  ReplicatedSanConfig config_;
  std::vector<SimDisk> disks_;
  std::vector<bool> disk_crashed_;
  /// replicas_[disk][cell]; mutable: reads may repair (anti-entropy is a
  /// controller-side mechanism, not a process write).
  mutable std::vector<std::vector<Replica>> replicas_;
  std::vector<std::uint64_t> next_version_;  ///< per cell (owner-sequenced)
  mutable Rng rng_;
  mutable std::uint64_t stale_reads_ = 0;
  std::uint64_t divergent_writes_ = 0;
};

/// MemoryFactory adapter for make_omega / make_scenario.
MemoryFactory replicated_san_factory(ReplicatedSanConfig config);

}  // namespace omega
