// A simulated network-attached disk. The paper motivates shared-memory Ω
// with storage-area networks: "commodity disks are cheaper than computers"
// and the disk array implements the shared-memory abstraction ([1,4,10,18]).
// We have no SAN, so we model the one property that matters for the
// algorithms: register accesses cost *time* (network + service latency, plus
// queueing when a disk is busy) instead of being free.
#pragma once

#include <cstdint>

#include "common/ids.h"
#include "common/rng.h"

namespace omega {

struct DiskStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t total_queue_wait = 0;  ///< ticks spent queued behind other ops
  SimTime busy_until = 0;
};

/// Single-server queue model of one disk: each operation occupies the disk
/// for `service_time` ticks (+ jitter); operations arriving while the disk
/// is busy wait their turn. Network round-trip adds a fixed latency.
class SimDisk {
 public:
  SimDisk(SimDuration network_latency, SimDuration service_time,
          SimDuration jitter_max, std::uint64_t seed);

  /// Serves one operation arriving at `now`; returns its total latency
  /// (network + queue wait + service).
  SimDuration serve(SimTime now, bool is_write);

  const DiskStats& stats() const noexcept { return stats_; }

 private:
  SimDuration network_latency_;
  SimDuration service_time_;
  SimDuration jitter_max_;
  Rng rng_;
  DiskStats stats_;
};

}  // namespace omega
