#include "san/disk.h"

#include <algorithm>

#include "common/check.h"

namespace omega {

SimDisk::SimDisk(SimDuration network_latency, SimDuration service_time,
                 SimDuration jitter_max, std::uint64_t seed)
    : network_latency_(network_latency),
      service_time_(service_time),
      jitter_max_(jitter_max),
      rng_(seed) {
  OMEGA_CHECK(network_latency >= 0 && service_time >= 1 && jitter_max >= 0,
              "bad disk parameters");
}

SimDuration SimDisk::serve(SimTime now, bool is_write) {
  if (is_write) {
    ++stats_.writes;
  } else {
    ++stats_.reads;
  }
  const SimTime start = std::max(now, stats_.busy_until);
  const SimDuration queue_wait = start - now;
  stats_.total_queue_wait += static_cast<std::uint64_t>(queue_wait);
  const SimDuration service =
      service_time_ + (jitter_max_ > 0 ? rng_.uniform(0, jitter_max_) : 0);
  stats_.busy_until = start + service;
  return network_latency_ + queue_wait + service;
}

}  // namespace omega
