#include "san/replicated_san.h"

#include <algorithm>

namespace omega {

ReplicatedSanMemory::ReplicatedSanMemory(Layout layout,
                                         std::uint32_t num_processes,
                                         ReplicatedSanConfig config)
    : MemoryBackend(std::move(layout), num_processes),
      config_(config),
      disk_crashed_(config.num_disks, false),
      next_version_(this->layout().size(), 0),
      rng_(config.seed) {
  OMEGA_CHECK(config.num_disks >= 1, "need at least one disk");
  OMEGA_CHECK(config.omission_prob >= 0.0 && config.omission_prob < 1.0,
              "omission probability out of range");
  Rng seeder(config.seed ^ 0xFEED);
  disks_.reserve(config.num_disks);
  replicas_.resize(config.num_disks);
  for (std::uint32_t d = 0; d < config.num_disks; ++d) {
    disks_.emplace_back(config.network_latency, config.service_time,
                        config.jitter_max, seeder.next_u64());
    replicas_[d].resize(this->layout().size());
  }
}

void ReplicatedSanMemory::crash_disk(std::uint32_t d) {
  OMEGA_CHECK(d < disks_.size(), "bad disk " << d);
  OMEGA_CHECK(disks_alive() > 1 || disk_crashed_[d],
              "cannot crash the last disk");
  disk_crashed_[d] = true;
}

std::uint32_t ReplicatedSanMemory::disks_alive() const {
  std::uint32_t alive = 0;
  for (bool c : disk_crashed_) alive += c ? 0 : 1;
  return alive;
}

const DiskStats& ReplicatedSanMemory::disk_stats(std::uint32_t d) const {
  OMEGA_CHECK(d < disks_.size(), "bad disk " << d);
  return disks_[d].stats();
}

SimDuration ReplicatedSanMemory::access_cost(Cell /*c*/, bool is_write) {
  // Fan-out to every live replica in parallel; the access completes when the
  // slowest replica responds.
  SimDuration worst = 0;
  for (std::uint32_t d = 0; d < disks_.size(); ++d) {
    if (disk_crashed_[d]) continue;
    worst = std::max(worst, disks_[d].serve(now(), is_write));
  }
  return worst;
}

int ReplicatedSanMemory::pick_live_anchor() const {
  // The "controller retries one replica synchronously" guarantee: one live
  // disk, chosen uniformly, always participates in the access. A rotating
  // anchor (rather than a fixed one) is what lets replicas genuinely
  // diverge under omissions.
  std::uint32_t alive = disks_alive();
  OMEGA_CHECK(alive > 0, "no live disk");
  auto pick = static_cast<std::uint32_t>(
      rng_.uniform(0, static_cast<std::int64_t>(alive) - 1));
  for (std::uint32_t d = 0; d < disks_.size(); ++d) {
    if (disk_crashed_[d]) {
      continue;
    }
    if (pick == 0) return static_cast<int>(d);
    --pick;
  }
  OMEGA_CHECK(false, "unreachable");
  return -1;
}

std::uint64_t ReplicatedSanMemory::load(Cell c) const {
  // Read every reachable replica; adopt the highest version seen. At least
  // one live disk (the anchor) always responds.
  const int anchor = pick_live_anchor();
  std::uint64_t best_version = 0;
  std::uint64_t best_value = 0;
  bool any = false;
  std::uint64_t freshest = 0;
  for (std::uint32_t d = 0; d < disks_.size(); ++d) {
    if (disk_crashed_[d]) continue;
    freshest = std::max(freshest, replicas_[d][c.index].version);
    if (config_.omission_prob > 0.0 && static_cast<int>(d) != anchor &&
        rng_.bernoulli(config_.omission_prob)) {
      continue;  // this replica's response was lost
    }
    const Replica& r = replicas_[d][c.index];
    if (!any || r.version > best_version) {
      any = true;
      best_version = r.version;
      best_value = r.value;
    }
  }
  OMEGA_CHECK(any, "no live disk replica for cell " << c.index);
  if (best_version < freshest) ++stale_reads_;
  if (config_.read_repair) {
    // Anti-entropy: push the freshest observed replica back to every live
    // disk (the controller already has the data in hand).
    for (std::uint32_t d = 0; d < disks_.size(); ++d) {
      if (disk_crashed_[d]) continue;
      if (replicas_[d][c.index].version < best_version) {
        replicas_[d][c.index] = Replica{best_version, best_value};
      }
    }
  }
  return best_value;
}

void ReplicatedSanMemory::store(Cell c, std::uint64_t v) {
  const std::uint64_t version = ++next_version_[c.index];
  const int anchor = pick_live_anchor();
  bool all_reached = true;
  for (std::uint32_t d = 0; d < disks_.size(); ++d) {
    if (disk_crashed_[d]) continue;
    if (config_.omission_prob > 0.0 && static_cast<int>(d) != anchor &&
        rng_.bernoulli(config_.omission_prob)) {
      all_reached = false;  // replica missed this write
      continue;
    }
    replicas_[d][c.index] = Replica{version, v};
  }
  if (!all_reached) ++divergent_writes_;
}

MemoryFactory replicated_san_factory(ReplicatedSanConfig config) {
  return [config](Layout layout, std::uint32_t n) {
    return std::unique_ptr<MemoryBackend>(std::make_unique<ReplicatedSanMemory>(
        std::move(layout), n, config));
  };
}

}  // namespace omega
