// Access instrumentation. The paper's theorems are statements about *who
// accesses shared memory, how often, and how large values grow*:
//
//   Thm. 3/7  — eventually a single process writes (one variable);
//   Thm. 2/6  — boundedness of register domains;
//   Lemma 5/6 — the leader must write forever, others must read forever.
//
// So the measurement layer lives with the registers, not the algorithms:
// every read/write is counted per process and per cell, with high-water
// marks. Counters are relaxed atomics so the same instrumentation serves the
// single-threaded simulator and the std::thread runtime.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/check.h"
#include "common/ids.h"
#include "registers/cells.h"

namespace omega {

/// One shared-memory access, as seen by an observer.
struct AccessEvent {
  ProcessId pid = kNoProcess;
  Cell cell;
  std::uint64_t value = 0;
  SimTime when = 0;
  bool is_write = false;
};

/// Optional per-access hook (simulator-only: not thread-safe by contract).
class AccessObserver {
 public:
  virtual ~AccessObserver() = default;
  virtual void on_access(const AccessEvent& ev) = 0;
};

/// Plain-data copy of all counters at one instant; drivers diff snapshots to
/// get per-window rates ("who wrote during the last W ticks?").
struct InstrumentationSnapshot {
  std::vector<std::uint64_t> reads_by;   ///< per process
  std::vector<std::uint64_t> writes_by;  ///< per process
  std::vector<std::uint64_t> writes_to;    ///< per cell
  std::vector<std::uint64_t> high_water;   ///< per cell: max value ever stored
  std::vector<SimTime> last_write_by;      ///< per process; kNever if none
  std::uint64_t total_reads = 0;
  std::uint64_t total_writes = 0;
};

class Instrumentation {
 public:
  Instrumentation(std::uint32_t num_processes, std::uint32_t num_cells);

  void on_read(ProcessId pid, Cell c, std::uint64_t value, SimTime now);
  void on_write(ProcessId pid, Cell c, std::uint64_t value, SimTime now);

  std::uint64_t reads_by(ProcessId pid) const;
  std::uint64_t writes_by(ProcessId pid) const;
  std::uint64_t writes_to(Cell c) const;
  /// Largest value ever written to `c` (tracks domain growth, Thm. 2/6).
  std::uint64_t high_water(Cell c) const;
  SimTime last_write_by(ProcessId pid) const;

  InstrumentationSnapshot snapshot() const;

  /// Installs (or clears, with nullptr) the per-access observer.
  void set_observer(AccessObserver* obs) noexcept { observer_ = obs; }

  std::uint32_t num_processes() const noexcept {
    return static_cast<std::uint32_t>(per_process_.size());
  }
  std::uint32_t num_cells() const noexcept {
    return static_cast<std::uint32_t>(per_cell_.size());
  }

 private:
  // Padded to a cache line so per-thread counters do not false-share in the
  // std::thread runtime.
  struct alignas(64) ProcessCounters {
    std::atomic<std::uint64_t> reads{0};
    std::atomic<std::uint64_t> writes{0};
    std::atomic<SimTime> last_write{kNever};
  };
  struct CellCounters {
    std::atomic<std::uint64_t> writes{0};
    std::atomic<std::uint64_t> high_water{0};
  };

  std::vector<ProcessCounters> per_process_;
  std::vector<CellCounters> per_cell_;
  AccessObserver* observer_ = nullptr;
};

}  // namespace omega
