// A Cell names one atomic register in a flat address space. Algorithms never
// touch raw indices: they go through a `Layout` (layout.h) that maps the
// paper's named arrays/matrices (SUSPICIONS, PROGRESS, STOP, LAST, ...) to
// cells and records, per cell, who may write it and whether it is "critical"
// in the sense of assumption AWB1.
#pragma once

#include <compare>
#include <cstdint>

namespace omega {

/// Opaque handle to one shared atomic register.
struct Cell {
  std::uint32_t index = 0;

  friend auto operator<=>(const Cell&, const Cell&) = default;
};

}  // namespace omega
