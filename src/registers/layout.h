// Register layout: maps the paper's named register families to a flat cell
// space and carries the two per-cell model attributes the paper relies on:
//
//  * ownership — 1WnR registers have exactly one writer (its "owner", §2.1);
//    the §3.5 nWnR variant marks cells writable by anyone (`kAnyProcess`);
//  * criticality — assumption AWB1 constrains only accesses by a process to
//    its *critical* registers (§2.3), so experiments need to know which
//    writes count.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/check.h"
#include "common/ids.h"
#include "registers/cells.h"

namespace omega {

/// How a group's cells map to owners.
enum class OwnerRule : std::uint8_t {
  kRowOwner,  ///< cell (r, c) owned by process r (e.g. SUSPICIONS[r][c])
  kColOwner,  ///< cell (r, c) owned by process c (e.g. LAST[r][c])
  kAny,       ///< multi-writer (nWnR variant of §3.5)
};

/// Identifier of a register group within a Layout.
using GroupId = std::uint32_t;

/// A named rectangular family of registers (arrays are 1-column matrices).
struct RegisterGroup {
  std::string name;
  std::uint32_t first = 0;  ///< flat index of cell (0, 0)
  std::uint32_t rows = 0;
  std::uint32_t cols = 0;  ///< 1 for arrays
  OwnerRule rule = OwnerRule::kRowOwner;
  bool critical = false;
};

class Layout;

/// Builds a Layout incrementally; each algorithm's memory map is declared in
/// one place (see e.g. core/omega_write_efficient.cpp).
class LayoutBuilder {
 public:
  /// Array `name[n]`; cell i owned by process i (kRowOwner) or anyone (kAny).
  GroupId add_array(std::string name, std::uint32_t n, OwnerRule rule,
                    bool critical);

  /// Matrix `name[rows][cols]`.
  GroupId add_matrix(std::string name, std::uint32_t rows, std::uint32_t cols,
                     OwnerRule rule, bool critical);

  /// Bulk spill region `name[rows][cols]`: multi-writer, never critical.
  /// For data plane buffers that ride alongside the model's registers
  /// (e.g. a replicated log's per-slot batch buffers) — AWB1 accounting
  /// ignores them, and any process may write any cell.
  GroupId add_buffer(std::string name, std::uint32_t rows, std::uint32_t cols);

  Layout build();

 private:
  std::vector<RegisterGroup> groups_;
  /// Names seen so far; a replicated log declares two groups per slot, so
  /// the duplicate check must not be a linear scan per declaration.
  std::unordered_set<std::string> names_;
  std::uint32_t next_ = 0;
};

/// Immutable register map. Cheap to copy (shared groups are small).
class Layout {
 public:
  Layout() = default;

  /// Cell of an array group.
  Cell cell(GroupId g, std::uint32_t i) const;
  /// Cell of a matrix group.
  Cell cell(GroupId g, std::uint32_t r, std::uint32_t c) const;

  std::uint32_t size() const noexcept { return size_; }
  std::size_t num_groups() const noexcept { return groups_.size(); }
  const RegisterGroup& group(GroupId g) const;

  /// Which process may write `c` (`kAnyProcess` for nWnR cells).
  ProcessId owner(Cell c) const;
  /// Whether `c` is critical in the AWB1 sense.
  bool is_critical(Cell c) const;
  /// Group that contains `c`.
  GroupId group_of(Cell c) const;
  /// Human-readable name, e.g. "SUSPICIONS[2][5]" (0-based indices).
  std::string cell_name(Cell c) const;
  /// Group lookup by name; returns true and sets `out` if present.
  bool find_group(const std::string& name, GroupId& out) const;

 private:
  friend class LayoutBuilder;
  std::vector<RegisterGroup> groups_;
  std::uint32_t size_ = 0;
};

}  // namespace omega
