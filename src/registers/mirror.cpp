#include "registers/mirror.h"

#include "common/check.h"

namespace omega {

MirroredMemory::MirroredMemory(Layout layout, std::uint32_t num_processes,
                               std::uint64_t local_mask)
    : MemoryBackend(std::move(layout), num_processes),
      cells_(this->layout().size()),
      local_mask_(local_mask == 0 ? all_local_mask(num_processes)
                                  : local_mask) {
  OMEGA_CHECK(num_processes <= 64,
              "mirror locality mask covers 64 replicas, group has "
                  << num_processes);
  for (ProcessId p = 0; p < num_processes; ++p) {
    if (!is_local(p)) has_remote_ = true;
  }
}

bool MirroredMemory::should_push(Cell c) const {
  if (!has_remote_) return false;
  const ProcessId owner = layout().owner(c);
  if (owner == kAnyProcess) return true;  // data-plane spill, sealer's node
  return is_local(owner);
}

void MirroredMemory::apply_push(Cell c, std::uint64_t v) {
  OMEGA_CHECK(c.index < layout().size(), "pushed cell out of range");
  cells_.store(c.index, v);
}

std::uint64_t MirroredMemory::load(Cell c) const { return cells_.load(c.index); }

void MirroredMemory::store(Cell c, std::uint64_t v) {
  cells_.store(c.index, v);
}

}  // namespace omega
