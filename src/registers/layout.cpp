#include "registers/layout.h"

#include <algorithm>

#include "common/check.h"

namespace omega {

GroupId LayoutBuilder::add_array(std::string name, std::uint32_t n,
                                 OwnerRule rule, bool critical) {
  return add_matrix(std::move(name), n, 1, rule, critical);
}

GroupId LayoutBuilder::add_matrix(std::string name, std::uint32_t rows,
                                  std::uint32_t cols, OwnerRule rule,
                                  bool critical) {
  OMEGA_CHECK(rows > 0 && cols > 0, "empty register group " << name);
  OMEGA_CHECK(rows <= kMaxProcesses && cols <= kMaxProcesses,
              "group " << name << " exceeds kMaxProcesses");
  OMEGA_CHECK(names_.insert(name).second,
              "duplicate register group " << name);
  RegisterGroup g;
  g.name = std::move(name);
  g.first = next_;
  g.rows = rows;
  g.cols = cols;
  g.rule = rule;
  g.critical = critical;
  next_ += rows * cols;
  groups_.push_back(std::move(g));
  return static_cast<GroupId>(groups_.size() - 1);
}

GroupId LayoutBuilder::add_buffer(std::string name, std::uint32_t rows,
                                  std::uint32_t cols) {
  return add_matrix(std::move(name), rows, cols, OwnerRule::kAny,
                    /*critical=*/false);
}

Layout LayoutBuilder::build() {
  Layout l;
  l.groups_ = groups_;
  l.size_ = next_;
  return l;
}

Cell Layout::cell(GroupId g, std::uint32_t i) const {
  const auto& grp = group(g);
  OMEGA_CHECK(grp.cols == 1, "group " << grp.name << " is a matrix");
  OMEGA_CHECK(i < grp.rows, grp.name << "[" << i << "] out of range");
  return Cell{grp.first + i};
}

Cell Layout::cell(GroupId g, std::uint32_t r, std::uint32_t c) const {
  const auto& grp = group(g);
  OMEGA_CHECK(r < grp.rows && c < grp.cols,
              grp.name << "[" << r << "][" << c << "] out of range");
  return Cell{grp.first + r * grp.cols + c};
}

const RegisterGroup& Layout::group(GroupId g) const {
  OMEGA_CHECK(g < groups_.size(), "bad group id " << g);
  return groups_[g];
}

GroupId Layout::group_of(Cell c) const {
  OMEGA_CHECK(c.index < size_, "cell " << c.index << " out of range");
  // Groups are contiguous and ordered by `first`; find the last group whose
  // first offset is <= the cell index.
  auto it = std::upper_bound(
      groups_.begin(), groups_.end(), c.index,
      [](std::uint32_t idx, const RegisterGroup& g) { return idx < g.first; });
  OMEGA_CHECK(it != groups_.begin(), "cell before first group");
  return static_cast<GroupId>(std::distance(groups_.begin(), it) - 1);
}

ProcessId Layout::owner(Cell c) const {
  const auto& g = groups_[group_of(c)];
  const std::uint32_t off = c.index - g.first;
  switch (g.rule) {
    case OwnerRule::kRowOwner:
      return off / g.cols;
    case OwnerRule::kColOwner:
      return off % g.cols;
    case OwnerRule::kAny:
      return kAnyProcess;
  }
  OMEGA_CHECK(false, "unreachable owner rule");
  return kNoProcess;
}

bool Layout::is_critical(Cell c) const { return groups_[group_of(c)].critical; }

std::string Layout::cell_name(Cell c) const {
  const auto& g = groups_[group_of(c)];
  const std::uint32_t off = c.index - g.first;
  std::string out = g.name;
  if (g.cols == 1) {
    out += "[" + std::to_string(off) + "]";
  } else {
    out += "[" + std::to_string(off / g.cols) + "][" +
           std::to_string(off % g.cols) + "]";
  }
  return out;
}

bool Layout::find_group(const std::string& name, GroupId& out) const {
  for (std::size_t i = 0; i < groups_.size(); ++i) {
    if (groups_[i].name == name) {
      out = static_cast<GroupId>(i);
      return true;
    }
  }
  return false;
}

}  // namespace omega
