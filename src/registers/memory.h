// Memory backends. `MemoryBackend` is the single access path for algorithms
// and drivers; it enforces the 1WnR ownership discipline of the model (§2.1)
// and routes every access through the instrumentation layer. Concrete
// storage:
//
//   * SimMemory      — plain cells; the discrete-event simulator serializes
//                      all accesses, so atomicity/linearizability hold
//                      trivially (the linearization point is the event's
//                      tick).
//   * AtomicMemory   — std::atomic cells on real threads (src/rt/).
//   * SanMemory      — SimMemory + per-access disk latency (src/san/).
//   * MirroredMemory — AtomicMemory cells where remote owners' values arrive
//                      by pushed updates (src/registers/mirror.h) — the
//                      multi-process transport seam.
//
// Transport seam: a backend may carry a *write observer* that fires after
// every store made through the public API (write() and poke() alike, so
// data-plane spill regions replicate with the model's registers). The
// observer runs on the writing thread, which is the cell owner's execution
// stream — so observing in call order gives exactly the single-writer FIFO
// order a push-based mirror needs to preserve regular register semantics.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/ids.h"
#include "registers/instrumentation.h"
#include "registers/layout.h"

namespace omega {

class MemoryBackend {
 public:
  MemoryBackend(Layout layout, std::uint32_t num_processes);
  virtual ~MemoryBackend() = default;

  MemoryBackend(const MemoryBackend&) = delete;
  MemoryBackend& operator=(const MemoryBackend&) = delete;

  const Layout& layout() const noexcept { return layout_; }
  std::uint32_t num_processes() const noexcept { return num_processes_; }

  /// Atomic read of `c` by `reader`. Instrumented.
  std::uint64_t read(ProcessId reader, Cell c);

  /// Atomic write of `c` by `writer`. Enforces ownership: a store to a 1WnR
  /// cell by a non-owner throws InvariantViolation. Instrumented.
  void write(ProcessId writer, Cell c, std::uint64_t v);

  /// Uninstrumented, unchecked access for initialization (the algorithms are
  /// self-stabilizing w.r.t. initial register contents — paper footnote 7 —
  /// so tests poke arbitrary garbage) and post-mortem inspection. Pokes
  /// still fire the write observer: data-plane buffers written through
  /// poke (the batch spill ring) must replicate like any other cell.
  std::uint64_t peek(Cell c) const { return load(c); }
  void poke(Cell c, std::uint64_t v) {
    store(c, v);
    if (observer_) observer_(c, v);
  }

  /// Observer fired (on the writing thread, after the store is visible
  /// locally) for every store made through write()/poke(). One writer per
  /// 1WnR cell ⇒ the observed per-cell sequence is the owner's program
  /// order; forwarding it FIFO preserves per-cell monotonicity (regular
  /// semantics) at every mirror. Install before the backend is shared
  /// across threads; empty function clears.
  using WriteObserver = std::function<void(Cell, std::uint64_t)>;
  void set_write_observer(WriteObserver obs) { observer_ = std::move(obs); }
  bool has_write_observer() const noexcept {
    return static_cast<bool>(observer_);
  }
  /// The currently installed observer (empty if none) — lets a layer wrap
  /// an already-installed observer in a chain (e.g. the WAL journaling
  /// observer wraps the mirror-push observer).
  const WriteObserver& write_observer() const noexcept { return observer_; }

  Instrumentation& instr() noexcept { return instr_; }
  const Instrumentation& instr() const noexcept { return instr_; }

  /// Clock used to timestamp instrumentation events. Drivers install their
  /// notion of "now"; the default counts accesses.
  void set_clock(std::function<SimTime()> clock);

  /// Extra latency a driver should charge for this access (SAN model);
  /// the base backends are free.
  virtual SimDuration access_cost(Cell c, bool is_write);

 protected:
  virtual std::uint64_t load(Cell c) const = 0;
  virtual void store(Cell c, std::uint64_t v) = 0;

  SimTime now() const { return clock_ ? clock_() : fallback_ticks_; }

 private:
  Layout layout_;
  std::uint32_t num_processes_;
  Instrumentation instr_;
  std::function<SimTime()> clock_;
  SimTime fallback_ticks_ = 0;
  WriteObserver observer_;
};

/// Plain single-threaded storage for the discrete-event simulator.
class SimMemory final : public MemoryBackend {
 public:
  SimMemory(Layout layout, std::uint32_t num_processes);

 protected:
  std::uint64_t load(Cell c) const override;
  void store(Cell c, std::uint64_t v) override;

 private:
  std::vector<std::uint64_t> cells_;
};

}  // namespace omega
