#include "registers/instrumentation.h"

#include "common/check.h"

namespace omega {

Instrumentation::Instrumentation(std::uint32_t num_processes,
                                 std::uint32_t num_cells)
    : per_process_(num_processes), per_cell_(num_cells) {
  OMEGA_CHECK(num_processes > 0, "instrumentation needs >= 1 process");
}

void Instrumentation::on_read(ProcessId pid, Cell c, std::uint64_t value,
                              SimTime now) {
  OMEGA_CHECK(pid < per_process_.size(), "bad reader id " << pid);
  per_process_[pid].reads.fetch_add(1, std::memory_order_relaxed);
  if (observer_ != nullptr) {
    observer_->on_access(AccessEvent{pid, c, value, now, /*is_write=*/false});
  }
}

void Instrumentation::on_write(ProcessId pid, Cell c, std::uint64_t value,
                               SimTime now) {
  OMEGA_CHECK(pid < per_process_.size(), "bad writer id " << pid);
  OMEGA_CHECK(c.index < per_cell_.size(), "bad cell " << c.index);
  auto& p = per_process_[pid];
  p.writes.fetch_add(1, std::memory_order_relaxed);
  p.last_write.store(now, std::memory_order_relaxed);
  auto& cc = per_cell_[c.index];
  cc.writes.fetch_add(1, std::memory_order_relaxed);
  // CAS-max keeps high-water correct under concurrent nWnR writers.
  std::uint64_t cur = cc.high_water.load(std::memory_order_relaxed);
  while (value > cur && !cc.high_water.compare_exchange_weak(
                            cur, value, std::memory_order_relaxed)) {
  }
  if (observer_ != nullptr) {
    observer_->on_access(AccessEvent{pid, c, value, now, /*is_write=*/true});
  }
}

std::uint64_t Instrumentation::reads_by(ProcessId pid) const {
  OMEGA_CHECK(pid < per_process_.size(), "bad id " << pid);
  return per_process_[pid].reads.load(std::memory_order_relaxed);
}

std::uint64_t Instrumentation::writes_by(ProcessId pid) const {
  OMEGA_CHECK(pid < per_process_.size(), "bad id " << pid);
  return per_process_[pid].writes.load(std::memory_order_relaxed);
}

std::uint64_t Instrumentation::writes_to(Cell c) const {
  OMEGA_CHECK(c.index < per_cell_.size(), "bad cell " << c.index);
  return per_cell_[c.index].writes.load(std::memory_order_relaxed);
}

std::uint64_t Instrumentation::high_water(Cell c) const {
  OMEGA_CHECK(c.index < per_cell_.size(), "bad cell " << c.index);
  return per_cell_[c.index].high_water.load(std::memory_order_relaxed);
}

SimTime Instrumentation::last_write_by(ProcessId pid) const {
  OMEGA_CHECK(pid < per_process_.size(), "bad id " << pid);
  return per_process_[pid].last_write.load(std::memory_order_relaxed);
}

InstrumentationSnapshot Instrumentation::snapshot() const {
  InstrumentationSnapshot s;
  s.reads_by.reserve(per_process_.size());
  s.writes_by.reserve(per_process_.size());
  s.last_write_by.reserve(per_process_.size());
  for (const auto& p : per_process_) {
    const auto r = p.reads.load(std::memory_order_relaxed);
    const auto w = p.writes.load(std::memory_order_relaxed);
    s.reads_by.push_back(r);
    s.writes_by.push_back(w);
    s.last_write_by.push_back(p.last_write.load(std::memory_order_relaxed));
    s.total_reads += r;
    s.total_writes += w;
  }
  s.writes_to.reserve(per_cell_.size());
  s.high_water.reserve(per_cell_.size());
  for (const auto& c : per_cell_) {
    s.writes_to.push_back(c.writes.load(std::memory_order_relaxed));
    s.high_water.push_back(c.high_water.load(std::memory_order_relaxed));
  }
  return s;
}

}  // namespace omega
