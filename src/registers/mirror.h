// MirroredMemory — the multi-process register backend.
//
// The paper's model is shared-memory 1WnR atomic registers; every backend
// so far keeps all n replicas of a group in one address space. This one
// splits a group across OS processes ("nodes"): each node holds a complete
// cell array, but only the cells owned by *locally hosted* replicas are
// written here — every other owner's cells are refreshed by updates pushed
// over TCP (net/register_peer.h) and applied through apply_push().
//
// Semantics. A 1WnR cell has exactly one writer, and that writer's stores
// reach each mirror over one FIFO stream, applied in order. Each mirror
// therefore sees a *prefix* of the owner's write sequence: reads are
// per-cell monotonic and never invent values — regular registers with
// bounded staleness. That is exactly the register grade the paper's
// timeliness analysis needs (the heartbeat/counter arguments use
// monotonicity, never read-read atomicity), so the Ω algorithms run
// unchanged. Cross-cell ordering of a single owner is also preserved
// (one stream, applied in order), which is what the batch spill ring
// relies on: the sealer pokes a slot's rows before its seal cell, so a
// mirror that can see the seal already has the rows.
//
// Locality is a per-process bitmask over replica ids (svc::GroupSpec's
// local_mask uses the same encoding; n <= 64 everywhere in svc). With all
// replicas local, no push stream exists and MirroredMemory is
// register-for-register AtomicMemory — same storage, same orders — so the
// single-process path is unaffected (tests pin this down).
//
// Threading: load/store race apply_push (IO thread) on the same cells;
// AtomicCellArray makes every access seq_cst. Multi-writer (kAny) cells
// are written by whichever node's pump owns them by convention (the batch
// ring's per-sealer banks); apply_push does not re-check ownership — the
// transport only forwards what a peer's owner actually wrote.
#pragma once

#include <cstdint>

#include "registers/memory.h"
#include "rt/atomic_memory.h"

namespace omega {

/// "Every replica is local" mask for `n` replicas (n <= 64).
inline std::uint64_t all_local_mask(std::uint32_t n) {
  return n >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << n) - 1);
}

class MirroredMemory final : public MemoryBackend {
 public:
  /// `local_mask` — bit p set iff replica p executes in this process.
  /// 0 is treated as "all local" (the svc convention).
  MirroredMemory(Layout layout, std::uint32_t num_processes,
                 std::uint64_t local_mask);

  bool is_local(ProcessId p) const noexcept {
    return p < 64 && ((local_mask_ >> p) & 1u) != 0;
  }
  std::uint64_t local_mask() const noexcept { return local_mask_; }
  /// True iff some replica lives in another process (a push stream exists).
  bool has_remote() const noexcept { return has_remote_; }

  /// Whether a store to `c` by this process must be forwarded to peers:
  /// locally-owned 1WnR cells always; kAny cells too (data-plane spill —
  /// only ever written by the process that currently seals them).
  bool should_push(Cell c) const;

  /// Applies one pushed update from a remote owner's FIFO stream. IO
  /// thread. Never fires the write observer (no echo back to the wire)
  /// and never instruments (the write was instrumented at its origin).
  void apply_push(Cell c, std::uint64_t v);

  /// Invoked first thing in the destructor — the hook that unregisters
  /// this mirror from its transport, so a retired group can never leave
  /// a dangling pointer behind in the push path.
  void set_teardown(std::function<void()> fn) { teardown_ = std::move(fn); }

  ~MirroredMemory() override {
    if (teardown_) teardown_();
  }

 protected:
  std::uint64_t load(Cell c) const override;
  void store(Cell c, std::uint64_t v) override;

 private:
  AtomicCellArray cells_;
  std::uint64_t local_mask_;
  bool has_remote_ = false;
  std::function<void()> teardown_;
};

}  // namespace omega
