#include "registers/memory.h"

#include "common/check.h"

namespace omega {

MemoryBackend::MemoryBackend(Layout layout, std::uint32_t num_processes)
    : layout_(std::move(layout)),
      num_processes_(num_processes),
      instr_(num_processes, layout_.size()) {
  OMEGA_CHECK(num_processes > 0 && num_processes <= kMaxProcesses,
              "bad process count " << num_processes);
}

std::uint64_t MemoryBackend::read(ProcessId reader, Cell c) {
  OMEGA_CHECK(reader < num_processes_, "bad reader " << reader);
  OMEGA_CHECK(c.index < layout_.size(), "cell out of range");
  ++fallback_ticks_;
  const std::uint64_t v = load(c);
  instr_.on_read(reader, c, v, now());
  return v;
}

void MemoryBackend::write(ProcessId writer, Cell c, std::uint64_t v) {
  OMEGA_CHECK(writer < num_processes_, "bad writer " << writer);
  OMEGA_CHECK(c.index < layout_.size(), "cell out of range");
  const ProcessId owner = layout_.owner(c);
  OMEGA_CHECK(owner == kAnyProcess || owner == writer,
              "1WnR violation: p" << writer << " writing "
                                  << layout_.cell_name(c) << " owned by p"
                                  << owner);
  ++fallback_ticks_;
  store(c, v);
  if (observer_) observer_(c, v);
  instr_.on_write(writer, c, v, now());
}

void MemoryBackend::set_clock(std::function<SimTime()> clock) {
  clock_ = std::move(clock);
}

SimDuration MemoryBackend::access_cost(Cell /*c*/, bool /*is_write*/) {
  return 0;
}

SimMemory::SimMemory(Layout layout, std::uint32_t num_processes)
    : MemoryBackend(std::move(layout), num_processes),
      cells_(this->layout().size(), 0) {}

std::uint64_t SimMemory::load(Cell c) const { return cells_[c.index]; }

void SimMemory::store(Cell c, std::uint64_t v) { cells_[c.index] = v; }

}  // namespace omega
