// Health engine + background sampler: the judgement layer on top of the
// time-series black box (time_series.h). Subsystems register declarative
// rules — pure functions of the TimeSeries — and the sampler evaluates
// every rule once per tick (~250ms), producing a per-rule and overall
// Health{kOk,kDegraded,kCritical} verdict with human-readable reasons.
// That verdict is what the v1.5 HEALTH frame serves and what the
// roadmap's scenario engine asserts against, instead of re-deriving
// "is this node making progress" from raw counters in every scenario.
//
// Flapping control: a rule's raw verdict must stay bad for
// `degrade_after` consecutive ticks before it publishes, and stay ok
// for `recover_after` ticks before it clears (escalation kDegraded →
// kCritical is immediate — worse news does not wait). Every published
// transition is recorded to the flight recorder
// (TraceEvent::kHealthTransition) and counted in
// obs.health_transitions, so a flapping rule is itself visible.
//
// The Sampler owns the tick thread, the TimeSeries and the
// HealthMonitor; LeaderServer starts one per process-facing server and
// registers itself as the flight recorder's black-box renderer so every
// trace dump carries the last ~60s of metric history.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/time_series.h"

namespace omega::obs {

enum class Health : std::uint8_t {
  kOk = 0,
  kDegraded = 1,
  kCritical = 2,
};

const char* health_name(Health h) noexcept;

/// One declarative rule. `eval` inspects the time series and returns the
/// raw verdict for this tick, filling `*reason` when not ok; it must not
/// block (it runs on the sampler tick, holding no monitor locks).
struct HealthRule {
  std::string name;
  std::function<Health(const TimeSeries&, std::string* reason)> eval;
  /// Consecutive bad ticks before the rule publishes (>= 1).
  std::uint32_t degrade_after = 2;
  /// Consecutive ok ticks before a published rule clears (>= 1).
  std::uint32_t recover_after = 4;
};

/// Published state of one rule at the last evaluated tick.
struct RuleState {
  std::string name;
  Health published = Health::kOk;  ///< hysteresis-filtered verdict
  Health raw = Health::kOk;        ///< this tick's unfiltered verdict
  std::string reason;              ///< last non-ok reason
};

struct HealthReport {
  Health overall = Health::kOk;  ///< max over published rule states
  std::uint64_t ticks = 0;       ///< evaluations so far
  std::vector<RuleState> rules;  ///< every rule, registration order
};

class HealthMonitor {
 public:
  HealthMonitor();

  /// Registers a rule. Callable any time; rules are never removed.
  void add_rule(HealthRule rule);

  /// Evaluates every rule against `ts` (one sampler tick).
  void evaluate(const TimeSeries& ts);

  HealthReport report() const;

 private:
  mutable std::mutex mu_;
  struct Entry {
    HealthRule rule;
    RuleState state;
    std::uint32_t bad_streak = 0;
    std::uint32_t ok_streak = 0;
  };
  std::vector<Entry> entries_;
  std::uint64_t ticks_ = 0;
  Counter* transitions_;  ///< obs.health_transitions
};

struct SamplerConfig {
  std::uint32_t period_ms = 250;
  std::uint32_t capacity = 240;  ///< ring points per metric (~60s)
};

/// Background sampler: every period scrapes the registry into the
/// TimeSeries, evaluates health, and invokes the tick listener (the
/// v1.5 METRICS_EVENT fan-out hook). While started it is registered as
/// a flight-recorder black-box renderer, so dump_trace() writes the
/// metric history next to every trace file.
class Sampler {
 public:
  explicit Sampler(SamplerConfig cfg = {});
  ~Sampler();

  TimeSeries& series() { return series_; }
  const TimeSeries& series() const { return series_; }
  HealthMonitor& health() { return health_; }
  const HealthMonitor& health() const { return health_; }

  /// Called after every tick, on the sampler thread, outside all
  /// sampler locks. Set before start().
  using TickListener =
      std::function<void(std::uint64_t tick,
                         const std::vector<MetricSample>& scrape,
                         const HealthReport& report)>;
  void set_tick_listener(TickListener fn);

  void start();
  void stop();

  /// One synchronous tick on the calling thread (tests; also usable
  /// before start() to seed the series). Returns the tick number.
  std::uint64_t sample_now();

 private:
  void run();
  std::uint64_t tick();

  const SamplerConfig cfg_;
  TimeSeries series_;
  HealthMonitor health_;
  TickListener listener_;
  Histogram* sample_hist_;  ///< obs.sample_ns — per-tick cost

  std::mutex run_mu_;
  std::condition_variable run_cv_;
  bool stop_requested_ = false;
  bool started_ = false;
  std::thread thread_;
  std::uint64_t blackbox_id_ = 0;
  std::atomic<std::uint64_t> tick_no_{0};
};

}  // namespace omega::obs
