#include "obs/time_series.h"

#include <algorithm>
#include <sstream>

namespace omega::obs {

namespace {
// "Whole ring" window for render_text: large enough to always reach the
// oldest stored point, small enough that cutoff math cannot overflow.
constexpr std::int64_t kFullWindowMs = std::int64_t{1} << 40;
}  // namespace

TimeSeries::TimeSeries(std::uint32_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

void TimeSeries::record(const std::vector<MetricSample>& scrape,
                        std::int64_t wall_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  ++ticks_;
  for (const MetricSample& m : scrape) {
    Series& s = series_[m.name];
    s.kind = m.kind;
    TsPoint p;
    p.wall_ms = wall_ms;
    p.value = m.value;
    p.sum = m.sum;
    p.buckets = m.buckets;
    if (s.ring.size() < capacity_) {
      s.ring.push_back(std::move(p));
    } else {
      s.ring[s.head % capacity_] = std::move(p);
    }
    ++s.head;
  }
}

std::uint64_t TimeSeries::ticks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ticks_;
}

const TsPoint* TimeSeries::point(const Series& s,
                                 std::uint64_t logical) const {
  return &s.ring[logical % capacity_];
}

bool TimeSeries::window_edges(const Series& s, std::int64_t window_ms,
                              const TsPoint** oldest,
                              const TsPoint** newest) const {
  const std::uint64_t n = s.ring.size();
  if (n < 2) return false;
  const std::uint64_t first = s.head - n;
  const TsPoint* nw = point(s, s.head - 1);
  const std::int64_t cutoff = nw->wall_ms - window_ms;
  // Oldest stored point still inside the window; the ring is in
  // recording order so the scan stops at the first hit.
  const TsPoint* old = nullptr;
  for (std::uint64_t i = first; i + 1 < s.head; ++i) {
    const TsPoint* p = point(s, i);
    if (p->wall_ms >= cutoff) {
      old = p;
      break;
    }
  }
  if (old == nullptr) return false;  // only the newest point qualifies
  *oldest = old;
  *newest = nw;
  return true;
}

std::int64_t TimeSeries::span_ms(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = series_.find(name);
  if (it == series_.end() || it->second.ring.size() < 2) return 0;
  const Series& s = it->second;
  return point(s, s.head - 1)->wall_ms -
         point(s, s.head - s.ring.size())->wall_ms;
}

bool TimeSeries::latest(const std::string& name, TsPoint* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = series_.find(name);
  if (it == series_.end() || it->second.ring.empty()) return false;
  if (out != nullptr) *out = *point(it->second, it->second.head - 1);
  return true;
}

std::int64_t TimeSeries::latest_value(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = series_.find(name);
  if (it == series_.end() || it->second.ring.empty()) return 0;
  return point(it->second, it->second.head - 1)->value;
}

std::int64_t TimeSeries::delta(const std::string& name,
                               std::int64_t window_ms) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = series_.find(name);
  if (it == series_.end()) return 0;
  const TsPoint* a = nullptr;
  const TsPoint* b = nullptr;
  if (!window_edges(it->second, window_ms, &a, &b)) return 0;
  return b->value - a->value;
}

double TimeSeries::rate(const std::string& name,
                        std::int64_t window_ms) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = series_.find(name);
  if (it == series_.end()) return 0.0;
  const TsPoint* a = nullptr;
  const TsPoint* b = nullptr;
  if (!window_edges(it->second, window_ms, &a, &b)) return 0.0;
  const std::int64_t dt_ms = b->wall_ms - a->wall_ms;
  if (dt_ms <= 0) return 0.0;
  return static_cast<double>(b->value - a->value) * 1000.0 /
         static_cast<double>(dt_ms);
}

namespace {

/// Per-bucket difference of two cumulative sparse bucket lists (both
/// ascending): the histogram of samples recorded between the two points.
std::vector<std::pair<std::uint8_t, std::uint64_t>> diff_buckets(
    const std::vector<std::pair<std::uint8_t, std::uint64_t>>& newer,
    const std::vector<std::pair<std::uint8_t, std::uint64_t>>& older) {
  std::vector<std::pair<std::uint8_t, std::uint64_t>> out;
  std::size_t j = 0;
  for (const auto& [b, n] : newer) {
    std::uint64_t base = 0;
    while (j < older.size() && older[j].first < b) ++j;
    if (j < older.size() && older[j].first == b) base = older[j].second;
    if (n > base) out.emplace_back(b, n - base);
  }
  return out;
}

}  // namespace

std::uint64_t TimeSeries::windowed_quantile(const std::string& name,
                                            std::int64_t window_ms,
                                            double q) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = series_.find(name);
  if (it == series_.end() ||
      it->second.kind != MetricSample::Kind::kHistogram) {
    return 0;
  }
  const TsPoint* a = nullptr;
  const TsPoint* b = nullptr;
  if (!window_edges(it->second, window_ms, &a, &b)) return 0;
  MetricSample window;
  window.kind = MetricSample::Kind::kHistogram;
  window.value = b->value - a->value;
  window.buckets = diff_buckets(b->buckets, a->buckets);
  return window.quantile(q);
}

std::int64_t TimeSeries::windowed_count(const std::string& name,
                                        std::int64_t window_ms) const {
  return delta(name, window_ms);  // histogram `value` is the count
}

std::vector<std::int64_t> TimeSeries::values(
    const std::string& name, std::uint32_t max_points) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = series_.find(name);
  std::vector<std::int64_t> out;
  if (it == series_.end()) return out;
  const Series& s = it->second;
  const std::uint64_t n =
      std::min<std::uint64_t>(s.ring.size(), max_points);
  out.reserve(n);
  for (std::uint64_t i = s.head - n; i < s.head; ++i) {
    out.push_back(point(s, i)->value);
  }
  return out;
}

std::vector<std::string> TimeSeries::names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(series_.size());
  for (const auto& [name, s] : series_) {
    (void)s;
    out.push_back(name);
  }
  return out;
}

std::string TimeSeries::render_text() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  os << "# omega time-series black box\n# ticks: " << ticks_
     << " capacity: " << capacity_ << '\n';
  for (const auto& [name, s] : series_) {
    if (s.ring.empty()) continue;
    const TsPoint* nw = point(s, s.head - 1);
    os << name << ' ';
    const TsPoint* a = nullptr;
    const TsPoint* b = nullptr;
    const bool windowed = window_edges(s, kFullWindowMs, &a, &b);
    const std::int64_t span =
        windowed ? b->wall_ms - a->wall_ms : 0;
    switch (s.kind) {
      case MetricSample::Kind::kCounter:
      case MetricSample::Kind::kGauge:
        os << (s.kind == MetricSample::Kind::kCounter ? "counter"
                                                      : "gauge")
           << " points=" << s.ring.size() << " span_ms=" << span
           << " last=" << nw->value;
        if (windowed) {
          const std::int64_t d = b->value - a->value;
          os << " delta=" << d;
          if (span > 0) {
            os << " rate_per_s="
               << static_cast<double>(d) * 1000.0 /
                      static_cast<double>(span);
          }
        }
        break;
      case MetricSample::Kind::kHistogram: {
        os << "histogram points=" << s.ring.size() << " span_ms=" << span
           << " count=" << nw->value;
        if (windowed) {
          MetricSample w;
          w.kind = MetricSample::Kind::kHistogram;
          w.value = b->value - a->value;
          w.buckets = diff_buckets(b->buckets, a->buckets);
          os << " window_count=" << w.value << " window_p50=" << w.quantile(0.5)
             << " window_p99=" << w.quantile(0.99);
        }
        break;
      }
    }
    os << "\n  recent:";
    const std::uint64_t tail = std::min<std::uint64_t>(s.ring.size(), 20);
    for (std::uint64_t i = s.head - tail; i < s.head; ++i) {
      os << ' ' << point(s, i)->value;
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace omega::obs
