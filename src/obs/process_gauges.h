// Standard process-health gauges, registered once per process so every
// METRICS scrape (and omega_top) shows basic liveness next to the stage
// latencies:
//   proc.uptime_s    seconds since the first registration call
//   proc.rss_bytes   resident set size, from /proc/self/statm
//   proc.open_fds    open descriptor count, from /proc/self/fd
//
// register_process_gauges() is idempotent — SmrNode and LeaderServer
// both call it at startup and a process embedding both gets one set of
// gauges, not a doubled sum.
#pragma once

namespace omega::obs {

void register_process_gauges();

}  // namespace omega::obs
