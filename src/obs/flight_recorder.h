// Flight recorder: an always-on, per-thread ring of timestamped protocol
// events, cheap enough to leave enabled on every hot path (one relaxed
// ring-slot write, no locks, no allocation), dumped as a merged
// time-ordered text trace when something goes wrong — a mirror-stall
// watchdog fires, a failover displaces sealed batches, or a test/tool
// asks explicitly. The dump answers "what were the last few milliseconds
// of protocol activity on this node" after the fact, which logs sampled
// at human rates cannot.
//
// Causal tracing: events may additionally carry a 64-bit trace-id range
// (`t_lo`..`t_hi`) naming the client-minted request ids involved —
// a single id for per-request events, the first/last ids of a batch for
// sealed/decided/applied events. Rings timestamp with steady_clock, but
// the per-process CLOCK_REALTIME↔steady offset is captured once at
// startup (realtime_offset_ns()) and emitted as a dump header line, so
// dumps from different processes merge onto one wall-clock timeline.
//
// Threading: each thread records into its own fixed-size ring of relaxed
// std::atomic<u64> fields (TSan-clean by construction). The dumper walks
// every ring without stopping writers, so an event being overwritten
// concurrently can surface with mixed fields — the trace is best-effort
// forensics, not a journal. Rings are owned by shared_ptr and outlive
// their threads, so short-lived threads' tails stay dumpable; once an
// exited thread's tail has been harvested by snapshot_trace() (every
// dump and every remote TRACE_DUMP scrape goes through it) the ring is
// pruned, so thread churn cannot grow the recorder without bound. The
// live ring count is exported as the obs.recorder_rings gauge.
//
// Dump destination: $OMEGA_TRACE_DIR (or set_trace_dir()), default the
// working directory; files are named omega_trace_<pid>_<n>.txt. Dumps
// are rate-limited *per reason* (min 1 s between dumps with the same
// reason string unless forced) so a watchdog firing every sweep cannot
// flood the disk, while a failover dump right after a watchdog dump
// still lands. Registered black-box renderers (register_blackbox_
// renderer — obs::Sampler's ~60s metric history) are written to a
// sibling omega_blackbox_<pid>_<n>.txt alongside every trace file.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace omega::obs {

/// Protocol event vocabulary. `a`/`b` are per-event operands (see
/// render_trace's column legend; typically gid/slot/index/count).
enum class TraceEvent : std::uint8_t {
  kAppendEnqueue = 0,  ///< a=gid, b=client — command accepted for a slot
  kBatchSeal,          ///< a=slot, b=command count — local seal published
  kSlotDecide,         ///< a=slot, b=command count — slot harvested decided
  kBatchApply,         ///< a=first index, b=count — commits applied
  kAckFlush,           ///< a=acks flushed, b=connections touched
  kMirrorPush,         ///< a=peer node, b=seq — sampled push frame
  kMirrorAck,          ///< a=peer node, b=acked seq
  kEpochChange,        ///< a=gid, b=new leader pid (u32 max = none)
  kSessionEvict,       ///< a=gid, b=sessions evicted so far
  kFailoverTicket,     ///< a=gid/slot, b=ticket — displaced batch re-proposal
  kMirrorResync,       ///< a=peer node (u32 max = all), b=0
  kWatchdogFire,       ///< a=gid, b=stalled microseconds
  kBatchPush,          ///< a=slot, b=count — sealed rows handed to the mirror
  kCommitFanout,       ///< a=gid, b=first index — commit events fanned out
  kHealthTransition,   ///< a=rule index, b=(old health << 8) | new health
};

const char* trace_event_name(TraceEvent ev) noexcept;

/// Records one event into the calling thread's ring. Safe from any
/// thread, any time, including during a concurrent dump. `t_lo`/`t_hi`
/// carry the event's trace-id range (0 = untraced); per-request events
/// set only `t_lo`, batch events set the first and last id of the batch.
void trace(TraceEvent ev, std::uint64_t a = 0, std::uint64_t b = 0,
           std::uint64_t t_lo = 0, std::uint64_t t_hi = 0) noexcept;

/// One recorded event, as harvested by snapshot_trace().
struct TraceRecord {
  std::uint64_t ts_ns = 0;  ///< steady-clock ns (add realtime_offset_ns()
                            ///< for wall clock)
  std::uint32_t thread = 0;
  TraceEvent ev = TraceEvent::kAppendEnqueue;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::uint64_t trace_lo = 0;
  std::uint64_t trace_hi = 0;
};

/// Harvests every thread's ring, merged and sorted by timestamp. The
/// structured twin of render_trace(); also the TRACE_DUMP wire source.
std::vector<TraceRecord> snapshot_trace();

/// CLOCK_REALTIME minus steady_clock, in ns, captured once per process
/// (first recorder touch). wall_ns = ring ts_ns + realtime_offset_ns().
std::int64_t realtime_offset_ns() noexcept;

/// Renders every thread's ring merged and sorted by timestamp (ns since
/// an arbitrary per-process origin). One line per event:
///   <ts_ns> t<thread> <event> a=<a> b=<b>[ trace=<lo>[..<hi>]]
std::string render_trace();

/// Outcome of a dump_trace() call, reported via the optional out-param —
/// callers can tell a rate-limited dump from a broken trace dir.
enum class DumpStatus : std::uint8_t {
  kWritten,      ///< file written; path returned
  kSuppressed,   ///< rate-limited (counted in obs.trace_dumps_suppressed)
  kWriteFailed,  ///< fopen failed; errno logged to stderr
};

/// Writes render_trace() plus a reason header (reason, pid,
/// realtime_offset_ns) to the trace directory. Returns the file path, or
/// "" when rate-limited (min 1 s between dumps *with this reason* unless
/// `force`) or the file could not be written; `status` (optional)
/// distinguishes the two. Outcomes are counted in obs.trace_dumps /
/// obs.trace_dumps_suppressed. Registered black-box renderers are
/// written to a sibling omega_blackbox_<pid>_<n>.txt.
std::string dump_trace(const std::string& reason, bool force = false,
                       DumpStatus* status = nullptr);

/// Registers a renderer whose output dump_trace() writes next to every
/// trace file (omega_blackbox_<pid>_<n>.txt, same <n>). Returns an id
/// for unregister_blackbox_renderer — call it before anything the
/// renderer captures dies. Renderers run outside all recorder locks.
std::uint64_t register_blackbox_renderer(std::function<std::string()> fn);
void unregister_blackbox_renderer(std::uint64_t id);

/// Overrides the dump directory (else $OMEGA_TRACE_DIR, else ".").
void set_trace_dir(std::string dir);

/// Ring capacity per thread (events).
inline constexpr std::uint32_t kTraceRingSize = 4096;

}  // namespace omega::obs
