// Flight recorder: an always-on, per-thread ring of timestamped protocol
// events, cheap enough to leave enabled on every hot path (one relaxed
// ring-slot write, no locks, no allocation), dumped as a merged
// time-ordered text trace when something goes wrong — a mirror-stall
// watchdog fires, a failover displaces sealed batches, or a test/tool
// asks explicitly. The dump answers "what were the last few milliseconds
// of protocol activity on this node" after the fact, which logs sampled
// at human rates cannot.
//
// Threading: each thread records into its own fixed-size ring of relaxed
// std::atomic<u64> fields (TSan-clean by construction). The dumper walks
// every ring without stopping writers, so an event being overwritten
// concurrently can surface with mixed fields — the trace is best-effort
// forensics, not a journal. Rings are owned by shared_ptr and outlive
// their threads, so short-lived threads' tails stay dumpable.
//
// Dump destination: $OMEGA_TRACE_DIR (or set_trace_dir()), default the
// working directory; files are named omega_trace_<pid>_<n>.txt. Dumps
// are rate-limited (min 1 s apart unless forced) so a watchdog firing
// every sweep cannot flood the disk.
#pragma once

#include <cstdint>
#include <string>

namespace omega::obs {

/// Protocol event vocabulary. `a`/`b` are per-event operands (see
/// render_trace's column legend; typically gid/slot/index/count).
enum class TraceEvent : std::uint8_t {
  kAppendEnqueue = 0,  ///< a=gid, b=client — command accepted for a slot
  kBatchSeal,          ///< a=slot, b=command count — local seal published
  kSlotDecide,         ///< a=slot, b=command count — slot harvested decided
  kBatchApply,         ///< a=first index, b=count — commits applied
  kAckFlush,           ///< a=acks flushed, b=connections touched
  kMirrorPush,         ///< a=peer node, b=seq — sampled push frame
  kMirrorAck,          ///< a=peer node, b=acked seq
  kEpochChange,        ///< a=gid, b=new leader pid (u32 max = none)
  kSessionEvict,       ///< a=gid, b=sessions evicted so far
  kFailoverTicket,     ///< a=gid/slot, b=ticket — displaced batch re-proposal
  kMirrorResync,       ///< a=peer node (u32 max = all), b=0
  kWatchdogFire,       ///< a=gid, b=stalled microseconds
};

const char* trace_event_name(TraceEvent ev) noexcept;

/// Records one event into the calling thread's ring. Safe from any
/// thread, any time, including during a concurrent dump.
void trace(TraceEvent ev, std::uint64_t a = 0, std::uint64_t b = 0) noexcept;

/// Renders every thread's ring merged and sorted by timestamp (ns since
/// an arbitrary per-process origin). One line per event:
///   <ts_ns> t<thread> <event> a=<a> b=<b>
std::string render_trace();

/// Writes render_trace() plus a reason header to the trace directory.
/// Returns the file path, or "" when rate-limited (min 1 s between dumps
/// unless `force`) or the file could not be written.
std::string dump_trace(const std::string& reason, bool force = false);

/// Overrides the dump directory (else $OMEGA_TRACE_DIR, else ".").
void set_trace_dir(std::string dir);

/// Ring capacity per thread (events).
inline constexpr std::uint32_t kTraceRingSize = 4096;

}  // namespace omega::obs
