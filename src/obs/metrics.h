// Unified runtime metrics: a process-global registry of named counters,
// callback gauges and log-bucketed latency histograms, designed so the
// *write* path never takes a lock or touches shared cache lines it does
// not own:
//
//   * Counter — per-thread-striped relaxed atomics (cache-line padded);
//     add() is one fetch_add on the calling thread's stripe, value() sums
//     the stripes at scrape time.
//   * Histogram — the same power-of-two bucketing as
//     common/stats.h::LogHistogram (bucket = bit_width of the value), but
//     with per-bucket relaxed atomics so any thread can record() without
//     coordination. Quantiles are bucket-resolution estimates (the upper
//     bound of the bucket holding the target rank — within 2x of the
//     exact percentile by construction).
//   * Callback gauges — a registered std::function sampled at scrape
//     time. Multiple registrations under one name SUM (so e.g. every
//     LogGroup contributes to one "smr.queue_pending" without per-group
//     metric cardinality); unregister by the returned id before the
//     callback's captures die.
//
// Registration (the only mutex) is get-or-create by name and happens once
// per call site; handles stay valid for the process lifetime (metrics are
// never erased). The registry is a process-wide singleton: in-process
// multi-server tests therefore see aggregated values, while a real
// multi-node deployment (one process per node, smr::SmrNode) scrapes true
// per-node metrics — exactly what the v1.3 METRICS frame transports.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace omega::obs {

/// Histogram bucket count: bucket b >= 1 covers [2^(b-1), 2^b - 1],
/// bucket 0 is exactly {0}. 64 buckets cover the full u64 range and a
/// bucket index always fits a u8 (the wire encoding relies on this).
inline constexpr std::uint32_t kHistogramBuckets = 64;

/// Counter stripe count; threads are assigned stripes round-robin.
inline constexpr std::uint32_t kCounterStripes = 16;

/// Index of the calling thread's counter stripe (assigned once per
/// thread, round-robin, so colliding threads are the exception).
std::uint32_t this_thread_stripe() noexcept;

class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    stripes_[this_thread_stripe()].v.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    std::uint64_t sum = 0;
    for (const auto& s : stripes_) sum += s.v.load(std::memory_order_relaxed);
    return sum;
  }

 private:
  friend class Registry;
  Counter() = default;
  struct alignas(64) Stripe {
    std::atomic<std::uint64_t> v{0};
  };
  Stripe stripes_[kCounterStripes];
};

class Histogram {
 public:
  /// Bucket of `v`: 0 for 0, else bit_width(v) clamped to the top bucket
  /// (same math as common/stats.h::LogHistogram).
  static std::uint32_t bucket_of(std::uint64_t v) noexcept;
  /// Largest value bucket `b` can hold (0 for bucket 0, 2^b - 1 else,
  /// saturating at the top bucket).
  static std::uint64_t bucket_upper(std::uint32_t b) noexcept;

  void record(std::uint64_t v) noexcept {
    buckets_[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }

 private:
  friend class Registry;
  Histogram() = default;
  std::atomic<std::uint64_t> buckets_[kHistogramBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

/// One scraped metric — also the payload record of the v1.3 METRICS
/// frame and the input to the Prometheus renderer, so server, client and
/// tools share a single vocabulary. Histograms are sparse: only non-zero
/// buckets appear, as (bucket index, count) pairs sorted by index.
struct MetricSample {
  enum class Kind : std::uint8_t {
    kCounter = 0,
    kGauge = 1,
    kHistogram = 2,
  };
  std::string name;
  Kind kind = Kind::kCounter;
  /// Counter/gauge value; for histograms, the total sample count.
  std::int64_t value = 0;
  /// Histograms only: sum of recorded values.
  std::uint64_t sum = 0;
  /// Histograms only: non-zero (bucket, count) pairs, ascending bucket.
  std::vector<std::pair<std::uint8_t, std::uint64_t>> buckets;

  friend bool operator==(const MetricSample&, const MetricSample&) = default;

  /// Bucket-resolution quantile estimate (histograms): the upper bound of
  /// the bucket containing the q-th ranked sample; 0 when empty.
  std::uint64_t quantile(double q) const noexcept;
};

class Registry {
 public:
  /// The process-wide registry.
  static Registry& instance();

  /// Get-or-create by name. The returned reference is valid for the
  /// process lifetime; call once per site and cache it.
  Counter& counter(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Registers a gauge callback under `name`; multiple registrations of
  /// one name sum at scrape. Returns an id for unregister_gauge — call it
  /// before anything the callback captures is destroyed.
  std::uint64_t register_gauge(const std::string& name,
                               std::function<std::int64_t()> fn);
  void unregister_gauge(std::uint64_t id);

  /// Point-in-time snapshot of every metric, sorted by name (counters
  /// and histograms merged across stripes, gauges sampled and summed).
  std::vector<MetricSample> scrape() const;

 private:
  Registry() = default;
  struct Impl;
  Impl& impl() const;
};

/// Shorthands for the common call sites.
inline Counter& counter(const std::string& name) {
  return Registry::instance().counter(name);
}
inline Histogram& histogram(const std::string& name) {
  return Registry::instance().histogram(name);
}
inline std::vector<MetricSample> scrape() {
  return Registry::instance().scrape();
}

/// Prometheus text exposition of a scrape ('.' in names becomes '_';
/// every metric gets `# HELP` and `# TYPE` lines; histograms render as
/// cumulative `_bucket{le="..."}` series plus `_sum` and `_count`).
/// A non-empty `instance` is attached as an `instance="..."` label on
/// every series, so multi-node merges stay distinguishable. Works on
/// any sample set — a local scrape or one paged over the wire from a
/// remote node.
std::string render_prometheus(const std::vector<MetricSample>& samples,
                              const std::string& instance = "");

}  // namespace omega::obs
