#include "obs/trace_stitch.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <unordered_map>

namespace omega::obs {

std::vector<StitchedTrace> stitch(const std::vector<NodeTrace>& nodes) {
  std::unordered_map<std::uint64_t, StitchedTrace> by_id;
  for (const NodeTrace& n : nodes) {
    for (const TraceRecord& r : n.records) {
      TraceHop hop;
      hop.node = n.node;
      hop.thread = r.thread;
      hop.ev = r.ev;
      hop.wall_ns = static_cast<std::int64_t>(r.ts_ns) + n.realtime_offset_ns;
      hop.a = r.a;
      hop.b = r.b;
      // Batch events tag the first AND last id of the batch; both name
      // their request. lo == hi (a one-request batch, or a per-request
      // event) contributes a single hop, not two.
      const std::uint64_t ids[2] = {
          r.trace_lo, r.trace_hi == r.trace_lo ? 0 : r.trace_hi};
      for (const std::uint64_t id : ids) {
        if (id == 0) continue;
        StitchedTrace& t = by_id[id];
        if (t.trace_id == 0) t.trace_id = id;
        t.hops.push_back(hop);
      }
    }
  }
  std::vector<StitchedTrace> out;
  out.reserve(by_id.size());
  for (auto& [id, t] : by_id) {
    (void)id;
    std::sort(t.hops.begin(), t.hops.end(),
              [](const TraceHop& x, const TraceHop& y) {
                if (x.wall_ns != y.wall_ns) return x.wall_ns < y.wall_ns;
                return x.node < y.node;
              });
    out.push_back(std::move(t));
  }
  std::sort(out.begin(), out.end(),
            [](const StitchedTrace& x, const StitchedTrace& y) {
              const std::int64_t xt = x.hops.empty() ? 0 : x.hops[0].wall_ns;
              const std::int64_t yt = y.hops.empty() ? 0 : y.hops[0].wall_ns;
              if (xt != yt) return xt < yt;
              return x.trace_id < y.trace_id;
            });
  return out;
}

const TraceHop* find_hop(const StitchedTrace& t, TraceEvent ev,
                         std::int64_t node) {
  for (const TraceHop& h : t.hops) {
    if (h.ev != ev) continue;
    if (node >= 0 && h.node != static_cast<std::uint32_t>(node)) continue;
    return &h;
  }
  return nullptr;
}

std::int64_t hop_ns(const StitchedTrace& t, TraceEvent from, TraceEvent to,
                    std::int64_t from_node, std::int64_t to_node) {
  const TraceHop* f = find_hop(t, from, from_node);
  if (f == nullptr) return -1;
  for (const TraceHop& h : t.hops) {
    if (h.ev != to) continue;
    if (to_node >= 0 && h.node != static_cast<std::uint32_t>(to_node)) {
      continue;
    }
    if (h.wall_ns >= f->wall_ns) return h.wall_ns - f->wall_ns;
  }
  return -1;
}

std::string render_stitched(const std::vector<StitchedTrace>& traces) {
  std::string out;
  char line[192];
  for (const StitchedTrace& t : traces) {
    std::snprintf(line, sizeof line, "trace %016" PRIx64 "\n", t.trace_id);
    out += line;
    const std::int64_t first = t.hops.empty() ? 0 : t.hops[0].wall_ns;
    for (const TraceHop& h : t.hops) {
      std::snprintf(line, sizeof line,
                    "  +%8" PRId64 "us n%u t%u %s a=%" PRIu64 " b=%" PRIu64
                    "\n",
                    (h.wall_ns - first) / 1000, h.node, h.thread,
                    trace_event_name(h.ev), h.a, h.b);
      out += line;
    }
  }
  return out;
}

}  // namespace omega::obs
