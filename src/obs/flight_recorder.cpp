#include "obs/flight_recorder.h"

#include <sys/stat.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <vector>

#include "obs/metrics.h"

namespace omega::obs {
namespace {

std::int64_t now_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// mkdir -p for the dump directory: a pointed-at but not-yet-created
/// $OMEGA_TRACE_DIR must not make a crash dump vanish. Best effort —
/// the fopen that follows reports the real failure if one remains.
void make_dump_dir(const std::string& dir) {
  if (dir.empty() || dir == ".") return;
  std::string prefix;
  prefix.reserve(dir.size());
  for (std::size_t i = 0; i <= dir.size(); ++i) {
    if (i < dir.size() && dir[i] != '/') {
      prefix.push_back(dir[i]);
      continue;
    }
    if (!prefix.empty() && prefix != "/") {
      if (::mkdir(prefix.c_str(), 0777) != 0 && errno != EEXIST) return;
    }
    if (i < dir.size()) prefix.push_back('/');
  }
}

/// One thread's ring. Every field is a relaxed atomic so concurrent
/// dump reads are defined (possibly torn across fields, never UB).
struct Ring {
  struct Slot {
    std::atomic<std::uint64_t> seq{0};  ///< 1 + head value at write time
    std::atomic<std::uint64_t> ts{0};
    std::atomic<std::uint64_t> code{0};
    std::atomic<std::uint64_t> a{0};
    std::atomic<std::uint64_t> b{0};
    std::atomic<std::uint64_t> tl{0};  ///< trace-id range low (0 = none)
    std::atomic<std::uint64_t> th{0};  ///< trace-id range high
  };
  std::uint32_t thread_index = 0;
  std::atomic<std::uint64_t> head{0};  ///< events ever recorded
  Slot slots[kTraceRingSize];

  void record(TraceEvent ev, std::uint64_t a, std::uint64_t b,
              std::uint64_t t_lo, std::uint64_t t_hi) noexcept {
    const std::uint64_t seq = head.fetch_add(1, std::memory_order_relaxed);
    Slot& s = slots[seq % kTraceRingSize];
    s.seq.store(seq + 1, std::memory_order_relaxed);
    s.ts.store(static_cast<std::uint64_t>(now_ns()),
               std::memory_order_relaxed);
    s.code.store(static_cast<std::uint64_t>(ev), std::memory_order_relaxed);
    s.a.store(a, std::memory_order_relaxed);
    s.b.store(b, std::memory_order_relaxed);
    s.tl.store(t_lo, std::memory_order_relaxed);
    s.th.store(t_hi, std::memory_order_relaxed);
  }
};

struct Recorder {
  Recorder();
  std::mutex mu;  ///< guards rings registration + dump bookkeeping
  std::vector<std::shared_ptr<Ring>> rings;
  std::uint64_t next_thread_index = 0;  ///< monotonic: survives pruning
  std::string dir;
  std::map<std::string, std::int64_t> last_dump_by_reason;
  std::atomic<std::uint64_t> dump_seq{0};
  std::map<std::uint64_t, std::function<std::string()>> blackbox;
  std::uint64_t next_blackbox_id = 1;
};

Recorder& recorder() {
  static Recorder r;
  return r;
}

Recorder::Recorder() {
  realtime_offset_ns();  // pin the wall-clock anchor early
  // Proves ring pruning works: live threads + not-yet-harvested tails.
  // The callback runs at scrape time (registry lock held, then mu) —
  // nothing here ever takes the registry lock while holding mu.
  Registry::instance().register_gauge("obs.recorder_rings", [] {
    Recorder& rec = recorder();
    std::lock_guard<std::mutex> lock(rec.mu);
    return static_cast<std::int64_t>(rec.rings.size());
  });
}

Ring& this_thread_ring() {
  // The shared_ptr holder keeps the ring alive in the global list after
  // the thread exits, so its tail stays dumpable (until the next
  // snapshot harvests and prunes it).
  thread_local std::shared_ptr<Ring> ring = [] {
    auto r = std::make_shared<Ring>();
    Recorder& rec = recorder();
    std::lock_guard<std::mutex> lock(rec.mu);
    r->thread_index = static_cast<std::uint32_t>(rec.next_thread_index++);
    rec.rings.push_back(r);
    return r;
  }();
  return *ring;
}

}  // namespace

const char* trace_event_name(TraceEvent ev) noexcept {
  switch (ev) {
    case TraceEvent::kAppendEnqueue: return "append_enqueue";
    case TraceEvent::kBatchSeal: return "batch_seal";
    case TraceEvent::kSlotDecide: return "slot_decide";
    case TraceEvent::kBatchApply: return "batch_apply";
    case TraceEvent::kAckFlush: return "ack_flush";
    case TraceEvent::kMirrorPush: return "mirror_push";
    case TraceEvent::kMirrorAck: return "mirror_ack";
    case TraceEvent::kEpochChange: return "epoch_change";
    case TraceEvent::kSessionEvict: return "session_evict";
    case TraceEvent::kFailoverTicket: return "failover_ticket";
    case TraceEvent::kMirrorResync: return "mirror_resync";
    case TraceEvent::kWatchdogFire: return "watchdog_fire";
    case TraceEvent::kBatchPush: return "batch_push";
    case TraceEvent::kCommitFanout: return "commit_fanout";
    case TraceEvent::kHealthTransition: return "health_transition";
  }
  return "unknown";
}

void trace(TraceEvent ev, std::uint64_t a, std::uint64_t b,
           std::uint64_t t_lo, std::uint64_t t_hi) noexcept {
  this_thread_ring().record(ev, a, b, t_lo, t_hi);
}

std::int64_t realtime_offset_ns() noexcept {
  // Captured once per process so every ring shares one anchor; a later
  // NTP step skews absolute wall times but not cross-ring deltas.
  static const std::int64_t offset = [] {
    timespec rt{};
    ::clock_gettime(CLOCK_REALTIME, &rt);
    const std::int64_t wall =
        rt.tv_sec * 1000000000LL + rt.tv_nsec;
    return wall - now_ns();
  }();
  return offset;
}

std::vector<TraceRecord> snapshot_trace() {
  Recorder& rec = recorder();
  std::vector<std::shared_ptr<Ring>> rings;
  {
    std::lock_guard<std::mutex> lock(rec.mu);
    rings = rec.rings;
  }
  std::vector<TraceRecord> records;
  for (const auto& ring : rings) {
    const std::uint64_t head = ring->head.load(std::memory_order_relaxed);
    const std::uint64_t n = std::min<std::uint64_t>(head, kTraceRingSize);
    for (std::uint64_t i = 0; i < n; ++i) {
      const Ring::Slot& s = ring->slots[i];
      const std::uint64_t seq = s.seq.load(std::memory_order_relaxed);
      if (seq == 0) continue;  // never written
      TraceRecord r;
      r.ts_ns = s.ts.load(std::memory_order_relaxed);
      r.thread = ring->thread_index;
      r.ev = static_cast<TraceEvent>(
          s.code.load(std::memory_order_relaxed) & 0xFF);
      r.a = s.a.load(std::memory_order_relaxed);
      r.b = s.b.load(std::memory_order_relaxed);
      r.trace_lo = s.tl.load(std::memory_order_relaxed);
      r.trace_hi = s.th.load(std::memory_order_relaxed);
      records.push_back(r);
    }
  }
  std::sort(records.begin(), records.end(),
            [](const TraceRecord& x, const TraceRecord& y) {
              return x.ts_ns < y.ts_ns;
            });
  // The harvest above is the "dumped/merged" moment: rings whose thread
  // has exited (thread_local holder gone — ours was the only other ref)
  // have nothing more to say and are pruned here, bounding the recorder
  // under thread churn. Live threads always hold a second reference.
  rings.clear();
  {
    std::lock_guard<std::mutex> lock(rec.mu);
    std::erase_if(rec.rings, [](const std::shared_ptr<Ring>& r) {
      return r.use_count() == 1;
    });
  }
  return records;
}

std::string render_trace() {
  std::ostringstream os;
  for (const TraceRecord& r : snapshot_trace()) {
    os << r.ts_ns << " t" << r.thread << ' ' << trace_event_name(r.ev)
       << " a=" << r.a << " b=" << r.b;
    if (r.trace_lo != 0) {
      os << " trace=" << r.trace_lo;
      if (r.trace_hi != 0 && r.trace_hi != r.trace_lo) {
        os << ".." << r.trace_hi;
      }
    }
    os << '\n';
  }
  return os.str();
}

void set_trace_dir(std::string dir) {
  Recorder& rec = recorder();
  std::lock_guard<std::mutex> lock(rec.mu);
  rec.dir = std::move(dir);
}

std::string dump_trace(const std::string& reason, bool force,
                       DumpStatus* status) {
  Recorder& rec = recorder();
  const std::int64_t now = now_ns();
  std::string dir;
  std::vector<std::function<std::string()>> renderers;
  bool limited = false;
  {
    // One token per reason string: a watchdog storm self-limits without
    // eating the failover dump that follows under a different reason.
    std::lock_guard<std::mutex> lock(rec.mu);
    std::int64_t& last = rec.last_dump_by_reason[reason];
    if (!force && last != 0 && now - last < 1000000000) {
      limited = true;
    } else {
      last = now;
      dir = rec.dir;
      renderers.reserve(rec.blackbox.size());
      for (const auto& [id, fn] : rec.blackbox) {
        (void)id;
        renderers.push_back(fn);
      }
    }
  }
  if (limited) {
    counter("obs.trace_dumps_suppressed").add(1);
    if (status != nullptr) *status = DumpStatus::kSuppressed;
    return "";
  }
  if (dir.empty()) {
    if (const char* env = std::getenv("OMEGA_TRACE_DIR")) dir = env;
  }
  if (dir.empty()) dir = ".";
  make_dump_dir(dir);

  const std::uint64_t n =
      rec.dump_seq.fetch_add(1, std::memory_order_relaxed);
  std::ostringstream path;
  path << dir << "/omega_trace_" << ::getpid() << '_' << n << ".txt";

  const std::string body = render_trace();
  std::FILE* f = std::fopen(path.str().c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "omega: trace dump to %s failed: %s\n",
                 path.str().c_str(), std::strerror(errno));
    if (status != nullptr) *status = DumpStatus::kWriteFailed;
    return "";
  }
  std::fprintf(f,
               "# omega flight recorder dump\n# reason: %s\n# pid: %d\n"
               "# realtime_offset_ns: %lld\n",
               reason.c_str(), ::getpid(),
               static_cast<long long>(realtime_offset_ns()));
  std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);

  // Sibling black box: the last ~60s of metric history (and whatever
  // else registered), so the trace artifact explains itself. Renderers
  // run outside rec.mu — they take their own (sampler) locks.
  if (!renderers.empty()) {
    std::ostringstream bpath;
    bpath << dir << "/omega_blackbox_" << ::getpid() << '_' << n
          << ".txt";
    std::FILE* bf = std::fopen(bpath.str().c_str(), "w");
    if (bf != nullptr) {
      std::fprintf(bf,
                   "# omega black box\n# reason: %s\n# pid: %d\n",
                   reason.c_str(), ::getpid());
      for (const auto& fn : renderers) {
        const std::string text = fn ? fn() : std::string{};
        std::fwrite(text.data(), 1, text.size(), bf);
      }
      std::fclose(bf);
    } else {
      std::fprintf(stderr, "omega: blackbox dump to %s failed: %s\n",
                   bpath.str().c_str(), std::strerror(errno));
    }
  }

  counter("obs.trace_dumps").add(1);
  if (status != nullptr) *status = DumpStatus::kWritten;
  return path.str();
}

std::uint64_t register_blackbox_renderer(std::function<std::string()> fn) {
  Recorder& rec = recorder();
  std::lock_guard<std::mutex> lock(rec.mu);
  const std::uint64_t id = rec.next_blackbox_id++;
  rec.blackbox.emplace(id, std::move(fn));
  return id;
}

void unregister_blackbox_renderer(std::uint64_t id) {
  Recorder& rec = recorder();
  std::lock_guard<std::mutex> lock(rec.mu);
  rec.blackbox.erase(id);
}

}  // namespace omega::obs
