#include "obs/health.h"

#include <algorithm>
#include <chrono>
#include <sstream>

#include "obs/flight_recorder.h"

namespace omega::obs {

namespace {

std::int64_t wall_ms_now() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

std::int64_t steady_ns_now() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

const char* health_name(Health h) noexcept {
  switch (h) {
    case Health::kOk: return "ok";
    case Health::kDegraded: return "degraded";
    case Health::kCritical: return "critical";
  }
  return "unknown";
}

HealthMonitor::HealthMonitor()
    : transitions_(&counter("obs.health_transitions")) {}

void HealthMonitor::add_rule(HealthRule rule) {
  if (rule.degrade_after == 0) rule.degrade_after = 1;
  if (rule.recover_after == 0) rule.recover_after = 1;
  std::lock_guard<std::mutex> lock(mu_);
  Entry e;
  e.state.name = rule.name;
  e.rule = std::move(rule);
  entries_.push_back(std::move(e));
}

void HealthMonitor::evaluate(const TimeSeries& ts) {
  std::lock_guard<std::mutex> lock(mu_);
  ++ticks_;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    Entry& e = entries_[i];
    std::string reason;
    const Health raw = e.rule.eval ? e.rule.eval(ts, &reason) : Health::kOk;
    e.state.raw = raw;
    Health target = e.state.published;
    if (raw != Health::kOk) {
      e.state.reason = reason;
      e.ok_streak = 0;
      ++e.bad_streak;
      if (e.state.published == Health::kOk) {
        if (e.bad_streak >= e.rule.degrade_after) target = raw;
      } else {
        // Escalation is immediate; de-escalation waits for a full
        // recovery so degraded<->critical noise cannot flap the verdict.
        target = std::max(e.state.published, raw);
      }
    } else {
      e.bad_streak = 0;
      ++e.ok_streak;
      if (e.state.published != Health::kOk &&
          e.ok_streak >= e.rule.recover_after) {
        target = Health::kOk;
      }
    }
    if (target != e.state.published) {
      trace(TraceEvent::kHealthTransition, static_cast<std::uint64_t>(i),
            (static_cast<std::uint64_t>(e.state.published) << 8) |
                static_cast<std::uint64_t>(target));
      transitions_->add(1);
      e.state.published = target;
    }
  }
}

HealthReport HealthMonitor::report() const {
  std::lock_guard<std::mutex> lock(mu_);
  HealthReport rep;
  rep.ticks = ticks_;
  rep.rules.reserve(entries_.size());
  for (const Entry& e : entries_) {
    rep.overall = std::max(rep.overall, e.state.published);
    rep.rules.push_back(e.state);
  }
  return rep;
}

Sampler::Sampler(SamplerConfig cfg)
    : cfg_(cfg), series_(cfg.capacity),
      sample_hist_(&histogram("obs.sample_ns")) {}

Sampler::~Sampler() { stop(); }

void Sampler::set_tick_listener(TickListener fn) {
  listener_ = std::move(fn);
}

std::uint64_t Sampler::tick() {
  const std::int64_t t0 = steady_ns_now();
  const std::vector<MetricSample> samples = Registry::instance().scrape();
  series_.record(samples, wall_ms_now());
  health_.evaluate(series_);
  const std::uint64_t n =
      tick_no_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (listener_) listener_(n, samples, health_.report());
  sample_hist_->record(static_cast<std::uint64_t>(steady_ns_now() - t0));
  return n;
}

std::uint64_t Sampler::sample_now() { return tick(); }

void Sampler::run() {
  std::unique_lock<std::mutex> lock(run_mu_);
  while (!stop_requested_) {
    lock.unlock();
    tick();
    lock.lock();
    run_cv_.wait_for(lock, std::chrono::milliseconds(cfg_.period_ms),
                     [this] { return stop_requested_; });
  }
}

void Sampler::start() {
  {
    std::lock_guard<std::mutex> lock(run_mu_);
    if (started_) return;
    started_ = true;
    stop_requested_ = false;
  }
  blackbox_id_ = register_blackbox_renderer([this] {
    std::ostringstream os;
    const HealthReport rep = health_.report();
    os << "# health: " << health_name(rep.overall)
       << " ticks=" << rep.ticks << '\n';
    for (const RuleState& r : rep.rules) {
      if (r.published == Health::kOk) continue;
      os << "# rule " << r.name << ": " << health_name(r.published)
         << " reason: " << r.reason << '\n';
    }
    os << series_.render_text();
    return os.str();
  });
  thread_ = std::thread([this] { run(); });
}

void Sampler::stop() {
  {
    std::lock_guard<std::mutex> lock(run_mu_);
    if (!started_) return;
    started_ = false;
    stop_requested_ = true;
  }
  run_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  if (blackbox_id_ != 0) {
    unregister_blackbox_renderer(blackbox_id_);
    blackbox_id_ = 0;
  }
}

}  // namespace omega::obs
