// Trace stitching: joins flight-recorder scrapes from several processes
// into per-request causal timelines.
//
// Input: one NodeTrace per scraped process — the records of a v1.4
// TRACE_DUMP (or a local snapshot_trace()) plus that process's
// CLOCK_REALTIME↔steady offset. Each record's steady timestamp is
// shifted by its node's offset, so hops from different processes land on
// one shared wall-clock axis.
//
// Join rule: a record names a request when its trace_lo or trace_hi
// equals the request's id. Batch events (seal/decide/apply/push) tag only
// the FIRST and LAST id of the batch, so an append buried in the middle
// of a large batch stitches through its per-request events
// (append_enqueue, commit_fanout) but not the batch hops — run the
// stitcher under light load (or max_batch small) for full chains.
//
// The stitched timeline is forensic, not exact: rings are harvested
// without stopping writers, and wall-clock anchors are captured once per
// process, so cross-node deltas carry the usual NTP-grade slack.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/flight_recorder.h"

namespace omega::obs {

/// One process's scraped rings plus its wall-clock anchor.
struct NodeTrace {
  std::uint32_t node = 0;  ///< caller-chosen label (topology node id)
  std::int64_t realtime_offset_ns = 0;
  std::vector<TraceRecord> records;
};

/// One event naming a request, placed on the shared wall clock.
struct TraceHop {
  std::uint32_t node = 0;
  std::uint32_t thread = 0;
  TraceEvent ev = TraceEvent::kAppendEnqueue;
  std::int64_t wall_ns = 0;  ///< record ts_ns + node realtime offset
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};

/// One request's causal chain, hops in wall-clock order.
struct StitchedTrace {
  std::uint64_t trace_id = 0;
  std::vector<TraceHop> hops;
};

/// Joins every node's records by trace id. Traces are returned sorted by
/// their first hop's wall-clock time; hops within a trace are sorted by
/// wall-clock time (ties by node). Untraced records (id 0) are skipped.
std::vector<StitchedTrace> stitch(const std::vector<NodeTrace>& nodes);

/// First hop of `t` recording `ev` (nullptr if the event never fired) —
/// on `node` when `node` >= 0, on any node otherwise.
const TraceHop* find_hop(const StitchedTrace& t, TraceEvent ev,
                         std::int64_t node = -1);

/// Wall-clock ns from the first `from` hop to the first `to` hop at or
/// after it; -1 when either is missing. Node filters as in find_hop.
std::int64_t hop_ns(const StitchedTrace& t, TraceEvent from, TraceEvent to,
                    std::int64_t from_node = -1, std::int64_t to_node = -1);

/// Human-readable rendering for the omega_top `trace stitch` mode: one
/// block per trace, one line per hop —
///   trace <id>
///     +<us_since_first>us n<node> t<thread> <event> a=<a> b=<b>
std::string render_stitched(const std::vector<StitchedTrace>& traces);

}  // namespace omega::obs
