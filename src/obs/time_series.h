// In-process time-series "black box": fixed-size per-metric rings of
// registry snapshots, recorded by a background sampler (obs::Sampler,
// health.h) every ~250ms. Where the live registry answers "what is the
// value now", the time series answers the questions that matter after
// an incident: "was push-lag spiking before the watchdog fired", "how
// fast are commits moving *this second*", "has RSS grown monotonically
// for a minute". Histograms keep each tick's cumulative bucket counts,
// so differencing two ticks yields true *windowed* percentiles instead
// of the registry's since-boot estimates.
//
// The ring holds ~60s at the default 250ms period (240 points). Memory
// is bounded by capacity x metric count; exited metrics are never
// dropped (the registry never erases names).
//
// Threading: one mutex guards everything. The writer is the sampler
// thread (4 Hz); readers are health rules (same thread), the HEALTH /
// METRICS_WATCH wire handlers and render_text() from dump_trace — all
// cold paths. Nothing here is on a hot path.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace omega::obs {

/// One recorded point of one metric: the scraped value at `wall_ms`.
/// For histograms `value` is the cumulative sample count, `sum` the
/// cumulative sum and `buckets` the cumulative sparse bucket counts —
/// window math is differences between two points.
struct TsPoint {
  std::int64_t wall_ms = 0;
  std::int64_t value = 0;
  std::uint64_t sum = 0;
  std::vector<std::pair<std::uint8_t, std::uint64_t>> buckets;
};

class TimeSeries {
 public:
  /// `capacity` points are kept per metric (240 @ 250ms ~= 60s).
  explicit TimeSeries(std::uint32_t capacity = 240);

  /// Appends one scrape (obs::scrape() output) taken at `wall_ms`
  /// (CLOCK_REALTIME milliseconds) to every metric's ring.
  void record(const std::vector<MetricSample>& scrape, std::int64_t wall_ms);

  /// Ticks recorded since construction (not capped by capacity).
  std::uint64_t ticks() const;
  std::uint32_t capacity() const { return capacity_; }

  /// Wall-clock span (ms) currently covered by `name`'s ring; 0 when
  /// the metric has fewer than two points.
  std::int64_t span_ms(const std::string& name) const;

  /// Newest point of `name`; returns false (and leaves `*out` alone)
  /// when the metric has never been recorded.
  bool latest(const std::string& name, TsPoint* out = nullptr) const;

  /// Newest recorded value of `name`, or 0 when absent.
  std::int64_t latest_value(const std::string& name) const;

  /// Change of `name` over the trailing `window_ms`: newest value minus
  /// the value at the oldest stored point inside the window. 0 when the
  /// window holds fewer than two points. Negative for shrinking gauges.
  std::int64_t delta(const std::string& name, std::int64_t window_ms) const;

  /// delta() divided by the actual time between the two points, per
  /// second. 0 when undefined.
  double rate(const std::string& name, std::int64_t window_ms) const;

  /// Windowed quantile for histogram `name`: bucket counts at the
  /// window edge are subtracted from the newest counts and the quantile
  /// is taken over that difference — the percentile of samples recorded
  /// *inside* the window, not since boot. 0 when no samples landed in
  /// the window.
  std::uint64_t windowed_quantile(const std::string& name,
                                  std::int64_t window_ms, double q) const;

  /// Histogram samples recorded inside the trailing window.
  std::int64_t windowed_count(const std::string& name,
                              std::int64_t window_ms) const;

  /// Up to `max_points` newest values of `name`, oldest first — the
  /// sparkline feed. Empty when the metric is absent.
  std::vector<std::int64_t> values(const std::string& name,
                                   std::uint32_t max_points) const;

  /// Recorded metric names, sorted.
  std::vector<std::string> names() const;

  /// Human-readable dump of every ring — the "black box" text written
  /// next to flight-recorder dumps. One line per metric (kind, points,
  /// span, newest value, windowed delta/rate or count/p50/p99) plus a
  /// short tail of recent values.
  std::string render_text() const;

 private:
  struct Series {
    MetricSample::Kind kind = MetricSample::Kind::kCounter;
    std::vector<TsPoint> ring;  ///< size() < capacity while filling
    std::uint64_t head = 0;     ///< points ever recorded
  };

  /// Newest point and the oldest stored point with
  /// wall_ms >= newest - window_ms. Returns false when < 2 points.
  bool window_edges(const Series& s, std::int64_t window_ms,
                    const TsPoint** oldest, const TsPoint** newest) const;
  const TsPoint* point(const Series& s, std::uint64_t logical) const;

  mutable std::mutex mu_;
  const std::uint32_t capacity_;
  std::uint64_t ticks_ = 0;
  std::map<std::string, Series> series_;
};

}  // namespace omega::obs
