#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>

#include "common/check.h"

namespace omega::obs {

namespace {
// The METRICS wire format carries names as a u8-length string; catching an
// oversized name at registration keeps encode_metrics_response from ever
// having to truncate (which would desync scraped names from the registry).
void check_name(const std::string& name) {
  OMEGA_CHECK(name.size() <= 255,
              "metric name exceeds the 255-byte wire limit: " << name);
}
}  // namespace

std::uint32_t this_thread_stripe() noexcept {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t stripe =
      next.fetch_add(1, std::memory_order_relaxed) % kCounterStripes;
  return stripe;
}

std::uint32_t Histogram::bucket_of(std::uint64_t v) noexcept {
  if (v == 0) return 0;
  std::uint32_t b = static_cast<std::uint32_t>(std::bit_width(v));
  if (b >= kHistogramBuckets) b = kHistogramBuckets - 1;
  return b;
}

std::uint64_t Histogram::bucket_upper(std::uint32_t b) noexcept {
  if (b == 0) return 0;
  if (b >= kHistogramBuckets - 1) return ~std::uint64_t{0};
  return (std::uint64_t{1} << b) - 1;
}

std::uint64_t MetricSample::quantile(double q) const noexcept {
  if (kind != Kind::kHistogram || value <= 0) return 0;
  const auto total = static_cast<std::uint64_t>(value);
  auto rank = static_cast<std::uint64_t>(q * static_cast<double>(total));
  if (rank >= total) rank = total - 1;
  std::uint64_t seen = 0;
  for (const auto& [b, n] : buckets) {
    seen += n;
    if (seen > rank) return Histogram::bucket_upper(b);
  }
  return buckets.empty() ? 0 : Histogram::bucket_upper(buckets.back().first);
}

struct Registry::Impl {
  mutable std::mutex mu;
  // Values are pointers so references handed out stay stable; entries are
  // never erased (names are a small static vocabulary).
  std::map<std::string, std::unique_ptr<Counter>> counters;
  std::map<std::string, std::unique_ptr<Histogram>> histograms;
  struct GaugeEntry {
    std::string name;
    std::function<std::int64_t()> fn;
  };
  std::map<std::uint64_t, GaugeEntry> gauges;
  std::uint64_t next_gauge_id = 1;
};

Registry& Registry::instance() {
  static Registry r;
  return r;
}

Registry::Impl& Registry::impl() const {
  static Impl impl;
  return impl;
}

Counter& Registry::counter(const std::string& name) {
  check_name(name);
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  auto& slot = im.counters[name];
  if (!slot) slot.reset(new Counter());
  return *slot;
}

Histogram& Registry::histogram(const std::string& name) {
  check_name(name);
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  auto& slot = im.histograms[name];
  if (!slot) slot.reset(new Histogram());
  return *slot;
}

std::uint64_t Registry::register_gauge(const std::string& name,
                                       std::function<std::int64_t()> fn) {
  check_name(name);
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  const std::uint64_t id = im.next_gauge_id++;
  im.gauges.emplace(id, Impl::GaugeEntry{name, std::move(fn)});
  return id;
}

void Registry::unregister_gauge(std::uint64_t id) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  im.gauges.erase(id);
}

std::vector<MetricSample> Registry::scrape() const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  // Gauges first: sum registrations per name into a sorted map.
  std::map<std::string, std::int64_t> gauge_values;
  for (const auto& [id, g] : im.gauges) {
    (void)id;
    gauge_values[g.name] += g.fn ? g.fn() : 0;
  }

  std::vector<MetricSample> out;
  out.reserve(im.counters.size() + im.histograms.size() +
              gauge_values.size());
  for (const auto& [name, c] : im.counters) {
    MetricSample s;
    s.name = name;
    s.kind = MetricSample::Kind::kCounter;
    s.value = static_cast<std::int64_t>(c->value());
    out.push_back(std::move(s));
  }
  for (const auto& [name, v] : gauge_values) {
    MetricSample s;
    s.name = name;
    s.kind = MetricSample::Kind::kGauge;
    s.value = v;
    out.push_back(std::move(s));
  }
  for (const auto& [name, h] : im.histograms) {
    MetricSample s;
    s.name = name;
    s.kind = MetricSample::Kind::kHistogram;
    // Per-bucket totals are summed before count so a racing record()
    // can only make count lag the buckets, never exceed them... either
    // way both are relaxed snapshots; consumers treat them as ~instant.
    std::uint64_t count = 0;
    for (std::uint32_t b = 0; b < kHistogramBuckets; ++b) {
      const std::uint64_t n =
          h->buckets_[b].load(std::memory_order_relaxed);
      if (n == 0) continue;
      s.buckets.emplace_back(static_cast<std::uint8_t>(b), n);
      count += n;
    }
    s.value = static_cast<std::int64_t>(count);
    s.sum = h->sum_.load(std::memory_order_relaxed);
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end(),
            [](const MetricSample& a, const MetricSample& b) {
              return a.name < b.name;
            });
  return out;
}

namespace {

std::string prom_name(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    if (c == '.' || c == '-') c = '_';
  }
  return out;
}

const char* kind_name(MetricSample::Kind k) {
  switch (k) {
    case MetricSample::Kind::kCounter: return "counter";
    case MetricSample::Kind::kGauge: return "gauge";
    case MetricSample::Kind::kHistogram: return "histogram";
  }
  return "untyped";
}

}  // namespace

std::string render_prometheus(const std::vector<MetricSample>& samples,
                              const std::string& instance) {
  // Pre-rendered label fragments: `{instance="x"}` for scalar series
  // and `instance="x",` to prepend inside histogram bucket braces.
  std::string scalar_labels;
  std::string bucket_prefix;
  if (!instance.empty()) {
    scalar_labels = "{instance=\"" + instance + "\"}";
    bucket_prefix = "instance=\"" + instance + "\",";
  }
  std::ostringstream os;
  for (const MetricSample& s : samples) {
    const std::string n = prom_name(s.name);
    os << "# HELP " << n << " omega metric " << s.name << " ("
       << kind_name(s.kind) << ")\n";
    os << "# TYPE " << n << ' ' << kind_name(s.kind) << '\n';
    switch (s.kind) {
      case MetricSample::Kind::kCounter:
      case MetricSample::Kind::kGauge:
        os << n << scalar_labels << ' ' << s.value << '\n';
        break;
      case MetricSample::Kind::kHistogram: {
        std::uint64_t cum = 0;
        for (const auto& [b, cnt] : s.buckets) {
          cum += cnt;
          os << n << "_bucket{" << bucket_prefix << "le=\""
             << Histogram::bucket_upper(b) << "\"} " << cum << '\n';
        }
        os << n << "_bucket{" << bucket_prefix << "le=\"+Inf\"} " << cum
           << '\n';
        os << n << "_sum" << scalar_labels << ' ' << s.sum << '\n';
        os << n << "_count" << scalar_labels << ' ' << s.value << '\n';
        break;
      }
    }
  }
  return os.str();
}

}  // namespace omega::obs
