#include "obs/process_gauges.h"

#include <dirent.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdint>
#include <mutex>

#include "obs/metrics.h"

namespace omega::obs {
namespace {

std::int64_t uptime_s(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::seconds>(
             std::chrono::steady_clock::now() - start)
      .count();
}

std::int64_t rss_bytes() {
  // /proc/self/statm: size resident shared text lib data dt (pages).
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  long long size = 0, resident = 0;
  const int got = std::fscanf(f, "%lld %lld", &size, &resident);
  std::fclose(f);
  if (got != 2) return 0;
  return resident * static_cast<std::int64_t>(::sysconf(_SC_PAGESIZE));
}

std::int64_t open_fds() {
  DIR* d = ::opendir("/proc/self/fd");
  if (d == nullptr) return 0;
  std::int64_t n = 0;
  while (const dirent* e = ::readdir(d)) {
    if (e->d_name[0] != '.') ++n;
  }
  ::closedir(d);
  return n - 1;  // opendir's own descriptor
}

}  // namespace

void register_process_gauges() {
  // Gauges are process-global and never unregistered (the callbacks
  // capture nothing that dies), so one registration serves every
  // embedded server/node in the process.
  static std::once_flag once;
  std::call_once(once, [] {
    const auto start = std::chrono::steady_clock::now();
    Registry& reg = Registry::instance();
    reg.register_gauge("proc.uptime_s", [start] { return uptime_s(start); });
    reg.register_gauge("proc.rss_bytes", [] { return rss_bytes(); });
    reg.register_gauge("proc.open_fds", [] { return open_fds(); });
  });
}

}  // namespace omega::obs
