// Run metrics. Leadership is observed where the paper defines it: at the
// outputs of leader() invocations (task T1). The driver reports every T2-loop
// leader query here; convergence is then "the time of the last output change
// among processes that keep taking steps", and Ω's Eventual Leadership holds
// for a run iff the report says converged-on-a-correct-process.
#pragma once

#include <cstdint>
#include <vector>

#include "common/ids.h"
#include "common/stats.h"
#include "registers/instrumentation.h"
#include "registers/layout.h"
#include "sim/crash_plan.h"

namespace omega {

struct ConvergenceReport {
  bool converged = false;        ///< all live samplers agree on a correct id
  ProcessId leader = kNoProcess; ///< the common output (if converged)
  SimTime time = kNever;         ///< last output change among live samplers
  std::uint64_t total_changes = 0;
  std::uint64_t changes_after_marker = 0;  ///< flap count (E8)
};

class Metrics {
 public:
  explicit Metrics(std::uint32_t n);

  /// Reported by the driver for every leader() executed on behalf of task T2.
  void on_leader_query(ProcessId pid, ProcessId output, SimTime now);

  /// Reported by the driver whenever it arms a process timer (paper line 27).
  void on_timer_armed(ProcessId pid, std::uint64_t x, SimDuration duration,
                      SimTime now);

  /// Changes after this time count as "flaps" (normally set to GST).
  void set_flap_marker(SimTime t) noexcept { marker_ = t; }

  ConvergenceReport convergence(const CrashPlan& plan) const;

  ProcessId last_output(ProcessId pid) const;
  SimTime last_change(ProcessId pid) const;
  std::uint64_t queries(ProcessId pid) const;
  std::uint64_t changes(ProcessId pid) const;
  std::uint64_t timers_armed(ProcessId pid) const;
  std::uint64_t max_timeout_param(ProcessId pid) const;

 private:
  struct PerProcess {
    ProcessId last_output = kNoProcess;
    SimTime last_change = kNever;
    std::uint64_t queries = 0;
    std::uint64_t changes = 0;
    std::uint64_t changes_after_marker = 0;
    std::uint64_t timers_armed = 0;
    std::uint64_t max_timeout = 0;
  };
  std::vector<PerProcess> per_;
  SimTime marker_ = 0;
};

/// Who wrote between two instrumentation snapshots (`a` earlier, `b` later).
struct WriterCensus {
  std::vector<std::uint64_t> writes_by;  ///< per process, in the window
  std::uint32_t distinct_writers = 0;
};
WriterCensus diff_writers(const InstrumentationSnapshot& a,
                          const InstrumentationSnapshot& b);

/// Observer recording the gaps between consecutive writes by `target` to its
/// *critical* registers — the quantity bounded by delta in AWB1 and depicted
/// in the paper's Figure 3 (the sequence S of PROGRESS/STOP writes).
class WriteGapObserver final : public AccessObserver {
 public:
  WriteGapObserver(const Layout& layout, ProcessId target, SimTime marker);

  void on_access(const AccessEvent& ev) override;

  /// Gap distributions before/after the marker (typically GST).
  const LogHistogram& gaps_before() const noexcept { return before_; }
  const LogHistogram& gaps_after() const noexcept { return after_; }
  SimDuration max_gap_after() const noexcept { return max_after_; }
  std::uint64_t writes_seen() const noexcept { return writes_; }

  void set_target(ProcessId target) noexcept {
    target_ = target;
    last_ = kNever;
  }

 private:
  const Layout& layout_;
  ProcessId target_;
  SimTime marker_;
  SimTime last_ = kNever;
  LogHistogram before_;
  LogHistogram after_;
  SimDuration max_after_ = 0;
  std::uint64_t writes_ = 0;
};

}  // namespace omega
