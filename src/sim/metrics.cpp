#include "sim/metrics.h"

#include "common/check.h"

namespace omega {

Metrics::Metrics(std::uint32_t n) : per_(n) {
  OMEGA_CHECK(n >= 1, "metrics for empty system");
}

void Metrics::on_leader_query(ProcessId pid, ProcessId output, SimTime now) {
  OMEGA_CHECK(pid < per_.size(), "bad pid " << pid);
  // Ω Validity: every leader() output is a process identity — checked on
  // every single invocation of every run, not just at the end.
  OMEGA_CHECK(output < per_.size(),
              "leader() of p" << pid << " returned non-id " << output);
  auto& p = per_[pid];
  ++p.queries;
  if (output != p.last_output) {
    p.last_output = output;
    p.last_change = now;
    ++p.changes;
    if (now >= marker_) ++p.changes_after_marker;
  }
}

void Metrics::on_timer_armed(ProcessId pid, std::uint64_t x,
                             SimDuration /*duration*/, SimTime /*now*/) {
  OMEGA_CHECK(pid < per_.size(), "bad pid " << pid);
  auto& p = per_[pid];
  ++p.timers_armed;
  p.max_timeout = std::max(p.max_timeout, x);
}

ConvergenceReport Metrics::convergence(const CrashPlan& plan) const {
  ConvergenceReport rep;
  // Consider exactly the processes that never halt (crash or pause): those
  // are the ones whose outputs must eventually agree. (A paused process is
  // correct but stops invoking leader(); its stale output is measured by the
  // lower-bound experiments, not here.)
  ProcessId agreed = kNoProcess;
  SimTime latest = 0;
  bool any = false;
  for (ProcessId i = 0; i < per_.size(); ++i) {
    if (plan.halt_time(i) != kNever) continue;
    const auto& p = per_[i];
    rep.total_changes += p.changes;
    rep.changes_after_marker += p.changes_after_marker;
    if (p.queries == 0) return rep;  // a live process never sampled: no claim
    if (!any) {
      agreed = p.last_output;
      any = true;
    } else if (p.last_output != agreed) {
      return rep;  // live processes disagree: not converged
    }
    latest = std::max(latest, p.last_change);
  }
  if (!any || agreed == kNoProcess) return rep;
  if (!plan.is_correct(agreed)) return rep;  // elected a crashed process
  rep.converged = true;
  rep.leader = agreed;
  rep.time = latest;
  return rep;
}

ProcessId Metrics::last_output(ProcessId pid) const {
  OMEGA_CHECK(pid < per_.size(), "bad pid " << pid);
  return per_[pid].last_output;
}
SimTime Metrics::last_change(ProcessId pid) const {
  OMEGA_CHECK(pid < per_.size(), "bad pid " << pid);
  return per_[pid].last_change;
}
std::uint64_t Metrics::queries(ProcessId pid) const {
  OMEGA_CHECK(pid < per_.size(), "bad pid " << pid);
  return per_[pid].queries;
}
std::uint64_t Metrics::changes(ProcessId pid) const {
  OMEGA_CHECK(pid < per_.size(), "bad pid " << pid);
  return per_[pid].changes;
}
std::uint64_t Metrics::timers_armed(ProcessId pid) const {
  OMEGA_CHECK(pid < per_.size(), "bad pid " << pid);
  return per_[pid].timers_armed;
}
std::uint64_t Metrics::max_timeout_param(ProcessId pid) const {
  OMEGA_CHECK(pid < per_.size(), "bad pid " << pid);
  return per_[pid].max_timeout;
}

WriterCensus diff_writers(const InstrumentationSnapshot& a,
                          const InstrumentationSnapshot& b) {
  OMEGA_CHECK(a.writes_by.size() == b.writes_by.size(),
              "snapshot size mismatch");
  WriterCensus c;
  c.writes_by.resize(b.writes_by.size());
  for (std::size_t i = 0; i < b.writes_by.size(); ++i) {
    OMEGA_CHECK(b.writes_by[i] >= a.writes_by[i], "snapshots out of order");
    c.writes_by[i] = b.writes_by[i] - a.writes_by[i];
    if (c.writes_by[i] > 0) ++c.distinct_writers;
  }
  return c;
}

WriteGapObserver::WriteGapObserver(const Layout& layout, ProcessId target,
                                   SimTime marker)
    : layout_(layout), target_(target), marker_(marker) {}

void WriteGapObserver::on_access(const AccessEvent& ev) {
  if (!ev.is_write || ev.pid != target_) return;
  if (!layout_.is_critical(ev.cell)) return;
  ++writes_;
  if (last_ != kNever) {
    const SimDuration gap = ev.when - last_;
    if (last_ >= marker_) {
      after_.add(static_cast<std::uint64_t>(gap));
      max_after_ = std::max(max_after_, gap);
    } else {
      before_.add(static_cast<std::uint64_t>(gap));
    }
  }
  last_ = ev.when;
}

}  // namespace omega
