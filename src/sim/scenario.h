// Canned run configurations. Tests, benches and examples all build runs the
// same way: pick an algorithm, a world (schedule family), a timer model, a
// crash plan and a seed; get back a ready SimDriver. Keeping the recipe in
// one place makes every experiment reproducible from its printed config.
#pragma once

#include <memory>
#include <string>

#include "core/factory.h"
#include "sim/driver.h"

namespace omega {

/// Schedule family for a run.
enum class World : std::uint8_t {
  kSync,            ///< lock-step (unit delays) — easiest possible world
  kAwb,             ///< AWB only: one timely process, others bursty
  kAdversarialAwb,  ///< AWB only: others run escalating zero-delay bursts
  kEs,              ///< eventually synchronous: everyone bounded after GST
};

/// Timer model family for a run.
enum class TimerKind : std::uint8_t {
  kPerfect,
  kChaoticPrefix,
  kNonMonotone,
  kSubDominating,  ///< violates AWB2 — negative control
};

std::string world_name(World w);
std::string timer_name(TimerKind t);

struct ScenarioConfig {
  AlgoKind algo = AlgoKind::kWriteEfficient;
  std::uint32_t n = 8;
  World world = World::kAwb;
  TimerKind timer = TimerKind::kPerfect;

  SimTime gst = 2000;       ///< global stabilization time of the schedule
  SimDuration delta = 8;    ///< AWB1 bound for the timely process
  /// Ticks per timeout unit. A deployment constant, not part of AWB: any
  /// value converges eventually, but if the unit is below the leader's
  /// signal re-arm period (≈ one heartbeat round ≈ 2n steps for Algorithm 2)
  /// the suspicion counters go through a *very* long marginal warm-up in
  /// which rare timing coincidences keep leaking suspicions and rotating the
  /// minimum. 4·delta clears the re-arm period comfortably at these system
  /// sizes. Experiment E11 sweeps this knob.
  SimDuration timer_unit = 32;
  ProcessId timely = 0;     ///< the AWB1 process (never crashed)

  std::uint32_t crashes = 0;   ///< random victims (≠ timely), crash in window
  SimTime crash_window = 1500;

  bool cold_start = false;     ///< candidates_i = {i} instead of all ids
  bool garbage_init = false;   ///< arbitrary initial register values (fn. 7)
  std::uint64_t garbage_max = 64;

  std::uint64_t seed = 1;

  /// Optional application register groups declared into the same memory
  /// (e.g. consensus ballots; see consensus/consensus.h).
  LayoutExtension extra_registers;

  std::string label() const;
};

/// Builds the fully wired driver for `cfg`. `memory_factory` defaults to
/// SimMemory (pass the SAN factory to run over simulated network disks).
std::unique_ptr<SimDriver> make_scenario(
    const ScenarioConfig& cfg, const MemoryFactory& memory_factory = {});

}  // namespace omega
