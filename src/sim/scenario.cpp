#include "sim/scenario.h"

#include <sstream>

namespace omega {

std::string world_name(World w) {
  switch (w) {
    case World::kSync:
      return "sync";
    case World::kAwb:
      return "awb";
    case World::kAdversarialAwb:
      return "awb-adversarial";
    case World::kEs:
      return "ev-sync";
  }
  return "?";
}

std::string timer_name(TimerKind t) {
  switch (t) {
    case TimerKind::kPerfect:
      return "perfect";
    case TimerKind::kChaoticPrefix:
      return "chaotic-prefix";
    case TimerKind::kNonMonotone:
      return "non-monotone";
    case TimerKind::kSubDominating:
      return "sub-dominating";
  }
  return "?";
}

std::string ScenarioConfig::label() const {
  std::ostringstream os;
  os << algo_name(algo) << "/n=" << n << "/" << world_name(world) << "/"
     << timer_name(timer) << "/crashes=" << crashes << "/seed=" << seed;
  if (cold_start) os << "/cold";
  if (garbage_init) os << "/garbage";
  return os.str();
}

std::unique_ptr<SimDriver> make_scenario(const ScenarioConfig& cfg,
                                         const MemoryFactory& memory_factory) {
  OMEGA_CHECK(cfg.timely < cfg.n, "timely id out of range");
  Rng rng(cfg.seed ^ 0xC0FFEE);

  // Instance: warm start (all candidates) unless cold. If garbage_init is
  // set, arbitrary values are poked into every register *before* the
  // processes are constructed (footnote 7: the algorithms are
  // self-stabilizing w.r.t. initial register contents, and the processes
  // seed their local mirrors from memory at construction) — the memory
  // factory hook runs at exactly the right moment.
  std::vector<ProcessId> initial;
  if (!cfg.cold_start) {
    for (ProcessId i = 0; i < cfg.n; ++i) initial.push_back(i);
  }
  MemoryFactory mf = [&](Layout layout, std::uint32_t n) {
    std::unique_ptr<MemoryBackend> mem =
        memory_factory ? memory_factory(layout, n)
                       : std::make_unique<SimMemory>(std::move(layout), n);
    if (cfg.garbage_init) {
      for (std::uint32_t idx = 0; idx < mem->layout().size(); ++idx) {
        mem->poke(Cell{idx},
                  static_cast<std::uint64_t>(rng.uniform(
                      0, static_cast<std::int64_t>(cfg.garbage_max))));
      }
    }
    return mem;
  };
  OmegaInstance inst =
      make_omega(cfg.algo, cfg.n, initial, mf, cfg.extra_registers);

  // Schedule.
  std::unique_ptr<ScheduleModel> sched;
  switch (cfg.world) {
    case World::kSync:
      sched = make_synchronous_schedule();
      break;
    case World::kAwb:
      sched = make_awb_schedule(cfg.n, cfg.timely, cfg.gst, cfg.delta);
      break;
    case World::kAdversarialAwb:
      sched = make_adversarial_awb_schedule(
          cfg.n, cfg.timely, cfg.gst, cfg.delta,
          /*pause=*/64 * cfg.delta, /*initial_burst=*/16);
      break;
    case World::kEs:
      sched = make_es_schedule(cfg.n, cfg.gst, cfg.delta);
      break;
  }

  // Timer.
  std::unique_ptr<TimerModel> timer;
  switch (cfg.timer) {
    case TimerKind::kPerfect:
      timer = make_perfect_timer(cfg.timer_unit);
      break;
    case TimerKind::kChaoticPrefix:
      timer = make_chaotic_prefix_timer(cfg.gst, cfg.timer_unit,
                                        /*chaos_max=*/4 * cfg.timer_unit);
      break;
    case TimerKind::kNonMonotone:
      timer = make_nonmonotone_timer(cfg.timer_unit, /*jitter=*/1.0);
      break;
    case TimerKind::kSubDominating:
      timer = make_subdominating_timer(cfg.timer_unit, /*cap=*/2);
      break;
  }

  // Crashes: random victims, never the timely process.
  CrashPlan plan = cfg.crashes == 0
                       ? CrashPlan::none(cfg.n)
                       : CrashPlan::random(cfg.n, cfg.crashes,
                                           cfg.crash_window, cfg.timely, rng);

  SimParams params;
  params.seed = cfg.seed;
  auto driver = std::make_unique<SimDriver>(std::move(inst), std::move(sched),
                                            std::move(timer), std::move(plan),
                                            params);
  driver->metrics().set_flap_marker(cfg.gst);
  return driver;
}

}  // namespace omega
