// The discrete-event driver: owns an Ω instance (memory + processes), a step
// schedule, a timer model and a crash plan, and executes the run.
//
// Execution model (matches §2 of the paper):
//  * Each scheduled step of a process performs at most one shared-memory
//    access (the pending operation of one of its tasks). The schedule decides
//    inter-step delays — that is where asynchrony and AWB1 live.
//  * Within a process, task T3 (monitor) has priority while it is mid-scan;
//    otherwise T2 (heartbeat) and any application tasks round-robin. This is
//    one legal interleaving of the paper's concurrent local tasks.
//  * When T3 re-suspends on its timer, the driver arms the timer through the
//    run's TimerModel with the algorithm's next_timeout() — that is where
//    AWB2 lives.
//  * leader() (task T1) executes synchronously at the step that requested it,
//    with instrumented reads.
//
// Determinism: ties in the event order break by process id; all randomness
// comes from per-process forks of the run seed.
#pragma once

#include <memory>
#include <vector>

#include "core/factory.h"
#include "core/proc_task.h"
#include "sim/crash_plan.h"
#include "sim/metrics.h"
#include "sim/schedule.h"
#include "sim/timer_model.h"
#include "sim/trace.h"

namespace omega {

struct SimParams {
  std::uint64_t seed = 1;
  /// Anti-livelock bound: after this many consecutive zero-delay steps a
  /// process is forced to advance time by one tick. Escalating-burst
  /// adversaries stay far below it per burst.
  std::uint64_t max_zero_streak = 1u << 16;
};

class SimDriver {
 public:
  SimDriver(OmegaInstance instance, std::unique_ptr<ScheduleModel> schedule,
            std::unique_ptr<TimerModel> timer, CrashPlan plan,
            SimParams params = {});

  /// Advances simulated time to `t`, executing every due step.
  void run_until(SimTime t);
  void run_for(SimDuration d) { run_until(now_ + d); }

  SimTime now() const noexcept { return now_; }
  std::uint32_t n() const noexcept {
    return static_cast<std::uint32_t>(rt_.size());
  }

  MemoryBackend& memory() noexcept { return *inst_.memory; }
  OmegaProcess& process(ProcessId pid);
  Metrics& metrics() noexcept { return metrics_; }
  const ScheduleModel& schedule() const noexcept { return *schedule_; }
  const TimerModel& timer_model() const noexcept { return *timer_; }
  CrashPlan& plan() noexcept { return plan_; }
  const CrashPlan& plan() const noexcept { return plan_; }

  /// Application-level leader() invocation (task T1 on behalf of the app):
  /// instrumented like any T1 call but not recorded as a T2 sample.
  ProcessId query_leader(ProcessId pid);

  /// Attaches a trace log; the driver records leadership changes, timer
  /// armings and halts (suspicions come from a SuspicionTracer observer).
  void set_trace(TraceLog* trace) noexcept { trace_ = trace; }

  /// Attaches an application coroutine (e.g. a consensus proposer) to `pid`;
  /// it shares the process's steps with task T2.
  void add_app_task(ProcessId pid, ProcTask task);
  /// True iff every attached application task has run to completion.
  bool all_apps_done() const;
  /// True iff `pid`'s application tasks (if any) all completed.
  bool apps_done(ProcessId pid) const;

 private:
  struct ProcRuntime {
    ProcTask heartbeat;
    ProcTask monitor;
    std::vector<ProcTask> apps;
    std::size_t rr = 0;  ///< round-robin cursor over heartbeat+apps
    SimTime next_step = 0;
    SimTime timer_deadline = kNever;
    bool timer_armed = false;
    bool halted = false;
    std::uint64_t zero_streak = 0;
    Rng sched_rng;
    Rng timer_rng;
  };

  void step(ProcessId pid);
  /// Executes the pending op of `task`; returns any extra access latency.
  SimDuration exec_op(ProcessId pid, ProcTask& task);
  void arm_timer_if_waiting(ProcessId pid);
  void schedule_next(ProcessId pid, SimDuration access_cost);

  OmegaInstance inst_;  // declared before rt_: tasks die before processes
  std::unique_ptr<ScheduleModel> schedule_;
  std::unique_ptr<TimerModel> timer_;
  CrashPlan plan_;
  SimParams params_;
  Metrics metrics_;
  std::vector<ProcRuntime> rt_;
  TraceLog* trace_ = nullptr;
  SimTime now_ = 0;
};

}  // namespace omega
