// Step schedules: the executable form of the asynchrony model and of
// assumption AWB1 (§2.3).
//
// The simulator asks the schedule, after each step of p_i at time `now`, how
// long until p_i's next step. A step performs at most one shared-memory
// access, so "consecutive accesses of p_ℓ complete within δ" (AWB1) is
// literally "the schedule gives p_ℓ inter-step delays ≤ δ after GST".
// Everything before GST — and everything about non-ℓ processes after GST —
// may be arbitrary: pauses, bursts, even unboundedly accelerating bursts
// (zero-delay batches), which is what separates AWB from eventual synchrony.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"

namespace omega {

class ScheduleModel {
 public:
  virtual ~ScheduleModel() = default;

  /// Delay from `now` until `pid`'s next step. May be 0 (a burst of steps at
  /// one tick — unbounded relative speed); the driver bounds zero-streaks to
  /// keep runs finite.
  virtual SimDuration next_step_delay(ProcessId pid, SimTime now,
                                      Rng& rng) = 0;

  virtual std::string describe() const = 0;
};

/// Per-process behaviour after GST.
enum class PostGst : std::uint8_t {
  kTimely,      ///< inter-step delay uniform in [1, delta] — the AWB1 process
  kBounded,     ///< uniform in [1, bound] — eventually-synchronous process
  kBursty,      ///< heavy-tailed delays: mostly short, occasional long pauses
  kEscalating,  ///< pause P, then a burst of B zero-delay steps, B growing
                ///< linearly without bound — unbounded relative speed
                ///< forever (kills step-counted timeouts; harmless for
                ///< real-time timers). Linear growth keeps simulation cost
                ///< quadratic in the horizon while still outpacing the
                ///< +1-per-suspicion timeout adaptation.
};

/// Configuration of one process's schedule.
struct StepProfile {
  // Before GST: uniform delays in [pre_lo, pre_hi], plus with probability
  // pre_pause_prob a pause up to pre_pause_max (models the fully
  // asynchronous prefix).
  SimDuration pre_lo = 1;
  SimDuration pre_hi = 8;
  double pre_pause_prob = 0.05;
  SimDuration pre_pause_max = 200;

  PostGst post = PostGst::kBounded;
  SimDuration post_a = 1;  ///< kTimely: delta; kBounded: bound; kBursty: typical
  SimDuration post_b = 0;  ///< kBursty: max pause; kEscalating: initial
                           ///< burst length = per-cycle growth increment
};

/// General GST-structured schedule: arbitrary before `gst`, per-profile after.
class ProfileSchedule final : public ScheduleModel {
 public:
  ProfileSchedule(SimTime gst, std::vector<StepProfile> profiles,
                  std::string label);

  SimDuration next_step_delay(ProcessId pid, SimTime now, Rng& rng) override;
  std::string describe() const override { return label_; }

  SimTime gst() const noexcept { return gst_; }

 private:
  SimTime gst_;
  std::vector<StepProfile> profiles_;
  std::string label_;
  // kEscalating per-process state.
  std::vector<std::uint64_t> burst_left_;
  std::vector<std::uint64_t> burst_len_;
};

/// Everyone steps with unit delay from time 0 (lock-step; handy for unit
/// tests and deterministic examples).
std::unique_ptr<ScheduleModel> make_synchronous_schedule();

/// AWB-only world: after `gst`, process `timely` is kTimely(delta) and every
/// other process is kBursty — AWB1 holds for `timely`, nothing holds for the
/// rest. Before gst everyone is chaotic-asynchronous.
std::unique_ptr<ScheduleModel> make_awb_schedule(std::uint32_t n,
                                                 ProcessId timely,
                                                 SimTime gst,
                                                 SimDuration delta);

/// Eventually-synchronous world: after `gst` every process is kBounded(bound)
/// — the stronger assumption of the baseline [13].
std::unique_ptr<ScheduleModel> make_es_schedule(std::uint32_t n, SimTime gst,
                                                SimDuration bound);

/// Adversarial AWB world: after `gst`, `timely` is kTimely(delta) and all
/// others are kEscalating — relative speeds unbounded forever. AWB still
/// holds (only the leader's timeliness matters), eventual synchrony never
/// does. Used by E8 to separate the assumptions.
std::unique_ptr<ScheduleModel> make_adversarial_awb_schedule(
    std::uint32_t n, ProcessId timely, SimTime gst, SimDuration delta,
    SimDuration pause, SimDuration initial_burst);

}  // namespace omega
