#include "sim/schedule.h"

#include <sstream>

#include "common/check.h"

namespace omega {

ProfileSchedule::ProfileSchedule(SimTime gst, std::vector<StepProfile> profiles,
                                 std::string label)
    : gst_(gst),
      profiles_(std::move(profiles)),
      label_(std::move(label)),
      burst_left_(profiles_.size(), 0),
      burst_len_(profiles_.size(), 0) {
  OMEGA_CHECK(!profiles_.empty(), "schedule needs >= 1 profile");
  for (std::size_t i = 0; i < profiles_.size(); ++i) {
    burst_len_[i] = static_cast<std::uint64_t>(
        std::max<SimDuration>(1, profiles_[i].post_b));
  }
}

SimDuration ProfileSchedule::next_step_delay(ProcessId pid, SimTime now,
                                             Rng& rng) {
  OMEGA_CHECK(pid < profiles_.size(), "bad pid " << pid);
  const StepProfile& p = profiles_[pid];
  if (now < gst_) {
    if (rng.bernoulli(p.pre_pause_prob)) {
      return rng.uniform(p.pre_hi, p.pre_pause_max);
    }
    return rng.uniform(p.pre_lo, p.pre_hi);
  }
  switch (p.post) {
    case PostGst::kTimely:
      // AWB1: consecutive accesses within delta — never more, no lower
      // bound on speed is needed so we allow the full [1, delta].
      return rng.uniform(1, std::max<SimDuration>(1, p.post_a));
    case PostGst::kBounded:
      return rng.uniform(1, std::max<SimDuration>(1, p.post_a));
    case PostGst::kBursty:
      // Mostly fast steps with recurring heavy-tailed pauses: the process is
      // correct (infinitely many steps) but has no speed bound in either
      // direction.
      return rng.heavy_tail(1, std::max<SimDuration>(2, p.post_b), 0.3, 6.0);
    case PostGst::kEscalating: {
      auto& left = burst_left_[pid];
      auto& len = burst_len_[pid];
      if (left > 0) {
        --left;
        return 0;  // zero-delay: arbitrarily many steps per tick
      }
      left = len;
      len += static_cast<std::uint64_t>(std::max<SimDuration>(1, p.post_b));
      return std::max<SimDuration>(1, p.post_a);  // the inter-burst pause
    }
  }
  OMEGA_CHECK(false, "unreachable post-gst kind");
  return 1;
}

std::unique_ptr<ScheduleModel> make_synchronous_schedule() {
  class Synchronous final : public ScheduleModel {
   public:
    SimDuration next_step_delay(ProcessId, SimTime, Rng&) override {
      return 1;
    }
    std::string describe() const override { return "synchronous(1)"; }
  };
  return std::make_unique<Synchronous>();
}

std::unique_ptr<ScheduleModel> make_awb_schedule(std::uint32_t n,
                                                 ProcessId timely, SimTime gst,
                                                 SimDuration delta) {
  OMEGA_CHECK(timely < n, "timely process out of range");
  std::vector<StepProfile> ps(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    if (i == timely) {
      ps[i].post = PostGst::kTimely;
      ps[i].post_a = delta;
    } else {
      ps[i].post = PostGst::kBursty;
      ps[i].post_b = 4 * delta;
    }
  }
  std::ostringstream os;
  os << "awb(timely=p" << timely << ", gst=" << gst << ", delta=" << delta
     << ", others=bursty)";
  return std::make_unique<ProfileSchedule>(gst, std::move(ps), os.str());
}

std::unique_ptr<ScheduleModel> make_es_schedule(std::uint32_t n, SimTime gst,
                                                SimDuration bound) {
  std::vector<StepProfile> ps(n);
  for (auto& p : ps) {
    p.post = PostGst::kBounded;
    p.post_a = bound;
  }
  std::ostringstream os;
  os << "eventually-synchronous(gst=" << gst << ", bound=" << bound << ")";
  return std::make_unique<ProfileSchedule>(gst, std::move(ps), os.str());
}

std::unique_ptr<ScheduleModel> make_adversarial_awb_schedule(
    std::uint32_t n, ProcessId timely, SimTime gst, SimDuration delta,
    SimDuration pause, SimDuration initial_burst) {
  OMEGA_CHECK(timely < n, "timely process out of range");
  std::vector<StepProfile> ps(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    if (i == timely) {
      ps[i].post = PostGst::kTimely;
      ps[i].post_a = delta;
    } else {
      ps[i].post = PostGst::kEscalating;
      ps[i].post_a = pause;
      ps[i].post_b = initial_burst;
    }
  }
  std::ostringstream os;
  os << "adversarial-awb(timely=p" << timely << ", gst=" << gst
     << ", delta=" << delta << ", others=escalating-bursts)";
  return std::make_unique<ProfileSchedule>(gst, std::move(ps), os.str());
}

}  // namespace omega
