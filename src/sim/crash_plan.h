// Crash and pause plans. A *crash* is permanent (the paper's failure model,
// §2.1): the process executes no step after its crash time. A *pause* stops a
// process from stepping after a given time without marking it faulty — the
// device used by the paper's indistinguishability arguments (Lemmas 5-6,
// Theorem 5): an asynchronous process that is "stopped" is indistinguishable,
// over any finite window, from a crashed one.
#pragma once

#include <cstdint>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"

namespace omega {

class CrashPlan {
 public:
  /// No failures.
  static CrashPlan none(std::uint32_t n);

  /// Explicit (pid, time) crash list.
  static CrashPlan at(std::uint32_t n,
                      std::vector<std::pair<ProcessId, SimTime>> crashes);

  /// `count` distinct random victims (never `spared`), crash times uniform in
  /// [0, window]. Requires count < n.
  static CrashPlan random(std::uint32_t n, std::uint32_t count,
                          SimTime window, ProcessId spared, Rng& rng);

  std::uint32_t n() const noexcept {
    return static_cast<std::uint32_t>(crash_time_.size());
  }

  SimTime crash_time(ProcessId pid) const;
  bool crashed_by(ProcessId pid, SimTime t) const {
    return crash_time(pid) <= t;
  }
  /// Correct = never crashes (pauses do not count: a paused process is slow,
  /// not faulty).
  bool is_correct(ProcessId pid) const { return crash_time(pid) == kNever; }
  std::vector<ProcessId> correct() const;
  std::uint32_t num_faulty() const;

  /// Stops `pid` from stepping at `t` without marking it faulty.
  void pause_forever(ProcessId pid, SimTime t);
  SimTime pause_time(ProcessId pid) const;

  /// First time at which `pid` no longer steps (min of crash and pause).
  SimTime halt_time(ProcessId pid) const;

 private:
  explicit CrashPlan(std::uint32_t n)
      : crash_time_(n, kNever), pause_time_(n, kNever) {}

  std::vector<SimTime> crash_time_;
  std::vector<SimTime> pause_time_;
};

}  // namespace omega
