// Timer models: the executable form of assumption AWB2 (§2.3).
//
// When task T3 re-arms a timer with parameter x at sim time τ, the model
// decides the real expiry duration T_R(τ, x). AWB2 requires only that after
// some point T_R dominates an eventually-monotone, diverging function
// f_R(τ, x) — the timer may behave arbitrarily for an arbitrary finite
// prefix, and may be non-monotone afterwards (paper Figure 1). The models
// below span that spectrum, plus a deliberately AWB2-violating control.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/ids.h"
#include "common/rng.h"

namespace omega {

class TimerModel {
 public:
  virtual ~TimerModel() = default;

  /// Real duration until expiry for a timer armed at `now` with parameter
  /// `x`. Must be >= 1 (an expiry strictly in the future).
  virtual SimDuration duration(SimTime now, std::uint64_t x, Rng& rng) = 0;

  virtual std::string describe() const = 0;

  /// True iff the model satisfies AWB2 (used by tests to decide which runs
  /// must converge; the violating model is a negative control).
  virtual bool satisfies_awb2() const { return true; }
};

/// T(τ, x) = x · unit. The textbook monotone timer — the *strongest* member
/// of the AWB2 family.
std::unique_ptr<TimerModel> make_perfect_timer(SimDuration unit);

/// Arbitrary garbage durations in [1, chaos_max] until `chaos_until`, then
/// x · unit. Models the "timers can behave arbitrarily during arbitrarily
/// long (but finite) periods" clause.
std::unique_ptr<TimerModel> make_chaotic_prefix_timer(SimTime chaos_until,
                                                      SimDuration unit,
                                                      SimDuration chaos_max);

/// x · unit · (1 + U[0, jitter]) — never below x · unit (so it dominates
/// f(τ,x) = x·unit) but non-monotone in arming time: a later, larger timeout
/// can expire sooner than an earlier, smaller one. Exercises the generality
/// of the asymptotically-well-behaved definition (paper Figure 1's wiggly
/// T_R curve).
std::unique_ptr<TimerModel> make_nonmonotone_timer(SimDuration unit,
                                                   double jitter);

/// min(x, cap) · unit — VIOLATES AWB2: T_R is bounded, so no diverging f_R
/// is dominated (condition f2 fails). With this timer the suspicion counters
/// can grow forever and leadership may never stabilize. Negative control.
std::unique_ptr<TimerModel> make_subdominating_timer(SimDuration unit,
                                                     std::uint64_t cap);

}  // namespace omega
