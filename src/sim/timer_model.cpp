#include "sim/timer_model.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"

namespace omega {

namespace {

class PerfectTimer final : public TimerModel {
 public:
  explicit PerfectTimer(SimDuration unit) : unit_(unit) {
    OMEGA_CHECK(unit >= 1, "timer unit must be >= 1");
  }
  SimDuration duration(SimTime, std::uint64_t x, Rng&) override {
    return std::max<SimDuration>(1, static_cast<SimDuration>(x) * unit_);
  }
  std::string describe() const override {
    std::ostringstream os;
    os << "perfect(unit=" << unit_ << ")";
    return os.str();
  }

 private:
  SimDuration unit_;
};

class ChaoticPrefixTimer final : public TimerModel {
 public:
  ChaoticPrefixTimer(SimTime chaos_until, SimDuration unit,
                     SimDuration chaos_max)
      : chaos_until_(chaos_until), unit_(unit), chaos_max_(chaos_max) {
    OMEGA_CHECK(unit >= 1 && chaos_max >= 1, "bad chaotic timer params");
  }
  SimDuration duration(SimTime now, std::uint64_t x, Rng& rng) override {
    if (now < chaos_until_) {
      // Anything goes: durations unrelated to x, often absurdly short —
      // exactly the prefix misbehavior AWB2 tolerates.
      return rng.uniform(1, chaos_max_);
    }
    return std::max<SimDuration>(1, static_cast<SimDuration>(x) * unit_);
  }
  std::string describe() const override {
    std::ostringstream os;
    os << "chaotic-prefix(until=" << chaos_until_ << ", unit=" << unit_ << ")";
    return os.str();
  }

 private:
  SimTime chaos_until_;
  SimDuration unit_;
  SimDuration chaos_max_;
};

class NonMonotoneTimer final : public TimerModel {
 public:
  NonMonotoneTimer(SimDuration unit, double jitter)
      : unit_(unit), jitter_(jitter) {
    OMEGA_CHECK(unit >= 1 && jitter >= 0.0, "bad non-monotone timer params");
  }
  SimDuration duration(SimTime, std::uint64_t x, Rng& rng) override {
    const double base = static_cast<double>(x) * static_cast<double>(unit_);
    const double scaled = base * (1.0 + rng.uniform01() * jitter_);
    return std::max<SimDuration>(1, static_cast<SimDuration>(scaled));
  }
  std::string describe() const override {
    std::ostringstream os;
    os << "non-monotone(unit=" << unit_ << ", jitter=" << jitter_ << ")";
    return os.str();
  }

 private:
  SimDuration unit_;
  double jitter_;
};

class SubDominatingTimer final : public TimerModel {
 public:
  SubDominatingTimer(SimDuration unit, std::uint64_t cap)
      : unit_(unit), cap_(cap) {
    OMEGA_CHECK(unit >= 1 && cap >= 1, "bad sub-dominating timer params");
  }
  SimDuration duration(SimTime, std::uint64_t x, Rng&) override {
    const std::uint64_t clamped = std::min(x, cap_);
    return std::max<SimDuration>(1,
                                 static_cast<SimDuration>(clamped) * unit_);
  }
  std::string describe() const override {
    std::ostringstream os;
    os << "sub-dominating(unit=" << unit_ << ", cap=" << cap_
       << ") [VIOLATES AWB2]";
    return os.str();
  }
  bool satisfies_awb2() const override { return false; }

 private:
  SimDuration unit_;
  std::uint64_t cap_;
};

}  // namespace

std::unique_ptr<TimerModel> make_perfect_timer(SimDuration unit) {
  return std::make_unique<PerfectTimer>(unit);
}

std::unique_ptr<TimerModel> make_chaotic_prefix_timer(SimTime chaos_until,
                                                      SimDuration unit,
                                                      SimDuration chaos_max) {
  return std::make_unique<ChaoticPrefixTimer>(chaos_until, unit, chaos_max);
}

std::unique_ptr<TimerModel> make_nonmonotone_timer(SimDuration unit,
                                                   double jitter) {
  return std::make_unique<NonMonotoneTimer>(unit, jitter);
}

std::unique_ptr<TimerModel> make_subdominating_timer(SimDuration unit,
                                                     std::uint64_t cap) {
  return std::make_unique<SubDominatingTimer>(unit, cap);
}

}  // namespace omega
