#include "sim/crash_plan.h"

#include <algorithm>

#include "common/check.h"

namespace omega {

CrashPlan CrashPlan::none(std::uint32_t n) {
  OMEGA_CHECK(n >= 1, "empty system");
  return CrashPlan{n};
}

CrashPlan CrashPlan::at(std::uint32_t n,
                        std::vector<std::pair<ProcessId, SimTime>> crashes) {
  CrashPlan plan{n};
  for (const auto& [pid, t] : crashes) {
    OMEGA_CHECK(pid < n, "crash of unknown p" << pid);
    OMEGA_CHECK(t >= 0, "negative crash time");
    plan.crash_time_[pid] = std::min(plan.crash_time_[pid], t);
  }
  OMEGA_CHECK(plan.num_faulty() < n, "all processes crash: no run possible");
  return plan;
}

CrashPlan CrashPlan::random(std::uint32_t n, std::uint32_t count,
                            SimTime window, ProcessId spared, Rng& rng) {
  OMEGA_CHECK(count < n, "must spare at least one process");
  OMEGA_CHECK(spared < n, "spared process out of range");
  CrashPlan plan{n};
  std::vector<ProcessId> pool;
  for (ProcessId i = 0; i < n; ++i) {
    if (i != spared) pool.push_back(i);
  }
  // Partial Fisher-Yates for `count` distinct victims.
  for (std::uint32_t c = 0; c < count; ++c) {
    const auto j = static_cast<std::size_t>(
        rng.uniform(static_cast<std::int64_t>(c),
                    static_cast<std::int64_t>(pool.size()) - 1));
    std::swap(pool[c], pool[j]);
    plan.crash_time_[pool[c]] = rng.uniform(0, window);
  }
  return plan;
}

SimTime CrashPlan::crash_time(ProcessId pid) const {
  OMEGA_CHECK(pid < crash_time_.size(), "bad pid " << pid);
  return crash_time_[pid];
}

std::vector<ProcessId> CrashPlan::correct() const {
  std::vector<ProcessId> out;
  for (ProcessId i = 0; i < crash_time_.size(); ++i) {
    if (crash_time_[i] == kNever) out.push_back(i);
  }
  return out;
}

std::uint32_t CrashPlan::num_faulty() const {
  std::uint32_t f = 0;
  for (auto t : crash_time_) f += (t != kNever) ? 1 : 0;
  return f;
}

void CrashPlan::pause_forever(ProcessId pid, SimTime t) {
  OMEGA_CHECK(pid < pause_time_.size(), "bad pid " << pid);
  pause_time_[pid] = std::min(pause_time_[pid], t);
}

SimTime CrashPlan::pause_time(ProcessId pid) const {
  OMEGA_CHECK(pid < pause_time_.size(), "bad pid " << pid);
  return pause_time_[pid];
}

SimTime CrashPlan::halt_time(ProcessId pid) const {
  return std::min(crash_time(pid), pause_time(pid));
}

}  // namespace omega
