// Structured run traces. The simulator can record the events that matter
// when dissecting a run — leadership changes, suspicions, timer arming,
// halts — and render them as a human-readable timeline. Used by the
// adversary_explorer example and by tests that assert on event *sequences*
// (e.g. "the suspicion of the old leader precedes the re-election").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/ids.h"
#include "registers/instrumentation.h"
#include "registers/layout.h"

namespace omega {

enum class TraceEventKind : std::uint8_t {
  kLeaderChange,  ///< actor's leader() output changed: a → b
  kSuspicion,     ///< actor wrote a suspicion counter about subject (value a)
  kTimerArmed,    ///< actor armed its timer: parameter a, duration b
  kHalt,          ///< actor crashed (a=1) or was paused (a=0)
};

std::string trace_kind_name(TraceEventKind k);

struct TraceEvent {
  SimTime when = 0;
  TraceEventKind kind = TraceEventKind::kLeaderChange;
  ProcessId actor = kNoProcess;
  ProcessId subject = kNoProcess;  ///< suspicions: who is suspected
  std::uint64_t a = 0;
  std::uint64_t b = 0;

  std::string describe() const;
};

class TraceLog {
 public:
  /// Caps memory: after `capacity` events the oldest are dropped (the count
  /// per kind keeps counting).
  explicit TraceLog(std::size_t capacity = 1 << 16);

  void record(const TraceEvent& ev);

  const std::vector<TraceEvent>& events() const noexcept { return events_; }
  std::vector<TraceEvent> of_kind(TraceEventKind k) const;
  std::uint64_t count(TraceEventKind k) const;
  std::uint64_t dropped() const noexcept { return dropped_; }

  /// Renders the last `max_lines` events, one per line, time-ordered.
  std::string render(std::size_t max_lines = 40) const;

 private:
  std::size_t capacity_;
  std::vector<TraceEvent> events_;
  std::uint64_t counts_[4] = {0, 0, 0, 0};
  std::uint64_t dropped_ = 0;
};

/// AccessObserver adapter that records suspicion-counter writes into a
/// TraceLog (works for SUSPICIONS, SUSPICIONS_V and SUSPEV families).
class SuspicionTracer final : public AccessObserver {
 public:
  SuspicionTracer(const Layout& layout, TraceLog& log);

  void on_access(const AccessEvent& ev) override;

 private:
  const Layout& layout_;
  TraceLog& log_;
  int group_ = -1;
  bool by_column_ = false;  ///< nWnR vector: subject is the array index
};

/// Fan-out observer: instrumentation holds a single observer slot; this
/// forwards each access to any number of registered observers.
class ObserverFanout final : public AccessObserver {
 public:
  void add(AccessObserver* obs);

  void on_access(const AccessEvent& ev) override;

 private:
  std::vector<AccessObserver*> observers_;
};

}  // namespace omega
