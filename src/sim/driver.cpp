#include "sim/driver.h"

namespace omega {

SimDriver::SimDriver(OmegaInstance instance,
                     std::unique_ptr<ScheduleModel> schedule,
                     std::unique_ptr<TimerModel> timer, CrashPlan plan,
                     SimParams params)
    : inst_(std::move(instance)),
      schedule_(std::move(schedule)),
      timer_(std::move(timer)),
      plan_(std::move(plan)),
      params_(params),
      metrics_(static_cast<std::uint32_t>(inst_.processes.size())) {
  OMEGA_CHECK(!inst_.processes.empty(), "driver needs >= 1 process");
  OMEGA_CHECK(schedule_ != nullptr && timer_ != nullptr, "missing models");
  OMEGA_CHECK(plan_.n() == inst_.processes.size(), "crash plan size mismatch");
  inst_.memory->set_clock([this] { return now_; });

  Rng root(params_.seed);
  rt_.resize(inst_.processes.size());
  for (ProcessId i = 0; i < rt_.size(); ++i) {
    auto& r = rt_[i];
    r.sched_rng = root.fork(2 * i);
    r.timer_rng = root.fork(2 * i + 1);
    r.heartbeat = inst_.processes[i]->task_heartbeat();
    r.monitor = inst_.processes[i]->task_monitor();
    r.heartbeat.start();
    r.monitor.start();
    arm_timer_if_waiting(i);
    // First step after an initial schedule-chosen delay (deterministic from
    // the seed); ties at equal times break by pid.
    r.next_step = std::max<SimDuration>(
        0, schedule_->next_step_delay(i, /*now=*/0, r.sched_rng));
  }
}

OmegaProcess& SimDriver::process(ProcessId pid) {
  OMEGA_CHECK(pid < inst_.processes.size(), "bad pid " << pid);
  return *inst_.processes[pid];
}

ProcessId SimDriver::query_leader(ProcessId pid) {
  OMEGA_CHECK(pid < inst_.processes.size(), "bad pid " << pid);
  OMEGA_CHECK(!rt_[pid].halted, "leader() on a halted process");
  return inst_.processes[pid]->leader();
}

void SimDriver::add_app_task(ProcessId pid, ProcTask task) {
  OMEGA_CHECK(pid < rt_.size(), "bad pid " << pid);
  OMEGA_CHECK(task.valid(), "invalid app task");
  task.start();
  rt_[pid].apps.push_back(std::move(task));
}

bool SimDriver::apps_done(ProcessId pid) const {
  OMEGA_CHECK(pid < rt_.size(), "bad pid " << pid);
  for (const auto& t : rt_[pid].apps) {
    if (!t.done()) return false;
  }
  return true;
}

bool SimDriver::all_apps_done() const {
  for (ProcessId i = 0; i < rt_.size(); ++i) {
    if (!apps_done(i)) return false;
  }
  return true;
}

void SimDriver::run_until(SimTime t) {
  for (;;) {
    ProcessId next = kNoProcess;
    SimTime best = kNever;
    for (ProcessId i = 0; i < rt_.size(); ++i) {
      if (rt_[i].halted) continue;
      if (rt_[i].next_step < best) {
        best = rt_[i].next_step;
        next = i;
      }
    }
    if (next == kNoProcess || best > t) break;
    now_ = best;
    step(next);
  }
  now_ = std::max(now_, t);
}

void SimDriver::step(ProcessId pid) {
  auto& r = rt_[pid];
  if (now_ >= plan_.halt_time(pid)) {
    // Crash (permanent halt, §2.1) or adversarial pause: the process takes
    // no further steps; its registers keep their last written values.
    r.halted = true;
    r.next_step = kNever;
    if (trace_ != nullptr) {
      TraceEvent te;
      te.when = now_;
      te.kind = TraceEventKind::kHalt;
      te.actor = pid;
      te.a = plan_.crashed_by(pid, now_) ? 1 : 0;
      trace_->record(te);
    }
    return;
  }

  // Timer delivery has priority: "when timer_i expires" (line 13) enables
  // task T3's scan.
  if (r.monitor.pending() == OpKind::kWaitTimer && r.timer_armed &&
      now_ >= r.timer_deadline) {
    r.timer_armed = false;
    r.monitor.resume(0);
    arm_timer_if_waiting(pid);  // n==1 degenerate scan re-waits at once
    schedule_next(pid, 0);
    return;
  }

  // Otherwise the process's runnable tasks share its steps round-robin:
  // slot 0 = monitor (when runnable: mid-scan, or burning its step-counted
  // countdown), slot 1 = heartbeat, slots 2.. = application tasks. Fair
  // interleaving is required — a starved T2 would never publish heartbeats
  // and a starved T3 would never suspect anyone.
  const std::size_t slots = 2 + r.apps.size();
  for (std::size_t probe = 0; probe < slots; ++probe) {
    const std::size_t slot = (r.rr + probe) % slots;
    ProcTask* task = nullptr;
    if (slot == 0) {
      const OpKind k = r.monitor.pending();
      const bool runnable =
          k == OpKind::kRead || k == OpKind::kWrite || k == OpKind::kYield;
      if (!runnable) continue;  // waiting on its timer (or degenerate)
      task = &r.monitor;
    } else if (slot == 1) {
      task = &r.heartbeat;
    } else {
      task = &r.apps[slot - 2];
      if (task->pending() == OpKind::kDone) continue;  // finished app
    }
    const SimDuration cost = exec_op(pid, *task);
    if (slot == 0) arm_timer_if_waiting(pid);
    r.rr = slot + 1;
    schedule_next(pid, cost);
    return;
  }
  // Nothing runnable (cannot happen with the eternal T2 present, but an
  // app-only process could get here): idle step.
  schedule_next(pid, 0);
}

SimDuration SimDriver::exec_op(ProcessId pid, ProcTask& task) {
  MemoryBackend& mem = *inst_.memory;
  switch (task.pending()) {
    case OpKind::kRead: {
      const Cell c = task.pending_cell();
      const SimDuration cost = mem.access_cost(c, /*is_write=*/false);
      task.resume(mem.read(pid, c));
      return cost;
    }
    case OpKind::kWrite: {
      const Cell c = task.pending_cell();
      const SimDuration cost = mem.access_cost(c, /*is_write=*/true);
      mem.write(pid, c, task.pending_value());
      task.resume(0);
      return cost;
    }
    case OpKind::kLeaderQuery: {
      const ProcessId prev = metrics_.last_output(pid);
      const ProcessId out = inst_.processes[pid]->leader();
      metrics_.on_leader_query(pid, out, now_);
      if (trace_ != nullptr && out != prev) {
        TraceEvent te;
        te.when = now_;
        te.kind = TraceEventKind::kLeaderChange;
        te.actor = pid;
        te.a = prev;
        te.b = out;
        trace_->record(te);
      }
      task.resume(out);
      return 0;
    }
    case OpKind::kYield:
      task.resume(0);
      return 0;
    case OpKind::kWaitTimer:
    case OpKind::kNone:
    case OpKind::kDone:
      break;
  }
  OMEGA_CHECK(false, "task of p" << pid << " has no executable pending op");
  return 0;
}

void SimDriver::arm_timer_if_waiting(ProcessId pid) {
  auto& r = rt_[pid];
  if (r.monitor.pending() != OpKind::kWaitTimer || r.timer_armed) return;
  const std::uint64_t x = inst_.processes[pid]->next_timeout();
  SimDuration d = timer_->duration(now_, x, r.timer_rng);
  d = std::max<SimDuration>(1, d);
  r.timer_deadline = now_ + d;
  r.timer_armed = true;
  metrics_.on_timer_armed(pid, x, d, now_);
  if (trace_ != nullptr) {
    TraceEvent te;
    te.when = now_;
    te.kind = TraceEventKind::kTimerArmed;
    te.actor = pid;
    te.a = x;
    te.b = static_cast<std::uint64_t>(d);
    trace_->record(te);
  }
}

void SimDriver::schedule_next(ProcessId pid, SimDuration access_cost) {
  auto& r = rt_[pid];
  SimDuration delay = schedule_->next_step_delay(pid, now_, r.sched_rng);
  if (delay <= 0) {
    delay = 0;
    if (++r.zero_streak > params_.max_zero_streak) {
      delay = 1;
      r.zero_streak = 0;
    }
  } else {
    r.zero_streak = 0;
  }
  r.next_step = now_ + delay + std::max<SimDuration>(0, access_cost);
}

}  // namespace omega
