#include "sim/trace.h"

#include <sstream>

#include "common/check.h"

namespace omega {

std::string trace_kind_name(TraceEventKind k) {
  switch (k) {
    case TraceEventKind::kLeaderChange:
      return "leader-change";
    case TraceEventKind::kSuspicion:
      return "suspicion";
    case TraceEventKind::kTimerArmed:
      return "timer-armed";
    case TraceEventKind::kHalt:
      return "halt";
  }
  return "?";
}

std::string TraceEvent::describe() const {
  std::ostringstream os;
  os << "t=" << when << "  ";
  switch (kind) {
    case TraceEventKind::kLeaderChange:
      os << "p" << actor << " leader ";
      if (a == kNoProcess) {
        os << "(none)";
      } else {
        os << "p" << a;
      }
      os << " -> p" << b;
      break;
    case TraceEventKind::kSuspicion:
      os << "p" << actor << " suspects p" << subject << " (count " << a
         << ")";
      break;
    case TraceEventKind::kTimerArmed:
      os << "p" << actor << " arms timer x=" << a << " (fires in " << b
         << ")";
      break;
    case TraceEventKind::kHalt:
      os << "p" << actor << (a != 0 ? " CRASHES" : " pauses forever");
      break;
  }
  return os.str();
}

TraceLog::TraceLog(std::size_t capacity) : capacity_(capacity) {
  OMEGA_CHECK(capacity >= 16, "trace capacity too small");
}

void TraceLog::record(const TraceEvent& ev) {
  ++counts_[static_cast<std::size_t>(ev.kind)];
  if (events_.size() >= capacity_) {
    // Drop the oldest half in one amortized move (cheap, keeps order).
    const std::size_t keep = capacity_ / 2;
    dropped_ += events_.size() - keep;
    events_.erase(events_.begin(),
                  events_.end() - static_cast<std::ptrdiff_t>(keep));
  }
  events_.push_back(ev);
}

std::vector<TraceEvent> TraceLog::of_kind(TraceEventKind k) const {
  std::vector<TraceEvent> out;
  for (const auto& ev : events_) {
    if (ev.kind == k) out.push_back(ev);
  }
  return out;
}

std::uint64_t TraceLog::count(TraceEventKind k) const {
  return counts_[static_cast<std::size_t>(k)];
}

std::string TraceLog::render(std::size_t max_lines) const {
  std::ostringstream os;
  const std::size_t start =
      events_.size() > max_lines ? events_.size() - max_lines : 0;
  if (start > 0 || dropped_ > 0) {
    os << "... (" << (dropped_ + start) << " earlier events)\n";
  }
  for (std::size_t i = start; i < events_.size(); ++i) {
    os << events_[i].describe() << '\n';
  }
  return os.str();
}

SuspicionTracer::SuspicionTracer(const Layout& layout, TraceLog& log)
    : layout_(layout), log_(log) {
  GroupId g = 0;
  if (layout.find_group("SUSPICIONS", g)) {
    group_ = static_cast<int>(g);
  } else if (layout.find_group("SUSPEV", g)) {
    group_ = static_cast<int>(g);
  } else if (layout.find_group("SUSPICIONS_V", g)) {
    group_ = static_cast<int>(g);
    by_column_ = true;
  }
}

void SuspicionTracer::on_access(const AccessEvent& ev) {
  if (!ev.is_write || group_ < 0) return;
  if (layout_.group_of(ev.cell) != static_cast<GroupId>(group_)) return;
  const auto& grp = layout_.group(static_cast<GroupId>(group_));
  const std::uint32_t off = ev.cell.index - grp.first;
  TraceEvent te;
  te.when = ev.when;
  te.kind = TraceEventKind::kSuspicion;
  te.actor = ev.pid;
  te.subject = by_column_ ? off : off % grp.cols;
  te.a = ev.value;
  log_.record(te);
}

void ObserverFanout::add(AccessObserver* obs) {
  OMEGA_CHECK(obs != nullptr, "null observer");
  observers_.push_back(obs);
}

void ObserverFanout::on_access(const AccessEvent& ev) {
  for (AccessObserver* obs : observers_) obs->on_access(ev);
}

}  // namespace omega
