// WalIo: the byte-level seam under the write-ahead log, in the spirit of
// the san/ disk model — the Wal never touches the filesystem directly, so
// the recovery path can be driven through every failure a real disk
// serves up. Two implementations:
//
//   * PosixWalIo  — O_APPEND files, write(2) in a short-write loop,
//     fdatasync(2); the production backend.
//   * FaultyWalIo — wraps another WalIo and injects the classic disk
//     failure menu on a deterministic schedule: short writes (partial
//     write(2) returns), torn records (a write cut mid-record and then the
//     "process" dies), fsync EIO, and ENOSPC once a byte budget is spent.
//     Unit tests aim it at the Wal's append/replay pair; the system crash
//     tests get their kill-point coverage from it for free.
//
// Handles are small non-negative integers scoped to one WalIo instance
// (PosixWalIo hands out real fds). All methods are thread-safe to the
// extent the Wal needs: one appender/flusher thread per open handle,
// replay strictly before appending starts.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace omega::wal {

class WalIo {
 public:
  virtual ~WalIo() = default;

  /// Creates `dir` (and missing parents) if absent. False on failure.
  virtual bool mkdirs(const std::string& dir) = 0;

  /// Lexicographically sorted file names (not paths) inside `dir`.
  virtual std::vector<std::string> list(const std::string& dir) = 0;

  /// Whole-file read for replay. False when the file cannot be opened.
  virtual bool read_file(const std::string& path,
                         std::vector<std::uint8_t>& out) = 0;

  /// Opens `path` for appending (creating it when absent); returns a
  /// handle >= 0, or -1 on failure.
  virtual int open_append(const std::string& path) = 0;

  /// Appends up to `n` bytes; may write fewer (short write). Returns the
  /// byte count actually written, or a negative errno on failure.
  virtual std::int64_t write(int handle, const void* data, std::size_t n) = 0;

  /// Durability barrier (fdatasync). 0 on success, negative errno else.
  virtual int sync(int handle) = 0;

  virtual void close(int handle) = 0;

  /// Truncates `path` to `size` bytes (replay drops a torn tail in place
  /// so the next append starts on a clean record boundary).
  virtual bool truncate(const std::string& path, std::uint64_t size) = 0;
};

/// The production backend: real files, real fsync.
class PosixWalIo final : public WalIo {
 public:
  bool mkdirs(const std::string& dir) override;
  std::vector<std::string> list(const std::string& dir) override;
  bool read_file(const std::string& path,
                 std::vector<std::uint8_t>& out) override;
  int open_append(const std::string& path) override;
  std::int64_t write(int handle, const void* data, std::size_t n) override;
  int sync(int handle) override;
  void close(int handle) override;
  bool truncate(const std::string& path, std::uint64_t size) override;
};

/// Deterministic fault injection over an inner WalIo (PosixWalIo unless
/// told otherwise). Every knob defaults to "off"; a zero threshold means
/// the fault never fires.
class FaultyWalIo final : public WalIo {
 public:
  struct Faults {
    /// Every Nth write() call lands at most half its bytes (0 = never).
    std::uint64_t short_write_every = 0;
    /// write() calls beyond this many hard-fail with ENOSPC, emulating a
    /// full disk (0 = unlimited).
    std::uint64_t disk_capacity_bytes = 0;
    /// sync() calls after the Nth return EIO (0 = never fail).
    std::uint64_t sync_fail_after = 0;
    /// The Nth write() call is torn: only `torn_bytes` of it reach the
    /// file and the call still reports full success — the lie a kernel
    /// page cache tells right before a power cut (0 = never).
    std::uint64_t tear_write_at = 0;
    std::uint64_t torn_bytes = 3;
  };

  explicit FaultyWalIo(Faults faults, WalIo* inner = nullptr);

  std::uint64_t writes() const noexcept { return writes_; }
  std::uint64_t syncs() const noexcept { return syncs_; }

  /// Sleeps this long inside every write() and sync(), emulating a slow
  /// or congested disk. Takes effect from the next call; 0 turns it off.
  /// Latency is injected before the fault schedule is consulted, so a
  /// slow disk still tears, shorts, and fills exactly as configured.
  void set_latency_us(std::uint64_t us) noexcept { latency_us_ = us; }
  std::uint64_t latency_us() const noexcept { return latency_us_; }

  bool mkdirs(const std::string& dir) override;
  std::vector<std::string> list(const std::string& dir) override;
  bool read_file(const std::string& path,
                 std::vector<std::uint8_t>& out) override;
  int open_append(const std::string& path) override;
  std::int64_t write(int handle, const void* data, std::size_t n) override;
  int sync(int handle) override;
  void close(int handle) override;
  bool truncate(const std::string& path, std::uint64_t size) override;

 private:
  Faults faults_;
  PosixWalIo fallback_;
  WalIo* inner_;
  std::uint64_t writes_ = 0;
  std::uint64_t syncs_ = 0;
  std::uint64_t written_bytes_ = 0;
  std::uint64_t latency_us_ = 0;
};

}  // namespace omega::wal
