#include "wal/wal.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <cstring>

#include "common/check.h"

namespace omega::wal {

namespace {

constexpr std::uint8_t kCellRecord = 1;
constexpr std::uint8_t kAppliedRecord = 2;

constexpr std::size_t kSegmentHeaderBytes = 16;
constexpr std::uint64_t kSegmentMagic = 0x4C4157414745'4D4FULL;  // "OMEGAWAL"
constexpr std::uint32_t kSegmentVersion = 1;

/// Record length sanity bound: the largest real record is an applied
/// batch of kMaxBatchCommands values (~1KB); anything past this is
/// damage, not data.
constexpr std::uint32_t kMaxRecordLen = 1u << 20;

std::int64_t steady_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t get_u64(const std::uint8_t* p) {
  return static_cast<std::uint64_t>(get_u32(p)) |
         (static_cast<std::uint64_t>(get_u32(p + 4)) << 32);
}

std::string segment_name(std::uint64_t index) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "wal-%08llu.seg",
                static_cast<unsigned long long>(index));
  return buf;
}

bool is_segment_name(const std::string& name) {
  return name.size() == 16 && name.rfind("wal-", 0) == 0 &&
         name.compare(12, 4, ".seg") == 0;
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t n, std::uint32_t seed) {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  const auto* p = static_cast<const std::uint8_t*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

std::uint32_t durable_floor(const Layout& layout) {
  GroupId g = 0;
  if (!layout.find_group("L0REG", g)) return kNoDurableFloor;
  return layout.group(g).first;
}

Wal::Wal(WalOptions opts)
    : opts_(std::move(opts)), io_(opts_.io != nullptr ? opts_.io : &posix_) {
  OMEGA_CHECK(!opts_.dir.empty(), "WAL needs a directory");
  OMEGA_CHECK(opts_.segment_bytes >= kSegmentHeaderBytes + 64,
              "segment size too small: " << opts_.segment_bytes);
  OMEGA_CHECK(io_->mkdirs(opts_.dir),
              "cannot create WAL directory " << opts_.dir);
  fsync_hist_ = &obs::histogram("wal.fsync_ns");
  appends_ctr_ = &obs::counter("wal.appended_records");
  flushes_ctr_ = &obs::counter("wal.flushes");
  errors_ctr_ = &obs::counter("wal.io_errors");
  obs::Registry& reg = obs::Registry::instance();
  gauge_ids_.push_back(reg.register_gauge("wal.segments", [this] {
    return static_cast<std::int64_t>(
        counters_.segments.load(std::memory_order_relaxed));
  }));
  gauge_ids_.push_back(reg.register_gauge("wal.replayed", [this] {
    return static_cast<std::int64_t>(replayed_records_);
  }));
  gauge_ids_.push_back(reg.register_gauge("wal.durable_lag", [this] {
    return static_cast<std::int64_t>(appended_seq() - durable_seq());
  }));
}

Wal::~Wal() {
  stop();
  if (seg_.handle >= 0) {
    io_->close(seg_.handle);
    seg_.handle = -1;
  }
  for (const std::uint64_t id : gauge_ids_) {
    obs::Registry::instance().unregister_gauge(id);
  }
}

ReplayResult Wal::replay() {
  OMEGA_CHECK(!started_, "replay after start");
  ReplayResult result;
  std::vector<std::string> segs;
  for (const auto& name : io_->list(opts_.dir)) {
    if (is_segment_name(name)) segs.push_back(name);
  }
  // Concatenate every segment's payload into one logical record stream:
  // records may straddle a roll boundary, and replay should not care.
  std::vector<std::uint8_t> stream;
  std::vector<std::pair<std::string, std::uint64_t>> spans;  // path, bytes
  for (const auto& name : segs) {
    const std::string path = opts_.dir + "/" + name;
    std::vector<std::uint8_t> file;
    if (!io_->read_file(path, file)) {
      result.corrupt = true;
      break;
    }
    if (file.size() < kSegmentHeaderBytes ||
        get_u64(file.data()) != kSegmentMagic ||
        get_u32(file.data() + 8) != kSegmentVersion) {
      // A headerless file is a crash inside segment creation: legal only
      // as the very last segment, where it holds no records yet.
      if (&name != &segs.back()) result.corrupt = true;
      else if (!file.empty()) io_->truncate(path, 0);
      break;
    }
    ++result.segments;
    spans.emplace_back(path, file.size());
    stream.insert(stream.end(), file.begin() + kSegmentHeaderBytes,
                  file.end());
  }

  std::size_t at = 0;
  std::uint64_t seq = 0;
  bool torn = false;
  while (at < stream.size()) {
    if (stream.size() - at < 8) {
      torn = true;
      break;
    }
    const std::uint32_t len = get_u32(&stream[at]);
    const std::uint32_t crc = get_u32(&stream[at + 4]);
    if (len == 0 || len > kMaxRecordLen || stream.size() - at - 8 < len ||
        crc32(&stream[at + 8], len) != crc) {
      torn = true;
      break;
    }
    const std::uint8_t* body = &stream[at + 8];
    const std::uint8_t type = body[0];
    bool ok = false;
    if (type == kCellRecord && len == 1 + 16) {
      GroupImage& img = result.groups[get_u32(body + 1)];
      img.cells[get_u32(body + 5)] = get_u64(body + 9);
      ok = true;
    } else if (type == kAppliedRecord && len >= 1 + 20) {
      const std::uint32_t gid = get_u32(body + 1);
      const std::uint32_t next_slot = get_u32(body + 5);
      const std::uint64_t first = get_u64(body + 9);
      const std::uint32_t count = get_u32(body + 17);
      if (len == 1 + 20 + std::uint64_t{count} * 8) {
        GroupImage& img = result.groups[gid];
        if (first > img.applied.size()) {
          // A hole in the applied sequence is not a torn tail — it means
          // an earlier record vanished. Refuse to fabricate a log.
          result.corrupt = true;
          break;
        }
        // Idempotent re-application: a mark may overlap the recovered
        // prefix (recovery re-journals are compaction, not history).
        for (std::uint32_t i = 0; i < count; ++i) {
          const std::uint64_t index = first + i;
          const std::uint64_t v = get_u64(body + 21 + i * 8);
          if (index < img.applied.size()) {
            if (img.applied[index] != v) {
              result.corrupt = true;
              break;
            }
          } else {
            img.applied.push_back(v);
          }
        }
        if (result.corrupt) break;
        img.next_slot = std::max(img.next_slot, next_slot);
        ok = true;
      }
    }
    if (!ok) {
      // Well-checksummed but unparseable: written by a future version or
      // damaged in a way CRC32 missed. Treat as end-of-valid-log.
      result.corrupt = true;
      break;
    }
    at += 8 + len;
    ++seq;
  }

  if (torn && !spans.empty()) {
    // Drop the torn tail in place so appends resume on a record boundary.
    // `at` indexes the logical stream; map it back into the last segment.
    std::uint64_t payload_before_last = 0;
    for (std::size_t i = 0; i + 1 < spans.size(); ++i) {
      payload_before_last += spans[i].second - kSegmentHeaderBytes;
    }
    if (at >= payload_before_last) {
      const std::uint64_t keep =
          kSegmentHeaderBytes + (at - payload_before_last);
      result.truncated_bytes = spans.back().second - keep;
      if (result.truncated_bytes > 0) {
        if (!io_->truncate(spans.back().first, keep)) result.corrupt = true;
        spans.back().second = keep;
      }
    } else {
      // The torn record started before the final segment: damage in the
      // middle of the stream, not a tail.
      result.corrupt = true;
    }
  }

  result.records = seq;
  replayed_records_ = seq;
  replayed_segments_ = result.segments;
  counters_.segments.store(result.segments, std::memory_order_relaxed);
  appended_.store(seq, std::memory_order_release);
  durable_.store(seq, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(mu_);
    buffered_through_ = seq;
  }

  // Resume appending into the last partial segment, or a fresh one.
  if (!spans.empty() && spans.back().second < opts_.segment_bytes) {
    seg_.path = spans.back().first;
    seg_.bytes = spans.back().second;
    next_segment_ = result.segments;  // the NEXT roll's index
  } else {
    next_segment_ = result.segments;
    seg_.path.clear();
    seg_.bytes = 0;
  }
  replayed_ = true;
  return result;
}

void Wal::start() {
  if (started_) return;
  if (!replayed_) (void)replay();
  started_ = true;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_flag_ = false;
  }
  flusher_ = std::thread([this] { flusher_main(); });
}

void Wal::stop() {
  if (!started_) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_flag_ = true;
  }
  cv_.notify_all();
  if (flusher_.joinable()) flusher_.join();
  started_ = false;
}

std::uint64_t Wal::append_record(const std::uint8_t* rec, std::size_t n) {
  std::uint64_t seq = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    buf_.insert(buf_.end(), rec, rec + n);
    seq = appended_.load(std::memory_order_relaxed) + 1;
    appended_.store(seq, std::memory_order_release);
    buffered_through_ = seq;
  }
  cv_.notify_one();
  appends_ctr_->add(1);
  counters_.appended_bytes.fetch_add(n, std::memory_order_relaxed);
  return seq;
}

std::uint64_t Wal::append_cell(std::uint32_t gid, std::uint32_t cell,
                               std::uint64_t value) {
  std::uint8_t rec[8 + 1 + 16];
  std::vector<std::uint8_t> body;
  body.reserve(1 + 16);
  body.push_back(kCellRecord);
  put_u32(body, gid);
  put_u32(body, cell);
  put_u64(body, value);
  const std::uint32_t len = static_cast<std::uint32_t>(body.size());
  const std::uint32_t crc = crc32(body.data(), body.size());
  rec[0] = static_cast<std::uint8_t>(len);
  rec[1] = static_cast<std::uint8_t>(len >> 8);
  rec[2] = static_cast<std::uint8_t>(len >> 16);
  rec[3] = static_cast<std::uint8_t>(len >> 24);
  rec[4] = static_cast<std::uint8_t>(crc);
  rec[5] = static_cast<std::uint8_t>(crc >> 8);
  rec[6] = static_cast<std::uint8_t>(crc >> 16);
  rec[7] = static_cast<std::uint8_t>(crc >> 24);
  std::memcpy(rec + 8, body.data(), body.size());
  return append_record(rec, 8 + body.size());
}

std::uint64_t Wal::append_applied(std::uint32_t gid, std::uint64_t first_index,
                                  std::uint32_t next_slot,
                                  const std::uint64_t* values,
                                  std::uint32_t count) {
  std::vector<std::uint8_t> body;
  body.reserve(1 + 20 + std::size_t{count} * 8);
  body.push_back(kAppliedRecord);
  put_u32(body, gid);
  put_u32(body, next_slot);
  put_u64(body, first_index);
  put_u32(body, count);
  for (std::uint32_t i = 0; i < count; ++i) put_u64(body, values[i]);
  std::vector<std::uint8_t> rec;
  rec.reserve(8 + body.size());
  put_u32(rec, static_cast<std::uint32_t>(body.size()));
  put_u32(rec, crc32(body.data(), body.size()));
  rec.insert(rec.end(), body.begin(), body.end());
  return append_record(rec.data(), rec.size());
}

void Wal::flush() {
  if (!started_) return;
  const std::uint64_t want = appended_seq();
  cv_.notify_one();
  while (durable_seq() < want && !degraded_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
}

void Wal::set_durable_listener(std::function<void(std::uint64_t)> fn) {
  OMEGA_CHECK(!started_, "install the durable listener before start()");
  durable_listener_ = std::move(fn);
}

bool Wal::open_segment(std::uint64_t index) {
  seg_.path = opts_.dir + "/" + segment_name(index);
  seg_.handle = io_->open_append(seg_.path);
  if (seg_.handle < 0) return false;
  seg_.bytes = 0;
  std::vector<std::uint8_t> header;
  put_u64(header, kSegmentMagic);
  put_u32(header, kSegmentVersion);
  put_u32(header, 0);
  counters_.segments.fetch_add(1, std::memory_order_relaxed);
  return write_out(header);
}

bool Wal::write_out(const std::vector<std::uint8_t>& buf) {
  std::size_t at = 0;
  while (at < buf.size()) {
    if (seg_.handle < 0) {
      if (!seg_.path.empty() && seg_.bytes > 0) {
        // Reopen the partial segment replay left us (its header exists).
        seg_.handle = io_->open_append(seg_.path);
        if (seg_.handle < 0) return false;
      } else if (!open_segment(next_segment_++)) {
        return false;
      }
    }
    if (seg_.bytes >= opts_.segment_bytes) {
      io_->close(seg_.handle);
      seg_.handle = -1;
      if (!open_segment(next_segment_++)) return false;
    }
    const std::size_t room =
        opts_.segment_bytes > seg_.bytes
            ? static_cast<std::size_t>(opts_.segment_bytes - seg_.bytes)
            : 0;
    const std::size_t want = std::min(buf.size() - at, std::max<std::size_t>(room, 1));
    const std::int64_t w = io_->write(seg_.handle, buf.data() + at, want);
    if (w < 0) return false;
    if (w == 0) return false;  // no forward progress: treat as dead media
    at += static_cast<std::size_t>(w);
    seg_.bytes += static_cast<std::uint64_t>(w);
  }
  return true;
}

void Wal::flusher_main() {
  std::vector<std::uint8_t> local;
  for (;;) {
    std::uint64_t through = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait_for(lock, std::chrono::microseconds(opts_.flush_interval_us),
                   [this] { return stop_flag_ || !buf_.empty(); });
      if (buf_.empty()) {
        if (stop_flag_) return;
        continue;
      }
      local.clear();
      local.swap(buf_);
      through = buffered_through_;
    }
    if (degraded_.load(std::memory_order_relaxed)) continue;
    if (!write_out(local)) {
      degraded_.store(true, std::memory_order_release);
      errors_ctr_->add(1);
      counters_.io_errors.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    const std::int64_t t0 = steady_ns();
    const int rc = io_->sync(seg_.handle);
    if (rc != 0) {
      // fsync EIO: the page cache may have dropped the dirty pages — the
      // only honest stance is that nothing past the last good barrier is
      // durable. Freeze durable_seq; quorum_ack appends stop acking and
      // the wal-stall health rule turns red.
      degraded_.store(true, std::memory_order_release);
      errors_ctr_->add(1);
      counters_.io_errors.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    fsync_hist_->record(static_cast<std::uint64_t>(steady_ns() - t0));
    durable_.store(through, std::memory_order_release);
    flushes_ctr_->add(1);
    counters_.flushes.fetch_add(1, std::memory_order_relaxed);
    if (durable_listener_) durable_listener_(through);
  }
}

WalStats Wal::stats() const {
  WalStats s;
  s.appended_records = appended_seq();
  s.appended_bytes =
      counters_.appended_bytes.load(std::memory_order_relaxed);
  s.flushes = counters_.flushes.load(std::memory_order_relaxed);
  s.io_errors = counters_.io_errors.load(std::memory_order_relaxed);
  s.segments = counters_.segments.load(std::memory_order_relaxed);
  s.replayed = replayed_records_;
  return s;
}

}  // namespace omega::wal
