#include "wal/wal_io.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <thread>

namespace omega::wal {

// --- PosixWalIo -------------------------------------------------------------

bool PosixWalIo::mkdirs(const std::string& dir) {
  if (dir.empty()) return false;
  std::string path;
  path.reserve(dir.size());
  std::size_t at = 0;
  while (at < dir.size()) {
    const std::size_t slash = dir.find('/', at + 1);
    path = dir.substr(0, slash == std::string::npos ? dir.size() : slash);
    at = slash == std::string::npos ? dir.size() : slash;
    if (path.empty() || path == "/") continue;
    if (::mkdir(path.c_str(), 0777) != 0 && errno != EEXIST) return false;
  }
  struct stat st{};
  return ::stat(dir.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
}

std::vector<std::string> PosixWalIo::list(const std::string& dir) {
  std::vector<std::string> names;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return names;
  while (dirent* e = ::readdir(d)) {
    const std::string name = e->d_name;
    if (name == "." || name == "..") continue;
    names.push_back(name);
  }
  ::closedir(d);
  std::sort(names.begin(), names.end());
  return names;
}

bool PosixWalIo::read_file(const std::string& path,
                           std::vector<std::uint8_t>& out) {
  out.clear();
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return false;
  std::uint8_t buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n > 0) {
      out.insert(out.end(), buf, buf + n);
      continue;
    }
    if (n == 0) break;
    if (errno == EINTR) continue;
    ::close(fd);
    return false;
  }
  ::close(fd);
  return true;
}

int PosixWalIo::open_append(const std::string& path) {
  return ::open(path.c_str(), O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC,
                0644);
}

std::int64_t PosixWalIo::write(int handle, const void* data, std::size_t n) {
  for (;;) {
    const ssize_t w = ::write(handle, data, n);
    if (w >= 0) return w;
    if (errno == EINTR) continue;
    return -static_cast<std::int64_t>(errno);
  }
}

int PosixWalIo::sync(int handle) {
  return ::fdatasync(handle) == 0 ? 0 : -errno;
}

void PosixWalIo::close(int handle) { ::close(handle); }

bool PosixWalIo::truncate(const std::string& path, std::uint64_t size) {
  return ::truncate(path.c_str(), static_cast<off_t>(size)) == 0;
}

// --- FaultyWalIo ------------------------------------------------------------

FaultyWalIo::FaultyWalIo(Faults faults, WalIo* inner)
    : faults_(faults), inner_(inner != nullptr ? inner : &fallback_) {}

bool FaultyWalIo::mkdirs(const std::string& dir) {
  return inner_->mkdirs(dir);
}

std::vector<std::string> FaultyWalIo::list(const std::string& dir) {
  return inner_->list(dir);
}

bool FaultyWalIo::read_file(const std::string& path,
                            std::vector<std::uint8_t>& out) {
  return inner_->read_file(path, out);
}

int FaultyWalIo::open_append(const std::string& path) {
  return inner_->open_append(path);
}

std::int64_t FaultyWalIo::write(int handle, const void* data, std::size_t n) {
  const std::uint64_t call = ++writes_;
  if (latency_us_ != 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(latency_us_));
  }
  if (faults_.disk_capacity_bytes != 0 &&
      written_bytes_ >= faults_.disk_capacity_bytes) {
    return -ENOSPC;
  }
  std::size_t allow = n;
  bool lie_full = false;
  if (faults_.tear_write_at != 0 && call == faults_.tear_write_at) {
    // Torn record: a prefix hits the platter, the caller is told all of
    // it did. Only a checksum on replay can catch this.
    allow = std::min<std::size_t>(n, faults_.torn_bytes);
    lie_full = true;
  } else if (faults_.short_write_every != 0 &&
             call % faults_.short_write_every == 0 && n > 1) {
    allow = n / 2;
  }
  const std::int64_t w = inner_->write(handle, data, allow);
  if (w < 0) return w;
  written_bytes_ += static_cast<std::uint64_t>(w);
  return lie_full ? static_cast<std::int64_t>(n) : w;
}

int FaultyWalIo::sync(int handle) {
  const std::uint64_t call = ++syncs_;
  if (latency_us_ != 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(latency_us_));
  }
  if (faults_.sync_fail_after != 0 && call > faults_.sync_fail_after) {
    return -EIO;
  }
  return inner_->sync(handle);
}

void FaultyWalIo::close(int handle) { inner_->close(handle); }

bool FaultyWalIo::truncate(const std::string& path, std::uint64_t size) {
  return inner_->truncate(path, size);
}

}  // namespace omega::wal
