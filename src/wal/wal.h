// Wal: the per-node write-ahead log under the register/mirror layer.
//
// What gets journaled (and why it is enough). The consensus registers a
// node writes — slot ballots, decision-board entries, batch-bank rows and
// their seal cells — are exactly the state its peers' mirrors are also
// fed, so journaling the node's *local register writes* (plus an applied
// mark per committed batch, see below) makes a SIGKILL'd process
// restartable in place: replay pokes the recovered cells back into a
// fresh backend, the pump fast-forwards past the applied prefix, and the
// v1.2 REG_HELLO snapshot resync fills in whatever the *other* nodes
// wrote. The Ω election registers themselves are deliberately NOT
// journaled: the algorithms are self-stabilizing with respect to initial
// register contents (paper footnote 7), so election state is rebuilt live
// — only cells at or above the log's durable floor (the first "L0REG"
// cell; the log and batch groups are declared last, so they form a
// contiguous tail of the layout) enter the WAL. That keeps the
// hot-path record rate proportional to commits, not heartbeats.
//
// Record stream. Fixed-size segments (`wal-%08u.seg`, 16-byte header)
// holding length-prefixed records: [u32 len][u32 crc32][u8 type][body].
// The CRC covers type+body. Replay walks segments in order; a record
// whose length or CRC does not check out in the LAST segment is a torn
// tail — everything before it is kept, the tail is truncated in place,
// and appending resumes on the clean boundary. The same damage in an
// *earlier* segment is real corruption and marks the replay dirty (the
// caller decides whether to serve). Two record types:
//   kCell    — (gid, cell, value): one durable-floor register write;
//   kApplied — (gid, next_slot, first_index, values[]): one applied
//              batch, carrying the pump's slot cursor so recovery knows
//              where sealing resumes (spill-ring rows are reused, so the
//              applied prefix cannot be re-harvested from cells alone).
//
// Durability. append_*() serialize into an in-memory buffer under a
// mutex and return a monotone record seq; a background flusher thread
// drains the buffer, writes it out (rolling segments), fdatasyncs, and
// publishes durable_seq — classic group commit: every fsync absorbs all
// appends that arrived while the previous one ran, so the fsync cost is
// amortized across the batch and the B=64 throughput gate holds. Commit
// acknowledgements in quorum_ack mode gate on durable_seq; without it the
// WAL is write-behind (an acked tail younger than the last fsync can be
// lost — the window quorum_ack exists to close).
//
// Observability: wal.fsync_ns histogram, wal.appended_records /
// wal.flushes / wal.io_errors counters, wal.segments / wal.replayed /
// wal.durable_lag gauges; the wal-stall health rule (smr/log_group.cpp)
// keys off the lag and error counters.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"
#include "registers/layout.h"
#include "wal/wal_io.h"

namespace omega::wal {

/// CRC-32 (IEEE, reflected) over `n` bytes; the per-record checksum.
std::uint32_t crc32(const void* data, std::size_t n,
                    std::uint32_t seed = 0);

/// First cell index of the replicated log's register tail (the "L0REG"
/// group) — everything at or above it is journaled; everything below is
/// self-stabilizing election state. Returns kNoDurableFloor when the
/// layout carries no log (election-only groups journal nothing).
inline constexpr std::uint32_t kNoDurableFloor = 0xFFFFFFFFu;
std::uint32_t durable_floor(const Layout& layout);

struct WalOptions {
  std::string dir;  ///< segment directory; empty = WAL disabled upstream
  std::size_t segment_bytes = 8u << 20;  ///< roll threshold
  /// Idle flusher wake-up; while appends flow the flusher free-runs
  /// (one fsync per drained batch — group commit), so this only bounds
  /// the write-behind window of a quiet log.
  std::int64_t flush_interval_us = 1000;
  WalIo* io = nullptr;  ///< storage seam; nullptr = PosixWalIo
};

/// One group's recovered state.
struct GroupImage {
  /// Last journaled value per durable-floor cell (this node's own writes
  /// plus remote cells journaled by the mirror's inbound ack path).
  std::unordered_map<std::uint32_t, std::uint64_t> cells;
  std::vector<std::uint64_t> applied;  ///< committed log prefix, in order
  std::uint32_t next_slot = 0;         ///< pump cursor after the prefix
};

struct ReplayResult {
  std::unordered_map<std::uint32_t, GroupImage> groups;  ///< by gid
  std::uint64_t records = 0;          ///< valid records replayed
  std::uint64_t segments = 0;         ///< segment files visited
  std::uint64_t truncated_bytes = 0;  ///< torn tail dropped from the end
  /// Damage before the final tail: the log is not a clean prefix. What
  /// was read up to the damage is still returned.
  bool corrupt = false;
};

struct WalStats {
  std::uint64_t appended_records = 0;
  std::uint64_t appended_bytes = 0;
  std::uint64_t flushes = 0;      ///< fsync barriers completed
  std::uint64_t io_errors = 0;    ///< failed writes/syncs (log degraded)
  std::uint64_t segments = 0;     ///< segment files (replayed + rolled)
  std::uint64_t replayed = 0;     ///< records recovered by replay()
};

class Wal {
 public:
  explicit Wal(WalOptions opts);
  ~Wal();

  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// Reads every existing segment into images. Call once, before
  /// start(); appending resumes after the replayed (possibly truncated)
  /// tail.
  ReplayResult replay();

  /// Spawns the flusher. Idempotent with stop().
  void start();
  /// Final drain + fsync, joins the flusher. Idempotent.
  void stop();

  /// Journals one durable-floor register write. Any thread. Returns the
  /// record's seq (durable once durable_seq() >= it).
  std::uint64_t append_cell(std::uint32_t gid, std::uint32_t cell,
                            std::uint64_t value);

  /// Journals one applied batch (`count` values at `first_index`) and the
  /// pump's post-harvest slot cursor. Any thread; returns the record seq.
  std::uint64_t append_applied(std::uint32_t gid, std::uint64_t first_index,
                               std::uint32_t next_slot,
                               const std::uint64_t* values,
                               std::uint32_t count);

  /// Seq of the newest accepted append.
  std::uint64_t appended_seq() const noexcept {
    return appended_.load(std::memory_order_acquire);
  }
  /// Seq through which records are on stable storage.
  std::uint64_t durable_seq() const noexcept {
    return durable_.load(std::memory_order_acquire);
  }

  /// Blocks until durable_seq() covers every append accepted so far (or
  /// the log is degraded by IO errors). Tests and clean shutdown.
  void flush();

  /// Invoked on the flusher thread after every fsync that advanced
  /// durable_seq (the mirror transport releases WAL-gated REG_ACKs from
  /// it). Install before start().
  void set_durable_listener(std::function<void(std::uint64_t)> fn);

  WalStats stats() const;
  const std::string& dir() const noexcept { return opts_.dir; }

 private:
  struct Segment {
    std::string path;
    int handle = -1;
    std::uint64_t bytes = 0;  ///< current size
  };

  std::uint64_t append_record(const std::uint8_t* rec, std::size_t n);
  void flusher_main();
  /// Writes `buf` fully (short-write loop), rolling segments as needed.
  /// False = the log is degraded (IO error; durable_seq frozen).
  bool write_out(const std::vector<std::uint8_t>& buf);
  bool open_segment(std::uint64_t index);

  WalOptions opts_;
  PosixWalIo posix_;
  WalIo* io_;

  mutable std::mutex mu_;               ///< append buffer + counters
  std::vector<std::uint8_t> buf_;       ///< serialized, not yet handed off
  std::uint64_t buffered_through_ = 0;  ///< seq of buf_'s newest record
  std::condition_variable cv_;          ///< flusher wake-up
  bool stop_flag_ = false;

  std::atomic<std::uint64_t> appended_{0};
  std::atomic<std::uint64_t> durable_{0};
  std::atomic<bool> degraded_{false};

  std::thread flusher_;
  bool started_ = false;
  bool replayed_ = false;  ///< start() replays implicitly if needed

  /// Flusher-thread state (no lock needed once start() ran).
  Segment seg_;
  std::uint64_t next_segment_ = 0;

  std::function<void(std::uint64_t)> durable_listener_;

  /// Replay bookkeeping (constructor/replay thread).
  std::uint64_t replayed_records_ = 0;
  std::uint64_t replayed_segments_ = 0;

  obs::Histogram* fsync_hist_ = nullptr;  ///< wal.fsync_ns
  obs::Counter* appends_ctr_ = nullptr;   ///< wal.appended_records
  obs::Counter* flushes_ctr_ = nullptr;   ///< wal.flushes
  obs::Counter* errors_ctr_ = nullptr;    ///< wal.io_errors
  std::vector<std::uint64_t> gauge_ids_;

  struct Counters {
    std::atomic<std::uint64_t> appended_bytes{0};
    std::atomic<std::uint64_t> flushes{0};
    std::atomic<std::uint64_t> io_errors{0};
    std::atomic<std::uint64_t> segments{0};
  } counters_;
};

}  // namespace omega::wal
