#include "net/register_peer.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/timerfd.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "common/check.h"
#include "obs/flight_recorder.h"

namespace omega::net {

namespace {

constexpr std::size_t kLagRingSize = 8192;
/// Unacked pushes tracked for lag sampling; beyond it the oldest sample
/// is dropped (measurement only, never correctness).
constexpr std::size_t kMaxSentTimes = 65536;
/// One in N pushed frames is time-stamped for the lag measurement.
constexpr std::uint64_t kLagSampleEvery = 16;

void set_tcp_nodelay(int fd) {
  int one = 1;
  (void)setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

}  // namespace

MirrorTransport::MirrorTransport(MirrorConfig cfg) : cfg_(std::move(cfg)) {
  OMEGA_CHECK(cfg_.reconnect_ms >= 1, "reconnect cadence must be >= 1ms");
  for (const auto& p : cfg_.peers) {
    OMEGA_CHECK(p.node != cfg_.node,
                "peer list names this node (" << cfg_.node << ")");
    auto peer = std::make_unique<RegisterPeer>();
    peer->cfg = p;
    peers_.push_back(std::move(peer));
  }
  pending_.resize(peers_.size());
  lag_ring_.reserve(kLagRingSize);
  push_lag_hist_ = &obs::histogram("mirror.push_lag_ns");
  obs::Registry& reg = obs::Registry::instance();
  gauge_ids_.push_back(reg.register_gauge("mirror.pushed_frames", [this] {
    return static_cast<std::int64_t>(
        counters_.pushed_frames.load(std::memory_order_relaxed));
  }));
  gauge_ids_.push_back(reg.register_gauge("mirror.acked_frames", [this] {
    return static_cast<std::int64_t>(
        counters_.acked_frames.load(std::memory_order_relaxed));
  }));
  gauge_ids_.push_back(reg.register_gauge("mirror.reconnects", [this] {
    return static_cast<std::int64_t>(
        counters_.reconnects.load(std::memory_order_relaxed));
  }));
  gauge_ids_.push_back(reg.register_gauge("mirror.resyncs", [this] {
    return static_cast<std::int64_t>(
        counters_.resyncs.load(std::memory_order_relaxed));
  }));
  gauge_ids_.push_back(reg.register_gauge("mirror.max_unacked", [this] {
    return static_cast<std::int64_t>(max_unacked_frames());
  }));
  open_listener();
}

MirrorTransport::~MirrorTransport() { stop(); }

void MirrorTransport::open_listener() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  OMEGA_CHECK(listen_fd_ >= 0, "socket: errno " << errno);
  int one = 1;
  (void)setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(cfg_.port);
  OMEGA_CHECK(inet_pton(AF_INET, cfg_.bind_address.c_str(),
                        &addr.sin_addr) == 1,
              "bad bind address " << cfg_.bind_address);
  OMEGA_CHECK(::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                     sizeof addr) == 0,
              "bind " << cfg_.bind_address << ":" << cfg_.port << ": errno "
                      << errno);
  OMEGA_CHECK(::listen(listen_fd_, 64) == 0, "listen: errno " << errno);
  socklen_t len = sizeof addr;
  OMEGA_CHECK(getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                          &len) == 0,
              "getsockname: errno " << errno);
  port_ = ntohs(addr.sin_port);
}

void MirrorTransport::add_group(svc::GroupId gid, MirroredMemory* mem) {
  OMEGA_CHECK(mem != nullptr, "null mirror for group " << gid);
  {
    std::lock_guard<std::mutex> lock(groups_mu_);
    auto [it, inserted] = groups_.emplace(gid, GroupState{});
    OMEGA_CHECK(inserted, "duplicate mirror group " << gid);
    it->second.mem = mem;
    it->second.dirty.assign(mem->layout().size(), false);
  }
  if (started_ && !stopped_.load(std::memory_order_acquire)) {
    // A group added mid-flight missed every stream's history. Cut all
    // streams: peers redial us (and we them), and both directions resync
    // by snapshot — the one mechanism that always converges.
    loop_.post([this] {
      std::vector<int> fds;
      fds.reserve(inbound_.size());
      for (const auto& [fd, c] : inbound_) fds.push_back(fd);
      for (int fd : fds) close_inbound(fd);
      for (auto& p : peers_) {
        if (p->fd >= 0) disconnect_peer(*p);
      }
    });
  }
}

void MirrorTransport::remove_group(svc::GroupId gid) {
  std::lock_guard<std::mutex> lock(groups_mu_);
  groups_.erase(gid);
}

void MirrorTransport::force_resync() {
  if (!started_ || stopped_.load(std::memory_order_acquire)) return;
  loop_.post([this] {
    if (stopped_.load(std::memory_order_acquire)) return;
    std::vector<int> fds;
    fds.reserve(inbound_.size());
    for (const auto& [fd, c] : inbound_) fds.push_back(fd);
    for (const int fd : fds) close_inbound(fd);
    for (auto& p : peers_) {
      if (p->fd >= 0) disconnect_peer(*p);
    }
    counters_.resyncs.fetch_add(1, std::memory_order_relaxed);
    obs::trace(obs::TraceEvent::kMirrorResync, cfg_.node, 0);
  });
}

void MirrorTransport::start() {
  OMEGA_CHECK(!started_, "start() called twice");
  started_ = true;
  timer_fd_ = ::timerfd_create(CLOCK_MONOTONIC, TFD_NONBLOCK | TFD_CLOEXEC);
  OMEGA_CHECK(timer_fd_ >= 0, "timerfd_create: errno " << errno);
  itimerspec spec{};
  spec.it_interval.tv_sec = cfg_.reconnect_ms / 1000;
  spec.it_interval.tv_nsec = (cfg_.reconnect_ms % 1000) * 1000000L;
  spec.it_value = spec.it_interval;
  OMEGA_CHECK(::timerfd_settime(timer_fd_, 0, &spec, nullptr) == 0,
              "timerfd_settime: errno " << errno);
  thread_ = std::thread([this] { loop_.run(); });
  loop_.post([this] {
    loop_.add_fd(listen_fd_, EPOLLIN, [this](std::uint32_t) { on_accept(); });
    loop_.add_fd(timer_fd_, EPOLLIN, [this](std::uint32_t) {
      std::uint64_t ticks = 0;
      while (::read(timer_fd_, &ticks, sizeof ticks) > 0) {
      }
      on_timer();
    });
    on_timer();  // first dial round without waiting a tick
  });
}

void MirrorTransport::stop() {
  if (stopped_.exchange(true, std::memory_order_acq_rel)) return;
  for (const std::uint64_t id : gauge_ids_) {
    obs::Registry::instance().unregister_gauge(id);
  }
  gauge_ids_.clear();
  // A transport that never start()ed still owns the listener (bound in
  // the constructor): fall through to the fd cleanup either way.
  if (started_) {
    loop_.stop();
    if (thread_.joinable()) thread_.join();
    loop_.drain_pending();
  }
  for (auto& p : peers_) {
    if (p->fd >= 0) {
      ::close(p->fd);
      p->fd = -1;
    }
    p->connected.store(false, std::memory_order_release);
  }
  for (auto& [fd, c] : inbound_) {
    (void)c;
    ::close(fd);
  }
  inbound_.clear();
  if (timer_fd_ >= 0) {
    ::close(timer_fd_);
    timer_fd_ = -1;
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

std::int64_t MirrorTransport::now_ns() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// --- write path (worker threads) -------------------------------------------

void MirrorTransport::on_local_write(svc::GroupId gid, Cell c,
                                     std::uint64_t v) {
  if (peers_.empty()) return;
  // Mark the snapshot-domain bit first, outside pending_mu_: either the
  // write's queue entry survives a concurrent snapshot reset (pushed
  // normally) or it was dropped — and then the store already happened
  // before the snapshot's peek, so the value rides the snapshot. Keeping
  // the two locks un-nested keeps workers and the IO thread from
  // funneling through one lock pair on the heartbeat-write hot path.
  {
    std::lock_guard<std::mutex> glock(groups_mu_);
    const auto it = groups_.find(gid);
    if (it != groups_.end() && c.index < it->second.dirty.size()) {
      it->second.dirty[c.index] = true;
    }
  }
  bool schedule = false;
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    write_seq_.fetch_add(1, std::memory_order_release);
    for (std::size_t i = 0; i < peers_.size(); ++i) {
      if (!peers_[i]->connected.load(std::memory_order_acquire)) continue;
      auto& q = pending_[i];
      // Adjacent dedup: a re-write of the cell at the queue's tail cannot
      // reorder across any other cell — the only coalescing that keeps
      // the stream order-equivalent to the owners' write order.
      if (!q.empty() && q.back().gid == gid && q.back().cell == c.index) {
        q.back().value = v;
        counters_.coalesced.fetch_add(1, std::memory_order_relaxed);
      } else {
        q.push_back(PendingWrite{gid, c.index, v});
      }
    }
    if (!flush_scheduled_) {
      flush_scheduled_ = true;
      schedule = true;
    }
  }
  if (schedule) {
    loop_.post([this] {
      {
        std::lock_guard<std::mutex> lock(pending_mu_);
        flush_scheduled_ = false;
      }
      if (!stopped_.load(std::memory_order_acquire)) flush_peers();
    });
  }
}

void MirrorTransport::snapshot_into(std::vector<PendingWrite>& out) {
  std::lock_guard<std::mutex> glock(groups_mu_);
  for (const auto& [gid, gs] : groups_) {
    for (std::uint32_t i = 0; i < gs.dirty.size(); ++i) {
      if (!gs.dirty[i]) continue;
      out.push_back(PendingWrite{gid, i, gs.mem->peek(Cell{i})});
    }
  }
}

// --- outbound streams (loop thread) ----------------------------------------

void MirrorTransport::on_timer() {
  for (auto& p : peers_) {
    if (p->fd < 0) dial(*p);
  }
  flush_peers();
}

void MirrorTransport::dial(RegisterPeer& p) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                          0);
  if (fd < 0) return;  // fd pressure; retry next tick
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(p.cfg.port);
  if (inet_pton(AF_INET, p.cfg.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return;
  }
  const int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                           sizeof addr);
  if (rc != 0 && errno != EINPROGRESS) {
    ::close(fd);
    return;  // refused; retry next tick
  }
  set_tcp_nodelay(fd);
  p.fd = fd;
  p.hello_sent = false;
  if (p.ever_connected) {
    counters_.reconnects.fetch_add(1, std::memory_order_relaxed);
  }
  loop_.add_fd(fd, EPOLLIN | EPOLLOUT,
               [this, peer = &p](std::uint32_t events) {
                 on_peer_io(*peer, events);
               });
}

void MirrorTransport::disconnect_peer(RegisterPeer& p) {
  if (p.fd < 0) return;
  loop_.remove_fd(p.fd);
  ::close(p.fd);
  p.fd = -1;
  p.connected.store(false, std::memory_order_release);
  p.backlog.store(0, std::memory_order_relaxed);
  p.hello_sent = false;
  p.in = FrameDecoder{};
  p.out.clear();
  p.out_pos = 0;
  p.want_write = false;
  p.sent_seq = 0;
  p.acked_seq = 0;
  p.sent_times.clear();
  p.cover_marks.clear();  // acked_wseq survives: acked writes stay applied
  std::lock_guard<std::mutex> lock(pending_mu_);
  for (std::size_t i = 0; i < peers_.size(); ++i) {
    if (peers_[i].get() == &p) {
      pending_[i].clear();
      break;
    }
  }
}

void MirrorTransport::on_peer_io(RegisterPeer& p, std::uint32_t events) {
  if (p.fd < 0) return;
  if (!p.hello_sent) {
    // First writability: the non-blocking connect resolved.
    int err = 0;
    socklen_t len = sizeof err;
    if (getsockopt(p.fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
      disconnect_peer(p);
      return;
    }
    encode_reg_hello(p.out, Status::kOk, /*req_id=*/1, cfg_.node);
    p.hello_sent = true;
    p.ever_connected = true;
    // Seed the stream with a snapshot, then let live writes flow. The
    // connected flag flips first so racing writers either land in the
    // queue behind the snapshot or are already covered by it (their
    // store precedes our peek).
    p.last_ack_ns.store(now_ns(), std::memory_order_relaxed);
    p.connected.store(true, std::memory_order_release);
    {
      std::lock_guard<std::mutex> lock(pending_mu_);
      for (std::size_t i = 0; i < peers_.size(); ++i) {
        if (peers_[i].get() != &p) continue;
        pending_[i].clear();
        snapshot_into(pending_[i]);
        break;
      }
    }
    counters_.snapshots.fetch_add(1, std::memory_order_relaxed);
    flush_peers();
  }
  if (events & (EPOLLHUP | EPOLLERR)) {
    disconnect_peer(p);
    return;
  }
  if (events & EPOLLIN) {
    std::uint8_t buf[4096];
    for (;;) {
      const ssize_t n = ::read(p.fd, buf, sizeof buf);
      if (n > 0) {
        p.in.feed(buf, static_cast<std::size_t>(n));
        continue;
      }
      if (n == 0) {
        disconnect_peer(p);
        return;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      disconnect_peer(p);
      return;
    }
    const std::uint8_t* payload = nullptr;
    std::size_t len = 0;
    while (p.in.next(payload, len)) {
      Frame f;
      if (decode_payload(payload, len, f) != DecodeResult::kOk) {
        disconnect_peer(p);
        return;
      }
      handle_peer_frame(p, f);
    }
    if (p.in.corrupt()) {
      disconnect_peer(p);
      return;
    }
  }
  if (events & EPOLLOUT) {
    if (!flush_out(p.fd, p.out, p.out_pos, p.want_write)) {
      disconnect_peer(p);
      return;
    }
  }
}

void MirrorTransport::handle_peer_frame(RegisterPeer& p, const Frame& f) {
  switch (f.header.type) {
    case MsgType::kRegAck: {
      const std::uint64_t seq = f.reg_ack.seq;
      if (seq <= p.acked_seq || seq > p.sent_seq) return;  // stale/garbled
      p.acked_seq = seq;
      p.backlog.store(p.sent_seq - p.acked_seq, std::memory_order_relaxed);
      p.last_ack_ns.store(now_ns(), std::memory_order_relaxed);
      counters_.acked_frames.fetch_add(1, std::memory_order_relaxed);
      std::size_t covered_marks = 0;
      std::uint64_t wseq = 0;
      while (covered_marks < p.cover_marks.size() &&
             p.cover_marks[covered_marks].first <= seq) {
        wseq = std::max(wseq, p.cover_marks[covered_marks].second);
        ++covered_marks;
      }
      if (covered_marks > 0) {
        p.cover_marks.erase(p.cover_marks.begin(),
                            p.cover_marks.begin() +
                                static_cast<std::ptrdiff_t>(covered_marks));
        if (wseq > p.acked_wseq.load(std::memory_order_relaxed)) {
          p.acked_wseq.store(wseq, std::memory_order_release);
        }
      }
      const std::int64_t now = now_ns();
      std::size_t drop = 0;
      std::int64_t last_lag = -1;
      while (drop < p.sent_times.size() && p.sent_times[drop].first <= seq) {
        last_lag = now - p.sent_times[drop].second;
        ++drop;
      }
      if (drop > 0) {
        p.sent_times.erase(p.sent_times.begin(),
                           p.sent_times.begin() +
                               static_cast<std::ptrdiff_t>(drop));
      }
      if (last_lag >= 0) {
        push_lag_hist_->record(static_cast<std::uint64_t>(last_lag));
        obs::trace(obs::TraceEvent::kMirrorAck, p.cfg.node, seq);
        std::lock_guard<std::mutex> lock(lag_mu_);
        if (lag_ring_.size() < kLagRingSize) {
          lag_ring_.push_back(last_lag);
        } else {
          lag_ring_[lag_next_] = last_lag;
          lag_next_ = (lag_next_ + 1) % kLagRingSize;
        }
      }
      return;
    }
    case MsgType::kRegHello:
      return;  // the peer's hello response; nothing to do
    default:
      return;  // future frame types: ignore (forward compatibility)
  }
}

void MirrorTransport::flush_peers() {
  if (stopped_.load(std::memory_order_acquire)) return;
  std::vector<PendingWrite> batch;
  for (std::size_t i = 0; i < peers_.size(); ++i) {
    RegisterPeer& p = *peers_[i];
    if (p.fd < 0 || !p.hello_sent) continue;
    batch.clear();
    std::uint64_t covered = 0;
    {
      std::lock_guard<std::mutex> lock(pending_mu_);
      batch.swap(pending_[i]);
      // Every local write numbered <= this watermark is either in `batch`
      // or was drained to this peer earlier (writes enqueue under the same
      // lock that bumps the watermark; a disconnected gap is covered by
      // the reconnect snapshot, whose entries are also in the queue).
      covered = write_seq_.load(std::memory_order_relaxed);
    }
    std::size_t at = 0;
    std::vector<RegCellUpdate> cells;
    while (at < batch.size()) {
      // One frame: a run of updates of the same group, up to the cap.
      const svc::GroupId gid = batch[at].gid;
      cells.clear();
      while (at < batch.size() && batch[at].gid == gid &&
             cells.size() < kMaxPushCells) {
        cells.push_back(RegCellUpdate{batch[at].cell, batch[at].value});
        ++at;
      }
      ++p.sent_seq;
      encode_reg_push(p.out, gid, p.sent_seq, cells.data(),
                      static_cast<std::uint32_t>(cells.size()));
      if ((p.sent_seq == 1 || p.sent_seq % kLagSampleEvery == 0) &&
          p.sent_times.size() < kMaxSentTimes) {
        p.sent_times.emplace_back(p.sent_seq, now_ns());
        obs::trace(obs::TraceEvent::kMirrorPush, gid, p.sent_seq);
      }
      counters_.pushed_frames.fetch_add(1, std::memory_order_relaxed);
      counters_.pushed_cells.fetch_add(cells.size(),
                                       std::memory_order_relaxed);
    }
    if (!batch.empty()) {
      // Ack of the batch's last frame certifies coverage of `covered`.
      p.cover_marks.emplace_back(p.sent_seq, covered);
    }
    p.backlog.store(p.sent_seq - p.acked_seq, std::memory_order_relaxed);
    if (p.out.size() - p.out_pos > cfg_.max_outbuf_bytes) {
      // Slow peer: cut it; reconnect resyncs by snapshot.
      disconnect_peer(p);
      continue;
    }
    if (!flush_out(p.fd, p.out, p.out_pos, p.want_write)) {
      disconnect_peer(p);
    }
  }
}

// --- inbound streams (loop thread) -----------------------------------------

void MirrorTransport::on_accept() {
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      return;  // transient accept failure; the listener stays armed
    }
    set_tcp_nodelay(fd);
    auto c = std::make_unique<Inbound>();
    c->fd = fd;
    inbound_.emplace(fd, std::move(c));
    loop_.add_fd(fd, EPOLLIN, [this, fd](std::uint32_t events) {
      on_inbound_io(fd, events);
    });
  }
}

void MirrorTransport::close_inbound(int fd) {
  const auto it = inbound_.find(fd);
  if (it == inbound_.end()) return;
  loop_.remove_fd(fd);
  ::close(fd);
  inbound_.erase(it);
}

void MirrorTransport::on_inbound_io(int fd, std::uint32_t events) {
  const auto it = inbound_.find(fd);
  if (it == inbound_.end()) return;
  Inbound& c = *it->second;
  if (events & (EPOLLHUP | EPOLLERR)) {
    close_inbound(fd);
    return;
  }
  if (events & EPOLLIN) {
    std::uint8_t buf[16384];
    for (;;) {
      const ssize_t n = ::read(fd, buf, sizeof buf);
      if (n > 0) {
        c.in.feed(buf, static_cast<std::size_t>(n));
        continue;
      }
      if (n == 0) {
        close_inbound(fd);
        return;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      close_inbound(fd);
      return;
    }
    const std::uint8_t* payload = nullptr;
    std::size_t len = 0;
    while (c.in.next(payload, len)) {
      Frame f;
      if (decode_payload(payload, len, f) != DecodeResult::kOk) {
        close_inbound(fd);
        return;
      }
      handle_inbound_frame(c, f);
      if (inbound_.find(fd) == inbound_.end()) return;  // closed inside
    }
    if (c.in.corrupt()) {
      close_inbound(fd);
      return;
    }
  }
  if (events & EPOLLOUT) {
    if (!flush_out(c.fd, c.out, c.out_pos, c.want_write)) {
      close_inbound(fd);
      return;
    }
  }
}

void MirrorTransport::handle_inbound_frame(Inbound& c, const Frame& f) {
  switch (f.header.type) {
    case MsgType::kRegHello: {
      if (!f.has_body) {
        close_inbound(c.fd);
        return;
      }
      c.node = f.reg_hello.node;
      encode_reg_hello(c.out, Status::kOk, f.header.req_id, cfg_.node);
      break;
    }
    case MsgType::kRegPush: {
      if (!f.has_body) {
        close_inbound(c.fd);
        return;
      }
      std::uint64_t wal_gate = 0;
      {
        std::lock_guard<std::mutex> lock(groups_mu_);
        const auto it = groups_.find(f.reg_push.gid);
        if (it != groups_.end()) {
          MirroredMemory& mem = *it->second.mem;
          // In frame order, which is the sender's write order: this is
          // the FIFO application the mirror's regularity argument needs.
          for (const auto& u : f.reg_push.cells) {
            mem.apply_push(Cell{u.cell}, u.value);
            if (inbound_journal_) {
              // Journal the pushed cell to the local WAL (the closure
              // filters out cells below the durable floor; record seqs
              // are monotone, so the last nonzero one gates the ack).
              const std::uint64_t rec =
                  inbound_journal_(f.reg_push.gid, u.cell, u.value);
              if (rec != 0) wal_gate = rec;
            }
          }
          counters_.applied_cells.fetch_add(f.reg_push.cells.size(),
                                            std::memory_order_relaxed);
        }
        // Unknown gid: the group is not registered here (yet); the
        // stream stays FIFO, the frame is acked — registration cuts
        // streams and resyncs, so nothing is silently lost.
      }
      counters_.applied_frames.fetch_add(1, std::memory_order_relaxed);
      if (wal_gate != 0 || !c.deferred_acks.empty()) {
        // Hold the ack until the WAL covers this frame's records. A frame
        // that journaled nothing still queues behind earlier gated frames
        // (inheriting their gate), keeping the ack stream cumulative.
        if (wal_gate == 0) wal_gate = c.deferred_acks.back().second;
        c.deferred_acks.emplace_back(f.reg_push.seq, wal_gate);
        if (!drain_deferred_acks(c)) {
          close_inbound(c.fd);
          return;
        }
        break;
      }
      encode_reg_ack(c.out, f.reg_push.seq);
      break;
    }
    default:
      break;  // ignore anything else on a mirror stream
  }
  if (!flush_out(c.fd, c.out, c.out_pos, c.want_write)) {
    close_inbound(c.fd);
  }
}

// --- inbound durability (quorum_ack) ---------------------------------------

void MirrorTransport::set_inbound_journal(InboundJournal journal) {
  OMEGA_CHECK(!started_, "install the inbound journal before start()");
  inbound_journal_ = std::move(journal);
}

bool MirrorTransport::drain_deferred_acks(Inbound& c) {
  std::uint64_t ack = 0;
  while (!c.deferred_acks.empty() &&
         c.deferred_acks.front().second <= durable_wal_) {
    ack = c.deferred_acks.front().first;
    c.deferred_acks.pop_front();
  }
  if (ack == 0) return true;
  // One cumulative ack for the whole released run.
  encode_reg_ack(c.out, ack);
  return flush_out(c.fd, c.out, c.out_pos, c.want_write);
}

void MirrorTransport::release_durable_acks(std::uint64_t durable_seq) {
  if (!started_ || stopped_.load(std::memory_order_acquire)) return;
  loop_.post([this, durable_seq] {
    if (stopped_.load(std::memory_order_acquire)) return;
    durable_wal_ = std::max(durable_wal_, durable_seq);
    std::vector<int> fds;
    fds.reserve(inbound_.size());
    for (const auto& [fd, c] : inbound_) fds.push_back(fd);
    for (const int fd : fds) {
      const auto it = inbound_.find(fd);
      if (it == inbound_.end()) continue;
      if (!drain_deferred_acks(*it->second)) close_inbound(fd);
    }
  });
}

// --- shared ---------------------------------------------------------------

bool MirrorTransport::flush_out(int fd, std::vector<std::uint8_t>& out,
                                std::size_t& pos, bool& want_write) {
  while (pos < out.size()) {
    const ssize_t n = ::send(fd, out.data() + pos, out.size() - pos,
                             MSG_NOSIGNAL);
    if (n > 0) {
      pos += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!want_write) {
        want_write = true;
        loop_.mod_fd(fd, EPOLLIN | EPOLLOUT);
      }
      return true;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  out.clear();
  pos = 0;
  if (want_write) {
    want_write = false;
    loop_.mod_fd(fd, EPOLLIN);
  }
  return true;
}

// --- observation -----------------------------------------------------------

std::uint64_t MirrorTransport::max_unacked_frames() const {
  std::uint64_t deepest = 0;
  const std::int64_t now = now_ns();
  for (const auto& p : peers_) {
    if (!p->connected.load(std::memory_order_acquire)) continue;
    const std::uint64_t backlog =
        p->backlog.load(std::memory_order_relaxed);
    // A peer whose acks have stalled outright is dead for flow-control
    // purposes even though its TCP stream looks alive (a frozen process
    // keeps its sockets): throttling the group for it would stall every
    // append until the kernel buffers finally burst max_outbuf_bytes.
    if (cfg_.ack_stall_us > 0 && backlog > 0 &&
        now - p->last_ack_ns.load(std::memory_order_relaxed) >
            cfg_.ack_stall_us * 1000) {
      continue;
    }
    deepest = std::max(deepest, backlog);
  }
  return deepest;
}

void MirrorTransport::acked_marks(
    std::vector<std::pair<std::uint32_t, std::uint64_t>>& out) const {
  out.clear();
  out.reserve(peers_.size());
  for (const auto& p : peers_) {
    out.emplace_back(p->cfg.node,
                     p->acked_wseq.load(std::memory_order_acquire));
  }
}

std::uint64_t MirrorTransport::connected_peers() const {
  std::uint64_t n = 0;
  for (const auto& p : peers_) {
    if (p->connected.load(std::memory_order_acquire)) ++n;
  }
  return n;
}

MirrorStats MirrorTransport::stats() const {
  MirrorStats s;
  s.pushed_frames = counters_.pushed_frames.load(std::memory_order_relaxed);
  s.pushed_cells = counters_.pushed_cells.load(std::memory_order_relaxed);
  s.acked_frames = counters_.acked_frames.load(std::memory_order_relaxed);
  s.applied_frames = counters_.applied_frames.load(std::memory_order_relaxed);
  s.applied_cells = counters_.applied_cells.load(std::memory_order_relaxed);
  s.coalesced = counters_.coalesced.load(std::memory_order_relaxed);
  s.reconnects = counters_.reconnects.load(std::memory_order_relaxed);
  s.snapshots = counters_.snapshots.load(std::memory_order_relaxed);
  s.resyncs = counters_.resyncs.load(std::memory_order_relaxed);
  s.connected_peers = connected_peers();
  s.max_unacked = max_unacked_frames();
  return s;
}

void MirrorTransport::lag_samples(std::vector<std::int64_t>& out) const {
  std::lock_guard<std::mutex> lock(lag_mu_);
  out.assign(lag_ring_.begin(), lag_ring_.end());
}

}  // namespace omega::net
