#include "net/frame.h"

namespace omega::net {
namespace {

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 |
         static_cast<std::uint32_t>(p[3]) << 24;
}

std::uint64_t get_u64(const std::uint8_t* p) {
  return static_cast<std::uint64_t>(get_u32(p)) |
         static_cast<std::uint64_t>(get_u32(p + 4)) << 32;
}

/// Reserves the length prefix, returns its offset for patching.
std::size_t begin_frame(std::vector<std::uint8_t>& out,
                        const FrameHeader& h) {
  const std::size_t len_at = out.size();
  put_u32(out, 0);  // patched by end_frame
  put_u8(out, kMagic);
  put_u8(out, kVersion);
  put_u8(out, static_cast<std::uint8_t>(h.type));
  put_u8(out, static_cast<std::uint8_t>(h.status));
  put_u64(out, h.req_id);
  return len_at;
}

void end_frame(std::vector<std::uint8_t>& out, std::size_t len_at) {
  const std::uint32_t payload_len =
      static_cast<std::uint32_t>(out.size() - len_at - 4);
  out[len_at + 0] = static_cast<std::uint8_t>(payload_len);
  out[len_at + 1] = static_cast<std::uint8_t>(payload_len >> 8);
  out[len_at + 2] = static_cast<std::uint8_t>(payload_len >> 16);
  out[len_at + 3] = static_cast<std::uint8_t>(payload_len >> 24);
}

}  // namespace

void encode_request(std::vector<std::uint8_t>& out, MsgType type,
                    std::uint64_t req_id, std::optional<WireGroupId> gid) {
  const std::size_t at =
      begin_frame(out, FrameHeader{type, Status::kOk, req_id});
  if (gid) put_u64(out, *gid);
  end_frame(out, at);
}

void encode_view_frame(std::vector<std::uint8_t>& out, MsgType type,
                       Status status, std::uint64_t req_id,
                       const ViewBody& view) {
  const std::size_t at = begin_frame(out, FrameHeader{type, status, req_id});
  put_u64(out, view.gid);
  put_u32(out, view.leader);
  put_u64(out, view.epoch);
  end_frame(out, at);
}

void encode_simple_response(std::vector<std::uint8_t>& out, MsgType type,
                            Status status, std::uint64_t req_id) {
  const std::size_t at = begin_frame(out, FrameHeader{type, status, req_id});
  end_frame(out, at);
}

void encode_gid_response(std::vector<std::uint8_t>& out, MsgType type,
                         Status status, std::uint64_t req_id,
                         WireGroupId gid) {
  const std::size_t at = begin_frame(out, FrameHeader{type, status, req_id});
  put_u64(out, gid);
  end_frame(out, at);
}

void encode_stats_response(std::vector<std::uint8_t>& out,
                           std::uint64_t req_id, const StatsBody& stats) {
  const std::size_t at = begin_frame(
      out, FrameHeader{MsgType::kStats, Status::kOk, req_id});
  put_u64(out, stats.connections);
  put_u64(out, stats.queries);
  put_u64(out, stats.watches);
  put_u64(out, stats.events);
  put_u64(out, stats.groups);
  put_u64(out, stats.io_threads);
  end_frame(out, at);
}

DecodeResult decode_payload(const std::uint8_t* data, std::size_t len,
                            Frame& out) {
  out = Frame{};
  if (len < kHeaderBytes) return DecodeResult::kBadLength;
  if (data[0] != kMagic || data[1] != kVersion) return DecodeResult::kBadMagic;
  out.header.type = static_cast<MsgType>(data[2]);
  out.header.status = static_cast<Status>(data[3]);
  out.header.req_id = get_u64(data + 4);
  const std::uint8_t* body = data + kHeaderBytes;
  const std::size_t body_len = len - kHeaderBytes;

  switch (out.header.type) {
    case MsgType::kLeader:
    case MsgType::kWatch:
    case MsgType::kUnwatch:
    case MsgType::kEvent: {
      // gid is always present; leader+epoch only in responses/events (a
      // 8-byte body is a request, a >=20-byte body carries the view).
      if (body_len < 8) return DecodeResult::kBadBody;
      out.view.gid = get_u64(body);
      out.has_body = true;
      if (body_len >= 20) {
        out.view.leader = get_u32(body + 8);
        out.view.epoch = get_u64(body + 12);
      } else if (out.header.type == MsgType::kEvent) {
        return DecodeResult::kBadBody;  // pushes always carry the view
      }
      return DecodeResult::kOk;
    }
    case MsgType::kPing:
      return DecodeResult::kOk;
    case MsgType::kStats: {
      // < 48 bytes cannot be a v1 response; treat it as a request (a
      // future revision may append request fields — ignore them) so the
      // forward-compatibility rule holds for STATS too.
      if (body_len < 48) return DecodeResult::kOk;
      out.stats.connections = get_u64(body);
      out.stats.queries = get_u64(body + 8);
      out.stats.watches = get_u64(body + 16);
      out.stats.events = get_u64(body + 24);
      out.stats.groups = get_u64(body + 32);
      out.stats.io_threads = get_u64(body + 40);
      out.has_body = true;
      return DecodeResult::kOk;
    }
    default:
      // Unknown type: header decoded, no body — lets a server answer
      // kUnsupported and a client skip frames from a newer server.
      return DecodeResult::kOk;
  }
}

void FrameDecoder::feed(const std::uint8_t* data, std::size_t len) {
  if (corrupt_) return;
  // Compact once the consumed prefix dominates, so a long-lived connection
  // does not grow its buffer without bound.
  if (pos_ > 4096 && pos_ * 2 > buf_.size()) {
    buf_.erase(buf_.begin(),
               buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buf_.insert(buf_.end(), data, data + len);
}

bool FrameDecoder::next(const std::uint8_t*& payload, std::size_t& len) {
  if (corrupt_) return false;
  if (buf_.size() - pos_ < 4) return false;
  const std::uint8_t* p = buf_.data() + pos_;
  const std::uint32_t payload_len = get_u32(p);
  if (payload_len > kMaxPayloadBytes) {
    corrupt_ = true;
    return false;
  }
  if (buf_.size() - pos_ < 4 + static_cast<std::size_t>(payload_len)) {
    return false;
  }
  payload = p + 4;
  len = payload_len;
  pos_ += 4 + payload_len;
  return true;
}

}  // namespace omega::net
