#include "net/frame.h"

#include <algorithm>

#include "common/check.h"

namespace omega::net {
namespace {

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 |
         static_cast<std::uint32_t>(p[3]) << 24;
}

std::uint64_t get_u64(const std::uint8_t* p) {
  return static_cast<std::uint64_t>(get_u32(p)) |
         static_cast<std::uint64_t>(get_u32(p + 4)) << 32;
}

/// Reserves the length prefix, returns its offset for patching.
std::size_t begin_frame(std::vector<std::uint8_t>& out,
                        const FrameHeader& h) {
  const std::size_t len_at = out.size();
  put_u32(out, 0);  // patched by end_frame
  put_u8(out, kMagic);
  put_u8(out, kVersion);
  put_u8(out, static_cast<std::uint8_t>(h.type));
  put_u8(out, static_cast<std::uint8_t>(h.status));
  put_u64(out, h.req_id);
  return len_at;
}

void end_frame(std::vector<std::uint8_t>& out, std::size_t len_at) {
  const std::uint32_t payload_len =
      static_cast<std::uint32_t>(out.size() - len_at - 4);
  out[len_at + 0] = static_cast<std::uint8_t>(payload_len);
  out[len_at + 1] = static_cast<std::uint8_t>(payload_len >> 8);
  out[len_at + 2] = static_cast<std::uint8_t>(payload_len >> 16);
  out[len_at + 3] = static_cast<std::uint8_t>(payload_len >> 24);
}

/// Appends one metric record (the kMetrics/kMetricsEvent shared format).
void put_metric_record(std::vector<std::uint8_t>& out,
                       const obs::MetricSample& m) {
  put_u8(out, static_cast<std::uint8_t>(m.kind));
  // Truncating here would make the scraped name differ from the registry
  // name (and let two long names collide into one record); the vocabulary
  // is static, so a too-long name is a programming error.
  OMEGA_CHECK(m.name.size() <= 255,
              "metric name exceeds wire limit: " << m.name);
  put_u8(out, static_cast<std::uint8_t>(m.name.size()));
  out.insert(out.end(), m.name.begin(), m.name.end());
  put_u64(out, static_cast<std::uint64_t>(m.value));
  put_u64(out, m.sum);
  OMEGA_CHECK(m.buckets.size() <= obs::kHistogramBuckets,
              "metric " << m.name << " has " << m.buckets.size()
                        << " buckets");
  put_u8(out, static_cast<std::uint8_t>(m.buckets.size()));
  for (const auto& [b, n] : m.buckets) {
    put_u8(out, b);
    put_u64(out, n);
  }
}

/// Parses one metric record at `off`, advancing it. False = malformed.
bool get_metric_record(const std::uint8_t* body, std::size_t body_len,
                       std::size_t& off, obs::MetricSample& m) {
  if (body_len < off + 2) return false;
  m.kind = static_cast<obs::MetricSample::Kind>(body[off]);
  const std::size_t name_len = body[off + 1];
  off += 2;
  if (body_len < off + name_len + 17) return false;
  m.name.assign(reinterpret_cast<const char*>(body + off), name_len);
  off += name_len;
  m.value = static_cast<std::int64_t>(get_u64(body + off));
  m.sum = get_u64(body + off + 8);
  const std::size_t nbuckets = body[off + 16];
  off += 17;
  if (nbuckets > obs::kHistogramBuckets ||
      body_len < off + nbuckets * 9) {
    return false;
  }
  m.buckets.reserve(nbuckets);
  for (std::size_t b = 0; b < nbuckets; ++b) {
    m.buckets.emplace_back(body[off], get_u64(body + off + 1));
    off += 9;
  }
  return true;
}

/// Appends a u8-length-prefixed string, truncated at 255 bytes.
void put_short_string(std::vector<std::uint8_t>& out, const std::string& s) {
  const std::size_t n = std::min<std::size_t>(s.size(), 255);
  put_u8(out, static_cast<std::uint8_t>(n));
  out.insert(out.end(), s.begin(), s.begin() + static_cast<std::ptrdiff_t>(n));
}

}  // namespace

void encode_request(std::vector<std::uint8_t>& out, MsgType type,
                    std::uint64_t req_id, std::optional<WireGroupId> gid) {
  const std::size_t at =
      begin_frame(out, FrameHeader{type, Status::kOk, req_id});
  if (gid) put_u64(out, *gid);
  end_frame(out, at);
}

void encode_view_frame(std::vector<std::uint8_t>& out, MsgType type,
                       Status status, std::uint64_t req_id,
                       const ViewBody& view) {
  const std::size_t at = begin_frame(out, FrameHeader{type, status, req_id});
  put_u64(out, view.gid);
  put_u32(out, view.leader);
  put_u64(out, view.epoch);
  end_frame(out, at);
}

void encode_simple_response(std::vector<std::uint8_t>& out, MsgType type,
                            Status status, std::uint64_t req_id) {
  const std::size_t at = begin_frame(out, FrameHeader{type, status, req_id});
  end_frame(out, at);
}

void encode_gid_response(std::vector<std::uint8_t>& out, MsgType type,
                         Status status, std::uint64_t req_id,
                         WireGroupId gid) {
  const std::size_t at = begin_frame(out, FrameHeader{type, status, req_id});
  put_u64(out, gid);
  end_frame(out, at);
}

void encode_stats_response(std::vector<std::uint8_t>& out,
                           std::uint64_t req_id, const StatsBody& stats) {
  const std::size_t at = begin_frame(
      out, FrameHeader{MsgType::kStats, Status::kOk, req_id});
  put_u64(out, stats.connections);
  put_u64(out, stats.queries);
  put_u64(out, stats.watches);
  put_u64(out, stats.events);
  put_u64(out, stats.groups);
  put_u64(out, stats.io_threads);
  put_u64(out, stats.appends);
  put_u64(out, stats.commit_events);
  put_u64(out, stats.log_reads);
  end_frame(out, at);
}

void encode_append_request(std::vector<std::uint8_t>& out,
                           std::uint64_t req_id, const AppendReqBody& body) {
  const std::size_t at =
      begin_frame(out, FrameHeader{MsgType::kAppend, Status::kOk, req_id});
  put_u64(out, body.gid);
  put_u64(out, body.client);
  put_u64(out, body.seq);
  put_u64(out, body.command);
  put_u64(out, body.trace);
  end_frame(out, at);
}

void encode_append_response(std::vector<std::uint8_t>& out, Status status,
                            std::uint64_t req_id, const AppendRespBody& body) {
  const std::size_t at =
      begin_frame(out, FrameHeader{MsgType::kAppend, status, req_id});
  put_u64(out, body.gid);
  put_u64(out, body.index);
  put_u32(out, body.leader);
  put_u64(out, body.epoch);
  put_u64(out, body.trace);
  end_frame(out, at);
}

void encode_readlog_request(std::vector<std::uint8_t>& out,
                            std::uint64_t req_id, const ReadLogReqBody& body) {
  const std::size_t at =
      begin_frame(out, FrameHeader{MsgType::kReadLog, Status::kOk, req_id});
  put_u64(out, body.gid);
  put_u64(out, body.from);
  put_u32(out, body.max);
  end_frame(out, at);
}

void encode_readlog_response(std::vector<std::uint8_t>& out,
                             std::uint64_t req_id, WireGroupId gid,
                             std::uint64_t commit_index,
                             const std::vector<std::uint64_t>& entries) {
  OMEGA_CHECK(entries.size() <= kMaxLogEntries,
              "readlog page too large: " << entries.size());
  const std::size_t at =
      begin_frame(out, FrameHeader{MsgType::kReadLog, Status::kOk, req_id});
  put_u64(out, gid);
  put_u64(out, commit_index);
  put_u32(out, static_cast<std::uint32_t>(entries.size()));
  for (const std::uint64_t v : entries) put_u64(out, v);
  end_frame(out, at);
}

void encode_commit_snapshot(std::vector<std::uint8_t>& out, Status status,
                            std::uint64_t req_id, WireGroupId gid,
                            std::uint64_t commit_index) {
  const std::size_t at = begin_frame(
      out, FrameHeader{MsgType::kCommitWatch, status, req_id});
  put_u64(out, gid);
  put_u64(out, commit_index);
  end_frame(out, at);
}

void encode_commit_event(std::vector<std::uint8_t>& out, WireGroupId gid,
                         std::uint64_t index, std::uint64_t value,
                         std::uint64_t trace) {
  const std::size_t at = begin_frame(
      out, FrameHeader{MsgType::kCommitEvent, Status::kOk, /*req_id=*/0});
  put_u64(out, gid);
  put_u64(out, index);
  put_u64(out, value);
  put_u64(out, trace);
  end_frame(out, at);
}

void encode_reg_hello(std::vector<std::uint8_t>& out, Status status,
                      std::uint64_t req_id, std::uint32_t node) {
  const std::size_t at =
      begin_frame(out, FrameHeader{MsgType::kRegHello, status, req_id});
  put_u32(out, node);
  end_frame(out, at);
}

void encode_reg_push(std::vector<std::uint8_t>& out, WireGroupId gid,
                     std::uint64_t seq, const RegCellUpdate* cells,
                     std::uint32_t count) {
  OMEGA_CHECK(count >= 1 && count <= kMaxPushCells,
              "push frame of " << count << " cells out of range");
  const std::size_t at = begin_frame(
      out, FrameHeader{MsgType::kRegPush, Status::kOk, /*req_id=*/0});
  put_u64(out, gid);
  put_u64(out, seq);
  put_u32(out, count);
  for (std::uint32_t i = 0; i < count; ++i) {
    put_u32(out, cells[i].cell);
    put_u64(out, cells[i].value);
  }
  end_frame(out, at);
}

void encode_reg_ack(std::vector<std::uint8_t>& out, std::uint64_t seq) {
  const std::size_t at = begin_frame(
      out, FrameHeader{MsgType::kRegAck, Status::kOk, /*req_id=*/0});
  put_u64(out, seq);
  end_frame(out, at);
}

void encode_session_open(std::vector<std::uint8_t>& out, Status status,
                         std::uint64_t req_id, WireGroupId gid,
                         std::uint64_t client_or_ttl) {
  const std::size_t at =
      begin_frame(out, FrameHeader{MsgType::kSessionOpen, status, req_id});
  put_u64(out, gid);
  put_u64(out, client_or_ttl);
  end_frame(out, at);
}

std::size_t metrics_record_wire_size(const obs::MetricSample& m) noexcept {
  // Names are checked <= 255 bytes at registration and again at encode, so
  // the size needs no clamping here.
  return 1 + 1 + m.name.size() + 8 + 8 + 1 + m.buckets.size() * 9;
}

void encode_metrics_request(std::vector<std::uint8_t>& out,
                            std::uint64_t req_id,
                            const MetricsReqBody& body) {
  const std::size_t at =
      begin_frame(out, FrameHeader{MsgType::kMetrics, Status::kOk, req_id});
  put_u32(out, body.start);
  end_frame(out, at);
}

void encode_metrics_response(std::vector<std::uint8_t>& out, Status status,
                             std::uint64_t req_id,
                             const MetricsRespBody& body) {
  const std::size_t at =
      begin_frame(out, FrameHeader{MsgType::kMetrics, status, req_id});
  put_u32(out, body.total);
  put_u32(out, body.start);
  put_u32(out, static_cast<std::uint32_t>(body.metrics.size()));
  for (const obs::MetricSample& m : body.metrics) put_metric_record(out, m);
  // v1.5: node identity trails the records; v1.3 readers skip it.
  put_u32(out, body.node);
  OMEGA_CHECK(out.size() - at - 4 <= kMaxPayloadBytes,
              "metrics page overflows the payload cap: "
                  << (out.size() - at - 4));
  end_frame(out, at);
}

void encode_trace_dump_request(std::vector<std::uint8_t>& out,
                               std::uint64_t req_id,
                               const TraceDumpReqBody& body) {
  const std::size_t at = begin_frame(
      out, FrameHeader{MsgType::kTraceDump, Status::kOk, req_id});
  put_u32(out, body.start);
  end_frame(out, at);
}

void encode_trace_dump_response(std::vector<std::uint8_t>& out,
                                Status status, std::uint64_t req_id,
                                const TraceDumpRespBody& body) {
  const std::size_t at =
      begin_frame(out, FrameHeader{MsgType::kTraceDump, status, req_id});
  put_u32(out, body.total);
  put_u32(out, body.start);
  put_u64(out, static_cast<std::uint64_t>(body.realtime_offset_ns));
  put_u32(out, static_cast<std::uint32_t>(body.records.size()));
  for (const obs::TraceRecord& r : body.records) {
    put_u64(out, r.ts_ns);
    put_u32(out, r.thread);
    put_u8(out, static_cast<std::uint8_t>(r.ev));
    put_u64(out, r.a);
    put_u64(out, r.b);
    put_u64(out, r.trace_lo);
    put_u64(out, r.trace_hi);
  }
  OMEGA_CHECK(out.size() - at - 4 <= kMaxPayloadBytes,
              "trace page overflows the payload cap: "
                  << (out.size() - at - 4));
  end_frame(out, at);
}

void encode_health_response(std::vector<std::uint8_t>& out, Status status,
                            std::uint64_t req_id,
                            const HealthRespBody& body) {
  OMEGA_CHECK(body.firing.size() <= 255,
              "health response with " << body.firing.size() << " rules");
  const std::size_t at =
      begin_frame(out, FrameHeader{MsgType::kHealth, status, req_id});
  put_u8(out, body.overall);
  put_u64(out, body.ticks);
  put_u8(out, body.rules_total);
  put_u8(out, static_cast<std::uint8_t>(body.firing.size()));
  for (const HealthRuleWire& r : body.firing) {
    put_u8(out, r.status);
    put_short_string(out, r.name);
    put_short_string(out, r.reason);
  }
  OMEGA_CHECK(out.size() - at - 4 <= kMaxPayloadBytes,
              "health frame overflows the payload cap: "
                  << (out.size() - at - 4));
  end_frame(out, at);
}

void encode_metrics_watch_response(std::vector<std::uint8_t>& out,
                                   Status status, std::uint64_t req_id,
                                   std::uint32_t period_ms) {
  const std::size_t at = begin_frame(
      out, FrameHeader{MsgType::kMetricsWatch, status, req_id});
  put_u32(out, period_ms);
  end_frame(out, at);
}

void encode_metrics_event(std::vector<std::uint8_t>& out,
                          const MetricsEventBody& body) {
  const std::size_t at = begin_frame(
      out, FrameHeader{MsgType::kMetricsEvent, Status::kOk, /*req_id=*/0});
  put_u64(out, body.tick);
  put_u8(out, body.health);
  put_u32(out, body.total);
  put_u32(out, body.start);
  put_u32(out, static_cast<std::uint32_t>(body.metrics.size()));
  for (const obs::MetricSample& m : body.metrics) put_metric_record(out, m);
  OMEGA_CHECK(out.size() - at - 4 <= kMaxPayloadBytes,
              "metrics event overflows the payload cap: "
                  << (out.size() - at - 4));
  end_frame(out, at);
}

void encode_read_request(std::vector<std::uint8_t>& out, std::uint64_t req_id,
                         const ReadReqBody& body) {
  const std::size_t at =
      begin_frame(out, FrameHeader{MsgType::kRead, Status::kOk, req_id});
  put_u64(out, body.gid);
  put_u64(out, body.key);
  put_u64(out, body.min_index);
  end_frame(out, at);
}

void encode_read_response(std::vector<std::uint8_t>& out, Status status,
                          std::uint64_t req_id, const ReadRespBody& body) {
  const std::size_t at =
      begin_frame(out, FrameHeader{MsgType::kRead, status, req_id});
  put_u64(out, body.gid);
  put_u64(out, body.key);
  put_u64(out, body.index);
  put_u64(out, body.commit_index);
  put_u32(out, body.leader);
  put_u64(out, body.epoch);
  end_frame(out, at);
}

DecodeResult decode_payload(const std::uint8_t* data, std::size_t len,
                            Frame& out) {
  out = Frame{};
  if (len < kHeaderBytes) return DecodeResult::kBadLength;
  if (data[0] != kMagic || data[1] != kVersion) return DecodeResult::kBadMagic;
  out.header.type = static_cast<MsgType>(data[2]);
  out.header.status = static_cast<Status>(data[3]);
  out.header.req_id = get_u64(data + 4);
  const std::uint8_t* body = data + kHeaderBytes;
  const std::size_t body_len = len - kHeaderBytes;

  switch (out.header.type) {
    case MsgType::kLeader:
    case MsgType::kWatch:
    case MsgType::kUnwatch:
    case MsgType::kEvent: {
      // gid is always present; leader+epoch only in responses/events (a
      // 8-byte body is a request, a >=20-byte body carries the view).
      if (body_len < 8) return DecodeResult::kBadBody;
      out.view.gid = get_u64(body);
      out.has_body = true;
      if (body_len >= 20) {
        out.view.leader = get_u32(body + 8);
        out.view.epoch = get_u64(body + 12);
      } else if (out.header.type == MsgType::kEvent) {
        return DecodeResult::kBadBody;  // pushes always carry the view
      }
      return DecodeResult::kOk;
    }
    case MsgType::kPing:
      return DecodeResult::kOk;
    case MsgType::kStats: {
      // < 48 bytes cannot be a v1 response; treat it as a request (a
      // future revision may append request fields — ignore them) so the
      // forward-compatibility rule holds for STATS too.
      if (body_len < 48) return DecodeResult::kOk;
      out.stats.connections = get_u64(body);
      out.stats.queries = get_u64(body + 8);
      out.stats.watches = get_u64(body + 16);
      out.stats.events = get_u64(body + 24);
      out.stats.groups = get_u64(body + 32);
      out.stats.io_threads = get_u64(body + 40);
      if (body_len >= 72) {  // v1.1 extension fields
        out.stats.appends = get_u64(body + 48);
        out.stats.commit_events = get_u64(body + 56);
        out.stats.log_reads = get_u64(body + 64);
      }
      out.has_body = true;
      return DecodeResult::kOk;
    }
    case MsgType::kAppend: {
      // Role-based decode: a request is 32 bytes (gid, client, seq,
      // command), a response 28 (gid, index, leader, epoch); v1.4 appends
      // a u64 trace id to both (40/36 bytes — shorter v1.1 bodies decode
      // with trace 0). Fill every interpretation the length allows; the
      // consumer knows its side. The lengths interleave (28 < 32 < 36 <
      // 40), so the request role matches the exact known request sizes,
      // not a threshold — future revisions must grow request and
      // response in lockstep to keep the sets disjoint.
      if (body_len < 28) return DecodeResult::kBadBody;
      out.append_resp.gid = get_u64(body);
      out.append_resp.index = get_u64(body + 8);
      out.append_resp.leader = get_u32(body + 16);
      out.append_resp.epoch = get_u64(body + 20);
      if (body_len >= 36 && body_len != 40) {
        out.append_resp.trace = get_u64(body + 28);
      }
      if (body_len == 32 || body_len >= 40) {
        out.append_req.gid = get_u64(body);
        out.append_req.client = get_u64(body + 8);
        out.append_req.seq = get_u64(body + 16);
        out.append_req.command = get_u64(body + 24);
        if (body_len >= 40) out.append_req.trace = get_u64(body + 32);
        out.has_append_req = true;
      }
      out.has_body = true;
      return DecodeResult::kOk;
    }
    case MsgType::kReadLog: {
      // Request: gid | from(8) | max(4) = 20 bytes. Response: gid |
      // commit_index(8) | count(4) | count × u64 — but *error* responses
      // carry the gid alone, so only the gid is mandatory. Fixed parts
      // fill both interpretations; the entry list is only parsed when
      // `count` is consistent with the body length (a request's `max`
      // will not be, unless it is 0 — and then the list is empty anyway).
      if (body_len < 8) return DecodeResult::kBadBody;
      out.readlog_req.gid = get_u64(body);
      out.readlog_resp.gid = out.readlog_req.gid;
      if (body_len >= 20) {
        out.readlog_req.from = get_u64(body + 8);
        out.readlog_req.max = get_u32(body + 16);
        out.has_readlog_req = true;
        out.readlog_resp.commit_index = out.readlog_req.from;
        const std::uint32_t count = out.readlog_req.max;
        if (count <= kMaxLogEntries &&
            body_len >= 20 + std::size_t{count} * 8) {
          out.readlog_resp.entries.reserve(count);
          for (std::uint32_t i = 0; i < count; ++i) {
            out.readlog_resp.entries.push_back(get_u64(body + 20 + i * 8));
          }
        }
      }
      out.has_body = true;
      return DecodeResult::kOk;
    }
    case MsgType::kCommitWatch:
    case MsgType::kCommitUnwatch:
    case MsgType::kCommitEvent: {
      // gid always; +index in kCommitWatch responses; +index,value in
      // pushes (which, like kEvent, must carry their full body). v1.4
      // pushes append the trace id; v1.1 pushes decode with trace 0.
      if (body_len < 8) return DecodeResult::kBadBody;
      out.commit.gid = get_u64(body);
      if (body_len >= 16) out.commit.index = get_u64(body + 8);
      if (body_len >= 24) {
        out.commit.value = get_u64(body + 16);
        if (body_len >= 32) out.commit.trace = get_u64(body + 24);
      } else if (out.header.type == MsgType::kCommitEvent) {
        return DecodeResult::kBadBody;
      }
      out.has_body = true;
      return DecodeResult::kOk;
    }
    case MsgType::kRegHello: {
      if (body_len < 4) return DecodeResult::kBadBody;
      out.reg_hello.node = get_u32(body);
      out.has_body = true;
      return DecodeResult::kOk;
    }
    case MsgType::kRegPush: {
      if (body_len < 20) return DecodeResult::kBadBody;
      out.reg_push.gid = get_u64(body);
      out.reg_push.seq = get_u64(body + 8);
      const std::uint32_t count = get_u32(body + 16);
      if (count > kMaxPushCells ||
          body_len < 20 + std::size_t{count} * 12) {
        return DecodeResult::kBadBody;
      }
      out.reg_push.cells.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        const std::uint8_t* p = body + 20 + i * 12;
        out.reg_push.cells.push_back(RegCellUpdate{get_u32(p), get_u64(p + 4)});
      }
      out.has_body = true;
      return DecodeResult::kOk;
    }
    case MsgType::kRegAck: {
      if (body_len < 8) return DecodeResult::kBadBody;
      out.reg_ack.seq = get_u64(body);
      out.has_body = true;
      return DecodeResult::kOk;
    }
    case MsgType::kSessionOpen: {
      // Request (gid, client) and response (gid, ttl_us) share the
      // 16-byte layout; the consumer reads the field for its side.
      if (body_len < 16) return DecodeResult::kBadBody;
      out.session.gid = get_u64(body);
      out.session.client = get_u64(body + 8);
      out.session.ttl_us = out.session.client;
      out.has_body = true;
      return DecodeResult::kOk;
    }
    case MsgType::kMetrics: {
      // Role-based by length, like STATS: a request is the 4-byte start
      // index, a response at least total|start|count (12 bytes).
      if (body_len < 4) return DecodeResult::kBadBody;
      out.metrics_req.start = get_u32(body);
      out.has_body = true;
      if (body_len < 12) return DecodeResult::kOk;
      out.metrics_resp.total = get_u32(body);
      out.metrics_resp.start = get_u32(body + 4);
      const std::uint32_t count = get_u32(body + 8);
      // `count` is wire-controlled: reject counts the body cannot possibly
      // hold (each record is >= 19 bytes: kind|name_len|value|sum|nbuckets)
      // before reserve(), or a 12-byte frame with count=0xFFFFFFFF turns
      // into a multi-hundred-GB allocation request.
      if (count > (body_len - 12) / 19) return DecodeResult::kBadBody;
      std::size_t off = 12;
      out.metrics_resp.metrics.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        obs::MetricSample m;
        if (!get_metric_record(body, body_len, off, m)) {
          return DecodeResult::kBadBody;
        }
        out.metrics_resp.metrics.push_back(std::move(m));
      }
      // v1.5 node identity trails the records; absent on v1.3 peers.
      if (body_len >= off + 4) {
        out.metrics_resp.node = get_u32(body + off);
      }
      out.has_metrics_resp = true;
      return DecodeResult::kOk;
    }
    case MsgType::kTraceDump: {
      // Role-based by length, like kMetrics: a request is the 4-byte
      // start index, a response at least total|start|offset|count (20).
      if (body_len < 4) return DecodeResult::kBadBody;
      out.trace_req.start = get_u32(body);
      out.has_body = true;
      if (body_len < 20) return DecodeResult::kOk;
      out.trace_resp.total = get_u32(body);
      out.trace_resp.start = get_u32(body + 4);
      out.trace_resp.realtime_offset_ns =
          static_cast<std::int64_t>(get_u64(body + 8));
      const std::uint32_t count = get_u32(body + 16);
      // `count` is wire-controlled: reject counts the fixed-size records
      // cannot fill before reserve() (same hardening as kMetrics).
      if (count > (body_len - 20) / kTraceRecordWireBytes) {
        return DecodeResult::kBadBody;
      }
      std::size_t off = 20;
      out.trace_resp.records.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        if (body_len < off + kTraceRecordWireBytes) {
          return DecodeResult::kBadBody;
        }
        obs::TraceRecord r;
        r.ts_ns = get_u64(body + off);
        r.thread = get_u32(body + off + 8);
        r.ev = static_cast<obs::TraceEvent>(body[off + 12]);
        r.a = get_u64(body + off + 13);
        r.b = get_u64(body + off + 21);
        r.trace_lo = get_u64(body + off + 29);
        r.trace_hi = get_u64(body + off + 37);
        off += kTraceRecordWireBytes;
        out.trace_resp.records.push_back(r);
      }
      out.has_trace_resp = true;
      return DecodeResult::kOk;
    }
    case MsgType::kHealth: {
      // Role-based by length: a request is empty, a response at least
      // overall|ticks|rules_total|nfiring (11 bytes).
      if (body_len < 11) return DecodeResult::kOk;
      out.health_resp.overall = body[0];
      out.health_resp.ticks = get_u64(body + 1);
      out.health_resp.rules_total = body[9];
      const std::size_t nfiring = body[10];
      // `nfiring` is wire-controlled like kMetrics' count; each rule is
      // >= 3 bytes (status + two empty length-prefixed strings).
      if (nfiring > (body_len - 11) / 3) return DecodeResult::kBadBody;
      std::size_t off = 11;
      out.health_resp.firing.reserve(nfiring);
      for (std::size_t i = 0; i < nfiring; ++i) {
        if (body_len < off + 2) return DecodeResult::kBadBody;
        HealthRuleWire r;
        r.status = body[off];
        const std::size_t name_len = body[off + 1];
        off += 2;
        if (body_len < off + name_len + 1) return DecodeResult::kBadBody;
        r.name.assign(reinterpret_cast<const char*>(body + off), name_len);
        off += name_len;
        const std::size_t reason_len = body[off];
        off += 1;
        if (body_len < off + reason_len) return DecodeResult::kBadBody;
        r.reason.assign(reinterpret_cast<const char*>(body + off),
                        reason_len);
        off += reason_len;
        out.health_resp.firing.push_back(std::move(r));
      }
      out.has_body = true;
      out.has_health_resp = true;
      return DecodeResult::kOk;
    }
    case MsgType::kMetricsWatch: {
      // Role-based by length: a request is empty, a response carries the
      // u32 sampler period.
      if (body_len < 4) return DecodeResult::kOk;
      out.metrics_watch.period_ms = get_u32(body);
      out.has_body = true;
      return DecodeResult::kOk;
    }
    case MsgType::kMetricsEvent: {
      // Push only: tick|health|total|start|count (21 bytes) + records.
      if (body_len < 21) return DecodeResult::kBadBody;
      out.metrics_event.tick = get_u64(body);
      out.metrics_event.health = body[8];
      out.metrics_event.total = get_u32(body + 9);
      out.metrics_event.start = get_u32(body + 13);
      const std::uint32_t count = get_u32(body + 17);
      // Count-bomb hardening, same bound as kMetrics records.
      if (count > (body_len - 21) / 19) return DecodeResult::kBadBody;
      std::size_t off = 21;
      out.metrics_event.metrics.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        obs::MetricSample m;
        if (!get_metric_record(body, body_len, off, m)) {
          return DecodeResult::kBadBody;
        }
        out.metrics_event.metrics.push_back(std::move(m));
      }
      out.has_body = true;
      out.has_metrics_event = true;
      return DecodeResult::kOk;
    }
    case MsgType::kRead: {
      // Role-based decode (v1.6): a request is gid|key|min_index (24
      // bytes — the APPEND lockstep rule: request lengths stay below the
      // response's 44, and future revisions grow both sides together),
      // a response gid|key|index|commit_index|leader|epoch (>= 44;
      // error responses carry the full zero-filled body too, so one
      // length rule covers every status).
      if (body_len < 24) return DecodeResult::kBadBody;
      out.read_req.gid = get_u64(body);
      out.read_req.key = get_u64(body + 8);
      if (body_len < 44) {
        out.read_req.min_index = get_u64(body + 16);
        out.has_read_req = true;
      } else {
        out.read_resp.gid = out.read_req.gid;
        out.read_resp.key = out.read_req.key;
        out.read_resp.index = get_u64(body + 16);
        out.read_resp.commit_index = get_u64(body + 24);
        out.read_resp.leader = get_u32(body + 32);
        out.read_resp.epoch = get_u64(body + 36);
        out.has_read_resp = true;
      }
      out.has_body = true;
      return DecodeResult::kOk;
    }
    default:
      // Unknown type: header decoded, no body — lets a server answer
      // kUnsupported and a client skip frames from a newer server.
      return DecodeResult::kOk;
  }
}

void FrameDecoder::feed(const std::uint8_t* data, std::size_t len) {
  if (corrupt_) return;
  // Compact once the consumed prefix dominates, so a long-lived connection
  // does not grow its buffer without bound.
  if (pos_ > 4096 && pos_ * 2 > buf_.size()) {
    buf_.erase(buf_.begin(),
               buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buf_.insert(buf_.end(), data, data + len);
}

bool FrameDecoder::next(const std::uint8_t*& payload, std::size_t& len) {
  if (corrupt_) return false;
  if (buf_.size() - pos_ < 4) return false;
  const std::uint8_t* p = buf_.data() + pos_;
  const std::uint32_t payload_len = get_u32(p);
  if (payload_len > kMaxPayloadBytes) {
    corrupt_ = true;
    return false;
  }
  if (buf_.size() - pos_ < 4 + static_cast<std::size_t>(payload_len)) {
    return false;
  }
  payload = p + 4;
  len = payload_len;
  pos_ += 4 + payload_len;
  return true;
}

}  // namespace omega::net
