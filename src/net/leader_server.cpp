#include "net/leader_server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>

#include "common/check.h"
#include "obs/flight_recorder.h"
#include "obs/process_gauges.h"
#include "smr/log_group.h"
#include "svc/worker_pool.h"

namespace omega::net {

namespace {

void set_tcp_nodelay(int fd) {
  int one = 1;
  // Best effort: latency tuning, not correctness.
  (void)setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

std::int64_t steady_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::uint64_t load_u64le(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

/// Metric-name suffix per wire type byte (index 0 = unknown fallback).
const char* frame_metric_name(std::size_t type) {
  switch (static_cast<MsgType>(type)) {
    case MsgType::kLeader: return "net.frames.leader";
    case MsgType::kWatch: return "net.frames.watch";
    case MsgType::kUnwatch: return "net.frames.unwatch";
    case MsgType::kPing: return "net.frames.ping";
    case MsgType::kStats: return "net.frames.stats";
    case MsgType::kEvent: return "net.frames.event";
    case MsgType::kAppend: return "net.frames.append";
    case MsgType::kReadLog: return "net.frames.read_log";
    case MsgType::kCommitWatch: return "net.frames.commit_watch";
    case MsgType::kCommitUnwatch: return "net.frames.commit_unwatch";
    case MsgType::kCommitEvent: return "net.frames.commit_event";
    case MsgType::kRegHello: return "net.frames.reg_hello";
    case MsgType::kRegPush: return "net.frames.reg_push";
    case MsgType::kRegAck: return "net.frames.reg_ack";
    case MsgType::kSessionOpen: return "net.frames.session_open";
    case MsgType::kMetrics: return "net.frames.metrics";
    case MsgType::kTraceDump: return "net.frames.trace_dump";
    case MsgType::kHealth: return "net.frames.health";
    case MsgType::kMetricsWatch: return "net.frames.metrics_watch";
    case MsgType::kMetricsEvent: return "net.frames.metrics_event";
    case MsgType::kRead: return "net.frames.read";
    default: return "net.frames.other";
  }
}

/// Process-level health rules owned by the net layer: descriptor and
/// memory growth. Both gate on the ring actually covering the window —
/// a fresh sampler must not alarm on its first few points.
void register_net_health_rules(obs::HealthMonitor& hm) {
  constexpr std::int64_t kWindowMs = 30'000;
  hm.add_rule(obs::HealthRule{
      "net-fd-growth",
      [](const obs::TimeSeries& ts, std::string* reason) {
        if (ts.span_ms("proc.open_fds") < kWindowMs) return obs::Health::kOk;
        const std::int64_t d = ts.delta("proc.open_fds", kWindowMs);
        if (d <= 512) return obs::Health::kOk;
        *reason = "+" + std::to_string(d) + " fds in 30s (now " +
                  std::to_string(ts.latest_value("proc.open_fds")) + ")";
        return obs::Health::kDegraded;
      },
      /*degrade_after=*/2,
      /*recover_after=*/4});
  hm.add_rule(obs::HealthRule{
      "net-rss-growth",
      [](const obs::TimeSeries& ts, std::string* reason) {
        if (ts.span_ms("proc.rss_bytes") < kWindowMs) return obs::Health::kOk;
        const std::int64_t d = ts.delta("proc.rss_bytes", kWindowMs);
        if (d <= (std::int64_t{256} << 20)) return obs::Health::kOk;
        *reason = "rss grew " + std::to_string(d >> 20) + " MiB in 30s";
        return obs::Health::kDegraded;
      },
      /*degrade_after=*/2,
      /*recover_after=*/4});
}

}  // namespace

LeaderServer::LeaderServer(svc::MultiGroupLeaderService& service,
                           NetConfig cfg)
    : service_(service), cfg_(std::move(cfg)) {
  OMEGA_CHECK(cfg_.io_threads >= 1 && cfg_.io_threads <= 64,
              "io_threads must be in [1, 64], got " << cfg_.io_threads);
  loops_.reserve(cfg_.io_threads);
  for (std::uint32_t i = 0; i < cfg_.io_threads; ++i) {
    loops_.push_back(std::make_unique<Loop>());
  }
  std::vector<EventLoop*> raw;
  raw.reserve(loops_.size());
  for (auto& l : loops_) raw.push_back(&l->loop);
  hub_ = std::make_unique<WatchHub>(
      std::move(raw),
      [this](std::uint32_t loop, svc::GroupId gid, svc::LeaderView view) {
        deliver_event(loop, gid, view);
      },
      [this](std::uint32_t loop, svc::GroupId gid, std::uint64_t first_index,
             const std::vector<std::uint64_t>& values,
             const std::vector<std::uint64_t>& traces) {
        deliver_commit_batch(loop, gid, first_index, values, traces);
      },
      [this](std::uint32_t loop,
             std::shared_ptr<const std::vector<std::uint8_t>> bytes) {
        deliver_metrics(loop, std::move(bytes));
      });
  append_sink_ = std::make_shared<AppendSink>();
  append_sink_->server = this;
  for (std::size_t t = 0; t < kFrameCounterSlots; ++t) {
    frame_counters_[t] = &obs::counter(frame_metric_name(t));
  }
  ack_flush_hist_ = &obs::histogram("net.ack_flush_ns");
  obs::register_process_gauges();
  if (cfg_.sample_period_ms > 0) {
    obs::SamplerConfig scfg;
    scfg.period_ms = cfg_.sample_period_ms;
    sampler_ = std::make_unique<obs::Sampler>(scfg);
    // Every hosted layer contributes its rules up front; rules over
    // metrics a deployment never emits stay kOk (absent series read as
    // zero), so registering unconditionally is harmless.
    register_net_health_rules(sampler_->health());
    svc::register_health_rules(sampler_->health());
    smr::register_health_rules(sampler_->health());
    // Tick fan-out: encode the scrape ONCE into METRICS_EVENT pages and
    // hand the shared buffer to the hub, which posts it to every loop
    // with a subscriber. Runs on the sampler thread; skipped entirely
    // while nobody watches.
    sampler_->set_tick_listener(
        [this](std::uint64_t tick_no,
               const std::vector<obs::MetricSample>& scrape,
               const obs::HealthReport& report) {
          if (!hub_->has_metrics_watchers()) return;
          auto frames = std::make_shared<std::vector<std::uint8_t>>();
          MetricsEventBody page;
          page.tick = tick_no;
          page.health = static_cast<std::uint8_t>(report.overall);
          page.total = static_cast<std::uint32_t>(scrape.size());
          page.start = 0;
          std::size_t bytes = kHeaderBytes + 21;  // fixed body prefix
          for (std::size_t i = 0; i < scrape.size(); ++i) {
            const std::size_t sz = metrics_record_wire_size(scrape[i]);
            if (bytes + sz > kMaxPayloadBytes) {
              encode_metrics_event(*frames, page);
              page.metrics.clear();
              page.start = static_cast<std::uint32_t>(i);
              bytes = kHeaderBytes + 21;
            }
            page.metrics.push_back(scrape[i]);
            bytes += sz;
          }
          // The final (or only, possibly metric-less) page still carries
          // the tick number and health byte — a heartbeat even when the
          // registry is empty.
          encode_metrics_event(*frames, page);
          hub_->publish_metrics(std::move(frames));
        });
  }
  open_listener();
  reserve_fd_ = ::open("/dev/null", O_RDONLY | O_CLOEXEC);
}

void LeaderServer::serve_log(smr::SmrService& smr) {
  OMEGA_CHECK(!started_, "serve_log() after start()");
  smr_ = &smr;
}

LeaderServer::~LeaderServer() {
  stop();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (reserve_fd_ >= 0) ::close(reserve_fd_);
}

void LeaderServer::open_listener() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  OMEGA_CHECK(listen_fd_ >= 0, "socket: errno " << errno);
  int one = 1;
  (void)setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(cfg_.port);
  OMEGA_CHECK(inet_pton(AF_INET, cfg_.bind_address.c_str(),
                        &addr.sin_addr) == 1,
              "bad bind address " << cfg_.bind_address);
  OMEGA_CHECK(::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                     sizeof addr) == 0,
              "bind " << cfg_.bind_address << ":" << cfg_.port << ": errno "
                      << errno);
  OMEGA_CHECK(::listen(listen_fd_, 256) == 0, "listen: errno " << errno);
  socklen_t len = sizeof addr;
  OMEGA_CHECK(getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                          &len) == 0,
              "getsockname: errno " << errno);
  port_ = ntohs(addr.sin_port);
}

void LeaderServer::start() {
  OMEGA_CHECK(!started_, "start() called twice");
  started_ = true;
  for (std::uint32_t i = 0; i < cfg_.io_threads; ++i) {
    Loop* l = loops_[i].get();
    l->thread = std::thread([l] { l->loop.run(); });
  }
  // The acceptor lives on loop 0. Registered via post() so the add_fd
  // happens on the loop thread (EventLoop registration is loop-confined).
  loops_[0]->loop.post([this] {
    loops_[0]->loop.add_fd(listen_fd_, EPOLLIN,
                           [this](std::uint32_t) { on_accept(); });
  });
  service_.set_epoch_listener(
      [this](svc::GroupId gid, const svc::LeaderView& view) {
        hub_->publish(gid, view);
      });
  if (smr_ != nullptr) {
    smr_->set_commit_listener(
        [this](svc::GroupId gid, std::uint64_t first_index,
               const std::vector<std::uint64_t>& values,
               const std::vector<std::uint64_t>& traces) {
          hub_->publish_commit_batch(gid, first_index, values, traces);
        });
  }
  if (sampler_) sampler_->start();
}

void LeaderServer::stop() {
  if (!started_ || stopped_) return;
  stopped_ = true;
  // The sampler posts into the loops via the hub; join its thread before
  // anything else winds down.
  if (sampler_) sampler_->stop();
  // Workers must stop calling into the hub before the loops go away, and
  // append completions that fire from now on must become no-ops.
  service_.set_epoch_listener({});
  if (smr_ != nullptr) smr_->set_commit_listener({});
  {
    std::lock_guard<std::mutex> lock(append_sink_->mu);
    append_sink_->server = nullptr;
  }
  for (auto& l : loops_) l->loop.stop();
  for (auto& l : loops_) {
    if (l->thread.joinable()) l->thread.join();
  }
  // Loop threads are gone: connection state is safe to touch from here.
  // Drain once more first — an acceptor racing the shutdown may have
  // posted an adoption task after its target loop's final drain; running
  // it here lands the fd in l.conns so the cleanup below closes it.
  for (auto& l : loops_) l->loop.drain_pending();
  for (auto& l : loops_) {
    for (auto& [fd, conn] : l->conns) ::close(conn->fd);
    l->conns.clear();
    l->watchers.clear();
    l->commit_watchers.clear();
    l->metrics_watchers.clear();
  }
}

NetServerStats LeaderServer::stats() const {
  NetServerStats s;
  for (const auto& l : loops_) {
    s.accepted += l->counters.accepted.load(std::memory_order_relaxed);
    s.closed += l->counters.closed.load(std::memory_order_relaxed);
    s.queries += l->counters.queries.load(std::memory_order_relaxed);
    s.watches += l->counters.watches.load(std::memory_order_relaxed);
    s.events += l->counters.events.load(std::memory_order_relaxed);
    s.protocol_errors +=
        l->counters.protocol_errors.load(std::memory_order_relaxed);
    s.slow_closed += l->counters.slow_closed.load(std::memory_order_relaxed);
    s.appends += l->counters.appends.load(std::memory_order_relaxed);
    s.commit_events +=
        l->counters.commit_events.load(std::memory_order_relaxed);
    s.log_reads += l->counters.log_reads.load(std::memory_order_relaxed);
    s.point_reads += l->counters.point_reads.load(std::memory_order_relaxed);
  }
  s.connections = open_connections_.load(std::memory_order_relaxed);
  return s;
}

StatsBody LeaderServer::stats_body() const {
  const NetServerStats s = stats();
  StatsBody b;
  b.connections = s.connections;
  b.queries = s.queries;
  b.watches = s.watches;
  b.events = s.events;
  b.groups = service_.num_groups();
  b.io_threads = cfg_.io_threads;
  b.appends = s.appends;
  b.commit_events = s.commit_events;
  b.log_reads = s.log_reads;
  return b;
}

void LeaderServer::on_accept() {
  // Edge-triggered: accept until the backlog is drained.
  for (;;) {
    const int fd =
        ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR || errno == ECONNABORTED) continue;
      if ((errno == EMFILE || errno == ENFILE) && reserve_fd_ >= 0) {
        // Out of fds: momentarily release the reserve so the queued
        // connection can be accepted and shed — the client gets a prompt
        // reset instead of hanging in a backlog whose readiness edge has
        // already been consumed.
        ::close(reserve_fd_);
        const int shed = ::accept4(listen_fd_, nullptr, nullptr,
                                   SOCK_NONBLOCK | SOCK_CLOEXEC);
        if (shed >= 0) ::close(shed);
        reserve_fd_ = ::open("/dev/null", O_RDONLY | O_CLOEXEC);
        continue;
      }
      return;  // unexpected accept error: drop the batch, stay alive
    }
    if (open_connections_.load(std::memory_order_relaxed) >=
        cfg_.max_connections) {
      ::close(fd);
      continue;
    }
    set_tcp_nodelay(fd);
    open_connections_.fetch_add(1, std::memory_order_relaxed);
    const std::uint32_t target = next_loop_;
    next_loop_ = (next_loop_ + 1) % cfg_.io_threads;
    if (target == 0) {
      adopt_connection(0, fd);
    } else {
      loops_[target]->loop.post(
          [this, target, fd] { adopt_connection(target, fd); });
    }
  }
}

void LeaderServer::adopt_connection(std::uint32_t loop_idx, int fd) {
  Loop& l = *loops_[loop_idx];
  auto conn = std::make_unique<Connection>();
  conn->fd = fd;
  conn->loop = loop_idx;
  conn->serial = next_serial_.fetch_add(1, std::memory_order_relaxed);
  l.conns.emplace(fd, std::move(conn));
  l.counters.accepted.fetch_add(1, std::memory_order_relaxed);
  l.loop.add_fd(fd, EPOLLIN, [this, loop_idx, fd](std::uint32_t events) {
    on_io(loop_idx, fd, events);
  });
}

void LeaderServer::unlink_watcher(Loop& l, WatcherMap& map, Connection& c,
                                  svc::GroupId gid) {
  const auto it = map.find(gid);
  if (it != map.end()) {
    auto& v = it->second;
    v.erase(std::remove(v.begin(), v.end(), &c), v.end());
    if (v.empty()) map.erase(it);
  }
  l.counters.watches.fetch_sub(1, std::memory_order_relaxed);
}

void LeaderServer::drop_watch(Loop& l, Connection& c, svc::GroupId gid) {
  hub_->remove_watch(gid, c.loop);
  unlink_watcher(l, l.watchers, c, gid);
}

void LeaderServer::drop_commit_watch(Loop& l, Connection& c,
                                     svc::GroupId gid) {
  hub_->remove_commit_watch(gid, c.loop);
  unlink_watcher(l, l.commit_watchers, c, gid);
}

void LeaderServer::close_connection(Loop& l, Connection& c) {
  for (const svc::GroupId gid : c.watches) drop_watch(l, c, gid);
  for (const svc::GroupId gid : c.commit_watches) {
    drop_commit_watch(l, c, gid);
  }
  if (c.metrics_watch) drop_metrics_watch(l, c);
  l.loop.remove_fd(c.fd);
  ::close(c.fd);
  l.counters.closed.fetch_add(1, std::memory_order_relaxed);
  open_connections_.fetch_sub(1, std::memory_order_relaxed);
  l.conns.erase(c.fd);  // destroys c — must be last
}

bool LeaderServer::flush(Loop& l, Connection& c) {
  while (c.out_pos < c.out.size()) {
    const ssize_t n = ::send(c.fd, c.out.data() + c.out_pos,
                             c.out.size() - c.out_pos, MSG_NOSIGNAL);
    if (n > 0) {
      c.out_pos += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // Backpressure: a peer that stops reading while responses/events
      // keep queueing gets disconnected rather than growing the buffer.
      if (c.out.size() - c.out_pos > cfg_.max_outbuf_bytes) {
        l.counters.slow_closed.fetch_add(1, std::memory_order_relaxed);
        close_connection(l, c);
        return false;
      }
      if (!c.want_write) {
        c.want_write = true;
        l.loop.mod_fd(c.fd, EPOLLIN | EPOLLOUT);
      }
      return true;
    }
    if (n < 0 && errno == EINTR) continue;
    close_connection(l, c);
    return false;
  }
  c.out.clear();
  c.out_pos = 0;
  if (c.want_write) {
    c.want_write = false;
    l.loop.mod_fd(c.fd, EPOLLIN);
  }
  return true;
}

void LeaderServer::on_io(std::uint32_t loop_idx, int fd,
                         std::uint32_t events) {
  Loop& l = *loops_[loop_idx];
  const auto it = l.conns.find(fd);
  if (it == l.conns.end()) return;  // closed earlier in this batch
  Connection& c = *it->second;

  if (events & (EPOLLHUP | EPOLLERR)) {
    close_connection(l, c);
    return;
  }
  if (events & EPOLLOUT) {
    if (!flush(l, c)) return;
  }
  if (!(events & EPOLLIN)) return;

  // Edge-triggered: drain the socket. Frames are handled as they complete,
  // responses accumulate in c.out and are flushed once per readiness batch.
  // Two bounds protect the loop from a peer that sends at line rate
  // without reading replies: the output buffer is flushed (and, via the
  // backpressure check in flush(), possibly closed) whenever it exceeds
  // the cap, and one callback drains at most kReadBudget bytes before
  // re-posting itself so shard-mates on this loop still get served.
  constexpr std::size_t kReadBudget = 256 * 1024;
  std::size_t drained = 0;
  std::uint8_t buf[16 * 1024];
  for (;;) {
    const ssize_t n = ::recv(c.fd, buf, sizeof buf, 0);
    if (n > 0) {
      c.in.feed(buf, static_cast<std::size_t>(n));
      const std::uint8_t* payload = nullptr;
      std::size_t len = 0;
      while (c.in.next(payload, len)) {
        // v1.6 point-read fast path: at memory-speed read rates, a Frame
        // (a dozen vector members) per request dominates the dispatch
        // cost. The canonical READ request is a fixed 24-byte body, so
        // parse it in place; anything non-canonical (trailing bytes,
        // short body) falls through to the decoded slow path.
        if (len == kHeaderBytes + 24 && payload[0] == kMagic &&
            payload[1] == kVersion &&
            payload[2] == static_cast<std::uint8_t>(MsgType::kRead)) {
          frame_counters_[static_cast<std::size_t>(MsgType::kRead)]->add();
          ReadReqBody req;
          req.gid = load_u64le(payload + kHeaderBytes);
          req.key = load_u64le(payload + kHeaderBytes + 8);
          req.min_index = load_u64le(payload + kHeaderBytes + 16);
          if (!handle_read(l, c, load_u64le(payload + 4), req)) return;
          continue;
        }
        Frame frame;
        const DecodeResult r = decode_payload(payload, len, frame);
        if (r != DecodeResult::kOk) {
          l.counters.protocol_errors.fetch_add(1, std::memory_order_relaxed);
          close_connection(l, c);
          return;
        }
        if (!handle_frame(l, c, frame)) return;
      }
      if (c.in.corrupt()) {
        l.counters.protocol_errors.fetch_add(1, std::memory_order_relaxed);
        close_connection(l, c);
        return;
      }
      if (c.out.size() - c.out_pos > cfg_.max_outbuf_bytes) {
        if (!flush(l, c)) return;  // closed: slow consumer over the cap
      }
      drained += static_cast<std::size_t>(n);
      if (drained >= kReadBudget) {
        // Yield the loop; the edge is not lost because we re-invoke
        // ourselves (the task runs after the current dispatch batch).
        flush(l, c);
        l.loop.post([this, loop_idx, fd] { on_io(loop_idx, fd, EPOLLIN); });
        return;
      }
      if (static_cast<std::size_t>(n) < sizeof buf) break;  // drained
      continue;
    }
    if (n == 0) {  // orderly peer close
      close_connection(l, c);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    close_connection(l, c);
    return;
  }
  flush(l, c);
}

bool LeaderServer::handle_frame(Loop& l, Connection& c, const Frame& frame) {
  const std::uint64_t id = frame.header.req_id;
  const auto type_byte =
      static_cast<std::size_t>(frame.header.type);
  frame_counters_[type_byte < kFrameCounterSlots ? type_byte : 0]->add();
  // decode_payload guarantees a gid body for the three group-addressed
  // types (a short body is kBadBody and closed the connection in on_io),
  // so frame.view.gid is always valid below.
  switch (frame.header.type) {
    case MsgType::kLeader: {
      l.counters.queries.fetch_add(1, std::memory_order_relaxed);
      svc::LeaderView view;
      if (!service_.try_leader(frame.view.gid, view)) {
        encode_gid_response(c.out, MsgType::kLeader, Status::kUnknownGroup,
                            id, frame.view.gid);
        return true;
      }
      encode_view_frame(c.out, MsgType::kLeader, Status::kOk, id,
                        ViewBody{frame.view.gid, view.leader, view.epoch});
      return true;
    }
    case MsgType::kWatch: {
      const svc::GroupId gid = frame.view.gid;
      // Subscribe *before* reading the snapshot so a concurrent epoch
      // change is never lost (it may be duplicated; clients dedupe).
      const bool fresh = c.watches.insert(gid).second;
      if (fresh) {
        hub_->add_watch(gid, c.loop);
        l.watchers[gid].push_back(&c);
        l.counters.watches.fetch_add(1, std::memory_order_relaxed);
      }
      svc::LeaderView view;
      if (!service_.try_leader(gid, view)) {
        if (fresh) {  // roll the subscription back: nothing to watch
          drop_watch(l, c, gid);
          c.watches.erase(gid);
        }
        encode_gid_response(c.out, MsgType::kWatch, Status::kUnknownGroup,
                            id, gid);
        return true;
      }
      encode_view_frame(c.out, MsgType::kWatch, Status::kOk, id,
                        ViewBody{gid, view.leader, view.epoch});
      return true;
    }
    case MsgType::kUnwatch: {
      const svc::GroupId gid = frame.view.gid;
      if (c.watches.erase(gid) > 0) drop_watch(l, c, gid);
      encode_gid_response(c.out, MsgType::kUnwatch, Status::kOk, id, gid);
      return true;
    }
    case MsgType::kPing:
      encode_simple_response(c.out, MsgType::kPing, Status::kOk, id);
      return true;
    case MsgType::kStats:
      encode_stats_response(c.out, id, stats_body());
      return true;
    case MsgType::kAppend: {
      AppendRespBody resp;
      resp.gid = frame.append_resp.gid;
      if (smr_ == nullptr) {
        encode_append_response(c.out, Status::kUnsupported, id, resp);
        return true;
      }
      if (!frame.has_append_req) {
        encode_append_response(c.out, Status::kBadRequest, id, resp);
        return true;
      }
      const AppendReqBody& req = frame.append_req;
      resp.gid = req.gid;
      svc::LeaderView view;
      if (!service_.try_leader(req.gid, view) || !smr_->has_log(req.gid)) {
        encode_append_response(c.out, Status::kUnknownGroup, id, resp);
        return true;
      }
      resp.leader = view.leader;
      resp.epoch = view.epoch;
      if (view.leader == kNoProcess) {
        // No agreed leader right now: tell the client to back off and
        // retry against the (possibly new) leader instead of parking the
        // command in a queue that may not drain for a while.
        encode_append_response(c.out, Status::kNotLeader, id, resp);
        return true;
      }
      if (!smr_->hosts_replica(req.gid, view.leader)) {
        // Multi-node deployment and the elected leader lives on another
        // node: redirect with the hint (the pid maps to a node in the
        // client's topology) instead of queueing a command this node's
        // pump would never seal.
        encode_append_response(c.out, Status::kNotLeader, id, resp);
        return true;
      }
      l.counters.appends.fetch_add(1, std::memory_order_relaxed);
      obs::trace(obs::TraceEvent::kAppendEnqueue, req.gid, req.client,
                 req.trace);
      // Asynchronous completion: park (loop, fd, serial, req_id) in the
      // callback; the owning shard worker fires it at commit and it lands
      // the acknowledgement in this loop's mailbox (batched wakeup). The
      // sink makes completions that outlive the serving phase no-ops.
      const auto sink = append_sink_;
      const std::uint32_t loop_idx = c.loop;
      PendingAck ack;
      ack.fd = c.fd;
      ack.serial = c.serial;
      ack.req_id = id;
      ack.gid = req.gid;
      ack.trace = req.trace;
      smr_->append(req.gid, req.client, req.seq, req.command,
                   [sink, loop_idx, ack](smr::AppendOutcome outcome,
                                         std::uint64_t index) mutable {
                     std::lock_guard<std::mutex> lock(sink->mu);
                     LeaderServer* s = sink->server;
                     if (s == nullptr) return;  // server already stopped
                     ack.outcome = outcome;
                     ack.index = index;
                     s->enqueue_ack(loop_idx, ack);
                   },
                   req.trace);
      return true;
    }
    case MsgType::kReadLog: {
      const WireGroupId gid = frame.readlog_req.gid;
      if (smr_ == nullptr) {
        encode_gid_response(c.out, MsgType::kReadLog, Status::kUnsupported,
                            id, gid);
        return true;
      }
      if (!frame.has_readlog_req) {  // gid-only body: truncated request
        encode_gid_response(c.out, MsgType::kReadLog, Status::kBadRequest,
                            id, gid);
        return true;
      }
      smr::LogGroup::Snapshot snap;
      const std::uint32_t max =
          std::min<std::uint32_t>(frame.readlog_req.max, kMaxLogEntries);
      if (!smr_->read_log(gid, frame.readlog_req.from, max, snap)) {
        encode_gid_response(c.out, MsgType::kReadLog, Status::kUnknownGroup,
                            id, gid);
        return true;
      }
      l.counters.log_reads.fetch_add(1, std::memory_order_relaxed);
      encode_readlog_response(c.out, id, gid, snap.commit_index,
                              snap.entries);
      return true;
    }
    case MsgType::kCommitWatch: {
      const svc::GroupId gid = frame.commit.gid;
      if (smr_ == nullptr || !smr_->has_log(gid)) {
        encode_commit_snapshot(c.out,
                               smr_ == nullptr ? Status::kUnsupported
                                               : Status::kUnknownGroup,
                               id, gid, 0);
        return true;
      }
      // Subscribe before the snapshot, as with WATCH: a commit racing the
      // subscription shows up in the snapshot, as an event, or both.
      const bool fresh = c.commit_watches.insert(gid).second;
      if (fresh) {
        hub_->add_commit_watch(gid, c.loop);
        l.commit_watchers[gid].push_back(&c);
        l.counters.watches.fetch_add(1, std::memory_order_relaxed);
      }
      encode_commit_snapshot(c.out, Status::kOk, id, gid,
                             smr_->commit_index(gid));
      return true;
    }
    case MsgType::kCommitUnwatch: {
      const svc::GroupId gid = frame.commit.gid;
      if (c.commit_watches.erase(gid) > 0) drop_commit_watch(l, c, gid);
      encode_gid_response(c.out, MsgType::kCommitUnwatch, Status::kOk, id,
                          gid);
      return true;
    }
    case MsgType::kSessionOpen: {
      const WireGroupId gid = frame.session.gid;
      if (smr_ == nullptr) {
        encode_session_open(c.out, Status::kUnsupported, id, gid, 0);
        return true;
      }
      std::int64_t ttl_us = 0;
      if (!smr_->open_session(gid, frame.session.client, ttl_us)) {
        encode_session_open(c.out, Status::kUnknownGroup, id, gid, 0);
        return true;
      }
      encode_session_open(c.out, Status::kOk, id, gid,
                          static_cast<std::uint64_t>(ttl_us));
      return true;
    }
    case MsgType::kMetrics: {
      // Paged scrape of the process-wide obs registry (v1.3). Each page
      // re-scrapes the name-sorted set, so a metric registering mid-scrape
      // (lazy registration during startup ramp) can shift indices between
      // pages; Client::metrics() dedupes by name and the scrape is
      // best-effort until every registration has happened once.
      const std::vector<obs::MetricSample> samples = obs::scrape();
      MetricsRespBody resp;
      resp.node = cfg_.node_id;
      resp.total = static_cast<std::uint32_t>(samples.size());
      resp.start = std::min<std::uint32_t>(frame.metrics_req.start,
                                           resp.total);
      std::size_t bytes = kHeaderBytes + 12 + 4;  // + the v1.5 node trailer
      for (std::size_t i = resp.start; i < samples.size(); ++i) {
        const std::size_t sz = metrics_record_wire_size(samples[i]);
        if (bytes + sz > kMaxPayloadBytes) break;
        bytes += sz;
        resp.metrics.push_back(samples[i]);
      }
      encode_metrics_response(c.out, Status::kOk, id, resp);
      return true;
    }
    case MsgType::kTraceDump: {
      // Paged scrape of this process's flight-recorder rings (v1.4).
      // Every page harvests the rings afresh and pages NEWEST-first, so
      // records that churn out of a ring between two pages surface as
      // duplicates the client dedupes — never as silent gaps in the
      // middle of the timeline.
      const std::vector<obs::TraceRecord> snap = obs::snapshot_trace();
      TraceDumpRespBody resp;
      resp.total = static_cast<std::uint32_t>(snap.size());
      resp.start = std::min<std::uint32_t>(frame.trace_req.start, resp.total);
      resp.realtime_offset_ns = obs::realtime_offset_ns();
      constexpr std::uint32_t kPage = static_cast<std::uint32_t>(
          (kMaxPayloadBytes - kHeaderBytes - 20) / kTraceRecordWireBytes);
      const std::uint32_t count =
          std::min<std::uint32_t>(kPage, resp.total - resp.start);
      resp.records.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        // snapshot_trace() sorts oldest-first; newest-first position
        // start + i is the mirrored index.
        resp.records.push_back(snap[resp.total - 1 - (resp.start + i)]);
      }
      encode_trace_dump_response(c.out, Status::kOk, id, resp);
      return true;
    }
    case MsgType::kHealth: {
      // The health engine's verdict as of the last sampler tick (v1.5).
      if (sampler_ == nullptr) {
        encode_health_response(c.out, Status::kUnsupported, id,
                               HealthRespBody{});
        return true;
      }
      const obs::HealthReport rep = sampler_->health().report();
      HealthRespBody resp;
      resp.overall = static_cast<std::uint8_t>(rep.overall);
      resp.ticks = rep.ticks;
      resp.rules_total = static_cast<std::uint8_t>(
          std::min<std::size_t>(rep.rules.size(), 255));
      for (const obs::RuleState& r : rep.rules) {
        if (r.published == obs::Health::kOk) continue;
        if (resp.firing.size() >= 255) break;  // u8 count on the wire
        HealthRuleWire w;
        w.status = static_cast<std::uint8_t>(r.published);
        w.name = r.name;
        w.reason = r.reason;
        resp.firing.push_back(std::move(w));
      }
      encode_health_response(c.out, Status::kOk, id, resp);
      return true;
    }
    case MsgType::kMetricsWatch: {
      // Subscribe this connection to the sampler stream (v1.5); pushes
      // start with the next tick. Idempotent per connection.
      if (sampler_ == nullptr) {
        encode_metrics_watch_response(c.out, Status::kUnsupported, id, 0);
        return true;
      }
      if (!c.metrics_watch) {
        c.metrics_watch = true;
        hub_->add_metrics_watch(c.loop);
        l.metrics_watchers.push_back(&c);
        l.counters.watches.fetch_add(1, std::memory_order_relaxed);
      }
      encode_metrics_watch_response(c.out, Status::kOk, id,
                                    cfg_.sample_period_ms);
      return true;
    }
    case MsgType::kRead: {
      // Reached only for non-canonical encodings (trailing bytes, or a
      // response-length body sent as a request) — the canonical 24-byte
      // request was already consumed by on_io's fast path.
      if (!frame.has_read_req) {
        ReadRespBody resp;
        resp.gid = frame.read_req.gid;
        resp.key = frame.read_req.key;
        encode_read_response(c.out, Status::kBadRequest, id, resp);
        return true;
      }
      return handle_read(l, c, id, frame.read_req);
    }
    case MsgType::kEvent:
    case MsgType::kCommitEvent:
    case MsgType::kMetricsEvent:
      // Pushes are strictly server -> client; a peer sending one is
      // broken, and echoing the type back would emit a body-less push our
      // own decoder rejects. Treat it as a protocol violation.
      l.counters.protocol_errors.fetch_add(1, std::memory_order_relaxed);
      close_connection(l, c);
      return false;
    default:
      encode_simple_response(c.out, frame.header.type, Status::kUnsupported,
                             id);
      return true;
  }
}

bool LeaderServer::handle_read(Loop& l, Connection& c, std::uint64_t req_id,
                               const ReadReqBody& req) {
  ReadRespBody resp;
  resp.gid = req.gid;
  resp.key = req.key;
  if (smr_ == nullptr) {
    encode_read_response(c.out, Status::kUnsupported, req_id, resp);
    return true;
  }
  svc::LeaderView view;
  smr::LogGroup::ReadAnswer answer;
  smr::LogGroup::ReadMode mode{};
  const auto sink = append_sink_;
  const std::uint32_t loop_idx = c.loop;
  PendingAck ack;
  ack.kind = PendingAck::Kind::kRead;
  ack.fd = c.fd;
  ack.serial = c.serial;
  ack.req_id = req_id;
  ack.gid = req.gid;
  ack.key = req.key;
  if (!smr_->read_point(
          req.gid, req.key, req.min_index, view, answer, mode,
          [sink, loop_idx, ack](bool passed,
                                const smr::LogGroup::ReadAnswer& a) mutable {
            // Owner-thread fire (fence passed or deadline expired): same
            // mailbox + no-op-after-stop discipline as append commits.
            std::lock_guard<std::mutex> lock(sink->mu);
            LeaderServer* s = sink->server;
            if (s == nullptr) return;
            ack.read_status =
                passed ? Status::kIndexRead : Status::kOverloaded;
            ack.index = a.index;
            ack.commit_index = a.commit_index;
            s->enqueue_ack(loop_idx, ack);
          })) {
    encode_read_response(c.out, Status::kUnknownGroup, req_id, resp);
    return true;
  }
  l.counters.point_reads.fetch_add(1, std::memory_order_relaxed);
  resp.leader = view.leader;
  resp.epoch = view.epoch;
  resp.index = answer.index;
  resp.commit_index = answer.commit_index;
  switch (mode) {
    case smr::LogGroup::ReadMode::kLease:
      encode_read_response(c.out, Status::kLeaseRead, req_id, resp);
      return true;
    case smr::LogGroup::ReadMode::kFallback:
      encode_read_response(c.out, Status::kOk, req_id, resp);
      return true;
    case smr::LogGroup::ReadMode::kRefused:
      // Committed data rides along as a hint, but never with authority:
      // this node's cached self-view may be a deposed leader's.
      encode_read_response(c.out, Status::kNotLeader, req_id, resp);
      return true;
    case smr::LogGroup::ReadMode::kIndex:
      encode_read_response(c.out, Status::kIndexRead, req_id, resp);
      return true;
    case smr::LogGroup::ReadMode::kDefer:
      return true;  // parked; the response rides the ack mailbox
    case smr::LogGroup::ReadMode::kOverloaded:
      encode_read_response(c.out, Status::kOverloaded, req_id, resp);
      return true;
  }
  return true;
}

void LeaderServer::fan_out(
    Loop& l, WatcherMap& map, svc::GroupId gid,
    std::atomic<std::uint64_t>& counter, std::uint64_t frames,
    const std::function<void(std::vector<std::uint8_t>&)>& encode) {
  const auto it = map.find(gid);
  if (it == map.end()) return;  // last watcher left before delivery
  // Snapshot fds, not pointers: flushing one target can close a
  // connection (backpressure), and a freed sibling must be detected by
  // key lookup, never by dereferencing its pointer.
  std::vector<int> target_fds;
  target_fds.reserve(it->second.size());
  for (const Connection* c : it->second) target_fds.push_back(c->fd);
  for (const int fd : target_fds) {
    const auto cit = l.conns.find(fd);
    if (cit == l.conns.end()) continue;  // closed earlier in this delivery
    Connection& c = *cit->second;
    encode(c.out);
    counter.fetch_add(frames, std::memory_order_relaxed);
    flush(l, c);
  }
}

void LeaderServer::deliver_commit_batch(
    std::uint32_t loop_idx, svc::GroupId gid, std::uint64_t first_index,
    const std::vector<std::uint64_t>& values,
    const std::vector<std::uint64_t>& traces) {
  Loop& l = *loops_[loop_idx];
  obs::trace(obs::TraceEvent::kCommitFanout, gid, first_index,
             traces.empty() ? 0 : traces.front(),
             traces.empty() ? 0 : traces.back());
  // The whole batch lands in each subscriber's buffer before its one
  // flush — a 64-command slot costs a watcher one syscall, not 64.
  fan_out(l, l.commit_watchers, gid, l.counters.commit_events, values.size(),
          [&](std::vector<std::uint8_t>& out) {
            for (std::size_t i = 0; i < values.size(); ++i) {
              encode_commit_event(out, gid, first_index + i, values[i],
                                  i < traces.size() ? traces[i] : 0);
            }
          });
}

void LeaderServer::enqueue_ack(std::uint32_t loop_idx, PendingAck ack) {
  Loop& l = *loops_[loop_idx];
  ack.enqueue_ns = steady_ns();
  bool need_post = false;
  {
    std::lock_guard<std::mutex> lock(l.ack_mu);
    l.acks.push_back(ack);
    need_post = !l.ack_drain_scheduled;
    l.ack_drain_scheduled = true;
  }
  // One wakeup per backlog: every acknowledgement that lands before the
  // drain task runs rides the same post.
  if (need_post) {
    l.loop.post([this, loop_idx] { drain_acks(loop_idx); });
  }
}

void LeaderServer::drain_acks(std::uint32_t loop_idx) {
  Loop& l = *loops_[loop_idx];
  {
    std::lock_guard<std::mutex> lock(l.ack_mu);
    l.ack_scratch.swap(l.acks);
    l.ack_drain_scheduled = false;
  }
  // Pass 1: encode every acknowledgement into its connection's buffer.
  // Nothing closes a connection here, so raw Connection lookups are safe.
  std::vector<int> touched;
  const std::int64_t drain_ns = steady_ns();
  for (const PendingAck& ack : l.ack_scratch) {
    if (ack.enqueue_ns > 0 && drain_ns > ack.enqueue_ns) {
      ack_flush_hist_->record(
          static_cast<std::uint64_t>(drain_ns - ack.enqueue_ns));
    }
    const auto it = l.conns.find(ack.fd);
    if (it == l.conns.end()) continue;  // connection died while waiting
    Connection& c = *it->second;
    if (c.serial != ack.serial) continue;  // fd recycled: different conn
    if (ack.kind == PendingAck::Kind::kRead) {
      // A deferred fence read resolved (v1.6): the status was decided at
      // fire time, the leader hint is re-read so the client routes off
      // the freshest view this node has.
      ReadRespBody rresp;
      rresp.gid = ack.gid;
      rresp.key = ack.key;
      rresp.index = ack.index;
      rresp.commit_index = ack.commit_index;
      svc::LeaderView view;
      if (service_.try_leader(ack.gid, view)) {
        rresp.leader = view.leader;
        rresp.epoch = view.epoch;
      }
      if (c.out.empty()) touched.push_back(ack.fd);
      encode_read_response(c.out, ack.read_status, ack.req_id, rresp);
      continue;
    }
    AppendRespBody resp;
    resp.gid = ack.gid;
    resp.trace = ack.trace;
    Status status = Status::kOk;
    switch (ack.outcome) {
      case smr::AppendOutcome::kCommitted:
        resp.index = ack.index;
        break;
      case smr::AppendOutcome::kAccepted:
        // Completions never fire with kAccepted; defensively treat it as
        // a server error the client should retry.
        status = Status::kOverloaded;
        break;
      case smr::AppendOutcome::kStaleSeq:
        status = Status::kStaleSeq;
        break;
      case smr::AppendOutcome::kQueueFull:
        status = Status::kOverloaded;
        break;
      case smr::AppendOutcome::kLogFull:
        status = Status::kLogFull;
        break;
      case smr::AppendOutcome::kAborted:
        status = Status::kUnknownGroup;  // the log went away under us
        break;
      case smr::AppendOutcome::kBadCommand:
        status = Status::kBadRequest;
        break;
      case smr::AppendOutcome::kSessionEvicted:
        status = Status::kSessionEvicted;
        break;
    }
    svc::LeaderView view;
    if (service_.try_leader(ack.gid, view)) {
      resp.leader = view.leader;
      resp.epoch = view.epoch;
    }
    if (c.out.empty()) touched.push_back(ack.fd);
    encode_append_response(c.out, status, ack.req_id, resp);
  }
  obs::trace(obs::TraceEvent::kAckFlush, l.ack_scratch.size(),
             touched.size());
  l.ack_scratch.clear();
  // Pass 2: one flush per touched connection — with the fd-snapshot
  // discipline (flushing one target can close a sibling, which must be
  // detected by key lookup). A connection whose buffer was already
  // non-empty has a flush pending elsewhere (EPOLLOUT or its reader).
  for (const int fd : touched) {
    const auto it = l.conns.find(fd);
    if (it == l.conns.end()) continue;
    flush(l, *it->second);
  }
}

void LeaderServer::drop_metrics_watch(Loop& l, Connection& c) {
  hub_->remove_metrics_watch(c.loop);
  auto& v = l.metrics_watchers;
  v.erase(std::remove(v.begin(), v.end(), &c), v.end());
  l.counters.watches.fetch_sub(1, std::memory_order_relaxed);
}

void LeaderServer::deliver_metrics(
    std::uint32_t loop_idx,
    std::shared_ptr<const std::vector<std::uint8_t>> bytes) {
  Loop& l = *loops_[loop_idx];
  if (l.metrics_watchers.empty()) return;  // unsubscribed before delivery
  // Same fd-snapshot discipline as fan_out: flushing one subscriber can
  // close a sibling (backpressure), which must be detected by key lookup.
  std::vector<int> target_fds;
  target_fds.reserve(l.metrics_watchers.size());
  for (const Connection* c : l.metrics_watchers) target_fds.push_back(c->fd);
  for (const int fd : target_fds) {
    const auto it = l.conns.find(fd);
    if (it == l.conns.end()) continue;
    Connection& c = *it->second;
    if (!c.metrics_watch) continue;  // fd recycled by a non-subscriber
    c.out.insert(c.out.end(), bytes->begin(), bytes->end());
    frame_counters_[static_cast<std::size_t>(MsgType::kMetricsEvent)]->add();
    flush(l, c);
  }
}

void LeaderServer::deliver_event(std::uint32_t loop_idx, svc::GroupId gid,
                                 svc::LeaderView view) {
  Loop& l = *loops_[loop_idx];
  fan_out(l, l.watchers, gid, l.counters.events, /*frames=*/1,
          [&](std::vector<std::uint8_t>& out) {
            encode_view_frame(out, MsgType::kEvent, Status::kOk,
                              /*req_id=*/0,
                              ViewBody{gid, view.leader, view.epoch});
          });
}

}  // namespace omega::net
