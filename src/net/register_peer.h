// Register push transport (wire protocol v1.2): the network half of the
// multi-process register mirror (registers/mirror.h).
//
// Topology: every node runs one MirrorTransport — one epoll EventLoop on
// its own thread owning (a) a listening socket that accepts *inbound*
// push streams from peers and (b) one RegisterPeer per remote node, the
// *outbound* stream. A stream opens with REG_HELLO (the sender's node
// id), then carries REG_PUSH frames — batches of (cell, value) updates of
// one group — strictly FIFO; the receiver applies each frame in order to
// the group's MirroredMemory and answers REG_ACK (cumulative frame seq)
// on the same connection.
//
// Write path: the MirroredMemory's write observer calls on_local_write()
// from the owning worker thread for every store to a cell this node is
// responsible for. The transport appends the update to each peer's
// pending queue (coalescing immediate re-writes of the same cell — the
// only elision that cannot reorder across cells) and schedules at most
// one flush task per backlog, so a burst of writes costs the loop one
// wakeup. A flush drains the queue into REG_PUSH frames of up to
// kMaxPushCells updates, so dirty cells coalesce into few syscalls.
//
// Ordering guarantee: one stream per (sender, receiver) pair, appended in
// write order, flushed in order, applied in order ⇒ every mirror holds a
// prefix of each sender's write sequence. That is the whole correctness
// story of the mirror (per-cell monotonicity AND cross-cell
// happens-before of a single node, e.g. "spill rows before their seal").
//
// Reconnects: an outbound stream that drops redials on a timer; on
// (re)connect the peer's queue is rebuilt as a *snapshot* — the current
// value of every cell this node ever wrote — so the receiver converges
// regardless of what the dead connection lost. (A snapshot is a legal
// stream: it is a suffix-compressed replay of the sender's history, and
// per-cell values are monotone-refreshed to the sender's present.)
//
// Flow control: acks bound the sender's view of receiver lag.
// max_unacked_frames() is the deepest (sent - acked) backlog over the
// connected peers; the SMR pump stalls sealing new batches above a
// threshold so a mirror can never lag past the spill ring. Ack round
// trips double as the push-lag measurement surfaced in bench_e16.
//
// Durability hooks (quorum_ack, PR 9): every on_local_write advances a
// global *write watermark*; each flushed push batch carries a cover mark
// (frame seq -> watermark), and a peer's cumulative ack therefore yields
// "this node has applied every local write up to W" — acked_marks()
// exposes those per-peer watermarks so the SMR layer can hold an append's
// acknowledgement until a quorum of nodes covers the sealed batch. On the
// inbound side an optional *journal* seam appends pushed durable-floor
// cells to the local WAL and defers the REG_ACK until the WAL reports
// them durable (release_durable_acks, driven by the Wal's durable
// listener) — so a peer's ack attests "applied AND journaled", which is
// what makes a quorum of acks mean a quorum of WALs.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/event_loop.h"
#include "net/frame.h"
#include "obs/metrics.h"
#include "registers/mirror.h"
#include "svc/svc_types.h"

namespace omega::net {

/// One remote node of the mirror mesh.
struct MirrorPeerConfig {
  std::uint32_t node = 0;
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  ///< the peer's MirrorTransport listen port
};

struct MirrorConfig {
  std::uint32_t node = 0;  ///< this node's id (unique across the mesh)
  std::string bind_address = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = ephemeral; read back via port()
  std::vector<MirrorPeerConfig> peers;
  /// Redial cadence for dropped outbound streams (also the granularity of
  /// the transport's internal timer).
  int reconnect_ms = 100;
  /// A peer whose unsent bytes exceed this is cut and resynced by
  /// snapshot on reconnect (one slow peer must not grow memory forever).
  std::size_t max_outbuf_bytes = 32u << 20;
  /// A connected peer with outstanding frames and NO ack progress for
  /// this long stops counting toward max_unacked_frames(): a frozen box
  /// (SIGSTOP, deep swap, a partition that keeps TCP established) must
  /// not throttle the pump's flow control forever — it will resync by
  /// snapshot when it recovers anyway. 0 disables the escape hatch.
  std::int64_t ack_stall_us = 3000000;
};

struct MirrorStats {
  std::uint64_t pushed_frames = 0;
  std::uint64_t pushed_cells = 0;
  std::uint64_t acked_frames = 0;
  std::uint64_t applied_frames = 0;  ///< inbound pushes applied
  std::uint64_t applied_cells = 0;
  std::uint64_t coalesced = 0;   ///< writes absorbed by adjacent dedup
  std::uint64_t reconnects = 0;  ///< outbound dials after the first
  std::uint64_t snapshots = 0;   ///< snapshot resyncs sent
  std::uint64_t resyncs = 0;     ///< force_resync() hammer drops
  std::uint64_t connected_peers = 0;
  std::uint64_t max_unacked = 0;  ///< current deepest per-peer backlog
};

class MirrorTransport {
 public:
  explicit MirrorTransport(MirrorConfig cfg);
  ~MirrorTransport();

  MirrorTransport(const MirrorTransport&) = delete;
  MirrorTransport& operator=(const MirrorTransport&) = delete;

  /// The bound listen port (valid immediately after construction).
  std::uint16_t port() const noexcept { return port_; }

  /// Registers a group's mirror: inbound pushes for `gid` apply to `mem`,
  /// and on_local_write(gid, ...) becomes legal. `mem` must outlive the
  /// transport or be removed first. Any thread, also while running.
  void add_group(svc::GroupId gid, MirroredMemory* mem);
  void remove_group(svc::GroupId gid);

  /// Spawns the loop thread and starts dialling peers. Once.
  void start();
  /// Stops the loop, closes every stream. Idempotent.
  void stop();

  /// Write-observer entry point (owning worker thread): forward one local
  /// store to every peer, FIFO. The caller filters with
  /// MirroredMemory::should_push.
  void on_local_write(svc::GroupId gid, Cell c, std::uint64_t v);

  /// Deepest (sent - acked) push-frame backlog over *connected* peers —
  /// the pump's flow-control signal. Disconnected peers don't count (they
  /// resync by snapshot).
  std::uint64_t max_unacked_frames() const;

  /// Cuts every stream (inbound and outbound) so both directions rebuild
  /// with fresh snapshots — the big hammer a node reaches for when its
  /// mirror looks wedged (e.g. a decided slot whose payload never
  /// arrives). Safe anytime; any thread.
  void force_resync();

  std::uint64_t connected_peers() const;

  // --- durability hooks (quorum_ack) ---------------------------------------

  /// Count of local writes ever observed (the write watermark). A sealed
  /// batch is covered by every write up to the value read after its last
  /// store.
  std::uint64_t write_seq() const noexcept {
    return write_seq_.load(std::memory_order_acquire);
  }

  /// Per-peer cumulative coverage: (node id, newest write watermark the
  /// peer has acknowledged applying — and journaling, when the far side
  /// runs an inbound journal). Monotone across reconnects: an ack means
  /// the writes are applied to the peer's mirror, which survives the
  /// connection.
  void acked_marks(
      std::vector<std::pair<std::uint32_t, std::uint64_t>>& out) const;

  /// Inbound journal seam: called (loop thread) for every cell applied
  /// from a REG_PUSH; returns the WAL record seq the cell was appended
  /// under, or 0 when the cell needs no journaling (below the durable
  /// floor). When installed, a frame that journaled anything has its
  /// REG_ACK deferred until release_durable_acks() covers the frame's
  /// newest record — and later frames queue behind it, keeping acks
  /// cumulative. Install before start().
  using InboundJournal =
      std::function<std::uint64_t(svc::GroupId, std::uint32_t, std::uint64_t)>;
  void set_inbound_journal(InboundJournal journal);

  /// WAL durability advanced through `durable_seq`: releases every
  /// deferred inbound ack whose records are covered. Any thread (the
  /// Wal's durable listener calls it from the flusher thread).
  void release_durable_acks(std::uint64_t durable_seq);

  MirrorStats stats() const;

  /// Copies the recent ack round-trip samples (nanoseconds, newest-last;
  /// bounded ring). The bench derives push-lag percentiles from these.
  void lag_samples(std::vector<std::int64_t>& out) const;

 private:
  struct PendingWrite {
    svc::GroupId gid = 0;
    std::uint32_t cell = 0;
    std::uint64_t value = 0;
  };

  /// One outbound push stream (loop thread only, except `pending` and the
  /// connected/backlog atomics).
  struct RegisterPeer {
    MirrorPeerConfig cfg;
    int fd = -1;
    bool hello_sent = false;
    FrameDecoder in;  ///< carries the peer's REG_ACK frames
    std::vector<std::uint8_t> out;
    std::size_t out_pos = 0;
    bool want_write = false;
    std::uint64_t sent_seq = 0;
    std::uint64_t acked_seq = 0;
    bool ever_connected = false;  ///< a hello was sent at least once
    /// (seq, send time ns) of *sampled* unacked pushes: every
    /// kLagSampleEvery-th frame is stamped here, so the lag measurement
    /// costs the push hot path one branch (and the ack path takes lag_mu_
    /// only when a sampled frame is covered, ~1/N of acks).
    std::vector<std::pair<std::uint64_t, std::int64_t>> sent_times;
    /// (frame seq, write watermark covered once that frame is acked):
    /// one mark per flushed batch, popped by the cumulative ack.
    std::vector<std::pair<std::uint64_t, std::uint64_t>> cover_marks;
    std::atomic<bool> connected{false};
    std::atomic<std::uint64_t> backlog{0};  ///< sent - acked
    /// Last instant the peer made ack progress (or (re)connected) —
    /// read against MirrorConfig::ack_stall_us by max_unacked_frames.
    std::atomic<std::int64_t> last_ack_ns{0};
    /// Newest write watermark this peer has acked (never reset: acked
    /// means applied, and the peer's mirror outlives the connection).
    std::atomic<std::uint64_t> acked_wseq{0};
  };

  /// One accepted inbound stream (loop thread only).
  struct Inbound {
    int fd = -1;
    std::uint32_t node = kNoNode;
    FrameDecoder in;
    std::vector<std::uint8_t> out;  ///< hello response + acks
    std::size_t out_pos = 0;
    bool want_write = false;
    /// Acks gated on WAL durability: (push frame seq, WAL record seq it
    /// waits for), FIFO. Drained by release_durable_acks.
    std::deque<std::pair<std::uint64_t, std::uint64_t>> deferred_acks;
  };

  struct GroupState {
    MirroredMemory* mem = nullptr;
    /// Cells this node ever wrote (snapshot domain on reconnect).
    std::vector<bool> dirty;
  };

  static constexpr std::uint32_t kNoNode = 0xFFFFFFFFu;

  void open_listener();
  void on_accept();
  void on_inbound_io(int fd, std::uint32_t events);
  void on_peer_io(RegisterPeer& p, std::uint32_t events);
  void handle_inbound_frame(Inbound& c, const Frame& f);
  void handle_peer_frame(RegisterPeer& p, const Frame& f);
  /// Dials a peer (non-blocking connect); loop thread.
  void dial(RegisterPeer& p);
  void on_timer();
  /// Drops the outbound stream; it will redial on the next timer tick.
  void disconnect_peer(RegisterPeer& p);
  void close_inbound(int fd);
  /// Drains every peer's pending queue into push frames and flushes.
  void flush_peers();
  /// Seeds `p.pending` with a full snapshot of every registered group
  /// (call with pending_mu_ held).
  void snapshot_into(std::vector<PendingWrite>& out);
  /// Writes as much buffered output as the socket takes. False = died.
  bool flush_out(int fd, std::vector<std::uint8_t>& out, std::size_t& pos,
                 bool& want_write);
  /// Emits one cumulative ack for every deferred frame now covered by
  /// durable_wal_ (loop thread). False = the connection died writing.
  bool drain_deferred_acks(Inbound& c);
  std::int64_t now_ns() const;

  MirrorConfig cfg_;
  EventLoop loop_;
  std::thread thread_;
  int listen_fd_ = -1;
  int timer_fd_ = -1;
  std::uint16_t port_ = 0;
  bool started_ = false;
  std::atomic<bool> stopped_{false};

  /// Group registry (workers + loop thread).
  mutable std::mutex groups_mu_;
  std::unordered_map<svc::GroupId, GroupState> groups_;

  /// Pending write queues, one per peer, appended by worker threads.
  mutable std::mutex pending_mu_;
  std::vector<std::vector<PendingWrite>> pending_;  ///< index = peer index
  bool flush_scheduled_ = false;
  /// Write watermark: bumped (under pending_mu_) once per local write, so
  /// capturing it at drain-swap time names exactly the writes the swapped
  /// batch (plus everything already sent) covers.
  std::atomic<std::uint64_t> write_seq_{0};

  /// Inbound durability (loop thread, except the setter).
  InboundJournal inbound_journal_;
  std::uint64_t durable_wal_ = 0;  ///< newest released WAL seq (loop thread)

  std::vector<std::unique_ptr<RegisterPeer>> peers_;
  std::unordered_map<int, std::unique_ptr<Inbound>> inbound_;

  /// Ack RTT ring (loop thread writes, stats readers copy under mutex).
  mutable std::mutex lag_mu_;
  std::vector<std::int64_t> lag_ring_;
  std::size_t lag_next_ = 0;

  /// mirror.push_lag_ns (resolved once; the ack path records lock-free).
  obs::Histogram* push_lag_hist_ = nullptr;
  /// Registered mirror.* gauge ids, unregistered in stop().
  std::vector<std::uint64_t> gauge_ids_;

  struct Counters {
    std::atomic<std::uint64_t> pushed_frames{0};
    std::atomic<std::uint64_t> pushed_cells{0};
    std::atomic<std::uint64_t> acked_frames{0};
    std::atomic<std::uint64_t> applied_frames{0};
    std::atomic<std::uint64_t> applied_cells{0};
    std::atomic<std::uint64_t> coalesced{0};
    std::atomic<std::uint64_t> reconnects{0};
    std::atomic<std::uint64_t> snapshots{0};
    std::atomic<std::uint64_t> resyncs{0};
  } counters_;
};

}  // namespace omega::net
