// WatchHub: routes svc epoch-change notifications to the IO loops whose
// connections watch the changed group.
//
// Split of responsibilities: the hub only knows, per group, *which loops*
// have at least one subscriber (a small refcount array per gid); which
// *connections* on a loop watch a group is loop-confined state owned by
// the server. publish() — called from svc worker threads via the
// GroupRegistry epoch listener — therefore does one short map lookup and
// then posts a delivery task to each interested loop; everything touching
// connection state runs on that loop's thread. Epoch changes are rare
// relative to queries, so the single hub mutex is not a hot lock.
//
// Delivery semantics are at-least-once relative to the WATCH snapshot: a
// subscriber is registered *before* the snapshot is read, so a transition
// racing the subscription shows up either in the snapshot, as an event, or
// both — never neither. Clients deduplicate by epoch.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "net/event_loop.h"
#include "svc/svc_types.h"

namespace omega::net {

class WatchHub {
 public:
  /// `deliver` runs on the interested loop's thread with (loop index, gid,
  /// view); the server uses it to fan out EVENT frames to that loop's
  /// watching connections.
  using Deliver =
      std::function<void(std::uint32_t, svc::GroupId, svc::LeaderView)>;

  /// Commit-channel sibling: (loop index, gid, first applied index,
  /// values applied at first, first+1, ..., trace ids in lockstep with
  /// the values) — a whole applied batch per delivery, fanned out as one
  /// COMMIT_EVENT frame per entry. Batched so a 64-command slot costs
  /// each interested loop ONE post (one task-queue lock, one eventfd
  /// wakeup), not 64.
  using DeliverCommit = std::function<void(
      std::uint32_t, svc::GroupId, std::uint64_t,
      const std::vector<std::uint64_t>&, const std::vector<std::uint64_t>&)>;

  /// Metrics-stream channel (v1.5 METRICS_WATCH): unlike the gid-keyed
  /// channels, subscriptions are per-connection only, so the hub tracks
  /// one refcount per loop. The payload is the sampler tick already
  /// encoded as METRICS_EVENT frames — encoded ONCE per tick and shared
  /// (read-only) across every interested loop, which writes it to each
  /// of its subscribed connections.
  using DeliverMetrics = std::function<void(
      std::uint32_t, std::shared_ptr<const std::vector<std::uint8_t>>)>;

  /// `deliver_commit` / `deliver_metrics` may be empty when the server
  /// serves no log / runs no sampler.
  WatchHub(std::vector<EventLoop*> loops, Deliver deliver,
           DeliverCommit deliver_commit = {},
           DeliverMetrics deliver_metrics = {});

  /// Registers one more watcher of `gid` living on `loop`. Called by the
  /// loop thread while handling a WATCH request, *before* it reads the
  /// snapshot (see delivery semantics above).
  void add_watch(svc::GroupId gid, std::uint32_t loop);

  /// Drops one watcher of `gid` on `loop` (UNWATCH or connection close).
  void remove_watch(svc::GroupId gid, std::uint32_t loop);

  /// Epoch-listener target: fans the transition out to every loop with a
  /// live subscriber. Called from svc worker threads — cost is one mutex,
  /// one lookup, and one post() per interested loop.
  void publish(svc::GroupId gid, const svc::LeaderView& view);

  /// Commit-channel mirror of the three calls above; subscriptions are
  /// independent of the epoch channel (same delivery semantics: register
  /// before snapshot, dedupe by index). publish_commit_batch shares one
  /// copy of `values` (and one of `traces`) across every interested
  /// loop; `traces` may be empty (all entries untraced) or in lockstep
  /// with `values`. The single-entry publish_commit is a convenience
  /// wrapper over it.
  void add_commit_watch(svc::GroupId gid, std::uint32_t loop);
  void remove_commit_watch(svc::GroupId gid, std::uint32_t loop);
  void publish_commit_batch(svc::GroupId gid, std::uint64_t first_index,
                            const std::vector<std::uint64_t>& values,
                            const std::vector<std::uint64_t>& traces = {});
  void publish_commit(svc::GroupId gid, std::uint64_t index,
                      std::uint64_t value, std::uint64_t trace = 0);

  /// Metrics-stream channel: one refcount per loop, no gid. Returns
  /// true from add_metrics_watch when this was the hub's first
  /// subscriber (the server uses it to start encoding ticks lazily —
  /// has_metrics_watchers() answers the steady-state question).
  bool add_metrics_watch(std::uint32_t loop);
  void remove_metrics_watch(std::uint32_t loop);
  bool has_metrics_watchers();
  /// Posts the shared encoded tick to every loop with a subscriber.
  void publish_metrics(
      std::shared_ptr<const std::vector<std::uint8_t>> frames);

  std::uint64_t published() const noexcept {
    return published_.load(std::memory_order_relaxed);
  }
  std::uint64_t deliveries() const noexcept {
    return deliveries_.load(std::memory_order_relaxed);
  }
  std::uint64_t commits_published() const noexcept {
    return commits_published_.load(std::memory_order_relaxed);
  }

 private:
  /// One subscription channel: per-gid, per-loop refcounts.
  struct Channel {
    std::mutex mu;
    std::unordered_map<svc::GroupId, std::vector<std::uint32_t>> watched;
  };

  void add(Channel& ch, svc::GroupId gid, std::uint32_t loop);
  void remove(Channel& ch, svc::GroupId gid, std::uint32_t loop);
  /// Bitmask of loops with a live subscriber, under the channel lock.
  std::uint64_t interested(Channel& ch, svc::GroupId gid);

  std::vector<EventLoop*> loops_;
  Deliver deliver_;
  DeliverCommit deliver_commit_;
  DeliverMetrics deliver_metrics_;

  Channel epochs_;
  Channel commits_;

  std::mutex metrics_mu_;
  std::vector<std::uint32_t> metrics_watchers_;  ///< refcount per loop

  std::atomic<std::uint64_t> published_{0};   ///< publish() calls seen
  std::atomic<std::uint64_t> deliveries_{0};  ///< per-loop posts made
  std::atomic<std::uint64_t> commits_published_{0};
};

}  // namespace omega::net
