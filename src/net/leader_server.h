// LeaderServer: the TCP front-end of the multi-group leader service.
//
// Topology: one listening socket (owned by loop 0, which doubles as the
// acceptor) and N independent IO threads, each running one epoll
// EventLoop. Accepted connections are assigned to loops round-robin; from
// then on every byte of that connection is handled by exactly one thread,
// so connection state needs no locks.
//
// Hot path: a LEADER request is answered entirely on the IO thread that
// read it — registry shard-map lookup plus one atomic LeaderCacheEntry
// load (svc::MultiGroupLeaderService::try_leader) — with no hop to any
// other thread. Watches are push-based: start() installs the svc epoch
// listener, so a shard worker that publishes a new view hands (gid, view)
// to the WatchHub, which posts one delivery task per interested loop; the
// loop writes EVENT frames to its watching connections.
//
// Replicated-log serving (optional, via serve_log()): APPEND commands are
// handed to the SmrService and answered *asynchronously* — the IO thread
// parks the request (loop, connection serial, req_id) inside the append
// completion, and when the owning shard worker commits the command the
// completion posts the response back to the connection's loop. A
// connection serial guards against fd reuse between park and completion.
// READ_LOG is answered synchronously from the applied log; COMMIT_WATCH
// mirrors WATCH on the hub's commit channel.
//
// Lifecycle: construct (binds + listens, so port() is valid immediately),
// start() (spawns the IO threads and installs the epoch listener), stop()
// (uninstalls the listeners, detaches pending append completions, stops
// loops, closes every socket). The server must be stopped before the
// MultiGroupLeaderService/SmrService it serves.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/event_loop.h"
#include "net/frame.h"
#include "net/watch_hub.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "smr/smr_service.h"
#include "svc/multigroup_service.h"

namespace omega::net {

struct NetConfig {
  std::string bind_address = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = ephemeral; read back via port()
  std::uint32_t io_threads = 1;
  /// Accepted connections beyond this are closed immediately (fd budget).
  std::uint32_t max_connections = 4096;
  /// Backpressure: a connection whose unsent output (queued responses +
  /// watch events behind a peer that stopped reading) exceeds this is
  /// closed — one slow consumer must not grow server memory unboundedly.
  std::size_t max_outbuf_bytes = 1 << 20;
  /// Black-box sampler period (obs::Sampler): every period the server
  /// snapshots the metric registry into the in-process time series,
  /// evaluates the health rules, and (if anyone subscribed via
  /// METRICS_WATCH) streams the tick as METRICS_EVENT frames. 0 disables
  /// the sampler entirely (HEALTH/METRICS_WATCH answer kUnsupported).
  std::uint32_t sample_period_ms = 250;
  /// Identity stamped into the METRICS response trailer (v1.5) so merged
  /// multi-endpoint scrapes can label samples; kNoNodeId = anonymous.
  std::uint32_t node_id = kNoNodeId;
};

/// Aggregate server counters (see frame.h StatsBody for the wire form).
struct NetServerStats {
  std::uint64_t accepted = 0;
  std::uint64_t closed = 0;
  std::uint64_t connections = 0;  ///< currently open
  std::uint64_t queries = 0;
  std::uint64_t watches = 0;  ///< active (gid, connection) pairs
  std::uint64_t events = 0;   ///< EVENT frames written
  std::uint64_t protocol_errors = 0;
  std::uint64_t slow_closed = 0;  ///< closed for exceeding max_outbuf_bytes
  std::uint64_t appends = 0;        ///< APPEND requests accepted into the log
  std::uint64_t commit_events = 0;  ///< COMMIT_EVENT frames written
  std::uint64_t log_reads = 0;      ///< READ_LOG requests served
  std::uint64_t point_reads = 0;    ///< READ (v1.6) requests served
};

class LeaderServer {
 public:
  /// Binds and listens immediately (throws InvariantViolation on failure),
  /// but serves nothing until start().
  LeaderServer(svc::MultiGroupLeaderService& service, NetConfig cfg = {});
  ~LeaderServer();

  LeaderServer(const LeaderServer&) = delete;
  LeaderServer& operator=(const LeaderServer&) = delete;

  /// Attaches the replicated-log service this server fronts. Must be
  /// called before start(); without it the log frame types answer
  /// kUnsupported.
  void serve_log(smr::SmrService& smr);

  /// Spawns the IO threads and installs the epoch listener. Once.
  void start();

  /// Stops IO threads, closes all connections, clears the epoch listener.
  /// Idempotent.
  void stop();

  /// The bound port (resolves cfg.port == 0 to the kernel-chosen one).
  std::uint16_t port() const noexcept { return port_; }

  NetServerStats stats() const;

  /// The black-box sampler (time series + health engine), or nullptr when
  /// cfg.sample_period_ms == 0. Subsystems hosted behind this server use
  /// it to register additional health rules before start().
  obs::Sampler* sampler() noexcept { return sampler_.get(); }

 private:
  /// One accepted connection; owned by exactly one loop's thread.
  struct Connection {
    int fd = -1;
    std::uint32_t loop = 0;
    /// Monotonic per-server id: append completions address connections by
    /// (loop, fd, serial) so a recycled fd never receives a stale answer.
    std::uint64_t serial = 0;
    FrameDecoder in;
    std::vector<std::uint8_t> out;  ///< unsent bytes [out_pos, end)
    std::size_t out_pos = 0;
    bool want_write = false;  ///< EPOLLOUT currently armed
    std::unordered_set<svc::GroupId> watches;
    std::unordered_set<svc::GroupId> commit_watches;
    bool metrics_watch = false;  ///< subscribed to the sampler stream
  };

  /// gid → connections on a loop subscribed to one push channel
  /// (loop-confined).
  using WatcherMap = std::unordered_map<svc::GroupId, std::vector<Connection*>>;

  /// One parked acknowledgement awaiting delivery on its loop: an append
  /// commit, or a follower fence read whose wait just resolved (v1.6).
  /// Both ride the same mailbox so ordering between a client's appends
  /// and its deferred reads is preserved per loop.
  struct PendingAck {
    enum class Kind : std::uint8_t { kAppend, kRead };
    Kind kind = Kind::kAppend;
    int fd = -1;
    std::uint64_t serial = 0;
    std::uint64_t req_id = 0;
    svc::GroupId gid = 0;
    smr::AppendOutcome outcome = smr::AppendOutcome::kAborted;
    std::uint64_t index = 0;  ///< append: log index; read: key index
    std::uint64_t trace = 0;  ///< appends: echoed on the v1.4 response
    std::uint64_t key = 0;           ///< reads: echoed key
    std::uint64_t commit_index = 0;  ///< reads: applied length at fire
    Status read_status = Status::kOk;  ///< reads: kIndexRead/kOverloaded
    /// Mailbox entry time; drain_acks records mailbox -> wire-encode into
    /// the net.ack_flush_ns histogram.
    std::int64_t enqueue_ns = 0;
  };

  /// Per-IO-thread state. Only `counters` and the ack mailbox are touched
  /// cross-thread.
  struct Loop {
    EventLoop loop;
    std::thread thread;
    std::unordered_map<int, std::unique_ptr<Connection>> conns;
    WatcherMap watchers;         ///< epoch channel (WATCH)
    WatcherMap commit_watchers;  ///< commit channel (COMMIT_WATCH)
    /// Connections subscribed to the metrics stream (METRICS_WATCH);
    /// loop-confined like the maps above.
    std::vector<Connection*> metrics_watchers;
    /// Ack mailbox: completions (owning shard worker) append here and
    /// schedule at most ONE drain task — a 64-command batch costs the
    /// loop one wakeup and each touched connection one flush, instead of
    /// one task + one send() per acknowledgement.
    std::mutex ack_mu;
    std::vector<PendingAck> acks;      ///< guarded by ack_mu
    bool ack_drain_scheduled = false;  ///< guarded by ack_mu
    std::vector<PendingAck> ack_scratch;  ///< loop-thread-only
    struct Counters {
      std::atomic<std::uint64_t> accepted{0};
      std::atomic<std::uint64_t> closed{0};
      std::atomic<std::uint64_t> queries{0};
      std::atomic<std::uint64_t> watches{0};  ///< current, not cumulative
      std::atomic<std::uint64_t> events{0};
      std::atomic<std::uint64_t> protocol_errors{0};
      std::atomic<std::uint64_t> slow_closed{0};
      std::atomic<std::uint64_t> appends{0};
      std::atomic<std::uint64_t> commit_events{0};
      std::atomic<std::uint64_t> log_reads{0};
      std::atomic<std::uint64_t> point_reads{0};  ///< READ requests served
    } counters;
  };

  /// Handle shared with in-flight append completions. A completion that
  /// outlives the serving phase (command commits after stop(), or never)
  /// must become a no-op: stop() nulls `server` under the mutex, and the
  /// completion only posts while holding it.
  struct AppendSink {
    std::mutex mu;
    LeaderServer* server = nullptr;
  };

  void open_listener();
  void on_accept();
  void adopt_connection(std::uint32_t loop_idx, int fd);
  void on_io(std::uint32_t loop_idx, int fd, std::uint32_t events);
  /// Returns false if the frame was a protocol violation and the
  /// connection was closed (the caller must stop touching `c`).
  bool handle_frame(Loop& l, Connection& c, const Frame& frame);
  /// READ (v1.6): shared by the decoded slow path and on_io's in-place
  /// fast path (a fixed 24-byte request parsed without building a Frame).
  /// Synchronous modes answer into c.out; a deferred fence read parks a
  /// PendingAck{kRead} completion that rides the loop's ack mailbox.
  bool handle_read(Loop& l, Connection& c, std::uint64_t req_id,
                   const ReadReqBody& req);
  void deliver_event(std::uint32_t loop_idx, svc::GroupId gid,
                     svc::LeaderView view);
  /// One delivery per applied batch: encodes COMMIT_EVENT frames for
  /// every entry into each subscriber's buffer and flushes once.
  /// `traces` is empty (untraced) or in lockstep with `values`.
  void deliver_commit_batch(std::uint32_t loop_idx, svc::GroupId gid,
                            std::uint64_t first_index,
                            const std::vector<std::uint64_t>& values,
                            const std::vector<std::uint64_t>& traces);
  /// Called from an append completion (owning shard worker): parks the
  /// acknowledgement in the loop's mailbox and wakes the loop at most
  /// once per backlog.
  void enqueue_ack(std::uint32_t loop_idx, PendingAck ack);
  /// Runs on the loop thread: encodes every parked acknowledgement into
  /// its connection's buffer (dropping silently if the connection is gone
  /// or its fd recycled), then flushes each touched connection once.
  void drain_acks(std::uint32_t loop_idx);
  /// Writes as much of c.out as the socket takes; arms/disarms EPOLLOUT.
  /// Returns false if the connection died.
  bool flush(Loop& l, Connection& c);
  void close_connection(Loop& l, Connection& c);
  /// Drops one (gid, connection) subscription from the hub and the loop's
  /// watcher list (does not touch c.watches/c.commit_watches — callers
  /// own those sets).
  void drop_watch(Loop& l, Connection& c, svc::GroupId gid);
  void drop_commit_watch(Loop& l, Connection& c, svc::GroupId gid);
  /// Shared body of the two drops: unlinks `c` from `map[gid]` and
  /// decrements the watch gauge.
  void unlink_watcher(Loop& l, WatcherMap& map, Connection& c,
                      svc::GroupId gid);
  /// Shared body of the two delivery paths: writes one `encode`d push
  /// (which may hold several frames) to every connection in `map[gid]`,
  /// bumping `counter` by `frames` per target — with the fd-snapshot
  /// discipline (flushing one target can close a sibling, which must be
  /// detected by key lookup, never by pointer).
  void fan_out(Loop& l, WatcherMap& map, svc::GroupId gid,
               std::atomic<std::uint64_t>& counter, std::uint64_t frames,
               const std::function<void(std::vector<std::uint8_t>&)>& encode);
  /// Runs on the loop thread (posted by the hub's metrics channel): writes
  /// the shared pre-encoded METRICS_EVENT tick to every subscribed
  /// connection on the loop, with the same fd-snapshot discipline as
  /// fan_out.
  void deliver_metrics(std::uint32_t loop_idx,
                       std::shared_ptr<const std::vector<std::uint8_t>> bytes);
  /// Drops a connection's metrics-stream subscription (connection close).
  void drop_metrics_watch(Loop& l, Connection& c);
  StatsBody stats_body() const;

  svc::MultiGroupLeaderService& service_;
  smr::SmrService* smr_ = nullptr;
  /// Per-frame-type obs counters ("net.frames.<type>"), indexed by the
  /// wire type byte; [0] is the fallback for unknown types. Resolved once
  /// at construction so the dispatch path never touches the registry lock.
  static constexpr std::size_t kFrameCounterSlots = 22;
  obs::Counter* frame_counters_[kFrameCounterSlots] = {};
  obs::Histogram* ack_flush_hist_ = nullptr;  ///< net.ack_flush_ns
  std::shared_ptr<AppendSink> append_sink_;
  std::atomic<std::uint64_t> next_serial_{1};
  NetConfig cfg_;
  int listen_fd_ = -1;
  /// Sacrificial fd released under EMFILE so the backlog can be accepted
  /// and shed (closed) instead of hanging: with EPOLLET, connections left
  /// in the backlog would never re-announce themselves.
  int reserve_fd_ = -1;
  std::uint16_t port_ = 0;
  std::vector<std::unique_ptr<Loop>> loops_;
  std::unique_ptr<WatchHub> hub_;
  /// Black-box sampler: created at construction (so hosted subsystems can
  /// add rules), thread started in start(), stopped first in stop() —
  /// its tick listener posts into the loops via the hub.
  std::unique_ptr<obs::Sampler> sampler_;
  std::uint32_t next_loop_ = 0;  ///< round-robin assignment (loop 0 only)
  std::atomic<std::uint64_t> open_connections_{0};
  bool started_ = false;
  bool stopped_ = false;
};

}  // namespace omega::net
