#include "net/watch_hub.h"

#include <memory>

#include "common/check.h"

namespace omega::net {

WatchHub::WatchHub(std::vector<EventLoop*> loops, Deliver deliver,
                   DeliverCommit deliver_commit,
                   DeliverMetrics deliver_metrics)
    : loops_(std::move(loops)),
      deliver_(std::move(deliver)),
      deliver_commit_(std::move(deliver_commit)),
      deliver_metrics_(std::move(deliver_metrics)),
      metrics_watchers_(loops_.size(), 0) {
  OMEGA_CHECK(!loops_.empty(), "watch hub needs at least one loop");
  OMEGA_CHECK(loops_.size() <= 64, "publish() packs loops into a u64 mask");
  OMEGA_CHECK(deliver_ != nullptr, "watch hub needs a delivery sink");
}

void WatchHub::add(Channel& ch, svc::GroupId gid, std::uint32_t loop) {
  OMEGA_CHECK(loop < loops_.size(), "bad loop index " << loop);
  std::lock_guard<std::mutex> lock(ch.mu);
  auto& counts = ch.watched[gid];
  if (counts.empty()) counts.resize(loops_.size(), 0);
  ++counts[loop];
}

void WatchHub::remove(Channel& ch, svc::GroupId gid, std::uint32_t loop) {
  OMEGA_CHECK(loop < loops_.size(), "bad loop index " << loop);
  std::lock_guard<std::mutex> lock(ch.mu);
  const auto it = ch.watched.find(gid);
  if (it == ch.watched.end()) return;  // already gone (idempotent closes)
  auto& counts = it->second;
  if (counts[loop] > 0) --counts[loop];
  for (const std::uint32_t c : counts) {
    if (c > 0) return;
  }
  ch.watched.erase(it);
}

std::uint64_t WatchHub::interested(Channel& ch, svc::GroupId gid) {
  std::uint64_t mask = 0;  // loops are few (≤ 64)
  std::lock_guard<std::mutex> lock(ch.mu);
  const auto it = ch.watched.find(gid);
  if (it == ch.watched.end()) return 0;
  for (std::size_t i = 0; i < it->second.size(); ++i) {
    if (it->second[i] > 0) mask |= std::uint64_t{1} << i;
  }
  return mask;
}

void WatchHub::add_watch(svc::GroupId gid, std::uint32_t loop) {
  add(epochs_, gid, loop);
}

void WatchHub::remove_watch(svc::GroupId gid, std::uint32_t loop) {
  remove(epochs_, gid, loop);
}

void WatchHub::publish(svc::GroupId gid, const svc::LeaderView& view) {
  published_.fetch_add(1, std::memory_order_relaxed);
  // Snapshot the interested loops under the lock, post outside it: post()
  // takes each loop's task mutex and we never want to hold two locks.
  const std::uint64_t mask = interested(epochs_, gid);
  for (std::size_t i = 0; i < loops_.size(); ++i) {
    if (!(mask & (std::uint64_t{1} << i))) continue;
    deliveries_.fetch_add(1, std::memory_order_relaxed);
    const std::uint32_t loop = static_cast<std::uint32_t>(i);
    loops_[i]->post([this, loop, gid, view] { deliver_(loop, gid, view); });
  }
}

void WatchHub::add_commit_watch(svc::GroupId gid, std::uint32_t loop) {
  add(commits_, gid, loop);
}

void WatchHub::remove_commit_watch(svc::GroupId gid, std::uint32_t loop) {
  remove(commits_, gid, loop);
}

void WatchHub::publish_commit_batch(
    svc::GroupId gid, std::uint64_t first_index,
    const std::vector<std::uint64_t>& values,
    const std::vector<std::uint64_t>& traces) {
  OMEGA_CHECK(deliver_commit_ != nullptr, "no commit delivery sink");
  OMEGA_CHECK(traces.empty() || traces.size() == values.size(),
              "traces must be empty or in lockstep with values");
  if (values.empty()) return;
  commits_published_.fetch_add(values.size(), std::memory_order_relaxed);
  const std::uint64_t mask = interested(commits_, gid);
  if (mask == 0) return;
  // One copy of the batch (values + trace ids), shared by every
  // interested loop's task.
  const auto shared =
      std::make_shared<const std::vector<std::uint64_t>>(values);
  const auto shared_traces =
      std::make_shared<const std::vector<std::uint64_t>>(traces);
  for (std::size_t i = 0; i < loops_.size(); ++i) {
    if (!(mask & (std::uint64_t{1} << i))) continue;
    deliveries_.fetch_add(1, std::memory_order_relaxed);
    const std::uint32_t loop = static_cast<std::uint32_t>(i);
    loops_[i]->post([this, loop, gid, first_index, shared, shared_traces] {
      deliver_commit_(loop, gid, first_index, *shared, *shared_traces);
    });
  }
}

bool WatchHub::add_metrics_watch(std::uint32_t loop) {
  OMEGA_CHECK(loop < loops_.size(), "bad loop index " << loop);
  std::lock_guard<std::mutex> lock(metrics_mu_);
  bool first = true;
  for (const std::uint32_t c : metrics_watchers_) {
    if (c > 0) first = false;
  }
  ++metrics_watchers_[loop];
  return first;
}

void WatchHub::remove_metrics_watch(std::uint32_t loop) {
  OMEGA_CHECK(loop < loops_.size(), "bad loop index " << loop);
  std::lock_guard<std::mutex> lock(metrics_mu_);
  if (metrics_watchers_[loop] > 0) --metrics_watchers_[loop];
}

bool WatchHub::has_metrics_watchers() {
  std::lock_guard<std::mutex> lock(metrics_mu_);
  for (const std::uint32_t c : metrics_watchers_) {
    if (c > 0) return true;
  }
  return false;
}

void WatchHub::publish_metrics(
    std::shared_ptr<const std::vector<std::uint8_t>> frames) {
  OMEGA_CHECK(deliver_metrics_ != nullptr, "no metrics delivery sink");
  if (!frames || frames->empty()) return;
  std::uint64_t mask = 0;
  {
    std::lock_guard<std::mutex> lock(metrics_mu_);
    for (std::size_t i = 0; i < metrics_watchers_.size(); ++i) {
      if (metrics_watchers_[i] > 0) mask |= std::uint64_t{1} << i;
    }
  }
  for (std::size_t i = 0; i < loops_.size(); ++i) {
    if (!(mask & (std::uint64_t{1} << i))) continue;
    deliveries_.fetch_add(1, std::memory_order_relaxed);
    const std::uint32_t loop = static_cast<std::uint32_t>(i);
    loops_[i]->post(
        [this, loop, frames] { deliver_metrics_(loop, frames); });
  }
}

void WatchHub::publish_commit(svc::GroupId gid, std::uint64_t index,
                              std::uint64_t value, std::uint64_t trace) {
  publish_commit_batch(gid, index, {value}, {trace});
}

}  // namespace omega::net
