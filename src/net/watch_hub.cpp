#include "net/watch_hub.h"

#include "common/check.h"

namespace omega::net {

WatchHub::WatchHub(std::vector<EventLoop*> loops, Deliver deliver)
    : loops_(std::move(loops)), deliver_(std::move(deliver)) {
  OMEGA_CHECK(!loops_.empty(), "watch hub needs at least one loop");
  OMEGA_CHECK(loops_.size() <= 64, "publish() packs loops into a u64 mask");
  OMEGA_CHECK(deliver_ != nullptr, "watch hub needs a delivery sink");
}

void WatchHub::add_watch(svc::GroupId gid, std::uint32_t loop) {
  OMEGA_CHECK(loop < loops_.size(), "bad loop index " << loop);
  std::lock_guard<std::mutex> lock(mu_);
  auto& counts = watched_[gid];
  if (counts.empty()) counts.resize(loops_.size(), 0);
  ++counts[loop];
}

void WatchHub::remove_watch(svc::GroupId gid, std::uint32_t loop) {
  OMEGA_CHECK(loop < loops_.size(), "bad loop index " << loop);
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = watched_.find(gid);
  if (it == watched_.end()) return;  // already gone (idempotent close paths)
  auto& counts = it->second;
  if (counts[loop] > 0) --counts[loop];
  for (const std::uint32_t c : counts) {
    if (c > 0) return;
  }
  watched_.erase(it);
}

void WatchHub::publish(svc::GroupId gid, const svc::LeaderView& view) {
  published_.fetch_add(1, std::memory_order_relaxed);
  // Snapshot the interested loops under the lock, post outside it: post()
  // takes each loop's task mutex and we never want to hold two locks.
  std::uint64_t interested = 0;  // bitmask; loops are few (≤ 64)
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = watched_.find(gid);
    if (it == watched_.end()) return;
    for (std::size_t i = 0; i < it->second.size(); ++i) {
      if (it->second[i] > 0) interested |= std::uint64_t{1} << i;
    }
  }
  for (std::size_t i = 0; i < loops_.size(); ++i) {
    if (!(interested & (std::uint64_t{1} << i))) continue;
    deliveries_.fetch_add(1, std::memory_order_relaxed);
    const std::uint32_t loop = static_cast<std::uint32_t>(i);
    loops_[i]->post([this, loop, gid, view] { deliver_(loop, gid, view); });
  }
}

}  // namespace omega::net
