#include "net/client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <tuple>
#include <unordered_map>

namespace omega::net {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw NetError(what + ": " + std::strerror(errno));
}

/// splitmix64 finalizer: a cheap bijective mix, so the minted trace-id
/// stream never repeats within a client and is well spread across
/// clients salted differently.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// Backoff for attempt `k` (0-based) under `p`, with jitter from `rng`.
int backoff_ms(const RetryPolicy& p, int k, Rng& rng) {
  std::int64_t ms = p.base_ms;
  for (int i = 0; i < k && ms < p.cap_ms; ++i) ms *= 2;
  ms = std::min<std::int64_t>(ms, p.cap_ms);
  const double j = p.jitter <= 0 ? 0.0 : rng.uniform01() * p.jitter;
  return static_cast<int>(ms + static_cast<std::int64_t>(
                                   static_cast<double>(ms) * j));
}

}  // namespace

Client::~Client() { close(); }

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  // A Client may reconnect after close(): drop every remnant of the old
  // stream — half-received frames, a terminal corrupt flag, events from
  // subscriptions that died with the connection, acknowledgements of
  // appends that will never arrive.
  in_ = FrameDecoder{};
  events_.clear();
  outstanding_appends_.clear();
  done_appends_.clear();
  outstanding_reads_.clear();
  done_reads_.clear();
  // A tick half-assembled when the stream died can never complete; the
  // subscription flag itself survives for resubscribe().
  pending_tick_open_ = false;
  pending_samples_.clear();
  next_req_id_ = 1;
}

void Client::connect(const std::string& host, std::uint16_t port,
                     int timeout_ms) {
  if (fd_ >= 0) throw NetError("already connected");
  host_ = host;
  port_ = port;
  connect_timeout_ms_ = timeout_ms;
  dial(timeout_ms);
}

void Client::dial(int timeout_ms) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port_);
  if (inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1) {
    throw NetError("bad address: " + host_);
  }
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) throw_errno("socket");
  // Non-blocking connect so the timeout is enforceable.
  const int flags = fcntl(fd_, F_GETFL, 0);
  fcntl(fd_, F_SETFL, flags | O_NONBLOCK);
  int rc = ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr);
  if (rc != 0 && errno != EINPROGRESS) {
    close();
    throw_errno("connect");
  }
  if (rc != 0) {
    pollfd pfd{fd_, POLLOUT, 0};
    rc = ::poll(&pfd, 1, timeout_ms);
    if (rc <= 0) {
      close();
      throw NetError("connect timeout");
    }
    int err = 0;
    socklen_t len = sizeof err;
    getsockopt(fd_, SOL_SOCKET, SO_ERROR, &err, &len);
    if (err != 0) {
      close();
      errno = err;
      throw_errno("connect");
    }
  }
  fcntl(fd_, F_SETFL, flags);  // back to blocking; waits go through poll()
  int one = 1;
  (void)setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

void Client::reconnect() {
  if (fd_ >= 0) return;
  if (host_.empty()) throw NetError("no remembered endpoint to reconnect");
  for (int attempt = 0;; ++attempt) {
    try {
      dial(connect_timeout_ms_);
      break;
    } catch (const NetError&) {
      if (attempt + 1 >= policy_.max_attempts) throw;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(
        backoff_ms(policy_, attempt, backoff_rng_)));
  }
  resubscribe();
}

void Client::resubscribe(int response_timeout_ms) {
  // Subscriptions died with the old connection; re-issue them on the new
  // one so watchers survive a server restart without their own dial
  // logic. The snapshot responses are absorbed here (the caller's watch
  // state machine already dedupes by epoch/commit index); a connection
  // that dies mid-resubscribe surfaces as the NetError of the caller's
  // own request, exactly like any other transport failure.
  // `response_timeout_ms` budgets the WHOLE batch, not each
  // subscription — a caller with a deadline (append_retry) must not
  // wait subscriptions x budget against a stalling server.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(response_timeout_ms);
  const auto remaining_ms = [&deadline] {
    return static_cast<int>(std::max<std::int64_t>(
        1, std::chrono::duration_cast<std::chrono::milliseconds>(
               deadline - std::chrono::steady_clock::now())
               .count()));
  };
  for (const svc::GroupId gid : std::vector<svc::GroupId>(
           watched_gids_.begin(), watched_gids_.end())) {
    const std::uint64_t id = next_req_id_++;
    out_.clear();
    encode_request(out_, MsgType::kWatch, id, gid);
    (void)call_encoded(MsgType::kWatch, id, remaining_ms());
  }
  for (const svc::GroupId gid : std::vector<svc::GroupId>(
           commit_watched_gids_.begin(), commit_watched_gids_.end())) {
    const std::uint64_t id = next_req_id_++;
    out_.clear();
    encode_request(out_, MsgType::kCommitWatch, id, gid);
    (void)call_encoded(MsgType::kCommitWatch, id, remaining_ms());
  }
  if (metrics_watched_) {
    const std::uint64_t id = next_req_id_++;
    out_.clear();
    encode_request(out_, MsgType::kMetricsWatch, id, std::nullopt);
    (void)call_encoded(MsgType::kMetricsWatch, id, remaining_ms());
  }
}

void Client::enable_auto_reconnect(RetryPolicy policy) {
  auto_reconnect_ = true;
  policy_ = policy;
  backoff_rng_ = Rng(policy.seed);
}

void Client::ensure_connected() {
  if (fd_ >= 0) return;
  if (!auto_reconnect_) throw NetError("not connected");
  reconnect();
}

void Client::send_all(const std::uint8_t* data, std::size_t len) {
  std::size_t sent = 0;
  while (sent < len) {
    const ssize_t n = ::send(fd_, data + sent, len - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("send");
    }
    sent += static_cast<std::size_t>(n);
  }
}

bool Client::fill(int timeout_ms) {
  // EINTR (a signal in the host application) must consume budget, not
  // fabricate a timeout: retry with the remaining time until the deadline.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  for (;;) {
    const auto now = std::chrono::steady_clock::now();
    const int remaining = std::max<int>(
        0, static_cast<int>(
               std::chrono::duration_cast<std::chrono::milliseconds>(
                   deadline - now)
                   .count()));
    pollfd pfd{fd_, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, remaining);
    if (rc < 0) {
      if (errno == EINTR) {
        if (std::chrono::steady_clock::now() >= deadline) return false;
        continue;
      }
      throw_errno("poll");
    }
    if (rc == 0) return false;
    std::uint8_t buf[8192];
    const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
    if (n == 0) throw NetError("server closed the connection");
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
        continue;  // readiness evaporated; re-poll with what's left
      }
      throw_errno("recv");
    }
    in_.feed(buf, static_cast<std::size_t>(n));
    if (in_.corrupt()) throw NetError("oversized frame from server");
    return true;
  }
}

std::optional<Frame> Client::pop_frame() {
  const std::uint8_t* payload = nullptr;
  std::size_t len = 0;
  if (!in_.next(payload, len)) return std::nullopt;
  Frame f;
  if (decode_payload(payload, len, f) != DecodeResult::kOk) {
    throw NetError("malformed frame from server");
  }
  return f;
}

bool Client::queue_event(const Frame& f) {
  Event e;
  if (f.header.type == MsgType::kEvent) {
    e.kind = Event::Kind::kLeaderChange;
    e.gid = f.view.gid;
    e.view = svc::LeaderView{f.view.leader, f.view.epoch};
  } else if (f.header.type == MsgType::kCommitEvent) {
    e.kind = Event::Kind::kCommit;
    e.gid = f.commit.gid;
    e.index = f.commit.index;
    e.value = f.commit.value;
    e.trace = f.commit.trace;
  } else if (f.header.type == MsgType::kMetricsEvent) {
    // One sampler tick arrives as 1..n pages sharing a tick number; only
    // a complete tick becomes an event. A page whose head we never saw
    // (subscribed mid-tick, or the head fell to the event-queue cap on
    // the server) is swallowed — the next tick starts clean at start=0.
    const MetricsEventBody& p = f.metrics_event;
    if (p.start == 0) {
      pending_tick_open_ = true;
      pending_tick_ = p.tick;
      pending_health_ = p.health;
      pending_samples_.clear();
    } else if (!pending_tick_open_ || p.tick != pending_tick_) {
      return true;
    }
    pending_samples_.insert(pending_samples_.end(), p.metrics.begin(),
                            p.metrics.end());
    if (p.start + p.metrics.size() < p.total) return true;
    pending_tick_open_ = false;
    e.kind = Event::Kind::kMetricsTick;
    e.tick = pending_tick_;
    e.health = pending_health_;
    e.samples = std::move(pending_samples_);
    pending_samples_.clear();
  } else {
    return false;
  }
  // A subscriber that issues requests without draining next_event() must
  // not grow memory forever (a busy commit watch pushes one event per
  // applied entry group-wide): keep the newest kMaxQueuedEvents, drop the
  // oldest. Consumers already resynchronize by epoch/index.
  if (events_.size() >= kMaxQueuedEvents) events_.pop_front();
  events_.push_back(e);
  return true;
}

Frame Client::call(MsgType type, std::optional<WireGroupId> gid) {
  ensure_connected();
  const std::uint64_t id = next_req_id_++;
  out_.clear();
  encode_request(out_, type, id, gid);
  return call_encoded(type, id);
}

bool Client::absorb(const Frame& f) {
  if (queue_event(f)) return true;
  if (f.header.type == MsgType::kAppend &&
      outstanding_appends_.erase(f.header.req_id) > 0) {
    done_appends_.push_back(AsyncAppend{f.header.req_id, to_append_result(f)});
    return true;
  }
  if (f.header.type == MsgType::kRead &&
      outstanding_reads_.erase(f.header.req_id) > 0) {
    done_reads_.push_back(AsyncRead{f.header.req_id, to_read_result(f)});
    return true;
  }
  return false;
}

Client::AppendResult Client::to_append_result(const Frame& f) {
  AppendResult r;
  r.status = f.header.status;
  r.index = f.append_resp.index;
  r.view = svc::LeaderView{f.append_resp.leader, f.append_resp.epoch};
  r.trace = f.append_resp.trace;
  return r;
}

Client::ReadResult Client::to_read_result(const Frame& f) {
  ReadResult r;
  r.status = f.header.status;
  r.index = f.read_resp.index;
  r.commit_index = f.read_resp.commit_index;
  r.view = svc::LeaderView{f.read_resp.leader, f.read_resp.epoch};
  return r;
}

std::uint64_t Client::mint_trace_id() {
  if (trace_seq_ == 0) {
    // Per-client salt: distinct clients (other processes included) must
    // mint from disjoint streams. Clock + object identity is plenty for a
    // forensic correlation id — this is not a security token.
    trace_seq_ =
        static_cast<std::uint64_t>(
            std::chrono::steady_clock::now().time_since_epoch().count()) ^
        (static_cast<std::uint64_t>(::getpid()) << 32) ^
        reinterpret_cast<std::uintptr_t>(this);
  }
  std::uint64_t id = 0;
  do {
    id = splitmix64(trace_seq_++);
  } while (id == 0);  // 0 means "untraced" on the wire
  last_trace_ = id;
  return id;
}

Frame Client::call_encoded(MsgType type, std::uint64_t id,
                           int response_timeout_ms) {
  send_all(out_.data(), out_.size());

  // One deadline across every socket wait: interleaved pushes and async
  // append acknowledgements must not extend the response budget.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(response_timeout_ms);
  for (;;) {
    while (std::optional<Frame> f = pop_frame()) {
      if (absorb(*f)) continue;
      if (f->header.req_id != id || f->header.type != type) {
        // Request/response pairing is broken (e.g. a late reply to a
        // call that previously timed out): the stream cannot be
        // resynchronized, so don't leave a poisoned connection behind.
        close();
        throw NetError("response does not match the outstanding request");
      }
      return *f;
    }
    const int remaining = static_cast<int>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            deadline - std::chrono::steady_clock::now())
            .count());
    if (remaining <= 0 || !fill(remaining)) {
      // The response may still arrive later and would desynchronize every
      // subsequent call; a timed-out connection is only safe to abandon.
      close();
      throw NetError("timed out waiting for a response");
    }
  }
}

Client::Result Client::leader(svc::GroupId gid) {
  const Frame f = call(MsgType::kLeader, gid);
  return Result{f.header.status, f.view.gid,
                svc::LeaderView{f.view.leader, f.view.epoch}};
}

Client::Result Client::watch(svc::GroupId gid) {
  const Frame f = call(MsgType::kWatch, gid);
  if (f.header.status == Status::kOk) watched_gids_.insert(gid);
  return Result{f.header.status, f.view.gid,
                svc::LeaderView{f.view.leader, f.view.epoch}};
}

Client::Result Client::unwatch(svc::GroupId gid) {
  watched_gids_.erase(gid);
  const Frame f = call(MsgType::kUnwatch, gid);
  return Result{f.header.status, f.view.gid,
                svc::LeaderView{f.view.leader, f.view.epoch}};
}

std::uint64_t Client::append_async(svc::GroupId gid, std::uint64_t client,
                                   std::uint64_t seq, std::uint64_t command) {
  ensure_connected();
  const std::uint64_t id = next_req_id_++;
  out_.clear();
  AppendReqBody req;
  req.gid = gid;
  req.client = client;
  req.seq = seq;
  req.command = command;
  req.trace = mint_trace_id();
  encode_append_request(out_, id, req);
  send_all(out_.data(), out_.size());
  outstanding_appends_.insert(id);
  return id;
}

std::optional<Client::AsyncAppend> Client::next_append_result(
    int timeout_ms) {
  if (!done_appends_.empty()) {
    const AsyncAppend a = done_appends_.front();
    done_appends_.pop_front();
    return a;
  }
  if (fd_ < 0 || outstanding_appends_.empty()) return std::nullopt;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  for (;;) {
    while (std::optional<Frame> f = pop_frame()) {
      if (!absorb(*f)) {
        // No blocking request is outstanding here, so any non-push,
        // non-append-answer frame means the stream is desynchronized.
        close();
        throw NetError("unexpected frame while draining append results");
      }
    }
    if (!done_appends_.empty()) {
      const AsyncAppend a = done_appends_.front();
      done_appends_.pop_front();
      return a;
    }
    const int remaining = static_cast<int>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            deadline - std::chrono::steady_clock::now())
            .count());
    // A timeout here is not a protocol failure: the answers are matched
    // by req_id whenever they do arrive, so the connection stays usable.
    if (remaining < 0) return std::nullopt;
    if (!fill(remaining)) return std::nullopt;
  }
}

Client::AppendResult Client::append(svc::GroupId gid, std::uint64_t client,
                                    std::uint64_t seq, std::uint64_t command,
                                    int response_timeout_ms) {
  // The blocking form is the pipelined form plus "wait for this one".
  const std::uint64_t id = append_async(gid, client, seq, command);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(response_timeout_ms);
  for (;;) {
    while (std::optional<Frame> f = pop_frame()) {
      if (absorb(*f)) continue;
      // absorb() matched every live async id (including ours), so this
      // frame answers nothing we asked: the stream cannot be
      // resynchronized.
      close();
      throw NetError("response does not match the outstanding request");
    }
    for (auto it = done_appends_.begin(); it != done_appends_.end(); ++it) {
      if (it->req_id == id) {
        const AppendResult r = it->result;
        done_appends_.erase(it);
        return r;
      }
    }
    const int remaining = static_cast<int>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            deadline - std::chrono::steady_clock::now())
            .count());
    if (remaining <= 0 || !fill(remaining)) {
      // The response may still arrive later and would desynchronize every
      // subsequent call; a timed-out connection is only safe to abandon.
      close();
      throw NetError("timed out waiting for a response");
    }
  }
}

Client::AppendResult Client::append_retry(svc::GroupId gid,
                                          std::uint64_t client,
                                          std::uint64_t seq,
                                          std::uint64_t command,
                                          int timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  std::string last_error = "append timed out";
  for (int attempt = 0;; ++attempt) {
    const int remaining = static_cast<int>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            deadline - std::chrono::steady_clock::now())
            .count());
    if (remaining <= 0) throw NetError("append_retry: " + last_error);
    try {
      // Redial here — one bounded attempt per loop iteration — rather
      // than through reconnect()'s own multi-dial backoff, so the
      // caller's budget caps every wait in this function.
      if (fd_ < 0 && auto_reconnect_) {
        // Both the dial and the re-subscriptions live inside the
        // caller's remaining budget — append_retry's contract is that
        // every wait is clamped to it.
        dial(std::min(connect_timeout_ms_, remaining));
        resubscribe(std::max(1, remaining));
      }
      // Each attempt spends at most the remaining budget waiting for its
      // acknowledgement, so the caller's timeout is honored even when a
      // single response stalls.
      const AppendResult r = append(gid, client, seq, command,
                                    std::min(remaining, kResponseTimeoutMs));
      // kSessionEvicted means the dedup window for this client expired on
      // the server; the append was NOT taken. Re-open the session (same
      // connection, no backoff — this is a protocol exchange, not an
      // outage) and resubmit immediately with the same (client, seq) key.
      if (r.status == Status::kSessionEvicted) {
        const SessionInfo s = open_session(gid, client);
        if (s.status == Status::kOk) continue;
        last_error = "session re-open rejected";
      } else if (r.status != Status::kNotLeader &&
                 r.status != Status::kOverloaded) {
        // kNotLeader ("wait for the next leader") and kOverloaded ("intake
        // full, retry later") are transient: back off and ask again — the
        // dedup key keeps the retries idempotent. Everything else is an
        // answer (including kOk with the committed index for a duplicate).
        return r;
      } else {
        last_error = r.status == Status::kNotLeader ? "no agreed leader"
                                                    : "server overloaded";
      }
    } catch (const NetError& e) {
      // Transport failure (server restart, timeout, partial write): the
      // stream is not trustworthy — drop it. The next append() redials
      // if auto-reconnect is on; otherwise the error is final.
      close();
      if (!auto_reconnect_) throw;
      last_error = e.what();
    }
    const int left = static_cast<int>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            deadline - std::chrono::steady_clock::now())
            .count());
    if (left <= 0) throw NetError("append_retry: " + last_error);
    std::this_thread::sleep_for(std::chrono::milliseconds(
        std::min(left, backoff_ms(policy_, attempt, backoff_rng_))));
  }
}

std::uint64_t Client::read_async(svc::GroupId gid, std::uint64_t key,
                                 std::uint64_t min_index) {
  ensure_connected();
  const std::uint64_t id = next_req_id_++;
  out_.clear();
  ReadReqBody req;
  req.gid = gid;
  req.key = key;
  req.min_index = min_index;
  encode_read_request(out_, id, req);
  send_all(out_.data(), out_.size());
  outstanding_reads_.insert(id);
  return id;
}

std::optional<Client::AsyncRead> Client::next_read_result(int timeout_ms) {
  if (!done_reads_.empty()) {
    const AsyncRead a = done_reads_.front();
    done_reads_.pop_front();
    return a;
  }
  if (fd_ < 0 || outstanding_reads_.empty()) return std::nullopt;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  for (;;) {
    while (std::optional<Frame> f = pop_frame()) {
      if (!absorb(*f)) {
        close();
        throw NetError("unexpected frame while draining read results");
      }
    }
    if (!done_reads_.empty()) {
      const AsyncRead a = done_reads_.front();
      done_reads_.pop_front();
      return a;
    }
    const int remaining = static_cast<int>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            deadline - std::chrono::steady_clock::now())
            .count());
    // As with appends: a timeout is not a protocol failure — the answer
    // is matched by req_id whenever it arrives.
    if (remaining < 0) return std::nullopt;
    if (!fill(remaining)) return std::nullopt;
  }
}

Client::ReadResult Client::read(svc::GroupId gid, std::uint64_t key,
                                std::uint64_t min_index,
                                int response_timeout_ms) {
  // The blocking form is the pipelined form plus "wait for this one".
  const std::uint64_t id = read_async(gid, key, min_index);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(response_timeout_ms);
  for (;;) {
    while (std::optional<Frame> f = pop_frame()) {
      if (absorb(*f)) continue;
      close();
      throw NetError("response does not match the outstanding request");
    }
    for (auto it = done_reads_.begin(); it != done_reads_.end(); ++it) {
      if (it->req_id == id) {
        const ReadResult r = it->result;
        done_reads_.erase(it);
        return r;
      }
    }
    const int remaining = static_cast<int>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            deadline - std::chrono::steady_clock::now())
            .count());
    if (remaining <= 0 || !fill(remaining)) {
      close();
      throw NetError("timed out waiting for a response");
    }
  }
}

Client::LogView Client::read_log(svc::GroupId gid, std::uint64_t from,
                                 std::uint32_t max) {
  ensure_connected();
  const std::uint64_t id = next_req_id_++;
  out_.clear();
  ReadLogReqBody req;
  req.gid = gid;
  req.from = from;
  req.max = max;
  encode_readlog_request(out_, id, req);
  const Frame f = call_encoded(MsgType::kReadLog, id);
  LogView v;
  v.status = f.header.status;
  if (f.header.status == Status::kOk) {
    v.commit_index = f.readlog_resp.commit_index;
    v.entries = f.readlog_resp.entries;
  }
  return v;
}

Client::LogView Client::read_log_all(svc::GroupId gid,
                                     std::size_t max_entries) {
  LogView all;
  std::uint64_t from = 0;
  for (;;) {
    const LogView page = read_log(gid, from, kMaxLogEntries);
    all.status = page.status;
    if (page.status != Status::kOk) return all;
    all.commit_index = page.commit_index;
    for (const std::uint64_t v : page.entries) {
      if (all.entries.size() >= max_entries) return all;  // budget spent
      all.entries.push_back(v);
    }
    from += page.entries.size();
    // An empty kOk page means `from` reached the applied frontier; a log
    // growing mid-pagination simply ends with entries.size() below the
    // final page's commit_index.
    if (page.entries.empty() || from >= page.commit_index) return all;
  }
}

Client::AppendResult Client::commit_watch(svc::GroupId gid) {
  const Frame f = call(MsgType::kCommitWatch, gid);
  if (f.header.status == Status::kOk) commit_watched_gids_.insert(gid);
  AppendResult r;
  r.status = f.header.status;
  r.index = f.commit.index;  // commit-index snapshot
  return r;
}

Client::Result Client::commit_unwatch(svc::GroupId gid) {
  commit_watched_gids_.erase(gid);
  const Frame f = call(MsgType::kCommitUnwatch, gid);
  return Result{f.header.status, f.commit.gid, svc::LeaderView{}};
}

Client::SessionInfo Client::open_session(svc::GroupId gid,
                                         std::uint64_t client) {
  ensure_connected();
  const std::uint64_t id = next_req_id_++;
  out_.clear();
  encode_session_open(out_, Status::kOk, id, gid, client);
  const Frame f = call_encoded(MsgType::kSessionOpen, id);
  SessionInfo info;
  info.status = f.header.status;
  if (f.header.status == Status::kOk) {
    info.ttl_us = static_cast<std::int64_t>(f.session.ttl_us);
  }
  return info;
}

void Client::ping() {
  const Frame f = call(MsgType::kPing, std::nullopt);
  if (f.header.status != Status::kOk) throw NetError("ping rejected");
}

StatsBody Client::stats() {
  const Frame f = call(MsgType::kStats, std::nullopt);
  if (f.header.status != Status::kOk || !f.has_body) {
    throw NetError("stats rejected");
  }
  return f.stats;
}

const obs::MetricSample* Client::MetricsResult::find(
    const std::string& name) const noexcept {
  for (const obs::MetricSample& m : metrics) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

Client::MetricsResult Client::metrics() {
  MetricsResult r;
  // Each page re-scrapes the name-sorted registry, so a metric registering
  // mid-scrape (lazy registration on a just-started node) can shift indices
  // between pages and repeat a name. Dedupe by name, keeping the later —
  // fresher — sample; a shift can still drop a name from this scrape, which
  // the next scrape picks up.
  std::unordered_map<std::string, std::size_t> by_name;
  std::uint32_t start = 0;
  for (;;) {
    ensure_connected();
    const std::uint64_t id = next_req_id_++;
    out_.clear();
    encode_metrics_request(out_, id, MetricsReqBody{start});
    const Frame f = call_encoded(MsgType::kMetrics, id);
    r.status = f.header.status;
    if (f.header.status != Status::kOk) return r;
    if (!f.has_metrics_resp) throw NetError("metrics response without body");
    const MetricsRespBody& page = f.metrics_resp;
    r.node = page.node;
    for (const obs::MetricSample& m : page.metrics) {
      const auto [it, fresh] = by_name.emplace(m.name, r.metrics.size());
      if (fresh) {
        r.metrics.push_back(m);
      } else {
        r.metrics[it->second] = m;
      }
    }
    const std::uint32_t count =
        static_cast<std::uint32_t>(page.metrics.size());
    // The registry only ever grows, so pages never shrink `total`; an
    // empty page below total would loop forever — treat it as done.
    if (count == 0 || page.start + count >= page.total) return r;
    start = page.start + count;
  }
}

Client::TraceDumpResult Client::trace_dump() {
  TraceDumpResult r;
  std::uint32_t start = 0;
  for (;;) {
    ensure_connected();
    const std::uint64_t id = next_req_id_++;
    out_.clear();
    encode_trace_dump_request(out_, id, TraceDumpReqBody{start});
    const Frame f = call_encoded(MsgType::kTraceDump, id);
    r.status = f.header.status;
    if (f.header.status != Status::kOk) return r;
    if (!f.has_trace_resp) {
      throw NetError("trace dump response without body");
    }
    const TraceDumpRespBody& page = f.trace_resp;
    r.realtime_offset_ns = page.realtime_offset_ns;
    r.records.insert(r.records.end(), page.records.begin(),
                     page.records.end());
    const std::uint32_t count =
        static_cast<std::uint32_t>(page.records.size());
    // Rings churn between pages; the server pages newest-first over a
    // fresh harvest each time, so drift repeats records rather than
    // skipping them. An empty page below total would loop forever —
    // treat it as done.
    if (count == 0 || page.start + count >= page.total) break;
    start = page.start + count;
  }
  // Merge onto the timeline: sort oldest-first and drop the exact
  // duplicates the page overlap produced.
  const auto as_tuple = [](const obs::TraceRecord& t) {
    return std::make_tuple(t.ts_ns, t.thread, static_cast<std::uint8_t>(t.ev),
                           t.a, t.b, t.trace_lo, t.trace_hi);
  };
  std::sort(r.records.begin(), r.records.end(),
            [&](const obs::TraceRecord& x, const obs::TraceRecord& y) {
              return as_tuple(x) < as_tuple(y);
            });
  r.records.erase(
      std::unique(r.records.begin(), r.records.end(),
                  [&](const obs::TraceRecord& x, const obs::TraceRecord& y) {
                    return as_tuple(x) == as_tuple(y);
                  }),
      r.records.end());
  return r;
}

Client::HealthResult Client::health() {
  const Frame f = call(MsgType::kHealth, std::nullopt);
  HealthResult r;
  r.status = f.header.status;
  if (f.header.status != Status::kOk) return r;
  if (!f.has_health_resp) throw NetError("health response without body");
  r.overall = f.health_resp.overall;
  r.ticks = f.health_resp.ticks;
  r.rules_total = f.health_resp.rules_total;
  r.firing = f.health_resp.firing;
  return r;
}

Client::MetricsWatchResult Client::metrics_watch() {
  const Frame f = call(MsgType::kMetricsWatch, std::nullopt);
  MetricsWatchResult r;
  r.status = f.header.status;
  if (f.header.status != Status::kOk) return r;
  r.period_ms = f.metrics_watch.period_ms;
  metrics_watched_ = true;
  return r;
}

std::optional<Client::Event> Client::next_event(int timeout_ms) {
  if (!events_.empty()) {
    const Event e = events_.front();
    events_.pop_front();
    return e;
  }
  if (fd_ < 0) throw NetError("not connected");
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  for (;;) {
    while (std::optional<Frame> f = pop_frame()) {
      if (!absorb(*f)) {
        // A non-event, non-append frame with no outstanding request is a
        // protocol bug.
        throw NetError("unexpected response frame while waiting for events");
      }
      if (!events_.empty()) {
        const Event e = events_.front();
        events_.pop_front();
        return e;
      }
    }
    const auto now = std::chrono::steady_clock::now();
    const int remaining = static_cast<int>(
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now)
            .count());
    if (remaining <= 0) return std::nullopt;
    if (!fill(remaining)) {
      if (std::chrono::steady_clock::now() >= deadline) return std::nullopt;
    }
  }
}

ReadRouter::ReadRouter(std::vector<Endpoint> endpoints)
    : endpoints_(std::move(endpoints)), clients_(endpoints_.size()) {
  if (endpoints_.empty()) throw NetError("ReadRouter needs >= 1 endpoint");
}

Client::ReadResult ReadRouter::read(svc::GroupId gid, std::uint64_t key,
                                    int response_timeout_ms) {
  // Two full rotations: one so every endpoint gets a try, a second so a
  // refusal caused by a view mid-change (failover) can resolve. The
  // session floor rides every attempt, so whichever endpoint answers
  // proves at least everything this session has already observed.
  Client::ReadResult last;
  last.status = Status::kOverloaded;
  std::string last_error = "no endpoint reachable";
  bool answered_refusal = false;
  const std::size_t attempts = endpoints_.size() * 2;
  for (std::size_t i = 0; i < attempts; ++i) {
    const std::size_t at = next_;
    next_ = (next_ + 1) % endpoints_.size();
    try {
      if (!clients_[at]) clients_[at] = std::make_unique<Client>();
      if (!clients_[at]->connected()) {
        clients_[at]->connect(endpoints_[at].host, endpoints_[at].port,
                              response_timeout_ms);
      }
      const Client::ReadResult r =
          clients_[at]->read(gid, key, floor_, response_timeout_ms);
      if (r.commit_index > floor_) floor_ = r.commit_index;
      if (r.ok()) return r;
      // A refusal (kNotLeader, kOverloaded, kUnknownGroup...) is an
      // answer — remember it and rotate on.
      last = r;
      answered_refusal = true;
    } catch (const NetError& e) {
      last_error = e.what();
      if (clients_[at]) clients_[at]->close();
    }
  }
  if (!answered_refusal) {
    throw NetError("ReadRouter: every endpoint failed: " + last_error);
  }
  return last;
}

}  // namespace omega::net
