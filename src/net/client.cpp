#include "net/client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

namespace omega::net {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw NetError(what + ": " + std::strerror(errno));
}

}  // namespace

Client::~Client() { close(); }

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  // A Client may reconnect after close(): drop every remnant of the old
  // stream — half-received frames, a terminal corrupt flag, events from
  // subscriptions that died with the connection.
  in_ = FrameDecoder{};
  events_.clear();
  next_req_id_ = 1;
}

void Client::connect(const std::string& host, std::uint16_t port,
                     int timeout_ms) {
  if (fd_ >= 0) throw NetError("already connected");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw NetError("bad address: " + host);
  }
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) throw_errno("socket");
  // Non-blocking connect so the timeout is enforceable.
  const int flags = fcntl(fd_, F_GETFL, 0);
  fcntl(fd_, F_SETFL, flags | O_NONBLOCK);
  int rc = ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr);
  if (rc != 0 && errno != EINPROGRESS) {
    close();
    throw_errno("connect");
  }
  if (rc != 0) {
    pollfd pfd{fd_, POLLOUT, 0};
    rc = ::poll(&pfd, 1, timeout_ms);
    if (rc <= 0) {
      close();
      throw NetError("connect timeout");
    }
    int err = 0;
    socklen_t len = sizeof err;
    getsockopt(fd_, SOL_SOCKET, SO_ERROR, &err, &len);
    if (err != 0) {
      close();
      errno = err;
      throw_errno("connect");
    }
  }
  fcntl(fd_, F_SETFL, flags);  // back to blocking; waits go through poll()
  int one = 1;
  (void)setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

void Client::send_all(const std::uint8_t* data, std::size_t len) {
  std::size_t sent = 0;
  while (sent < len) {
    const ssize_t n = ::send(fd_, data + sent, len - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("send");
    }
    sent += static_cast<std::size_t>(n);
  }
}

bool Client::fill(int timeout_ms) {
  // EINTR (a signal in the host application) must consume budget, not
  // fabricate a timeout: retry with the remaining time until the deadline.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  for (;;) {
    const auto now = std::chrono::steady_clock::now();
    const int remaining = std::max<int>(
        0, static_cast<int>(
               std::chrono::duration_cast<std::chrono::milliseconds>(
                   deadline - now)
                   .count()));
    pollfd pfd{fd_, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, remaining);
    if (rc < 0) {
      if (errno == EINTR) {
        if (std::chrono::steady_clock::now() >= deadline) return false;
        continue;
      }
      throw_errno("poll");
    }
    if (rc == 0) return false;
    std::uint8_t buf[8192];
    const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
    if (n == 0) throw NetError("server closed the connection");
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
        continue;  // readiness evaporated; re-poll with what's left
      }
      throw_errno("recv");
    }
    in_.feed(buf, static_cast<std::size_t>(n));
    if (in_.corrupt()) throw NetError("oversized frame from server");
    return true;
  }
}

std::optional<Frame> Client::pop_frame() {
  const std::uint8_t* payload = nullptr;
  std::size_t len = 0;
  if (!in_.next(payload, len)) return std::nullopt;
  Frame f;
  if (decode_payload(payload, len, f) != DecodeResult::kOk) {
    throw NetError("malformed frame from server");
  }
  return f;
}

Frame Client::call(MsgType type, std::optional<WireGroupId> gid) {
  if (fd_ < 0) throw NetError("not connected");
  const std::uint64_t id = next_req_id_++;
  out_.clear();
  encode_request(out_, type, id, gid);
  send_all(out_.data(), out_.size());

  for (;;) {
    while (std::optional<Frame> f = pop_frame()) {
      if (f->header.type == MsgType::kEvent) {
        events_.push_back(
            Event{f->view.gid,
                  svc::LeaderView{f->view.leader, f->view.epoch}});
        continue;
      }
      if (f->header.req_id != id || f->header.type != type) {
        // Request/response pairing is broken (e.g. a late reply to a
        // call that previously timed out): the stream cannot be
        // resynchronized, so don't leave a poisoned connection behind.
        close();
        throw NetError("response does not match the outstanding request");
      }
      return *f;
    }
    if (!fill(kResponseTimeoutMs)) {
      // The response may still arrive later and would desynchronize every
      // subsequent call; a timed-out connection is only safe to abandon.
      close();
      throw NetError("timed out waiting for a response");
    }
  }
}

Client::Result Client::leader(svc::GroupId gid) {
  const Frame f = call(MsgType::kLeader, gid);
  return Result{f.header.status, f.view.gid,
                svc::LeaderView{f.view.leader, f.view.epoch}};
}

Client::Result Client::watch(svc::GroupId gid) {
  const Frame f = call(MsgType::kWatch, gid);
  return Result{f.header.status, f.view.gid,
                svc::LeaderView{f.view.leader, f.view.epoch}};
}

Client::Result Client::unwatch(svc::GroupId gid) {
  const Frame f = call(MsgType::kUnwatch, gid);
  return Result{f.header.status, f.view.gid,
                svc::LeaderView{f.view.leader, f.view.epoch}};
}

void Client::ping() {
  const Frame f = call(MsgType::kPing, std::nullopt);
  if (f.header.status != Status::kOk) throw NetError("ping rejected");
}

StatsBody Client::stats() {
  const Frame f = call(MsgType::kStats, std::nullopt);
  if (f.header.status != Status::kOk || !f.has_body) {
    throw NetError("stats rejected");
  }
  return f.stats;
}

std::optional<Client::Event> Client::next_event(int timeout_ms) {
  if (!events_.empty()) {
    const Event e = events_.front();
    events_.pop_front();
    return e;
  }
  if (fd_ < 0) throw NetError("not connected");
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  for (;;) {
    while (std::optional<Frame> f = pop_frame()) {
      if (f->header.type == MsgType::kEvent) {
        return Event{f->view.gid,
                     svc::LeaderView{f->view.leader, f->view.epoch}};
      }
      // A non-event frame with no outstanding request is a protocol bug.
      throw NetError("unexpected response frame while waiting for events");
    }
    const auto now = std::chrono::steady_clock::now();
    const int remaining = static_cast<int>(
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now)
            .count());
    if (remaining <= 0) return std::nullopt;
    if (!fill(remaining)) {
      if (std::chrono::steady_clock::now() >= deadline) return std::nullopt;
    }
  }
}

}  // namespace omega::net
