#include "net/event_loop.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>

#include "common/check.h"

namespace omega::net {

namespace {
/// Token reserved for the wakeup eventfd.
constexpr std::uint64_t kWakeToken = 0;
}  // namespace

EventLoop::EventLoop() {
  epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
  OMEGA_CHECK(epoll_fd_ >= 0, "epoll_create1: errno " << errno);
  wake_fd_ = eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  OMEGA_CHECK(wake_fd_ >= 0, "eventfd: errno " << errno);
  epoll_event ev{};
  ev.events = EPOLLIN;  // level-triggered: drained on every wakeup anyway
  ev.data.u64 = kWakeToken;
  OMEGA_CHECK(epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) == 0,
              "epoll_ctl(wake): errno " << errno);
}

EventLoop::~EventLoop() {
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

void EventLoop::add_fd(int fd, std::uint32_t events, IoHandler handler) {
  const std::uint64_t token = next_token_++;
  epoll_event ev{};
  ev.events = events | EPOLLET;
  ev.data.u64 = token;
  OMEGA_CHECK(epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) == 0,
              "epoll_ctl(add fd " << fd << "): errno " << errno);
  handlers_.emplace(token, Registration{fd, std::move(handler)});
  token_of_fd_[fd] = token;
}

void EventLoop::mod_fd(int fd, std::uint32_t events) {
  const auto it = token_of_fd_.find(fd);
  OMEGA_CHECK(it != token_of_fd_.end(), "mod_fd: fd " << fd
                                                      << " not registered");
  epoll_event ev{};
  ev.events = events | EPOLLET;
  ev.data.u64 = it->second;
  OMEGA_CHECK(epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) == 0,
              "epoll_ctl(mod fd " << fd << "): errno " << errno);
}

void EventLoop::remove_fd(int fd) {
  const auto it = token_of_fd_.find(fd);
  OMEGA_CHECK(it != token_of_fd_.end(), "remove_fd: fd " << fd
                                                         << " not registered");
  epoll_event ev{};  // non-null for pre-2.6.9 kernels' sake
  OMEGA_CHECK(epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, &ev) == 0,
              "epoll_ctl(del fd " << fd << "): errno " << errno);
  handlers_.erase(it->second);
  token_of_fd_.erase(it);
}

void EventLoop::post(Task task) {
  {
    std::lock_guard<std::mutex> lock(tasks_mu_);
    tasks_.push_back(std::move(task));
  }
  wake();
}

void EventLoop::wake() {
  const std::uint64_t one = 1;
  // A full eventfd counter (EAGAIN) still wakes the loop; nothing to do.
  [[maybe_unused]] const ssize_t n =
      ::write(wake_fd_, &one, sizeof one);
}

void EventLoop::stop() {
  stop_.store(true, std::memory_order_release);
  wake();
}

void EventLoop::run() {
  running_.store(true, std::memory_order_release);
  std::vector<Task> ready;
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];

  while (!stop_.load(std::memory_order_acquire)) {
    const int n = epoll_wait(epoll_fd_, events, kMaxEvents, /*timeout=*/-1);
    if (n < 0) {
      OMEGA_CHECK(errno == EINTR, "epoll_wait: errno " << errno);
      continue;
    }
    for (int i = 0; i < n; ++i) {
      const std::uint64_t token = events[i].data.u64;
      if (token == kWakeToken) {
        std::uint64_t drained = 0;
        while (::read(wake_fd_, &drained, sizeof drained) > 0) {
        }
        continue;
      }
      // The handler for an earlier event in this batch may have removed
      // this registration (e.g. peer reset observed on a sibling fd);
      // lookup-by-token silently drops such strays.
      const auto it = handlers_.find(token);
      if (it == handlers_.end()) continue;
      // Copy the handler: it may remove_fd() itself mid-call, which
      // erases the map entry it lives in.
      IoHandler handler = it->second.handler;
      handler(events[i].events);
    }
    {
      std::lock_guard<std::mutex> lock(tasks_mu_);
      ready.swap(tasks_);
    }
    for (Task& t : ready) t();
    ready.clear();
  }
  // Final drain: tasks posted after the last iteration's swap must not be
  // silently dropped — e.g. an accepted connection handed over right as
  // the server stops would leak its fd if its adoption task died in the
  // queue. Runs on the loop thread, so loop-confined state is still safe.
  // (A task posted after THIS drain — a racing acceptor on another loop —
  // is covered by the owner calling drain_pending() after joining.)
  drain_pending();
  running_.store(false, std::memory_order_release);
}

void EventLoop::drain_pending() {
  std::vector<Task> ready;
  {
    std::lock_guard<std::mutex> lock(tasks_mu_);
    ready.swap(tasks_);
  }
  for (Task& t : ready) t();
}

}  // namespace omega::net
