// net::Client — blocking client of the LeaderServer wire protocol.
//
// One Client wraps one TCP connection and is meant for exactly one thread
// (the classic lease-holder pattern: query, fence on the epoch, renew).
// Requests are strictly one-at-a-time; server-pushed EVENT/COMMIT_EVENT
// frames that arrive interleaved with a response are queued internally and
// surfaced through next_event(), so a caller can hold watches and still
// issue queries on the same connection.
//
// Reconnects: a timeout or a desynchronized response poisons the stream,
// so the client closes the socket (the server's late answer must never be
// matched to a later request). With enable_auto_reconnect(), the next
// call redials the remembered endpoint under capped exponential backoff
// with jitter — so a caller's retry loop survives a server restart
// without its own dial logic. Subscriptions (WATCH and COMMIT_WATCH) are
// re-issued automatically on every reconnect, so watchers keep receiving
// pushes across a server restart; transitions spanning the outage arrive
// via the re-subscription snapshots (dedupe by epoch/commit index, as
// with any watch).
//
// Appends: append() submits one command with the (client, seq) dedup key
// and blocks until the commit acknowledgement. append_retry() adds the
// standard SMR client loop on top — kNotLeader and transport errors are
// retried with backoff, and the dedup key makes the retries idempotent:
// the command lands in the log exactly once even if the original
// submission actually committed.
//
// Pipelining: append_async() submits without waiting, so N appends can be
// outstanding on one connection (the server answers each when its command
// commits — possibly out of order, e.g. a rejection overtaking an earlier
// pending commit). Harvest acknowledgements with next_append_result().
// Responses are matched to submissions by req_id, so pipelined appends
// coexist with blocking calls on the same connection: a blocking call that
// encounters an async append's answer stashes it instead of treating the
// stream as desynchronized. The blocking append() is itself a wrapper —
// submit, then wait for that one req_id.
//
// Errors: socket-level failures and protocol violations throw NetError;
// application-level conditions (unknown group, not-leader, stale seq)
// come back as a Status in the result so callers can distinguish "the
// server is gone" from "the server said no".
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/rng.h"
#include "net/frame.h"
#include "svc/svc_types.h"

namespace omega::net {

/// Transport or protocol failure on the client connection.
class NetError : public std::runtime_error {
 public:
  explicit NetError(const std::string& what) : std::runtime_error(what) {}
};

/// Backoff schedule for automatic redials (and append_retry pauses):
/// attempt k sleeps min(base_ms << k, cap_ms), plus up to `jitter` of
/// itself (uniform), so a thundering herd of clients spreads out.
struct RetryPolicy {
  int base_ms = 10;
  int cap_ms = 1000;
  int max_attempts = 8;
  double jitter = 0.5;
  std::uint64_t seed = 0x5EEDCAFEULL;
};

class Client {
 public:
  /// A decoded answer to LEADER/WATCH/UNWATCH.
  struct Result {
    Status status = Status::kOk;
    svc::GroupId gid = 0;
    svc::LeaderView view;  ///< meaningful for kOk LEADER/WATCH answers

    bool ok() const noexcept { return status == Status::kOk; }
  };

  /// One server push: an epoch transition (kLeaderChange, `view` valid),
  /// an applied log entry (kCommit, `index`/`value` valid; `trace` is
  /// the originating append's v1.4 trace id, 0 when untraced or pushed
  /// by a pre-v1.4 server), or one complete sampler tick (kMetricsTick,
  /// `tick`/`health`/`samples` valid — multi-page METRICS_EVENT pushes
  /// are reassembled here and surface as one event per tick).
  struct Event {
    enum class Kind : std::uint8_t { kLeaderChange, kCommit, kMetricsTick };
    Kind kind = Kind::kLeaderChange;
    svc::GroupId gid = 0;
    svc::LeaderView view;
    std::uint64_t index = 0;
    std::uint64_t value = 0;
    std::uint64_t trace = 0;
    std::uint64_t tick = 0;   ///< sampler tick number
    std::uint8_t health = 0;  ///< obs::Health of the overall verdict
    std::vector<obs::MetricSample> samples;  ///< the tick's full scrape
  };

  /// A decoded APPEND answer.
  struct AppendResult {
    Status status = Status::kOk;
    std::uint64_t index = 0;  ///< commit position (kOk only)
    svc::LeaderView view;     ///< leader hint (kNotLeader redirects)
    /// The trace id this client minted for the append, echoed by v1.4
    /// servers (0 from older servers). Join key for trace_dump() records
    /// and commit events.
    std::uint64_t trace = 0;

    bool ok() const noexcept { return status == Status::kOk; }
  };

  /// A decoded READ_LOG answer.
  struct LogView {
    Status status = Status::kOk;
    std::uint64_t commit_index = 0;
    std::vector<std::uint64_t> entries;
  };

  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects (throws NetError on refusal/timeout) and remembers the
  /// endpoint for reconnect()/auto-reconnect.
  void connect(const std::string& host, std::uint16_t port,
               int timeout_ms = 5000);
  bool connected() const noexcept { return fd_ >= 0; }
  void close();

  /// Redials the remembered endpoint under `policy` backoff; throws
  /// NetError once max_attempts dials failed. No-op when connected.
  void reconnect();

  /// From now on, any call made while disconnected redials first (see the
  /// header comment). Off by default: existing callers keep the strict
  /// "a dead connection throws" behaviour.
  void enable_auto_reconnect(RetryPolicy policy = {});

  /// Point query: who leads `gid`? The epoch in the result is the fencing
  /// token to validate cached authority against.
  Result leader(svc::GroupId gid);

  /// Subscribes to `gid`'s epoch changes; the result is the current
  /// snapshot. Transitions racing the subscription may be delivered both
  /// in the snapshot and as an event — dedupe by epoch.
  Result watch(svc::GroupId gid);

  Result unwatch(svc::GroupId gid);

  /// Appends `command` (in [1, 65534]) to `gid`'s replicated log under the
  /// (client, seq) dedup key; blocks until the commit acknowledgement (or
  /// a rejection Status), waiting at most `response_timeout_ms`. One
  /// shot: no retries, no redials. Acknowledgements of *other* (async)
  /// appends arriving first are stashed for next_append_result().
  AppendResult append(svc::GroupId gid, std::uint64_t client,
                      std::uint64_t seq, std::uint64_t command,
                      int response_timeout_ms = kResponseTimeoutMs);

  /// One completed pipelined append: `req_id` is append_async's return.
  struct AsyncAppend {
    std::uint64_t req_id = 0;
    AppendResult result;
  };

  /// Submits an append without waiting for the acknowledgement and
  /// returns its req_id. Any number may be outstanding; the server
  /// answers each when its command commits (or is rejected). Every
  /// submission mints a fresh non-zero 64-bit trace id that rides the
  /// v1.4 request and comes back on the acknowledgement
  /// (AppendResult::trace) and the commit event — the join key for
  /// cross-process timeline stitching.
  std::uint64_t append_async(svc::GroupId gid, std::uint64_t client,
                             std::uint64_t seq, std::uint64_t command);

  /// The trace id minted by the most recent append submission (any form:
  /// async, blocking, retry) — lets a caller correlate before the
  /// acknowledgement arrives.
  std::uint64_t last_trace_id() const noexcept { return last_trace_; }

  /// Returns the next completed pipelined append — in completion order,
  /// not submission order — waiting up to `timeout_ms` (0 = only drain
  /// already-received frames). nullopt on timeout or when nothing is
  /// outstanding; the connection survives a timeout (late answers are
  /// still matched by req_id).
  std::optional<AsyncAppend> next_append_result(int timeout_ms);

  /// Pipelined appends submitted and not yet harvested.
  std::size_t outstanding_appends() const noexcept {
    return outstanding_appends_.size();
  }

  /// The connection's fd, for callers multiplexing many clients with
  /// poll/epoll (e.g. a load generator); -1 when disconnected. Do not
  /// read or write it directly.
  int native_handle() const noexcept { return fd_; }

  /// The standard SMR client loop: append() retried under the reconnect
  /// policy until it commits, a non-retryable Status comes back, or
  /// `timeout_ms` elapses (then throws NetError). Every wait — redial,
  /// response, backoff — is clamped to the remaining budget, so the
  /// timeout is honored to within one clamped connect attempt.
  /// kNotLeader and transport errors back off and retry — idempotent by
  /// the dedup key. kSessionEvicted re-opens the dedup session in place
  /// (SESSION_OPEN on the same connection) and resubmits immediately, so
  /// long-idle clients resume instead of erroring.
  AppendResult append_retry(svc::GroupId gid, std::uint64_t client,
                            std::uint64_t seq, std::uint64_t command,
                            int timeout_ms = 30000);

  /// Reads up to `max` applied entries of `gid`'s log starting at `from`.
  LogView read_log(svc::GroupId gid, std::uint64_t from, std::uint32_t max);

  /// Pages through the whole applied log (READ_LOG under the hood) until
  /// the commit index is covered or `max_entries` have been collected —
  /// the budget bounds client memory against an unexpectedly long log.
  /// `commit_index` in the result is the server's at the LAST page, so a
  /// log growing mid-pagination reports entries.size() < commit_index.
  LogView read_log_all(svc::GroupId gid, std::size_t max_entries = 1 << 20);

  /// A decoded READ (v1.6) answer. `status` tells which path answered:
  /// kLeaseRead (leader, lease valid — linearizable), kIndexRead
  /// (follower past the fence), kOk (leader committed read, leases
  /// disabled), kNotLeader (refused; `view` is the redirect hint, the
  /// data fields are an unverified hint), kOverloaded (fence wait timed
  /// out or waiter budget exhausted — retry).
  struct ReadResult {
    Status status = Status::kOk;
    std::uint64_t index = 0;  ///< key's applied position + 1; 0 = absent
    std::uint64_t commit_index = 0;  ///< answering replica's applied length
    svc::LeaderView view;            ///< leader hint + fencing epoch

    /// True when the read was ANSWERED (any of the three read paths).
    bool ok() const noexcept {
      return status == Status::kLeaseRead || status == Status::kIndexRead ||
             status == Status::kOk;
    }
  };

  /// Point read of `key`'s latest applied position in `gid`'s log;
  /// blocks for the answer. `min_index` floors the follower fence for
  /// read-your-writes across a routing switch (0 = server's own fence).
  ReadResult read(svc::GroupId gid, std::uint64_t key,
                  std::uint64_t min_index = 0,
                  int response_timeout_ms = kResponseTimeoutMs);

  /// One completed pipelined read: `req_id` is read_async's return.
  struct AsyncRead {
    std::uint64_t req_id = 0;
    ReadResult result;
  };

  /// Submits a point read without waiting; any number may be
  /// outstanding. Harvest with next_read_result() (completion order).
  std::uint64_t read_async(svc::GroupId gid, std::uint64_t key,
                           std::uint64_t min_index = 0);

  /// Next completed pipelined read, waiting up to `timeout_ms` (0 = only
  /// drain already-received frames). nullopt on timeout or when nothing
  /// is outstanding; the connection survives a timeout.
  std::optional<AsyncRead> next_read_result(int timeout_ms);

  /// Pipelined reads submitted and not yet harvested.
  std::size_t outstanding_reads() const noexcept {
    return outstanding_reads_.size();
  }

  /// Subscribes to `gid`'s commit pushes; `index` in the result is the
  /// commit-index snapshot (entries below it are readable via read_log).
  AppendResult commit_watch(svc::GroupId gid);
  Result commit_unwatch(svc::GroupId gid);

  /// SESSION_OPEN handshake answer.
  struct SessionInfo {
    Status status = Status::kOk;
    std::int64_t ttl_us = 0;  ///< dedup-session TTL (0 = never evicted)

    bool ok() const noexcept { return status == Status::kOk; }
  };

  /// (Re)opens this client's dedup session on `gid` and learns the
  /// server's session TTL. Required before appending with seq > 1 as the
  /// first submission on a TTL-bounded group, and after an append
  /// answered kSessionEvicted (the retry window was lost; re-open and
  /// continue with fresh seqs).
  SessionInfo open_session(svc::GroupId gid, std::uint64_t client);

  /// Round-trip liveness probe.
  void ping();

  StatsBody stats();

  /// A complete METRICS scrape (all pages merged).
  struct MetricsResult {
    Status status = Status::kOk;
    /// The serving node's identity (v1.5 trailer); kNoNodeId from
    /// single-node servers and pre-v1.5 peers. Lets a scraper that
    /// merges several endpoints label each sample set.
    std::uint32_t node = kNoNodeId;
    std::vector<obs::MetricSample> metrics;

    bool ok() const noexcept { return status == Status::kOk; }
    /// The sample named `name`, or nullptr.
    const obs::MetricSample* find(const std::string& name) const noexcept;
  };

  /// Scrapes the server's metric registry (v1.3 METRICS), transparently
  /// following the pagination until every sample has been fetched.
  MetricsResult metrics();

  /// A complete TRACE_DUMP scrape (all pages merged, deduplicated).
  struct TraceDumpResult {
    Status status = Status::kOk;
    /// CLOCK_REALTIME - steady anchor of the scraped process: add to a
    /// record's steady `ts_ns` to place it on the shared wall clock.
    std::int64_t realtime_offset_ns = 0;
    /// Oldest-first after the merge (the wire pages newest-first).
    std::vector<obs::TraceRecord> records;

    bool ok() const noexcept { return status == Status::kOk; }
  };

  /// Scrapes the server's flight-recorder rings (v1.4 TRACE_DUMP),
  /// following the newest-first pagination until the snapshot is
  /// covered. Records the rings churned out between pages surface as
  /// duplicates and are dropped here; the result is sorted oldest-first.
  TraceDumpResult trace_dump();

  /// The server's health verdict as of its last sampler tick (v1.5).
  struct HealthResult {
    Status status = Status::kOk;
    std::uint8_t overall = 0;     ///< obs::Health value
    std::uint64_t ticks = 0;      ///< sampler evaluations so far
    std::uint8_t rules_total = 0; ///< registered rules
    std::vector<HealthRuleWire> firing;  ///< non-ok rules with reasons

    bool ok() const noexcept { return status == Status::kOk; }
  };

  /// One HEALTH round-trip. kUnsupported from servers running without a
  /// sampler (and pre-v1.5 servers).
  HealthResult health();

  /// METRICS_WATCH answer: the sampler period the pushes will arrive at.
  struct MetricsWatchResult {
    Status status = Status::kOk;
    std::uint32_t period_ms = 0;

    bool ok() const noexcept { return status == Status::kOk; }
  };

  /// Subscribes this connection to the server's sampler stream: every
  /// tick arrives as a kMetricsTick event via next_event(). Re-issued
  /// automatically after a reconnect, like the other subscriptions.
  MetricsWatchResult metrics_watch();

  /// Returns the next pushed event, waiting up to `timeout_ms` (0 = only
  /// drain already-received frames). nullopt on timeout.
  std::optional<Event> next_event(int timeout_ms);

 private:
  /// Sends the request and reads frames until the response with `id`
  /// arrives; events encountered on the way are queued.
  Frame call(MsgType type, std::optional<WireGroupId> gid);
  /// Same loop for a pre-encoded request in out_ (APPEND/READ_LOG);
  /// `response_timeout_ms` bounds the wait (append_retry passes its
  /// remaining budget).
  Frame call_encoded(MsgType type, std::uint64_t id,
                     int response_timeout_ms = kResponseTimeoutMs);
  /// Redials if auto-reconnect is on and the connection is down.
  void ensure_connected();
  /// Re-issues every tracked WATCH/COMMIT_WATCH on a fresh connection;
  /// each snapshot wait is bounded by `response_timeout_ms` so callers
  /// with a budget (append_retry) can clamp the whole redial.
  void resubscribe(int response_timeout_ms = kResponseTimeoutMs);
  /// One dial to the remembered endpoint (throws NetError).
  void dial(int timeout_ms);

  void send_all(const std::uint8_t* data, std::size_t len);
  /// Reads one socket chunk into the decoder, waiting up to `timeout_ms`.
  /// Returns false on timeout; throws on EOF/error.
  bool fill(int timeout_ms);
  /// Pops the next complete frame out of the decoder, if any.
  std::optional<Frame> pop_frame();
  /// Queues a pushed frame; true if `f` was one.
  bool queue_event(const Frame& f);
  /// Absorbs a frame that is not the current blocking call's response:
  /// pushed events and answers to outstanding async appends are queued;
  /// returns false if the frame is neither (the caller decides whether
  /// that is its response or a desync).
  bool absorb(const Frame& f);
  static AppendResult to_append_result(const Frame& f);
  static ReadResult to_read_result(const Frame& f);

  /// Mints the next non-zero trace id (splitmix64 over a per-client
  /// salt), remembered in last_trace_.
  std::uint64_t mint_trace_id();

  int fd_ = -1;
  std::uint64_t next_req_id_ = 1;
  std::uint64_t trace_seq_ = 0;   ///< mint counter (salted per client)
  std::uint64_t last_trace_ = 0;  ///< newest minted id
  FrameDecoder in_;
  std::deque<Event> events_;
  std::vector<std::uint8_t> out_;
  std::unordered_set<std::uint64_t> outstanding_appends_;
  std::deque<AsyncAppend> done_appends_;
  std::unordered_set<std::uint64_t> outstanding_reads_;
  std::deque<AsyncRead> done_reads_;
  /// Live subscriptions, by channel — re-issued after every reconnect.
  std::unordered_set<svc::GroupId> watched_gids_;
  std::unordered_set<svc::GroupId> commit_watched_gids_;
  bool metrics_watched_ = false;
  /// METRICS_EVENT tick reassembly: pages of the tick being collected.
  /// A page for a different tick than the one in progress (head page
  /// missed — subscribed mid-tick) is discarded; only complete ticks
  /// surface as events.
  std::uint64_t pending_tick_ = 0;
  std::uint8_t pending_health_ = 0;
  bool pending_tick_open_ = false;
  std::vector<obs::MetricSample> pending_samples_;

  std::string host_;
  std::uint16_t port_ = 0;
  int connect_timeout_ms_ = 5000;
  bool auto_reconnect_ = false;
  RetryPolicy policy_;
  Rng backoff_rng_{0x5EEDCAFEULL};

  /// Response wait budget; generous because CI boxes can stall for a
  /// while, and a commit acknowledgement legitimately waits for consensus.
  static constexpr int kResponseTimeoutMs = 30000;
  /// Bound on buffered pushes: beyond it the oldest event is dropped
  /// (subscribers resynchronize by epoch/commit index).
  static constexpr std::size_t kMaxQueuedEvents = 65536;
};

/// Round-robin point-read router over several node endpoints (v1.6).
///
/// Spreads reads across the deployment — followers answer via read-index,
/// the leader's node via its lease — and rotates away from endpoints that
/// answer kNotLeader/kOverloaded or fail at transport level. The router
/// remembers the highest commit_index any answer carried and passes it as
/// every read's min_index, so a routing switch never observes the log
/// moving backwards (monotonic session reads: a follower that has not yet
/// applied that far parks the read instead of answering stale).
class ReadRouter {
 public:
  struct Endpoint {
    std::string host;
    std::uint16_t port = 0;
  };

  explicit ReadRouter(std::vector<Endpoint> endpoints);

  /// Point read with failover: rotates through the endpoints (dialing
  /// lazily) until one answers, trying each at most twice. Throws
  /// NetError when every endpoint fails at transport level; refusals
  /// (kNotLeader/kOverloaded everywhere) come back as the last refusal.
  Client::ReadResult read(svc::GroupId gid, std::uint64_t key,
                          int response_timeout_ms = 5000);

  /// The monotonic session floor (highest observed commit_index).
  std::uint64_t session_floor() const noexcept { return floor_; }

  /// The endpoint index the NEXT read will try first (tests/telemetry).
  std::size_t cursor() const noexcept { return next_; }

 private:
  std::vector<Endpoint> endpoints_;
  std::vector<std::unique_ptr<Client>> clients_;  ///< lazily dialed
  std::size_t next_ = 0;
  std::uint64_t floor_ = 0;
};

}  // namespace omega::net
