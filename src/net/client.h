// net::Client — blocking client of the LeaderServer wire protocol.
//
// One Client wraps one TCP connection and is meant for exactly one thread
// (the classic lease-holder pattern: query, fence on the epoch, renew).
// Requests are strictly one-at-a-time; server-pushed EVENT frames that
// arrive interleaved with a response are queued internally and surfaced
// through next_event(), so a caller can hold watches and still issue
// queries on the same connection.
//
// Errors: socket-level failures and protocol violations throw NetError;
// application-level conditions (unknown group) come back as a Status in
// the result so callers can distinguish "the server is gone" from "you
// asked about a group that does not exist".
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <stdexcept>
#include <string>

#include "net/frame.h"
#include "svc/svc_types.h"

namespace omega::net {

/// Transport or protocol failure on the client connection.
class NetError : public std::runtime_error {
 public:
  explicit NetError(const std::string& what) : std::runtime_error(what) {}
};

class Client {
 public:
  /// A decoded answer to LEADER/WATCH/UNWATCH.
  struct Result {
    Status status = Status::kOk;
    svc::GroupId gid = 0;
    svc::LeaderView view;  ///< meaningful for kOk LEADER/WATCH answers

    bool ok() const noexcept { return status == Status::kOk; }
  };

  /// One epoch transition pushed by the server.
  struct Event {
    svc::GroupId gid = 0;
    svc::LeaderView view;
  };

  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects (throws NetError on refusal/timeout).
  void connect(const std::string& host, std::uint16_t port,
               int timeout_ms = 5000);
  bool connected() const noexcept { return fd_ >= 0; }
  void close();

  /// Point query: who leads `gid`? The epoch in the result is the fencing
  /// token to validate cached authority against.
  Result leader(svc::GroupId gid);

  /// Subscribes to `gid`'s epoch changes; the result is the current
  /// snapshot. Transitions racing the subscription may be delivered both
  /// in the snapshot and as an event — dedupe by epoch.
  Result watch(svc::GroupId gid);

  Result unwatch(svc::GroupId gid);

  /// Round-trip liveness probe.
  void ping();

  StatsBody stats();

  /// Returns the next pushed event, waiting up to `timeout_ms` (0 = only
  /// drain already-received frames). nullopt on timeout.
  std::optional<Event> next_event(int timeout_ms);

 private:
  /// Sends the request and reads frames until the response with `id`
  /// arrives; events encountered on the way are queued.
  Frame call(MsgType type, std::optional<WireGroupId> gid);

  void send_all(const std::uint8_t* data, std::size_t len);
  /// Reads one socket chunk into the decoder, waiting up to `timeout_ms`.
  /// Returns false on timeout; throws on EOF/error.
  bool fill(int timeout_ms);
  /// Pops the next complete frame out of the decoder, if any.
  std::optional<Frame> pop_frame();

  int fd_ = -1;
  std::uint64_t next_req_id_ = 1;
  FrameDecoder in_;
  std::deque<Event> events_;
  std::vector<std::uint8_t> out_;

  /// Response wait budget; generous because CI boxes can stall for a while.
  static constexpr int kResponseTimeoutMs = 30000;
};

}  // namespace omega::net
