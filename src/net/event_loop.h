// EventLoop: one epoll instance driven by one thread. Edge-triggered
// registration (EPOLLET) keeps the number of epoll_wait wakeups at one per
// readiness transition instead of one per byte batch; handlers therefore
// must drain their fd until EAGAIN on every callback.
//
// Cross-thread input arrives through post(): any thread may enqueue a task
// and the loop is woken through an eventfd. This is how svc worker threads
// hand epoch-change notifications to the IO thread that owns the watching
// connections — the loop thread is the only one that ever touches
// connection state, so the server needs no per-connection locks.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

namespace omega::net {

class EventLoop {
 public:
  /// Invoked on the loop thread with the epoll event mask of the fd.
  using IoHandler = std::function<void(std::uint32_t events)>;
  using Task = std::function<void()>;

  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Registers `fd` edge-triggered for `events` (EPOLLIN/EPOLLOUT/...).
  /// Loop thread only (or before run()). The fd is not owned: the caller
  /// closes it after remove_fd().
  void add_fd(int fd, std::uint32_t events, IoHandler handler);

  /// Changes the armed event mask of a registered fd. Loop thread only.
  void mod_fd(int fd, std::uint32_t events);

  /// Unregisters the fd. Loop thread only. Pending events already
  /// harvested for this fd are discarded, even if it is re-registered in
  /// the same dispatch batch (registrations are keyed by a generation
  /// token, not the raw fd, so a recycled fd cannot receive stale events).
  void remove_fd(int fd);

  /// Enqueues `task` to run on the loop thread and wakes it. Any thread.
  void post(Task task);

  /// Runs until stop(); call from the thread that owns the loop.
  void run();

  /// Signals run() to return after the current iteration. Any thread.
  void stop();

  /// Runs tasks that were still queued when run() returned (e.g. a
  /// connection handed over right as the server stopped). Only call when
  /// no thread is inside run() — typically after joining the loop thread,
  /// at which point the caller's thread is the loop's sole owner.
  void drain_pending();

  bool running() const noexcept {
    return running_.load(std::memory_order_acquire);
  }

 private:
  struct Registration {
    int fd = -1;
    IoHandler handler;
  };

  void wake();

  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::atomic<bool> stop_{false};
  std::atomic<bool> running_{false};

  /// Registration token → handler; epoll events carry the token in
  /// data.u64 so a closed+recycled fd never dispatches to the old handler.
  std::unordered_map<std::uint64_t, Registration> handlers_;
  std::unordered_map<int, std::uint64_t> token_of_fd_;
  std::uint64_t next_token_ = 1;

  std::mutex tasks_mu_;
  std::vector<Task> tasks_;
};

}  // namespace omega::net
