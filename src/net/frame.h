// Wire protocol of the leader-query front-end (src/net): length-prefixed
// binary frames over TCP.
//
//   frame    := u32 payload_len (LE) | payload
//   payload  := header | body
//   header   := u8 magic (0xA9) | u8 version (1) | u8 type | u8 status
//               | u64 req_id (LE)
//
// All integers are little-endian. `req_id` is chosen by the client and
// echoed verbatim in the matching response; server-pushed EVENT frames
// carry req_id 0. `status` is 0 in requests and a Status code in
// responses. Payloads are capped at kMaxPayloadBytes — a peer announcing
// more is a protocol error and the connection is closed.
//
// Message bodies (v1):
//   LEADER  req: u64 gid          resp: u64 gid | u32 leader | u64 epoch
//   WATCH   req: u64 gid          resp: like LEADER (the initial snapshot)
//   UNWATCH req: u64 gid          resp: u64 gid
//   PING    req: (empty)          resp: (empty)
//   STATS   req: (empty)          resp: 9 × u64 (see StatsBody; the first
//           six fields are the v1.0 body — old readers ignore the rest)
//   EVENT   (server push only):   u64 gid | u32 leader | u64 epoch
//
// Replicated-log bodies (v1.1, see README "Replicated log service"):
//   APPEND       req: u64 gid | u64 client | u64 seq | u64 command
//                resp: u64 gid | u64 index | u32 leader | u64 epoch
//                (index valid for kOk; leader/epoch are the redirect hint
//                for kNotLeader)
//   READ_LOG     req: u64 gid | u64 from | u32 max
//                resp: u64 gid | u64 commit_index | u32 count | count × u64
//   COMMIT_WATCH req: u64 gid     resp: u64 gid | u64 commit_index
//   COMMIT_UNWATCH req: u64 gid   resp: u64 gid
//   COMMIT_EVENT (server push):   u64 gid | u64 index | u64 value
//
// Register-mirror bodies (v1.2, the multi-process transport — see
// README "Multi-node deployment" and net/register_peer.h):
//   REG_HELLO    req: u32 node            resp: u32 node (the peer's)
//                opens a push stream: every later REG_PUSH on this
//                connection is from `node`'s locally-owned registers.
//   REG_PUSH     one-way (req_id 0): u64 gid | u64 seq | u32 count
//                | count × (u32 cell | u64 value)
//                FIFO per stream; `seq` increments per frame per stream.
//   REG_ACK      one-way (req_id 0): u64 seq — cumulative: every push of
//                this stream up to `seq` is applied at the receiver.
//
// Session bodies (v1.2):
//   SESSION_OPEN req: u64 gid | u64 client
//                resp: u64 gid | u64 ttl_us (0 = sessions never expire)
//                (re)opens the client's dedup session; appends from a
//                client whose session was TTL-evicted answer
//                kSessionEvicted until the client re-opens (instead of
//                silently treating a retry as a fresh command).
//
// Observability bodies (v1.3 — see README "Observability"):
//   METRICS      req: u32 start — index of the first metric wanted, in
//                the server's name-sorted scrape order (0 for the first
//                page).
//                resp: u32 total | u32 start | u32 count | count × record
//                record := u8 kind (0 counter, 1 gauge, 2 histogram)
//                        | u8 name_len | name_len × name byte
//                        | u64 value (i64 two's complement; histogram:
//                          sample count) | u64 sum (histograms, else 0)
//                        | u8 nbuckets | nbuckets × (u8 bucket, u64 count)
//                Histogram buckets are sparse (non-zero only, ascending;
//                bucket b covers [2^(b-1), 2^b - 1], bucket 0 is {0}).
//                The server packs as many whole records per page as fit
//                kMaxPayloadBytes; the client re-requests from
//                start + count until total is covered. STATS is untouched
//                and stays byte-compatible.
//
// Causal-tracing bodies (v1.4 — see README "Distributed tracing"):
//   APPEND       req  += u64 trace_id (body 40 bytes; 32-byte v1.1
//                requests decode with trace 0)
//                resp += u64 trace_id (body 36 bytes) — the id echoed
//   COMMIT_EVENT      += u64 trace_id (body 32 bytes; kCommitWatch
//                snapshots stay 16 bytes, they name no single append)
//   TRACE_DUMP   req: u32 start — index of the first record wanted in
//                the server's snapshot order (0 for the first page).
//                resp: u32 total | u32 start | i64 realtime_offset_ns
//                | u32 count | count × record
//                record := u64 ts_ns | u32 thread | u8 event
//                        | u64 a | u64 b | u64 trace_lo | u64 trace_hi
//                (45 bytes fixed). ts_ns is the node's steady clock;
//                wall time = ts_ns + realtime_offset_ns. The server
//                snapshots its flight-recorder rings fresh per request
//                and serves records NEWEST-first, so ring churn between
//                pages duplicates records (the client dedupes) instead
//                of opening gaps. Pagination works like METRICS: whole
//                records per page, client re-requests from start+count.
//
// Health & streaming bodies (v1.5 — see README "Health & streaming
// telemetry"):
//   METRICS      resp += u32 node — the answering node's id appended
//                after the records (kNoNodeId when the server has no
//                identity; v1.3 readers skip it as trailing bytes), so
//                multi-node merges label samples by node, not by the
//                order endpoints were dialled.
//   HEALTH       req: (empty)
//                resp: u8 overall | u64 ticks | u8 rules_total
//                | u8 nfiring | nfiring × rule
//                rule := u8 status | u8 name_len | name_len × byte
//                      | u8 reason_len | reason_len × byte
//                overall/status: 0 ok, 1 degraded, 2 critical. `ticks`
//                is sampler evaluations so far (0 = no sampler; the
//                server then answers kUnsupported). Only firing
//                (non-ok) rules ride the wire; rules_total lets the
//                reader compute how many are ok.
//   METRICS_WATCH req: (empty)
//                resp: u32 period_ms — the sampler period; subscribes
//                this connection to METRICS_EVENT pushes until it
//                closes (kUnsupported with period 0 when no sampler).
//   METRICS_EVENT (server push only, req_id 0):
//                u64 tick | u8 health | u32 total | u32 start
//                | u32 count | count × record (the kMetrics record
//                format). One sampler tick fans out as ceil(total /
//                per-page) pushes sharing `tick`; a subscriber
//                reassembles pages until start+count = total. `health`
//                is the overall verdict at that tick.
//
// Linearizable-read bodies (v1.6 — see README "Linearizable reads"):
//   READ         req: u64 gid | u64 key | u64 min_index (24 bytes exactly)
//                `key` is the command value whose latest applied position
//                is wanted; `min_index` is the client's session floor — a
//                follower answers only once its applied index passes
//                max(published fence, min_index), giving read-your-writes
//                across a leader->follower switch (0 = no floor).
//                resp: u64 gid | u64 key | u64 index | u64 commit_index
//                | u32 leader | u64 epoch (44 bytes; error responses
//                carry the same zero-filled body so one length rule
//                covers every status). `index` is the key's latest
//                applied position PLUS ONE — 0 means "never applied".
//                Status tells which path answered: kLeaseRead (leader,
//                epoch-fenced lease valid — linearizable), kIndexRead
//                (follower, local apply passed the fence), kOk (leader
//                fallback without a valid lease), kNotLeader with the
//                leader/epoch hint otherwise. The lengths follow the
//                APPEND lockstep rule: request (24) and response (44)
//                sizes stay disjoint, and future revisions must grow
//                both together.
//
// APPEND and READ_LOG are the two types whose request and response bodies
// can have overlapping lengths, so their decode is *role-based*: the
// decoder fills both interpretations when the length allows and the
// consumer reads the one matching its side of the connection (a server
// only ever receives requests, a client only responses).
//
// `leader` is the ProcessId on the wire, with kNoProcess (0xffffffff)
// meaning "no agreed leader right now". `epoch` is the fencing token: it
// increments on every change of the group's agreed view, so a client
// holding a lease obtained at epoch E must treat any frame for that group
// with a larger epoch as an invalidation.
//
// Versioning: bumping kVersion invalidates old peers loudly (decode
// rejects the frame) instead of silently misparsing; body decoders accept
// trailing bytes they do not understand so a future minor revision can
// append fields without breaking v1 readers.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/ids.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"

namespace omega::net {

inline constexpr std::uint8_t kMagic = 0xA9;
inline constexpr std::uint8_t kVersion = 1;

/// Hard cap on a frame's payload; v1 bodies are tiny, so anything larger
/// is garbage or an attack, not a message.
inline constexpr std::uint32_t kMaxPayloadBytes = 4096;

/// Bytes of the fixed header inside the payload.
inline constexpr std::size_t kHeaderBytes = 1 + 1 + 1 + 1 + 8;

enum class MsgType : std::uint8_t {
  kLeader = 1,   ///< point query: who leads group G?
  kWatch = 2,    ///< subscribe to G's epoch changes (resp = snapshot)
  kUnwatch = 3,  ///< drop the subscription
  kPing = 4,     ///< liveness / RTT probe
  kStats = 5,    ///< server counters
  kEvent = 6,    ///< server push: G's agreed view changed
  kAppend = 7,        ///< append a command to G's replicated log
  kReadLog = 8,       ///< page of applied log entries
  kCommitWatch = 9,   ///< subscribe to G's commit pushes (resp = snapshot)
  kCommitUnwatch = 10,  ///< drop the commit subscription
  kCommitEvent = 11,  ///< server push: an entry of G's log was applied
  kRegHello = 12,     ///< open a register push stream (v1.2)
  kRegPush = 13,      ///< pushed register updates, FIFO per stream (v1.2)
  kRegAck = 14,       ///< cumulative apply acknowledgement (v1.2)
  kSessionOpen = 15,  ///< (re)open a dedup session; resp carries the TTL
  kMetrics = 16,      ///< paged scrape of the obs metric registry (v1.3)
  kTraceDump = 17,    ///< paged scrape of the flight recorder (v1.4)
  kHealth = 18,        ///< health verdict + firing rules (v1.5)
  kMetricsWatch = 19,  ///< subscribe to per-tick metric pushes (v1.5)
  kMetricsEvent = 20,  ///< server push: one page of a sampler tick (v1.5)
  kRead = 21,          ///< point read of a key's applied position (v1.6)
};

enum class Status : std::uint8_t {
  kOk = 0,
  kUnknownGroup = 1,  ///< gid not registered with the service
  kBadRequest = 2,    ///< body malformed for the declared type
  kUnsupported = 3,   ///< type unknown to this server version
  kNotLeader = 4,     ///< group has no agreed leader; redirect/back off
  kStaleSeq = 5,      ///< append seq older than the client's latest
  kOverloaded = 6,    ///< command intake full; retry later
  kLogFull = 7,       ///< the log's slot capacity is exhausted
  kSessionEvicted = 8,  ///< dedup session expired; SESSION_OPEN to resume
  kLeaseRead = 9,   ///< READ answered under a valid leader lease (v1.6)
  kIndexRead = 10,  ///< READ answered by a follower past the fence (v1.6)
};

struct FrameHeader {
  MsgType type = MsgType::kPing;
  Status status = Status::kOk;
  std::uint64_t req_id = 0;
};

/// Group id on the wire (matches svc::GroupId's representation).
using WireGroupId = std::uint64_t;

/// Body of LEADER/WATCH responses and EVENT pushes.
struct ViewBody {
  WireGroupId gid = 0;
  ProcessId leader = kNoProcess;
  std::uint64_t epoch = 0;
};

/// Body of a STATS response. The first six fields are the v1.0 body; the
/// rest were appended in v1.1 (old readers skip them as trailing bytes,
/// and the decoder leaves them zero for v1.0 peers).
struct StatsBody {
  std::uint64_t connections = 0;    ///< currently open connections
  std::uint64_t queries = 0;        ///< LEADER requests served
  std::uint64_t watches = 0;        ///< active (gid, connection) watches
  std::uint64_t events = 0;         ///< EVENT frames pushed
  std::uint64_t groups = 0;         ///< groups registered with the service
  std::uint64_t io_threads = 0;     ///< serving event loops
  std::uint64_t appends = 0;        ///< APPEND requests accepted
  std::uint64_t commit_events = 0;  ///< COMMIT_EVENT frames pushed
  std::uint64_t log_reads = 0;      ///< READ_LOG requests served
};

/// kAppend request body.
struct AppendReqBody {
  WireGroupId gid = 0;
  std::uint64_t client = 0;   ///< dedup-key half 1: client session id
  std::uint64_t seq = 0;      ///< dedup-key half 2: per-client sequence
  std::uint64_t command = 0;  ///< value to append, in [1, 65534]
  std::uint64_t trace = 0;    ///< v1.4 trace id (0 = untraced v1.1 peer)
};

/// kAppend response body.
struct AppendRespBody {
  WireGroupId gid = 0;
  std::uint64_t index = 0;        ///< commit position (kOk only)
  ProcessId leader = kNoProcess;  ///< redirect hint (kNotLeader)
  std::uint64_t epoch = 0;
  std::uint64_t trace = 0;        ///< v1.4: the request's trace id, echoed
};

/// kReadLog request body.
struct ReadLogReqBody {
  WireGroupId gid = 0;
  std::uint64_t from = 0;  ///< first index wanted
  std::uint32_t max = 0;   ///< page size (server caps at kMaxLogEntries)
};

/// kReadLog response body (entries follow the fixed part on the wire).
struct ReadLogRespBody {
  WireGroupId gid = 0;
  std::uint64_t commit_index = 0;
  std::vector<std::uint64_t> entries;
};

/// kCommitWatch responses (index only) and kCommitEvent pushes.
struct CommitBody {
  WireGroupId gid = 0;
  std::uint64_t index = 0;
  std::uint64_t value = 0;  ///< kCommitEvent only
  std::uint64_t trace = 0;  ///< kCommitEvent only (v1.4; 0 = untraced)
};

/// Server-side page cap for READ_LOG (the payload cap allows ~500).
inline constexpr std::uint32_t kMaxLogEntries = 256;

/// One pushed register update (v1.2).
struct RegCellUpdate {
  std::uint32_t cell = 0;
  std::uint64_t value = 0;
};

/// kRegHello requests and responses (u32 node either way).
struct RegHelloBody {
  std::uint32_t node = 0;
};

/// kRegPush one-way frames.
struct RegPushBody {
  WireGroupId gid = 0;
  std::uint64_t seq = 0;  ///< per-stream frame counter, starts at 1
  std::vector<RegCellUpdate> cells;
};

/// kRegAck one-way frames (cumulative per stream).
struct RegAckBody {
  std::uint64_t seq = 0;
};

/// kSessionOpen requests (gid, client) and responses (gid, ttl_us) —
/// role-based like APPEND: both interpretations share the layout.
struct SessionOpenBody {
  WireGroupId gid = 0;
  std::uint64_t client = 0;  ///< request interpretation
  std::uint64_t ttl_us = 0;  ///< response interpretation (same bytes)
};

/// Cells per REG_PUSH frame (keeps the frame well inside kMaxPayloadBytes;
/// a flush larger than this is split into several frames).
inline constexpr std::uint32_t kMaxPushCells = 256;

/// kMetrics request body (v1.3): first metric index wanted.
struct MetricsReqBody {
  std::uint32_t start = 0;
};

/// "This server has no node identity" — the default NetConfig::node_id
/// and the v1.5 METRICS `node` field for v1.3 responses.
inline constexpr std::uint32_t kNoNodeId = 0xffffffff;

/// kMetrics response body: one page of the name-sorted scrape. `metrics`
/// reuses obs::MetricSample verbatim, so server, client and renderers
/// share one record type. `node` (v1.5) trails the records on the wire;
/// v1.3 responses decode with kNoNodeId.
struct MetricsRespBody {
  std::uint32_t total = 0;  ///< metrics in the full scrape
  std::uint32_t start = 0;  ///< index of metrics.front() in that scrape
  std::uint32_t node = kNoNodeId;  ///< answering node's id (v1.5)
  std::vector<obs::MetricSample> metrics;
};

/// Wire bytes one metric record occupies inside a kMetrics response —
/// the server's pagination arithmetic (names longer than 255 bytes are
/// truncated on encode and sized as truncated here).
std::size_t metrics_record_wire_size(const obs::MetricSample& m) noexcept;

/// kTraceDump request body (v1.4): first record index wanted.
struct TraceDumpReqBody {
  std::uint32_t start = 0;
};

/// kTraceDump response body: one page of the node's flight-recorder
/// snapshot, newest records first. `records` reuses obs::TraceRecord so
/// server, client and the stitcher share one record type.
struct TraceDumpRespBody {
  std::uint32_t total = 0;  ///< records in the full snapshot
  std::uint32_t start = 0;  ///< index of records.front() in that snapshot
  std::int64_t realtime_offset_ns = 0;  ///< the node's wall-clock anchor
  std::vector<obs::TraceRecord> records;
};

/// Fixed wire bytes of one kTraceDump record:
/// ts(8) | thread(4) | event(1) | a(8) | b(8) | trace_lo(8) | trace_hi(8).
inline constexpr std::size_t kTraceRecordWireBytes = 45;

/// One firing rule inside a kHealth response. `status` matches
/// obs::Health's numeric values (1 degraded, 2 critical — ok rules stay
/// off the wire). Name and reason are capped at 255 bytes on encode.
struct HealthRuleWire {
  std::uint8_t status = 0;
  std::string name;
  std::string reason;
};

/// kHealth response body.
struct HealthRespBody {
  std::uint8_t overall = 0;       ///< obs::Health numeric value
  std::uint64_t ticks = 0;        ///< sampler evaluations so far
  std::uint8_t rules_total = 0;   ///< registered rules (firing + ok)
  std::vector<HealthRuleWire> firing;
};

/// kRead request body (v1.6): point read of `key`'s latest applied
/// position. `min_index` is the caller's session floor (see the protocol
/// comment); 0 asks for whatever the answering replica can prove.
struct ReadReqBody {
  WireGroupId gid = 0;
  std::uint64_t key = 0;        ///< command value looked up
  std::uint64_t min_index = 0;  ///< read-your-writes floor (0 = none)
};

/// kRead response body (v1.6). `index` is the key's latest applied
/// position plus one (0 = the key was never applied); `commit_index` is
/// the answering replica's applied length; leader/epoch are the redirect
/// hint on kNotLeader and the fencing context otherwise.
struct ReadRespBody {
  WireGroupId gid = 0;
  std::uint64_t key = 0;
  std::uint64_t index = 0;         ///< applied position + 1; 0 = absent
  std::uint64_t commit_index = 0;  ///< replica's applied length
  ProcessId leader = kNoProcess;
  std::uint64_t epoch = 0;
};

/// kMetricsWatch response body: the sampler period the subscriber will
/// see ticks at (0 on kUnsupported — no sampler running).
struct MetricsWatchRespBody {
  std::uint32_t period_ms = 0;
};

/// kMetricsEvent push body: one page of one sampler tick. Pages of a
/// tick share `tick`/`total`/`health`; `start` + metrics.size() reaching
/// `total` completes the tick (record format shared with kMetrics).
struct MetricsEventBody {
  std::uint64_t tick = 0;
  std::uint8_t health = 0;  ///< overall obs::Health at this tick
  std::uint32_t total = 0;
  std::uint32_t start = 0;
  std::vector<obs::MetricSample> metrics;
};

/// A decoded frame: header plus whichever body the type carries. Bodies
/// the type does not use stay default-initialized. For kAppend/kReadLog
/// both the request and the response interpretation are filled when the
/// body is long enough (role-based decode — see the protocol comment).
struct Frame {
  FrameHeader header;
  ViewBody view;    ///< kLeader/kWatch/kUnwatch (gid only in requests)
  StatsBody stats;  ///< kStats responses
  AppendReqBody append_req;    ///< kAppend requests (body >= 32 bytes)
  AppendRespBody append_resp;  ///< kAppend responses (body >= 28 bytes)
  ReadLogReqBody readlog_req;    ///< kReadLog requests
  ReadLogRespBody readlog_resp;  ///< kReadLog responses
  CommitBody commit;  ///< kCommitWatch responses / kCommitEvent pushes
  RegHelloBody reg_hello;      ///< kRegHello
  RegPushBody reg_push;        ///< kRegPush
  RegAckBody reg_ack;          ///< kRegAck
  SessionOpenBody session;     ///< kSessionOpen (role-based)
  MetricsReqBody metrics_req;    ///< kMetrics requests (4-byte body)
  MetricsRespBody metrics_resp;  ///< kMetrics responses (>= 12 bytes)
  TraceDumpReqBody trace_req;    ///< kTraceDump requests (4-byte body)
  TraceDumpRespBody trace_resp;  ///< kTraceDump responses (>= 20 bytes)
  HealthRespBody health_resp;    ///< kHealth responses (>= 11 bytes)
  MetricsWatchRespBody metrics_watch;  ///< kMetricsWatch responses
  MetricsEventBody metrics_event;      ///< kMetricsEvent pushes
  ReadReqBody read_req;    ///< kRead requests (24-byte body)
  ReadRespBody read_resp;  ///< kRead responses (>= 44 bytes)
  bool has_body = false;        ///< a typed body was present
  bool has_append_req = false;  ///< body long enough for AppendReqBody
  bool has_readlog_req = false;  ///< body long enough for ReadLogReqBody
  bool has_read_req = false;   ///< body parsed as a kRead request
  bool has_read_resp = false;  ///< body parsed as a kRead response
  bool has_metrics_resp = false;  ///< body parsed as a metrics page
  bool has_trace_resp = false;    ///< body parsed as a trace-dump page
  bool has_health_resp = false;   ///< body parsed as a health response
  bool has_metrics_event = false;  ///< body parsed as a metrics push
};

// --- encoding --------------------------------------------------------------
// Encoders append one complete frame (length prefix included) to `out`,
// so a caller can batch several frames into one write buffer.

void encode_request(std::vector<std::uint8_t>& out, MsgType type,
                    std::uint64_t req_id, std::optional<WireGroupId> gid);

void encode_view_frame(std::vector<std::uint8_t>& out, MsgType type,
                       Status status, std::uint64_t req_id,
                       const ViewBody& view);

void encode_simple_response(std::vector<std::uint8_t>& out, MsgType type,
                            Status status, std::uint64_t req_id);

void encode_gid_response(std::vector<std::uint8_t>& out, MsgType type,
                         Status status, std::uint64_t req_id, WireGroupId gid);

void encode_stats_response(std::vector<std::uint8_t>& out,
                           std::uint64_t req_id, const StatsBody& stats);

void encode_append_request(std::vector<std::uint8_t>& out,
                           std::uint64_t req_id, const AppendReqBody& body);

void encode_append_response(std::vector<std::uint8_t>& out, Status status,
                            std::uint64_t req_id, const AppendRespBody& body);

void encode_readlog_request(std::vector<std::uint8_t>& out,
                            std::uint64_t req_id, const ReadLogReqBody& body);

/// `entries` capped by the caller (kMaxLogEntries keeps the frame far
/// under kMaxPayloadBytes).
void encode_readlog_response(std::vector<std::uint8_t>& out,
                             std::uint64_t req_id, WireGroupId gid,
                             std::uint64_t commit_index,
                             const std::vector<std::uint64_t>& entries);

/// kCommitWatch response carrying the commit-index snapshot.
void encode_commit_snapshot(std::vector<std::uint8_t>& out, Status status,
                            std::uint64_t req_id, WireGroupId gid,
                            std::uint64_t commit_index);

/// kCommitEvent push (req_id 0, like kEvent). `trace` is the append's
/// v1.4 trace id (0 when the entry was not client-traced).
void encode_commit_event(std::vector<std::uint8_t>& out, WireGroupId gid,
                         std::uint64_t index, std::uint64_t value,
                         std::uint64_t trace = 0);

/// kRegHello request (node = the dialling node's id) or response
/// (status + the answering node's id).
void encode_reg_hello(std::vector<std::uint8_t>& out, Status status,
                      std::uint64_t req_id, std::uint32_t node);

/// kRegPush one-way frame; `cells` must hold at most kMaxPushCells.
void encode_reg_push(std::vector<std::uint8_t>& out, WireGroupId gid,
                     std::uint64_t seq,
                     const RegCellUpdate* cells, std::uint32_t count);

/// kRegAck one-way frame.
void encode_reg_ack(std::vector<std::uint8_t>& out, std::uint64_t seq);

/// kSessionOpen request (client) / response (ttl_us) — same layout.
void encode_session_open(std::vector<std::uint8_t>& out, Status status,
                         std::uint64_t req_id, WireGroupId gid,
                         std::uint64_t client_or_ttl);

/// kMetrics request (v1.3).
void encode_metrics_request(std::vector<std::uint8_t>& out,
                            std::uint64_t req_id,
                            const MetricsReqBody& body);

/// kMetrics response page; the caller sizes the page with
/// metrics_record_wire_size so the frame stays inside kMaxPayloadBytes.
void encode_metrics_response(std::vector<std::uint8_t>& out, Status status,
                             std::uint64_t req_id,
                             const MetricsRespBody& body);

/// kTraceDump request (v1.4).
void encode_trace_dump_request(std::vector<std::uint8_t>& out,
                               std::uint64_t req_id,
                               const TraceDumpReqBody& body);

/// kTraceDump response page; records are fixed-size, so the caller caps
/// the page at (kMaxPayloadBytes - kHeaderBytes - 20) / 45 records.
void encode_trace_dump_response(std::vector<std::uint8_t>& out,
                                Status status, std::uint64_t req_id,
                                const TraceDumpRespBody& body);

/// kHealth response (v1.5). Rule names and reasons longer than 255
/// bytes are truncated on encode; the frame must stay inside
/// kMaxPayloadBytes (the rule set is small by construction).
void encode_health_response(std::vector<std::uint8_t>& out, Status status,
                            std::uint64_t req_id,
                            const HealthRespBody& body);

/// kMetricsWatch response (v1.5).
void encode_metrics_watch_response(std::vector<std::uint8_t>& out,
                                   Status status, std::uint64_t req_id,
                                   std::uint32_t period_ms);

/// kMetricsEvent push (req_id 0, v1.5); the caller sizes the page with
/// metrics_record_wire_size so the frame stays inside kMaxPayloadBytes.
void encode_metrics_event(std::vector<std::uint8_t>& out,
                          const MetricsEventBody& body);

/// kRead request (v1.6).
void encode_read_request(std::vector<std::uint8_t>& out, std::uint64_t req_id,
                         const ReadReqBody& body);

/// kRead response (v1.6); the body is emitted in full (44 bytes) for
/// every status so the role-based length rule stays single-valued.
void encode_read_response(std::vector<std::uint8_t>& out, Status status,
                          std::uint64_t req_id, const ReadRespBody& body);

// --- decoding --------------------------------------------------------------

enum class DecodeResult {
  kOk,
  kBadMagic,     ///< wrong magic or version byte
  kBadLength,    ///< payload shorter than the fixed header
  kBadBody,      ///< body too short for the declared type
};

/// Decodes one payload (the bytes after the length prefix) into `out`.
/// Trailing bytes beyond the recognized body are ignored (forward
/// compatibility); unknown types decode with has_body=false so the server
/// can answer kUnsupported instead of dropping the connection.
DecodeResult decode_payload(const std::uint8_t* data, std::size_t len,
                            Frame& out);

/// Incremental stream reassembler: feed() raw TCP bytes, then drain
/// complete payloads with next(). Rejects oversized length prefixes.
class FrameDecoder {
 public:
  /// Appends raw bytes from the stream.
  void feed(const std::uint8_t* data, std::size_t len);

  /// If a complete frame is buffered, sets `payload`/`len` to its payload
  /// bytes (valid until the next feed()/next() call) and returns true.
  /// Returns false when more bytes are needed.
  bool next(const std::uint8_t*& payload, std::size_t& len);

  /// True once a length prefix exceeded kMaxPayloadBytes; the stream is
  /// unrecoverable and the connection must be closed.
  bool corrupt() const noexcept { return corrupt_; }

  std::size_t buffered() const noexcept { return buf_.size() - pos_; }

 private:
  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;  ///< consumed prefix of buf_
  bool corrupt_ = false;
};

}  // namespace omega::net
