// Pure lease/read-wait state machines of the linearizable-read path
// (no clocks, no threads — LogGroup drives them with its own time
// source, unit tests with a scripted one).
//
// LeaseState — the epoch-fenced leader lease. A holder extends the lease
// by sending heartbeats through the mirror push stream and counting a
// quorum of acks: a heartbeat *sent* at t and quorum-confirmed extends
// validity to t + ttl - skew (the skew bound pays for the peers' clocks
// drifting while they promise not to grant a competing lease). Validity
// is fenced three ways:
//   * epoch — any change of the group's agreed view drops the lease
//     instantly (before a competing leader can acquire one at the new
//     epoch);
//   * ack staleness — a deposed or partitioned holder stops getting
//     quorum confirmations, so lease_until stops advancing and the lease
//     times out within ttl;
//   * acquire floor — a NEW holder must wait out the previous holder's
//     maximal validity (last observed foreign heartbeat + ttl + skew)
//     before its own lease can become valid, so two holders never
//     overlap even across the election window.
// A skew bound >= ttl makes every extension non-positive: the lease can
// never become valid (the refusal the config demands — better no fast
// path than a clock-dependent unsafe one).
//
// ReadWaiters — parked follower read-index waiters. A follower read that
// arrives with a fence above the local applied index parks here and is
// woken in ASCENDING fence order once apply progress covers it (so
// responses fire oldest-fence-first), or expired wholesale at its
// deadline. Not thread-safe: the owner wraps it in its own lock.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <vector>

namespace omega::smr {

class LeaseState {
 public:
  LeaseState(std::int64_t ttl_us, std::int64_t skew_us)
      : ttl_us_(ttl_us), skew_us_(skew_us) {}

  std::int64_t ttl_us() const noexcept { return ttl_us_; }
  std::int64_t skew_us() const noexcept { return skew_us_; }

  /// The fenced epoch changed. Drops any current validity; returns true
  /// if a then-valid lease was dropped (the obs counter's edge).
  bool on_epoch_change(std::uint64_t epoch, std::int64_t now_us) {
    if (epoch == epoch_) return false;
    epoch_ = epoch;
    const bool was_valid = valid(now_us);
    lease_until_us_ = 0;
    return was_valid;
  }

  /// A heartbeat sent at `t_send_us` was quorum-confirmed. Extends the
  /// lease to t_send + ttl - skew. With skew >= ttl the extension would
  /// land at or before its own send time — an interval that can only be
  /// "valid" in the past — so it is refused outright and the lease stays
  /// invalid at every clock value, not just values past t_send.
  void on_heartbeat_confirmed(std::int64_t t_send_us) {
    if (skew_us_ >= ttl_us_) return;
    lease_until_us_ = std::max(lease_until_us_, t_send_us + ttl_us_ - skew_us_);
  }

  /// A foreign holder's heartbeat was observed to change at `now_us`:
  /// this node may not hold a valid lease until the foreign one has
  /// provably expired (its maximal reach plus the skew bound).
  void on_foreign_heartbeat(std::int64_t now_us) {
    not_before_us_ = std::max(not_before_us_, now_us + ttl_us_ + skew_us_);
  }

  /// Epoch-fenced, time-bounded validity at `now_us` for epoch `epoch`.
  bool valid_at_epoch(std::uint64_t epoch, std::int64_t now_us) const {
    return epoch == epoch_ && valid(now_us);
  }

  bool valid(std::int64_t now_us) const {
    return now_us >= not_before_us_ && now_us < lease_until_us_;
  }

  std::uint64_t epoch() const noexcept { return epoch_; }
  std::int64_t lease_until_us() const noexcept { return lease_until_us_; }
  std::int64_t not_before_us() const noexcept { return not_before_us_; }

 private:
  std::int64_t ttl_us_;
  std::int64_t skew_us_;
  std::uint64_t epoch_ = 0;
  std::int64_t lease_until_us_ = 0;  ///< 0 = no confirmed heartbeat yet
  std::int64_t not_before_us_ = 0;   ///< foreign-holder acquire floor
};

class ReadWaiters {
 public:
  /// `passed` tells the waiter whether its fence was reached (true) or
  /// its deadline expired first (false).
  using Fire = std::function<void(bool passed)>;

  void park(std::uint64_t fence, std::int64_t deadline_us, Fire fire) {
    waiters_.push_back(Waiter{fence, deadline_us, std::move(fire)});
    std::push_heap(waiters_.begin(), waiters_.end(), ByFenceDesc{});
  }

  /// Collects (ascending fence order) every waiter whose fence is covered
  /// by `applied`. The caller invokes the collected closures with `true`
  /// outside its lock.
  std::size_t wake(std::uint64_t applied, std::vector<Fire>& out) {
    std::size_t n = 0;
    while (!waiters_.empty() && waiters_.front().fence <= applied) {
      std::pop_heap(waiters_.begin(), waiters_.end(), ByFenceDesc{});
      out.push_back(std::move(waiters_.back().fire));
      waiters_.pop_back();
      ++n;
    }
    return n;
  }

  /// Collects every waiter whose deadline has passed (fence order is not
  /// meaningful for expiries). The caller invokes them with `false`.
  std::size_t expire(std::int64_t now_us, std::vector<Fire>& out) {
    std::size_t n = 0;
    for (std::size_t i = 0; i < waiters_.size();) {
      if (waiters_[i].deadline_us <= now_us) {
        out.push_back(std::move(waiters_[i].fire));
        waiters_[i] = std::move(waiters_.back());
        waiters_.pop_back();
        ++n;
      } else {
        ++i;
      }
    }
    if (n > 0) std::make_heap(waiters_.begin(), waiters_.end(), ByFenceDesc{});
    return n;
  }

  std::size_t size() const noexcept { return waiters_.size(); }
  bool empty() const noexcept { return waiters_.empty(); }

 private:
  struct Waiter {
    std::uint64_t fence = 0;
    std::int64_t deadline_us = 0;
    Fire fire;
  };
  /// Min-heap on fence (std heap helpers build max-heaps, so the
  /// comparator is reversed).
  struct ByFenceDesc {
    bool operator()(const Waiter& a, const Waiter& b) const {
      return a.fence > b.fence;
    }
  };
  std::vector<Waiter> waiters_;
};

}  // namespace omega::smr
