// LogGroup: one live replicated-log group — a ReplicatedLog bound to the
// real rt::AtomicMemory of an svc election group, pumped incrementally on
// the group's owning shard worker.
//
// This is the paper's headline application running on the live runtime:
// the Ω instance the group already runs for leader election *is* the
// oracle the log's proposers consult (LeaderQueryOp answers come from the
// co-located election), so the elected leader drives consensus slots to
// decision while followers forward — exactly the SimDriver construction of
// consensus/replicated_log.h, now serving real clients.
//
// Batching (SmrSpec::max_batch > 1): each consensus slot decides a batch
// descriptor instead of a single command — the sweep drains up to
// max_batch queued commands into the group's shared BatchBuffer ring (a
// spill region declared next to the log's slot registers), seals the
// batch, and the slot's proposers agree on (count, checksum). Commits
// apply and acknowledge the whole batch in FIFO order with one queue lock
// and one commit-hook invocation. max_batch == 1 (the default) keeps the
// unbatched pump byte-for-byte, including the layout.
//
// Wiring (done by SmrService): the LogGroup is handed to the svc registry
// as GroupSpec{extra_registers = declare(), pump = this}; the Group
// constructor calls attach() to bind the log against the built layout, and
// every worker sweep calls on_sweep() to run one LogPump tick — harvest
// decided slots, apply them to the in-memory state machine, fire client
// completions and the commit hook, refill the proposer window from the
// CommandQueue, reap finished proposer frames, and expire idle dedup
// sessions.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <vector>

#include "consensus/log_pump.h"
#include "smr/command_queue.h"
#include "svc/group_registry.h"

namespace omega::smr {

/// Per-log instantiation parameters.
struct SmrSpec {
  AlgoKind algo = AlgoKind::kWriteEfficient;
  std::uint32_t n = 3;          ///< replicas
  std::uint32_t capacity = 1024;  ///< consensus slots (hard log length)
  std::uint32_t window = 16;      ///< pipelined in-flight slots
  std::size_t max_pending = 4096; ///< CommandQueue intake bound
  /// Commands decided per consensus slot (1..kMaxBatchCommands). 1 keeps
  /// the classic one-command-per-slot pump (and its exact layout); larger
  /// values group-commit: same slot rate, max_batch× the append rate.
  std::uint32_t max_batch = 1;
  /// Dedup-session expiry for idle clients (0 = keep forever). See
  /// command_queue.h for the retry-window tradeoff.
  std::int64_t session_ttl_us = 0;
};

/// Invoked on the owning worker once per applied batch, right after the
/// batch's own append completions fired: entries `values[i]` / `recs[i]`
/// were applied at index `first_index + i`. Same contract as
/// svc::EpochListener: cheap, non-blocking, hand anything heavier to
/// another thread.
using CommitHook = std::function<void(
    std::uint64_t first_index, const std::vector<std::uint64_t>& values,
    const std::vector<CommandQueue::CommitRecord>& recs)>;

class LogGroup final : public svc::GroupPump {
 public:
  LogGroup(svc::GroupId gid, const SmrSpec& spec, CommitHook hook);

  svc::GroupId gid() const noexcept { return gid_; }
  const SmrSpec& spec() const noexcept { return spec_; }
  CommandQueue& queue() noexcept { return queue_; }

  /// LayoutExtension body for GroupSpec::extra_registers.
  void declare(LayoutBuilder& b) {
    log_.declare(b);
    if (batch_.has_value()) batch_->declare(b);
  }

  // --- svc::GroupPump ------------------------------------------------------

  void attach(svc::Group& g) override;
  void on_sweep(svc::Group& g, std::int64_t now_us) override;

  // --- read side (any thread) ----------------------------------------------

  /// Number of applied entries (the log index space is [0, commit_index)).
  std::uint64_t commit_index() const noexcept {
    return commit_index_.load(std::memory_order_acquire);
  }

  /// True once every slot has been assigned commands; new submissions are
  /// rejected with kLogFull upstream.
  bool log_full() const noexcept {
    return log_full_.load(std::memory_order_acquire);
  }

  struct Snapshot {
    std::uint64_t commit_index = 0;
    std::vector<std::uint64_t> entries;  ///< [from, from + entries.size())
  };

  /// Copies up to `max` applied entries starting at `from`.
  void read(std::uint64_t from, std::uint32_t max, Snapshot& out) const;

  /// Replica `pid`'s own decision-board entry for `slot` (agreement
  /// checking in tests; uninstrumented peeks). With batching the decided
  /// value is the batch descriptor, not a command.
  std::optional<std::uint64_t> decided_by(ProcessId pid,
                                          std::uint32_t slot) const;

  /// Tears the queue down (fires kAborted for everything still waiting).
  void abort(AppendOutcome outcome = AppendOutcome::kAborted);

  /// Detaches the commit hook — a barrier: on return, no in-flight
  /// invocation is still running. The owning SmrService calls this before
  /// it dies, because the svc Group (which outlives it via
  /// GroupSpec::pump) would otherwise keep firing the hook into a freed
  /// service on later sweeps.
  void clear_hook();

 private:
  /// PumpHost over the group's executors (owner-thread calls only).
  class ExecHost final : public PumpHost {
   public:
    std::uint32_t n() const override { return g_->spec.n; }
    bool live(ProcessId i) const override { return !g_->execs[i]->crashed(); }
    void spawn(ProcessId i, ProcTask task) override {
      g_->execs[i]->add_app_task(std::move(task));
    }
    MemoryBackend& memory() override { return *g_->inst.memory; }

    svc::Group* g_ = nullptr;
  };

  /// BatchSource over the command queue (owner-thread calls only).
  class QueueSource final : public BatchSource {
   public:
    explicit QueueSource(CommandQueue& q) : q_(q) {}
    std::uint32_t pull(std::uint32_t max,
                       std::vector<std::uint64_t>& out) override {
      return q_.pull_batch(max, out);
    }

   private:
    CommandQueue& q_;
  };

  const svc::GroupId gid_;
  const SmrSpec spec_;
  ReplicatedLog log_;
  std::optional<BatchBuffer> batch_;  ///< engaged iff max_batch > 1
  CommandQueue queue_;
  QueueSource source_;
  /// Reader/writer split as in GroupRegistry's listener seam: on_sweep
  /// holds the shared side across the call, clear_hook's unique lock
  /// doubles as a completion barrier.
  mutable std::shared_mutex hook_mu_;
  CommitHook hook_;

  ExecHost host_;
  std::unique_ptr<LogPump> pump_;  ///< created at attach()
  std::vector<LogPump::Commit> scratch_;  ///< per-sweep commit buffer
  std::vector<std::uint64_t> values_;     ///< per-sweep applied values
  std::vector<CommandQueue::CommitRecord> recs_;  ///< per-sweep records

  mutable std::mutex applied_mu_;
  std::vector<std::uint64_t> applied_;
  std::atomic<std::uint64_t> commit_index_{0};
  std::atomic<bool> log_full_{false};
};

}  // namespace omega::smr
