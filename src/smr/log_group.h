// LogGroup: one live replicated-log group — a ReplicatedLog bound to the
// real register backend of an svc election group, pumped incrementally on
// the group's owning shard worker.
//
// This is the paper's headline application running on the live runtime:
// the Ω instance the group already runs for leader election *is* the
// oracle the log's proposers consult (LeaderQueryOp answers come from the
// co-located election), so the elected leader drives consensus slots to
// decision while followers forward — exactly the SimDriver construction of
// consensus/replicated_log.h, now serving real clients.
//
// Batching (SmrSpec::max_batch > 1): each consensus slot decides a batch
// descriptor instead of a single command — the sweep drains up to
// max_batch queued commands into the group's shared BatchBuffer ring (a
// spill region declared next to the log's slot registers), seals the
// batch, and the slot's proposers agree on (count, sealer). Commits
// apply and acknowledge the whole batch in FIFO order with one queue lock
// and one commit-hook invocation. max_batch == 1 (the default) keeps the
// unbatched pump byte-for-byte, including the layout.
//
// Multi-node deployment (SmrSpec::local_mask): replicas of the group are
// split across OS processes over pushed register mirrors
// (registers/mirror.h + net/register_peer.h). Each process's LogGroup
// pumps only its local replicas:
//   * the node hosting the elected leader *seals* — it drains its own
//     CommandQueue into spill rows (ticketed owned batches, so
//     acknowledgements survive failover re-proposals) and proposes;
//   * follower nodes pump in observer mode — they harvest slots decided
//     elsewhere (values arrive through the mirror) and apply them to
//     their own copy of the state machine, so READ_LOG and COMMIT_WATCH
//     are served identically on every node; their intake stays gated
//     (the net front-end answers kNotLeader with the leader hint);
//   * across a failover, batches the dead leader sealed are adopted and
//     re-pushed by the new leader, and batches the new leader sealed
//     that lost their slot are re-proposed exactly once (see
//     consensus/log_pump.h for the ledger mechanics);
//   * sealing is flow-controlled by the mirror transport: when a
//     connected peer's unacked push backlog exceeds max_unacked_push,
//     the pump stops sealing new batches so no mirror can lag past the
//     spill ring.
// Dedup sessions remain node-local: a client whose command committed
// under a leader that then died can observe a duplicate if it retries
// against the new leader (the classic async-replication window; closing
// it means writing session state through the log itself — future work).
//
// Wiring (done by SmrService): the LogGroup is handed to the svc registry
// as GroupSpec{extra_registers = declare(), pump = this}; the Group
// constructor calls attach() to bind the log against the built layout, and
// every worker sweep calls on_sweep() to run one LogPump tick — harvest
// decided slots, apply them to the in-memory state machine, fire client
// completions and the commit hook, refill the proposer window from the
// CommandQueue, reap finished proposer frames, and expire idle dedup
// sessions.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <vector>

#include "consensus/log_pump.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "smr/command_queue.h"
#include "svc/group_registry.h"
#include "wal/wal.h"

namespace omega::smr {

/// Registers the replication layer's health rules against the black-box
/// time series: commit-progress stall (queued work with a flat commit
/// counter), mirror push-lag p99, session-eviction spikes, the
/// mirror-stall watchdog, and the WAL stall/IO-error rule. All rules read
/// metrics this layer only emits once a log group (or WAL) exists, so
/// they stay kOk on election-only nodes.
void register_health_rules(obs::HealthMonitor& hm);

/// Per-log instantiation parameters.
struct SmrSpec {
  AlgoKind algo = AlgoKind::kWriteEfficient;
  std::uint32_t n = 3;          ///< replicas
  std::uint32_t capacity = 1024;  ///< consensus slots (hard log length)
  std::uint32_t window = 16;      ///< pipelined in-flight slots
  std::size_t max_pending = 4096; ///< CommandQueue intake bound
  /// Commands decided per consensus slot (1..kMaxBatchCommands). 1 keeps
  /// the classic one-command-per-slot pump (and its exact layout); larger
  /// values group-commit: same slot rate, max_batch× the append rate.
  std::uint32_t max_batch = 1;
  /// Dedup-session expiry for idle clients (0 = keep forever). See
  /// command_queue.h for the retry-window tradeoff.
  std::int64_t session_ttl_us = 0;
  /// Replicas hosted by THIS process (bit p). 0 = all local (the
  /// single-process deployment). Must agree with the svc GroupSpec the
  /// log is registered under (SmrService forwards it).
  std::uint64_t local_mask = 0;
  /// Storage override forwarded to the svc group (the multi-node runtime
  /// installs a MirroredMemory factory wired to the push transport).
  MemoryFactory memory_factory{};
  /// Flow-control probe: current deepest unacked push backlog (frames)
  /// over connected mirror peers — net::MirrorTransport::
  /// max_unacked_frames. Empty = no flow control (single-process).
  std::function<std::uint64_t()> mirror_backlog{};
  /// Sealing stalls while mirror_backlog() exceeds this.
  std::uint64_t max_unacked_push = 128;
  /// Self-healing hook: invoked when a decided slot's payload has not
  /// become readable for mirror_stall_resync_us (a wedged stream), to
  /// make the transport rebuild its streams with fresh snapshots —
  /// net::MirrorTransport::force_resync. Empty = wait indefinitely.
  std::function<void()> mirror_resync{};
  std::int64_t mirror_stall_resync_us = 2000000;
  /// Extra spill-ring rows beyond the window in multi-node mode: the
  /// slack a lagging mirror may trail the sealer by before the
  /// flow-control stall kicks in.
  std::uint32_t ring_slack = 64;

  // --- durability (PR 9) ---------------------------------------------------

  /// Per-node write-ahead log. When set, every durable-floor register
  /// write of this group (slot ballots, decision boards, spill rows,
  /// seals) and every applied batch is journaled; must be started by the
  /// owner (SmrNode) and outlive the group.
  wal::Wal* wal = nullptr;
  /// Crash-restart image replayed from the WAL: preseeds the applied log
  /// and fast-forwards the pump past the recovered prefix at attach().
  std::shared_ptr<const wal::GroupImage> recovery{};
  /// Majority-acked commits: hold each append's acknowledgement until
  /// (a) the local WAL has fsynced the batch's records and (b) a quorum
  /// of replicas — local ones plus remote ones whose node's cumulative
  /// mirror ack covers the sealed batch — has it. Requires `wal`.
  /// Single-process (all replicas local) this degenerates to
  /// fsync-gated acknowledgements.
  bool quorum_ack = false;
  /// Mirror write watermark at "now" (net::MirrorTransport::write_seq);
  /// read after a batch is applied, it names a point covering all of the
  /// batch's register writes. Empty in single-process deployments.
  std::function<std::uint64_t()> mirror_write_seq{};
  /// Replica votes of REMOTE nodes whose cumulative ack watermark covers
  /// `mark` (each vote = one replica hosted by an acked node; the
  /// SmrNode wiring weighs nodes by their replica count). Empty = no
  /// remote votes ever.
  std::function<std::uint32_t(std::uint64_t)> mirror_acked_votes{};

  bool is_local(ProcessId p) const noexcept {
    return local_mask_covers(local_mask, p);
  }
};

/// Invoked on the owning worker once per applied batch, right after the
/// batch's own append completions fired: entries `values[i]` / `recs[i]`
/// were applied at index `first_index + i`. Same contract as
/// svc::EpochListener: cheap, non-blocking, hand anything heavier to
/// another thread. For entries committed by a remote node's pump, `recs`
/// carries {0, 0, command, trace} — the (client, seq) bookkeeping lives
/// with the sealer, but the trace id travels through the spill ring so
/// follower-side commit events still name the originating append.
using CommitHook = std::function<void(
    std::uint64_t first_index, const std::vector<std::uint64_t>& values,
    const std::vector<CommandQueue::CommitRecord>& recs)>;

class LogGroup final : public svc::GroupPump {
 public:
  LogGroup(svc::GroupId gid, const SmrSpec& spec, CommitHook hook);
  ~LogGroup();

  svc::GroupId gid() const noexcept { return gid_; }
  const SmrSpec& spec() const noexcept { return spec_; }
  CommandQueue& queue() noexcept { return queue_; }

  /// True iff replica `pid` executes in this process.
  bool hosts(ProcessId pid) const noexcept { return spec_.is_local(pid); }
  bool multi_node() const noexcept { return multi_node_; }

  /// LayoutExtension body for GroupSpec::extra_registers.
  void declare(LayoutBuilder& b) {
    log_.declare(b);
    if (batch_.has_value()) batch_->declare(b);
  }

  // --- svc::GroupPump ------------------------------------------------------

  void attach(svc::Group& g) override;
  bool on_sweep(svc::Group& g, std::int64_t now_us) override;

  // --- read side (any thread) ----------------------------------------------

  /// Number of applied entries (the log index space is [0, commit_index)).
  std::uint64_t commit_index() const noexcept {
    return commit_index_.load(std::memory_order_acquire);
  }

  /// True once every slot has been assigned commands; new submissions are
  /// rejected with kLogFull upstream.
  bool log_full() const noexcept {
    return log_full_.load(std::memory_order_acquire);
  }

  struct Snapshot {
    std::uint64_t commit_index = 0;
    std::vector<std::uint64_t> entries;  ///< [from, from + entries.size())
  };

  /// Copies up to `max` applied entries starting at `from`.
  void read(std::uint64_t from, std::uint32_t max, Snapshot& out) const;

  /// Replica `pid`'s own decision-board entry for `slot` (agreement
  /// checking in tests; uninstrumented peeks). With batching the decided
  /// value is the batch descriptor, not a command.
  std::optional<std::uint64_t> decided_by(ProcessId pid,
                                          std::uint32_t slot) const;

  /// Tears the queue down (fires `outcome` for everything still waiting).
  /// Deferred quorum_ack completions fire kCommitted regardless: their
  /// entries ARE applied — reporting kAborted would provoke a retry of a
  /// committed command.
  void abort(AppendOutcome outcome = AppendOutcome::kAborted);

  /// Detaches the commit hook — a barrier: on return, no in-flight
  /// invocation is still running. The owning SmrService calls this before
  /// it dies, because the svc Group (which outlives it via
  /// GroupSpec::pump) would otherwise keep firing the hook into a freed
  /// service on later sweeps.
  void clear_hook();

 private:
  /// PumpHost over the group's executors (owner-thread calls only).
  /// live() is false for replicas hosted on other nodes, so proposers
  /// only spawn on local execution streams.
  class ExecHost final : public PumpHost {
   public:
    std::uint32_t n() const override { return g_->spec.n; }
    bool live(ProcessId i) const override {
      return g_->execs[i] != nullptr && !g_->execs[i]->crashed();
    }
    void spawn(ProcessId i, ProcTask task) override {
      g_->execs[i]->add_app_task(std::move(task));
    }
    MemoryBackend& memory() override { return *g_->inst.memory; }

    svc::Group* g_ = nullptr;
  };

  /// BatchSource over the command queue. Single-process: plain FIFO
  /// pull (ticket 0, commits pop in order). Multi-node: ticketed owned
  /// batches, gated on local leadership and mirror flow control.
  class QueueSource final : public BatchSource {
   public:
    explicit QueueSource(LogGroup& lg) : lg_(lg) {}
    std::uint32_t pull(std::uint32_t max, std::vector<std::uint64_t>& out,
                       std::uint64_t& ticket,
                       std::vector<std::uint64_t>& traces) override {
      if (!lg_.multi_node_) {
        ticket = 0;
        return lg_.queue_.pull_batch(max, out, &traces);
      }
      if (!lg_.seal_ok_) return 0;
      return lg_.queue_.pull_batch_owned(max, out, ticket, &traces);
    }

   private:
    LogGroup& lg_;
  };

  /// Applies a sweep's harvest in multi-node mode: local (ticketed) runs
  /// acknowledge their owned batches, remote runs apply silently. With
  /// `defer` non-null, local completions are collected there instead of
  /// fired (quorum_ack).
  void apply_commits_multi(std::uint64_t first,
                           CommandQueue::DeferredFire* defer);

  /// Fires every deferred batch whose WAL records are durable and whose
  /// write mark a quorum covers (owner thread; FIFO, so acks stay in
  /// commit order).
  void release_deferred();

  const svc::GroupId gid_;
  const SmrSpec spec_;
  const bool multi_node_;
  const ProcessId sealer_;  ///< lowest local replica: this node's bank
  ReplicatedLog log_;
  std::optional<BatchBuffer> batch_;  ///< engaged iff max_batch > 1
  CommandQueue queue_;
  QueueSource source_;
  bool seal_ok_ = true;       ///< per-sweep: may pull fresh batches
  bool leader_local_ = true;  ///< per-sweep: elected leader lives here
  /// Payload-stall watchdog (multi-node): when the pump reports stalls
  /// without commit progress for too long, fire the resync hook.
  std::uint64_t stall_marker_ = 0;   ///< payload_stalls at last progress
  std::int64_t stall_since_us_ = 0;  ///< 0 = not currently stalled
  /// Reader/writer split as in GroupRegistry's listener seam: on_sweep
  /// holds the shared side across the call, clear_hook's unique lock
  /// doubles as a completion barrier.
  mutable std::shared_mutex hook_mu_;
  CommitHook hook_;

  ExecHost host_;
  std::unique_ptr<LogPump> pump_;  ///< created at attach()
  std::vector<LogPump::Commit> scratch_;  ///< per-sweep commit buffer
  std::vector<std::uint64_t> values_;     ///< per-sweep applied values
  std::vector<CommandQueue::CommitRecord> recs_;  ///< per-sweep records

  mutable std::mutex applied_mu_;
  std::vector<std::uint64_t> applied_;
  std::atomic<std::uint64_t> commit_index_{0};
  std::atomic<bool> log_full_{false};

  /// quorum_ack deferral: one entry per applied batch whose client
  /// completions are held back. Owner thread pushes/releases; abort()
  /// (any thread) drains — hence the mutex.
  struct DeferredBatch {
    std::uint64_t wal_seq = 0;     ///< local durability gate
    std::uint64_t write_mark = 0;  ///< mirror coverage gate
    CommandQueue::DeferredFire fire;
  };
  std::mutex deferred_mu_;
  std::deque<DeferredBatch> deferred_;
  const std::uint32_t local_votes_;   ///< replicas hosted by this process
  std::uint32_t durable_floor_ = wal::kNoDurableFloor;
  CommandQueue::DeferredFire fire_scratch_;  ///< per-sweep deferred fires

  /// obs wiring: decide -> apply latency (resolved once), queue-depth
  /// gauges (registered per group, summed by name at scrape), and the
  /// failover/eviction trace state.
  obs::Histogram* apply_hist_ = nullptr;  ///< smr.decide_to_apply_ns
  obs::Counter* commits_ctr_ = nullptr;   ///< smr.commits
  obs::Counter* watchdog_ctr_ = nullptr;  ///< smr.watchdog_fires
  std::vector<std::uint64_t> gauge_ids_;
  std::uint64_t last_evicted_ = 0;  ///< sessions_evicted at last sweep
  /// Last agreed leader that was NOT local (kNoProcess until one is
  /// seen): a false -> true leader_local_ edge after one existed is a
  /// failover onto this node, worth a flight-recorder dump.
  ProcessId last_remote_leader_ = kNoProcess;
  bool was_leader_local_ = false;
};

}  // namespace omega::smr
