// LogGroup: one live replicated-log group — a ReplicatedLog bound to the
// real register backend of an svc election group, pumped incrementally on
// the group's owning shard worker.
//
// This is the paper's headline application running on the live runtime:
// the Ω instance the group already runs for leader election *is* the
// oracle the log's proposers consult (LeaderQueryOp answers come from the
// co-located election), so the elected leader drives consensus slots to
// decision while followers forward — exactly the SimDriver construction of
// consensus/replicated_log.h, now serving real clients.
//
// Batching (SmrSpec::max_batch > 1): each consensus slot decides a batch
// descriptor instead of a single command — the sweep drains up to
// max_batch queued commands into the group's shared BatchBuffer ring (a
// spill region declared next to the log's slot registers), seals the
// batch, and the slot's proposers agree on (count, sealer). Commits
// apply and acknowledge the whole batch in FIFO order with one queue lock
// and one commit-hook invocation. max_batch == 1 (the default) keeps the
// unbatched pump byte-for-byte, including the layout.
//
// Multi-node deployment (SmrSpec::local_mask): replicas of the group are
// split across OS processes over pushed register mirrors
// (registers/mirror.h + net/register_peer.h). Each process's LogGroup
// pumps only its local replicas:
//   * the node hosting the elected leader *seals* — it drains its own
//     CommandQueue into spill rows (ticketed owned batches, so
//     acknowledgements survive failover re-proposals) and proposes;
//   * follower nodes pump in observer mode — they harvest slots decided
//     elsewhere (values arrive through the mirror) and apply them to
//     their own copy of the state machine, so READ_LOG and COMMIT_WATCH
//     are served identically on every node; their intake stays gated
//     (the net front-end answers kNotLeader with the leader hint);
//   * across a failover, batches the dead leader sealed are adopted and
//     re-pushed by the new leader, and batches the new leader sealed
//     that lost their slot are re-proposed exactly once (see
//     consensus/log_pump.h for the ledger mechanics);
//   * sealing is flow-controlled by the mirror transport: when a
//     connected peer's unacked push backlog exceeds max_unacked_push,
//     the pump stops sealing new batches so no mirror can lag past the
//     spill ring.
// Dedup sessions remain node-local: a client whose command committed
// under a leader that then died can observe a duplicate if it retries
// against the new leader (the classic async-replication window; closing
// it means writing session state through the log itself — future work).
//
// Wiring (done by SmrService): the LogGroup is handed to the svc registry
// as GroupSpec{extra_registers = declare(), pump = this}; the Group
// constructor calls attach() to bind the log against the built layout, and
// every worker sweep calls on_sweep() to run one LogPump tick — harvest
// decided slots, apply them to the in-memory state machine, fire client
// completions and the commit hook, refill the proposer window from the
// CommandQueue, reap finished proposer frames, and expire idle dedup
// sessions.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <vector>

#include "consensus/log_pump.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "smr/command_queue.h"
#include "smr/lease.h"
#include "svc/group_registry.h"
#include "wal/wal.h"

namespace omega::smr {

/// Registers the replication layer's health rules against the black-box
/// time series: commit-progress stall (queued work with a flat commit
/// counter), mirror push-lag p99, session-eviction spikes, the
/// mirror-stall watchdog, and the WAL stall/IO-error rule. All rules read
/// metrics this layer only emits once a log group (or WAL) exists, so
/// they stay kOk on election-only nodes.
void register_health_rules(obs::HealthMonitor& hm);

/// Per-log instantiation parameters.
struct SmrSpec {
  AlgoKind algo = AlgoKind::kWriteEfficient;
  std::uint32_t n = 3;          ///< replicas
  std::uint32_t capacity = 1024;  ///< consensus slots (hard log length)
  std::uint32_t window = 16;      ///< pipelined in-flight slots
  std::size_t max_pending = 4096; ///< CommandQueue intake bound
  /// Commands decided per consensus slot (1..kMaxBatchCommands). 1 keeps
  /// the classic one-command-per-slot pump (and its exact layout); larger
  /// values group-commit: same slot rate, max_batch× the append rate.
  std::uint32_t max_batch = 1;
  /// Dedup-session expiry for idle clients (0 = keep forever). See
  /// command_queue.h for the retry-window tradeoff.
  std::int64_t session_ttl_us = 0;
  /// Replicas hosted by THIS process (bit p). 0 = all local (the
  /// single-process deployment). Must agree with the svc GroupSpec the
  /// log is registered under (SmrService forwards it).
  std::uint64_t local_mask = 0;
  /// Storage override forwarded to the svc group (the multi-node runtime
  /// installs a MirroredMemory factory wired to the push transport).
  MemoryFactory memory_factory{};
  /// Flow-control probe: current deepest unacked push backlog (frames)
  /// over connected mirror peers — net::MirrorTransport::
  /// max_unacked_frames. Empty = no flow control (single-process).
  std::function<std::uint64_t()> mirror_backlog{};
  /// Sealing stalls while mirror_backlog() exceeds this.
  std::uint64_t max_unacked_push = 128;
  /// Self-healing hook: invoked when a decided slot's payload has not
  /// become readable for mirror_stall_resync_us (a wedged stream), to
  /// make the transport rebuild its streams with fresh snapshots —
  /// net::MirrorTransport::force_resync. Empty = wait indefinitely.
  std::function<void()> mirror_resync{};
  std::int64_t mirror_stall_resync_us = 2000000;
  /// Extra spill-ring rows beyond the window in multi-node mode: the
  /// slack a lagging mirror may trail the sealer by before the
  /// flow-control stall kicks in.
  std::uint32_t ring_slack = 64;

  // --- durability (PR 9) ---------------------------------------------------

  /// Per-node write-ahead log. When set, every durable-floor register
  /// write of this group (slot ballots, decision boards, spill rows,
  /// seals) and every applied batch is journaled; must be started by the
  /// owner (SmrNode) and outlive the group.
  wal::Wal* wal = nullptr;
  /// Crash-restart image replayed from the WAL: preseeds the applied log
  /// and fast-forwards the pump past the recovered prefix at attach().
  std::shared_ptr<const wal::GroupImage> recovery{};
  /// Majority-acked commits: hold each append's acknowledgement until
  /// (a) the local WAL has fsynced the batch's records and (b) a quorum
  /// of replicas — local ones plus remote ones whose node's cumulative
  /// mirror ack covers the sealed batch — has it. Requires `wal`.
  /// Single-process (all replicas local) this degenerates to
  /// fsync-gated acknowledgements.
  bool quorum_ack = false;
  /// Mirror write watermark at "now" (net::MirrorTransport::write_seq);
  /// read after a batch is applied, it names a point covering all of the
  /// batch's register writes. Empty in single-process deployments.
  std::function<std::uint64_t()> mirror_write_seq{};
  /// Replica votes of REMOTE nodes whose cumulative ack watermark covers
  /// `mark` (each vote = one replica hosted by an acked node; the
  /// SmrNode wiring weighs nodes by their replica count). Empty = no
  /// remote votes ever.
  std::function<std::uint32_t(std::uint64_t)> mirror_acked_votes{};

  // --- linearizable reads (PR 10) ------------------------------------------

  /// Leader-lease TTL: while the node hosting the agreed leader has a
  /// quorum-confirmed heartbeat younger than this (and the svc epoch is
  /// unchanged), point reads are answered on the IO thread from the
  /// applied-key index — no consensus, no owner-thread hop. 0 disables
  /// the lease (reads fall back to the leader slow path / follower
  /// read-index). See README "Linearizable reads" for the safety rule.
  std::int64_t lease_ttl_us = 0;
  /// Clock-skew bound paid on every lease extension: a heartbeat sent at
  /// t extends validity to t + lease_ttl_us - lease_skew_us. A bound >=
  /// the TTL refuses lease reads entirely (the safe configuration for
  /// unsynchronized clocks).
  std::int64_t lease_skew_us = 0;

  bool is_local(ProcessId p) const noexcept {
    return local_mask_covers(local_mask, p);
  }
};

/// Invoked on the owning worker once per applied batch, right after the
/// batch's own append completions fired: entries `values[i]` / `recs[i]`
/// were applied at index `first_index + i`. Same contract as
/// svc::EpochListener: cheap, non-blocking, hand anything heavier to
/// another thread. For entries committed by a remote node's pump, `recs`
/// carries {0, 0, command, trace} — the (client, seq) bookkeeping lives
/// with the sealer, but the trace id travels through the spill ring so
/// follower-side commit events still name the originating append.
using CommitHook = std::function<void(
    std::uint64_t first_index, const std::vector<std::uint64_t>& values,
    const std::vector<CommandQueue::CommitRecord>& recs)>;

class LogGroup final : public svc::GroupPump {
 public:
  LogGroup(svc::GroupId gid, const SmrSpec& spec, CommitHook hook);
  ~LogGroup();

  svc::GroupId gid() const noexcept { return gid_; }
  const SmrSpec& spec() const noexcept { return spec_; }
  CommandQueue& queue() noexcept { return queue_; }

  /// True iff replica `pid` executes in this process.
  bool hosts(ProcessId pid) const noexcept { return spec_.is_local(pid); }
  bool multi_node() const noexcept { return multi_node_; }

  /// LayoutExtension body for GroupSpec::extra_registers. The LEASE
  /// cells are declared BEFORE the log's slot registers so they sit
  /// below the WAL's durable floor (the first "L0REG" cell): they ride
  /// the mirror push stream like any register but are never journaled —
  /// lease state must die with the process, not survive a restart.
  void declare(LayoutBuilder& b) {
    b.add_array("LEASE", kLeaseCells, OwnerRule::kAny, /*critical=*/false);
    log_.declare(b);
    if (batch_.has_value()) batch_->declare(b);
  }

  // --- svc::GroupPump ------------------------------------------------------

  void attach(svc::Group& g) override;
  bool on_sweep(svc::Group& g, std::int64_t now_us) override;

  // --- read side (any thread) ----------------------------------------------

  /// Number of applied entries (the log index space is [0, commit_index)).
  std::uint64_t commit_index() const noexcept {
    return commit_index_.load(std::memory_order_acquire);
  }

  /// True once every slot has been assigned commands; new submissions are
  /// rejected with kLogFull upstream.
  bool log_full() const noexcept {
    return log_full_.load(std::memory_order_acquire);
  }

  struct Snapshot {
    std::uint64_t commit_index = 0;
    std::vector<std::uint64_t> entries;  ///< [from, from + entries.size())
  };

  /// Copies up to `max` applied entries starting at `from`.
  void read(std::uint64_t from, std::uint32_t max, Snapshot& out) const;

  // --- point reads (IO thread — the v1.6 fast path) ------------------------

  /// How a point read was (or will be) answered.
  enum class ReadMode : std::uint8_t {
    kLease,       ///< leader, epoch-fenced lease valid — linearizable
    kFallback,    ///< leader with leases DISABLED: plain committed read
    kRefused,     ///< leader with leases enabled but invalid right now —
                  ///< refuse with a NotLeader hint (a deposed leader's
                  ///< cached self-view must never answer with authority)
    kIndex,       ///< follower, local apply already past the fence
    kDefer,       ///< follower, parked until apply passes the fence
    kOverloaded,  ///< waiter budget exhausted; caller answers kOverloaded
  };

  struct ReadAnswer {
    std::uint64_t index = 0;         ///< applied position + 1; 0 = absent
    std::uint64_t commit_index = 0;  ///< local applied length
  };

  /// Deferred-read completion (kDefer): fired on the owning worker once
  /// the fence passes (`passed` = true) or the deadline expires (false),
  /// with the key's lookup at fire time.
  using ReadCompletion =
      std::function<void(bool passed, const ReadAnswer& answer)>;

  /// Point read of `key`'s latest applied position, decided against the
  /// caller's FRESH LeaderView (the IO thread loads it from the
  /// LeaderCache, so an epoch bump is visible here before the owner
  /// thread's next sweep). Fills `out` for every mode except kDefer /
  /// kOverloaded; kDefer parks `done`. Any thread.
  ReadMode read_point(std::uint64_t key, std::uint64_t min_index,
                      const svc::LeaderView& view, std::int64_t now_us,
                      ReadAnswer& out, ReadCompletion done);

  /// Whether the epoch-fenced lease is valid right now for `epoch` (the
  /// IO-thread check; also the dashboard/test probe).
  bool lease_valid(std::uint64_t epoch, std::int64_t now_us) const {
    return now_us < lease_until_pub_.load(std::memory_order_acquire) &&
           epoch == lease_epoch_pub_.load(std::memory_order_acquire);
  }

  /// Latest applied position of `key` plus one (0 = never applied), from
  /// the one-writer/many-reader applied-key index. Any thread.
  std::uint64_t lookup_key(std::uint64_t key) const {
    if (key >= kKeySpace) return 0;
    return applied_key_[key].load(std::memory_order_acquire);
  }

  /// Replica `pid`'s own decision-board entry for `slot` (agreement
  /// checking in tests; uninstrumented peeks). With batching the decided
  /// value is the batch descriptor, not a command.
  std::optional<std::uint64_t> decided_by(ProcessId pid,
                                          std::uint32_t slot) const;

  /// Tears the queue down (fires `outcome` for everything still waiting).
  /// Deferred quorum_ack completions fire kCommitted regardless: their
  /// entries ARE applied — reporting kAborted would provoke a retry of a
  /// committed command.
  void abort(AppendOutcome outcome = AppendOutcome::kAborted);

  /// Detaches the commit hook — a barrier: on return, no in-flight
  /// invocation is still running. The owning SmrService calls this before
  /// it dies, because the svc Group (which outlives it via
  /// GroupSpec::pump) would otherwise keep firing the hook into a freed
  /// service on later sweeps.
  void clear_hook();

 private:
  /// PumpHost over the group's executors (owner-thread calls only).
  /// live() is false for replicas hosted on other nodes, so proposers
  /// only spawn on local execution streams.
  class ExecHost final : public PumpHost {
   public:
    std::uint32_t n() const override { return g_->spec.n; }
    bool live(ProcessId i) const override {
      return g_->execs[i] != nullptr && !g_->execs[i]->crashed();
    }
    void spawn(ProcessId i, ProcTask task) override {
      g_->execs[i]->add_app_task(std::move(task));
    }
    MemoryBackend& memory() override { return *g_->inst.memory; }

    svc::Group* g_ = nullptr;
  };

  /// BatchSource over the command queue. Single-process: plain FIFO
  /// pull (ticket 0, commits pop in order). Multi-node: ticketed owned
  /// batches, gated on local leadership and mirror flow control.
  class QueueSource final : public BatchSource {
   public:
    explicit QueueSource(LogGroup& lg) : lg_(lg) {}
    std::uint32_t pull(std::uint32_t max, std::vector<std::uint64_t>& out,
                       std::uint64_t& ticket,
                       std::vector<std::uint64_t>& traces) override {
      if (!lg_.multi_node_) {
        ticket = 0;
        return lg_.queue_.pull_batch(max, out, &traces);
      }
      if (!lg_.seal_ok_) return 0;
      return lg_.queue_.pull_batch_owned(max, out, ticket, &traces);
    }

   private:
    LogGroup& lg_;
  };

  /// Applies a sweep's harvest in multi-node mode: local (ticketed) runs
  /// acknowledge their owned batches, remote runs apply silently. With
  /// `defer` non-null, local completions are collected there instead of
  /// fired (quorum_ack).
  void apply_commits_multi(std::uint64_t first,
                           CommandQueue::DeferredFire* defer);

  /// Fires every deferred batch whose WAL records are durable and whose
  /// write mark a quorum covers (owner thread; FIFO, so acks stay in
  /// commit order).
  void release_deferred();

  const svc::GroupId gid_;
  const SmrSpec spec_;
  const bool multi_node_;
  const ProcessId sealer_;  ///< lowest local replica: this node's bank
  ReplicatedLog log_;
  std::optional<BatchBuffer> batch_;  ///< engaged iff max_batch > 1
  CommandQueue queue_;
  QueueSource source_;
  bool seal_ok_ = true;       ///< per-sweep: may pull fresh batches
  bool leader_local_ = true;  ///< per-sweep: elected leader lives here
  /// Payload-stall watchdog (multi-node): when the pump reports stalls
  /// without commit progress for too long, fire the resync hook.
  std::uint64_t stall_marker_ = 0;   ///< payload_stalls at last progress
  std::int64_t stall_since_us_ = 0;  ///< 0 = not currently stalled
  /// Reader/writer split as in GroupRegistry's listener seam: on_sweep
  /// holds the shared side across the call, clear_hook's unique lock
  /// doubles as a completion barrier.
  mutable std::shared_mutex hook_mu_;
  CommitHook hook_;

  ExecHost host_;
  std::unique_ptr<LogPump> pump_;  ///< created at attach()
  std::vector<LogPump::Commit> scratch_;  ///< per-sweep commit buffer
  std::vector<std::uint64_t> values_;     ///< per-sweep applied values
  std::vector<CommandQueue::CommitRecord> recs_;  ///< per-sweep records

  mutable std::mutex applied_mu_;
  std::vector<std::uint64_t> applied_;
  std::atomic<std::uint64_t> commit_index_{0};
  std::atomic<bool> log_full_{false};

  // --- linearizable reads (PR 10) ------------------------------------------

  /// LEASE register-group shape: [0] heartbeat ((holder+1) << 48 | seq),
  /// [1] the leader's published commit index (the follower read fence).
  static constexpr std::uint32_t kLeaseCells = 2;
  static constexpr std::uint32_t kLeaseCellHb = 0;
  static constexpr std::uint32_t kLeaseCellFence = 1;
  /// Applied-key index width: one slot per possible command value
  /// (commands live in [1, kLogNoOp)).
  static constexpr std::uint64_t kKeySpace = 65536;
  /// Parked follower reads beyond this answer kOverloaded.
  static constexpr std::size_t kMaxReadWaiters = 4096;

  /// Owner-thread lease bookkeeping (heartbeat cadence, confirm queue).
  void lease_tick(svc::Group& g, const svc::LeaderView& view,
                  std::int64_t now_us);
  /// Wakes fence waiters covered by the current applied index, expires
  /// the rest past their deadline. Owner thread.
  void drain_read_waiters(std::int64_t now_us);

  /// One-writer (owner thread) / many-reader (IO threads) index:
  /// applied_key_[k] = latest applied position of command k, plus one.
  std::unique_ptr<std::atomic<std::uint64_t>[]> applied_key_;

  LeaseState lease_;               ///< owner-thread state machine
  Cell lease_hb_cell_{};           ///< resolved at attach()
  Cell lease_fence_cell_{};
  bool lease_cells_ok_ = false;    ///< LEASE group resolved in the layout
  std::uint64_t lease_hb_seq_ = 0;       ///< this node's heartbeat counter
  std::int64_t lease_hb_sent_us_ = 0;    ///< last heartbeat poke
  std::uint64_t lease_foreign_hb_ = 0;   ///< last observed foreign HB value
  /// Outstanding heartbeats awaiting quorum acks: (mirror write mark at
  /// send, send time). FIFO; confirmed or pruned by lease_tick.
  std::deque<std::pair<std::uint64_t, std::int64_t>> lease_outstanding_;
  /// IO-thread-visible lease validity: the owner thread republishes both
  /// every sweep; readers pair them with a FRESH cache epoch.
  std::atomic<std::int64_t> lease_until_pub_{0};
  std::atomic<std::uint64_t> lease_epoch_pub_{0};
  /// Sampler-thread gauge snapshots (the sampler may not read the plain
  /// owner-thread state): "this node hosts the agreed leader of a
  /// lease-enabled group" / "that lease is currently valid".
  std::atomic<std::uint32_t> lease_expected_pub_{0};
  std::atomic<std::uint32_t> lease_valid_snap_{0};

  /// Parked follower reads (IO threads park, owner thread drains).
  std::mutex waiters_mu_;
  ReadWaiters waiters_;
  std::atomic<std::uint64_t> waiters_size_{0};  ///< gauge snapshot
  std::vector<ReadWaiters::Fire> waiter_scratch_;  ///< owner-thread-only

  /// quorum_ack deferral: one entry per applied batch whose client
  /// completions are held back. Owner thread pushes/releases; abort()
  /// (any thread) drains — hence the mutex.
  struct DeferredBatch {
    std::uint64_t wal_seq = 0;     ///< local durability gate
    std::uint64_t write_mark = 0;  ///< mirror coverage gate
    CommandQueue::DeferredFire fire;
  };
  std::mutex deferred_mu_;
  std::deque<DeferredBatch> deferred_;
  const std::uint32_t local_votes_;   ///< replicas hosted by this process
  std::uint32_t durable_floor_ = wal::kNoDurableFloor;
  CommandQueue::DeferredFire fire_scratch_;  ///< per-sweep deferred fires

  /// obs wiring: decide -> apply latency (resolved once), queue-depth
  /// gauges (registered per group, summed by name at scrape), and the
  /// failover/eviction trace state.
  obs::Histogram* apply_hist_ = nullptr;  ///< smr.decide_to_apply_ns
  obs::Counter* commits_ctr_ = nullptr;   ///< smr.commits
  obs::Counter* watchdog_ctr_ = nullptr;  ///< smr.watchdog_fires
  obs::Histogram* fence_wait_hist_ = nullptr;  ///< smr.fence_wait_ns
  obs::Counter* lease_acq_ctr_ = nullptr;      ///< smr.lease.acquired
  obs::Counter* lease_drop_ctr_ = nullptr;     ///< smr.lease.dropped
  obs::Counter* reads_lease_ctr_ = nullptr;    ///< smr.reads.lease
  obs::Counter* reads_index_ctr_ = nullptr;    ///< smr.reads.index
  obs::Counter* reads_fallback_ctr_ = nullptr; ///< smr.reads.fallback
  obs::Counter* reads_refused_ctr_ = nullptr;  ///< smr.reads.refused
  bool lease_was_valid_ = false;  ///< owner-thread acquired-edge tracker
  std::vector<std::uint64_t> gauge_ids_;
  std::uint64_t last_evicted_ = 0;  ///< sessions_evicted at last sweep
  /// Last agreed leader that was NOT local (kNoProcess until one is
  /// seen): a false -> true leader_local_ edge after one existed is a
  /// failover onto this node, worth a flight-recorder dump.
  ProcessId last_remote_leader_ = kNoProcess;
  bool was_leader_local_ = false;
};

}  // namespace omega::smr
