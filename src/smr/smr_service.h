// SmrService: the facade of src/smr. Manages live replicated-log groups on
// top of a MultiGroupLeaderService — each log rides one election group
// (same Ω instance, same AtomicMemory, same shard worker) registered with
// a GroupSpec that declares the log's registers and installs the LogGroup
// as the group's pump.
//
//   svc::MultiGroupLeaderService svc;
//   smr::SmrService smr(svc);
//   smr.add_log(42, {.n = 3, .capacity = 4096, .window = 32});
//   svc.start();
//   smr.append(42, client_id, seq, cmd, [](AppendOutcome oc, uint64_t i) {...});
//
// append() is asynchronous: the callback fires when the command commits
// (on the owning worker thread) or immediately for duplicates/rejections.
// Idempotency comes from the (client, seq) dedup key — see
// command_queue.h for the session contract. Leadership gating is the
// *caller's* policy: the service accepts commands whenever a slot might
// still place them (the net front-end rejects appends with kNotLeader
// while the group has no agreed leader, so clients redirect/back off, but
// a command accepted just before a crash simply commits under the next
// leader).
#pragma once

#include <memory>
#include <shared_mutex>
#include <unordered_map>

#include "smr/log_group.h"
#include "svc/multigroup_service.h"

namespace omega::smr {

/// Push seam for applied entries: one invocation per applied *batch* —
/// `values[i]` was applied at index `first_index + i` — on the owning
/// worker right after the batch's append completions. The net front-end
/// fans this out to COMMIT_WATCH subscribers (one post per loop per
/// batch, not per entry). `traces[i]` is the entry's v1.4 trace id (0 =
/// untraced), in lockstep with `values` — followers see the sealer's ids
/// because they ride the spill ring.
using CommitListener = std::function<void(
    svc::GroupId gid, std::uint64_t first_index,
    const std::vector<std::uint64_t>& values,
    const std::vector<std::uint64_t>& traces)>;

class SmrService {
 public:
  explicit SmrService(svc::MultiGroupLeaderService& svc);
  ~SmrService();

  SmrService(const SmrService&) = delete;
  SmrService& operator=(const SmrService&) = delete;

  // --- registration --------------------------------------------------------

  /// Creates the log group `gid` (and its election group in the underlying
  /// service — the id must be free there). Allowed before and while the
  /// service runs.
  void add_log(svc::GroupId gid, const SmrSpec& spec = {});

  /// Retires the log and its election group; everything still queued
  /// fails with kAborted. Returns false if the id is unknown.
  bool remove_log(svc::GroupId gid);

  bool has_log(svc::GroupId gid) const;
  std::size_t num_logs() const;

  // --- client API (any thread) ---------------------------------------------

  /// Submits a command (range [1, kLogNoOp)). `done` fires exactly once:
  /// synchronously for rejections and committed duplicates, on the owning
  /// worker thread when the command commits. Unknown gid → kAborted.
  /// `trace` is the append's v1.4 trace id (0 = untraced); it rides the
  /// command through the queue, spill ring, and commit fan-out.
  void append(svc::GroupId gid, std::uint64_t client, std::uint64_t seq,
              std::uint64_t command, AppendCompletion done,
              std::uint64_t trace = 0);

  /// Copies up to `max` applied entries starting at `from`; false if the
  /// gid is unknown.
  bool read_log(svc::GroupId gid, std::uint64_t from, std::uint32_t max,
                LogGroup::Snapshot& out) const;

  /// Point read (the v1.6 fast path): loads a FRESH leader view and the
  /// pool clock, then forwards to LogGroup::read_point. `view` carries
  /// the leader hint + fenced epoch for the response regardless of mode.
  /// False if the gid hosts no log (caller answers kUnknownGroup). Any
  /// thread — this is what the net IO threads call per READ frame.
  bool read_point(svc::GroupId gid, std::uint64_t key, std::uint64_t min_index,
                  svc::LeaderView& view, LogGroup::ReadAnswer& answer,
                  LogGroup::ReadMode& mode, LogGroup::ReadCompletion done);

  /// Applied-entry count (0 for unknown gids).
  std::uint64_t commit_index(svc::GroupId gid) const;

  /// Intake/session counters of the group's command queue (zeros for
  /// unknown gids) — surfaces the dedup-map bound and TTL evictions.
  CommandQueue::Stats queue_stats(svc::GroupId gid) const;

  /// SESSION_OPEN handshake: (re)creates `client`'s dedup session and
  /// reports the group's eviction TTL. False if the gid is unknown.
  bool open_session(svc::GroupId gid, std::uint64_t client,
                    std::int64_t& ttl_us);

  /// Whether replica `pid` of the log executes in this process (true for
  /// single-process groups and unknown gids) — the front-end's
  /// redirect-to-leader-node gate.
  bool hosts_replica(svc::GroupId gid, ProcessId pid) const;

  /// Installs (or clears) the commit push listener. Barrier semantics as
  /// with svc's epoch listener: on return, no in-flight invocation of the
  /// previous listener is still running.
  void set_commit_listener(CommitListener listener);

  // --- debug / test --------------------------------------------------------

  /// Replica `pid`'s decision board for `slot` (agreement checks).
  std::optional<std::uint64_t> decided_by(svc::GroupId gid, ProcessId pid,
                                          std::uint32_t slot) const;

  svc::MultiGroupLeaderService& service() noexcept { return svc_; }

 private:
  std::shared_ptr<LogGroup> find(svc::GroupId gid) const;
  void notify_commit(svc::GroupId gid, std::uint64_t first_index,
                     const std::vector<std::uint64_t>& values,
                     const std::vector<CommandQueue::CommitRecord>& recs) const;

  svc::MultiGroupLeaderService& svc_;

  mutable std::shared_mutex logs_mu_;
  std::unordered_map<svc::GroupId, std::shared_ptr<LogGroup>> logs_;

  /// Reader/writer split mirrors GroupRegistry's listener seam.
  mutable std::shared_mutex listener_mu_;
  CommitListener listener_;
};

}  // namespace omega::smr
