// CommandQueue: the client-facing intake of one replicated-log group.
//
// Clients submit commands tagged with a (client, seq) dedup key; the pump
// (owner worker) pulls them in FIFO order — one at a time (pull) or up to
// a batch at once (pull_batch) — and assigns them to consensus slots.
// Because every replica proposes the same value for a slot and slots are
// harvested in order, commits pop pulled entries strictly FIFO —
// commit_front()/commit_batch() consume the oldest in-flight entries and
// fire their completions.
//
// Dedup contract (the classic SMR client-session rule): per client, `seq`
// is monotonically increasing, and the retry window is the *latest* seq —
// a client that did not see an append's answer (timeout, reconnect after a
// leader restart) resubmits the same (client, seq, command) and gets the
// original outcome: the already-committed index if the first copy made it,
// or a completion attached to the still-pending copy. Submitting seq ≤ an
// older seq than the latest is rejected as stale. Multiple *distinct*
// outstanding seqs per client are accepted (pipelining), but only the
// newest is retry-safe.
//
// Session bound: the dedup map grows one Session per client ever seen, so
// a long-lived group serving churning clients needs eviction. With a
// non-zero `session_ttl_us`, the pump sweep calls evict_idle_sessions();
// sessions idle past the TTL whose client has nothing pending or in
// flight are dropped (and counted in stats().evicted). An evicted
// client's late retry is indistinguishable from a fresh submission — the
// standard at-most-once-window tradeoff of bounded session tables — so
// pick a TTL comfortably above the client retry horizon.
//
// Threading: submit() may be called from any thread (the server's IO
// threads); pull*/commit_*/abort_*/evict_idle_sessions belong to the pump
// owner. One mutex guards everything — the queue is not the hot path (the
// consensus rounds are).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/ids.h"

namespace omega::smr {

/// Client-visible outcome of an append.
enum class AppendOutcome : std::uint8_t {
  kCommitted,  ///< committed; `index` is the log position
  kAccepted,   ///< queued; the completion fires when it commits
  kStaleSeq,   ///< seq older than the client's latest (outside dedup window)
  kQueueFull,  ///< intake bounded; retry later
  kLogFull,    ///< the group's slot capacity is exhausted
  kAborted,    ///< group torn down before the command committed
  kBadCommand, ///< command out of range, or a retry that changed it
  kSessionEvicted,  ///< dedup session TTL-expired; open_session to resume
};

/// Fired exactly once per accepted submission, either synchronously from
/// submit() (duplicate of a committed entry) or later on the pump owner's
/// thread. `index` is meaningful for kCommitted only.
using AppendCompletion =
    std::function<void(AppendOutcome outcome, std::uint64_t index)>;

class CommandQueue {
 public:
  /// `session_ttl_us` == 0 disables eviction (sessions live forever).
  explicit CommandQueue(std::size_t max_pending,
                        std::int64_t session_ttl_us = 0);

  struct SubmitResult {
    AppendOutcome outcome = AppendOutcome::kAccepted;
    std::uint64_t index = 0;  ///< valid when outcome == kCommitted
  };

  /// Any thread. When the result is kAccepted the completion is retained
  /// and fires at commit (or abort); for every other outcome — including
  /// kCommitted duplicates — the caller already has the answer and the
  /// completion is NOT retained. `command` must be in [1, kLogNoOp); range
  /// checking is the caller's job (the queue stores what it is given).
  ///
  /// Eviction visibility: with a nonzero TTL, a submission at seq > 1
  /// from a client with no session answers kSessionEvicted — a client
  /// mid-stream whose session was dropped must learn its retry window is
  /// gone instead of having the retry silently double-commit. Fresh
  /// clients start at seq 1 or call open_session() first.
  ///
  /// `trace` is the command's v1.4 trace id (0 = untraced); it rides the
  /// entry through pull/commit and surfaces on the CommitRecord.
  SubmitResult submit(std::uint64_t client, std::uint64_t seq,
                      std::uint64_t command, AppendCompletion done,
                      std::uint64_t trace = 0);

  /// (Re)creates the client's dedup session (idempotent) and returns the
  /// eviction TTL in microseconds (0 = never). Any thread. The SESSION_OPEN
  /// handshake lands here.
  std::int64_t open_session(std::uint64_t client);

  // --- pump side (owner thread) ------------------------------------------

  /// Next command to assign to a slot (moves the entry to the in-flight
  /// queue); 0 when nothing is pending.
  std::uint64_t pull();

  /// Batch form: moves up to `max` pending entries to the in-flight queue
  /// and appends their commands to `out` in FIFO order; returns the
  /// count. When `traces` is non-null it receives one trace id per moved
  /// entry, in lockstep with `out`.
  std::uint32_t pull_batch(std::uint32_t max, std::vector<std::uint64_t>& out,
                           std::vector<std::uint64_t>* traces = nullptr);

  /// Ticketed form for deployments where commits can resolve out of pull
  /// order (multi-node failover re-proposals): moves up to `max` pending
  /// entries into an internal *owned* batch keyed by a fresh ticket
  /// (returned via `ticket`, never 0) instead of the FIFO in-flight
  /// queue. The batch is resolved as a whole by commit_owned(), or by the
  /// abort paths.
  std::uint32_t pull_batch_owned(std::uint32_t max,
                                 std::vector<std::uint64_t>& out,
                                 std::uint64_t& ticket,
                                 std::vector<std::uint64_t>* traces = nullptr);

  struct CommitRecord {
    std::uint64_t client = 0;
    std::uint64_t seq = 0;
    std::uint64_t command = 0;
    std::uint64_t trace = 0;  ///< v1.4 trace id (0 = untraced)
  };

  /// The oldest in-flight entry committed at `index`: records the client
  /// session's outcome, fires the entry's completions, and returns the
  /// entry for the commit-event fan-out.
  CommitRecord commit_front(std::uint64_t index);

  /// Batch form: the oldest `count` in-flight entries committed at
  /// `first_index`, `first_index + 1`, ... Appends one record per entry to
  /// `recs` and fires every completion (outside the lock, in FIFO order) —
  /// the whole batch is acknowledged with one lock acquisition.
  void commit_batch(std::uint64_t first_index, std::uint32_t count,
                    std::vector<CommitRecord>& recs);

  /// Owned-batch commit: the entries pulled under `ticket` committed at
  /// `first_index`, ... — records the session outcomes, appends one
  /// record per entry to `recs`, fires the completions (outside the
  /// lock, batch order) and releases the ticket.
  void commit_owned(std::uint64_t ticket, std::uint64_t first_index,
                    std::vector<CommitRecord>& recs);

  /// Completions a deferred commit owes its clients: fire each with the
  /// paired index once the release condition (WAL durability, quorum of
  /// mirror acks) holds.
  using DeferredFire =
      std::vector<std::pair<AppendCompletion, std::uint64_t>>;

  /// quorum_ack variants of commit_batch/commit_owned: the entries ARE
  /// committed (session dedup records the outcome immediately — a retry
  /// observed after this call answers kCommitted) but the client
  /// completions are appended to `fire` instead of being invoked, so the
  /// caller can hold the acknowledgement until the batch is durable on a
  /// quorum. A duplicate submitted while an ack is deferred learns the
  /// commit early; that is the same (benign) race the non-deferred path
  /// has between commit and network delivery.
  void commit_batch_deferred(std::uint64_t first_index, std::uint32_t count,
                             std::vector<CommitRecord>& recs,
                             DeferredFire& fire);
  void commit_owned_deferred(std::uint64_t ticket, std::uint64_t first_index,
                             std::vector<CommitRecord>& recs,
                             DeferredFire& fire);

  /// Fails every entry that has not been pulled yet (log capacity
  /// exhausted): completions fire with `outcome`.
  void abort_pending(AppendOutcome outcome);

  /// Teardown: answers every waiter — pending and in-flight — with
  /// `outcome`. Pending entries are dropped; in-flight entries stay (their
  /// slots may still decide under a racing sweep, and commit_front must
  /// find them) but their late commits fire nothing.
  void abort_all(AppendOutcome outcome);

  /// Pump-sweep session expiry (no-op when session_ttl_us == 0): drops
  /// every session idle since before `now_us - ttl` whose client has no
  /// pending or in-flight entry. `now_us` must be monotone across calls —
  /// it also timestamps subsequent submits. Scans are internally
  /// rate-limited to ~1/4 TTL, so calling once per sweep is fine.
  void evict_idle_sessions(std::int64_t now_us);

  struct Stats {
    std::size_t pending = 0;
    std::size_t in_flight = 0;       ///< FIFO in-flight + owned entries
    std::size_t sessions = 0;        ///< dedup map size
    std::uint64_t evicted = 0;       ///< sessions dropped by TTL, ever
  };
  Stats stats() const;

  std::size_t pending() const;
  std::size_t in_flight() const;
  /// Anything pending or in flight (one lock; the pump's pacing signal).
  bool has_work() const;
  std::int64_t session_ttl_us() const noexcept { return session_ttl_us_; }

 private:
  struct Entry {
    std::uint64_t client = 0;
    std::uint64_t seq = 0;
    std::uint64_t command = 0;
    std::uint64_t trace = 0;
    std::vector<AppendCompletion> completions;
  };

  /// Per-client session state for the dedup window.
  struct Session {
    std::uint64_t last_seq = 0;    ///< newest seq ever submitted
    std::uint64_t last_index = 0;  ///< commit index of last_seq, if committed
    bool committed = false;        ///< last_seq has committed
    bool any = false;              ///< a seq was ever submitted
    std::int64_t last_active_us = 0;  ///< sweep-clock time of last touch
  };

  /// Collects an entry's completions for firing outside the lock.
  static void take(Entry& e, std::vector<AppendCompletion>& out);

  /// Commits one entry's session outcome and collects its completions
  /// (under mu_).
  void commit_entry_locked(
      Entry& e, std::uint64_t index, std::vector<CommitRecord>& recs,
      std::vector<std::pair<AppendCompletion, std::uint64_t>>& fire);

  mutable std::mutex mu_;
  std::size_t max_pending_;
  std::int64_t session_ttl_us_;
  std::int64_t now_us_ = 0;        ///< last sweep clock seen (under mu_)
  std::int64_t last_scan_us_ = 0;  ///< last eviction scan (under mu_)
  std::uint64_t evicted_ = 0;
  std::uint64_t next_ticket_ = 1;
  std::deque<Entry> pending_;
  std::deque<Entry> inflight_;
  std::unordered_map<std::uint64_t, std::vector<Entry>> owned_;
  std::size_t owned_entries_ = 0;  ///< total entries across owned_
  std::unordered_map<std::uint64_t, Session> sessions_;
};

}  // namespace omega::smr
