#include "smr/log_group.h"

#include <algorithm>

namespace omega::smr {

LogGroup::LogGroup(svc::GroupId gid, const SmrSpec& spec, CommitHook hook)
    : gid_(gid),
      spec_(spec),
      log_(spec.n, spec.capacity),
      queue_(spec.max_pending),
      hook_(std::move(hook)) {
  OMEGA_CHECK(spec_.window >= 1 && spec_.window <= spec_.capacity,
              "bad pump window " << spec_.window);
  applied_.reserve(std::min<std::uint32_t>(spec_.capacity, 4096));
}

void LogGroup::attach(svc::Group& g) {
  OMEGA_CHECK(g.spec.n == spec_.n,
              "group n " << g.spec.n << " != log n " << spec_.n);
  log_.bind(g.inst.memory->layout());
  host_.g_ = &g;
  pump_ = std::make_unique<LogPump>(log_, host_, spec_.window);
}

void LogGroup::on_sweep(svc::Group& g, std::int64_t /*now_us*/) {
  OMEGA_CHECK(pump_ != nullptr && host_.g_ == &g, "on_sweep before attach");
  scratch_.clear();
  pump_->tick([this] { return queue_.pull(); }, scratch_);
  if (!scratch_.empty()) {
    for (const auto& c : scratch_) {
      std::uint64_t index = 0;
      {
        std::lock_guard<std::mutex> lock(applied_mu_);
        index = applied_.size();
        applied_.push_back(c.value);
      }
      commit_index_.store(index + 1, std::memory_order_release);
      const CommandQueue::CommitRecord rec = queue_.commit_front(index);
      OMEGA_CHECK(rec.command == c.value,
                  "slot " << c.slot << " decided " << c.value
                          << " but the oldest in-flight command is "
                          << rec.command);
      {
        std::shared_lock<std::shared_mutex> lock(hook_mu_);
        if (hook_) hook_(index, c.value, rec.client, rec.seq);
      }
    }
    // Finished proposer frames pile up one per slot per replica: reap so
    // the executors' round-robin scan stays O(live tasks).
    for (auto& ex : g.execs) ex->reap_apps();
  }
  if (pump_->exhausted()) {
    log_full_.store(true, std::memory_order_release);
    // Whatever the pump can no longer place must not wait forever.
    if (pump_->in_flight() == 0) queue_.abort_all(AppendOutcome::kLogFull);
    else queue_.abort_pending(AppendOutcome::kLogFull);
  }
}

void LogGroup::read(std::uint64_t from, std::uint32_t max,
                    Snapshot& out) const {
  out.entries.clear();
  std::lock_guard<std::mutex> lock(applied_mu_);
  out.commit_index = applied_.size();
  for (std::uint64_t i = from; i < applied_.size() && out.entries.size() < max;
       ++i) {
    out.entries.push_back(applied_[static_cast<std::size_t>(i)]);
  }
}

std::optional<std::uint64_t> LogGroup::decided_by(ProcessId pid,
                                                  std::uint32_t slot) const {
  OMEGA_CHECK(host_.g_ != nullptr, "decided_by before attach");
  OMEGA_CHECK(pid < spec_.n, "bad replica " << pid);
  std::uint64_t v = 0;
  if (!log_.slot(slot).read_decision(*host_.g_->inst.memory, pid, v)) {
    return std::nullopt;
  }
  return v;
}

void LogGroup::abort(AppendOutcome outcome) { queue_.abort_all(outcome); }

void LogGroup::clear_hook() {
  // Unique lock: waits out any sweep currently inside the hook, so the
  // caller may free the state the hook captured right after returning.
  std::unique_lock<std::shared_mutex> lock(hook_mu_);
  hook_ = {};
}

}  // namespace omega::smr
