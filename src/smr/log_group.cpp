#include "smr/log_group.h"

#include <algorithm>
#include <chrono>

#include "obs/flight_recorder.h"

namespace omega::smr {

namespace {

std::int64_t steady_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

ProcessId lowest_local(const SmrSpec& spec) {
  for (ProcessId p = 0; p < spec.n; ++p) {
    if (spec.is_local(p)) return p;
  }
  return 0;
}

std::uint32_t count_local(const SmrSpec& spec) {
  if (spec.local_mask == 0) return spec.n;
  std::uint32_t c = 0;
  for (ProcessId p = 0; p < spec.n; ++p) {
    if (spec.is_local(p)) ++c;
  }
  return c;
}

bool is_multi_node(const SmrSpec& spec) {
  if (spec.local_mask == 0) return false;
  for (ProcessId p = 0; p < spec.n; ++p) {
    if (!spec.is_local(p)) return true;
  }
  return false;
}

}  // namespace

LogGroup::LogGroup(svc::GroupId gid, const SmrSpec& spec, CommitHook hook)
    : gid_(gid),
      spec_(spec),
      multi_node_(is_multi_node(spec)),
      sealer_(lowest_local(spec)),
      log_(spec.n, spec.capacity),
      queue_(spec.max_pending, spec.session_ttl_us),
      source_(*this),
      hook_(std::move(hook)),
      lease_(spec.lease_ttl_us, spec.lease_skew_us),
      local_votes_(count_local(spec)) {
  OMEGA_CHECK(spec_.window >= 1 && spec_.window <= spec_.capacity,
              "bad pump window " << spec_.window);
  OMEGA_CHECK(!spec_.quorum_ack || spec_.wal != nullptr,
              "quorum_ack without a WAL: the local durability gate is the "
              "point");
  OMEGA_CHECK(spec_.max_batch >= 1 && spec_.max_batch <= kMaxBatchCommands,
              "bad max_batch " << spec_.max_batch);
  // Multi-node needs the descriptor to NAME its sealer (failover
  // contention resolves by sealer identity). A raw max_batch == 1
  // command carries no sealer, so two nodes sealing the same command
  // value for one slot would both claim it — batch mode is mandatory.
  OMEGA_CHECK(!multi_node_ || spec_.max_batch >= 2,
              "multi-node logs need max_batch >= 2 (the batch descriptor "
              "carries the sealer identity)");
  if (spec_.max_batch > 1) {
    // The ring must cover the pipelined window (see BatchBuffer's reuse
    // argument). Multi-node: one bank per potential sealer — competing
    // sealers never overwrite each other — plus slack rows so mirrors
    // may trail the sealer by up to the flow-control stall threshold.
    const std::uint32_t banks = multi_node_ ? spec_.n : 1;
    const std::uint32_t rows =
        spec_.window + (multi_node_ ? spec_.ring_slack : 0);
    batch_.emplace("LOG", banks, rows, spec_.max_batch);
  }
  applied_.reserve(std::min<std::uint32_t>(spec_.capacity, 4096));
  // make_unique value-initializes: every key starts "never applied".
  applied_key_ =
      std::make_unique<std::atomic<std::uint64_t>[]>(kKeySpace);
  apply_hist_ = &obs::histogram("smr.decide_to_apply_ns");
  commits_ctr_ = &obs::counter("smr.commits");
  watchdog_ctr_ = &obs::counter("smr.watchdog_fires");
  fence_wait_hist_ = &obs::histogram("smr.fence_wait_ns");
  lease_acq_ctr_ = &obs::counter("smr.lease.acquired");
  lease_drop_ctr_ = &obs::counter("smr.lease.dropped");
  reads_lease_ctr_ = &obs::counter("smr.reads.lease");
  reads_index_ctr_ = &obs::counter("smr.reads.index");
  reads_fallback_ctr_ = &obs::counter("smr.reads.fallback");
  reads_refused_ctr_ = &obs::counter("smr.reads.refused");
  obs::Registry& reg = obs::Registry::instance();
  gauge_ids_.push_back(reg.register_gauge("smr.queue_pending", [this] {
    return static_cast<std::int64_t>(queue_.stats().pending);
  }));
  gauge_ids_.push_back(reg.register_gauge("smr.queue_in_flight", [this] {
    return static_cast<std::int64_t>(queue_.stats().in_flight);
  }));
  gauge_ids_.push_back(reg.register_gauge("smr.sessions", [this] {
    return static_cast<std::int64_t>(queue_.stats().sessions);
  }));
  gauge_ids_.push_back(reg.register_gauge("smr.sessions_evicted", [this] {
    return static_cast<std::int64_t>(queue_.stats().evicted);
  }));
  gauge_ids_.push_back(reg.register_gauge("smr.lease_expected", [this] {
    return static_cast<std::int64_t>(
        lease_expected_pub_.load(std::memory_order_relaxed));
  }));
  gauge_ids_.push_back(reg.register_gauge("smr.lease_valid", [this] {
    return static_cast<std::int64_t>(
        lease_valid_snap_.load(std::memory_order_relaxed));
  }));
  gauge_ids_.push_back(reg.register_gauge("smr.read_waiters", [this] {
    return static_cast<std::int64_t>(
        waiters_size_.load(std::memory_order_relaxed));
  }));
}

LogGroup::~LogGroup() {
  for (const std::uint64_t id : gauge_ids_) {
    obs::Registry::instance().unregister_gauge(id);
  }
}

void LogGroup::attach(svc::Group& g) {
  OMEGA_CHECK(g.spec.n == spec_.n,
              "group n " << g.spec.n << " != log n " << spec_.n);
  log_.bind(g.inst.memory->layout());
  if (batch_.has_value()) batch_->bind(g.inst.memory->layout());
  {
    GroupId lease_grp = 0;
    const Layout& layout = g.inst.memory->layout();
    if (layout.find_group("LEASE", lease_grp)) {
      lease_hb_cell_ = layout.cell(lease_grp, kLeaseCellHb);
      lease_fence_cell_ = layout.cell(lease_grp, kLeaseCellFence);
      lease_cells_ok_ = true;
    }
  }
  host_.g_ = &g;
  pump_ = std::make_unique<LogPump>(
      log_, host_, spec_.window,
      LogPump::BatchPolicy{spec_.max_batch,
                           batch_.has_value() ? &*batch_ : nullptr,
                           multi_node_ ? sealer_ : ProcessId{0}});
  if (spec_.wal != nullptr) {
    // Journal every durable-floor store by wrapping whatever observer is
    // already installed (the mirror-push observer in multi-node mode).
    // Installed AFTER the recovery pokes (SmrNode pokes in the memory
    // factory, which ran before attach), so replayed cells re-push to
    // mirrors but are not re-journaled.
    durable_floor_ = wal::durable_floor(g.inst.memory->layout());
    if (durable_floor_ != wal::kNoDurableFloor) {
      MemoryBackend::WriteObserver prev = g.inst.memory->write_observer();
      wal::Wal* const w = spec_.wal;
      const std::uint32_t floor = durable_floor_;
      const svc::GroupId gid = gid_;
      g.inst.memory->set_write_observer(
          [prev = std::move(prev), w, floor, gid](Cell c, std::uint64_t v) {
            if (c.index >= floor) w->append_cell(gid, c.index, v);
            if (prev) prev(c, v);
          });
    }
  }
  if (spec_.recovery && !spec_.recovery->applied.empty()) {
    // Crash-restart: the replayed applied prefix becomes the log's state
    // before the first sweep, and the pump resumes past it — recovered
    // slots are neither re-proposed nor re-harvested.
    {
      std::lock_guard<std::mutex> lock(applied_mu_);
      OMEGA_CHECK(applied_.empty(), "recovery into a non-empty log");
      applied_ = spec_.recovery->applied;
    }
    // Preseed the applied-key index from the recovered prefix (ascending,
    // so each key lands on its LATEST position).
    for (std::size_t i = 0; i < spec_.recovery->applied.size(); ++i) {
      const std::uint64_t v = spec_.recovery->applied[i];
      if (v < kKeySpace) {
        applied_key_[v].store(i + 1, std::memory_order_relaxed);
      }
    }
    commit_index_.store(spec_.recovery->applied.size(),
                        std::memory_order_release);
    pump_->fast_forward(spec_.recovery->next_slot);
  }
}

bool LogGroup::on_sweep(svc::Group& g, std::int64_t now_us) {
  OMEGA_CHECK(pump_ != nullptr && host_.g_ == &g, "on_sweep before attach");
  // Advance the queue's session clock *before* the harvest below stamps
  // committed sessions with it: on a group added to a long-running pool,
  // the first sweep's commits would otherwise be stamped with a stale (0)
  // clock and their retry windows would expire on the next scan. Entries
  // still queued or in flight are busy and never evicted regardless.
  queue_.evict_idle_sessions(now_us);
  {
    const std::uint64_t evicted = queue_.stats().evicted;
    if (evicted > last_evicted_) {
      obs::trace(obs::TraceEvent::kSessionEvict, gid_,
                 evicted - last_evicted_);
      last_evicted_ = evicted;
    }
  }
  // One cache load serves the sweep's gates AND the lease state machine
  // (single-node lease-enabled groups need the view too).
  const bool lease_on = spec_.lease_ttl_us > 0 && lease_cells_ok_;
  svc::LeaderView view{};
  if (multi_node_ || lease_on) view = g.cache.load();
  if (multi_node_) {
    // Leadership and flow-control gates, sampled once per sweep: only
    // the node hosting the agreed leader seals fresh batches, and only
    // while no connected mirror trails past the flow-control threshold.
    leader_local_ =
        view.leader != kNoProcess && spec_.is_local(view.leader);
    seal_ok_ = leader_local_ &&
               (!spec_.mirror_backlog ||
                spec_.mirror_backlog() <= spec_.max_unacked_push);
    if (leader_local_ && !was_leader_local_ &&
        last_remote_leader_ != kNoProcess) {
      // This node just took over from a distinct remote leader — the
      // failover window the flight recorder exists for. Dump the merged
      // trace now, while the takeover's ticket/reseal events are still
      // in the rings.
      obs::trace(obs::TraceEvent::kFailoverTicket, gid_,
                 last_remote_leader_);
      obs::dump_trace("failover");
    }
    was_leader_local_ = leader_local_;
    if (view.leader != kNoProcess && !spec_.is_local(view.leader)) {
      last_remote_leader_ = view.leader;
    }
  }
  scratch_.clear();
  pump_->tick(source_, scratch_, /*repush_remote=*/multi_node_ &&
                                     leader_local_);
  if (!scratch_.empty()) {
    // Apply the sweep's whole harvest as one batch: one applied-log lock,
    // one commit-index publish, batched queue acknowledgement, one hook
    // invocation for the push fan-out.
    const std::int64_t apply_start = steady_ns();
    const std::uint32_t count = static_cast<std::uint32_t>(scratch_.size());
    values_.clear();
    for (const auto& c : scratch_) values_.push_back(c.value);
    std::uint64_t first = 0;
    {
      std::lock_guard<std::mutex> lock(applied_mu_);
      first = applied_.size();
      applied_.insert(applied_.end(), values_.begin(), values_.end());
    }
    // Applied-key index BEFORE the commit-index publish: a reader whose
    // fence is covered by the published index must see every key the
    // covered prefix wrote.
    for (std::uint32_t i = 0; i < count; ++i) {
      const std::uint64_t v = values_[i];
      if (v < kKeySpace) {
        applied_key_[v].store(first + i + 1, std::memory_order_release);
      }
    }
    commit_index_.store(first + count, std::memory_order_release);
    recs_.clear();
    fire_scratch_.clear();
    const bool defer = spec_.quorum_ack;
    if (multi_node_) {
      apply_commits_multi(first, defer ? &fire_scratch_ : nullptr);
    } else {
      if (defer) {
        queue_.commit_batch_deferred(first, count, recs_, fire_scratch_);
      } else {
        queue_.commit_batch(first, count, recs_);
      }
      for (std::uint32_t i = 0; i < count; ++i) {
        OMEGA_CHECK(recs_[i].command == values_[i],
                    "slot " << scratch_[i].slot << " decided " << values_[i]
                            << " but the oldest in-flight command is "
                            << recs_[i].command);
      }
    }
    if (spec_.wal != nullptr) {
      // Journal the applied batch (values + the pump's post-harvest slot
      // cursor) so recovery can rebuild the applied prefix even though
      // the spill ring's rows get reused.
      const std::uint64_t wal_seq = spec_.wal->append_applied(
          gid_, first, pump_->committed(), values_.data(), count);
      if (defer && !fire_scratch_.empty()) {
        DeferredBatch b;
        b.wal_seq = wal_seq;
        // Read AFTER the batch's stores: a watermark covering "now"
        // covers every register write the batch consists of.
        b.write_mark =
            spec_.mirror_write_seq ? spec_.mirror_write_seq() : 0;
        b.fire = std::move(fire_scratch_);
        fire_scratch_ = {};
        std::lock_guard<std::mutex> lock(deferred_mu_);
        deferred_.push_back(std::move(b));
      }
    }
    {
      std::shared_lock<std::shared_mutex> lock(hook_mu_);
      if (hook_) hook_(first, values_, recs_);
    }
    // Finished proposer frames pile up one per slot per replica: reap so
    // the executors' round-robin scan stays O(live tasks).
    for (auto& ex : g.execs) {
      if (ex) ex->reap_apps();
    }
    apply_hist_->record(
        static_cast<std::uint64_t>(steady_ns() - apply_start));
    commits_ctr_->add(count);
    obs::trace(obs::TraceEvent::kBatchApply, first, count,
               scratch_.front().trace, scratch_.back().trace);
  }
  if (multi_node_ && spec_.mirror_resync) {
    // Watchdog: a decided slot whose payload stays unreadable means some
    // stream is wedged in a way FIFO retries cannot fix (half-dead TCP,
    // a cut that never surfaced). Force the transport to rebuild its
    // streams — snapshots always converge — instead of stalling forever.
    if (!scratch_.empty()) {
      stall_since_us_ = 0;
      stall_marker_ = pump_->payload_stalls();
    } else if (pump_->payload_stalls() > stall_marker_) {
      if (stall_since_us_ == 0) {
        stall_since_us_ = now_us;
      } else if (now_us - stall_since_us_ >= spec_.mirror_stall_resync_us) {
        obs::trace(obs::TraceEvent::kWatchdogFire, gid_,
                   pump_->payload_stalls());
        watchdog_ctr_->add(1);
        obs::dump_trace("mirror-stall-watchdog");
        spec_.mirror_resync();
        stall_since_us_ = 0;
        stall_marker_ = pump_->payload_stalls();
      }
    }
  }
  if (lease_on) lease_tick(g, view, now_us);
  drain_read_waiters(now_us);
  release_deferred();
  if (pump_->exhausted()) {
    log_full_.store(true, std::memory_order_release);
    // Whatever the pump can no longer place must not wait forever.
    if (pump_->in_flight() == 0) queue_.abort_all(AppendOutcome::kLogFull);
    else queue_.abort_pending(AppendOutcome::kLogFull);
  }
  bool deferred_pending = false;
  {
    std::lock_guard<std::mutex> lock(deferred_mu_);
    deferred_pending = !deferred_.empty();
  }
  // Pacing signal: this sweep either harvested commits, still has
  // commands queued/in flight, holds acks waiting on durability, or has
  // fence reads parked — all of which want fast sweeps. A lease-enabled
  // leader also sweeps fast so heartbeats keep their cadence.
  return !scratch_.empty() || queue_.has_work() || deferred_pending ||
         waiters_size_.load(std::memory_order_relaxed) != 0 ||
         (lease_on && leader_local_);
}

void LogGroup::release_deferred() {
  std::vector<CommandQueue::DeferredFire> ready;
  {
    std::lock_guard<std::mutex> lock(deferred_mu_);
    if (deferred_.empty()) return;
    const std::uint64_t durable = spec_.wal->durable_seq();
    const std::uint32_t needed = spec_.n / 2 + 1;
    while (!deferred_.empty()) {
      const DeferredBatch& b = deferred_.front();
      if (b.wal_seq > durable) break;  // local fsync pending
      if (multi_node_ && local_votes_ < needed) {
        const std::uint32_t votes =
            local_votes_ + (spec_.mirror_acked_votes
                                ? spec_.mirror_acked_votes(b.write_mark)
                                : 0);
        if (votes < needed) break;  // quorum of WALs pending
      }
      ready.push_back(std::move(deferred_.front().fire));
      deferred_.pop_front();
    }
  }
  for (auto& fire : ready) {
    for (auto& [c, index] : fire) c(AppendOutcome::kCommitted, index);
  }
}

void LogGroup::lease_tick(svc::Group& g, const svc::LeaderView& view,
                          std::int64_t now_us) {
  // Epoch fencing first: ANY change of the agreed view (including to "no
  // leader") drops the lease instantly — before a competing leader can
  // acquire one at the new epoch.
  if (lease_.on_epoch_change(view.epoch, now_us)) lease_drop_ctr_->add(1);
  const bool leader_here =
      view.leader != kNoProcess && spec_.is_local(view.leader);
  MemoryBackend& mem = *g.inst.memory;
  // A foreign holder's heartbeat (live, or a deposed leader's stale
  // pushes still draining) renews the floor this node's own lease must
  // wait out — two holders never overlap, even across the election
  // window.
  {
    const std::uint64_t hb = mem.peek(lease_hb_cell_);
    if (hb != lease_foreign_hb_) {
      if (hb != 0 && !spec_.is_local(static_cast<ProcessId>((hb >> 48) - 1))) {
        lease_.on_foreign_heartbeat(now_us);
      }
      lease_foreign_hb_ = hb;
    }
  }
  if (leader_here) {
    // Heartbeat at ttl/4 so several confirmations fit inside one TTL.
    const std::int64_t interval =
        std::max<std::int64_t>(1, spec_.lease_ttl_us / 4);
    if (now_us - lease_hb_sent_us_ >= interval) {
      lease_hb_sent_us_ = now_us;
      ++lease_hb_seq_;
      mem.poke(lease_hb_cell_, (std::uint64_t{sealer_} + 1) << 48 |
                                   (lease_hb_seq_ & 0xFFFFFFFFFFFFull));
      // The fence followers read-index against: the leader's applied
      // length, republished with every heartbeat.
      mem.poke(lease_fence_cell_,
               commit_index_.load(std::memory_order_acquire));
      lease_outstanding_.emplace_back(
          spec_.mirror_write_seq ? spec_.mirror_write_seq() : 0, now_us);
    }
    // Confirm the FIFO front: local replicas may carry the quorum alone
    // (single-process groups); otherwise the mirror's cumulative acks
    // must cover the heartbeat's write mark — the same vote rule as
    // release_deferred, minus the WAL gate (leases are not durable).
    const std::uint32_t needed = spec_.n / 2 + 1;
    while (!lease_outstanding_.empty()) {
      const auto [mark, t_send] = lease_outstanding_.front();
      if (t_send + spec_.lease_ttl_us <= now_us) {
        // The extension this confirmation could grant is already in the
        // past; drop it so a stalled mirror cannot grow the queue.
        lease_outstanding_.pop_front();
        continue;
      }
      std::uint32_t votes = local_votes_;
      if (votes < needed && spec_.mirror_acked_votes) {
        votes += spec_.mirror_acked_votes(mark);
      }
      if (votes < needed) break;
      lease_.on_heartbeat_confirmed(t_send);
      lease_outstanding_.pop_front();
    }
  } else {
    lease_hb_sent_us_ = 0;  // fresh cadence on the next takeover
    lease_outstanding_.clear();
  }
  // Publish for the IO threads: validity = fenced epoch (checked by the
  // reader against its FRESH cache view) + now inside the confirmed
  // window + past the foreign-holder floor.
  const std::int64_t pub_until =
      (leader_here && now_us >= lease_.not_before_us())
          ? lease_.lease_until_us()
          : 0;
  lease_until_pub_.store(pub_until, std::memory_order_release);
  lease_epoch_pub_.store(lease_.epoch(), std::memory_order_release);
  const bool valid_now = now_us < pub_until;
  if (valid_now && !lease_was_valid_) lease_acq_ctr_->add(1);
  lease_was_valid_ = valid_now;
  lease_expected_pub_.store(leader_here ? 1 : 0, std::memory_order_relaxed);
  lease_valid_snap_.store(valid_now ? 1 : 0, std::memory_order_relaxed);
}

void LogGroup::drain_read_waiters(std::int64_t now_us) {
  if (waiters_size_.load(std::memory_order_relaxed) == 0) return;
  waiter_scratch_.clear();
  std::size_t woken = 0;
  {
    std::lock_guard<std::mutex> lock(waiters_mu_);
    woken = waiters_.wake(commit_index_.load(std::memory_order_acquire),
                          waiter_scratch_);
    waiters_.expire(now_us, waiter_scratch_);
    waiters_size_.store(waiters_.size(), std::memory_order_relaxed);
  }
  // Fire outside the lock (completions post into IO-loop mailboxes).
  for (std::size_t i = 0; i < waiter_scratch_.size(); ++i) {
    waiter_scratch_[i](i < woken);
  }
  waiter_scratch_.clear();
}

LogGroup::ReadMode LogGroup::read_point(std::uint64_t key,
                                        std::uint64_t min_index,
                                        const svc::LeaderView& view,
                                        std::int64_t now_us, ReadAnswer& out,
                                        ReadCompletion done) {
  const bool leader_here =
      view.leader != kNoProcess && spec_.is_local(view.leader);
  if (leader_here) {
    out.index = lookup_key(key);
    out.commit_index = commit_index();
    if (spec_.lease_ttl_us > 0) {
      if (lease_valid(view.epoch, now_us)) {
        reads_lease_ctr_->add(1);
        return ReadMode::kLease;
      }
      // Leases are configured but this one is not valid — maybe startup,
      // maybe this node is a deposed leader whose cache has not caught up
      // (a partition). Refusing is the safety property: committed data
      // still rides along as a hint, but never with authority.
      reads_refused_ctr_->add(1);
      return ReadMode::kRefused;
    }
    reads_fallback_ctr_->add(1);
    return ReadMode::kFallback;
  }
  // Follower read-index: the fence is the leader's last published
  // applied length (mirrored LEASE cell), floored by the client's
  // session index for read-your-writes across a routing switch.
  std::uint64_t fence = min_index;
  if (lease_cells_ok_ && host_.g_ != nullptr) {
    fence = std::max(fence, host_.g_->inst.memory->peek(lease_fence_cell_));
  }
  const std::uint64_t applied = commit_index();
  if (applied >= fence) {
    out.index = lookup_key(key);
    out.commit_index = applied;
    reads_index_ctr_->add(1);
    return ReadMode::kIndex;
  }
  // Park until the local apply passes the fence, deadline-bounded like
  // the append path's deferred acknowledgements.
  const std::int64_t deadline =
      now_us + (spec_.lease_ttl_us > 0 ? 4 * spec_.lease_ttl_us : 500'000);
  const std::int64_t t_park_ns = steady_ns();
  {
    std::lock_guard<std::mutex> lock(waiters_mu_);
    if (waiters_.size() >= kMaxReadWaiters) {
      reads_refused_ctr_->add(1);
      return ReadMode::kOverloaded;
    }
    waiters_.park(fence, deadline,
                  [this, key, done = std::move(done), t_park_ns](bool passed) {
                    fence_wait_hist_->record(
                        static_cast<std::uint64_t>(steady_ns() - t_park_ns));
                    ReadAnswer a;
                    a.index = lookup_key(key);
                    a.commit_index = commit_index();
                    done(passed, a);
                  });
    waiters_size_.store(waiters_.size(), std::memory_order_relaxed);
  }
  reads_index_ctr_->add(1);
  return ReadMode::kDefer;
}

void LogGroup::apply_commits_multi(std::uint64_t first,
                                   CommandQueue::DeferredFire* defer) {
  // Resolve completions run by run: commits of one ticket are one slot's
  // batch and arrive contiguously; remote-sealed entries carry no local
  // bookkeeping (their sealer acknowledges its own clients).
  const std::size_t count = scratch_.size();
  std::size_t i = 0;
  while (i < count) {
    if (scratch_[i].local && scratch_[i].ticket != 0) {
      const std::uint64_t ticket = scratch_[i].ticket;
      std::size_t j = i;
      while (j < count && scratch_[j].local && scratch_[j].ticket == ticket) {
        ++j;
      }
      const std::size_t before = recs_.size();
      if (defer != nullptr) {
        queue_.commit_owned_deferred(ticket, first + i, recs_, *defer);
      } else {
        queue_.commit_owned(ticket, first + i, recs_);
      }
      OMEGA_CHECK(recs_.size() - before == j - i,
                  "ticket " << ticket << " resolved " << (recs_.size() - before)
                            << " entries, slot batch has " << (j - i));
      for (std::size_t k = i; k < j; ++k) {
        OMEGA_CHECK(recs_[before + k - i].command == values_[k],
                    "ticket " << ticket << " command mismatch at index "
                              << (first + k));
      }
      i = j;
    } else {
      recs_.push_back(CommandQueue::CommitRecord{0, 0, scratch_[i].value,
                                                 scratch_[i].trace});
      ++i;
    }
  }
}

void LogGroup::read(std::uint64_t from, std::uint32_t max,
                    Snapshot& out) const {
  out.entries.clear();
  std::lock_guard<std::mutex> lock(applied_mu_);
  out.commit_index = applied_.size();
  for (std::uint64_t i = from; i < applied_.size() && out.entries.size() < max;
       ++i) {
    out.entries.push_back(applied_[static_cast<std::size_t>(i)]);
  }
}

std::optional<std::uint64_t> LogGroup::decided_by(ProcessId pid,
                                                  std::uint32_t slot) const {
  OMEGA_CHECK(host_.g_ != nullptr, "decided_by before attach");
  OMEGA_CHECK(pid < spec_.n, "bad replica " << pid);
  std::uint64_t v = 0;
  if (!log_.slot(slot).read_decision(*host_.g_->inst.memory, pid, v)) {
    return std::nullopt;
  }
  return v;
}

void LogGroup::abort(AppendOutcome outcome) {
  // Deferred completions belong to COMMITTED entries — answer with the
  // truth even on teardown (kAborted would provoke a retry of a command
  // that is in the log).
  std::deque<DeferredBatch> held;
  {
    std::lock_guard<std::mutex> lock(deferred_mu_);
    held.swap(deferred_);
  }
  for (auto& b : held) {
    for (auto& [c, index] : b.fire) c(AppendOutcome::kCommitted, index);
  }
  queue_.abort_all(outcome);
}

void LogGroup::clear_hook() {
  // Unique lock: waits out any sweep currently inside the hook, so the
  // caller may free the state the hook captured right after returning.
  std::unique_lock<std::shared_mutex> lock(hook_mu_);
  hook_ = {};
}

void register_health_rules(obs::HealthMonitor& hm) {
  // Commit-progress stall: commands are queued but the commit counter is
  // flat across the trailing window — the one symptom every replication
  // failure mode (dead leader, wedged mirror, starved pump) shares.
  // Escalates to critical once the flat stretch covers 10s. Span guards
  // keep a freshly started sampler from alarming before the ring covers
  // the window.
  hm.add_rule(obs::HealthRule{
      "commit-stall",
      [](const obs::TimeSeries& ts, std::string* reason) {
        const std::int64_t pending = ts.latest_value("smr.queue_pending");
        if (pending <= 0) return obs::Health::kOk;
        const std::int64_t span = ts.span_ms("smr.commits");
        if (span < 2'000) return obs::Health::kOk;
        if (ts.delta("smr.commits", 2'000) > 0) return obs::Health::kOk;
        const bool long_flat =
            span >= 10'000 && ts.delta("smr.commits", 10'000) == 0;
        *reason = std::to_string(pending) + " queued, commits flat for >=" +
                  (long_flat ? std::string("10s") : std::string("2s"));
        return long_flat ? obs::Health::kCritical : obs::Health::kDegraded;
      },
      /*degrade_after=*/2,
      /*recover_after=*/4});
  // Mirror push-lag: the WINDOWED p99 of seal -> mirror-ack latency (the
  // registry's since-boot p99 would take minutes to notice a lagging
  // follower; the differenced one reacts within the window).
  hm.add_rule(obs::HealthRule{
      "mirror-push-lag",
      [](const obs::TimeSeries& ts, std::string* reason) {
        const std::uint64_t p99 =
            ts.windowed_quantile("mirror.push_lag_ns", 5'000, 0.99);
        if (p99 <= 500'000'000) return obs::Health::kOk;
        *reason = "push-lag p99 " + std::to_string(p99 / 1'000'000) +
                  "ms over 5s";
        return obs::Health::kDegraded;
      },
      /*degrade_after=*/2,
      /*recover_after=*/4});
  // Session evictions: a spike means clients are losing their dedup
  // retry window faster than they resubmit — usually a TTL misconfig or
  // a stalled intake starving sessions of refresh traffic.
  hm.add_rule(obs::HealthRule{
      "session-evictions",
      [](const obs::TimeSeries& ts, std::string* reason) {
        const std::int64_t d = ts.delta("smr.sessions_evicted", 5'000);
        if (d <= 64) return obs::Health::kOk;
        *reason = std::to_string(d) + " sessions evicted in 5s";
        return obs::Health::kDegraded;
      },
      /*degrade_after=*/2,
      /*recover_after=*/4});
  // WAL stall: IO errors freeze durable_seq (the log is degraded — with
  // quorum_ack on, acks stop flowing), which is critical outright. A
  // climbing durable lag without errors means fsync cannot keep up with
  // the append rate — degraded before it becomes a commit stall.
  hm.add_rule(obs::HealthRule{
      "wal-stall",
      [](const obs::TimeSeries& ts, std::string* reason) {
        const std::int64_t errors = ts.delta("wal.io_errors", 10'000);
        if (errors > 0) {
          *reason = std::to_string(errors) +
                    " WAL IO error(s) in 10s (log degraded)";
          return obs::Health::kCritical;
        }
        const std::int64_t lag = ts.latest_value("wal.durable_lag");
        if (lag <= 4096) return obs::Health::kOk;
        *reason = "WAL durable lag " + std::to_string(lag) + " records";
        return obs::Health::kDegraded;
      },
      /*degrade_after=*/2,
      /*recover_after=*/4});
  // Lease health: a leader-hosted lease-enabled group without a valid
  // lease means every point read takes the consensus fallback — the fast
  // path the operator configured is not delivering. Followers publish
  // expected = 0, so election-only and lease-disabled nodes stay kOk.
  hm.add_rule(obs::HealthRule{
      "lease-health",
      [](const obs::TimeSeries& ts, std::string* reason) {
        const std::int64_t expected = ts.latest_value("smr.lease_expected");
        if (expected <= 0) return obs::Health::kOk;
        const std::int64_t valid = ts.latest_value("smr.lease_valid");
        if (valid >= expected) return obs::Health::kOk;
        *reason = std::to_string(expected - valid) +
                  " leader-hosted group(s) without a valid lease";
        return obs::Health::kDegraded;
      },
      /*degrade_after=*/2,
      /*recover_after=*/2});
  // The mirror-stall watchdog firing at all is critical: the transport
  // had to tear its streams down to make progress.
  hm.add_rule(obs::HealthRule{
      "watchdog",
      [](const obs::TimeSeries& ts, std::string* reason) {
        const std::int64_t d = ts.delta("smr.watchdog_fires", 10'000);
        if (d <= 0) return obs::Health::kOk;
        *reason = std::to_string(d) + " mirror-stall watchdog fire(s) in 10s";
        return obs::Health::kCritical;
      },
      /*degrade_after=*/1,
      /*recover_after=*/4});
}

}  // namespace omega::smr
