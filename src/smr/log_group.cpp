#include "smr/log_group.h"

#include <algorithm>

namespace omega::smr {

LogGroup::LogGroup(svc::GroupId gid, const SmrSpec& spec, CommitHook hook)
    : gid_(gid),
      spec_(spec),
      log_(spec.n, spec.capacity),
      queue_(spec.max_pending, spec.session_ttl_us),
      source_(queue_),
      hook_(std::move(hook)) {
  OMEGA_CHECK(spec_.window >= 1 && spec_.window <= spec_.capacity,
              "bad pump window " << spec_.window);
  OMEGA_CHECK(spec_.max_batch >= 1 && spec_.max_batch <= kMaxBatchCommands,
              "bad max_batch " << spec_.max_batch);
  if (spec_.max_batch > 1) {
    // The ring must cover the pipelined window (see BatchBuffer's reuse
    // argument); one row per in-flight slot is exactly that.
    batch_.emplace("LOG", spec_.window, spec_.max_batch);
  }
  applied_.reserve(std::min<std::uint32_t>(spec_.capacity, 4096));
}

void LogGroup::attach(svc::Group& g) {
  OMEGA_CHECK(g.spec.n == spec_.n,
              "group n " << g.spec.n << " != log n " << spec_.n);
  log_.bind(g.inst.memory->layout());
  if (batch_.has_value()) batch_->bind(g.inst.memory->layout());
  host_.g_ = &g;
  pump_ = std::make_unique<LogPump>(
      log_, host_, spec_.window,
      LogPump::BatchPolicy{spec_.max_batch,
                           batch_.has_value() ? &*batch_ : nullptr});
}

void LogGroup::on_sweep(svc::Group& g, std::int64_t now_us) {
  OMEGA_CHECK(pump_ != nullptr && host_.g_ == &g, "on_sweep before attach");
  // Advance the queue's session clock *before* the harvest below stamps
  // committed sessions with it: on a group added to a long-running pool,
  // the first sweep's commits would otherwise be stamped with a stale (0)
  // clock and their retry windows would expire on the next scan. Entries
  // still queued or in flight are busy and never evicted regardless.
  queue_.evict_idle_sessions(now_us);
  scratch_.clear();
  pump_->tick(source_, scratch_);
  if (!scratch_.empty()) {
    // Apply the sweep's whole harvest as one batch: one applied-log lock,
    // one commit-index publish, one queue lock for every completion, one
    // hook invocation for the push fan-out.
    const std::uint32_t count = static_cast<std::uint32_t>(scratch_.size());
    values_.clear();
    for (const auto& c : scratch_) values_.push_back(c.value);
    std::uint64_t first = 0;
    {
      std::lock_guard<std::mutex> lock(applied_mu_);
      first = applied_.size();
      applied_.insert(applied_.end(), values_.begin(), values_.end());
    }
    commit_index_.store(first + count, std::memory_order_release);
    recs_.clear();
    queue_.commit_batch(first, count, recs_);
    for (std::uint32_t i = 0; i < count; ++i) {
      OMEGA_CHECK(recs_[i].command == values_[i],
                  "slot " << scratch_[i].slot << " decided " << values_[i]
                          << " but the oldest in-flight command is "
                          << recs_[i].command);
    }
    {
      std::shared_lock<std::shared_mutex> lock(hook_mu_);
      if (hook_) hook_(first, values_, recs_);
    }
    // Finished proposer frames pile up one per slot per replica: reap so
    // the executors' round-robin scan stays O(live tasks).
    for (auto& ex : g.execs) ex->reap_apps();
  }
  if (pump_->exhausted()) {
    log_full_.store(true, std::memory_order_release);
    // Whatever the pump can no longer place must not wait forever.
    if (pump_->in_flight() == 0) queue_.abort_all(AppendOutcome::kLogFull);
    else queue_.abort_pending(AppendOutcome::kLogFull);
  }
}

void LogGroup::read(std::uint64_t from, std::uint32_t max,
                    Snapshot& out) const {
  out.entries.clear();
  std::lock_guard<std::mutex> lock(applied_mu_);
  out.commit_index = applied_.size();
  for (std::uint64_t i = from; i < applied_.size() && out.entries.size() < max;
       ++i) {
    out.entries.push_back(applied_[static_cast<std::size_t>(i)]);
  }
}

std::optional<std::uint64_t> LogGroup::decided_by(ProcessId pid,
                                                  std::uint32_t slot) const {
  OMEGA_CHECK(host_.g_ != nullptr, "decided_by before attach");
  OMEGA_CHECK(pid < spec_.n, "bad replica " << pid);
  std::uint64_t v = 0;
  if (!log_.slot(slot).read_decision(*host_.g_->inst.memory, pid, v)) {
    return std::nullopt;
  }
  return v;
}

void LogGroup::abort(AppendOutcome outcome) { queue_.abort_all(outcome); }

void LogGroup::clear_hook() {
  // Unique lock: waits out any sweep currently inside the hook, so the
  // caller may free the state the hook captured right after returning.
  std::unique_lock<std::shared_mutex> lock(hook_mu_);
  hook_ = {};
}

}  // namespace omega::smr
