#include "smr/command_queue.h"

#include <unordered_set>

#include "common/check.h"

namespace omega::smr {

CommandQueue::CommandQueue(std::size_t max_pending,
                           std::int64_t session_ttl_us)
    : max_pending_(max_pending), session_ttl_us_(session_ttl_us) {
  OMEGA_CHECK(max_pending_ >= 1, "queue needs capacity >= 1");
  OMEGA_CHECK(session_ttl_us_ >= 0, "negative session TTL");
}

void CommandQueue::take(Entry& e, std::vector<AppendCompletion>& out) {
  for (auto& c : e.completions) {
    if (c) out.push_back(std::move(c));
  }
  e.completions.clear();
}

std::int64_t CommandQueue::open_session(std::uint64_t client) {
  std::lock_guard<std::mutex> lock(mu_);
  Session& sess = sessions_[client];
  sess.last_active_us = now_us_;
  return session_ttl_us_;
}

CommandQueue::SubmitResult CommandQueue::submit(std::uint64_t client,
                                                std::uint64_t seq,
                                                std::uint64_t command,
                                                AppendCompletion done,
                                                std::uint64_t trace) {
  std::unique_lock<std::mutex> lock(mu_);
  if (session_ttl_us_ > 0 && seq > 1 &&
      sessions_.find(client) == sessions_.end()) {
    // Mid-stream seq from a client we have no session for: with eviction
    // enabled this means the session was TTL-dropped (or never opened).
    // Accepting would silently treat a retry of an already-committed
    // command as fresh — answer explicitly instead; the client re-opens
    // and re-synchronizes its seq space.
    return SubmitResult{AppendOutcome::kSessionEvicted, 0};
  }
  Session& sess = sessions_[client];
  sess.last_active_us = now_us_;
  if (sess.any && seq == sess.last_seq) {
    if (sess.committed) {
      return SubmitResult{AppendOutcome::kCommitted, sess.last_index};
    }
    // Retry of the still-pending newest seq: attach to the original entry
    // (scan the two small queues back-to-front; retries target recent
    // entries, and duplicates are rare relative to the consensus work).
    for (auto queue : {&inflight_, &pending_}) {
      for (auto it = queue->rbegin(); it != queue->rend(); ++it) {
        if (it->client == client && it->seq == seq) {
          if (it->command != command) {
            // A "retry" that changes the command is a client bug, but it
            // arrives over the network — answer it, never throw on the
            // serving thread.
            return SubmitResult{AppendOutcome::kBadCommand, 0};
          }
          if (done) it->completions.push_back(std::move(done));
          return SubmitResult{AppendOutcome::kAccepted, 0};
        }
      }
    }
    for (auto& [ticket, batch] : owned_) {
      (void)ticket;
      for (auto& e : batch) {
        if (e.client == client && e.seq == seq) {
          if (e.command != command) {
            return SubmitResult{AppendOutcome::kBadCommand, 0};
          }
          if (done) e.completions.push_back(std::move(done));
          return SubmitResult{AppendOutcome::kAccepted, 0};
        }
      }
    }
    // The entry was aborted between the session update and now; treat the
    // retry as a fresh submission below.
  } else if (sess.any && seq < sess.last_seq) {
    return SubmitResult{AppendOutcome::kStaleSeq, 0};
  }
  if (pending_.size() >= max_pending_) {
    return SubmitResult{AppendOutcome::kQueueFull, 0};
  }
  sess.any = true;
  sess.last_seq = seq;
  sess.committed = false;
  Entry e;
  e.client = client;
  e.seq = seq;
  e.command = command;
  e.trace = trace;
  if (done) e.completions.push_back(std::move(done));
  pending_.push_back(std::move(e));
  return SubmitResult{AppendOutcome::kAccepted, 0};
}

std::uint64_t CommandQueue::pull() {
  std::lock_guard<std::mutex> lock(mu_);
  if (pending_.empty()) return 0;
  inflight_.push_back(std::move(pending_.front()));
  pending_.pop_front();
  return inflight_.back().command;
}

std::uint32_t CommandQueue::pull_batch(std::uint32_t max,
                                       std::vector<std::uint64_t>& out,
                                       std::vector<std::uint64_t>* traces) {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint32_t moved = 0;
  while (moved < max && !pending_.empty()) {
    inflight_.push_back(std::move(pending_.front()));
    pending_.pop_front();
    out.push_back(inflight_.back().command);
    if (traces != nullptr) traces->push_back(inflight_.back().trace);
    ++moved;
  }
  return moved;
}

std::uint32_t CommandQueue::pull_batch_owned(std::uint32_t max,
                                             std::vector<std::uint64_t>& out,
                                             std::uint64_t& ticket,
                                             std::vector<std::uint64_t>* traces) {
  std::lock_guard<std::mutex> lock(mu_);
  if (pending_.empty()) return 0;
  ticket = next_ticket_++;
  auto& batch = owned_[ticket];
  std::uint32_t moved = 0;
  while (moved < max && !pending_.empty()) {
    batch.push_back(std::move(pending_.front()));
    pending_.pop_front();
    out.push_back(batch.back().command);
    if (traces != nullptr) traces->push_back(batch.back().trace);
    ++moved;
  }
  owned_entries_ += moved;
  return moved;
}

CommandQueue::CommitRecord CommandQueue::commit_front(std::uint64_t index) {
  std::vector<CommitRecord> recs;
  commit_batch(index, 1, recs);
  return recs.front();
}

void CommandQueue::commit_entry_locked(
    Entry& e, std::uint64_t index, std::vector<CommitRecord>& recs,
    std::vector<std::pair<AppendCompletion, std::uint64_t>>& fire) {
  CommitRecord rec;
  rec.client = e.client;
  rec.seq = e.seq;
  rec.command = e.command;
  rec.trace = e.trace;
  recs.push_back(rec);
  Session& sess = sessions_[e.client];
  // A commit is session activity: restamp so the TTL runs from the
  // commit, not from the submit — submit stamps with the *previous*
  // sweep's clock (0 before the first sweep), and an entry that sat
  // queued must not surface with its retry window pre-expired.
  sess.last_active_us = now_us_;
  if (sess.any && sess.last_seq == e.seq) {
    sess.committed = true;
    sess.last_index = index;
  }
  for (auto& c : e.completions) {
    if (c) fire.emplace_back(std::move(c), index);
  }
}

void CommandQueue::commit_owned_deferred(std::uint64_t ticket,
                                         std::uint64_t first_index,
                                         std::vector<CommitRecord>& recs,
                                         DeferredFire& fire) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = owned_.find(ticket);
  OMEGA_CHECK(it != owned_.end(), "commit of unknown ticket " << ticket);
  std::uint64_t index = first_index;
  for (auto& e : it->second) {
    commit_entry_locked(e, index++, recs, fire);
  }
  owned_entries_ -= it->second.size();
  owned_.erase(it);
}

void CommandQueue::commit_owned(std::uint64_t ticket,
                                std::uint64_t first_index,
                                std::vector<CommitRecord>& recs) {
  DeferredFire fire;
  commit_owned_deferred(ticket, first_index, recs, fire);
  for (auto& [c, index] : fire) c(AppendOutcome::kCommitted, index);
}

void CommandQueue::commit_batch_deferred(std::uint64_t first_index,
                                         std::uint32_t count,
                                         std::vector<CommitRecord>& recs,
                                         DeferredFire& fire) {
  std::lock_guard<std::mutex> lock(mu_);
  OMEGA_CHECK(inflight_.size() >= count,
              "commit of " << count << " with " << inflight_.size()
                           << " in flight");
  for (std::uint32_t i = 0; i < count; ++i) {
    commit_entry_locked(inflight_.front(), first_index + i, recs, fire);
    inflight_.pop_front();
  }
}

void CommandQueue::commit_batch(std::uint64_t first_index, std::uint32_t count,
                                std::vector<CommitRecord>& recs) {
  // (completion, index) pairs collected under the lock, fired outside it:
  // completions post to IO loops and must not nest under the queue mutex.
  DeferredFire fire;
  commit_batch_deferred(first_index, count, recs, fire);
  for (auto& [c, index] : fire) c(AppendOutcome::kCommitted, index);
}

void CommandQueue::abort_pending(AppendOutcome outcome) {
  std::vector<AppendCompletion> fire;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& e : pending_) take(e, fire);
    pending_.clear();
  }
  for (auto& c : fire) c(outcome, 0);
}

void CommandQueue::abort_all(AppendOutcome outcome) {
  std::vector<AppendCompletion> fire;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& e : pending_) take(e, fire);
    for (auto& e : inflight_) take(e, fire);
    for (auto& [ticket, batch] : owned_) {
      (void)ticket;
      for (auto& e : batch) take(e, fire);
    }
    pending_.clear();
    // In-flight/owned entries stay: their slots may still decide (a sweep
    // can race this call), and commit_front/commit_owned must find the
    // matching entries. Their waiters have been answered; the late commit
    // fires nothing.
  }
  for (auto& c : fire) c(outcome, 0);
}

void CommandQueue::evict_idle_sessions(std::int64_t now_us) {
  if (session_ttl_us_ == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  now_us_ = now_us;
  // Full-map scans are O(sessions): amortize to a few per TTL. The extra
  // grace this grants an almost-expired session is harmless.
  if (now_us - last_scan_us_ < session_ttl_us_ / 4 + 1) return;
  last_scan_us_ = now_us;
  // A session with queued work is live no matter how old its stamp: its
  // commit must still find the session to record the dedup outcome.
  std::unordered_set<std::uint64_t> busy;
  for (const auto& e : pending_) busy.insert(e.client);
  for (const auto& e : inflight_) busy.insert(e.client);
  for (const auto& [ticket, batch] : owned_) {
    (void)ticket;
    for (const auto& e : batch) busy.insert(e.client);
  }
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    if (now_us - it->second.last_active_us >= session_ttl_us_ &&
        busy.find(it->first) == busy.end()) {
      it = sessions_.erase(it);
      ++evicted_;
    } else {
      ++it;
    }
  }
}

CommandQueue::Stats CommandQueue::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.pending = pending_.size();
  s.in_flight = inflight_.size() + owned_entries_;
  s.sessions = sessions_.size();
  s.evicted = evicted_;
  return s;
}

std::size_t CommandQueue::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_.size();
}

std::size_t CommandQueue::in_flight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return inflight_.size() + owned_entries_;
}

bool CommandQueue::has_work() const {
  std::lock_guard<std::mutex> lock(mu_);
  return !pending_.empty() || !inflight_.empty() || owned_entries_ > 0;
}

}  // namespace omega::smr
