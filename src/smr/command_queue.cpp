#include "smr/command_queue.h"

#include "common/check.h"

namespace omega::smr {

CommandQueue::CommandQueue(std::size_t max_pending)
    : max_pending_(max_pending) {
  OMEGA_CHECK(max_pending_ >= 1, "queue needs capacity >= 1");
}

void CommandQueue::take(Entry& e, std::vector<AppendCompletion>& out) {
  for (auto& c : e.completions) {
    if (c) out.push_back(std::move(c));
  }
  e.completions.clear();
}

CommandQueue::SubmitResult CommandQueue::submit(std::uint64_t client,
                                                std::uint64_t seq,
                                                std::uint64_t command,
                                                AppendCompletion done) {
  std::unique_lock<std::mutex> lock(mu_);
  Session& sess = sessions_[client];
  if (sess.any && seq == sess.last_seq) {
    if (sess.committed) {
      return SubmitResult{AppendOutcome::kCommitted, sess.last_index};
    }
    // Retry of the still-pending newest seq: attach to the original entry
    // (scan the two small queues back-to-front; retries target recent
    // entries, and duplicates are rare relative to the consensus work).
    for (auto queue : {&inflight_, &pending_}) {
      for (auto it = queue->rbegin(); it != queue->rend(); ++it) {
        if (it->client == client && it->seq == seq) {
          if (it->command != command) {
            // A "retry" that changes the command is a client bug, but it
            // arrives over the network — answer it, never throw on the
            // serving thread.
            return SubmitResult{AppendOutcome::kBadCommand, 0};
          }
          if (done) it->completions.push_back(std::move(done));
          return SubmitResult{AppendOutcome::kAccepted, 0};
        }
      }
    }
    // The entry was aborted between the session update and now; treat the
    // retry as a fresh submission below.
  } else if (sess.any && seq < sess.last_seq) {
    return SubmitResult{AppendOutcome::kStaleSeq, 0};
  }
  if (pending_.size() >= max_pending_) {
    return SubmitResult{AppendOutcome::kQueueFull, 0};
  }
  sess.any = true;
  sess.last_seq = seq;
  sess.committed = false;
  Entry e;
  e.client = client;
  e.seq = seq;
  e.command = command;
  if (done) e.completions.push_back(std::move(done));
  pending_.push_back(std::move(e));
  return SubmitResult{AppendOutcome::kAccepted, 0};
}

std::uint64_t CommandQueue::pull() {
  std::lock_guard<std::mutex> lock(mu_);
  if (pending_.empty()) return 0;
  inflight_.push_back(std::move(pending_.front()));
  pending_.pop_front();
  return inflight_.back().command;
}

CommandQueue::CommitRecord CommandQueue::commit_front(std::uint64_t index) {
  std::vector<AppendCompletion> fire;
  CommitRecord rec;
  {
    std::lock_guard<std::mutex> lock(mu_);
    OMEGA_CHECK(!inflight_.empty(), "commit with nothing in flight");
    Entry& e = inflight_.front();
    rec.client = e.client;
    rec.seq = e.seq;
    rec.command = e.command;
    Session& sess = sessions_[e.client];
    if (sess.any && sess.last_seq == e.seq) {
      sess.committed = true;
      sess.last_index = index;
    }
    take(e, fire);
    inflight_.pop_front();
  }
  // Completions run outside the lock: they post to IO loops and must not
  // nest under the queue mutex.
  for (auto& c : fire) c(AppendOutcome::kCommitted, index);
  return rec;
}

void CommandQueue::abort_pending(AppendOutcome outcome) {
  std::vector<AppendCompletion> fire;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& e : pending_) take(e, fire);
    pending_.clear();
  }
  for (auto& c : fire) c(outcome, 0);
}

void CommandQueue::abort_all(AppendOutcome outcome) {
  std::vector<AppendCompletion> fire;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& e : pending_) take(e, fire);
    for (auto& e : inflight_) take(e, fire);
    pending_.clear();
    // In-flight entries stay: their slots may still decide (a sweep can
    // race this call), and commit_front must find the matching entry.
    // Their waiters have been answered; the late commit fires nothing.
  }
  for (auto& c : fire) c(outcome, 0);
}

std::size_t CommandQueue::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_.size();
}

std::size_t CommandQueue::in_flight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return inflight_.size();
}

}  // namespace omega::smr
