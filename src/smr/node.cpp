#include "smr/node.h"

#include <algorithm>

#include "obs/process_gauges.h"
#include "registers/mirror.h"

namespace omega::smr {

namespace {

/// Poke order of recovered cells: payload (spill commands, ballots) before
/// batch seals before decisions — so a peer replaying this node's re-push
/// never sees a seal naming a row it does not have, or a decision whose
/// payload is missing (the same write order the pump itself uses).
std::uint32_t recovery_rank(const Layout& layout, std::uint32_t cell) {
  const RegisterGroup& grp = layout.group(layout.group_of(Cell{cell}));
  if (grp.name.size() >= 3 &&
      grp.name.compare(grp.name.size() - 3, 3, "DEC") == 0) {
    return 2;
  }
  if (grp.name == "LOGBAT" && grp.cols > 0 &&
      (cell - grp.first) % grp.cols == 0) {
    return 1;  // a row's seal cell
  }
  return 0;
}

void poke_recovered(MemoryBackend& mem, const wal::GroupImage& img) {
  const Layout& layout = mem.layout();
  std::vector<std::pair<std::uint32_t, std::uint32_t>> order;  // rank, cell
  order.reserve(img.cells.size());
  for (const auto& [cell, value] : img.cells) {
    (void)value;
    if (cell >= layout.size()) continue;  // shape drift; drop, resync heals
    order.emplace_back(recovery_rank(layout, cell), cell);
  }
  std::sort(order.begin(), order.end());
  for (const auto& [rank, cell] : order) {
    (void)rank;
    mem.poke(Cell{cell}, img.cells.at(cell));
  }
}

}  // namespace

std::uint64_t NodeTopology::local_mask(std::uint32_t n) const {
  OMEGA_CHECK(!nodes.empty(), "empty topology");
  OMEGA_CHECK(n <= 64, "mirror deployments support up to 64 replicas");
  std::uint64_t mask = 0;
  for (ProcessId p = 0; p < n; ++p) {
    if (node_of(p) == self) mask |= std::uint64_t{1} << p;
  }
  return mask;
}

const NodeEndpoint* NodeTopology::endpoint_of_replica(ProcessId pid) const {
  const std::uint32_t node = node_of(pid);
  for (const auto& e : nodes) {
    if (e.node == node) return &e;
  }
  return nullptr;
}

net::MirrorConfig SmrNode::mirror_config(const NodeTopology& topo) {
  OMEGA_CHECK(topo.self < topo.nodes.size(),
              "self " << topo.self << " outside the topology");
  net::MirrorConfig cfg;
  cfg.node = topo.self;
  for (std::uint32_t i = 0; i < topo.nodes.size(); ++i) {
    const NodeEndpoint& e = topo.nodes[i];
    OMEGA_CHECK(e.node == i, "topology nodes must be dense: entry "
                                 << i << " has id " << e.node);
    if (i == topo.self) {
      cfg.bind_address = e.host;
      cfg.port = e.mirror_port;
    } else {
      cfg.peers.push_back(
          net::MirrorPeerConfig{e.node, e.host, e.mirror_port});
    }
  }
  return cfg;
}

SmrNode::SmrNode(NodeTopology topo, svc::SvcConfig svc_cfg,
                 net::NetConfig net_cfg, wal::WalOptions wal_opts)
    : topo_(std::move(topo)),
      wal_(wal_opts.dir.empty() ? nullptr
                                : std::make_unique<wal::Wal>(wal_opts)),
      mirror_(mirror_config(topo_)),
      svc_(svc_cfg),
      smr_(svc_) {
  obs::register_process_gauges();
  if (wal_) {
    // Replay before anything serves. A clean (possibly torn-tail) log
    // yields per-group images consumed by add_log; damage beyond the tail
    // means the journal is not a prefix of this node's history — refuse
    // to impersonate the old replica.
    wal::ReplayResult replayed = wal_->replay();
    OMEGA_CHECK(!replayed.corrupt,
                "WAL in " << wal_->dir()
                          << " is corrupt beyond its tail; wipe the "
                             "directory to rejoin as a fresh node");
    wal_replayed_ = replayed.records;
    for (auto& [gid, image] : replayed.groups) {
      recovery_.emplace(
          gid, std::make_shared<const wal::GroupImage>(std::move(image)));
    }
    // Inbound pushes of durable-floor cells are journaled too, and their
    // REG_ACKs deferred until fsync — a peer's ack then attests "in my
    // WAL", which is what lets a quorum of acks mean a quorum of WALs.
    wal_->set_durable_listener([this](std::uint64_t seq) {
      mirror_.release_durable_acks(seq);
    });
    mirror_.set_inbound_journal(
        [this](svc::GroupId gid, std::uint32_t cell,
               std::uint64_t value) -> std::uint64_t {
          std::uint32_t floor = wal::kNoDurableFloor;
          {
            std::lock_guard<std::mutex> lock(floors_mu_);
            const auto it = floors_.find(gid);
            if (it != floors_.end()) floor = it->second;
          }
          if (floor == wal::kNoDurableFloor || cell < floor) return 0;
          return wal_->append_cell(gid, cell, value);
        });
  }
  net_cfg.bind_address = topo_.nodes[topo_.self].host;
  net_cfg.port = topo_.nodes[topo_.self].serve_port;
  // Stamp this node's identity into METRICS responses (v1.5) so merged
  // multi-endpoint scrapes can tell the samples apart.
  net_cfg.node_id = topo_.self;
  server_ = std::make_unique<net::LeaderServer>(svc_, net_cfg);
  server_->serve_log(smr_);
}

SmrNode::~SmrNode() { stop(); }

void SmrNode::add_log(svc::GroupId gid, SmrSpec spec) {
  OMEGA_CHECK(spec.local_mask == 0 && !spec.memory_factory,
              "SmrNode derives locality and storage from the topology");
  const std::uint64_t mask = topo_.local_mask(spec.n);
  // A mask of 0 here means the placement rule put no replica on this
  // node (more nodes than replicas) — but 0 is the shared "all local"
  // convention downstream, so accepting it would spin up a disconnected
  // private copy of the whole group (split brain). Refuse loudly; such
  // nodes simply do not host this log.
  OMEGA_CHECK(mask != 0,
              "node " << topo_.self << " hosts no replica of group " << gid
                      << " (n=" << spec.n << ", " << topo_.num_nodes()
                      << " nodes): add the log only on hosting nodes");
  spec.local_mask = mask;
  // If the whole group happens to land on this node (more nodes than
  // replica slots used, or a 1-node topology), the mirror degenerates to
  // plain local storage and no push traffic exists for it — but keep the
  // MirroredMemory backend so the deployment story is uniform.
  net::MirrorTransport* transport = &mirror_;
  std::shared_ptr<const wal::GroupImage> image;
  if (wal_) {
    const auto it = recovery_.find(gid);
    if (it != recovery_.end()) image = it->second;
  }
  spec.memory_factory = [this, transport, gid, mask, image](
                            Layout layout, std::uint32_t n) {
    auto mem =
        std::make_unique<MirroredMemory>(std::move(layout), n, mask);
    if (mem->has_remote()) {
      MirroredMemory* raw = mem.get();
      transport->add_group(gid, raw);
      // Unregister before the cells die: a log retired at runtime must
      // never leave the transport's push path a dangling pointer (the
      // transport outlives every group by SmrNode's member order).
      raw->set_teardown(
          [transport, gid] { transport->remove_group(gid); });
      raw->set_write_observer(
          [transport, gid, raw](Cell c, std::uint64_t v) {
            if (raw->should_push(c)) transport->on_local_write(gid, c, v);
          });
    }
    if (wal_) {
      std::lock_guard<std::mutex> lock(floors_mu_);
      floors_[gid] = wal::durable_floor(mem->layout());
    }
    if (image) {
      // Replay the recovered registers through the push observer (they
      // mark dirty bits, so the reconnect snapshot re-publishes them to
      // peers) — but BEFORE LogGroup::attach wraps in the WAL journaling
      // observer, so nothing is re-journaled.
      poke_recovered(*mem, *image);
    }
    return mem;
  };
  spec.mirror_backlog = [transport] {
    return transport->max_unacked_frames();
  };
  spec.mirror_resync = [transport] { transport->force_resync(); };
  // The quorum probes serve two consumers: quorum_ack commit deferral
  // (WAL-gated) AND lease heartbeat confirmation (no WAL involved) — so
  // they are wired whenever the node runs, not only with durability on.
  spec.mirror_write_seq = [transport] { return transport->write_seq(); };
  {
    // Replica votes per remote node: node_of is the shared placement
    // rule, so each acked node contributes the replicas it hosts.
    std::unordered_map<std::uint32_t, std::uint32_t> weights;
    for (ProcessId p = 0; p < spec.n; ++p) {
      const std::uint32_t node = topo_.node_of(p);
      if (node != topo_.self) ++weights[node];
    }
    spec.mirror_acked_votes =
        [transport, weights = std::move(weights)](std::uint64_t mark) {
          std::vector<std::pair<std::uint32_t, std::uint64_t>> marks;
          transport->acked_marks(marks);
          std::uint32_t votes = 0;
          for (const auto& [node, wseq] : marks) {
            if (wseq < mark) continue;
            const auto it = weights.find(node);
            if (it != weights.end()) votes += it->second;
          }
          return votes;
        };
  }
  if (wal_) {
    spec.wal = wal_.get();
    spec.recovery = image;
  }
  smr_.add_log(gid, spec);
}

void SmrNode::start() {
  OMEGA_CHECK(!started_, "start() called twice");
  started_ = true;
  if (wal_) wal_->start();
  mirror_.start();
  svc_.start();
  server_->start();
}

void SmrNode::stop() {
  if (!started_) return;
  // Server first (stops serving + uninstalls listeners), then the worker
  // pool (stops stepping — and with it every write-observer call), then
  // the WAL (final drain + fsync; its durable listener may still release
  // acks into the running mirror loop), then the mirror streams.
  server_->stop();
  svc_.stop();
  if (wal_) wal_->stop();
  mirror_.stop();
  started_ = false;
}

}  // namespace omega::smr
