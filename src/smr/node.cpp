#include "smr/node.h"

#include "obs/process_gauges.h"
#include "registers/mirror.h"

namespace omega::smr {

std::uint64_t NodeTopology::local_mask(std::uint32_t n) const {
  OMEGA_CHECK(!nodes.empty(), "empty topology");
  OMEGA_CHECK(n <= 64, "mirror deployments support up to 64 replicas");
  std::uint64_t mask = 0;
  for (ProcessId p = 0; p < n; ++p) {
    if (node_of(p) == self) mask |= std::uint64_t{1} << p;
  }
  return mask;
}

const NodeEndpoint* NodeTopology::endpoint_of_replica(ProcessId pid) const {
  const std::uint32_t node = node_of(pid);
  for (const auto& e : nodes) {
    if (e.node == node) return &e;
  }
  return nullptr;
}

net::MirrorConfig SmrNode::mirror_config(const NodeTopology& topo) {
  OMEGA_CHECK(topo.self < topo.nodes.size(),
              "self " << topo.self << " outside the topology");
  net::MirrorConfig cfg;
  cfg.node = topo.self;
  for (std::uint32_t i = 0; i < topo.nodes.size(); ++i) {
    const NodeEndpoint& e = topo.nodes[i];
    OMEGA_CHECK(e.node == i, "topology nodes must be dense: entry "
                                 << i << " has id " << e.node);
    if (i == topo.self) {
      cfg.bind_address = e.host;
      cfg.port = e.mirror_port;
    } else {
      cfg.peers.push_back(
          net::MirrorPeerConfig{e.node, e.host, e.mirror_port});
    }
  }
  return cfg;
}

SmrNode::SmrNode(NodeTopology topo, svc::SvcConfig svc_cfg,
                 net::NetConfig net_cfg)
    : topo_(std::move(topo)),
      mirror_(mirror_config(topo_)),
      svc_(svc_cfg),
      smr_(svc_) {
  obs::register_process_gauges();
  net_cfg.bind_address = topo_.nodes[topo_.self].host;
  net_cfg.port = topo_.nodes[topo_.self].serve_port;
  // Stamp this node's identity into METRICS responses (v1.5) so merged
  // multi-endpoint scrapes can tell the samples apart.
  net_cfg.node_id = topo_.self;
  server_ = std::make_unique<net::LeaderServer>(svc_, net_cfg);
  server_->serve_log(smr_);
}

SmrNode::~SmrNode() { stop(); }

void SmrNode::add_log(svc::GroupId gid, SmrSpec spec) {
  OMEGA_CHECK(spec.local_mask == 0 && !spec.memory_factory,
              "SmrNode derives locality and storage from the topology");
  const std::uint64_t mask = topo_.local_mask(spec.n);
  // A mask of 0 here means the placement rule put no replica on this
  // node (more nodes than replicas) — but 0 is the shared "all local"
  // convention downstream, so accepting it would spin up a disconnected
  // private copy of the whole group (split brain). Refuse loudly; such
  // nodes simply do not host this log.
  OMEGA_CHECK(mask != 0,
              "node " << topo_.self << " hosts no replica of group " << gid
                      << " (n=" << spec.n << ", " << topo_.num_nodes()
                      << " nodes): add the log only on hosting nodes");
  spec.local_mask = mask;
  // If the whole group happens to land on this node (more nodes than
  // replica slots used, or a 1-node topology), the mirror degenerates to
  // plain local storage and no push traffic exists for it — but keep the
  // MirroredMemory backend so the deployment story is uniform.
  net::MirrorTransport* transport = &mirror_;
  spec.memory_factory = [transport, gid, mask](Layout layout,
                                               std::uint32_t n) {
    auto mem =
        std::make_unique<MirroredMemory>(std::move(layout), n, mask);
    if (mem->has_remote()) {
      MirroredMemory* raw = mem.get();
      transport->add_group(gid, raw);
      // Unregister before the cells die: a log retired at runtime must
      // never leave the transport's push path a dangling pointer (the
      // transport outlives every group by SmrNode's member order).
      raw->set_teardown(
          [transport, gid] { transport->remove_group(gid); });
      raw->set_write_observer(
          [transport, gid, raw](Cell c, std::uint64_t v) {
            if (raw->should_push(c)) transport->on_local_write(gid, c, v);
          });
    }
    return mem;
  };
  spec.mirror_backlog = [transport] {
    return transport->max_unacked_frames();
  };
  spec.mirror_resync = [transport] { transport->force_resync(); };
  smr_.add_log(gid, spec);
}

void SmrNode::start() {
  OMEGA_CHECK(!started_, "start() called twice");
  started_ = true;
  mirror_.start();
  svc_.start();
  server_->start();
}

void SmrNode::stop() {
  if (!started_) return;
  // Server first (stops serving + uninstalls listeners), then the worker
  // pool (stops stepping — and with it every write-observer call), then
  // the mirror streams.
  server_->stop();
  svc_.stop();
  mirror_.stop();
  started_ = false;
}

}  // namespace omega::smr
