#include "smr/smr_service.h"

namespace omega::smr {

SmrService::SmrService(svc::MultiGroupLeaderService& svc) : svc_(svc) {}

SmrService::~SmrService() {
  // The svc Groups outlive this service (they hold the LogGroups via
  // GroupSpec::pump) and may keep sweeping: detach every commit hook —
  // they capture `this` — before the service state goes away, then
  // answer whatever is still queued (it can never commit visibly now).
  std::unique_lock<std::shared_mutex> lock(logs_mu_);
  for (auto& [gid, lg] : logs_) {
    (void)gid;
    lg->clear_hook();
    lg->abort(AppendOutcome::kAborted);
  }
  logs_.clear();
}

void SmrService::add_log(svc::GroupId gid, const SmrSpec& spec) {
  auto lg = std::make_shared<LogGroup>(
      gid, spec,
      [this, gid](std::uint64_t first_index,
                  const std::vector<std::uint64_t>& values,
                  const std::vector<CommandQueue::CommitRecord>& recs) {
        notify_commit(gid, first_index, values, recs);
      });
  {
    std::unique_lock<std::shared_mutex> lock(logs_mu_);
    const auto [it, inserted] = logs_.emplace(gid, lg);
    (void)it;
    OMEGA_CHECK(inserted, "duplicate log group id " << gid);
  }
  svc::GroupSpec gspec;
  gspec.algo = spec.algo;
  gspec.n = spec.n;
  gspec.extra_registers = [lg](LayoutBuilder& b) { lg->declare(b); };
  gspec.pump = lg;
  gspec.local_mask = spec.local_mask;
  gspec.memory_factory = spec.memory_factory;
  try {
    svc_.add_group(gid, gspec);
  } catch (...) {
    std::unique_lock<std::shared_mutex> lock(logs_mu_);
    logs_.erase(gid);
    throw;
  }
}

bool SmrService::remove_log(svc::GroupId gid) {
  std::shared_ptr<LogGroup> victim;
  {
    std::unique_lock<std::shared_mutex> lock(logs_mu_);
    const auto it = logs_.find(gid);
    if (it == logs_.end()) return false;
    victim = it->second;
    logs_.erase(it);
  }
  svc_.remove_group(gid);
  victim->clear_hook();
  victim->abort(AppendOutcome::kAborted);
  return true;
}

bool SmrService::has_log(svc::GroupId gid) const {
  return find(gid) != nullptr;
}

std::size_t SmrService::num_logs() const {
  std::shared_lock<std::shared_mutex> lock(logs_mu_);
  return logs_.size();
}

std::shared_ptr<LogGroup> SmrService::find(svc::GroupId gid) const {
  std::shared_lock<std::shared_mutex> lock(logs_mu_);
  const auto it = logs_.find(gid);
  return it == logs_.end() ? nullptr : it->second;
}

void SmrService::append(svc::GroupId gid, std::uint64_t client,
                        std::uint64_t seq, std::uint64_t command,
                        AppendCompletion done, std::uint64_t trace) {
  OMEGA_CHECK(done != nullptr, "append needs a completion");
  const auto lg = find(gid);
  if (!lg) {
    done(AppendOutcome::kAborted, 0);
    return;
  }
  if (command < 1 || command >= kLogNoOp) {
    done(AppendOutcome::kBadCommand, 0);
    return;
  }
  if (lg->log_full()) {
    done(AppendOutcome::kLogFull, 0);
    return;
  }
  // The queue retains the completion only for kAccepted (it fires at
  // commit/abort); every other outcome is answered synchronously here, so
  // hand the queue a copy and keep the original callable.
  const CommandQueue::SubmitResult r =
      lg->queue().submit(client, seq, command, done, trace);
  if (r.outcome != AppendOutcome::kAccepted) done(r.outcome, r.index);
}

bool SmrService::read_log(svc::GroupId gid, std::uint64_t from,
                          std::uint32_t max, LogGroup::Snapshot& out) const {
  const auto lg = find(gid);
  if (!lg) return false;
  lg->read(from, max, out);
  return true;
}

bool SmrService::read_point(svc::GroupId gid, std::uint64_t key,
                            std::uint64_t min_index, svc::LeaderView& view,
                            LogGroup::ReadAnswer& answer,
                            LogGroup::ReadMode& mode,
                            LogGroup::ReadCompletion done) {
  const auto lg = find(gid);
  if (!lg) return false;
  if (!svc_.try_leader(gid, view)) view = svc::LeaderView{};
  mode = lg->read_point(key, min_index, view, svc_.now_us(), answer,
                        std::move(done));
  return true;
}

std::uint64_t SmrService::commit_index(svc::GroupId gid) const {
  const auto lg = find(gid);
  return lg ? lg->commit_index() : 0;
}

CommandQueue::Stats SmrService::queue_stats(svc::GroupId gid) const {
  const auto lg = find(gid);
  return lg ? lg->queue().stats() : CommandQueue::Stats{};
}

bool SmrService::open_session(svc::GroupId gid, std::uint64_t client,
                              std::int64_t& ttl_us) {
  const auto lg = find(gid);
  if (!lg) return false;
  ttl_us = lg->queue().open_session(client);
  return true;
}

bool SmrService::hosts_replica(svc::GroupId gid, ProcessId pid) const {
  const auto lg = find(gid);
  // Unknown gids answer true: the append path has already resolved the
  // group, and single-process deployments host everything.
  return lg ? lg->hosts(pid) : true;
}

std::optional<std::uint64_t> SmrService::decided_by(svc::GroupId gid,
                                                    ProcessId pid,
                                                    std::uint32_t slot) const {
  const auto lg = find(gid);
  if (!lg) return std::nullopt;
  return lg->decided_by(pid, slot);
}

void SmrService::set_commit_listener(CommitListener listener) {
  std::unique_lock<std::shared_mutex> lock(listener_mu_);
  listener_ = std::move(listener);
}

void SmrService::notify_commit(
    svc::GroupId gid, std::uint64_t first_index,
    const std::vector<std::uint64_t>& values,
    const std::vector<CommandQueue::CommitRecord>& recs) const {
  std::shared_lock<std::shared_mutex> lock(listener_mu_);
  if (!listener_) return;
  // recs is in lockstep with values on every path (batch, owned, remote);
  // project the trace column for the fan-out.
  std::vector<std::uint64_t> traces;
  traces.reserve(recs.size());
  for (const auto& r : recs) traces.push_back(r.trace);
  listener_(gid, first_index, values, traces);
}

}  // namespace omega::smr
