// SmrNode: one OS process of a multi-node replicated-log deployment.
//
// Assembly (the topology is shared, verbatim, by every node):
//
//   smr::NodeTopology topo;
//   topo.self = 0;                       // my entry in `nodes`
//   topo.nodes = {{0, "127.0.0.1", 7000, 7100},
//                 {1, "127.0.0.1", 7001, 7101},
//                 {2, "127.0.0.1", 7002, 7102}};
//   smr::SmrNode node(topo);
//   node.add_log(42, {.n = 3, .capacity = 4096, .max_batch = 64});
//   node.start();                        // serving + mirroring
//
// Replica placement is deterministic: replica p of an n-replica group
// lives on node p % nodes.size(), so every process derives the same
// locality mask from the same topology and the group layouts agree cell
// for cell (which is what the pushed mirrors rely on).
//
// What one node runs:
//   * a MirrorTransport (net/register_peer.h) — pushes every local
//     register write to the peers, applies their pushes into the groups'
//     MirroredMemory;
//   * a MultiGroupLeaderService stepping only the locally-hosted
//     replicas (svc::GroupSpec::local_mask);
//   * an SmrService whose LogGroups seal when the elected leader is
//     local and observe otherwise (smr/log_group.h);
//   * a LeaderServer on `serve_port` answering the v1 client protocol —
//     appends commit on the leader node; elsewhere they answer
//     kNotLeader with the leader pid, which the client maps back to a
//     node via the shared topology (node_of / endpoint helpers).
//
// Every node serves READ_LOG, COMMIT_WATCH and LEADER queries over its
// own mirror — reads scale with nodes; appends go to the leader.
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/leader_server.h"
#include "net/register_peer.h"
#include "smr/smr_service.h"
#include "wal/wal.h"

namespace omega::smr {

/// One node's addresses in the shared topology.
struct NodeEndpoint {
  std::uint32_t node = 0;         ///< dense id, unique, == index in `nodes`
  std::string host = "127.0.0.1";
  std::uint16_t serve_port = 0;   ///< LeaderServer (clients)
  std::uint16_t mirror_port = 0;  ///< MirrorTransport (peers)
};

struct NodeTopology {
  std::uint32_t self = 0;
  std::vector<NodeEndpoint> nodes;

  std::uint32_t num_nodes() const noexcept {
    return static_cast<std::uint32_t>(nodes.size());
  }
  /// Node hosting replica `pid` of an n-replica group.
  std::uint32_t node_of(ProcessId pid) const noexcept {
    return pid % num_nodes();
  }
  /// This process's locality mask for an n-replica group.
  std::uint64_t local_mask(std::uint32_t n) const;
  /// Serving endpoint of the node hosting replica `pid` (nullptr if the
  /// topology is malformed).
  const NodeEndpoint* endpoint_of_replica(ProcessId pid) const;
};

class SmrNode {
 public:
  /// Binds the mirror and serving sockets immediately (ports readable
  /// right away); serves nothing until start(). `svc_cfg`/`net_cfg` tune
  /// the worker pool and the client front-end as in single-process use.
  ///
  /// `wal_opts.dir` non-empty turns on durability: the node journals its
  /// log groups' durable-floor register writes (and inbound mirrored
  /// ones, gating their REG_ACKs on fsync) to a per-node WAL in that
  /// directory, and — if the directory holds segments from a previous
  /// life — REPLAYS them before serving, so a SIGKILL'd process restarts
  /// in place: recovered registers are poked back (and re-pushed to
  /// peers via the reconnect snapshot), the applied log prefix is
  /// preseeded, the pump fast-forwards, and the v1.2 REG_HELLO resync
  /// fills in what the survivors wrote meanwhile. A WAL found damaged
  /// beyond a torn tail refuses to start (wipe the directory to rejoin
  /// as a fresh replacement instead).
  explicit SmrNode(NodeTopology topo, svc::SvcConfig svc_cfg = {},
                   net::NetConfig net_cfg = {}, wal::WalOptions wal_opts = {});
  ~SmrNode();

  SmrNode(const SmrNode&) = delete;
  SmrNode& operator=(const SmrNode&) = delete;

  /// Creates the log group on this node. Call with the SAME gid and spec
  /// on every node (capacity/window/max_batch shape the shared layout);
  /// local_mask/memory_factory are derived here and must be left empty.
  /// Add every log before start() — the mirrors resync on later adds,
  /// but the cold-start path is the tested one.
  void add_log(svc::GroupId gid, SmrSpec spec);

  void start();
  void stop();

  const NodeTopology& topology() const noexcept { return topo_; }
  std::uint16_t client_port() const noexcept { return server_->port(); }
  std::uint16_t mirror_port() const noexcept { return mirror_.port(); }

  svc::MultiGroupLeaderService& service() noexcept { return svc_; }
  SmrService& smr() noexcept { return smr_; }
  net::MirrorTransport& mirror() noexcept { return mirror_; }
  net::LeaderServer& server() noexcept { return *server_; }
  /// The node's WAL (nullptr when durability is off).
  wal::Wal* wal() noexcept { return wal_.get(); }
  /// Records replayed from the WAL at construction (0 = fresh start or
  /// durability off) — the rejoin benchmarks report this.
  std::uint64_t wal_replayed() const noexcept { return wal_replayed_; }

 private:
  static net::MirrorConfig mirror_config(const NodeTopology& topo);

  NodeTopology topo_;
  /// Destruction order (reverse of declaration): server, smr, svc, the
  /// transport, then the WAL last — group memories reference transport
  /// AND WAL via their write observers until the svc groups die.
  std::unique_ptr<wal::Wal> wal_;
  std::uint64_t wal_replayed_ = 0;
  /// Per-group recovered images, consumed by add_log.
  std::unordered_map<svc::GroupId, std::shared_ptr<const wal::GroupImage>>
      recovery_;
  /// Per-group durable floors for the inbound-journal closure (worker
  /// threads write at add_log, the transport loop reads).
  mutable std::mutex floors_mu_;
  std::unordered_map<svc::GroupId, std::uint32_t> floors_;
  net::MirrorTransport mirror_;
  svc::MultiGroupLeaderService svc_;
  SmrService smr_;
  std::unique_ptr<net::LeaderServer> server_;
  bool started_ = false;
};

}  // namespace omega::smr
