#include "common/table.h"

#include <cstdio>
#include <sstream>

#include "common/check.h"

namespace omega {

AsciiTable::AsciiTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  OMEGA_CHECK(!headers_.empty(), "table needs at least one column");
}

void AsciiTable::add_row(std::vector<std::string> cells) {
  OMEGA_CHECK(cells.size() <= headers_.size(),
              "row has " << cells.size() << " cells, table has "
                         << headers_.size() << " columns");
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string AsciiTable::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      os << (c == 0 ? "| " : " ");
      const std::string& cell = c < row.size() ? row[c] : headers_[c];
      os << cell << std::string(widths[c] - cell.size(), ' ') << " |";
    }
    os << '\n';
  };
  emit_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << (c == 0 ? "|" : "") << std::string(widths[c] + 2, '-') << "|";
  }
  os << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string fmt_double(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

std::string fmt_count(std::uint64_t v) {
  std::string digits = std::to_string(v);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  std::size_t lead = digits.size() % 3;
  if (lead == 0) lead = 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i + 3 - lead) % 3 == 0) out += ',';
    out += digits[i];
  }
  return out;
}

std::string banner(const std::string& title,
                   std::initializer_list<std::string> lines) {
  std::ostringstream os;
  const std::string rule(title.size() + 4, '=');
  os << rule << "\n= " << title << " =\n" << rule << '\n';
  for (const auto& l : lines) os << l << '\n';
  return os.str();
}

}  // namespace omega
