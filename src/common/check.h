// Invariant checking. Model invariants (e.g. 1WnR ownership) are enforced in
// all build types: a violation means the *model* was broken, which would
// silently invalidate every measurement downstream, so we fail loudly.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace omega {

/// Thrown when a checked model invariant is violated (e.g. a process writes a
/// register it does not own, or a driver steps a crashed process).
class InvariantViolation : public std::logic_error {
 public:
  explicit InvariantViolation(const std::string& what)
      : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "invariant violated: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw InvariantViolation(os.str());
}
}  // namespace detail

}  // namespace omega

/// Always-on invariant check. `msg` is a streamable expression chain, e.g.
/// OMEGA_CHECK(a == b, "cell " << c.index << " owner mismatch");
#define OMEGA_CHECK(expr, msg)                                          \
  do {                                                                  \
    if (!(expr)) [[unlikely]] {                                         \
      std::ostringstream omega_check_os_;                               \
      omega_check_os_ << msg; /* NOLINT */                              \
      ::omega::detail::check_failed(#expr, __FILE__, __LINE__,          \
                                    omega_check_os_.str());             \
    }                                                                   \
  } while (false)
