// Core identifier and time types shared by every module.
//
// The paper indexes processes 1..n; internally we use 0-based ids and print
// 1-based ids only in user-facing tables so that code and paper line up with
// an explicit, single +1 at the presentation boundary.
#pragma once

#include <cstdint>
#include <limits>

namespace omega {

/// Identity of a process (0-based; the paper's p_i is `ProcessId{i-1}`).
using ProcessId = std::uint32_t;

/// Sentinel: "no process" (used before a leader scan has ever run, etc.).
inline constexpr ProcessId kNoProcess = std::numeric_limits<ProcessId>::max();

/// Sentinel owner meaning "any process may write this cell" (nWnR registers,
/// §3.5 of the paper). All other cells are 1WnR.
inline constexpr ProcessId kAnyProcess = kNoProcess - 1;

/// Upper bound on system size accepted by layouts/drivers. The algorithms are
/// O(n^2) in shared cells, so this is a sanity bound, not a design limit.
inline constexpr std::uint32_t kMaxProcesses = 4096;

/// Locality masks for multi-process deployments (bit p ⇒ replica p runs in
/// this OS process). The shared convention — used by svc::GroupSpec,
/// smr::SmrSpec and the register mirror — is that 0 means "all local"
/// (the classic single-process deployment).
inline constexpr bool local_mask_covers(std::uint64_t mask, ProcessId p) {
  return mask == 0 || (p < 64 && ((mask >> p) & 1u) != 0);
}

/// Simulated time, in abstract "ticks". The simulator is a discrete-event
/// system: every shared-memory access and timer expiry happens at a tick.
/// Signed so that durations/differences are safe to form.
using SimTime = std::int64_t;

/// A duration in ticks.
using SimDuration = std::int64_t;

/// Sentinel: "never" / "not scheduled".
inline constexpr SimTime kNever = std::numeric_limits<SimTime>::max();

}  // namespace omega
