// Deterministic pseudo-random number generation.
//
// Every experiment in this repository is reproducible from (scenario, seed):
// all randomness flows from one `Rng` per run, seeded explicitly. We implement
// xoshiro256** (public-domain construction by Blackman & Vigna) seeded via
// splitmix64, rather than std::mt19937, because the state is tiny, the output
// is identical across standard libraries, and sub-streams can be forked
// deterministically for per-process schedules.
#pragma once

#include <cstdint>
#include <span>

#include "common/check.h"

namespace omega {

/// splitmix64 step: used for seeding and as a cheap one-shot hash.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// xoshiro256** deterministic PRNG.
class Rng {
 public:
  /// Seeds the four words of state from `seed` via splitmix64.
  explicit Rng(std::uint64_t seed = 0xD1537A5ULL) noexcept;

  /// Next raw 64-bit output.
  std::uint64_t next_u64() noexcept;

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform01() noexcept;

  /// Bernoulli trial with probability `p` (clamped to [0,1]).
  bool bernoulli(double p) noexcept;

  /// Geometric-ish heavy tail: returns lo with prob 1-p, otherwise multiplies
  /// by `factor` repeatedly while further bernoulli(p) trials succeed, capped
  /// at `hi`. Used to model bursty/asynchronous step intervals.
  std::int64_t heavy_tail(std::int64_t lo, std::int64_t hi, double p,
                          double factor = 4.0);

  /// Uniformly picks an element index of a non-empty span.
  template <typename T>
  std::size_t pick_index(std::span<const T> s) {
    OMEGA_CHECK(!s.empty(), "pick_index on empty span");
    return static_cast<std::size_t>(
        uniform(0, static_cast<std::int64_t>(s.size()) - 1));
  }

  /// Forks a deterministic sub-stream; `stream_id` distinguishes children.
  /// Forking does not perturb this generator's sequence.
  Rng fork(std::uint64_t stream_id) const noexcept;

 private:
  std::uint64_t s_[4];
};

}  // namespace omega
