#include "common/rng.h"

namespace omega {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& w : s_) w = splitmix64(sm);
  // All-zero state is the one invalid state of xoshiro; seeding via splitmix64
  // cannot produce it for any seed, but keep the guard explicit and cheap.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::int64_t Rng::uniform(std::int64_t lo, std::int64_t hi) {
  OMEGA_CHECK(lo <= hi, "uniform(" << lo << ", " << hi << ")");
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(next_u64());
  }
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = (~std::uint64_t{0} / span) * span;
  std::uint64_t r = next_u64();
  while (r >= limit) r = next_u64();
  return lo + static_cast<std::int64_t>(r % span);
}

double Rng::uniform01() noexcept {
  // 53 random mantissa bits → uniform in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

std::int64_t Rng::heavy_tail(std::int64_t lo, std::int64_t hi, double p,
                             double factor) {
  OMEGA_CHECK(lo >= 0 && lo <= hi, "heavy_tail bounds");
  double v = static_cast<double>(lo == 0 ? 1 : lo);
  while (bernoulli(p) && v < static_cast<double>(hi)) v *= factor;
  auto out = static_cast<std::int64_t>(v);
  if (out < lo) out = lo;
  if (out > hi) out = hi;
  return out;
}

Rng Rng::fork(std::uint64_t stream_id) const noexcept {
  // Mix the current state with the stream id through splitmix64 so that
  // children with different ids are decorrelated and forking is pure.
  std::uint64_t sm = s_[0] ^ rotl(s_[2], 13) ^ (stream_id * 0x9E3779B97F4A7C15ULL);
  std::uint64_t seed = splitmix64(sm);
  return Rng{seed ^ splitmix64(sm)};
}

}  // namespace omega
