// Small statistics toolkit used by the metrics layer and the bench harness:
// online moments (Welford), percentiles, and a log-bucketed histogram for
// inter-write gaps and latencies.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace omega {

/// Online count/mean/min/max/variance accumulator (Welford's algorithm).
class OnlineStats {
 public:
  void add(double x) noexcept;

  std::uint64_t count() const noexcept { return count_; }
  double mean() const noexcept { return count_ ? mean_ : 0.0; }
  double min() const noexcept { return count_ ? min_ : 0.0; }
  double max() const noexcept { return count_ ? max_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const noexcept;
  double stddev() const noexcept;

  /// Merges another accumulator into this one (parallel-safe combination).
  void merge(const OnlineStats& other) noexcept;

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Returns the q-quantile (0 <= q <= 1) of `samples` using linear
/// interpolation between order statistics. Copies + sorts; intended for
/// end-of-run reporting, not hot paths. Returns 0 for empty input.
double percentile(std::vector<double> samples, double q);

/// Histogram with exponentially growing bucket boundaries:
/// [0,1), [1,2), [2,4), [4,8), ... Suited to latency/gap distributions that
/// span several orders of magnitude.
class LogHistogram {
 public:
  explicit LogHistogram(int max_buckets = 48);

  void add(std::uint64_t value) noexcept;
  std::uint64_t total() const noexcept { return total_; }

  /// Upper bound (exclusive) of bucket `b`.
  std::uint64_t bucket_upper(int b) const noexcept;
  std::uint64_t bucket_count(int b) const noexcept;
  int num_buckets() const noexcept { return static_cast<int>(counts_.size()); }

  /// Smallest value v such that at least q of the mass is < bucket containing
  /// v (bucket-upper-bound approximation of the q-quantile).
  std::uint64_t approx_quantile(double q) const noexcept;

  /// Multi-line ASCII rendering (one row per non-empty bucket with a bar).
  std::string render(int bar_width = 40) const;

 private:
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace omega
