// ASCII table rendering for the bench harness. Every experiment binary prints
// its results as aligned tables (the repository's stand-in for the paper's
// tables/figures), so formatting lives in one place.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace omega {

/// Column-aligned ASCII table with a header row and a separator line.
class AsciiTable {
 public:
  explicit AsciiTable(std::vector<std::string> headers);

  /// Appends a row; missing cells render empty, extra cells are an error.
  void add_row(std::vector<std::string> cells);

  std::size_t num_rows() const noexcept { return rows_.size(); }

  /// Renders with single-space-padded `|` separators and a dashed rule.
  std::string render() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` places after the decimal point.
std::string fmt_double(double v, int digits = 2);

/// Formats an integer with thousands separators: 1234567 -> "1,234,567".
std::string fmt_count(std::uint64_t v);

/// Banner for experiment output: a boxed title + free-form subtitle lines.
std::string banner(const std::string& title,
                   std::initializer_list<std::string> lines = {});

}  // namespace omega
