#include "common/stats.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <sstream>

#include "common/check.h"

namespace omega {

void OnlineStats::add(double x) noexcept {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const noexcept {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double OnlineStats::stddev() const noexcept { return std::sqrt(variance()); }

void OnlineStats::merge(const OnlineStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double total = static_cast<double>(count_ + other.count_);
  const double delta = other.mean_ - mean_;
  m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                         static_cast<double>(other.count_) / total;
  mean_ += delta * static_cast<double>(other.count_) / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
}

double percentile(std::vector<double> samples, double q) {
  if (samples.empty()) return 0.0;
  OMEGA_CHECK(q >= 0.0 && q <= 1.0, "quantile " << q);
  std::sort(samples.begin(), samples.end());
  if (samples.size() == 1) return samples[0];
  const double pos = q * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= samples.size()) return samples.back();
  return samples[lo] * (1.0 - frac) + samples[lo + 1] * frac;
}

LogHistogram::LogHistogram(int max_buckets) {
  OMEGA_CHECK(max_buckets >= 2 && max_buckets <= 66, "bucket count");
  counts_.assign(static_cast<std::size_t>(max_buckets), 0);
}

void LogHistogram::add(std::uint64_t value) noexcept {
  // Bucket 0 holds value 0; bucket b>=1 holds [2^(b-1), 2^b).
  int b = (value == 0) ? 0 : std::bit_width(value);
  if (b >= num_buckets()) b = num_buckets() - 1;
  ++counts_[static_cast<std::size_t>(b)];
  ++total_;
}

std::uint64_t LogHistogram::bucket_upper(int b) const noexcept {
  if (b <= 0) return 1;
  if (b >= 63) return ~std::uint64_t{0};
  return std::uint64_t{1} << b;
}

std::uint64_t LogHistogram::bucket_count(int b) const noexcept {
  if (b < 0 || b >= num_buckets()) return 0;
  return counts_[static_cast<std::size_t>(b)];
}

std::uint64_t LogHistogram::approx_quantile(double q) const noexcept {
  if (total_ == 0) return 0;
  const auto target = static_cast<std::uint64_t>(
      q * static_cast<double>(total_));
  std::uint64_t seen = 0;
  for (int b = 0; b < num_buckets(); ++b) {
    seen += counts_[static_cast<std::size_t>(b)];
    if (seen > target) return bucket_upper(b);
  }
  return bucket_upper(num_buckets() - 1);
}

std::string LogHistogram::render(int bar_width) const {
  std::ostringstream os;
  std::uint64_t peak = 0;
  for (auto c : counts_) peak = std::max(peak, c);
  for (int b = 0; b < num_buckets(); ++b) {
    const auto c = counts_[static_cast<std::size_t>(b)];
    if (c == 0) continue;
    const std::uint64_t lo = (b == 0) ? 0 : bucket_upper(b - 1);
    const int bar =
        peak == 0 ? 0
                  : static_cast<int>(static_cast<double>(c) /
                                     static_cast<double>(peak) * bar_width);
    os << '[' << lo << ", " << bucket_upper(b) << "): " << c << ' ';
    for (int i = 0; i < bar; ++i) os << '#';
    os << '\n';
  }
  return os.str();
}

}  // namespace omega
