#include "consensus/consensus.h"

namespace omega {

namespace {

constexpr std::uint64_t kDecidedBit = 1ull << 32;
constexpr std::uint64_t kValueMask = 0xFFFFull;

struct Ballot {
  std::uint64_t lre = 0;
  std::uint64_t lrww = 0;
  std::uint64_t val = 0;
};

std::uint64_t pack(const Ballot& b) {
  return (b.lre << 40) | (b.lrww << 16) | (b.val & kValueMask);
}

Ballot unpack(std::uint64_t bits) {
  Ballot b;
  b.lre = bits >> 40;
  b.lrww = (bits >> 16) & kMaxConsensusRound;
  b.val = bits & kValueMask;
  return b;
}

// Free coroutine (no captures: all state is copied into the frame via
// parameters — see the lambda-capture caveat in proc_task.h's ecosystem:
// a capturing lambda's closure dies with the call, parameters do not).
ProcTask run_proposer(std::uint32_t reg_base, std::uint32_t dec_base,
                      std::uint32_t n, ProcessId self, std::uint64_t value,
                      std::function<void(std::uint64_t)> on_decide) {
  const auto reg_cell = [reg_base](ProcessId j) { return Cell{reg_base + j}; };
  const auto dec_cell = [dec_base](ProcessId j) { return Cell{dec_base + j}; };

  Ballot mine = unpack(co_await ReadOp{reg_cell(self)});
  std::uint64_t round = self + 1;  // unique per proposer: ≡ self+1 (mod n)
  for (;;) {
    // Decision board: adopt (and republish, to help laggards) any decision.
    for (ProcessId j = 0; j < n; ++j) {
      const std::uint64_t d = co_await ReadOp{dec_cell(j)};
      if ((d & kDecidedBit) != 0) {
        const std::uint64_t v = d & kValueMask;
        co_await WriteOp{dec_cell(self), kDecidedBit | v};
        on_decide(v);
        co_return;
      }
    }
    // Ω gates proposals: only the believed leader runs alpha. This is what
    // turns the ledger's obstruction-freedom into termination.
    const auto ldr = co_await LeaderQueryOp{};
    if (static_cast<ProcessId>(ldr) != self) {
      co_await YieldOp{};
      continue;
    }

    // --- alpha(round, value), phase 1: enter the round.
    mine.lre = round;
    co_await WriteOp{reg_cell(self), pack(mine)};
    bool abort = false;
    Ballot best{};
    bool have_best = false;
    for (ProcessId j = 0; j < n; ++j) {
      Ballot b;
      if (j == self) {
        b = mine;
      } else {
        b = unpack(co_await ReadOp{reg_cell(j)});
        if (b.lre > round || b.lrww > round) {
          abort = true;
          break;
        }
      }
      if (b.lrww > 0 && (!have_best || b.lrww > best.lrww)) {
        best = b;
        have_best = true;
      }
    }
    if (!abort) {
      // --- phase 2: commit-write the adopted value at this round.
      const std::uint64_t w = have_best ? best.val : value;
      mine.lre = round;
      mine.lrww = round;
      mine.val = w;
      co_await WriteOp{reg_cell(self), pack(mine)};
      for (ProcessId j = 0; j < n && !abort; ++j) {
        if (j == self) continue;
        const Ballot b = unpack(co_await ReadOp{reg_cell(j)});
        if (b.lre > round || b.lrww > round) abort = true;
      }
      if (!abort) {
        co_await WriteOp{dec_cell(self), kDecidedBit | w};
        on_decide(w);
        co_return;
      }
    }
    round += n;
    OMEGA_CHECK(round <= kMaxConsensusRound, "round space exhausted");
    co_await YieldOp{};  // back off one step before retrying
  }
}

}  // namespace

ConsensusInstance::ConsensusInstance(std::uint32_t n, std::string tag)
    : n_(n), tag_(std::move(tag)) {
  OMEGA_CHECK(n >= 1 && n <= kMaxProcesses, "bad n " << n);
}

void ConsensusInstance::declare(LayoutBuilder& b) {
  OMEGA_CHECK(!declared_, "instance " << tag_ << " declared twice");
  reg_group_ = b.add_array(tag_ + "REG", n_, OwnerRule::kRowOwner,
                           /*critical=*/false);
  dec_group_ = b.add_array(tag_ + "DEC", n_, OwnerRule::kRowOwner,
                           /*critical=*/false);
  declared_ = true;
}

void ConsensusInstance::bind(const Layout& layout) {
  OMEGA_CHECK(declared_, "bind() before declare()");
  reg_base_ = layout.cell(reg_group_, 0).index;
  dec_base_ = layout.cell(dec_group_, 0).index;
}

ProcTask ConsensusInstance::proposer(
    ProcessId self, std::uint64_t value,
    std::function<void(std::uint64_t)> on_decide) const {
  OMEGA_CHECK(reg_base_ != kNoBase, "proposer() before bind()");
  OMEGA_CHECK(self < n_, "bad proposer " << self);
  OMEGA_CHECK(value >= 1 && value <= kMaxConsensusValue,
              "value " << value << " out of range");
  OMEGA_CHECK(on_decide != nullptr, "missing on_decide");
  return run_proposer(reg_base_, dec_base_, n_, self, value,
                      std::move(on_decide));
}

bool ConsensusInstance::read_decision(MemoryBackend& mem, ProcessId j,
                                      std::uint64_t& out) const {
  OMEGA_CHECK(reg_base_ != kNoBase, "read_decision() before bind()");
  OMEGA_CHECK(j < n_, "bad pid " << j);
  const std::uint64_t d = mem.peek(Cell{dec_base_ + j});
  if ((d & kDecidedBit) == 0) return false;
  out = d & kValueMask;
  return true;
}

}  // namespace omega
