// Ω-based consensus over 1WnR registers.
//
// Why this module exists: the paper's whole motivation is that Ω is the
// weakest failure detector for consensus in crash-prone shared memory
// ([19], §1). This is the downstream construction: an obstruction-free
// round-based ledger ("Alpha" in Guerraoui & Raynal's terminology [12],
// structurally the shared-memory form of Disk Paxos [9] with one reliable
// n-block disk) whose liveness is restored by any Ω implementation from
// src/core — demonstrating the oracle's API in anger.
//
// Shared registers (declared into the same memory as the Ω registers via
// the factory's LayoutExtension hook):
//   <tag>REG[n] — p_i's ballot record, packed (lre, lrww, val):
//                   lre  — last round entered (phase-1 stamp)
//                   lrww — last round with a phase-2 write
//                   val  — the value written in round lrww
//   <tag>DEC[n] — p_i's decision board entry (0 = undecided).
//
// alpha(r, v) for proposer p_i (rounds unique per process: r ≡ i+1 mod n):
//   1. REG[i] ← (r, lrww_i, val_i)                 (enter round r)
//   2. read all REG[j]; abort if any lre or lrww > r
//   3. w ← value of the highest lrww seen (v if none)
//   4. REG[i] ← (r, r, w)                          (phase-2 write)
//   5. read all REG[j]; abort if any lre or lrww > r
//   6. return w (commit)
//
// Safety is round-based-register classic: two commits at rounds r < r' see
// each other through the step-2/5 reads — the later proposer adopts the
// earlier value or one of them aborts. Ω provides termination: eventually a
// single correct proposer runs unopposed with ever-larger rounds.
//
// Lifecycle: construct → declare(builder) [inside make_omega's extension] →
// bind(memory.layout()) → proposer(...)/read_decision(...).
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "core/factory.h"
#include "core/proc_task.h"
#include "registers/layout.h"

namespace omega {

/// Consensus proposals are application values in [1, 2^16): the packed
/// ballot record must fit one 64-bit register (24-bit rounds, 16-bit value).
inline constexpr std::uint64_t kMaxConsensusValue = (1u << 16) - 1;
inline constexpr std::uint64_t kMaxConsensusRound = (1u << 24) - 1;

/// One single-shot consensus instance.
class ConsensusInstance {
 public:
  /// `tag` distinguishes register group names when several instances share a
  /// layout (the replicated log declares one instance per slot).
  explicit ConsensusInstance(std::uint32_t n, std::string tag = "C");

  /// Declares the REG/DEC groups; call from the factory's LayoutExtension.
  void declare(LayoutBuilder& b);

  /// Resolves group ids to concrete cells; call once the layout is built
  /// (e.g. bind(driver.memory().layout())).
  void bind(const Layout& layout);

  /// Builds the proposer coroutine for process `self` proposing `value`
  /// (1 <= value <= kMaxConsensusValue; 0 is reserved for "no decision").
  /// Runs under any driver — it consults the co-located Ω via LeaderQueryOp —
  /// and invokes `on_decide(decided)` exactly once before completing.
  ProcTask proposer(ProcessId self, std::uint64_t value,
                    std::function<void(std::uint64_t)> on_decide) const;

  /// Reads p_j's decision-board entry (test/report helper; uninstrumented).
  bool read_decision(MemoryBackend& mem, ProcessId j,
                     std::uint64_t& out) const;

  std::uint32_t n() const noexcept { return n_; }
  const std::string& tag() const noexcept { return tag_; }

 private:
  static constexpr std::uint32_t kNoBase = 0xFFFFFFFFu;

  std::uint32_t n_;
  std::string tag_;
  GroupId reg_group_ = 0;
  GroupId dec_group_ = 0;
  bool declared_ = false;
  std::uint32_t reg_base_ = kNoBase;  ///< cell index of REG[0]
  std::uint32_t dec_base_ = kNoBase;  ///< cell index of DEC[0]
};

}  // namespace omega
