#include "consensus/replicated_log.h"

#include <algorithm>

namespace omega {

ReplicatedLog::ReplicatedLog(std::uint32_t n, std::uint32_t capacity) : n_(n) {
  OMEGA_CHECK(capacity >= 1 && capacity <= 4096, "bad capacity " << capacity);
  slots_.reserve(capacity);
  for (std::uint32_t s = 0; s < capacity; ++s) {
    slots_.emplace_back(n, "L" + std::to_string(s));
  }
}

void ReplicatedLog::declare(LayoutBuilder& b) {
  for (auto& s : slots_) s.declare(b);
}

void ReplicatedLog::bind(const Layout& layout) {
  for (auto& s : slots_) s.bind(layout);
}

const ConsensusInstance& ReplicatedLog::slot(std::uint32_t s) const {
  OMEGA_CHECK(s < slots_.size(), "bad slot " << s);
  return slots_[s];
}

std::optional<std::uint64_t> ReplicatedLog::decided(MemoryBackend& mem,
                                                    std::uint32_t s) const {
  OMEGA_CHECK(s < slots_.size(), "bad slot " << s);
  // A decision published by any process is THE decision (agreement).
  for (ProcessId j = 0; j < n_; ++j) {
    std::uint64_t v = 0;
    if (slots_[s].read_decision(mem, j, v)) return v;
  }
  return std::nullopt;
}

std::vector<std::uint64_t> ReplicatedLog::pump(
    SimDriver& driver, std::vector<std::vector<std::uint64_t>> commands,
    SimTime deadline) {
  OMEGA_CHECK(commands.size() == n_, "need one command list per process");
  for (const auto& list : commands) {
    for (auto c : list) {
      OMEGA_CHECK(c >= 1 && c < kLogNoOp, "command " << c << " out of range");
    }
  }
  std::vector<std::size_t> next(n_, 0);
  std::vector<std::uint64_t> log;

  auto pending_total = [&] {
    std::size_t total = 0;
    for (ProcessId i = 0; i < n_; ++i) {
      if (driver.plan().halt_time(i) != kNever) continue;  // halted: dropped
      total += commands[i].size() - next[i];
    }
    return total;
  };

  // Proposers of processes that halt mid-slot never finish; completion is
  // judged over the processes still running.
  auto live_apps_done = [&driver, this] {
    for (ProcessId i = 0; i < n_; ++i) {
      if (driver.now() >= driver.plan().halt_time(i)) continue;
      if (!driver.apps_done(i)) return false;
    }
    return true;
  };

  // Command forwarding (as in leader-based SMR): per slot, every replica
  // proposes the globally oldest unplaced command, chosen round-robin over
  // the replicas so no submitter is starved. Whoever Ω has elected then
  // drives exactly that command to decision — without forwarding, only the
  // leader's own submissions would ever enter the log.
  ProcessId rr = 0;
  for (std::uint32_t s = 0; s < capacity() && pending_total() > 0; ++s) {
    std::uint64_t proposal = kLogNoOp;
    for (std::uint32_t probe = 0; probe < n_; ++probe) {
      const ProcessId owner = (rr + probe) % n_;
      if (driver.now() >= driver.plan().halt_time(owner)) continue;
      if (next[owner] < commands[owner].size()) {
        proposal = commands[owner][next[owner]];
        rr = owner + 1;
        break;
      }
    }
    if (proposal == kLogNoOp) break;  // nothing pending among live replicas
    // Decisions are read back from the shared decision board rather than
    // through the callback (the board is the authoritative, crash-safe
    // record).
    for (ProcessId i = 0; i < n_; ++i) {
      if (driver.plan().crashed_by(i, driver.now())) continue;
      driver.add_app_task(
          i, slots_[s].proposer(i, proposal, [](std::uint64_t) {}));
    }
    // Run until every live proposer finished this slot (they all decide
    // once any decision is on the board) or the deadline passes.
    while (!live_apps_done() && driver.now() < deadline) {
      driver.run_for(1000);
    }
    const auto outcome = decided(driver.memory(), s);
    if (!outcome.has_value()) break;  // deadline hit mid-slot
    if (*outcome != kLogNoOp) {
      log.push_back(*outcome);
      // The winner advances its cursor.
      for (ProcessId i = 0; i < n_; ++i) {
        if (next[i] < commands[i].size() && commands[i][next[i]] == *outcome) {
          ++next[i];
          break;
        }
      }
    }
    if (driver.now() >= deadline) break;
  }
  return log;
}

}  // namespace omega
