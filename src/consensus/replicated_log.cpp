#include "consensus/replicated_log.h"

#include <algorithm>

#include "consensus/log_pump.h"

namespace omega {

ReplicatedLog::ReplicatedLog(std::uint32_t n, std::uint32_t capacity) : n_(n) {
  OMEGA_CHECK(capacity >= 1 && capacity <= 65536,
              "bad capacity " << capacity);
  slots_.reserve(capacity);
  for (std::uint32_t s = 0; s < capacity; ++s) {
    slots_.emplace_back(n, "L" + std::to_string(s));
  }
}

void ReplicatedLog::declare(LayoutBuilder& b) {
  for (auto& s : slots_) s.declare(b);
}

void ReplicatedLog::bind(const Layout& layout) {
  for (auto& s : slots_) s.bind(layout);
}

const ConsensusInstance& ReplicatedLog::slot(std::uint32_t s) const {
  OMEGA_CHECK(s < slots_.size(), "bad slot " << s);
  return slots_[s];
}

std::optional<std::uint64_t> ReplicatedLog::decided(MemoryBackend& mem,
                                                    std::uint32_t s) const {
  OMEGA_CHECK(s < slots_.size(), "bad slot " << s);
  // A decision published by any process is THE decision (agreement).
  for (ProcessId j = 0; j < n_; ++j) {
    std::uint64_t v = 0;
    if (slots_[s].read_decision(mem, j, v)) return v;
  }
  return std::nullopt;
}

std::vector<std::uint64_t> ReplicatedLog::pump(
    SimDriver& driver, std::vector<std::vector<std::uint64_t>> commands,
    SimTime deadline) {
  OMEGA_CHECK(commands.size() == n_, "need one command list per process");
  for (const auto& list : commands) {
    for (auto c : list) {
      OMEGA_CHECK(c >= 1 && c < kLogNoOp, "command " << c << " out of range");
    }
  }
  std::vector<std::size_t> next(n_, 0);
  std::vector<std::uint64_t> log;

  auto pending_total = [&] {
    std::size_t total = 0;
    for (ProcessId i = 0; i < n_; ++i) {
      if (driver.plan().halt_time(i) != kNever) continue;  // halted: dropped
      total += commands[i].size() - next[i];
    }
    return total;
  };

  // Proposers of processes that halt mid-slot never finish; completion is
  // judged over the processes still running.
  auto live_apps_done = [&driver, this] {
    for (ProcessId i = 0; i < n_; ++i) {
      if (driver.now() >= driver.plan().halt_time(i)) continue;
      if (!driver.apps_done(i)) return false;
    }
    return true;
  };

  // Command forwarding (as in leader-based SMR): per slot, every replica
  // proposes the globally oldest unplaced command, chosen round-robin over
  // the replicas so no submitter is starved. The supplier peeks; cursors
  // only advance when the command actually commits.
  ProcessId rr = 0;
  auto supply = [&]() -> std::uint64_t {
    for (std::uint32_t probe = 0; probe < n_; ++probe) {
      const ProcessId owner = (rr + probe) % n_;
      if (driver.now() >= driver.plan().halt_time(owner)) continue;
      if (next[owner] < commands[owner].size()) {
        rr = owner + 1;
        return commands[owner][next[owner]];
      }
    }
    return kNoCommand;  // nothing pending among live replicas
  };

  SimPumpHost host(driver);
  LogPump pump(*this, host, /*window=*/1);
  std::vector<LogPump::Commit> commits;

  while (pending_total() > 0 && !pump.exhausted() &&
         driver.now() < deadline) {
    commits.clear();
    pump.tick(supply, commits);
    if (pump.in_flight() == 0 && commits.empty()) break;  // nothing to drive
    // Run until every live proposer finished this slot (they all decide
    // once any decision is on the board) or the deadline passes.
    while (pump.in_flight() > 0 && !live_apps_done() &&
           driver.now() < deadline) {
      driver.run_for(1000);
    }
    if (pump.in_flight() > 0) {
      // Harvest what the run decided; a deadline hit mid-slot leaves the
      // slot undecided and ends the pump below.
      const std::uint32_t before = pump.committed();
      pump.tick([] { return kNoCommand; }, commits);
      if (pump.committed() == before) break;  // deadline hit mid-slot
    }
    for (const auto& c : commits) {
      if (c.value == kLogNoOp) continue;
      log.push_back(c.value);
      // The winner advances its cursor.
      for (ProcessId i = 0; i < n_; ++i) {
        if (next[i] < commands[i].size() && commands[i][next[i]] == c.value) {
          ++next[i];
          break;
        }
      }
    }
  }
  return log;
}

}  // namespace omega
