// A replicated log built from a sequence of consensus slots — the classic
// leader-based state-machine-replication pattern the paper's introduction
// motivates (Paxos [16] is cited as *the* Ω-based application).
//
// Structure: `capacity` independent ConsensusInstances (slot s uses groups
// "L<s>REG"/"L<s>DEC"). Commands are totally ordered by deciding slot 0,
// then slot 1, ... Commands are *forwarded*, as in leader-based SMR: per
// slot every replica proposes the globally oldest unplaced command (chosen
// round-robin over submitters so nobody is starved), and whichever process Ω
// has elected drives it to decision — without forwarding only the leader's
// own submissions would ever enter the log.
//
// The pump() helper orchestrates a SimDriver-based run: it attaches one
// proposer per live process per slot, runs the simulation until the slot
// decides everywhere, and feeds the next slot. Commands must be unique
// non-zero values (callers typically encode (replica, seq)). The slot
// mechanics behind pump() are driver-agnostic (consensus/log_pump.h); the
// live runtime pumps the same log incrementally through smr::LogGroup.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "consensus/consensus.h"
#include "sim/driver.h"

namespace omega {

/// Reserved proposal meaning "no command" (never returned as a log entry).
inline constexpr std::uint64_t kLogNoOp = kMaxConsensusValue;

class ReplicatedLog {
 public:
  ReplicatedLog(std::uint32_t n, std::uint32_t capacity);

  /// Declares every slot's registers; pass from the LayoutExtension.
  void declare(LayoutBuilder& b);
  /// Binds every slot once the layout exists.
  void bind(const Layout& layout);

  std::uint32_t n() const noexcept { return n_; }
  std::uint32_t capacity() const noexcept {
    return static_cast<std::uint32_t>(slots_.size());
  }
  const ConsensusInstance& slot(std::uint32_t s) const;

  /// Drives `driver` until all commands are placed (or slots/deadline run
  /// out). `commands[i]` are process i's submissions, in order; they must be
  /// unique, in [1, kLogNoOp). Returns the decided log (no-ops skipped).
  /// Crashed processes simply stop proposing; their unplaced commands are
  /// dropped (clients of a real system would retry via another replica).
  std::vector<std::uint64_t> pump(
      SimDriver& driver, std::vector<std::vector<std::uint64_t>> commands,
      SimTime deadline);

  /// The decided value of slot `s` as currently published (0 = undecided).
  std::optional<std::uint64_t> decided(MemoryBackend& mem,
                                       std::uint32_t s) const;

 private:
  std::uint32_t n_;
  std::vector<ConsensusInstance> slots_;
};

}  // namespace omega
