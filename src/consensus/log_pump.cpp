#include "consensus/log_pump.h"

#include <chrono>

#include "obs/flight_recorder.h"

namespace omega {

namespace {

std::int64_t steady_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Descriptor layout: bit 0..6 count, bit 7..12 sealer replica id.
constexpr std::uint64_t kCountBits = 7;
constexpr std::uint64_t kCountMask = (1u << kCountBits) - 1;
constexpr std::uint64_t kSealerBits = 6;
constexpr std::uint64_t kSealerMask = (1u << kSealerBits) - 1;

/// Bounded seqlock retries per harvest before stalling to the next tick.
constexpr int kPayloadReadAttempts = 4;

}  // namespace

std::uint64_t encode_batch_descriptor(std::uint32_t count, ProcessId sealer) {
  OMEGA_CHECK(count >= 1 && count <= kMaxBatchCommands,
              "batch count " << count << " out of range");
  OMEGA_CHECK(sealer <= kSealerMask, "sealer " << sealer << " out of range");
  return (static_cast<std::uint64_t>(sealer) << kCountBits) | count;
}

void decode_batch_descriptor(std::uint64_t descriptor, std::uint32_t& count,
                             ProcessId& sealer) {
  count = static_cast<std::uint32_t>(descriptor & kCountMask);
  sealer = static_cast<ProcessId>((descriptor >> kCountBits) & kSealerMask);
  OMEGA_CHECK(count >= 1 && descriptor < kLogNoOp &&
                  (descriptor >> (kCountBits + kSealerBits)) == 0,
              "malformed batch descriptor " << descriptor);
}

std::uint32_t batch_checksum(const std::uint64_t* cmds, std::uint32_t count) {
  // Order-sensitive so a rotated/reordered buffer row is caught too.
  std::uint32_t acc = 0x811C9DC5u;  // FNV-1a style fold
  for (std::uint32_t i = 0; i < count; ++i) {
    acc = (acc ^ static_cast<std::uint32_t>(cmds[i] & 0xFFFF)) * 0x01000193u;
    acc = (acc ^ (acc >> 15)) + 1;
  }
  return acc;
}

std::uint64_t pack_seal(std::uint32_t slot, std::uint32_t checksum) {
  return (static_cast<std::uint64_t>(slot) + 1) << 32 | checksum;
}

std::uint64_t seal_slot(std::uint64_t seal) {
  const std::uint64_t hi = seal >> 32;
  return hi == 0 ? kNoSealedSlot : hi - 1;
}

std::uint32_t seal_checksum(std::uint64_t seal) {
  return static_cast<std::uint32_t>(seal);
}

BatchBuffer::BatchBuffer(std::string tag, std::uint32_t banks,
                         std::uint32_t rows, std::uint32_t cols)
    : tag_(std::move(tag)), banks_(banks), rows_(rows), cols_(cols) {
  OMEGA_CHECK(banks_ >= 1 && rows_ >= 1 && cols_ >= 1,
              "empty batch buffer " << tag_);
  OMEGA_CHECK(cols_ <= kMaxBatchCommands,
              "batch buffer " << tag_ << " cols " << cols_
                              << " exceed the descriptor's count range");
}

void BatchBuffer::declare(LayoutBuilder& b) {
  OMEGA_CHECK(!declared_, "batch buffer " << tag_ << " declared twice");
  // One matrix row per (bank, ring row); column 0 is the seal cell, the
  // commands follow, then one trace-id cell per command (v1.4). Keeping
  // it one group keeps the layout identical on every process of a
  // mirrored deployment by construction.
  b.add_buffer(tag_ + "BAT", banks_ * rows_, 1 + 2 * cols_);
  declared_ = true;
}

void BatchBuffer::bind(const Layout& layout) {
  OMEGA_CHECK(declared_, "bind before declare");
  GroupId g = 0;
  OMEGA_CHECK(layout.find_group(tag_ + "BAT", g),
              "layout is missing " << tag_ << "BAT");
  base_ = layout.cell(g, 0, 0).index;
}

std::uint32_t BatchBuffer::cell_index(std::uint32_t bank, std::uint32_t row,
                                      std::uint32_t col) const {
  OMEGA_CHECK(base_ != kNoBase, "batch buffer " << tag_ << " not bound");
  OMEGA_CHECK(bank < banks_ && row < rows_ && col < 1 + 2 * cols_,
              "batch cell out of range");
  return base_ + (bank * rows_ + row) * (1 + 2 * cols_) + col;
}

void BatchBuffer::store_cmd(MemoryBackend& mem, std::uint32_t bank,
                            std::uint32_t row, std::uint32_t col,
                            std::uint64_t v) const {
  mem.poke(Cell{cell_index(bank, row, 1 + col)}, v);
}

std::uint64_t BatchBuffer::load_cmd(MemoryBackend& mem, std::uint32_t bank,
                                    std::uint32_t row,
                                    std::uint32_t col) const {
  return mem.peek(Cell{cell_index(bank, row, 1 + col)});
}

void BatchBuffer::store_seal(MemoryBackend& mem, std::uint32_t bank,
                             std::uint32_t row, std::uint64_t seal) const {
  mem.poke(Cell{cell_index(bank, row, 0)}, seal);
}

std::uint64_t BatchBuffer::load_seal(MemoryBackend& mem, std::uint32_t bank,
                                     std::uint32_t row) const {
  return mem.peek(Cell{cell_index(bank, row, 0)});
}

void BatchBuffer::store_trace(MemoryBackend& mem, std::uint32_t bank,
                              std::uint32_t row, std::uint32_t col,
                              std::uint64_t trace) const {
  mem.poke(Cell{cell_index(bank, row, 1 + cols_ + col)}, trace);
}

std::uint64_t BatchBuffer::load_trace(MemoryBackend& mem, std::uint32_t bank,
                                      std::uint32_t row,
                                      std::uint32_t col) const {
  return mem.peek(Cell{cell_index(bank, row, 1 + cols_ + col)});
}

LogPump::LogPump(ReplicatedLog& log, PumpHost& host, std::uint32_t window,
                 BatchPolicy batch)
    : log_(log), host_(host), window_(window), batch_(batch) {
  OMEGA_CHECK(window_ >= 1, "pump window must be >= 1");
  OMEGA_CHECK(host_.n() == log_.n(), "host has " << host_.n()
                                                 << " replicas, log wants "
                                                 << log_.n());
  OMEGA_CHECK(batch_.max_batch >= 1 && batch_.max_batch <= kMaxBatchCommands,
              "max_batch " << batch_.max_batch << " out of range");
  if (batch_.max_batch > 1) {
    OMEGA_CHECK(batch_.buffer != nullptr,
                "batched pump needs a batch buffer");
    OMEGA_CHECK(batch_.buffer->cols() >= batch_.max_batch,
                "batch buffer holds " << batch_.buffer->cols()
                                      << " commands per row, max_batch is "
                                      << batch_.max_batch);
    // A row is reused `rows` slots later; with rows >= window the previous
    // tenant has always been harvested by then.
    OMEGA_CHECK(batch_.buffer->rows() >= window_,
                "batch ring of " << batch_.buffer->rows()
                                 << " rows cannot back a window of "
                                 << window_);
    OMEGA_CHECK(batch_.sealer < batch_.buffer->banks(),
                "sealer " << batch_.sealer << " has no bank in a "
                          << batch_.buffer->banks() << "-bank buffer");
    scratch_.reserve(batch_.max_batch);
  }
  seal_to_decide_hist_ = &obs::histogram("smr.seal_to_decide_ns");
  failover_ctr_ = &obs::counter("smr.failover_tickets");
}

void LogPump::fast_forward(std::uint32_t next_slot) {
  OMEGA_CHECK(committed_ == 0 && started_ == 0,
              "fast_forward on a pump that already ran (committed="
                  << committed_ << ", started=" << started_ << ")");
  OMEGA_CHECK(next_slot <= log_.capacity(),
              "fast_forward past capacity: " << next_slot << " > "
                                             << log_.capacity());
  committed_ = next_slot;
  started_ = next_slot;
}

bool LogPump::read_payload(std::uint32_t s, std::uint64_t descriptor,
                           std::uint32_t& count, ProcessId& sealer) {
  decode_batch_descriptor(descriptor, count, sealer);
  OMEGA_CHECK(count <= batch_.max_batch,
              "slot " << s << " decided a batch of " << count
                      << ", max_batch is " << batch_.max_batch);
  OMEGA_CHECK(sealer < batch_.buffer->banks(),
              "slot " << s << " decided sealer " << sealer
                      << ", buffer has " << batch_.buffer->banks()
                      << " banks");
  const std::uint32_t row = s % batch_.buffer->rows();
  MemoryBackend& mem = host_.memory();
  for (int attempt = 0; attempt < kPayloadReadAttempts; ++attempt) {
    const std::uint64_t seal = batch_.buffer->load_seal(mem, sealer, row);
    const std::uint64_t sealed_for = seal_slot(seal);
    if (sealed_for == kNoSealedSlot || sealed_for < s) {
      // The sealer's push stream has not delivered this row yet (the
      // decision became visible through another replica's board first).
      // FIFO streams guarantee it eventually will; stall this tick.
      return false;
    }
    OMEGA_CHECK(sealed_for == s,
                "slot " << s << ": spill row already reused for slot "
                        << sealed_for
                        << " — this mirror lagged past the ring");
    scratch_.clear();
    trace_scratch_.clear();
    for (std::uint32_t i = 0; i < count; ++i) {
      scratch_.push_back(batch_.buffer->load_cmd(mem, sealer, row, i));
    }
    // Trace cells ride the same seqlock window but are not checksummed:
    // a mirror that delivered the seal delivered them too (poke order),
    // and a torn id only degrades forensics, never correctness.
    for (std::uint32_t i = 0; i < count; ++i) {
      trace_scratch_.push_back(batch_.buffer->load_trace(mem, sealer, row, i));
    }
    // Re-read the seal: an in-flight push batch may have landed between
    // the loads (seqlock discipline); retry on movement or a checksum
    // mismatch — both mean "row application raced us", never corruption,
    // because a settled FIFO prefix containing the seal contains the rows.
    if (batch_.buffer->load_seal(mem, sealer, row) != seal) continue;
    if (batch_checksum(scratch_.data(), count) != seal_checksum(seal)) {
      continue;
    }
    return true;
  }
  return false;
}

std::uint32_t LogPump::tick(BatchSource& source, std::vector<Commit>& commits,
                            bool repush_remote) {
  // 1. Harvest in slot order: a later slot may already be decided, but it
  // is not visible until every earlier slot is (log order = slot order).
  // The probe runs past started_ too — in a mirrored deployment another
  // process's pump may seal and decide slots this pump never started.
  std::uint32_t newly = 0;
  bool stalled = false;
  while (committed_ < log_.capacity() && !stalled) {
    const auto v = log_.decided(host_.memory(), committed_);
    if (!v.has_value()) break;
    const std::uint32_t s = committed_;
    if (!local_seals_.empty() && local_seals_.front().slot == s &&
        local_seals_.front().value == *v) {
      // This pump's batch decided: commit from the ledger (no payload
      // re-read — the sealed commands are authoritative by checksum).
      Seal& mine = local_seals_.front();
      if (mine.sealed_ns > 0) {
        const std::int64_t now = steady_ns();
        if (now > mine.sealed_ns) {
          seal_to_decide_hist_->record(
              static_cast<std::uint64_t>(now - mine.sealed_ns));
        }
      }
      obs::trace(obs::TraceEvent::kSlotDecide, s, mine.cmds.size(),
                 mine.traces.empty() ? 0 : mine.traces.front(),
                 mine.traces.empty() ? 0 : mine.traces.back());
      for (std::size_t i = 0; i < mine.cmds.size(); ++i) {
        commits.push_back(Commit{s, mine.cmds[i], true, mine.ticket,
                                 i < mine.traces.size() ? mine.traces[i]
                                                        : 0});
        ++newly;
      }
      local_seals_.pop_front();
      ++committed_;
      continue;
    }
    if (!local_seals_.empty() && local_seals_.front().slot == s) {
      // Decided against this pump's seal: another sealer won the slot
      // (failover contention). The displaced batch re-proposes at the
      // next free slot — exactly once, ledger entry moves wholesale.
      failover_ctr_->add();
      obs::trace(obs::TraceEvent::kFailoverTicket, s,
                 local_seals_.front().ticket);
      resubmit_.push_back(std::move(local_seals_.front()));
      local_seals_.pop_front();
    }
    // Remote-sealed slot (or a displaced one being read back).
    if (batch_.max_batch == 1) {
      obs::trace(obs::TraceEvent::kSlotDecide, s, 1);
      commits.push_back(Commit{s, *v, false, 0});
      ++newly;
      ++committed_;
      continue;
    }
    std::uint32_t count = 0;
    ProcessId sealer = kNoProcess;
    if (!read_payload(s, *v, count, sealer)) {
      ++payload_stalls_;
      stalled = true;
      break;
    }
    obs::trace(obs::TraceEvent::kSlotDecide, s, count,
               trace_scratch_.empty() ? 0 : trace_scratch_.front(),
               trace_scratch_.empty() ? 0 : trace_scratch_.back());
    for (std::uint32_t i = 0; i < count; ++i) {
      commits.push_back(Commit{s, scratch_[i], false, 0, trace_scratch_[i]});
      ++newly;
    }
    if (repush_remote && sealer != batch_.sealer) {
      // Adopted from a (possibly dead) sealer: re-publish the payload on
      // this process's own push stream — commands and traces first, seal
      // last, the same order every mirror relies on — so peers whose
      // stream from the original sealer was cut short still converge.
      const std::uint32_t row = s % batch_.buffer->rows();
      MemoryBackend& mem = host_.memory();
      for (std::uint32_t i = 0; i < count; ++i) {
        batch_.buffer->store_cmd(mem, sealer, row, i, scratch_[i]);
      }
      for (std::uint32_t i = 0; i < count; ++i) {
        batch_.buffer->store_trace(mem, sealer, row, i, trace_scratch_[i]);
      }
      batch_.buffer->store_seal(mem, sealer, row,
                                pack_seal(s, batch_checksum(scratch_.data(),
                                                            count)));
    }
    ++committed_;
  }
  if (committed_ > started_) started_ = committed_;

  // 2. Refill the window. A slot is only started when some replica is live
  // to drive it — with nobody live the commands would be parked in a slot
  // no proposer will ever finish, while leaving them with the supplier
  // lets them commit once replicas come back. Adaptive flush: the slot is
  // sealed with whatever is pending right now (1..max_batch commands) —
  // never waiting to fill up — so a lone command at low load pays no
  // batching delay, and a backlog under full windows drains max_batch per
  // freed slot. Displaced batches re-propose before fresh pulls.
  while (started_ < log_.capacity() && started_ - committed_ < window_) {
    bool any_live = false;
    for (ProcessId i = 0; i < host_.n() && !any_live; ++i) {
      any_live = host_.live(i);
    }
    if (!any_live) break;
    Seal seal;
    if (!resubmit_.empty()) {
      seal = std::move(resubmit_.front());
      resubmit_.pop_front();
    } else {
      scratch_.clear();
      trace_scratch_.clear();
      seal.ticket = 0;
      const std::uint32_t count =
          source.pull(batch_.max_batch, scratch_, seal.ticket,
                      trace_scratch_);
      if (count == 0) break;
      OMEGA_CHECK(count <= batch_.max_batch && scratch_.size() == count,
                  "supplier returned " << count << "/" << scratch_.size()
                                       << " commands, max_batch is "
                                       << batch_.max_batch);
      trace_scratch_.resize(count, 0);  // tolerate trace-less suppliers
      seal.cmds = scratch_;
      seal.traces = trace_scratch_;
    }
    for (const std::uint64_t cmd : seal.cmds) {
      OMEGA_CHECK(cmd >= 1 && cmd < kLogNoOp,
                  "command " << cmd << " out of range");
    }
    const std::uint32_t count = static_cast<std::uint32_t>(seal.cmds.size());
    seal.traces.resize(count, 0);
    seal.slot = started_;
    if (seal.sealed_ns == 0) seal.sealed_ns = steady_ns();
    obs::trace(obs::TraceEvent::kBatchSeal, started_, count,
               seal.traces.front(), seal.traces.back());
    if (batch_.max_batch == 1) {
      seal.value = seal.cmds[0];
    } else {
      const std::uint32_t row = started_ % batch_.buffer->rows();
      for (std::uint32_t i = 0; i < count; ++i) {
        batch_.buffer->store_cmd(host_.memory(), batch_.sealer, row, i,
                                 seal.cmds[i]);
      }
      for (std::uint32_t i = 0; i < count; ++i) {
        batch_.buffer->store_trace(host_.memory(), batch_.sealer, row, i,
                                   seal.traces[i]);
      }
      // Seal after the rows: a FIFO mirror that can see the seal already
      // has the commands (and their trace ids).
      batch_.buffer->store_seal(
          host_.memory(), batch_.sealer, row,
          pack_seal(started_, batch_checksum(seal.cmds.data(), count)));
      // The seal poke is the moment the batch enters the mirror's push
      // stream — the kMirrorPush twin that knows the trace ids.
      obs::trace(obs::TraceEvent::kBatchPush, started_, count,
                 seal.traces.front(), seal.traces.back());
      seal.value = encode_batch_descriptor(count, batch_.sealer);
    }
    for (ProcessId i = 0; i < host_.n(); ++i) {
      if (!host_.live(i)) continue;
      host_.spawn(i, log_.slot(started_).proposer(i, seal.value,
                                                  [](std::uint64_t) {}));
    }
    local_seals_.push_back(std::move(seal));
    ++started_;
  }
  return newly;
}

namespace {

/// Adapts the single-command supplier to the batch seam (max == 1 always,
/// enforced by the wrapper tick below).
class FnSource final : public BatchSource {
 public:
  explicit FnSource(const std::function<std::uint64_t()>& supply)
      : supply_(supply) {}

  std::uint32_t pull(std::uint32_t /*max*/, std::vector<std::uint64_t>& out,
                     std::uint64_t& ticket,
                     std::vector<std::uint64_t>& traces) override {
    ticket = 0;
    const std::uint64_t cmd = supply_();
    if (cmd == kNoCommand) return 0;
    out.push_back(cmd);
    traces.push_back(0);
    return 1;
  }

 private:
  const std::function<std::uint64_t()>& supply_;
};

}  // namespace

std::uint32_t LogPump::tick(const std::function<std::uint64_t()>& supply,
                            std::vector<Commit>& commits) {
  OMEGA_CHECK(batch_.max_batch == 1,
              "single-command tick on a pump with max_batch "
                  << batch_.max_batch);
  FnSource source(supply);
  return tick(source, commits);
}

}  // namespace omega
