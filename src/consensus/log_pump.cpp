#include "consensus/log_pump.h"

namespace omega {

namespace {

/// Descriptor layout: bit 0..6 count, bit 7..14 checksum.
constexpr std::uint64_t kCountBits = 7;
constexpr std::uint64_t kCountMask = (1u << kCountBits) - 1;

}  // namespace

std::uint64_t encode_batch_descriptor(std::uint32_t count,
                                      std::uint8_t checksum) {
  OMEGA_CHECK(count >= 1 && count <= kMaxBatchCommands,
              "batch count " << count << " out of range");
  return (static_cast<std::uint64_t>(checksum) << kCountBits) | count;
}

void decode_batch_descriptor(std::uint64_t descriptor, std::uint32_t& count,
                             std::uint8_t& checksum) {
  count = static_cast<std::uint32_t>(descriptor & kCountMask);
  checksum = static_cast<std::uint8_t>(descriptor >> kCountBits);
  OMEGA_CHECK(count >= 1 && descriptor < kLogNoOp &&
                  (descriptor >> (kCountBits + 8)) == 0,
              "malformed batch descriptor " << descriptor);
}

std::uint8_t batch_checksum(const std::uint64_t* cmds, std::uint32_t count) {
  // Order-sensitive so a rotated/reordered buffer row is caught too.
  std::uint32_t acc = 0;
  for (std::uint32_t i = 0; i < count; ++i) {
    acc = acc * 31 + static_cast<std::uint32_t>(cmds[i] & 0xFFFF) + 1;
  }
  return static_cast<std::uint8_t>(acc ^ (acc >> 8) ^ (acc >> 16));
}

BatchBuffer::BatchBuffer(std::string tag, std::uint32_t rows,
                         std::uint32_t cols)
    : tag_(std::move(tag)), rows_(rows), cols_(cols) {
  OMEGA_CHECK(rows_ >= 1 && cols_ >= 1, "empty batch buffer " << tag_);
  OMEGA_CHECK(cols_ <= kMaxBatchCommands,
              "batch buffer " << tag_ << " cols " << cols_
                              << " exceed the descriptor's count range");
}

void BatchBuffer::declare(LayoutBuilder& b) {
  OMEGA_CHECK(!declared_, "batch buffer " << tag_ << " declared twice");
  b.add_buffer(tag_ + "BAT", rows_, cols_);
  declared_ = true;
}

void BatchBuffer::bind(const Layout& layout) {
  OMEGA_CHECK(declared_, "bind before declare");
  GroupId g = 0;
  OMEGA_CHECK(layout.find_group(tag_ + "BAT", g),
              "layout is missing " << tag_ << "BAT");
  base_ = layout.cell(g, 0, 0).index;
}

void BatchBuffer::store(MemoryBackend& mem, std::uint32_t row,
                        std::uint32_t col, std::uint64_t v) const {
  OMEGA_CHECK(base_ != kNoBase, "batch buffer " << tag_ << " not bound");
  OMEGA_CHECK(row < rows_ && col < cols_, "batch cell out of range");
  mem.poke(Cell{base_ + row * cols_ + col}, v);
}

std::uint64_t BatchBuffer::load(MemoryBackend& mem, std::uint32_t row,
                                std::uint32_t col) const {
  OMEGA_CHECK(base_ != kNoBase, "batch buffer " << tag_ << " not bound");
  OMEGA_CHECK(row < rows_ && col < cols_, "batch cell out of range");
  return mem.peek(Cell{base_ + row * cols_ + col});
}

LogPump::LogPump(ReplicatedLog& log, PumpHost& host, std::uint32_t window,
                 BatchPolicy batch)
    : log_(log), host_(host), window_(window), batch_(batch) {
  OMEGA_CHECK(window_ >= 1, "pump window must be >= 1");
  OMEGA_CHECK(host_.n() == log_.n(), "host has " << host_.n()
                                                 << " replicas, log wants "
                                                 << log_.n());
  OMEGA_CHECK(batch_.max_batch >= 1 && batch_.max_batch <= kMaxBatchCommands,
              "max_batch " << batch_.max_batch << " out of range");
  if (batch_.max_batch > 1) {
    OMEGA_CHECK(batch_.buffer != nullptr,
                "batched pump needs a batch buffer");
    OMEGA_CHECK(batch_.buffer->cols() >= batch_.max_batch,
                "batch buffer holds " << batch_.buffer->cols()
                                      << " commands per row, max_batch is "
                                      << batch_.max_batch);
    // A row is reused `rows` slots later; with rows >= window the previous
    // tenant has always been harvested by then.
    OMEGA_CHECK(batch_.buffer->rows() >= window_,
                "batch ring of " << batch_.buffer->rows()
                                 << " rows cannot back a window of "
                                 << window_);
    scratch_.reserve(batch_.max_batch);
  }
}

std::uint32_t LogPump::tick(BatchSource& source,
                            std::vector<Commit>& commits) {
  // 1. Harvest in slot order: a later slot may already be decided, but it
  // is not visible until every earlier slot is (log order = slot order).
  std::uint32_t newly = 0;
  while (committed_ < started_) {
    const auto v = log_.decided(host_.memory(), committed_);
    if (!v.has_value()) break;
    if (batch_.max_batch == 1) {
      commits.push_back(Commit{committed_, *v});
      ++newly;
    } else {
      // The decided value names a batch: expand it from the spill row in
      // FIFO order, after checking the descriptor still matches the
      // contents it was sealed over.
      std::uint32_t count = 0;
      std::uint8_t checksum = 0;
      decode_batch_descriptor(*v, count, checksum);
      OMEGA_CHECK(count <= batch_.max_batch,
                  "slot " << committed_ << " decided a batch of " << count
                          << ", max_batch is " << batch_.max_batch);
      const std::uint32_t row = committed_ % batch_.buffer->rows();
      scratch_.clear();
      for (std::uint32_t i = 0; i < count; ++i) {
        scratch_.push_back(batch_.buffer->load(host_.memory(), row, i));
      }
      OMEGA_CHECK(batch_checksum(scratch_.data(), count) == checksum,
                  "slot " << committed_
                          << ": batch buffer does not match its descriptor");
      for (std::uint32_t i = 0; i < count; ++i) {
        commits.push_back(Commit{committed_, scratch_[i]});
        ++newly;
      }
    }
    ++committed_;
  }

  // 2. Refill the window. A slot is only started when some replica is live
  // to drive it — with nobody live the commands would be parked in a slot
  // no proposer will ever finish, while leaving them with the supplier
  // lets them commit once replicas come back. Adaptive flush: the slot is
  // sealed with whatever is pending right now (1..max_batch commands) —
  // never waiting to fill up — so a lone command at low load pays no
  // batching delay, and a backlog under full windows drains max_batch per
  // freed slot.
  while (started_ < log_.capacity() && started_ - committed_ < window_) {
    bool any_live = false;
    for (ProcessId i = 0; i < host_.n() && !any_live; ++i) {
      any_live = host_.live(i);
    }
    if (!any_live) break;
    scratch_.clear();
    const std::uint32_t count = source.pull(batch_.max_batch, scratch_);
    if (count == 0) break;
    OMEGA_CHECK(count <= batch_.max_batch && scratch_.size() == count,
                "supplier returned " << count << "/" << scratch_.size()
                                     << " commands, max_batch is "
                                     << batch_.max_batch);
    for (std::uint32_t i = 0; i < count; ++i) {
      OMEGA_CHECK(scratch_[i] >= 1 && scratch_[i] < kLogNoOp,
                  "command " << scratch_[i] << " out of range");
    }
    std::uint64_t value = 0;
    if (batch_.max_batch == 1) {
      value = scratch_[0];
    } else {
      const std::uint32_t row = started_ % batch_.buffer->rows();
      for (std::uint32_t i = 0; i < count; ++i) {
        batch_.buffer->store(host_.memory(), row, i, scratch_[i]);
      }
      value = encode_batch_descriptor(
          count, batch_checksum(scratch_.data(), count));
    }
    for (ProcessId i = 0; i < host_.n(); ++i) {
      if (!host_.live(i)) continue;
      host_.spawn(i, log_.slot(started_).proposer(i, value,
                                                  [](std::uint64_t) {}));
    }
    ++started_;
  }
  return newly;
}

namespace {

/// Adapts the single-command supplier to the batch seam (max == 1 always,
/// enforced by the wrapper tick below).
class FnSource final : public BatchSource {
 public:
  explicit FnSource(const std::function<std::uint64_t()>& supply)
      : supply_(supply) {}

  std::uint32_t pull(std::uint32_t /*max*/,
                     std::vector<std::uint64_t>& out) override {
    const std::uint64_t cmd = supply_();
    if (cmd == kNoCommand) return 0;
    out.push_back(cmd);
    return 1;
  }

 private:
  const std::function<std::uint64_t()>& supply_;
};

}  // namespace

std::uint32_t LogPump::tick(const std::function<std::uint64_t()>& supply,
                            std::vector<Commit>& commits) {
  OMEGA_CHECK(batch_.max_batch == 1,
              "single-command tick on a pump with max_batch "
                  << batch_.max_batch);
  FnSource source(supply);
  return tick(source, commits);
}

}  // namespace omega
