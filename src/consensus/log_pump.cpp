#include "consensus/log_pump.h"

namespace omega {

LogPump::LogPump(ReplicatedLog& log, PumpHost& host, std::uint32_t window)
    : log_(log), host_(host), window_(window) {
  OMEGA_CHECK(window_ >= 1, "pump window must be >= 1");
  OMEGA_CHECK(host_.n() == log_.n(), "host has " << host_.n()
                                                 << " replicas, log wants "
                                                 << log_.n());
}

std::uint32_t LogPump::tick(const std::function<std::uint64_t()>& supply,
                            std::vector<Commit>& commits) {
  // 1. Harvest in slot order: a later slot may already be decided, but it
  // is not visible until every earlier slot is (log order = slot order).
  std::uint32_t newly = 0;
  while (committed_ < started_) {
    const auto v = log_.decided(host_.memory(), committed_);
    if (!v.has_value()) break;
    commits.push_back(Commit{committed_, *v});
    ++committed_;
    ++newly;
  }

  // 2. Refill the window. A slot is only started when some replica is live
  // to drive it — with nobody live the command would be parked in a slot
  // no proposer will ever finish, while leaving it with the supplier lets
  // it commit once replicas come back.
  while (started_ < log_.capacity() && started_ - committed_ < window_) {
    bool any_live = false;
    for (ProcessId i = 0; i < host_.n() && !any_live; ++i) {
      any_live = host_.live(i);
    }
    if (!any_live) break;
    const std::uint64_t cmd = supply();
    if (cmd == kNoCommand) break;
    OMEGA_CHECK(cmd >= 1 && cmd < kLogNoOp,
                "command " << cmd << " out of range");
    for (ProcessId i = 0; i < host_.n(); ++i) {
      if (!host_.live(i)) continue;
      host_.spawn(i, log_.slot(started_).proposer(i, cmd,
                                                  [](std::uint64_t) {}));
    }
    ++started_;
  }
  return newly;
}

}  // namespace omega
