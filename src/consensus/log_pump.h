// Driver-agnostic replicated-log pumping.
//
// ReplicatedLog::pump used to be welded to SimDriver: it spawned proposers,
// then *blocked* inside driver.run_for until the slot decided. A live
// runtime (svc::WorkerPool stepping executors on real threads) cannot block
// like that — the thread that notices a decision is the same thread that
// must keep stepping the proposers. So the slot mechanics are factored out
// here into an *incremental* state machine:
//
//   * PumpHost — the seam between the pump and whatever executes tasks.
//     The simulator implements it with SimDriver::add_app_task; the live
//     service implements it with ProcExecutor::add_app_task on the group's
//     executors (see smr::LogGroup).
//   * LogPump  — owns the slot cursors. Each tick() harvests decided slots
//     *in slot order* (the log order) and keeps up to `window` slots in
//     flight, pulling commands from a supplier for each new slot.
//     Pipelining is safe because the log order is the slot order, not the
//     decision order: slot s+1 may decide before slot s, but it is not
//     *applied* until s has been.
//
// Batching (group commit): one consensus round per *command* caps the log
// at the slot rate, so a slot may instead decide a whole batch. The
// supplier drains up to `max_batch` commands into a BatchBuffer row (a
// shared spill region declared next to the log's registers — all replicas
// see it, as everything in the paper's shared-memory model), and the slot's
// proposers agree on the packed descriptor (count, sealer) instead of the
// command itself. Harvest decodes the descriptor, validates the row's seal
// against the buffer, and expands the batch back into per-command commits
// in FIFO order. With max_batch == 1 no buffer is touched and the proposed
// value IS the command — byte-for-byte the unbatched pump.
//
// Multi-process operation (registers/mirror.h): replicas of a group can be
// split across OS processes, each process pumping only the replicas it
// hosts. Three pump mechanics exist for that deployment and are inert in
// single-process use:
//
//   * Observer harvest — a slot may decide without this pump ever starting
//     it (another node's pump sealed and drove it). Harvest probes the
//     decision boards past `started_` and fast-forwards the cursors, so a
//     follower applies the leader's slots in order.
//   * Per-sealer row banks — the descriptor names the *sealer* (the
//     replica whose node sealed the batch), and each sealer owns a
//     private bank of spill rows. Competing sealers (the failover window:
//     a new leader takes over while the dead leader's last batches are
//     still in flight) therefore never overwrite each other's payloads.
//     The sealer pokes a row's commands first and its *seal cell* (slot +
//     checksum) last — a mirror that can see a decided descriptor over a
//     FIFO push stream already has the matching rows, and a seal naming
//     the wrong slot exposes ring reuse instead of silently misreading.
//   * Local-seal ledger + re-proposal — the pump records each batch it
//     seals (slot, descriptor, commands, supplier ticket). A slot that
//     decides *against* the local seal (the other sealer won) re-proposes
//     the displaced batch at the next free slot, exactly once; commits
//     report whether they were locally sealed (and under which ticket) so
//     the intake layer acknowledges exactly its own commands.
//
// Flush policy is adaptive by construction: a slot is proposed as soon as
// the window has room and *anything* is pending (no wait to fill a batch),
// so batching is latency-neutral at low load; while every window slot is
// in flight, arrivals accumulate in the supplier and the next free slot
// drains up to max_batch of them at once.
//
// Forwarding, as in leader-based SMR: every live replica proposes the same
// value for a slot (the supplier's choice), and whichever process Ω has
// elected drives it to decision. Because all proposers of a slot propose
// the same value, the slot always decides the value assigned to it, and
// commits therefore pop the supplier's commands in FIFO order — except
// across a sealer change, where the re-proposal ledger above takes over.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "consensus/replicated_log.h"
#include "obs/metrics.h"

namespace omega {

/// "No command pending" sentinel for the pump's command supplier.
inline constexpr std::uint64_t kNoCommand = 0;

/// Hard cap on commands per slot: the descriptor packs the count into 7
/// bits next to a 6-bit sealer id, keeping every descriptor inside the
/// 16-bit consensus value range (and distinct from kLogNoOp).
inline constexpr std::uint32_t kMaxBatchCommands = 127;

/// Packs a batch descriptor for a slot: count in the low 7 bits, the
/// sealer's replica id above it. The result is in [1, 8191] ⊂ [1, kLogNoOp).
/// The payload integrity check lives in the row's seal cell, not here.
std::uint64_t encode_batch_descriptor(std::uint32_t count, ProcessId sealer);
void decode_batch_descriptor(std::uint64_t descriptor, std::uint32_t& count,
                             ProcessId& sealer);

/// Order-sensitive 32-bit fold of a batch's commands; corruption tripwire
/// for the buffer-descriptor pairing (stored in the row's seal cell).
std::uint32_t batch_checksum(const std::uint64_t* cmds, std::uint32_t count);

/// Seal-cell packing: slot+1 in the high half (0 = never sealed), the
/// batch checksum in the low half.
std::uint64_t pack_seal(std::uint32_t slot, std::uint32_t checksum);
/// Slot a seal names (or kNoSealedSlot when the cell was never sealed).
inline constexpr std::uint64_t kNoSealedSlot = ~std::uint64_t{0};
std::uint64_t seal_slot(std::uint64_t seal);
std::uint32_t seal_checksum(std::uint64_t seal);

/// Execution seam: where the pump's proposer coroutines run. All calls are
/// made from the pump owner's thread (the sim loop, or the owning shard
/// worker in the live service). In a multi-process deployment live()
/// answers false for replicas hosted elsewhere, so proposers only ever
/// spawn on local execution streams.
class PumpHost {
 public:
  virtual ~PumpHost() = default;

  /// Replica count of the group (== the log's n).
  virtual std::uint32_t n() const = 0;

  /// Whether replica `i` can currently execute steps here (hosted locally
  /// and not crashed/halted).
  virtual bool live(ProcessId i) const = 0;

  /// Hands a proposer coroutine to replica `i`'s execution stream.
  virtual void spawn(ProcessId i, ProcTask task) = 0;

  /// The memory the log's registers live in (for decision-board reads).
  virtual MemoryBackend& memory() = 0;
};

/// Pull seam between the pump and the command intake: moves up to `max`
/// pending commands (FIFO, each in [1, kLogNoOp)) into `out` — appended,
/// not replaced — and returns how many it moved. Returning fewer than
/// `max` (including 0) simply seals a smaller batch; it does not end the
/// stream. `ticket` is an opaque tag the supplier may set per batch; the
/// pump echoes it on the batch's commits (and keeps it across
/// re-proposals) so a supplier with per-batch bookkeeping can match
/// acknowledgements without relying on global FIFO order. `traces` must
/// receive one v1.4 trace id per command appended to `out` (0 for
/// untraced commands); the pump stamps them into the spill row and onto
/// the batch's commits.
class BatchSource {
 public:
  virtual ~BatchSource() = default;
  virtual std::uint32_t pull(std::uint32_t max, std::vector<std::uint64_t>& out,
                             std::uint64_t& ticket,
                             std::vector<std::uint64_t>& traces) = 0;
};

/// The per-slot batch spill: `banks` independent rings (one per potential
/// sealer) of `rows` rows, each row holding one seal cell followed by
/// `cols` commands and `cols` trace-id cells, living in the group's
/// shared memory (slot s uses row s % rows of the sealer's bank). Row
/// reuse is safe once rows >= the pump window: a row is only overwritten
/// `rows` slots later, and by then its slot has been harvested locally;
/// mirrors additionally verify the seal's slot stamp. Accessed
/// uninstrumented (peek/poke) by the pump owner thread only — the
/// descriptor, not the buffer, is what consensus orders — but pokes
/// still reach the write observer, so rows replicate to mirrors in poke
/// order (commands, then traces, then seal). Trace cells carry the v1.4
/// per-command trace ids across the mirror: best-effort forensics, NOT
/// covered by the row checksum — consensus never depends on them.
class BatchBuffer {
 public:
  BatchBuffer(std::string tag, std::uint32_t banks, std::uint32_t rows,
              std::uint32_t cols);

  /// Declares the "<tag>BAT" spill group; call from the LayoutExtension.
  void declare(LayoutBuilder& b);
  /// Resolves the group to concrete cells once the layout is built.
  void bind(const Layout& layout);

  std::uint32_t banks() const noexcept { return banks_; }
  std::uint32_t rows() const noexcept { return rows_; }
  std::uint32_t cols() const noexcept { return cols_; }

  void store_cmd(MemoryBackend& mem, std::uint32_t bank, std::uint32_t row,
                 std::uint32_t col, std::uint64_t v) const;
  std::uint64_t load_cmd(MemoryBackend& mem, std::uint32_t bank,
                         std::uint32_t row, std::uint32_t col) const;
  void store_seal(MemoryBackend& mem, std::uint32_t bank, std::uint32_t row,
                  std::uint64_t seal) const;
  std::uint64_t load_seal(MemoryBackend& mem, std::uint32_t bank,
                          std::uint32_t row) const;
  void store_trace(MemoryBackend& mem, std::uint32_t bank, std::uint32_t row,
                   std::uint32_t col, std::uint64_t trace) const;
  std::uint64_t load_trace(MemoryBackend& mem, std::uint32_t bank,
                           std::uint32_t row, std::uint32_t col) const;

 private:
  static constexpr std::uint32_t kNoBase = 0xFFFFFFFFu;

  std::uint32_t cell_index(std::uint32_t bank, std::uint32_t row,
                           std::uint32_t col) const;

  std::string tag_;
  std::uint32_t banks_;
  std::uint32_t rows_;
  std::uint32_t cols_;
  bool declared_ = false;
  std::uint32_t base_ = kNoBase;  ///< flat cell index of bank 0, row 0
};

/// Batch configuration. max_batch == 1 (the default) proposes raw
/// commands and needs no buffer; max_batch > 1 requires a bound
/// BatchBuffer with cols >= max_batch, rows >= the pump window and
/// banks > sealer. `sealer` is the replica id this pump seals under —
/// the lowest locally-hosted replica by convention (0 in single-process
/// deployments). (Namespace-scope so it can be a default argument below;
/// addressed as LogPump::BatchPolicy by callers.)
struct PumpBatchPolicy {
  std::uint32_t max_batch = 1;
  const BatchBuffer* buffer = nullptr;
  ProcessId sealer = 0;
};

class LogPump {
 public:
  struct Commit {
    std::uint32_t slot = 0;
    std::uint64_t value = 0;  ///< the command (batches arrive expanded)
    /// Sealed by this pump: the supplier's commands of `ticket` committed
    /// here. False for slots sealed by another process's pump.
    bool local = true;
    std::uint64_t ticket = 0;  ///< supplier's tag for local commits
    /// v1.4 trace id of the command (0 = untraced). Local commits carry
    /// the supplier's id; remote ones what the spill row's trace cells
    /// held (best-effort — 0 when the mirror has not delivered them).
    std::uint64_t trace = 0;
  };

  using BatchPolicy = PumpBatchPolicy;

  /// `window` — how many slots may be in flight (spawned, not yet
  /// harvested) at once. 1 reproduces the strictly sequential pump; the
  /// live service pipelines (16..64) to overlap consensus rounds.
  LogPump(ReplicatedLog& log, PumpHost& host, std::uint32_t window = 1,
          BatchPolicy batch = {});

  LogPump(const LogPump&) = delete;
  LogPump& operator=(const LogPump&) = delete;

  /// One pump step. Appends the commands of newly decided slots (in slot
  /// order, batches expanded FIFO) to `commits` and returns how many were
  /// appended; then, while the window has room and capacity remains,
  /// re-proposes displaced batches and drains up to max_batch commands
  /// per new slot from `source`, spawning one proposer per live replica.
  /// Never blocks. `repush_remote` re-pokes the payload of remote-sealed
  /// slots as they are harvested (commands, then seal), so a node taking
  /// over leadership re-publishes adopted batches onto its own push
  /// stream for mirrors whose stream from the dead sealer was cut short.
  std::uint32_t tick(BatchSource& source, std::vector<Commit>& commits,
                     bool repush_remote = false);

  /// Single-command convenience: `supply` returns one command (kNoCommand
  /// when nothing is pending). Requires max_batch == 1.
  std::uint32_t tick(const std::function<std::uint64_t()>& supply,
                     std::vector<Commit>& commits);

  /// Crash-restart recovery: moves both cursors past an already-applied
  /// prefix recovered from the WAL, so the pump neither re-proposes nor
  /// re-harvests those slots (the applied values came back through the
  /// replay, not through tick()). Call once, before the first tick, on a
  /// pump that has done nothing yet.
  void fast_forward(std::uint32_t next_slot);

  /// Slots harvested so far (== the next slot to be applied).
  std::uint32_t committed() const noexcept { return committed_; }
  /// Slots started so far (== the next slot to be assigned a command).
  std::uint32_t started() const noexcept { return started_; }
  std::uint32_t in_flight() const noexcept { return started_ - committed_; }
  std::uint32_t max_batch() const noexcept { return batch_.max_batch; }
  /// True once every slot has been assigned; further commands can never be
  /// placed and should be rejected upstream.
  bool exhausted() const noexcept { return started_ == log_.capacity(); }
  /// Batches displaced by another sealer, waiting to be re-proposed.
  std::size_t resubmit_pending() const noexcept { return resubmit_.size(); }
  /// Harvest stalls: a decided slot whose payload was not yet visible in
  /// this process's mirror (retried next tick; nonzero only multi-process).
  std::uint64_t payload_stalls() const noexcept { return payload_stalls_; }

 private:
  /// One batch this pump sealed (or wants to re-propose).
  struct Seal {
    std::uint32_t slot = 0;
    std::uint64_t value = 0;  ///< proposed value (descriptor or raw command)
    std::uint64_t ticket = 0;
    std::vector<std::uint64_t> cmds;
    std::vector<std::uint64_t> traces;  ///< per-command trace ids
    /// Seal time; harvest records seal -> decide into smr.seal_to_decide_ns
    /// (kept across re-proposals, so a displaced batch's latency spans the
    /// failover it survived).
    std::int64_t sealed_ns = 0;
  };

  /// Reads slot `s`'s payload out of the spill row named by `descriptor`
  /// into scratch_. Returns false when the payload is not yet visible
  /// (mirror lag) — the caller stalls and retries next tick.
  bool read_payload(std::uint32_t s, std::uint64_t descriptor,
                    std::uint32_t& count, ProcessId& sealer);

  ReplicatedLog& log_;
  PumpHost& host_;
  const std::uint32_t window_;
  const BatchPolicy batch_;
  std::uint32_t committed_ = 0;
  std::uint32_t started_ = 0;
  std::uint64_t payload_stalls_ = 0;
  std::vector<std::uint64_t> scratch_;  ///< per-slot pull buffer
  std::vector<std::uint64_t> trace_scratch_;  ///< per-slot trace ids
  std::deque<Seal> local_seals_;        ///< in-flight batches this pump sealed
  std::deque<Seal> resubmit_;           ///< displaced batches to re-propose

  /// obs instruments, resolved once at construction (tick never touches
  /// the registry lock).
  obs::Histogram* seal_to_decide_hist_ = nullptr;  ///< smr.seal_to_decide_ns
  obs::Counter* failover_ctr_ = nullptr;  ///< smr.failover_tickets
};

/// PumpHost over the discrete-event simulator (SimDriver comes in via
/// replicated_log.h): proposers become app tasks of the simulated
/// processes; liveness follows the crash plan. Used by
/// ReplicatedLog::pump and by tests that drive a LogPump directly.
class SimPumpHost final : public PumpHost {
 public:
  explicit SimPumpHost(SimDriver& driver) : driver_(driver) {}

  std::uint32_t n() const override { return driver_.n(); }
  bool live(ProcessId i) const override {
    return !driver_.plan().crashed_by(i, driver_.now());
  }
  void spawn(ProcessId i, ProcTask task) override {
    driver_.add_app_task(i, std::move(task));
  }
  MemoryBackend& memory() override { return driver_.memory(); }

 private:
  SimDriver& driver_;
};

}  // namespace omega
