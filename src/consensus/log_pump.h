// Driver-agnostic replicated-log pumping.
//
// ReplicatedLog::pump used to be welded to SimDriver: it spawned proposers,
// then *blocked* inside driver.run_for until the slot decided. A live
// runtime (svc::WorkerPool stepping executors on real threads) cannot block
// like that — the thread that notices a decision is the same thread that
// must keep stepping the proposers. So the slot mechanics are factored out
// here into an *incremental* state machine:
//
//   * PumpHost — the seam between the pump and whatever executes tasks.
//     The simulator implements it with SimDriver::add_app_task; the live
//     service implements it with ProcExecutor::add_app_task on the group's
//     executors (see smr::LogGroup).
//   * LogPump  — owns the slot cursors. Each tick() harvests decided slots
//     *in slot order* (the log order) and keeps up to `window` slots in
//     flight, pulling one command per new slot from a supplier. Pipelining
//     is safe because the log order is the slot order, not the decision
//     order: slot s+1 may decide before slot s, but it is not *applied*
//     until s has been.
//
// Forwarding, as in leader-based SMR: every live replica proposes the same
// command for a slot (the supplier's choice), and whichever process Ω has
// elected drives it to decision. Because all proposers of a slot propose
// the same value, the slot always decides the command assigned to it, and
// commits therefore pop the supplier's commands in FIFO order.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "consensus/replicated_log.h"

namespace omega {

/// "No command pending" sentinel for the pump's command supplier.
inline constexpr std::uint64_t kNoCommand = 0;

/// Execution seam: where the pump's proposer coroutines run. All calls are
/// made from the pump owner's thread (the sim loop, or the owning shard
/// worker in the live service).
class PumpHost {
 public:
  virtual ~PumpHost() = default;

  /// Replica count of the group (== the log's n).
  virtual std::uint32_t n() const = 0;

  /// Whether replica `i` can currently execute steps (not crashed/halted).
  virtual bool live(ProcessId i) const = 0;

  /// Hands a proposer coroutine to replica `i`'s execution stream.
  virtual void spawn(ProcessId i, ProcTask task) = 0;

  /// The memory the log's registers live in (for decision-board reads).
  virtual MemoryBackend& memory() = 0;
};

class LogPump {
 public:
  struct Commit {
    std::uint32_t slot = 0;
    std::uint64_t value = 0;
  };

  /// `window` — how many slots may be in flight (spawned, not yet
  /// harvested) at once. 1 reproduces the strictly sequential pump; the
  /// live service pipelines (16..64) to overlap consensus rounds.
  LogPump(ReplicatedLog& log, PumpHost& host, std::uint32_t window = 1);

  LogPump(const LogPump&) = delete;
  LogPump& operator=(const LogPump&) = delete;

  /// One pump step. Appends newly decided slots (in slot order) to
  /// `commits` and returns how many were appended; then, while the window
  /// has room and capacity remains, pulls commands from `supply` (which
  /// returns kNoCommand when nothing is pending) and spawns one proposer
  /// per live replica for each. Never blocks.
  std::uint32_t tick(const std::function<std::uint64_t()>& supply,
                     std::vector<Commit>& commits);

  /// Slots harvested so far (== the next slot to be applied).
  std::uint32_t committed() const noexcept { return committed_; }
  /// Slots started so far (== the next slot to be assigned a command).
  std::uint32_t started() const noexcept { return started_; }
  std::uint32_t in_flight() const noexcept { return started_ - committed_; }
  /// True once every slot has been assigned; further commands can never be
  /// placed and should be rejected upstream.
  bool exhausted() const noexcept { return started_ == log_.capacity(); }

 private:
  ReplicatedLog& log_;
  PumpHost& host_;
  const std::uint32_t window_;
  std::uint32_t committed_ = 0;
  std::uint32_t started_ = 0;
};

}  // namespace omega
