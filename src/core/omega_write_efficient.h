// Algorithm 1 of the paper (Figure 2): the write-efficient Ω construction for
// AS[n] with assumption AWB.
//
// Shared registers (all 1WnR):
//   SUSPICIONS[n][n]  nat   — SUSPICIONS[j][k] = #times p_j suspected p_k;
//                             row j owned by p_j. NOT critical.
//   PROGRESS[n]       nat   — p_i increments PROGRESS[i] while it believes it
//                             is the leader. Critical (AWB1 applies).
//   STOP[n]           bool  — p_i sets STOP[i]=true when it stops competing.
//                             Critical (AWB1 applies).
//
// Properties reproduced by the experiment harness:
//   Thm. 1 — a correct process is eventually elected by everyone;
//   Thm. 2 — every shared variable except PROGRESS[ℓ] is bounded;
//   Thm. 3 — eventually only the leader writes, and only one variable;
//   Thm. 4 — write-optimality (with Lemmas 5-6).
#pragma once

#include <cstdint>
#include <vector>

#include "core/candidate_set.h"
#include "core/omega_iface.h"
#include "registers/layout.h"

namespace omega {

class OmegaWriteEfficient : public OmegaProcess {
 public:
  /// Shared-memory map of one algorithm instance.
  struct Shared {
    Layout layout;
    GroupId suspicions = 0;
    GroupId progress = 0;
    GroupId stop = 0;

    /// Declares the register groups into an existing builder (so callers
    /// can co-locate application registers in the same memory); `layout` is
    /// left empty and must be assigned after build().
    static Shared declare(LayoutBuilder& b, std::uint32_t n);
    static Shared make(std::uint32_t n);
  };

  /// `initial_candidates` may be any set (i itself is always added) — the
  /// paper only requires i ∈ candidates_i. Local mirrors of the process's own
  /// registers are initialized from current memory contents, so the algorithm
  /// is self-stabilizing w.r.t. arbitrary initial register values (paper
  /// footnote 7).
  OmegaWriteEfficient(MemoryBackend& mem, const Shared& shared, ProcessId self,
                      const std::vector<ProcessId>& initial_candidates = {});

  ProcessId leader() override;
  ProcTask task_heartbeat() override;
  ProcTask task_monitor() override;
  std::uint64_t next_timeout() const override;
  std::string_view algorithm_name() const override {
    return "fig2-write-efficient";
  }

  /// Test/metrics accessors (read-only views of local state).
  const CandidateSet& candidates() const noexcept { return candidates_; }
  std::uint64_t suspicions_of(ProcessId k) const { return susp_row_.at(k); }

  /// Timeout-derivation rule (default: the paper's max+1; see E11).
  void set_timeout_policy(TimeoutPolicy policy) noexcept {
    timeout_policy_ = policy;
  }

 protected:
  // State and helpers are protected so the §3.5 step-clock variant
  // (OmegaStepClock) can reuse the scan logic with a different pacing.
  Cell susp_cell(ProcessId j, ProcessId k) const {
    return mem_.layout().cell(g_susp_, j, k);
  }
  Cell progress_cell(ProcessId k) const {
    return mem_.layout().cell(g_prog_, k);
  }
  Cell stop_cell(ProcessId k) const { return mem_.layout().cell(g_stop_, k); }

  GroupId g_susp_, g_prog_, g_stop_;
  CandidateSet candidates_;
  std::vector<std::uint64_t> last_;      ///< last_i[k] (paper line 19)
  std::vector<std::uint64_t> susp_row_;  ///< local mirror of SUSPICIONS[i][·]
  std::uint64_t progress_local_ = 0;     ///< local mirror of PROGRESS[i]
  bool stop_local_ = true;               ///< local mirror of STOP[i]
  TimeoutPolicy timeout_policy_ = TimeoutPolicy::kMaxPlusOne;
};

}  // namespace omega
