// §3.5 variant "Eliminating the local clocks": Algorithm 1 with the hardware
// timer replaced by a counted loop —
//
//     task T3': timer_i := max{SUSPICIONS[i][k]} + 1;
//               while timer_i ≠ 0 do timer_i := timer_i - 1 done;  (*)
//               lines 14..26 of Figure 2
//
// (*) each decrement is one local step; the variant is correct under the
// additional assumption that a local step takes at least one time unit (so a
// countdown of x lasts ≥ x time units, which dominates f(x) = x — i.e. the
// step counter *is* an asymptotically well-behaved timer). Experiment E11
// compares its suspicion warm-up against the timer-based original.
#pragma once

#include "core/omega_write_efficient.h"

namespace omega {

class OmegaStepClock final : public OmegaWriteEfficient {
 public:
  using OmegaWriteEfficient::OmegaWriteEfficient;

  /// Same scan as Figure 2's T3, paced by YieldOps instead of a timer.
  ProcTask task_monitor() override;

  std::string_view algorithm_name() const override {
    return "stepclock-variant";
  }
};

}  // namespace omega
