#include "core/omega_nwnr.h"

namespace omega {

OmegaNwnr::Shared OmegaNwnr::Shared::declare(LayoutBuilder& b,
                                               std::uint32_t n) {
  Shared s;
  s.suspicions = b.add_array("SUSPICIONS_V", n, OwnerRule::kAny,
                             /*critical=*/false);
  s.progress = b.add_array("PROGRESS", n, OwnerRule::kRowOwner,
                           /*critical=*/true);
  s.stop = b.add_array("STOP", n, OwnerRule::kRowOwner, /*critical=*/true);
  return s;
}

OmegaNwnr::Shared OmegaNwnr::Shared::make(std::uint32_t n) {
  LayoutBuilder b;
  Shared s = declare(b, n);
  s.layout = b.build();
  return s;
}

OmegaNwnr::OmegaNwnr(MemoryBackend& mem, const Shared& shared, ProcessId self,
                     const std::vector<ProcessId>& initial_candidates)
    : OmegaProcess(mem, self),
      g_susp_(shared.suspicions),
      g_prog_(shared.progress),
      g_stop_(shared.stop),
      candidates_(n_, self, initial_candidates),
      last_(n_, 0) {
  progress_local_ = mem_.peek(progress_cell(self_));
  stop_local_ = mem_.peek(stop_cell(self_)) != 0;
  for (ProcessId k = 0; k < n_; ++k) {
    timeout_floor_ = std::max(timeout_floor_, mem_.peek(susp_cell(k)));
  }
}

ProcessId OmegaNwnr::leader() {
  // One read per candidate instead of a column scan.
  std::uint64_t best_count = 0;
  ProcessId best = kNoProcess;
  for (ProcessId k = 0; k < n_; ++k) {
    if (!candidates_.contains(k)) continue;
    const std::uint64_t count = mem_.read(self_, susp_cell(k));
    if (best == kNoProcess || count < best_count) {
      best_count = count;
      best = k;
    }
  }
  OMEGA_CHECK(best != kNoProcess, "empty candidate set at p" << self_);
  return best;
}

ProcTask OmegaNwnr::task_heartbeat() {
  for (;;) {
    for (;;) {
      const auto out = co_await LeaderQueryOp{};
      if (static_cast<ProcessId>(out) != self_) break;
      ++progress_local_;
      co_await WriteOp{progress_cell(self_), progress_local_};
      if (stop_local_) {
        stop_local_ = false;
        co_await WriteOp{stop_cell(self_), 0};
      }
    }
    if (!stop_local_) {
      stop_local_ = true;
      co_await WriteOp{stop_cell(self_), 1};
    }
  }
}

ProcTask OmegaNwnr::task_monitor() {
  for (;;) {
    co_await WaitTimerOp{};
    for (ProcessId k = 0; k < n_; ++k) {
      if (k == self_) continue;
      const std::uint64_t stop_k = co_await ReadOp{stop_cell(k)};
      const std::uint64_t progress_k = co_await ReadOp{progress_cell(k)};
      if (progress_k != last_[k]) {
        candidates_.insert(k);
        last_[k] = progress_k;
      } else if (stop_k != 0) {
        candidates_.erase(k);
      } else if (candidates_.contains(k)) {
        // Multi-writer increment = read + write of the shared counter; a
        // concurrent increment between the two accesses is overwritten
        // (inherent to nWnR *registers*; see header note).
        const std::uint64_t v = co_await ReadOp{susp_cell(k)};
        co_await WriteOp{susp_cell(k), v + 1};
        timeout_floor_ = std::max(timeout_floor_, v + 1);
        candidates_.erase(k);
      }
    }
  }
}

std::uint64_t OmegaNwnr::next_timeout() const { return timeout_floor_ + 1; }

}  // namespace omega
