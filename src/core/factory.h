// Assembly of complete Ω instances: layout + memory backend + one
// OmegaProcess per process. This is the main entry point of the library for
// drivers, tests, benches and examples.
#pragma once

#include <functional>
#include <memory>
#include <string_view>
#include <vector>

#include "core/omega_iface.h"
#include "registers/memory.h"

namespace omega {

/// Which Ω construction to instantiate.
enum class AlgoKind {
  kWriteEfficient,  ///< paper Figure 2 (Algorithm 1)
  kBounded,         ///< paper Figure 5 (Algorithm 2)
  kNwnr,            ///< §3.5 multi-writer SUSPICIONS variant
  kStepClock,       ///< §3.5 clock-free variant
  kEvSync,          ///< eventually-synchronous baseline [13]
};

std::string_view algo_name(AlgoKind kind);

/// All algorithms, in presentation order.
std::vector<AlgoKind> all_algorithms();

/// The paper's two contributions only (for experiments that sweep "ours").
std::vector<AlgoKind> paper_algorithms();

/// Builds the storage for a given layout. Default: SimMemory. The SAN
/// substrate and the std::thread runtime install their own factories.
using MemoryFactory = std::function<std::unique_ptr<MemoryBackend>(
    Layout layout, std::uint32_t n)>;

/// Hook that declares *application* register groups (e.g. consensus ballots)
/// into the same layout/memory as the Ω registers, before the layout is
/// built. Invoked once during make_omega.
using LayoutExtension = std::function<void(LayoutBuilder&)>;

/// A fully wired instance: `memory` must outlive `processes` (declaration
/// order gives reverse destruction order, which is correct).
struct OmegaInstance {
  std::vector<std::unique_ptr<OmegaProcess>> processes;
  std::unique_ptr<MemoryBackend> memory;

  ~OmegaInstance() {
    // Processes reference the memory backend; drop them first.
    processes.clear();
  }
  OmegaInstance() = default;
  OmegaInstance(OmegaInstance&&) = default;
  OmegaInstance& operator=(OmegaInstance&&) = default;
};

/// Instantiates `kind` for n processes. `initial_candidates` seeds every
/// process's candidate set (self is always included); empty = {self} only
/// for an adversarial cold start, or pass all ids for the customary warm
/// start. `memory_factory` defaults to SimMemory.
OmegaInstance make_omega(AlgoKind kind, std::uint32_t n,
                         const std::vector<ProcessId>& initial_candidates,
                         const MemoryFactory& memory_factory = {},
                         const LayoutExtension& extra_registers = {});

/// Warm-start convenience: every process starts with all ids as candidates.
OmegaInstance make_omega(AlgoKind kind, std::uint32_t n,
                         const MemoryFactory& memory_factory = {},
                         const LayoutExtension& extra_registers = {});

}  // namespace omega
