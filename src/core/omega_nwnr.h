// §3.5 variant "Using multi-writer/multi-reader (nWnR) atomic registers":
// each column SUSPICIONS[·][k] of Algorithm 1 collapses into a single nWnR
// register SUSPICIONS_V[k] that every process may write.
//
// Task T1 then reads one register per candidate instead of a full column
// (n× fewer reads); the price is that the increment at line 23 becomes a
// read-then-write on a shared multi-writer register, so concurrent suspicions
// can overwrite each other (the register model has no fetch-and-add). Lost
// increments keep the counter monotone and leave correctness intact — the
// proofs only need "bounded for the eventual leader, growing while suspected"
// — but change the constants; experiment E11 quantifies the trade.
#pragma once

#include <cstdint>
#include <vector>

#include "core/candidate_set.h"
#include "core/omega_iface.h"
#include "registers/layout.h"

namespace omega {

class OmegaNwnr final : public OmegaProcess {
 public:
  struct Shared {
    Layout layout;
    GroupId suspicions = 0;  ///< SUSPICIONS_V[n], multi-writer
    GroupId progress = 0;
    GroupId stop = 0;

    static Shared declare(LayoutBuilder& b, std::uint32_t n);
    static Shared make(std::uint32_t n);
  };

  OmegaNwnr(MemoryBackend& mem, const Shared& shared, ProcessId self,
            const std::vector<ProcessId>& initial_candidates = {});

  ProcessId leader() override;
  ProcTask task_heartbeat() override;
  ProcTask task_monitor() override;
  std::uint64_t next_timeout() const override;
  std::string_view algorithm_name() const override { return "nwnr-variant"; }

  const CandidateSet& candidates() const noexcept { return candidates_; }

 private:
  Cell susp_cell(ProcessId k) const {
    return mem_.layout().cell(g_susp_, k);
  }
  Cell progress_cell(ProcessId k) const {
    return mem_.layout().cell(g_prog_, k);
  }
  Cell stop_cell(ProcessId k) const { return mem_.layout().cell(g_stop_, k); }

  GroupId g_susp_, g_prog_, g_stop_;
  CandidateSet candidates_;
  std::vector<std::uint64_t> last_;
  std::uint64_t progress_local_ = 0;
  bool stop_local_ = true;
  /// Largest suspicion count this process has observed anywhere; stands in
  /// for the own-row maximum of line 27 (it grows at least as fast, which is
  /// all Lemma 2's argument needs).
  std::uint64_t timeout_floor_ = 0;
};

}  // namespace omega
