#include "core/omega_write_efficient.h"

namespace omega {

OmegaWriteEfficient::Shared OmegaWriteEfficient::Shared::declare(LayoutBuilder& b,
    std::uint32_t n) {
  Shared s;
  // SUSPICIONS[j][k] is written only by p_j (row owner); it is *not* critical:
  // AWB1 constrains only PROGRESS[i]/STOP[i] accesses (§3.2).
  s.suspicions = b.add_matrix("SUSPICIONS", n, n, OwnerRule::kRowOwner,
                              /*critical=*/false);
  s.progress = b.add_array("PROGRESS", n, OwnerRule::kRowOwner,
                           /*critical=*/true);
  s.stop = b.add_array("STOP", n, OwnerRule::kRowOwner, /*critical=*/true);
  return s;
}

OmegaWriteEfficient::Shared OmegaWriteEfficient::Shared::make(std::uint32_t n) {
  LayoutBuilder b;
  Shared s = declare(b, n);
  s.layout = b.build();
  return s;
}

OmegaWriteEfficient::OmegaWriteEfficient(
    MemoryBackend& mem, const Shared& shared, ProcessId self,
    const std::vector<ProcessId>& initial_candidates)
    : OmegaProcess(mem, self),
      g_susp_(shared.suspicions),
      g_prog_(shared.progress),
      g_stop_(shared.stop),
      candidates_(n_, self, initial_candidates),
      last_(n_, 0),
      susp_row_(n_, 0) {
  // The process owns PROGRESS[i], STOP[i] and SUSPICIONS[i][·]; it keeps
  // local copies and never reads them from shared memory (paper §3.2). The
  // copies are seeded from whatever the registers currently hold, which is
  // what makes arbitrary initial values harmless (footnote 7).
  progress_local_ = mem_.peek(progress_cell(self_));
  stop_local_ = mem_.peek(stop_cell(self_)) != 0;
  for (ProcessId k = 0; k < n_; ++k) {
    susp_row_[k] = mem_.peek(susp_cell(self_, k));
  }
}

ProcessId OmegaWriteEfficient::leader() {
  // Task T1 (lines 1-5): elect the least-suspected candidate, breaking ties
  // by smallest identity — lex_min over (suspicion count, id).
  std::uint64_t best_count = 0;
  ProcessId best = kNoProcess;
  for (ProcessId k = 0; k < n_; ++k) {
    if (!candidates_.contains(k)) continue;
    std::uint64_t sum = 0;
    for (ProcessId j = 0; j < n_; ++j) {
      sum += mem_.read(self_, susp_cell(j, k));
    }
    if (best == kNoProcess || sum < best_count) {
      best_count = sum;
      best = k;
    }
  }
  // candidates_i always contains i, so a winner exists (Validity).
  OMEGA_CHECK(best != kNoProcess, "empty candidate set at p" << self_);
  return best;
}

ProcTask OmegaWriteEfficient::task_heartbeat() {
  // Task T2 (lines 6-12). The paper's `while leader() = i` test is written
  // with the query as a statement (see the portability note in proc_task.h).
  for (;;) {
    for (;;) {
      const auto out = co_await LeaderQueryOp{};  // line 7: leader() = i ?
      if (static_cast<ProcessId>(out) != self_) break;
      ++progress_local_;  // line 8: PROGRESS[i] := PROGRESS[i] + 1
      co_await WriteOp{progress_cell(self_), progress_local_};
      if (stop_local_) {  // line 9: if STOP[i] then STOP[i] := false
        stop_local_ = false;
        co_await WriteOp{stop_cell(self_), 0};
      }
    }
    if (!stop_local_) {  // line 11: if ¬STOP[i] then STOP[i] := true
      stop_local_ = true;
      co_await WriteOp{stop_cell(self_), 1};
    }
  }
}

ProcTask OmegaWriteEfficient::task_monitor() {
  // Task T3 (lines 13-27).
  for (;;) {
    co_await WaitTimerOp{};  // line 13: when timer_i expires
    for (ProcessId k = 0; k < n_; ++k) {
      if (k == self_) continue;  // line 14: for each k ∈ {1..n} \ {i}
      const std::uint64_t stop_k = co_await ReadOp{stop_cell(k)};  // line 15
      const std::uint64_t progress_k =
          co_await ReadOp{progress_cell(k)};  // line 16
      if (progress_k != last_[k]) {           // line 17
        candidates_.insert(k);                // line 18
        last_[k] = progress_k;                // line 19
      } else if (stop_k != 0) {               // line 20
        candidates_.erase(k);                 // line 21
      } else if (candidates_.contains(k)) {   // line 22
        ++susp_row_[k];                       // line 23
        co_await WriteOp{susp_cell(self_, k), susp_row_[k]};
        candidates_.erase(k);                 // line 24
      }
    }
    // Line 27 (set timer_i) is performed by the driver, which reads
    // next_timeout() when this task re-suspends on WaitTimerOp.
  }
}

std::uint64_t OmegaWriteEfficient::next_timeout() const {
  // Line 27: derived from max{SUSPICIONS[i][k]}_{1<=k<=n}, computed on the
  // locally owned row (no shared access — the paper notes only variables
  // owned by p_i are involved). The default policy is the paper's max+1.
  std::uint64_t mx = 0;
  for (ProcessId k = 0; k < n_; ++k) mx = std::max(mx, susp_row_[k]);
  return apply_timeout_policy(timeout_policy_, mx);
}

}  // namespace omega
