// Algorithm 2 of the paper (Figure 5): Ω with *bounded* shared memory.
//
// The unbounded PROGRESS[n] counters and local last_i[n] arrays of Algorithm
// 1 are replaced by a boolean hand-shake per ordered pair (i, k):
//
//   PROGRESS[n][n] bool — owned by row: p_i signals "I am alive" to p_k by
//                         making PROGRESS[i][k] ≠ LAST[i][k]
//                         (line 8.R2: PROGRESS[i][k] := ¬LAST[i][k]).
//   LAST[n][n]     bool — owned by *column*: p_k acknowledges by re-equalizing
//                         (line 19.R1: LAST[i][k] := PROGRESS[i][k], written
//                         by p_k).
//   SUSPICIONS[n][n], STOP[n] — as in Algorithm 1.
//
// Note on the source text: the HAL scan of the paper prints line 8.R2 as
// "PROGRESS[i][k] ← LAST[i][k]" with the negation glyph lost. The prose is
// unambiguous — the signal must make the pair *unequal* (the alive test at
// line 17.R1 is `progress ≠ LAST[k][i]`) and the acknowledgment "cancels" it
// by making them equal — so we implement the complement write.
//
// Properties reproduced: Thm. 6 (all registers bounded), Thm. 7 (eventually
// only PROGRESS[ℓ][·] / LAST[ℓ][·] are written), Thm. 8 + Cor. 1 (all
// processes must write forever in any bounded-memory implementation).
#pragma once

#include <cstdint>
#include <vector>

#include "core/candidate_set.h"
#include "core/omega_iface.h"
#include "registers/layout.h"

namespace omega {

class OmegaBounded final : public OmegaProcess {
 public:
  struct Shared {
    Layout layout;
    GroupId suspicions = 0;
    GroupId progress = 0;  ///< PROGRESS[n][n], row-owned booleans
    GroupId last = 0;      ///< LAST[n][n], column-owned booleans
    GroupId stop = 0;

    static Shared declare(LayoutBuilder& b, std::uint32_t n);
    static Shared make(std::uint32_t n);
  };

  OmegaBounded(MemoryBackend& mem, const Shared& shared, ProcessId self,
               const std::vector<ProcessId>& initial_candidates = {});

  ProcessId leader() override;
  ProcTask task_heartbeat() override;
  ProcTask task_monitor() override;
  std::uint64_t next_timeout() const override;
  std::string_view algorithm_name() const override { return "fig5-bounded"; }

  const CandidateSet& candidates() const noexcept { return candidates_; }
  std::uint64_t suspicions_of(ProcessId k) const { return susp_row_.at(k); }

  /// Timeout-derivation rule (default: the paper's max+1; see E11).
  void set_timeout_policy(TimeoutPolicy policy) noexcept {
    timeout_policy_ = policy;
  }

 private:
  Cell susp_cell(ProcessId j, ProcessId k) const {
    return mem_.layout().cell(g_susp_, j, k);
  }
  Cell progress_cell(ProcessId i, ProcessId k) const {
    return mem_.layout().cell(g_prog_, i, k);
  }
  Cell last_cell(ProcessId i, ProcessId k) const {
    return mem_.layout().cell(g_last_, i, k);
  }
  Cell stop_cell(ProcessId k) const { return mem_.layout().cell(g_stop_, k); }

  GroupId g_susp_, g_prog_, g_last_, g_stop_;
  CandidateSet candidates_;
  /// Local mirror of LAST[k][i] (the cells p_i owns, one per signaller k).
  std::vector<bool> last_mirror_;
  std::vector<std::uint64_t> susp_row_;
  bool stop_local_ = true;
  TimeoutPolicy timeout_policy_ = TimeoutPolicy::kMaxPlusOne;
};

}  // namespace omega
