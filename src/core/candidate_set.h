// The per-process `candidates_i` set of the paper (§3.1): the processes p_i
// currently considers possible leaders. Invariant maintained by the
// algorithms (and checked here): a process is always its own candidate —
// task T3's scan skips k = i, so i can never be withdrawn (used by the proof
// of Theorem 1, "x ∈ candidates_x always holds").
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.h"
#include "common/ids.h"

namespace omega {

class CandidateSet {
 public:
  /// Creates the set {self} ∪ initial ∩ [0, n). The paper allows *any*
  /// initial set containing i (§3.2).
  CandidateSet(std::uint32_t n, ProcessId self,
               const std::vector<ProcessId>& initial = {})
      : bits_(n, false), self_(self) {
    OMEGA_CHECK(self < n, "self " << self << " out of range");
    bits_[self] = true;
    count_ = 1;
    for (ProcessId k : initial) insert(k);
  }

  std::uint32_t size() const noexcept { return count_; }
  std::uint32_t universe() const noexcept {
    return static_cast<std::uint32_t>(bits_.size());
  }

  bool contains(ProcessId k) const {
    OMEGA_CHECK(k < bits_.size(), "candidate " << k << " out of range");
    return bits_[k];
  }

  void insert(ProcessId k) {
    OMEGA_CHECK(k < bits_.size(), "candidate " << k << " out of range");
    if (!bits_[k]) {
      bits_[k] = true;
      ++count_;
    }
  }

  /// Removes k. Removing self is a model violation (the algorithms never do
  /// it; see Theorem 1's proof) and is rejected.
  void erase(ProcessId k) {
    OMEGA_CHECK(k < bits_.size(), "candidate " << k << " out of range");
    OMEGA_CHECK(k != self_, "p" << self_ << " withdrawing itself");
    if (bits_[k]) {
      bits_[k] = false;
      --count_;
    }
  }

  /// Snapshot of the members, ascending.
  std::vector<ProcessId> members() const {
    std::vector<ProcessId> out;
    out.reserve(count_);
    for (std::uint32_t k = 0; k < bits_.size(); ++k) {
      if (bits_[k]) out.push_back(k);
    }
    return out;
  }

 private:
  std::vector<bool> bits_;
  ProcessId self_;
  std::uint32_t count_ = 0;
};

}  // namespace omega
