// Baseline: Ω for *eventually synchronous* shared memory, modeled after the
// only prior shared-memory Ω the paper cites — Guerraoui & Raynal, "A Leader
// Election Protocol for Eventually Synchronous Shared Memory Systems"
// (SEUS'06), reference [13].
//
// Model difference that the comparison experiments (E8) probe: [13] assumes a
// time after which *every* process's step time has a lower AND upper bound —
// so relative speeds are eventually bounded and timeouts can be counted in
// local steps. Under that assumption the classic heartbeat scheme works:
//
//   * every process forever increments its heartbeat HB[i];
//   * every Δ_i local steps, p_i checks each HB[k]; a frozen heartbeat is a
//     suspicion (SUSPEV[i][k] += 1) and Δ_i grows (max-suspicions + 1);
//   * leader = lex-min (Σ_j SUSPEV[j][k], k) over *all* processes.
//
// Under the paper's weaker AWB assumption (only the would-be leader is
// timely; other processes may have unboundedly varying speed) step-counted
// timeouts misfire forever: a process executing an arbitrarily fast burst of
// steps sees even a perfectly timely leader as frozen. This baseline is
// correct in its own model and *incorrect* under AWB-only runs — exactly the
// gap the paper's assumption-weakening closes.
//
// Costs (measured in E3/E7): every process writes forever (HB), and HB is
// unbounded — the baseline is neither write-efficient nor bounded.
#pragma once

#include <cstdint>
#include <vector>

#include "core/omega_iface.h"
#include "registers/layout.h"

namespace omega {

class OmegaEvSync final : public OmegaProcess {
 public:
  struct Shared {
    Layout layout;
    GroupId heartbeat = 0;    ///< HB[n]
    GroupId suspicions = 0;   ///< SUSPEV[n][n]

    static Shared declare(LayoutBuilder& b, std::uint32_t n);
    static Shared make(std::uint32_t n);
  };

  OmegaEvSync(MemoryBackend& mem, const Shared& shared, ProcessId self);

  ProcessId leader() override;
  ProcTask task_heartbeat() override;
  ProcTask task_monitor() override;
  std::uint64_t next_timeout() const override;
  std::string_view algorithm_name() const override { return "evsync-baseline"; }

 private:
  Cell hb_cell(ProcessId k) const { return mem_.layout().cell(g_hb_, k); }
  Cell susp_cell(ProcessId j, ProcessId k) const {
    return mem_.layout().cell(g_susp_, j, k);
  }

  GroupId g_hb_, g_susp_;
  std::vector<std::uint64_t> last_;
  std::vector<std::uint64_t> susp_row_;
  std::uint64_t hb_local_ = 0;
};

}  // namespace omega
