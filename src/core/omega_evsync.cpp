#include "core/omega_evsync.h"

namespace omega {

OmegaEvSync::Shared OmegaEvSync::Shared::declare(LayoutBuilder& b,
                                               std::uint32_t n) {
  Shared s;
  s.heartbeat = b.add_array("HB", n, OwnerRule::kRowOwner, /*critical=*/true);
  s.suspicions = b.add_matrix("SUSPEV", n, n, OwnerRule::kRowOwner,
                              /*critical=*/false);
  return s;
}

OmegaEvSync::Shared OmegaEvSync::Shared::make(std::uint32_t n) {
  LayoutBuilder b;
  Shared s = declare(b, n);
  s.layout = b.build();
  return s;
}

OmegaEvSync::OmegaEvSync(MemoryBackend& mem, const Shared& shared,
                         ProcessId self)
    : OmegaProcess(mem, self),
      g_hb_(shared.heartbeat),
      g_susp_(shared.suspicions),
      last_(n_, 0),
      susp_row_(n_, 0) {
  hb_local_ = mem_.peek(hb_cell(self_));
  for (ProcessId k = 0; k < n_; ++k) {
    susp_row_[k] = mem_.peek(susp_cell(self_, k));
  }
}

ProcessId OmegaEvSync::leader() {
  // No candidate filtering: lex-min over all processes. Crashed processes
  // accumulate suspicions forever, so a correct process eventually wins.
  std::uint64_t best_count = 0;
  ProcessId best = kNoProcess;
  for (ProcessId k = 0; k < n_; ++k) {
    std::uint64_t sum = 0;
    for (ProcessId j = 0; j < n_; ++j) {
      sum += mem_.read(self_, susp_cell(j, k));
    }
    if (best == kNoProcess || sum < best_count) {
      best_count = sum;
      best = k;
    }
  }
  return best;
}

ProcTask OmegaEvSync::task_heartbeat() {
  // Every process heartbeats forever, leader or not (the LeaderQuery keeps
  // the leader-output sampling comparable with the AWB algorithms and models
  // the application polling its oracle).
  for (;;) {
    (void)co_await LeaderQueryOp{};
    ++hb_local_;
    co_await WriteOp{hb_cell(self_), hb_local_};
  }
}

ProcTask OmegaEvSync::task_monitor() {
  for (;;) {
    // Step-counted timeout: Δ_i local steps (this is what eventual synchrony
    // licenses, and what breaks under AWB-only runs).
    for (std::uint64_t x = next_timeout(); x > 0; --x) {
      co_await YieldOp{};
    }
    for (ProcessId k = 0; k < n_; ++k) {
      if (k == self_) continue;
      const std::uint64_t hb_k = co_await ReadOp{hb_cell(k)};
      if (hb_k == last_[k]) {
        ++susp_row_[k];
        co_await WriteOp{susp_cell(self_, k), susp_row_[k]};
      } else {
        last_[k] = hb_k;
      }
    }
  }
}

std::uint64_t OmegaEvSync::next_timeout() const {
  std::uint64_t mx = 0;
  for (ProcessId k = 0; k < n_; ++k) mx = std::max(mx, susp_row_[k]);
  return mx + 1;
}

}  // namespace omega
